// Pharmacovigilance: the MARAS pipeline on a synthetic FAERS quarter.
// Detects multi-drug adverse reaction (MDAR) signals with the contrast
// measure, prints a drug-safety-reviewer-style report with named drugs and
// ADRs, and contrasts the ranking against the confidence and reporting-
// ratio baselines.
//
//   $ ./examples/pharmacovigilance

#include <cstdio>
#include <string>

#include "datagen/faers_generator.h"
#include "maras/evaluation.h"
#include "maras/maras_engine.h"
#include "txdb/dictionary.h"

using namespace tara;

namespace {

/// Human-readable names so the report reads like the paper's case study.
std::string ItemName(const FaersGenerator& gen, ItemId item) {
  if (gen.IsAdr(item)) {
    return "ADR-" + std::to_string(item - gen.adr_base());
  }
  return "Drug-" + std::to_string(item);
}

std::string FormatAssoc(const FaersGenerator& gen,
                        const DrugAdrAssociation& assoc) {
  std::string out;
  for (ItemId d : assoc.drugs) out += ItemName(gen, d) + " + ";
  if (!out.empty()) out.resize(out.size() - 3);
  out += "  =>  ";
  for (size_t i = 0; i < assoc.adrs.size(); ++i) {
    if (i) out += ", ";
    out += ItemName(gen, assoc.adrs[i]);
  }
  return out;
}

const char* SupportTypeName(SupportType type) {
  switch (type) {
    case SupportType::kExplicit: return "explicit";
    case SupportType::kImplicit: return "implicit";
    case SupportType::kSpurious: return "spurious";
  }
  return "?";
}

}  // namespace

int main() {
  FaersGenerator::Params params;
  params.reports_per_quarter = 6000;
  params.num_drugs = 150;
  params.num_adrs = 80;
  params.num_ddis = 10;
  params.seed = 20143;  // "2014 Q3"
  const FaersGenerator gen(params);
  const TransactionDatabase reports = gen.GenerateQuarter(0, 0);
  std::printf("analyzing %zu adverse-event reports (%u drugs, %u ADRs on "
              "record)...\n",
              reports.size(), params.num_drugs, params.num_adrs);

  MarasEngine::Options options;
  options.adr_base = gen.adr_base();
  options.min_count = 10;
  options.max_itemset_size = 7;
  const MarasEngine engine(reports, 0, reports.size(), options);

  std::printf("\n=== top 8 MDAR signals (contrast ranking) ===\n");
  for (size_t i = 0; i < 8 && i < engine.signals().size(); ++i) {
    const MdarSignal& s = engine.signals()[i];
    std::printf("%zu. %s\n", i + 1, FormatAssoc(gen, s.assoc).c_str());
    std::printf("   contrast=%.3f confidence=%.2f reports=%lu support=%s "
                "%s\n",
                s.contrast, s.confidence, static_cast<unsigned long>(s.count),
                SupportTypeName(s.support_type),
                IsHit(s, gen.ground_truth())
                    ? "[confirmed interaction in reference DB]"
                    : "");
  }

  // How would a reviewer fare with the classic measures?
  const auto by_confidence = engine.RankByConfidence();
  const auto by_lift = engine.RankByLift();
  std::printf("\n=== where the same interactions rank under classic "
              "measures ===\n");
  for (const PlantedDdi& ddi : gen.ground_truth()) {
    const size_t maras_rank = RankOfDdi(engine.signals(), ddi);
    if (maras_rank == 0 || maras_rank > 8) continue;
    DrugAdrAssociation assoc{ddi.drugs, {ddi.adr}};
    std::printf("%-44s MARAS #%-4zu confidence #%-6zu RR #%zu\n",
                FormatAssoc(gen, assoc).c_str(), maras_rank,
                RankOfDdi(by_confidence, ddi), RankOfDdi(by_lift, ddi));
  }

  std::printf("\nprecision@10: MARAS=%.2f confidence=%.2f RR=%.2f\n",
              PrecisionAtK(engine.signals(), gen.ground_truth(), 10),
              PrecisionAtK(by_confidence, gen.ground_truth(), 10),
              PrecisionAtK(by_lift, gen.ground_truth(), 10));
  return 0;
}
