// MeDIAR-style drug-safety monitoring: quarters of adverse-event reports
// stream in; each quarter is analyzed with MARAS and every signal's
// contrast is tracked over time. The reviewer sees a queue with brand-new
// signals first, plus the interactions that strengthened since last
// quarter — the temporal pharmacovigilance workflow of the dissertation's
// MeDIAR demo built on this library's MARAS + trajectory machinery.
//
//   $ ./examples/mediar_monitor

#include <cstdio>
#include <string>

#include "datagen/faers_generator.h"
#include "maras/evaluation.h"
#include "maras/mediar.h"

using namespace tara;

namespace {

std::string FormatAssoc(const FaersGenerator& gen,
                        const DrugAdrAssociation& assoc) {
  std::string out;
  for (ItemId d : assoc.drugs) out += "Drug-" + std::to_string(d) + " + ";
  if (!out.empty()) out.resize(out.size() - 3);
  out += " => ";
  for (size_t i = 0; i < assoc.adrs.size(); ++i) {
    if (i) out += ", ";
    out += "ADR-" + std::to_string(assoc.adrs[i] - gen.adr_base());
  }
  return out;
}

}  // namespace

int main() {
  FaersGenerator::Params params;
  params.reports_per_quarter = 5000;
  params.num_drugs = 130;
  params.num_adrs = 70;
  params.num_ddis = 8;
  params.seed = 2016;
  const FaersGenerator gen(params);

  MarasEngine::Options options;
  options.adr_base = gen.adr_base();
  options.min_count = 9;
  options.max_itemset_size = 7;
  options.classify_support = false;
  MediarMonitor monitor(options);

  for (uint32_t q = 0; q < 4; ++q) {
    const TransactionDatabase reports = gen.GenerateQuarter(q, 0);
    monitor.AddQuarter(reports);
    std::printf("=== quarter %u ingested (%zu reports) ===\n", q + 1,
                reports.size());

    const auto queue = monitor.ReviewQueue();
    std::printf("review queue (top 5 of %zu):\n", queue.size());
    for (size_t i = 0; i < queue.size() && i < 5; ++i) {
      const auto* h = queue[i];
      MdarSignal probe;
      probe.assoc = h->assoc;
      std::printf("  %s%-46s contrast=%.3f seen_in=%zu quarters %s\n",
                  h->NewIn(q) ? "[NEW] " : "      ",
                  FormatAssoc(gen, h->assoc).c_str(), h->latest_contrast(),
                  h->quarters.size(),
                  IsHit(probe, gen.ground_truth()) ? "(true interaction)"
                                                   : "");
    }

    if (q > 0) {
      const auto strengthening = monitor.StrengtheningSignals();
      std::printf("strengthening since last quarter: %zu",
                  strengthening.size());
      if (!strengthening.empty()) {
        std::printf(" (max trend +%.3f: %s)",
                    strengthening[0]->trend(),
                    FormatAssoc(gen, strengthening[0]->assoc).c_str());
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  // Summary: how many planted interactions were flagged in >= 2 quarters?
  size_t persistent_hits = 0;
  for (const auto* h : monitor.histories()) {
    MdarSignal probe;
    probe.assoc = h->assoc;
    if (IsHit(probe, gen.ground_truth()) && h->quarters.size() >= 2) {
      ++persistent_hits;
    }
  }
  std::printf("tracked %zu signal histories; %zu true interactions were "
              "flagged in two or more quarters\n",
              monitor.histories().size(), persistent_hits);
  return 0;
}
