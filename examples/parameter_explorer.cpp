// Parameter-space exploration: walks the Evolving Parameter Space the way
// an analyst would — start from a guess, read the stable region, snap to
// the region boundary, diff against a neighboring region, and drill into
// rules about a specific item (Q3, Q2, Q5 of the paper).
//
//   $ ./examples/parameter_explorer

#include <cstdio>
#include <vector>

#include "core/tara_engine.h"
#include "datagen/quest_generator.h"
#include "txdb/evolving_database.h"

using namespace tara;

int main() {
  QuestGenerator::Params gen_params;
  gen_params.num_transactions = 10000;
  gen_params.num_items = 300;
  gen_params.num_patterns = 120;
  gen_params.avg_transaction_len = 9;
  gen_params.seed = 4242;
  const TransactionDatabase db = QuestGenerator(gen_params).Generate();
  const EvolvingDatabase data = EvolvingDatabase::PartitionIntoBatches(db, 5);

  TaraEngine::Options options;
  options.min_support_floor = 0.005;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 5;
  options.build_content_index = true;  // enable Q5
  TaraEngine engine(options);
  engine.BuildAll(data);

  const WindowId newest = engine.window_count() - 1;
  std::printf("knowledge base ready: %u windows, %zu rules interned\n\n",
              engine.window_count(), engine.catalog().size());

  // An analyst's first guess.
  ParameterSetting guess{0.013, 0.37};
  std::printf("guess (minsupp=%.3f, minconf=%.2f)\n", guess.min_support,
              guess.min_confidence);

  // Q3: what region does the guess land in, and what would change it?
  for (int step = 0; step < 4; ++step) {
    const RegionInfo region = engine.RecommendRegion(newest, guess).value();
    std::printf("  region: supp (%.4f, %.4f], conf (%.3f, %.3f] -> %zu "
                "rules\n",
                region.support_lower, region.support_upper,
                region.confidence_lower, region.confidence_upper,
                region.result_size);
    // Recommendation: the region's upper corner is the tightest equivalent
    // setting; stepping just past the lower support boundary admits the
    // next batch of rules.
    if (region.support_lower <= options.min_support_floor) break;
    ParameterSetting next = guess;
    next.min_support = region.support_lower;
    const RegionInfo next_region =
        engine.RecommendRegion(newest, next).value();
    std::printf("  -> relaxing support to %.4f would grow the result to %zu "
                "rules\n",
                next.min_support, next_region.result_size);
    if (next_region.result_size > 60) {
      std::printf("  (stopping: result set large enough)\n");
      break;
    }
    guess = next;
  }

  // Q2: what exactly changed between the last two settings?
  const ParameterSetting chosen = guess;
  const ParameterSetting looser{chosen.min_support * 0.7,
                                chosen.min_confidence};
  const WindowSet windows = WindowSet::Single(newest, engine.window_count());
  const auto diff =
      engine.CompareSettings(looser, chosen, windows, MatchMode::kExact)
          .value();
  std::printf("\nQ2 diff (supp %.4f vs %.4f): %zu rules only at the looser "
              "setting, e.g.:\n",
              looser.min_support, chosen.min_support,
              diff.only_first.size());
  for (size_t i = 0; i < diff.only_first.size() && i < 3; ++i) {
    std::printf("  %s\n",
                engine.catalog().FormatRule(diff.only_first[i]).c_str());
  }

  // Q5: content-based exploration — rules about one specific item.
  const std::vector<RuleId> all = engine.MineWindow(newest, chosen).value();
  if (!all.empty()) {
    const ItemId focus = engine.catalog().rule(all[0]).antecedent[0];
    const std::vector<RuleId> about =
        engine.ContentQuery(newest, {focus}, chosen).value();
    std::printf("\nQ5: %zu of the %zu current rules involve item %u:\n",
                about.size(), all.size(), focus);
    for (size_t i = 0; i < about.size() && i < 4; ++i) {
      std::printf("  %s\n", engine.catalog().FormatRule(about[i]).c_str());
    }
  }
  return 0;
}
