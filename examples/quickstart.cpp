// Quickstart: build a TARA knowledge base over a small evolving dataset
// and run the core interactive operations — mining, trajectories, region
// recommendation, and ruleset comparison.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/tara_engine.h"
#include "datagen/quest_generator.h"
#include "txdb/evolving_database.h"

using namespace tara;

int main() {
  // 1. Generate an evolving dataset: 4 windows of market-basket data.
  QuestGenerator::Params gen_params;
  gen_params.num_transactions = 8000;
  gen_params.num_items = 200;
  gen_params.num_patterns = 80;
  gen_params.avg_transaction_len = 8;
  gen_params.seed = 7;
  const TransactionDatabase db = QuestGenerator(gen_params).Generate();
  const EvolvingDatabase data = EvolvingDatabase::PartitionIntoBatches(db, 4);

  // 2. Offline phase: one pass over the data builds the knowledge base.
  TaraEngine::Options options;
  options.min_support_floor = 0.01;  // archive floor — queries go above it
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 5;
  TaraEngine engine(options);
  engine.BuildAll(data);
  std::printf("built knowledge base: %u windows, %zu distinct rules, "
              "%zu archived entries\n",
              engine.window_count(), engine.catalog().size(),
              engine.archive().entry_count());

  // 3. Online: mine the newest window.
  const ParameterSetting setting{0.02, 0.5};
  const WindowId newest = engine.window_count() - 1;
  // Queries return Expected<..., QueryError>; .value() asserts success,
  // which is the right call for a demo with known-good parameters.
  const std::vector<RuleId> rules =
      engine.MineWindow(newest, setting).value();
  std::printf("\nQ: rules with support >= %.2f, confidence >= %.2f in the "
              "newest window: %zu\n",
              setting.min_support, setting.min_confidence, rules.size());

  // 4. Trajectory of the first few rules across all windows. WindowSet
  // validates the window list once, at construction.
  const WindowSet horizon = engine.AllWindows();
  std::printf("\ntrajectories (support/confidence per window):\n");
  for (size_t i = 0; i < rules.size() && i < 3; ++i) {
    std::printf("  %-28s", engine.catalog().FormatRule(rules[i]).c_str());
    for (const TrajectoryPoint& p :
         BuildTrajectory(engine.archive(), rules[i], horizon.ids())) {
      if (p.present) {
        std::printf("  [%.3f/%.2f]", p.support, p.confidence);
      } else {
        std::printf("  [   --    ]");
      }
    }
    const TrajectoryMeasures m =
        engine.RuleMeasures(rules[i], horizon).value();
    std::printf("  coverage=%.2f stability=%.2f\n", m.coverage, m.stability);
  }

  // 5. Parameter recommendation: the stable region around the setting.
  const RegionInfo region = engine.RecommendRegion(newest, setting).value();
  std::printf("\nstable region around (%.3f, %.2f): support (%.4f, %.4f], "
              "confidence (%.3f, %.3f], %zu rules — any setting inside "
              "gives the same answer\n",
              setting.min_support, setting.min_confidence,
              region.support_lower, region.support_upper,
              region.confidence_lower, region.confidence_upper,
              region.result_size);

  // 6. Compare two settings across all windows.
  const auto diff = engine
                        .CompareSettings(ParameterSetting{0.02, 0.5},
                                         ParameterSetting{0.04, 0.5}, horizon,
                                         MatchMode::kExact)
                        .value();
  std::printf("\ntightening support 0.02 -> 0.04 over all windows drops %zu "
              "rules (gains %zu)\n",
              diff.only_first.size(), diff.only_second.size());
  return 0;
}
