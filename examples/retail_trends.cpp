// Retail trend analysis: the paper's motivating scenario — a retailer's
// evolving transaction log where product popularity drifts between batches.
// Finds the most stable rules, the emerging rules (absent early, strong
// late), and the fading ones, using trajectory measures over the TAR
// Archive; then rolls windows up into a "month" with exact-or-bounded
// measures.
//
//   $ ./examples/retail_trends

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/exploration.h"
#include "core/tara_engine.h"
#include "datagen/basket_generators.h"
#include "txdb/evolving_database.h"

using namespace tara;

namespace {

// Weekend-bundle items injected into alternating weeks only.
constexpr ItemId kGrillItem = 900;
constexpr ItemId kCharcoalItem = 901;

}  // namespace

int main() {
  // Six "weeks" of drifting retail baskets, plus a seasonal bundle (grill +
  // charcoal) that sells only every other week.
  BasketGenerator::Params params = BasketGenerator::RetailPreset();
  params.num_transactions = 4000;
  params.num_items = 800;
  params.drift_rate = 0.004;  // visible drift across six windows
  const BasketGenerator gen(params);
  Rng seasonal_rng(99);
  EvolvingDatabase data;
  for (uint32_t week = 0; week < 6; ++week) {
    TransactionDatabase batch =
        gen.GenerateBatch(week, week * params.num_transactions);
    std::vector<Transaction> transactions = batch.transactions();
    if (week % 2 == 0) {
      for (Transaction& t : transactions) {
        if (seasonal_rng.NextBool(0.05)) {
          t.items.push_back(kGrillItem);
          t.items.push_back(kCharcoalItem);
          Canonicalize(&t.items);
        }
      }
    }
    data.AppendBatch(transactions);
  }

  TaraEngine::Options options;
  options.min_support_floor = 0.004;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 4;
  TaraEngine engine(options);
  engine.BuildAll(data);

  const WindowSet all_weeks = engine.AllWindows();
  const ParameterSetting setting{0.006, 0.3};

  // Rules valid in at least one week, with their evolving measures.
  const std::vector<RuleId> rules =
      engine.MineWindows(all_weeks, setting, MatchMode::kSingle).value();
  struct Scored {
    RuleId rule;
    TrajectoryMeasures m;
  };
  std::vector<Scored> scored;
  for (RuleId r : rules) {
    scored.push_back(Scored{r, engine.RuleMeasures(r, all_weeks).value()});
  }
  std::printf("%zu rules were significant in at least one week\n",
              scored.size());

  auto print_top = [&](const char* title, auto&& better) {
    std::sort(scored.begin(), scored.end(), better);
    std::printf("\n%s\n", title);
    for (size_t i = 0; i < scored.size() && i < 5; ++i) {
      std::printf("  %-24s coverage=%.2f stability=%.2f mean_supp=%.4f\n",
                  engine.catalog().FormatRule(scored[i].rule).c_str(),
                  scored[i].m.coverage, scored[i].m.stability,
                  scored[i].m.mean_support);
    }
  };

  print_top("most stable rules (every week, steady support):",
            [](const Scored& a, const Scored& b) {
              if (a.m.coverage != b.m.coverage) {
                return a.m.coverage > b.m.coverage;
              }
              return a.m.stability > b.m.stability;
            });

  // Emerging: strong in the last week, absent in the first weeks.
  auto emergence = [&](const Scored& s) {
    const Trajectory t = BuildTrajectory(engine.archive(), s.rule, all_weeks.ids());
    const double early = t[0].present ? t[0].support : 0.0;
    const double late = t.back().present ? t.back().support : 0.0;
    return late - early;
  };
  print_top("most emerging rules (gaining support over the six weeks):",
            [&](const Scored& a, const Scored& b) {
              return emergence(a) > emergence(b);
            });
  print_top("most fading rules (losing support):",
            [&](const Scored& a, const Scored& b) {
              return emergence(a) < emergence(b);
            });

  // Periodic rules: the exploration service spots the alternating-week
  // bundle.
  ExplorationService service(&engine);
  const auto periodic = service.TopPeriodic(all_weeks, setting, 3, 3).value();
  std::printf("\nperiodic rules (cycle detected over the six weeks):\n");
  for (const RuleInsight& insight : periodic) {
    std::printf("  %-24s period=%u phase=%u strength=%.2f\n",
                engine.catalog().FormatRule(insight.rule).c_str(),
                insight.periodicity.period, insight.periodicity.phase,
                insight.periodicity.strength);
  }

  // Roll-up: treat weeks 0-3 as a "month" and mine it with bounds.
  const WindowSet month = WindowSet::Range(0, 4, engine.window_count());
  const auto rolled =
      engine.MineRolledUp(month, ParameterSetting{0.01, 0.3}).value();
  std::printf("\nrolled-up month (weeks 1-4): %zu rules certainly valid, "
              "%zu possibly valid (depend on sub-floor windows)\n",
              rolled.certain.size(), rolled.possible.size());
  if (!rolled.certain.empty()) {
    const RollUpBound bound =
        engine.RollUpRule(rolled.certain[0], month).value();
    std::printf("  e.g. %s: support in [%.4f, %.4f], confidence in "
                "[%.3f, %.3f]\n",
                engine.catalog().FormatRule(rolled.certain[0]).c_str(),
                bound.support_lo, bound.support_hi, bound.confidence_lo,
                bound.confidence_hi);
  }
  return 0;
}
