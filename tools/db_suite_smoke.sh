#!/bin/sh
# db-suite smoke test: build a small KB through an interactive session,
# then drive every `db` verb over it — stats/show on the TARAKB2 form,
# split to TARAKB3, verify (clean AND corrupted), a mapped load through
# the session, trim, and rm. Exercises the noun-verb surface end to end.
#
#   db_suite_smoke.sh /path/to/tara_cli
set -e

CLI="$1"
[ -x "$CLI" ] || { echo "usage: db_suite_smoke.sh /path/to/tara_cli"; exit 2; }

WORK="${TMPDIR:-/tmp}/tara_db_suite_$$"
rm -rf "$WORK"
mkdir -p "$WORK"
trap 'rm -rf "$WORK"' EXIT

# Build a 4-window KB and save it segmented (TARAKB2).
printf 'gen quest 3000 120\nwindows 4\nbuild 0.01 0.1\nsavedir %s/kb\nquit\n' \
  "$WORK" | "$CLI" > /dev/null

"$CLI" db stats --kb "$WORK/kb" | grep -q "TARAKB2" \
  || { echo "expected a TARAKB2 stats header"; exit 1; }
[ "$("$CLI" db show --kb "$WORK/kb" | wc -l)" -eq 5 ] \
  || { echo "db show should print 4 windows + header"; exit 1; }
"$CLI" db verify --kb "$WORK/kb" | grep -q "all hashes match" \
  || { echo "TARAKB2 verify failed"; exit 1; }

# Convert to blocks (tiny target size so several blocks appear).
"$CLI" db split --kb "$WORK/kb" --block-bytes 4096 > /dev/null
"$CLI" db stats --kb "$WORK/kb" | grep -q "TARAKB3" \
  || { echo "split did not convert to TARAKB3"; exit 1; }
[ ! -e "$WORK/kb/manifest.tarakb" ] \
  || { echo "split left the TARAKB2 manifest behind"; exit 1; }
"$CLI" db verify --kb "$WORK/kb" | grep -q "all hashes match" \
  || { echo "TARAKB3 verify failed"; exit 1; }

# The mapped session load answers queries over the block form.
printf 'loaddir %s/kb mmap\nmine 2 0.02 0.4\nregion 2 0.02 0.4\nquit\n' \
  "$WORK" | "$CLI" | grep -q "stable region" \
  || { echo "mapped session load failed"; exit 1; }

# Corrupt one payload byte inside a block: verify must catch it, with a
# nonzero exit.
BLOCK=$(ls "$WORK/kb"/block-*.blk | head -1)
SIZE=$(wc -c < "$BLOCK")
dd if=/dev/zero bs=1 count=1 seek=$((SIZE / 2)) conv=notrunc of="$BLOCK" \
  2> /dev/null
if "$CLI" db verify --kb "$WORK/kb" 2> "$WORK/verify.err"; then
  # The flipped byte may have been a zero already — flip it to 0xFF.
  printf '\377' | dd bs=1 count=1 seek=$((SIZE / 2)) conv=notrunc \
    of="$BLOCK" 2> /dev/null
  "$CLI" db verify --kb "$WORK/kb" 2> "$WORK/verify.err" \
    && { echo "verify missed an injected corruption"; exit 1; }
fi
grep -q "." "$WORK/verify.err" || { echo "verify printed no error"; exit 1; }

# Rebuild a clean copy for trim/rm.
rm -rf "$WORK/kb"
printf 'gen quest 3000 120\nwindows 4\nbuild 0.01 0.1\nsavedir %s/kb\nquit\n' \
  "$WORK" | "$CLI" > /dev/null
"$CLI" db split --kb "$WORK/kb" --block-bytes 4096 > /dev/null
"$CLI" db trim --kb "$WORK/kb" --windows 2 > /dev/null
[ "$("$CLI" db show --kb "$WORK/kb" | wc -l)" -eq 3 ] \
  || { echo "trim did not leave 2 windows"; exit 1; }
"$CLI" db verify --kb "$WORK/kb" > /dev/null \
  || { echo "trimmed KB fails verify"; exit 1; }
"$CLI" db rm --kb "$WORK/kb" > /dev/null
[ -z "$(ls "$WORK/kb" 2>/dev/null)" ] \
  || { echo "rm left manifest-named files behind"; exit 1; }

echo "db suite smoke OK"
