// tara_cli: a scriptable command-line explorer for TARA knowledge bases.
//
// Reads one command per line from stdin (so it works both interactively
// and piped). Typical session:
//
//   gen quest 8000 200          # synthesize a dataset (or: load FILE)
//   windows 4                   # partition into tumbling windows
//   build 0.01 0.1              # offline phase with these floors
//   mine 3 0.02 0.5             # rules of window 3
//   region 3 0.02 0.5           # Q3: enclosing stable region
//   diff 0.02 0.5 0.04 0.5      # Q2 across all windows
//   traj 0.02 0.5               # Q1 from the newest window
//   top stable 5                # exploration service
//   metrics [json]              # engine instrument snapshot
//   cache 16777216              # enable the generation-pinned query cache
//   batch queries.q             # replay a query script, per-query latency
//   save kb.bin / loadkb kb.bin # knowledge-base persistence (one stream)
//   savedir kb/ / loaddir kb/   # segmented persistence (one file/window)
//   ingest day9.txt             # live-append a window; persists only the
//                               # new segment when a directory is attached
//   help / quit
//
// With --metrics, a text snapshot of every instrument (per-query-kind
// latency percentiles, build gauges, archive/index sizes) is printed to
// stderr when the session ends.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/exploration.h"
#include "core/kb_blocks.h"
#include "core/kb_open.h"
#include "core/kb_storage.h"
#include "core/serialization.h"
#include "core/tara_engine.h"
#include "datagen/basket_generators.h"
#include "datagen/quest_generator.h"
#include "obs/metrics.h"
#include "server/serving_bootstrap.h"
#include "server/tara_client.h"
#include "txdb/evolving_database.h"
#include "txdb/io.h"

namespace tara::cli {
namespace {

/// Every engine this process builds or loads records into the process
/// registry; the `metrics` command and --metrics read it back.
obs::MetricsRegistry& Registry() { return obs::MetricsRegistry::Global(); }

/// Parses the window-id tail of a query-script line; an empty tail means
/// every one of the `window_count` windows (local engine or remote
/// server alike — the caller supplies whichever count applies).
std::vector<WindowId> ParseWindowTail(std::istringstream& in,
                                      uint32_t window_count) {
  std::vector<WindowId> ids;
  WindowId w = 0;
  while (in >> w) ids.push_back(w);
  if (ids.empty()) {
    for (WindowId i = 0; i < window_count; ++i) ids.push_back(i);
  }
  return ids;
}

/// Parses one query-script line into a request. Returns nullopt (and
/// prints the problem) on a malformed line. Shared by the local `batch`
/// command and the remote query shell.
std::optional<QueryRequest> ParseQueryLine(const std::string& line,
                                           uint32_t window_count) {
  std::istringstream in(line);
  std::string verb;
  in >> verb;
  WindowId w = 0;
  double s = 0, c = 0, s2 = 0, c2 = 0;
  RuleId rule = 0;
  if (verb == "mine" && in >> w >> s >> c) {
    return QueryRequest::MineWindow(w, ParameterSetting{s, c});
  }
  if (verb == "region" && in >> w >> s >> c) {
    return QueryRequest::Region(w, ParameterSetting{s, c});
  }
  if (verb == "traj" && in >> w >> s >> c) {
    return QueryRequest::Trajectory(w, ParameterSetting{s, c},
                                    ParseWindowTail(in, window_count));
  }
  if (verb == "diff" && in >> s >> c >> s2 >> c2) {
    return QueryRequest::Compare(ParameterSetting{s, c},
                                 ParameterSetting{s2, c2},
                                 ParseWindowTail(in, window_count),
                                 MatchMode::kExact);
  }
  if (verb == "measures" && in >> rule) {
    return QueryRequest::Measures(rule, ParseWindowTail(in, window_count));
  }
  if (verb == "content" && in >> w >> s >> c) {
    Itemset items;
    ItemId item = 0;
    while (in >> item) items.push_back(item);
    return QueryRequest::Content(w, std::move(items),
                                 ParameterSetting{s, c});
  }
  if (verb == "view" && in >> w >> s >> c) {
    return QueryRequest::ContentView(w, ParameterSetting{s, c});
  }
  if (verb == "rollup" && in >> rule) {
    return QueryRequest::RollUpRule(rule, ParseWindowTail(in, window_count));
  }
  if (verb == "rollupmine" && in >> s >> c) {
    return QueryRequest::RollUpMine(ParseWindowTail(in, window_count),
                                    ParameterSetting{s, c});
  }
  std::printf("bad query line: %s\n", line.c_str());
  return std::nullopt;
}

/// One-line human summary of a successful query result.
std::string Summarize(const QueryResult& result) {
  char buffer[128];
  if (const auto* rules = std::get_if<std::vector<RuleId>>(&result)) {
    std::snprintf(buffer, sizeof(buffer), "%zu rules", rules->size());
  } else if (const auto* traj = std::get_if<TrajectoryQueryResult>(&result)) {
    std::snprintf(buffer, sizeof(buffer), "%zu rules with trajectories",
                  traj->rules.size());
  } else if (const auto* diff = std::get_if<RulesetDiff>(&result)) {
    std::snprintf(buffer, sizeof(buffer), "only-first %zu, only-second %zu",
                  diff->only_first.size(), diff->only_second.size());
  } else if (const auto* region = std::get_if<RegionInfo>(&result)) {
    std::snprintf(buffer, sizeof(buffer),
                  "region supp (%.5f, %.5f] conf (%.4f, %.4f], %zu rules",
                  region->support_lower, region->support_upper,
                  region->confidence_lower, region->confidence_upper,
                  region->result_size);
  } else if (const auto* measures = std::get_if<TrajectoryMeasures>(&result)) {
    std::snprintf(buffer, sizeof(buffer),
                  "coverage %.2f stability %.2f mean supp %.4f",
                  measures->coverage, measures->stability,
                  measures->mean_support);
  } else if (const auto* view = std::get_if<ContentViewResult>(&result)) {
    std::snprintf(buffer, sizeof(buffer), "%zu items in view", view->size());
  } else if (const auto* bound = std::get_if<RollUpBound>(&result)) {
    std::snprintf(buffer, sizeof(buffer),
                  "supp [%.5f, %.5f] conf [%.4f, %.4f], %u missing",
                  bound->support_lo, bound->support_hi, bound->confidence_lo,
                  bound->confidence_hi, bound->missing_windows);
  } else if (const auto* rolled = std::get_if<RolledUpRules>(&result)) {
    std::snprintf(buffer, sizeof(buffer), "certain %zu, possible %zu",
                  rolled->certain.size(), rolled->possible.size());
  } else {
    std::snprintf(buffer, sizeof(buffer), "ok");
  }
  return buffer;
}

class Session {
 public:
  int Run() {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
    }
    return 0;
  }

 private:
  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command) || command[0] == '#') return true;
    if (command == "quit" || command == "exit") return false;
    if (command == "help") {
      Help();
    } else if (command == "load") {
      Load(in);
    } else if (command == "gen") {
      Generate(in);
    } else if (command == "windows") {
      Windows(in);
    } else if (command == "build") {
      Build(in);
    } else if (command == "mine") {
      Mine(in);
    } else if (command == "region") {
      Region(in);
    } else if (command == "diff") {
      Diff(in);
    } else if (command == "traj") {
      Trajectories(in);
    } else if (command == "top") {
      Top(in);
    } else if (command == "metrics") {
      Metrics(in);
    } else if (command == "cache") {
      Cache(in);
    } else if (command == "wal") {
      Wal(in);
    } else if (command == "batch") {
      Batch(in);
    } else if (command == "save") {
      SaveKb(in);
    } else if (command == "loadkb") {
      LoadKb(in);
    } else if (command == "savedir") {
      SaveDir(in);
    } else if (command == "loaddir") {
      LoadDir(in);
    } else if (command == "ingest") {
      Ingest(in);
    } else {
      std::printf("unknown command '%s' (try: help)\n", command.c_str());
    }
    return true;
  }

  void Help() {
    std::printf(
        "commands:\n"
        "  load FILE             read 'time item item...' lines\n"
        "  gen quest N ITEMS | gen retail N ITEMS   synthesize data\n"
        "  windows K             partition into K tumbling windows\n"
        "  build SUPP CONF       offline phase with these floors\n"
        "  mine W SUPP CONF      rules of window W\n"
        "  region W SUPP CONF    Q3 stable region\n"
        "  diff S1 C1 S2 C2      Q2 exact-match diff over all windows\n"
        "  traj SUPP CONF        Q1 from the newest window\n"
        "  top stable|emerging|fading|periodic K\n"
        "  metrics [json]        instrument snapshot (text or JSON)\n"
        "  cache BYTES           size the query cache (0 disables); applies\n"
        "                        to the current engine and later builds\n"
        "  wal DIR               attach a write-ahead log: appends return\n"
        "                        only after the record is fsync'd; attaching\n"
        "                        replays any tail a crash left behind\n"
        "  batch FILE [group]    replay a query script (one query per line:\n"
        "                        mine W S C | region W S C | traj W S C [W...]\n"
        "                        | diff S1 C1 S2 C2 [W...] | measures R [W...]\n"
        "                        | content W S C ITEM... | view W S C\n"
        "                        | rollup R [W...] | rollupmine S C [W...]);\n"
        "                        'group' sends one ExecuteBatch instead of\n"
        "                        per-query calls\n"
        "  save FILE | loadkb FILE   knowledge-base persistence (stream)\n"
        "  savedir DIR | loaddir DIR  segmented persistence (attaches DIR)\n"
        "  ingest FILE           append FILE as a new window; persists only\n"
        "                        the new segment when a DIR is attached\n"
        "  quit\n");
  }

  /// Prints a rejected query's error and returns false; true on success.
  /// The pattern every query command uses: queries never abort the CLI.
  template <typename T>
  bool Ok(const Expected<T, QueryError>& result) {
    if (result.has_value()) return true;
    std::ostringstream out;
    out << result.error();
    std::printf("rejected: %s\n", out.str().c_str());
    return false;
  }

  /// Same pattern for persistence: prints the LoadError (if any) and
  /// returns true when the operation succeeded.
  bool StoreOk(const std::optional<LoadError>& error) {
    if (!error.has_value()) return true;
    std::ostringstream out;
    out << *error;
    std::printf("failed: %s\n", out.str().c_str());
    return false;
  }

  void Load(std::istringstream& in) {
    std::string path;
    if (!(in >> path)) {
      std::printf("usage: load FILE\n");
      return;
    }
    std::ifstream file(path);
    if (!file) {
      std::printf("cannot open %s\n", path.c_str());
      return;
    }
    db_ = ReadDatabase(&file);
    data_.reset();
    ResetEngine();
    std::printf("loaded %zu transactions, %zu distinct items\n", db_->size(),
                db_->distinct_item_count());
  }

  void Generate(std::istringstream& in) {
    std::string kind;
    uint32_t n = 10000, items = 500;
    in >> kind >> n >> items;
    if (kind == "quest") {
      QuestGenerator::Params params;
      params.num_transactions = n;
      params.num_items = items;
      params.num_patterns = items / 3 + 1;
      params.avg_transaction_len = 9;
      params.seed = 11;
      db_ = QuestGenerator(params).Generate();
    } else if (kind == "retail") {
      BasketGenerator::Params params = BasketGenerator::RetailPreset();
      params.num_transactions = n;
      params.num_items = items;
      db_ = BasketGenerator(params).GenerateBatch(0, 0);
    } else {
      std::printf("usage: gen quest|retail N ITEMS\n");
      return;
    }
    data_.reset();
    ResetEngine();
    std::printf("generated %zu transactions (%s)\n", db_->size(),
                kind.c_str());
  }

  void Windows(std::istringstream& in) {
    uint32_t k = 0;
    if (!(in >> k) || k == 0 || !db_) {
      std::printf("usage: windows K (load or gen data first)\n");
      return;
    }
    data_ = EvolvingDatabase::PartitionIntoBatches(*db_, k);
    ResetEngine();
    std::printf("partitioned into %u windows of ~%zu transactions\n", k,
                db_->size() / k);
  }

  void Build(std::istringstream& in) {
    double supp = 0.01, conf = 0.1;
    in >> supp >> conf;
    if (!data_) {
      std::printf("partition first (windows K)\n");
      return;
    }
    TaraEngine::Options options;
    options.min_support_floor = supp;
    options.min_confidence_floor = conf;
    options.max_itemset_size = 5;
    options.build_content_index = true;
    options.metrics = &Registry();
    options.query_cache_bytes = cache_bytes_;
    ResetEngine();
    engine_ = std::make_unique<TaraEngine>(options);
    // Attach before building so every built window is in the log and a
    // crashed session can be rebuilt from the log alone (recover).
    if (!wal_dir_.empty() && !AttachWalToEngine()) {
      engine_.reset();
      return;
    }
    engine_->BuildAll(*data_);
    double seconds = 0;
    for (const auto& s : engine_->build_stats()) seconds += s.total_seconds();
    std::printf("built: %zu rules interned, %zu archive entries, %.2fs\n",
                engine_->catalog().size(), engine_->archive().entry_count(),
                seconds);
  }

  bool Ready() const {
    if (!engine_) std::printf("build first\n");
    return engine_ != nullptr;
  }

  WindowSet AllWindows() const { return engine_->AllWindows(); }

  void Mine(std::istringstream& in) {
    uint32_t w = 0;
    double supp = 0, conf = 0;
    if (!(in >> w >> supp >> conf) || !Ready()) return;
    const auto result = engine_->MineWindow(w, ParameterSetting{supp, conf});
    if (!Ok(result)) return;
    const std::vector<RuleId>& rules = *result;
    std::printf("%zu rules; first few:\n", rules.size());
    for (size_t i = 0; i < rules.size() && i < 10; ++i) {
      std::printf("  %s\n", engine_->catalog().FormatRule(rules[i]).c_str());
    }
  }

  void Region(std::istringstream& in) {
    uint32_t w = 0;
    double supp = 0, conf = 0;
    if (!(in >> w >> supp >> conf) || !Ready()) return;
    const auto result =
        engine_->RecommendRegion(w, ParameterSetting{supp, conf});
    if (!Ok(result)) return;
    const RegionInfo& r = *result;
    std::printf("stable region: supp (%.5f, %.5f], conf (%.4f, %.4f], "
                "%zu rules\n",
                r.support_lower, r.support_upper, r.confidence_lower,
                r.confidence_upper, r.result_size);
  }

  void Diff(std::istringstream& in) {
    double s1, c1, s2, c2;
    if (!(in >> s1 >> c1 >> s2 >> c2) || !Ready()) return;
    const auto result = engine_->CompareSettings(
        ParameterSetting{s1, c1}, ParameterSetting{s2, c2}, AllWindows(),
        MatchMode::kExact);
    if (!Ok(result)) return;
    std::printf("only (%g,%g): %zu rules; only (%g,%g): %zu rules\n", s1, c1,
                result->only_first.size(), s2, c2,
                result->only_second.size());
  }

  void Trajectories(std::istringstream& in) {
    double supp = 0, conf = 0;
    if (!(in >> supp >> conf) || !Ready()) return;
    const WindowId newest = engine_->window_count() - 1;
    const auto query = engine_->TrajectoryQuery(
        newest, ParameterSetting{supp, conf}, AllWindows());
    if (!Ok(query)) return;
    const auto& result = *query;
    std::printf("%zu rules in the newest window; trajectories:\n",
                result.rules.size());
    for (size_t i = 0; i < result.rules.size() && i < 5; ++i) {
      std::printf("  %-28s",
                  engine_->catalog().FormatRule(result.rules[i]).c_str());
      for (const TrajectoryPoint& p : result.trajectories[i]) {
        std::printf(p.present ? " %.4f" : "   --  ", p.support);
      }
      std::printf("\n");
    }
  }

  void Top(std::istringstream& in) {
    std::string kind;
    size_t k = 5;
    in >> kind >> k;
    if (!Ready()) return;
    ExplorationService service(engine_.get());
    const ParameterSetting floor{engine_->options().min_support_floor,
                                 engine_->options().min_confidence_floor};
    Expected<std::vector<RuleInsight>, QueryError> result =
        std::vector<RuleInsight>{};
    if (kind == "stable") {
      result = service.TopStable(AllWindows(), floor, k);
    } else if (kind == "emerging") {
      result = service.TopEmerging(AllWindows(), floor, k);
    } else if (kind == "fading") {
      result = service.TopFading(AllWindows(), floor, k);
    } else if (kind == "periodic") {
      result = service.TopPeriodic(AllWindows(), floor, k, 4);
    } else {
      std::printf("usage: top stable|emerging|fading|periodic K\n");
      return;
    }
    if (!Ok(result)) return;
    for (const RuleInsight& insight : *result) {
      std::printf("  %-28s coverage=%.2f stability=%.2f emergence=%+.4f",
                  engine_->catalog().FormatRule(insight.rule).c_str(),
                  insight.measures.coverage, insight.measures.stability,
                  insight.emergence);
      if (insight.periodicity.period != 0) {
        std::printf(" period=%u", insight.periodicity.period);
      }
      std::printf("\n");
    }
  }

  void Metrics(std::istringstream& in) {
    std::string format;
    in >> format;
    const std::string snapshot = format == "json"
                                     ? Registry().SnapshotJson()
                                     : Registry().SnapshotText();
    std::fputs(snapshot.c_str(), stdout);
    if (snapshot.empty() || snapshot.back() != '\n') std::printf("\n");
  }

  void Cache(std::istringstream& in) {
    size_t bytes = 0;
    if (!(in >> bytes)) {
      std::printf("usage: cache BYTES (0 disables)\n");
      return;
    }
    cache_bytes_ = bytes;
    if (engine_) engine_->SetQueryCacheBytes(bytes);
    std::printf("query cache %s (%zu bytes)%s\n",
                bytes == 0 ? "disabled" : "enabled", bytes,
                engine_ ? "" : "; applies when an engine is built or loaded");
  }

  void Wal(std::istringstream& in) {
    std::string dir;
    if (!(in >> dir)) {
      std::printf("usage: wal DIR\n");
      return;
    }
    wal_dir_ = dir;
    if (engine_ != nullptr && !engine_->wal_attached()) {
      AttachWalToEngine();
    } else if (engine_ == nullptr) {
      std::printf("write-ahead log %s will attach when an engine is built "
                  "or loaded\n",
                  dir.c_str());
    }
  }

  /// Attaches wal_dir_ to the current engine, replaying any tail the
  /// log holds. Prints the outcome; false on a typed failure.
  bool AttachWalToEngine() {
    const auto stats = engine_->AttachWal(wal_dir_);
    if (!stats.has_value()) {
      std::ostringstream out;
      out << stats.error();
      std::printf("cannot attach WAL %s: %s\n", wal_dir_.c_str(),
                  out.str().c_str());
      return false;
    }
    std::printf("write-ahead log attached at %s (%llu records replayed, "
                "%llu skipped, %llu torn bytes dropped)\n",
                wal_dir_.c_str(),
                static_cast<unsigned long long>(stats->records_replayed),
                static_cast<unsigned long long>(stats->records_skipped),
                static_cast<unsigned long long>(stats->truncated_bytes));
    return true;
  }

  /// After a successful checkpoint (savedir/ingest persistence), the log
  /// records are covered by segments + manifest and can be retired.
  void TruncateWalAfterCheckpoint() {
    if (engine_ == nullptr || !engine_->wal_attached()) return;
    if (const auto error = engine_->TruncateWal()) {
      std::ostringstream out;
      out << *error;
      std::printf("warning: cannot truncate WAL: %s\n", out.str().c_str());
      return;
    }
    std::printf("write-ahead log truncated (checkpoint covers it)\n");
  }

  void PrintCacheStats(const QueryCache::Stats& before) const {
    const QueryCache* cache = engine_->query_cache();
    if (cache == nullptr) {
      std::printf("cache: disabled (enable with: cache BYTES)\n");
      return;
    }
    const QueryCache::Stats now = cache->stats();
    const uint64_t hits = now.hits - before.hits;
    const uint64_t misses = now.misses - before.misses;
    const uint64_t lookups = hits + misses;
    std::printf("cache: %llu hits, %llu misses (hit rate %.3f), "
                "%llu evictions, %llu bytes of %zu\n",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                lookups == 0 ? 0.0
                             : static_cast<double>(hits) /
                                   static_cast<double>(lookups),
                static_cast<unsigned long long>(now.evictions),
                static_cast<unsigned long long>(now.bytes),
                cache->max_bytes());
  }

  void Batch(std::istringstream& in) {
    std::string path, mode;
    if (!(in >> path) || !Ready()) return;
    in >> mode;
    std::ifstream file(path);
    if (!file) {
      std::printf("cannot open %s\n", path.c_str());
      return;
    }
    std::vector<QueryRequest> requests;
    std::string line;
    while (std::getline(file, line)) {
      if (line.empty() || line[0] == '#') continue;
      if (auto request = ParseQueryLine(line, engine_->window_count())) {
        requests.push_back(*std::move(request));
      }
    }
    if (requests.empty()) {
      std::printf("no queries in %s\n", path.c_str());
      return;
    }
    const QueryCache::Stats before = engine_->query_cache() != nullptr
                                         ? engine_->query_cache()->stats()
                                         : QueryCache::Stats{};
    const auto now_us = [] {
      return std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
    const int64_t batch_start = now_us();
    if (mode == "group") {
      // One pinned snapshot, deduplicated, fanned out across the pool.
      const auto results = engine_->ExecuteBatch(requests);
      const int64_t elapsed = now_us() - batch_start;
      for (size_t i = 0; i < results.size(); ++i) {
        if (results[i].has_value()) {
          std::printf("  [%3zu] %-12s %s\n", i,
                      std::string(QueryKindName(requests[i].kind)).c_str(),
                      Summarize(*results[i]).c_str());
        } else {
          std::ostringstream out;
          out << results[i].error();
          std::printf("  [%3zu] %-12s rejected: %s\n", i,
                      std::string(QueryKindName(requests[i].kind)).c_str(),
                      out.str().c_str());
        }
      }
      std::printf("%zu queries in one batch, %.1fus total (%.1fus/query)\n",
                  results.size(), static_cast<double>(elapsed),
                  static_cast<double>(elapsed) /
                      static_cast<double>(results.size()));
    } else {
      for (size_t i = 0; i < requests.size(); ++i) {
        const int64_t start = now_us();
        const auto result = engine_->Execute(requests[i]);
        const int64_t elapsed = now_us() - start;
        if (result.has_value()) {
          std::printf("  [%3zu] %-12s %8.1fus  %s\n", i,
                      std::string(QueryKindName(requests[i].kind)).c_str(),
                      static_cast<double>(elapsed),
                      Summarize(*result).c_str());
        } else {
          std::ostringstream out;
          out << result.error();
          std::printf("  [%3zu] %-12s %8.1fus  rejected: %s\n", i,
                      std::string(QueryKindName(requests[i].kind)).c_str(),
                      static_cast<double>(elapsed), out.str().c_str());
        }
      }
      std::printf("%zu queries, %.1fus total\n", requests.size(),
                  static_cast<double>(now_us() - batch_start));
    }
    PrintCacheStats(before);
  }

  void SaveKb(std::istringstream& in) {
    std::string path;
    if (!(in >> path) || !Ready()) return;
    std::ofstream file(path, std::ios::binary);
    SaveKnowledgeBase(*engine_, &file);
    std::printf("saved knowledge base to %s\n", path.c_str());
  }

  void LoadKb(std::istringstream& in) {
    std::string path;
    if (!(in >> path)) return;
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      std::printf("cannot open %s\n", path.c_str());
      return;
    }
    Expected<TaraEngine, LoadError> loaded =
        LoadKnowledgeBase(&file, &Registry());
    if (!loaded.has_value()) {
      std::ostringstream out;
      out << loaded.error();
      std::printf("failed: %s\n", out.str().c_str());
      return;
    }
    ResetEngine();
    engine_ = std::make_unique<TaraEngine>(std::move(loaded).value());
    if (cache_bytes_ > 0) engine_->SetQueryCacheBytes(cache_bytes_);
    if (!wal_dir_.empty()) AttachWalToEngine();
    std::printf("loaded knowledge base: %u windows, %zu rules\n",
                engine_->window_count(), engine_->catalog().size());
  }

  void SaveDir(std::istringstream& in) {
    std::string dir;
    if (!(in >> dir) || !Ready()) return;
    // Incremental by design: an already-saved prefix is left untouched,
    // in whichever format the directory already holds.
    if (!StoreOk(CheckpointKnowledgeBaseDir(*engine_->Snapshot(), dir))) {
      return;
    }
    attached_dir_ = dir;
    std::printf("saved knowledge base into %s (%u windows, attached)\n",
                dir.c_str(), engine_->window_count());
    TruncateWalAfterCheckpoint();
  }

  void LoadDir(std::istringstream& in) {
    std::string dir, mode;
    if (!(in >> dir)) {
      std::printf("usage: loaddir DIR [mmap]\n");
      return;
    }
    in >> mode;
    OpenOptions options;
    options.kb_dir = dir;
    options.mode = mode == "mmap" ? OpenMode::kMapped : OpenMode::kEager;
    options.metrics = &Registry();
    options.query_cache_bytes = cache_bytes_;
    Expected<TaraEngine, LoadError> loaded = OpenKnowledgeBase(options);
    if (!loaded.has_value()) {
      std::ostringstream out;
      out << loaded.error();
      std::printf("failed: %s\n", out.str().c_str());
      return;
    }
    ResetEngine();
    engine_ = std::make_unique<TaraEngine>(std::move(loaded).value());
    // Attaching after the load replays exactly the windows the last
    // checkpoint missed — the CLI-session form of crash recovery.
    if (!wal_dir_.empty()) AttachWalToEngine();
    attached_dir_ = dir;
    if (engine_->fully_materialized()) {
      std::printf("loaded knowledge base from %s: %u windows, %zu rules "
                  "(attached)\n",
                  dir.c_str(), engine_->window_count(),
                  engine_->catalog().size());
    } else {
      std::printf("mapped knowledge base from %s: %u windows, decoded on "
                  "demand (attached)\n",
                  dir.c_str(), engine_->window_count());
    }
  }

  void Ingest(std::istringstream& in) {
    std::string path;
    if (!(in >> path) || !Ready()) return;
    std::ifstream file(path);
    if (!file) {
      std::printf("cannot open %s\n", path.c_str());
      return;
    }
    const TransactionDatabase batch = ReadDatabase(&file);
    if (batch.size() == 0) {
      std::printf("no transactions in %s\n", path.c_str());
      return;
    }
    const WindowId window = engine_->AppendWindow(batch, 0, batch.size());
    std::printf("ingested %zu transactions as window %u (generation %llu)\n",
                batch.size(), window,
                static_cast<unsigned long long>(engine_->generation()));
    if (attached_dir_.empty()) return;
    // Persists only the new window's segment plus the manifest.
    if (StoreOk(CheckpointKnowledgeBaseDir(*engine_->Snapshot(),
                                           attached_dir_))) {
      std::printf("persisted new segment into %s\n", attached_dir_.c_str());
      TruncateWalAfterCheckpoint();
    }
  }

  /// Drops the engine and any attached knowledge-base directory (the dir
  /// describes the old engine's windows, not the next one's).
  void ResetEngine() {
    engine_.reset();
    attached_dir_.clear();
  }

  std::optional<TransactionDatabase> db_;
  std::optional<EvolvingDatabase> data_;
  std::unique_ptr<TaraEngine> engine_;
  /// Segmented knowledge-base directory that `ingest` appends to.
  std::string attached_dir_;
  /// Query-cache budget set via `cache`; applied to the current engine
  /// immediately and to every engine built or loaded afterwards.
  size_t cache_bytes_ = 0;
  /// Write-ahead-log directory set via `wal`; attached to the current
  /// engine immediately and to every engine built or loaded afterwards.
  std::string wal_dir_;
};

/// The remote query shell behind `tara_cli query --remote HOST:PORT`:
/// the same query-script grammar as the local `batch` command, executed
/// over the wire one line at a time. Window-id tails default to every
/// window the server reported at connect time (refreshed by `info`).
class RemoteShell {
 public:
  RemoteShell(server::TaraClient client, uint32_t deadline_ms)
      : client_(std::move(client)), deadline_ms_(deadline_ms) {}

  int Run() {
    if (!RefreshInfo(/*print=*/true)) return 1;
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream in(line);
      std::string verb;
      in >> verb;
      if (verb == "quit" || verb == "exit") break;
      if (verb == "help") {
        Help();
      } else if (verb == "info") {
        RefreshInfo(/*print=*/true);
      } else if (verb == "ping") {
        const auto pong = client_.Ping();
        std::printf(pong.has_value() ? "pong\n" : "no pong\n");
      } else if (verb == "metrics") {
        std::string format;
        in >> format;
        const auto snapshot = client_.Metrics(format == "json");
        if (snapshot.has_value()) {
          std::fputs(snapshot->c_str(), stdout);
          if (snapshot->empty() || snapshot->back() != '\n') std::printf("\n");
        } else {
          PrintError(snapshot.error());
        }
      } else if (verb == "ingest") {
        Ingest(in);
      } else {
        Query(line);
      }
    }
    return 0;
  }

 private:
  void Help() {
    std::printf(
        "remote commands (deadline %ums):\n"
        "  mine W S C | region W S C | traj W S C [W...]\n"
        "  diff S1 C1 S2 C2 [W...] | measures R [W...]\n"
        "  content W S C ITEM... | view W S C\n"
        "  rollup R [W...] | rollupmine S C [W...]\n"
        "  ingest FILE           append FILE as a new window on the server\n"
        "  metrics [json]        server instrument snapshot\n"
        "  info | ping | quit\n",
        deadline_ms_);
  }

  bool RefreshInfo(bool print) {
    const auto info = client_.Info();
    if (!info.has_value()) {
      PrintError(info.error());
      return false;
    }
    window_count_ = info->window_count;
    if (print) {
      std::printf("remote knowledge base: %u windows, %llu rules, "
                  "generation %llu\n",
                  info->window_count,
                  static_cast<unsigned long long>(info->rule_count),
                  static_cast<unsigned long long>(info->generation));
    }
    return true;
  }

  void Query(const std::string& line) {
    const auto request = ParseQueryLine(line, window_count_);
    if (!request.has_value()) return;
    const auto result = client_.Execute(*request, deadline_ms_);
    if (result.has_value()) {
      std::printf("%-12s %s\n",
                  std::string(QueryKindName(request->kind)).c_str(),
                  Summarize(*result).c_str());
    } else {
      PrintError(result.error());
    }
  }

  void Ingest(std::istringstream& in) {
    std::string path;
    if (!(in >> path)) {
      std::printf("usage: ingest FILE\n");
      return;
    }
    std::ifstream file(path);
    if (!file) {
      std::printf("cannot open %s\n", path.c_str());
      return;
    }
    const TransactionDatabase batch = ReadDatabase(&file);
    if (batch.size() == 0) {
      std::printf("no transactions in %s\n", path.c_str());
      return;
    }
    const auto ack = client_.AppendWindow(batch);
    if (!ack.has_value()) {
      PrintError(ack.error());
      return;
    }
    std::printf("ingested %zu transactions as window %u (generation %llu)\n",
                batch.size(), ack->window,
                static_cast<unsigned long long>(ack->generation));
    window_count_ = ack->window + 1;
  }

  void PrintError(const WireError& error) {
    std::ostringstream out;
    out << error;
    std::printf("error: %s\n", out.str().c_str());
  }

  server::TaraClient client_;
  uint32_t deadline_ms_;
  uint32_t window_count_ = 0;
};

/// `tara_cli wal recover --kb DIR --wal DIR` (legacy alias:
/// `tara_cli recover KBDIR --wal WALDIR`): load the checkpoint (if one
/// exists), replay the log tail, checkpoint the recovered state back
/// into the directory, and retire the log. Exit 0 means the directory
/// now holds every acked window and the log is empty.
int RunRecover(int argc, char** argv) {
  std::string kb_dir, wal_dir;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--wal" && i + 1 < argc) {
      wal_dir = argv[++i];
    } else if (arg == "--kb" && i + 1 < argc) {
      kb_dir = argv[++i];
    } else if (kb_dir.empty() && arg[0] != '-') {
      kb_dir = arg;
    } else {
      kb_dir.clear();
      break;
    }
  }
  if (kb_dir.empty() || wal_dir.empty()) {
    std::fprintf(stderr, "usage: tara_cli wal recover --kb DIR --wal DIR\n");
    return 2;
  }
  OpenOptions options;
  options.kb_dir = kb_dir;
  options.wal_dir = wal_dir;
  options.metrics = &Registry();
  WalReplayStats stats;
  options.replay_stats = &stats;
  auto recovered = OpenKnowledgeBase(options);
  if (!recovered.has_value()) {
    std::ostringstream out;
    out << recovered.error();
    std::fprintf(stderr, "tara_cli recover: %s\n", out.str().c_str());
    return 1;
  }
  TaraEngine engine = std::move(recovered).value();
  std::fprintf(stderr,
               "recovered %u windows (%llu log records replayed, %llu "
               "skipped, %llu torn bytes dropped)\n",
               engine.window_count(),
               static_cast<unsigned long long>(stats.records_replayed),
               static_cast<unsigned long long>(stats.records_skipped),
               static_cast<unsigned long long>(stats.truncated_bytes));
  if (const auto error =
          CheckpointKnowledgeBaseDir(*engine.Snapshot(), kb_dir)) {
    std::ostringstream out;
    out << *error;
    std::fprintf(stderr, "tara_cli recover: cannot checkpoint into %s: %s\n",
                 kb_dir.c_str(), out.str().c_str());
    return 1;
  }
  if (const auto error = engine.TruncateWal()) {
    std::ostringstream out;
    out << *error;
    std::fprintf(stderr, "tara_cli recover: cannot truncate the log: %s\n",
                 out.str().c_str());
    return 1;
  }
  std::fprintf(stderr, "checkpointed into %s and truncated the log\n",
               kb_dir.c_str());
  return 0;
}

/// `tara_cli wal CMD ...`: the write-ahead-log noun. `recover` is its
/// only verb today.
int RunWal(int argc, char** argv) {
  if (argc >= 1 && std::strcmp(argv[0], "recover") == 0) {
    return RunRecover(argc - 1, argv + 1);
  }
  std::fprintf(stderr, "usage: tara_cli wal recover --kb DIR --wal DIR\n");
  return 2;
}

/// Prints a LoadError prefixed with the db verb that hit it; returns 1
/// (the db suite's failure exit code).
int DbFail(const char* verb, const LoadError& error) {
  std::ostringstream out;
  out << error;
  std::fprintf(stderr, "tara_cli db %s: %s\n", verb, out.str().c_str());
  return 1;
}

/// Parses the shared `--kb DIR` grammar of every db verb plus the
/// verb-specific flags handed in as `extra` (flag name -> value slot).
/// Returns false (after printing usage) on a malformed command line.
bool ParseDbArgs(int argc, char** argv, const char* verb,
                 const char* extra_usage, std::string* kb_dir,
                 const std::vector<std::pair<std::string, uint64_t*>>& extra) {
  bool ok = true;
  for (int i = 0; i < argc && ok; ++i) {
    const std::string arg = argv[i];
    if (arg == "--kb" && i + 1 < argc) {
      *kb_dir = argv[++i];
      continue;
    }
    ok = false;
    for (const auto& [flag, slot] : extra) {
      if (arg == flag && i + 1 < argc) {
        *slot = std::strtoull(argv[++i], nullptr, 10);
        ok = true;
        break;
      }
    }
  }
  if (!ok || kb_dir->empty()) {
    std::fprintf(stderr, "usage: tara_cli db %s --kb DIR%s\n", verb,
                 extra_usage);
    return false;
  }
  return true;
}

/// `db stats --kb DIR`: format, options, windows, rules, blocks, bytes —
/// all from the manifest(s), no segment payload read.
int RunDbStats(const std::string& kb_dir) {
  if (KnowledgeBaseBlocksDirExists(kb_dir)) {
    auto manifest = ReadKnowledgeBaseBlocksManifest(kb_dir);
    if (!manifest.has_value()) return DbFail("stats", manifest.error());
    uint64_t payload = 0, file_bytes = 0, entries = 0;
    for (const KbBlockInfo& block : manifest->blocks) {
      file_bytes += block.file_bytes;
      for (const KbBlockRow& row : block.rows) {
        payload += row.segment_bytes;
        entries += row.entry_count;
      }
    }
    std::printf("format:   TARAKB3 (block-partitioned)\n");
    std::printf("windows:  %u in %zu blocks\n", manifest->window_count(),
                manifest->blocks.size());
    std::printf("rules:    %llu\n", static_cast<unsigned long long>(
                                        manifest->rule_watermark()));
    std::printf("entries:  %llu\n", static_cast<unsigned long long>(entries));
    std::printf("bytes:    %llu on disk, %llu segment payload\n",
                static_cast<unsigned long long>(file_bytes),
                static_cast<unsigned long long>(payload));
    std::printf("floors:   supp %g conf %g, max itemset %llu, content "
                "index %s\n",
                manifest->min_support_floor, manifest->min_confidence_floor,
                static_cast<unsigned long long>(manifest->max_itemset_size),
                manifest->build_content_index ? "yes" : "no");
    for (size_t b = 0; b < manifest->blocks.size(); ++b) {
      const KbBlockInfo& block = manifest->blocks[b];
      std::printf("  block-%06llu.blk  windows %u..%u  %llu bytes\n",
                  static_cast<unsigned long long>(block.file_index),
                  block.first_window,
                  block.first_window +
                      static_cast<uint32_t>(block.rows.size()) - 1,
                  static_cast<unsigned long long>(block.file_bytes));
    }
    return 0;
  }
  auto manifest = ReadKnowledgeBaseDirManifest(kb_dir);
  if (!manifest.has_value()) return DbFail("stats", manifest.error());
  uint64_t payload = 0, entries = 0, rules = 0;
  for (const KbManifestRow& row : manifest->rows) {
    payload += row.segment_bytes;
    entries += row.entry_count;
    rules = row.rule_watermark;
  }
  std::printf("format:   TARAKB2 (one segment file per window)\n");
  std::printf("windows:  %zu\n", manifest->rows.size());
  std::printf("rules:    %llu\n", static_cast<unsigned long long>(rules));
  std::printf("entries:  %llu\n", static_cast<unsigned long long>(entries));
  std::printf("bytes:    %llu segment payload\n",
              static_cast<unsigned long long>(payload));
  std::printf("floors:   supp %g conf %g, max itemset %llu, content "
              "index %s\n",
              manifest->min_support_floor, manifest->min_confidence_floor,
              static_cast<unsigned long long>(manifest->max_itemset_size),
              manifest->build_content_index ? "yes" : "no");
  return 0;
}

/// `db show --kb DIR`: the per-window table (either format).
int RunDbShow(const std::string& kb_dir) {
  std::printf("window  transactions      rules    entries      bytes\n");
  const auto print_row = [](WindowId w, uint64_t transactions, uint64_t rules,
                            uint64_t entry_count, uint64_t bytes) {
    std::printf("%6u  %12llu %10llu %10llu %10llu\n", w,
                static_cast<unsigned long long>(transactions),
                static_cast<unsigned long long>(rules),
                static_cast<unsigned long long>(entry_count),
                static_cast<unsigned long long>(bytes));
  };
  if (KnowledgeBaseBlocksDirExists(kb_dir)) {
    auto manifest = ReadKnowledgeBaseBlocksManifest(kb_dir);
    if (!manifest.has_value()) return DbFail("show", manifest.error());
    for (const KbBlockInfo& block : manifest->blocks) {
      WindowId w = block.first_window;
      for (const KbBlockRow& row : block.rows) {
        print_row(w++, row.total_transactions, row.rule_watermark,
                  row.entry_count, row.segment_bytes);
      }
    }
    return 0;
  }
  auto manifest = ReadKnowledgeBaseDirManifest(kb_dir);
  if (!manifest.has_value()) return DbFail("show", manifest.error());
  WindowId w = 0;
  for (const KbManifestRow& row : manifest->rows) {
    print_row(w++, row.total_transactions, row.rule_watermark,
              row.entry_count, row.segment_bytes);
  }
  return 0;
}

/// `db verify --kb DIR`: every content hash checked (block-parallel for
/// TARAKB3); a TARAKB2 directory is verified by a full eager open, which
/// checks the same per-segment hashes. Exit 0 only when everything
/// matches.
int RunDbVerify(const std::string& kb_dir) {
  if (KnowledgeBaseBlocksDirExists(kb_dir)) {
    auto mapped = MappedKb::Open(kb_dir);
    if (!mapped.has_value()) return DbFail("verify", mapped.error());
    std::unique_ptr<ThreadPool> pool;
    if (mapped->manifest().blocks.size() > 1) {
      pool = std::make_unique<ThreadPool>(std::thread::hardware_concurrency());
    }
    if (const auto error = mapped->VerifyHashes(pool.get())) {
      return DbFail("verify", *error);
    }
    std::printf("verified %u windows in %zu blocks: all hashes match\n",
                mapped->window_count(), mapped->manifest().blocks.size());
    return 0;
  }
  OpenOptions options;
  options.kb_dir = kb_dir;
  options.parallelism = 0;
  auto opened = OpenKnowledgeBase(options);
  if (!opened.has_value()) return DbFail("verify", opened.error());
  std::printf("verified %u windows: all hashes match\n",
              opened->window_count());
  return 0;
}

/// `tara_cli db CMD --kb DIR ...`: the DAZZ_DB-style directory suite.
int RunDb(int argc, char** argv) {
  const auto usage = []() -> int {
    std::fprintf(
        stderr,
        "usage: tara_cli db CMD --kb DIR\n"
        "  db stats --kb DIR                  manifest-level summary\n"
        "  db show --kb DIR                   per-window table\n"
        "  db verify --kb DIR                 check every content hash\n"
        "  db split --kb DIR [--block-bytes N]  repartition into blocks\n"
        "  db trim --kb DIR --windows N       keep the first N windows\n"
        "  db rm --kb DIR                     delete the knowledge base\n");
    return 2;
  };
  if (argc < 1) return usage();
  const std::string verb = argv[0];
  --argc;
  ++argv;
  std::string kb_dir;
  if (verb == "stats") {
    if (!ParseDbArgs(argc, argv, "stats", "", &kb_dir, {})) return 2;
    return RunDbStats(kb_dir);
  }
  if (verb == "show") {
    if (!ParseDbArgs(argc, argv, "show", "", &kb_dir, {})) return 2;
    return RunDbShow(kb_dir);
  }
  if (verb == "verify") {
    if (!ParseDbArgs(argc, argv, "verify", "", &kb_dir, {})) return 2;
    return RunDbVerify(kb_dir);
  }
  if (verb == "split") {
    uint64_t block_bytes = kDefaultBlockBytes;
    if (!ParseDbArgs(argc, argv, "split", " [--block-bytes N]", &kb_dir,
                     {{"--block-bytes", &block_bytes}})) {
      return 2;
    }
    if (block_bytes == 0) block_bytes = kDefaultBlockBytes;
    if (const auto error = RepartitionKnowledgeBase(kb_dir, block_bytes)) {
      return DbFail("split", *error);
    }
    auto manifest = ReadKnowledgeBaseBlocksManifest(kb_dir);
    if (!manifest.has_value()) return DbFail("split", manifest.error());
    std::printf("repartitioned %s: %u windows in %zu blocks of ~%llu "
                "bytes\n",
                kb_dir.c_str(), manifest->window_count(),
                manifest->blocks.size(),
                static_cast<unsigned long long>(block_bytes));
    return 0;
  }
  if (verb == "trim") {
    uint64_t windows = UINT64_MAX;
    if (!ParseDbArgs(argc, argv, "trim", " --windows N", &kb_dir,
                     {{"--windows", &windows}}) ||
        windows == UINT64_MAX) {
      if (windows == UINT64_MAX && !kb_dir.empty()) {
        std::fprintf(stderr, "usage: tara_cli db trim --kb DIR --windows N\n");
      }
      return 2;
    }
    if (const auto error =
            TrimKnowledgeBase(kb_dir, static_cast<uint32_t>(windows))) {
      return DbFail("trim", *error);
    }
    std::printf("trimmed %s to %llu windows\n", kb_dir.c_str(),
                static_cast<unsigned long long>(windows));
    return 0;
  }
  if (verb == "rm") {
    if (!ParseDbArgs(argc, argv, "rm", "", &kb_dir, {})) return 2;
    if (const auto error = RemoveKnowledgeBase(kb_dir)) {
      return DbFail("rm", *error);
    }
    std::printf("removed the knowledge base in %s\n", kb_dir.c_str());
    return 0;
  }
  return usage();
}

/// `tara_cli replica status HOST:PORT` — the follower's health at a
/// glance: knowledge-base shape from the info endpoint plus the
/// tara.replica.* series filtered out of the metrics snapshot. Run it
/// against a server started with `serve --replicate-from`.
int RunReplica(int argc, char** argv) {
  const auto usage = []() -> int {
    std::fprintf(stderr, "usage: tara_cli replica status HOST:PORT\n");
    return 2;
  };
  if (argc < 2 || std::string(argv[0]) != "status") return usage();
  std::string host;
  uint16_t port = 0;
  if (!server::SplitHostPort(argv[1], &host, &port)) {
    std::fprintf(stderr, "tara_cli replica: bad HOST:PORT: %s\n", argv[1]);
    return 2;
  }
  auto client = server::TaraClient::Connect(host, port);
  if (!client.has_value()) {
    std::ostringstream out;
    out << client.error();
    std::fprintf(stderr, "tara_cli replica: %s\n", out.str().c_str());
    return 1;
  }
  server::TaraClient remote = std::move(client.value());
  const auto info = remote.Info();
  if (!info.has_value()) {
    std::ostringstream out;
    out << info.error();
    std::fprintf(stderr, "tara_cli replica: %s\n", out.str().c_str());
    return 1;
  }
  std::printf("windows    %u\n", info->window_count);
  std::printf("generation %llu\n",
              static_cast<unsigned long long>(info->generation));
  std::printf("rules      %llu\n",
              static_cast<unsigned long long>(info->rule_count));
  const auto metrics = remote.Metrics(/*json=*/false);
  if (!metrics.has_value()) {
    std::ostringstream out;
    out << metrics.error();
    std::fprintf(stderr, "tara_cli replica: %s\n", out.str().c_str());
    return 1;
  }
  bool any_replica_series = false;
  std::istringstream lines(metrics.value());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("tara.replica.", 0) == 0) {
      std::printf("%s\n", line.c_str());
      any_replica_series = true;
    }
  }
  if (!any_replica_series) {
    std::printf("(no tara.replica.* series — not a replica?)\n");
  }
  return 0;
}

/// The top-level command surface, printed by `tara_cli help` (stdout —
/// pinned by the help-text golden test) and on a bad command line
/// (stderr).
void PrintUsage(std::FILE* out) {
  std::fputs(
      "tara_cli — interactive temporal association analytics\n"
      "\n"
      "usage:\n"
      "  tara_cli [--metrics]            interactive session (commands on\n"
      "                                  stdin; type 'help' inside)\n"
      "  tara_cli db CMD --kb DIR        knowledge-base directory tooling\n"
      "  tara_cli query [--remote HOST:PORT [--deadline MS]]\n"
      "  tara_cli serve HOST:PORT [flags]\n"
      "  tara_cli replica status HOST:PORT\n"
      "  tara_cli wal recover --kb DIR --wal DIR\n"
      "  tara_cli help\n"
      "\n"
      "db commands (all under --kb DIR):\n"
      "  db stats                        format, windows, rules, blocks\n"
      "  db show                         per-window table\n"
      "  db verify                       check every content hash\n"
      "  db split [--block-bytes N]      repartition into balanced blocks\n"
      "                                  (converts TARAKB2 to TARAKB3)\n"
      "  db trim --windows N             keep only the first N windows\n"
      "  db rm                           delete every manifest-named file\n"
      "\n"
      "serve flags:\n"
      "  [--loaddir DIR] [--wal DIR] [--mmap] [--verify]\n"
      "  [--quest N ITEMS] [--windows K] [--floor S C] [--cache BYTES]\n"
      "  [--workers N] [--queue N] [--port-file FILE]\n"
      "  [--replicate-from HOST:PORT]   serve as a read-only hot standby\n"
      "                                  of that primary\n",
      out);
}

int RunRemoteQuery(int argc, char** argv) {
  std::string host;
  uint16_t port = 0;
  uint32_t deadline_ms = 0;
  bool have_remote = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--remote" && i + 1 < argc) {
      if (!server::SplitHostPort(argv[++i], &host, &port)) {
        std::fprintf(stderr, "tara_cli query: bad HOST:PORT: %s\n", argv[i]);
        return 2;
      }
      have_remote = true;
    } else if (arg == "--deadline" && i + 1 < argc) {
      deadline_ms =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: tara_cli query --remote HOST:PORT "
                   "[--deadline MS] < queries\n");
      return 2;
    }
  }
  if (!have_remote) {
    // Without --remote, `query` is the plain local session (the query
    // grammar is available through its `batch` command).
    return Session().Run();
  }
  auto client = server::TaraClient::Connect(host, port);
  if (!client.has_value()) {
    std::ostringstream out;
    out << client.error();
    std::fprintf(stderr, "tara_cli query: %s\n", out.str().c_str());
    return 1;
  }
  return RemoteShell(std::move(client.value()), deadline_ms).Run();
}

}  // namespace
}  // namespace tara::cli

int main(int argc, char** argv) {
  // Noun-verb surface: db / query / serve / wal (+ help). The pre-8
  // verb `recover` stays as a hidden alias of `wal recover`.
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
    return tara::server::RunServeMain(argc - 2, argv + 2, "tara_cli serve");
  }
  if (argc > 1 && std::strcmp(argv[1], "query") == 0) {
    return tara::cli::RunRemoteQuery(argc - 2, argv + 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "db") == 0) {
    return tara::cli::RunDb(argc - 2, argv + 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "replica") == 0) {
    return tara::cli::RunReplica(argc - 2, argv + 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "wal") == 0) {
    return tara::cli::RunWal(argc - 2, argv + 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "recover") == 0) {
    return tara::cli::RunRecover(argc - 2, argv + 2);
  }
  if (argc > 1 && (std::strcmp(argv[1], "help") == 0 ||
                   std::strcmp(argv[1], "--help") == 0)) {
    tara::cli::PrintUsage(stdout);
    return 0;
  }
  bool dump_metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      dump_metrics = true;
    } else {
      tara::cli::PrintUsage(stderr);
      return 2;
    }
  }
  const int status = tara::cli::Session().Run();
  if (dump_metrics) {
    std::fputs(tara::obs::MetricsRegistry::Global().SnapshotText().c_str(),
               stderr);
  }
  return status;
}
