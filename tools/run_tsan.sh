#!/usr/bin/env bash
# Builds the ThreadSanitizer configuration and runs the threading-sensitive
# tests under it: the parallel-build determinism tests, the thread-pool
# tests, and the concurrent-query stress test, plus the rest of the tier-1
# suite. Any TSan report fails the run (halt_on_error).
#
# Usage: tools/run_tsan.sh [extra ctest -R regex]

set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

# Threading-sensitive tests first so a race fails fast.
ctest --test-dir build-tsan --output-on-failure \
  -R 'test_thread_pool|test_parallel_build|test_concurrent_queries'

# Then the full suite: everything must stay clean under TSan.
ctest --test-dir build-tsan --output-on-failure ${1:+-R "$1"}

echo "TSan run clean."
