#!/bin/sh
# Replication smoke test: a WAL-backed primary `tara_cli serve` streams
# to two `--replicate-from` hot standbys. Windows are appended live on
# the primary; both replicas must converge and answer the same query
# script byte-for-byte. One replica is then killed with -9 and
# restarted; it must catch back up from the durable stream and match
# again. Appends against a replica must be refused with the typed
# read_only_replica error.
#
#   replication_smoke.sh /path/to/tara_cli
set -e

CLI="$1"
[ -x "$CLI" ] || { echo "usage: replication_smoke.sh /path/to/tara_cli"; exit 2; }

WORK=$(mktemp -d)
cleanup() {
  for pid in "$PRIMARY_PID" "$REPLICA_A_PID" "$REPLICA_B_PID"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

# Seed checkpoint the primary loads, plus the live windows to append.
printf 'gen quest 2000 100\nwindows 3\nbuild 0.01 0.1\nsavedir %s\nquit\n' \
  "$WORK/kb" | "$CLI" > /dev/null
printf '100 1 2 3\n101 2 3 4\n102 1 3 5\n103 2 4 5\n' > "$WORK/w1.txt"
printf '110 1 2 4\n111 3 4 5\n112 1 2 5\n' > "$WORK/w2.txt"
printf '120 2 3 5\n121 1 4 5\n122 2 3 4\n' > "$WORK/w3.txt"
printf '130 1 2 3\n131 1 3 4\n' > "$WORK/w4.txt"

# The identical query script every node answers; outputs must match.
printf 'mine 2 0.02 0.4
region 1 0.02 0.4
traj 2 0.02 0.4
rollupmine 0.02 0.4
info
quit
' > "$WORK/oracle.q"

wait_port() {
  # wait_port PID PORTFILE LOG
  for _ in $(seq 1 100); do
    [ -s "$2" ] && break
    kill -0 "$1" 2>/dev/null || { cat "$3"; exit 1; }
    sleep 0.1
  done
  [ -s "$2" ] || { echo "server never bound a port ($3)"; exit 1; }
}

wait_windows() {
  # wait_windows PORT COUNT: poll `replica status` until `windows COUNT`.
  for _ in $(seq 1 200); do
    if "$CLI" replica status "127.0.0.1:$1" 2>/dev/null \
        | grep -q "^windows  *$2\$"; then
      return 0
    fi
    sleep 0.1
  done
  echo "replica on port $1 never reached $2 windows"
  "$CLI" replica status "127.0.0.1:$1" || true
  exit 1
}

"$CLI" serve 127.0.0.1:0 --loaddir "$WORK/kb" --wal "$WORK/wal" \
  --port-file "$WORK/pport" </dev/null 2>"$WORK/primary.log" &
PRIMARY_PID=$!
wait_port "$PRIMARY_PID" "$WORK/pport" "$WORK/primary.log"
PPORT=$(cat "$WORK/pport")

start_replica() {
  # start_replica NAME -> sets REPLICA_PID and REPLICA_PORT
  "$CLI" serve 127.0.0.1:0 --replicate-from "127.0.0.1:$PPORT" \
    --port-file "$WORK/$1.port" </dev/null 2>"$WORK/$1.log" &
  REPLICA_PID=$!
  wait_port "$REPLICA_PID" "$WORK/$1.port" "$WORK/$1.log"
  REPLICA_PORT=$(cat "$WORK/$1.port")
}

start_replica a
REPLICA_A_PID=$REPLICA_PID; APORT=$REPLICA_PORT
start_replica b
REPLICA_B_PID=$REPLICA_PID; BPORT=$REPLICA_PORT

wait_windows "$APORT" 3
wait_windows "$BPORT" 3

# Live appends on the primary; each ack means the WAL record is durable
# and therefore eligible for the replication stream.
printf 'ingest %s\ningest %s\ningest %s\nquit\n' \
  "$WORK/w1.txt" "$WORK/w2.txt" "$WORK/w3.txt" \
  | "$CLI" query --remote "127.0.0.1:$PPORT" --deadline 10000 \
  > "$WORK/ingest.log"
ACKED=$(grep -c '^ingested' "$WORK/ingest.log" || true)
[ "$ACKED" -eq 3 ] || { echo "expected 3 acks, got $ACKED"; cat "$WORK/ingest.log"; exit 1; }

wait_windows "$APORT" 6
wait_windows "$BPORT" 6

# Divergence oracle: the same query script against the primary and both
# replicas must produce identical bytes.
"$CLI" query --remote "127.0.0.1:$PPORT" --deadline 10000 \
  < "$WORK/oracle.q" > "$WORK/out.primary"
"$CLI" query --remote "127.0.0.1:$APORT" --deadline 10000 \
  < "$WORK/oracle.q" > "$WORK/out.a"
"$CLI" query --remote "127.0.0.1:$BPORT" --deadline 10000 \
  < "$WORK/oracle.q" > "$WORK/out.b"
diff "$WORK/out.primary" "$WORK/out.a" \
  || { echo "replica A diverges from the primary"; exit 1; }
diff "$WORK/out.primary" "$WORK/out.b" \
  || { echo "replica B diverges from the primary"; exit 1; }
echo "both replicas answer the oracle script identically at 6 windows"

# Appends against a replica must be refused with the typed code, and
# must not change its window count.
printf 'ingest %s\nquit\n' "$WORK/w4.txt" \
  | "$CLI" query --remote "127.0.0.1:$APORT" --deadline 10000 \
  > "$WORK/readonly.log" || true
grep -q 'read_only_replica' "$WORK/readonly.log" \
  || { echo "replica accepted (or mis-typed) a write"; cat "$WORK/readonly.log"; exit 1; }
wait_windows "$APORT" 6

# kill -9 replica B mid-life, append another window while it is down,
# then restart it: it must resubscribe and converge.
kill -9 "$REPLICA_B_PID"
wait "$REPLICA_B_PID" 2>/dev/null || true
REPLICA_B_PID=""
rm -f "$WORK/b.port"

printf 'ingest %s\nquit\n' "$WORK/w4.txt" \
  | "$CLI" query --remote "127.0.0.1:$PPORT" --deadline 10000 \
  | grep -q '^ingested' || { echo "append while replica down failed"; exit 1; }
wait_windows "$APORT" 7

start_replica b
REPLICA_B_PID=$REPLICA_PID; BPORT=$REPLICA_PORT
wait_windows "$BPORT" 7

"$CLI" query --remote "127.0.0.1:$PPORT" --deadline 10000 \
  < "$WORK/oracle.q" > "$WORK/out.primary7"
"$CLI" query --remote "127.0.0.1:$BPORT" --deadline 10000 \
  < "$WORK/oracle.q" > "$WORK/out.b7"
diff "$WORK/out.primary7" "$WORK/out.b7" \
  || { echo "restarted replica B diverges from the primary"; exit 1; }
echo "restarted replica matches the primary at 7 windows"

# Clean shutdowns all around.
for pid in "$REPLICA_A_PID" "$REPLICA_B_PID" "$PRIMARY_PID"; do
  kill -TERM "$pid"
  wait "$pid" || { echo "exit status $? from pid $pid"; exit 1; }
done
REPLICA_A_PID=""; REPLICA_B_PID=""; PRIMARY_PID=""
echo "replication smoke ok"
