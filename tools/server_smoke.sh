#!/bin/sh
# Server smoke test: start `tara_cli serve` on an ephemeral port, drive
# queries and a live append through `tara_cli query --remote`, then shut
# the server down with SIGTERM and require a clean exit.
#
#   server_smoke.sh /path/to/tara_cli
set -e

CLI="$1"
[ -x "$CLI" ] || { echo "usage: server_smoke.sh /path/to/tara_cli"; exit 2; }

WORK=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

"$CLI" serve 127.0.0.1:0 --quest 2000 100 --windows 3 \
  --port-file "$WORK/port" </dev/null 2>"$WORK/serve.log" &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -s "$WORK/port" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/serve.log"; exit 1; }
  sleep 0.1
done
[ -s "$WORK/port" ] || { echo "server never bound a port"; exit 1; }
PORT=$(cat "$WORK/port")

# A window of transactions to live-append (timestamps non-decreasing).
printf '100 1 2 3\n101 2 3 4\n102 1 3 5\n103 2 4 5\n' > "$WORK/ingest.txt"

printf 'mine 2 0.02 0.4
region 1 0.02 0.4
traj 2 0.02 0.4
ingest %s
info
metrics
quit
' "$WORK/ingest.txt" | "$CLI" query --remote "127.0.0.1:$PORT" --deadline 10000

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
STATUS=$?
SERVER_PID=""
[ "$STATUS" -eq 0 ] || { echo "server exit status $STATUS"; exit 1; }
echo "server smoke OK"
