#!/bin/sh
# Crash-recovery smoke test: kill -9 a live-appending `tara_cli serve`
# running with a write-ahead log, recover with `tara_cli recover`, and
# require the recovered knowledge-base directory to be byte-identical to
# an uncrashed reference holding the same acked windows. Then restart
# the server on the recovered state and shut it down cleanly.
#
#   crash_recovery_smoke.sh /path/to/tara_cli
set -e

CLI="$1"
[ -x "$CLI" ] || { echo "usage: crash_recovery_smoke.sh /path/to/tara_cli"; exit 2; }

WORK=$(mktemp -d)
cleanup() {
  if [ -n "$SERVER_PID" ]; then kill -9 "$SERVER_PID" 2>/dev/null || true; fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# The windows to live-append (timestamps non-decreasing per file). w5 is
# big enough that the kill below can land mid-append.
printf '100 1 2 3\n101 2 3 4\n102 1 3 5\n103 2 4 5\n' > "$WORK/w1.txt"
printf '110 1 2 4\n111 3 4 5\n112 1 2 5\n' > "$WORK/w2.txt"
printf '120 2 3 5\n121 1 4 5\n122 2 3 4\n' > "$WORK/w3.txt"
printf '130 1 2 3\n131 1 3 4\n' > "$WORK/w4.txt"
i=0
while [ $i -lt 400 ]; do
  echo "14$((i / 10)) $((i % 7 + 1)) $((i % 5 + 8)) $((i % 3 + 14))"
  i=$((i + 1))
done > "$WORK/w5.txt"

# Seed checkpoint the server loads, and uncrashed references at 7 and 8
# windows (the CLI and the serve bootstrap build the same deterministic
# Quest base from these parameters).
printf 'gen quest 2000 100\nwindows 3\nbuild 0.01 0.1\nsavedir %s\nquit\n' \
  "$WORK/kb" | "$CLI" > /dev/null
printf 'gen quest 2000 100\nwindows 3\nbuild 0.01 0.1\ningest %s\ningest %s\ningest %s\ningest %s\nsavedir %s\nquit\n' \
  "$WORK/w1.txt" "$WORK/w2.txt" "$WORK/w3.txt" "$WORK/w4.txt" \
  "$WORK/ref7" | "$CLI" > /dev/null
printf 'gen quest 2000 100\nwindows 3\nbuild 0.01 0.1\ningest %s\ningest %s\ningest %s\ningest %s\ningest %s\nsavedir %s\nquit\n' \
  "$WORK/w1.txt" "$WORK/w2.txt" "$WORK/w3.txt" "$WORK/w4.txt" \
  "$WORK/w5.txt" "$WORK/ref8" | "$CLI" > /dev/null

start_server() {
  "$CLI" serve 127.0.0.1:0 --loaddir "$WORK/kb" --wal "$WORK/wal" \
    --port-file "$WORK/port" </dev/null 2>"$WORK/serve.log" &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/serve.log"; exit 1; }
    sleep 0.1
  done
  [ -s "$WORK/port" ] || { echo "server never bound a port"; exit 1; }
  PORT=$(cat "$WORK/port")
}

start_server

# Four acked appends: once each `ingested` line prints, the WAL record
# behind it is fdatasync'd and must survive any crash.
printf 'ingest %s\ningest %s\ningest %s\ningest %s\nquit\n' \
  "$WORK/w1.txt" "$WORK/w2.txt" "$WORK/w3.txt" "$WORK/w4.txt" \
  | "$CLI" query --remote "127.0.0.1:$PORT" --deadline 10000 \
  > "$WORK/ingest.log"
ACKED=$(grep -c '^ingested' "$WORK/ingest.log" || true)
[ "$ACKED" -eq 4 ] || { echo "expected 4 acks, got $ACKED"; cat "$WORK/ingest.log"; exit 1; }

# A fifth append races a kill -9: the recovered state may or may not
# contain it (it was never acked), but must never lose windows 1-4.
printf 'ingest %s\nquit\n' "$WORK/w5.txt" \
  | "$CLI" query --remote "127.0.0.1:$PORT" > /dev/null 2>&1 &
INGEST_PID=$!
sleep 0.2
kill -9 "$SERVER_PID"
wait "$INGEST_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
rm -f "$WORK/port"

"$CLI" recover "$WORK/kb" --wal "$WORK/wal" 2> "$WORK/recover.log"
cat "$WORK/recover.log"
COUNT=$(sed -n 's/^recovered \([0-9][0-9]*\) windows.*/\1/p' "$WORK/recover.log")
case "$COUNT" in
  7) REF="$WORK/ref7" ;;
  8) REF="$WORK/ref8" ;;
  *) echo "unexpected recovered window count: '$COUNT'"; exit 1 ;;
esac

# The acceptance bar: recovered bytes == the uncrashed reference at the
# recovered window count.
diff -r "$WORK/kb" "$REF" || { echo "recovered state diverges from the reference"; exit 1; }
echo "recovered state matches the $COUNT-window reference byte-for-byte"

# The recovered checkpoint serves again (and the truncated log re-attaches).
start_server
printf 'info\nquit\n' | "$CLI" query --remote "127.0.0.1:$PORT" \
  > "$WORK/info.log"
grep "remote knowledge base: $COUNT windows" "$WORK/info.log" > /dev/null \
  || { echo "restarted server does not serve the recovered state"; cat "$WORK/info.log"; exit 1; }

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
STATUS=$?
SERVER_PID=""
[ "$STATUS" -eq 0 ] || { echo "server exit status $STATUS"; exit 1; }
echo "crash recovery smoke OK"
