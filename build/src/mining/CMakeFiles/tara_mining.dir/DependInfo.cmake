
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mining/apriori.cc" "src/mining/CMakeFiles/tara_mining.dir/apriori.cc.o" "gcc" "src/mining/CMakeFiles/tara_mining.dir/apriori.cc.o.d"
  "/root/repo/src/mining/closed_itemsets.cc" "src/mining/CMakeFiles/tara_mining.dir/closed_itemsets.cc.o" "gcc" "src/mining/CMakeFiles/tara_mining.dir/closed_itemsets.cc.o.d"
  "/root/repo/src/mining/eclat.cc" "src/mining/CMakeFiles/tara_mining.dir/eclat.cc.o" "gcc" "src/mining/CMakeFiles/tara_mining.dir/eclat.cc.o.d"
  "/root/repo/src/mining/fp_growth.cc" "src/mining/CMakeFiles/tara_mining.dir/fp_growth.cc.o" "gcc" "src/mining/CMakeFiles/tara_mining.dir/fp_growth.cc.o.d"
  "/root/repo/src/mining/frequent_itemset.cc" "src/mining/CMakeFiles/tara_mining.dir/frequent_itemset.cc.o" "gcc" "src/mining/CMakeFiles/tara_mining.dir/frequent_itemset.cc.o.d"
  "/root/repo/src/mining/h_mine.cc" "src/mining/CMakeFiles/tara_mining.dir/h_mine.cc.o" "gcc" "src/mining/CMakeFiles/tara_mining.dir/h_mine.cc.o.d"
  "/root/repo/src/mining/rule_generation.cc" "src/mining/CMakeFiles/tara_mining.dir/rule_generation.cc.o" "gcc" "src/mining/CMakeFiles/tara_mining.dir/rule_generation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txdb/CMakeFiles/tara_txdb.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tara_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
