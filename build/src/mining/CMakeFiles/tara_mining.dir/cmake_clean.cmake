file(REMOVE_RECURSE
  "CMakeFiles/tara_mining.dir/apriori.cc.o"
  "CMakeFiles/tara_mining.dir/apriori.cc.o.d"
  "CMakeFiles/tara_mining.dir/closed_itemsets.cc.o"
  "CMakeFiles/tara_mining.dir/closed_itemsets.cc.o.d"
  "CMakeFiles/tara_mining.dir/eclat.cc.o"
  "CMakeFiles/tara_mining.dir/eclat.cc.o.d"
  "CMakeFiles/tara_mining.dir/fp_growth.cc.o"
  "CMakeFiles/tara_mining.dir/fp_growth.cc.o.d"
  "CMakeFiles/tara_mining.dir/frequent_itemset.cc.o"
  "CMakeFiles/tara_mining.dir/frequent_itemset.cc.o.d"
  "CMakeFiles/tara_mining.dir/h_mine.cc.o"
  "CMakeFiles/tara_mining.dir/h_mine.cc.o.d"
  "CMakeFiles/tara_mining.dir/rule_generation.cc.o"
  "CMakeFiles/tara_mining.dir/rule_generation.cc.o.d"
  "libtara_mining.a"
  "libtara_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tara_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
