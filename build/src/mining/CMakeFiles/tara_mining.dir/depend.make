# Empty dependencies file for tara_mining.
# This may be replaced when dependencies are built.
