file(REMOVE_RECURSE
  "libtara_mining.a"
)
