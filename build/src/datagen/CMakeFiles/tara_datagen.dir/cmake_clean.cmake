file(REMOVE_RECURSE
  "CMakeFiles/tara_datagen.dir/basket_generators.cc.o"
  "CMakeFiles/tara_datagen.dir/basket_generators.cc.o.d"
  "CMakeFiles/tara_datagen.dir/faers_generator.cc.o"
  "CMakeFiles/tara_datagen.dir/faers_generator.cc.o.d"
  "CMakeFiles/tara_datagen.dir/quest_generator.cc.o"
  "CMakeFiles/tara_datagen.dir/quest_generator.cc.o.d"
  "libtara_datagen.a"
  "libtara_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tara_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
