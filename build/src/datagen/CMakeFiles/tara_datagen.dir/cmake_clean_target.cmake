file(REMOVE_RECURSE
  "libtara_datagen.a"
)
