
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/basket_generators.cc" "src/datagen/CMakeFiles/tara_datagen.dir/basket_generators.cc.o" "gcc" "src/datagen/CMakeFiles/tara_datagen.dir/basket_generators.cc.o.d"
  "/root/repo/src/datagen/faers_generator.cc" "src/datagen/CMakeFiles/tara_datagen.dir/faers_generator.cc.o" "gcc" "src/datagen/CMakeFiles/tara_datagen.dir/faers_generator.cc.o.d"
  "/root/repo/src/datagen/quest_generator.cc" "src/datagen/CMakeFiles/tara_datagen.dir/quest_generator.cc.o" "gcc" "src/datagen/CMakeFiles/tara_datagen.dir/quest_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txdb/CMakeFiles/tara_txdb.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tara_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
