# Empty dependencies file for tara_datagen.
# This may be replaced when dependencies are built.
