# Empty dependencies file for tara_core.
# This may be replaced when dependencies are built.
