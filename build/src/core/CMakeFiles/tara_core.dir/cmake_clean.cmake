file(REMOVE_RECURSE
  "CMakeFiles/tara_core.dir/exploration.cc.o"
  "CMakeFiles/tara_core.dir/exploration.cc.o.d"
  "CMakeFiles/tara_core.dir/periodicity.cc.o"
  "CMakeFiles/tara_core.dir/periodicity.cc.o.d"
  "CMakeFiles/tara_core.dir/rule_catalog.cc.o"
  "CMakeFiles/tara_core.dir/rule_catalog.cc.o.d"
  "CMakeFiles/tara_core.dir/serialization.cc.o"
  "CMakeFiles/tara_core.dir/serialization.cc.o.d"
  "CMakeFiles/tara_core.dir/stable_region_index.cc.o"
  "CMakeFiles/tara_core.dir/stable_region_index.cc.o.d"
  "CMakeFiles/tara_core.dir/tar_archive.cc.o"
  "CMakeFiles/tara_core.dir/tar_archive.cc.o.d"
  "CMakeFiles/tara_core.dir/tara_engine.cc.o"
  "CMakeFiles/tara_core.dir/tara_engine.cc.o.d"
  "CMakeFiles/tara_core.dir/trajectory.cc.o"
  "CMakeFiles/tara_core.dir/trajectory.cc.o.d"
  "libtara_core.a"
  "libtara_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tara_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
