
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/exploration.cc" "src/core/CMakeFiles/tara_core.dir/exploration.cc.o" "gcc" "src/core/CMakeFiles/tara_core.dir/exploration.cc.o.d"
  "/root/repo/src/core/periodicity.cc" "src/core/CMakeFiles/tara_core.dir/periodicity.cc.o" "gcc" "src/core/CMakeFiles/tara_core.dir/periodicity.cc.o.d"
  "/root/repo/src/core/rule_catalog.cc" "src/core/CMakeFiles/tara_core.dir/rule_catalog.cc.o" "gcc" "src/core/CMakeFiles/tara_core.dir/rule_catalog.cc.o.d"
  "/root/repo/src/core/serialization.cc" "src/core/CMakeFiles/tara_core.dir/serialization.cc.o" "gcc" "src/core/CMakeFiles/tara_core.dir/serialization.cc.o.d"
  "/root/repo/src/core/stable_region_index.cc" "src/core/CMakeFiles/tara_core.dir/stable_region_index.cc.o" "gcc" "src/core/CMakeFiles/tara_core.dir/stable_region_index.cc.o.d"
  "/root/repo/src/core/tar_archive.cc" "src/core/CMakeFiles/tara_core.dir/tar_archive.cc.o" "gcc" "src/core/CMakeFiles/tara_core.dir/tar_archive.cc.o.d"
  "/root/repo/src/core/tara_engine.cc" "src/core/CMakeFiles/tara_core.dir/tara_engine.cc.o" "gcc" "src/core/CMakeFiles/tara_core.dir/tara_engine.cc.o.d"
  "/root/repo/src/core/trajectory.cc" "src/core/CMakeFiles/tara_core.dir/trajectory.cc.o" "gcc" "src/core/CMakeFiles/tara_core.dir/trajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mining/CMakeFiles/tara_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/txdb/CMakeFiles/tara_txdb.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tara_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
