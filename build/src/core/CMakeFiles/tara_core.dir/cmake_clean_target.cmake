file(REMOVE_RECURSE
  "libtara_core.a"
)
