
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/maras/contrast.cc" "src/maras/CMakeFiles/tara_maras.dir/contrast.cc.o" "gcc" "src/maras/CMakeFiles/tara_maras.dir/contrast.cc.o.d"
  "/root/repo/src/maras/drug_adr.cc" "src/maras/CMakeFiles/tara_maras.dir/drug_adr.cc.o" "gcc" "src/maras/CMakeFiles/tara_maras.dir/drug_adr.cc.o.d"
  "/root/repo/src/maras/evaluation.cc" "src/maras/CMakeFiles/tara_maras.dir/evaluation.cc.o" "gcc" "src/maras/CMakeFiles/tara_maras.dir/evaluation.cc.o.d"
  "/root/repo/src/maras/maras_engine.cc" "src/maras/CMakeFiles/tara_maras.dir/maras_engine.cc.o" "gcc" "src/maras/CMakeFiles/tara_maras.dir/maras_engine.cc.o.d"
  "/root/repo/src/maras/mediar.cc" "src/maras/CMakeFiles/tara_maras.dir/mediar.cc.o" "gcc" "src/maras/CMakeFiles/tara_maras.dir/mediar.cc.o.d"
  "/root/repo/src/maras/tidset_index.cc" "src/maras/CMakeFiles/tara_maras.dir/tidset_index.cc.o" "gcc" "src/maras/CMakeFiles/tara_maras.dir/tidset_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mining/CMakeFiles/tara_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/tara_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/txdb/CMakeFiles/tara_txdb.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tara_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
