# Empty dependencies file for tara_maras.
# This may be replaced when dependencies are built.
