file(REMOVE_RECURSE
  "CMakeFiles/tara_maras.dir/contrast.cc.o"
  "CMakeFiles/tara_maras.dir/contrast.cc.o.d"
  "CMakeFiles/tara_maras.dir/drug_adr.cc.o"
  "CMakeFiles/tara_maras.dir/drug_adr.cc.o.d"
  "CMakeFiles/tara_maras.dir/evaluation.cc.o"
  "CMakeFiles/tara_maras.dir/evaluation.cc.o.d"
  "CMakeFiles/tara_maras.dir/maras_engine.cc.o"
  "CMakeFiles/tara_maras.dir/maras_engine.cc.o.d"
  "CMakeFiles/tara_maras.dir/mediar.cc.o"
  "CMakeFiles/tara_maras.dir/mediar.cc.o.d"
  "CMakeFiles/tara_maras.dir/tidset_index.cc.o"
  "CMakeFiles/tara_maras.dir/tidset_index.cc.o.d"
  "libtara_maras.a"
  "libtara_maras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tara_maras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
