file(REMOVE_RECURSE
  "libtara_maras.a"
)
