# Empty compiler generated dependencies file for tara_baselines.
# This may be replaced when dependencies are built.
