file(REMOVE_RECURSE
  "libtara_baselines.a"
)
