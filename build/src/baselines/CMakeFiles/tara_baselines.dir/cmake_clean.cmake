file(REMOVE_RECURSE
  "CMakeFiles/tara_baselines.dir/dctar.cc.o"
  "CMakeFiles/tara_baselines.dir/dctar.cc.o.d"
  "CMakeFiles/tara_baselines.dir/hmine_baseline.cc.o"
  "CMakeFiles/tara_baselines.dir/hmine_baseline.cc.o.d"
  "CMakeFiles/tara_baselines.dir/paras_baseline.cc.o"
  "CMakeFiles/tara_baselines.dir/paras_baseline.cc.o.d"
  "libtara_baselines.a"
  "libtara_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tara_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
