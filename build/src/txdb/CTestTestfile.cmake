# CMake generated Testfile for 
# Source directory: /root/repo/src/txdb
# Build directory: /root/repo/build/src/txdb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
