
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txdb/dictionary.cc" "src/txdb/CMakeFiles/tara_txdb.dir/dictionary.cc.o" "gcc" "src/txdb/CMakeFiles/tara_txdb.dir/dictionary.cc.o.d"
  "/root/repo/src/txdb/evolving_database.cc" "src/txdb/CMakeFiles/tara_txdb.dir/evolving_database.cc.o" "gcc" "src/txdb/CMakeFiles/tara_txdb.dir/evolving_database.cc.o.d"
  "/root/repo/src/txdb/io.cc" "src/txdb/CMakeFiles/tara_txdb.dir/io.cc.o" "gcc" "src/txdb/CMakeFiles/tara_txdb.dir/io.cc.o.d"
  "/root/repo/src/txdb/transaction_database.cc" "src/txdb/CMakeFiles/tara_txdb.dir/transaction_database.cc.o" "gcc" "src/txdb/CMakeFiles/tara_txdb.dir/transaction_database.cc.o.d"
  "/root/repo/src/txdb/types.cc" "src/txdb/CMakeFiles/tara_txdb.dir/types.cc.o" "gcc" "src/txdb/CMakeFiles/tara_txdb.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tara_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
