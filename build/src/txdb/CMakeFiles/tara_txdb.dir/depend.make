# Empty dependencies file for tara_txdb.
# This may be replaced when dependencies are built.
