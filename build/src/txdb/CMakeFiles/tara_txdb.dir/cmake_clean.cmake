file(REMOVE_RECURSE
  "CMakeFiles/tara_txdb.dir/dictionary.cc.o"
  "CMakeFiles/tara_txdb.dir/dictionary.cc.o.d"
  "CMakeFiles/tara_txdb.dir/evolving_database.cc.o"
  "CMakeFiles/tara_txdb.dir/evolving_database.cc.o.d"
  "CMakeFiles/tara_txdb.dir/io.cc.o"
  "CMakeFiles/tara_txdb.dir/io.cc.o.d"
  "CMakeFiles/tara_txdb.dir/transaction_database.cc.o"
  "CMakeFiles/tara_txdb.dir/transaction_database.cc.o.d"
  "CMakeFiles/tara_txdb.dir/types.cc.o"
  "CMakeFiles/tara_txdb.dir/types.cc.o.d"
  "libtara_txdb.a"
  "libtara_txdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tara_txdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
