file(REMOVE_RECURSE
  "libtara_txdb.a"
)
