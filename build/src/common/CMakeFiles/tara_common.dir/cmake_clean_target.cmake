file(REMOVE_RECURSE
  "libtara_common.a"
)
