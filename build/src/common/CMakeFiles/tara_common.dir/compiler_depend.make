# Empty compiler generated dependencies file for tara_common.
# This may be replaced when dependencies are built.
