file(REMOVE_RECURSE
  "CMakeFiles/tara_common.dir/logging.cc.o"
  "CMakeFiles/tara_common.dir/logging.cc.o.d"
  "CMakeFiles/tara_common.dir/rng.cc.o"
  "CMakeFiles/tara_common.dir/rng.cc.o.d"
  "CMakeFiles/tara_common.dir/varint.cc.o"
  "CMakeFiles/tara_common.dir/varint.cc.o.d"
  "libtara_common.a"
  "libtara_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tara_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
