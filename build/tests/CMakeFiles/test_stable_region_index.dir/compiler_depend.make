# Empty compiler generated dependencies file for test_stable_region_index.
# This may be replaced when dependencies are built.
