file(REMOVE_RECURSE
  "CMakeFiles/test_stable_region_index.dir/test_stable_region_index.cc.o"
  "CMakeFiles/test_stable_region_index.dir/test_stable_region_index.cc.o.d"
  "test_stable_region_index"
  "test_stable_region_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stable_region_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
