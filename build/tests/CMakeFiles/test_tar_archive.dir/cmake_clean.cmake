file(REMOVE_RECURSE
  "CMakeFiles/test_tar_archive.dir/test_tar_archive.cc.o"
  "CMakeFiles/test_tar_archive.dir/test_tar_archive.cc.o.d"
  "test_tar_archive"
  "test_tar_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tar_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
