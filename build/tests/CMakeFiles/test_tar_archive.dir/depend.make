# Empty dependencies file for test_tar_archive.
# This may be replaced when dependencies are built.
