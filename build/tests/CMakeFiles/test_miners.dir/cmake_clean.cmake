file(REMOVE_RECURSE
  "CMakeFiles/test_miners.dir/test_miners.cc.o"
  "CMakeFiles/test_miners.dir/test_miners.cc.o.d"
  "test_miners"
  "test_miners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
