file(REMOVE_RECURSE
  "CMakeFiles/test_tara_engine.dir/test_tara_engine.cc.o"
  "CMakeFiles/test_tara_engine.dir/test_tara_engine.cc.o.d"
  "test_tara_engine"
  "test_tara_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tara_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
