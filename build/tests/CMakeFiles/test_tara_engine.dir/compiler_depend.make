# Empty compiler generated dependencies file for test_tara_engine.
# This may be replaced when dependencies are built.
