file(REMOVE_RECURSE
  "CMakeFiles/test_mediar.dir/test_mediar.cc.o"
  "CMakeFiles/test_mediar.dir/test_mediar.cc.o.d"
  "test_mediar"
  "test_mediar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mediar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
