# Empty compiler generated dependencies file for test_mediar.
# This may be replaced when dependencies are built.
