# Empty dependencies file for test_maras.
# This may be replaced when dependencies are built.
