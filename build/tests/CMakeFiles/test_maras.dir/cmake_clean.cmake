file(REMOVE_RECURSE
  "CMakeFiles/test_maras.dir/test_maras.cc.o"
  "CMakeFiles/test_maras.dir/test_maras.cc.o.d"
  "test_maras"
  "test_maras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
