# Empty dependencies file for test_rules_and_closed.
# This may be replaced when dependencies are built.
