file(REMOVE_RECURSE
  "CMakeFiles/test_rules_and_closed.dir/test_rules_and_closed.cc.o"
  "CMakeFiles/test_rules_and_closed.dir/test_rules_and_closed.cc.o.d"
  "test_rules_and_closed"
  "test_rules_and_closed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rules_and_closed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
