file(REMOVE_RECURSE
  "CMakeFiles/test_txdb.dir/test_txdb.cc.o"
  "CMakeFiles/test_txdb.dir/test_txdb.cc.o.d"
  "test_txdb"
  "test_txdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_txdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
