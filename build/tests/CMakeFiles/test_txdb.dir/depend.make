# Empty dependencies file for test_txdb.
# This may be replaced when dependencies are built.
