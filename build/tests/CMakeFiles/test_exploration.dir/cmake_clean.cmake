file(REMOVE_RECURSE
  "CMakeFiles/test_exploration.dir/test_exploration.cc.o"
  "CMakeFiles/test_exploration.dir/test_exploration.cc.o.d"
  "test_exploration"
  "test_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
