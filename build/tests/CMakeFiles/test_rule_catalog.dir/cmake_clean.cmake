file(REMOVE_RECURSE
  "CMakeFiles/test_rule_catalog.dir/test_rule_catalog.cc.o"
  "CMakeFiles/test_rule_catalog.dir/test_rule_catalog.cc.o.d"
  "test_rule_catalog"
  "test_rule_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rule_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
