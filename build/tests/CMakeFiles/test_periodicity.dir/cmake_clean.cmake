file(REMOVE_RECURSE
  "CMakeFiles/test_periodicity.dir/test_periodicity.cc.o"
  "CMakeFiles/test_periodicity.dir/test_periodicity.cc.o.d"
  "test_periodicity"
  "test_periodicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_periodicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
