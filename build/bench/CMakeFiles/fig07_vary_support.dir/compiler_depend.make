# Empty compiler generated dependencies file for fig07_vary_support.
# This may be replaced when dependencies are built.
