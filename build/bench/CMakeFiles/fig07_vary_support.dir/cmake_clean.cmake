file(REMOVE_RECURSE
  "CMakeFiles/fig07_vary_support.dir/fig07_vary_support.cc.o"
  "CMakeFiles/fig07_vary_support.dir/fig07_vary_support.cc.o.d"
  "fig07_vary_support"
  "fig07_vary_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_vary_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
