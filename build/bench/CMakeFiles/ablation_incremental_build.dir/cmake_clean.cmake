file(REMOVE_RECURSE
  "CMakeFiles/ablation_incremental_build.dir/ablation_incremental_build.cc.o"
  "CMakeFiles/ablation_incremental_build.dir/ablation_incremental_build.cc.o.d"
  "ablation_incremental_build"
  "ablation_incremental_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_incremental_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
