# Empty dependencies file for ablation_incremental_build.
# This may be replaced when dependencies are built.
