
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig06_maras_precision.cc" "bench/CMakeFiles/fig06_maras_precision.dir/fig06_maras_precision.cc.o" "gcc" "bench/CMakeFiles/fig06_maras_precision.dir/fig06_maras_precision.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/tara_bench_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tara_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/tara_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/maras/CMakeFiles/tara_maras.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/tara_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/tara_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/txdb/CMakeFiles/tara_txdb.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tara_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
