file(REMOVE_RECURSE
  "CMakeFiles/fig06_maras_precision.dir/fig06_maras_precision.cc.o"
  "CMakeFiles/fig06_maras_precision.dir/fig06_maras_precision.cc.o.d"
  "fig06_maras_precision"
  "fig06_maras_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_maras_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
