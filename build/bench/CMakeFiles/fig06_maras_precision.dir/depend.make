# Empty dependencies file for fig06_maras_precision.
# This may be replaced when dependencies are built.
