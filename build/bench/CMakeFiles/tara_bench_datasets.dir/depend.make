# Empty dependencies file for tara_bench_datasets.
# This may be replaced when dependencies are built.
