file(REMOVE_RECURSE
  "CMakeFiles/tara_bench_datasets.dir/bench_datasets.cc.o"
  "CMakeFiles/tara_bench_datasets.dir/bench_datasets.cc.o.d"
  "CMakeFiles/tara_bench_datasets.dir/q1_runner.cc.o"
  "CMakeFiles/tara_bench_datasets.dir/q1_runner.cc.o.d"
  "libtara_bench_datasets.a"
  "libtara_bench_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tara_bench_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
