file(REMOVE_RECURSE
  "libtara_bench_datasets.a"
)
