# Empty dependencies file for fig11_compare_confidence.
# This may be replaced when dependencies are built.
