file(REMOVE_RECURSE
  "CMakeFiles/fig11_compare_confidence.dir/fig11_compare_confidence.cc.o"
  "CMakeFiles/fig11_compare_confidence.dir/fig11_compare_confidence.cc.o.d"
  "fig11_compare_confidence"
  "fig11_compare_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_compare_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
