# Empty compiler generated dependencies file for fig09_preprocessing.
# This may be replaced when dependencies are built.
