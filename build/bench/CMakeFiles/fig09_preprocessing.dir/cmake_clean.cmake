file(REMOVE_RECURSE
  "CMakeFiles/fig09_preprocessing.dir/fig09_preprocessing.cc.o"
  "CMakeFiles/fig09_preprocessing.dir/fig09_preprocessing.cc.o.d"
  "fig09_preprocessing"
  "fig09_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
