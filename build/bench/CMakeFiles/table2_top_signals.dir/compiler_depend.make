# Empty compiler generated dependencies file for table2_top_signals.
# This may be replaced when dependencies are built.
