file(REMOVE_RECURSE
  "CMakeFiles/table2_top_signals.dir/table2_top_signals.cc.o"
  "CMakeFiles/table2_top_signals.dir/table2_top_signals.cc.o.d"
  "table2_top_signals"
  "table2_top_signals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_top_signals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
