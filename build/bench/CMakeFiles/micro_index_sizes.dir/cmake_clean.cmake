file(REMOVE_RECURSE
  "CMakeFiles/micro_index_sizes.dir/micro_index_sizes.cc.o"
  "CMakeFiles/micro_index_sizes.dir/micro_index_sizes.cc.o.d"
  "micro_index_sizes"
  "micro_index_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_index_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
