# Empty dependencies file for micro_index_sizes.
# This may be replaced when dependencies are built.
