file(REMOVE_RECURSE
  "CMakeFiles/fig10_compare_support.dir/fig10_compare_support.cc.o"
  "CMakeFiles/fig10_compare_support.dir/fig10_compare_support.cc.o.d"
  "fig10_compare_support"
  "fig10_compare_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_compare_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
