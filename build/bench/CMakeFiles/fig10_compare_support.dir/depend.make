# Empty dependencies file for fig10_compare_support.
# This may be replaced when dependencies are built.
