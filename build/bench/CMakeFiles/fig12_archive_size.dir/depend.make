# Empty dependencies file for fig12_archive_size.
# This may be replaced when dependencies are built.
