file(REMOVE_RECURSE
  "CMakeFiles/fig08_vary_confidence.dir/fig08_vary_confidence.cc.o"
  "CMakeFiles/fig08_vary_confidence.dir/fig08_vary_confidence.cc.o.d"
  "fig08_vary_confidence"
  "fig08_vary_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_vary_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
