# Empty compiler generated dependencies file for fig08_vary_confidence.
# This may be replaced when dependencies are built.
