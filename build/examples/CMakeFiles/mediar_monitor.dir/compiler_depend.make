# Empty compiler generated dependencies file for mediar_monitor.
# This may be replaced when dependencies are built.
