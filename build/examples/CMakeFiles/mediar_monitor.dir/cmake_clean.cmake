file(REMOVE_RECURSE
  "CMakeFiles/mediar_monitor.dir/mediar_monitor.cpp.o"
  "CMakeFiles/mediar_monitor.dir/mediar_monitor.cpp.o.d"
  "mediar_monitor"
  "mediar_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediar_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
