# Empty compiler generated dependencies file for retail_trends.
# This may be replaced when dependencies are built.
