file(REMOVE_RECURSE
  "CMakeFiles/retail_trends.dir/retail_trends.cpp.o"
  "CMakeFiles/retail_trends.dir/retail_trends.cpp.o.d"
  "retail_trends"
  "retail_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
