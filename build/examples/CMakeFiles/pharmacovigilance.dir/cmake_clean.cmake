file(REMOVE_RECURSE
  "CMakeFiles/pharmacovigilance.dir/pharmacovigilance.cpp.o"
  "CMakeFiles/pharmacovigilance.dir/pharmacovigilance.cpp.o.d"
  "pharmacovigilance"
  "pharmacovigilance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pharmacovigilance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
