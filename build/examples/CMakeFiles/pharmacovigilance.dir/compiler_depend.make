# Empty compiler generated dependencies file for pharmacovigilance.
# This may be replaced when dependencies are built.
