# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tara_cli_smoke "sh" "-c" "printf 'gen quest 2000 100
windows 3
build 0.01 0.1
mine 2 0.02 0.4
region 2 0.02 0.4
save /tmp/tara_kb_smoke.bin
loadkb /tmp/tara_kb_smoke.bin
region 2 0.02 0.4
diff 0.02 0.4 0.05 0.4
traj 0.02 0.4
top stable 3
top periodic 3
quit
' | /root/repo/build/tools/tara_cli")
set_tests_properties(tara_cli_smoke PROPERTIES  PASS_REGULAR_EXPRESSION "stable region" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
