# Empty compiler generated dependencies file for tara_cli.
# This may be replaced when dependencies are built.
