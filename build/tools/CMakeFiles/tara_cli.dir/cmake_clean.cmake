file(REMOVE_RECURSE
  "CMakeFiles/tara_cli.dir/tara_cli.cc.o"
  "CMakeFiles/tara_cli.dir/tara_cli.cc.o.d"
  "tara_cli"
  "tara_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tara_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
