#ifndef TARA_BENCH_BENCH_REPORT_H_
#define TARA_BENCH_BENCH_REPORT_H_

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "obs/json_writer.h"

namespace tara::bench {

/// Peak resident set size of this process in bytes (ru_maxrss), the
/// high-water mark the kernel tracked since process start. 0 if the
/// kernel cannot say.
inline uint64_t PeakRssBytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

/// Current resident set size in bytes via /proc/self/statm (second
/// field, in pages). 0 where procfs is absent. Unlike PeakRssBytes this
/// can go down, so before/after deltas around one operation are
/// meaningful — e.g. how much an OpenKnowledgeBase call actually
/// faulted in.
inline uint64_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total_pages = 0, resident_pages = 0;
  const int parsed = std::fscanf(f, "%llu %llu", &total_pages,
                                 &resident_pages);
  std::fclose(f);
  if (parsed != 2) return 0;
  return resident_pages * static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
}

/// Machine-readable sidecar for a benchmark harness: collects flat rows
/// while the human-readable table prints, then writes BENCH_<name>.json
/// next to the binary so CI and plotting scripts never have to parse the
/// table. Schema:
///
///   {"bench": "<name>",
///    "rows": [{"<col>": <string|number|bool>, ...}, ...],
///    "metrics": {...}}          // optional registry snapshot, verbatim
class BenchReport {
 public:
  using Value = std::variant<std::string, double, uint64_t, bool>;

  /// One table row; flat key -> scalar, in insertion order.
  class Row {
   public:
    Row& Set(std::string key, std::string value) {
      cells_.emplace_back(std::move(key), Value(std::move(value)));
      return *this;
    }
    Row& Set(std::string key, const char* value) {
      return Set(std::move(key), std::string(value));
    }
    Row& Set(std::string key, double value) {
      cells_.emplace_back(std::move(key), Value(value));
      return *this;
    }
    Row& Set(std::string key, uint64_t value) {
      cells_.emplace_back(std::move(key), Value(value));
      return *this;
    }
    Row& Set(std::string key, uint32_t value) {
      return Set(std::move(key), static_cast<uint64_t>(value));
    }
    Row& Set(std::string key, bool value) {
      cells_.emplace_back(std::move(key), Value(value));
      return *this;
    }

   private:
    friend class BenchReport;
    std::vector<std::pair<std::string, Value>> cells_;
  };

  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  Row& AddRow() { return rows_.emplace_back(); }

  /// Embeds an already-serialized JSON object (typically
  /// MetricsRegistry::SnapshotJson()) under the "metrics" key.
  void SetMetricsJson(std::string json) { metrics_json_ = std::move(json); }

  std::string ToJson() const {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("bench");
    w.String(name_);
    w.Key("rows");
    w.BeginArray();
    for (const Row& row : rows_) {
      w.BeginObject();
      for (const auto& [key, value] : row.cells_) {
        w.Key(key);
        if (const auto* s = std::get_if<std::string>(&value)) {
          w.String(*s);
        } else if (const auto* d = std::get_if<double>(&value)) {
          w.Number(*d);
        } else if (const auto* u = std::get_if<uint64_t>(&value)) {
          w.Number(*u);
        } else {
          w.Bool(std::get<bool>(value));
        }
      }
      w.EndObject();
    }
    w.EndArray();
    if (!metrics_json_.empty()) {
      w.Key("metrics");
      w.Raw(metrics_json_);
    }
    w.EndObject();
    return w.str();
  }

  /// Writes BENCH_<name>.json into the working directory and reports the
  /// path on stdout. Returns false (with a message) if the file cannot be
  /// opened, so harnesses can exit non-zero.
  bool WriteFile() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return false;
    }
    const std::string json = ToJson();
    const size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const bool newline_ok = std::fputc('\n', f) != EOF;
    const bool close_ok = std::fclose(f) == 0;
    if (written != json.size() || !newline_ok || !close_ok) {
      std::fprintf(stderr, "short write to %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), json.size() + 1);
    return true;
  }

 private:
  std::string name_;
  std::vector<Row> rows_;
  std::string metrics_json_;
};

}  // namespace tara::bench

#endif  // TARA_BENCH_BENCH_REPORT_H_
