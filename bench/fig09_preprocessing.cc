// Reproduces Figure 9 (offline preprocessing time, TARA vs H-Mine, stacked
// by task) and prints Table 4 (the index-construction thresholds used).
//
// Expected shape (paper): frequent itemset generation dominates; TARA's
// extra tasks (rule derivation + archive + EPS index) add no more than
// ~20% over H-Mine's itemset-only preprocessing.

#include <cstdio>

#include "baselines/hmine_baseline.h"
#include "bench/bench_datasets.h"
#include "common/stopwatch.h"
#include "core/tara_engine.h"

namespace tara::bench {
namespace {

void Run() {
  std::printf("=== Table 4: thresholds for indexes ===\n");
  std::printf("%-10s %12s %12s %10s\n", "dataset", "supp_floor", "conf_floor",
              "max_size");
  for (const BenchDataset& d : MakeAllDatasets()) {
    std::printf("%-10s %12.4f %12.2f %10u\n", d.name.c_str(), d.support_floor,
                d.confidence_floor, d.max_itemset_size);
  }

  std::printf("\n=== Figure 9: preprocessing time per window (seconds) ===\n");
  for (BenchDataset& d : MakeAllDatasets()) {
    std::printf("\n--- dataset %s (%u windows, %zu tx) ---\n", d.name.c_str(),
                d.data.window_count(), d.data.database().size());

    TaraEngine::Options options;
    options.min_support_floor = d.support_floor;
    options.min_confidence_floor = d.confidence_floor;
    options.max_itemset_size = d.max_itemset_size;
    TaraEngine engine(options);
    Stopwatch tara_total;
    engine.BuildAll(d.data);
    const double tara_seconds = tara_total.ElapsedSeconds();

    // H-Mine baseline preprocessing, timed per window.
    HMineBaseline hmine(d.support_floor, d.max_itemset_size);
    std::vector<double> hmine_per_window;
    double hmine_seconds = 0;
    for (WindowId w = 0; w < d.data.window_count(); ++w) {
      const WindowInfo& info = d.data.window(w);
      Stopwatch timer;
      hmine.AppendWindow(d.data.database(), info.begin, info.end);
      hmine_per_window.push_back(timer.ElapsedSeconds());
      hmine_seconds += hmine_per_window.back();
    }

    std::printf("%-8s %10s %10s %10s %10s %10s | %10s\n", "window",
                "itemsets", "rules", "archive", "eps-index", "TARA-total",
                "HMine");
    double extra_sum = 0, itemset_sum = 0;
    for (const auto& s : engine.build_stats()) {
      extra_sum += s.rule_seconds + s.archive_seconds + s.index_seconds;
      itemset_sum += s.itemset_seconds;
      std::printf("%-8u %10.3f %10.3f %10.3f %10.3f %10.3f | %10.3f\n",
                  s.window, s.itemset_seconds, s.rule_seconds,
                  s.archive_seconds, s.index_seconds, s.total_seconds(),
                  hmine_per_window[s.window]);
    }
    std::printf("%-8s %54.3f | %10.3f  (TARA/HMine = %.2fx, extra tasks = "
                "%.0f%% of itemset time)\n",
                "total", tara_seconds, hmine_seconds,
                hmine_seconds > 0 ? tara_seconds / hmine_seconds : 0.0,
                itemset_sum > 0 ? 100.0 * extra_sum / itemset_sum : 0.0);
    size_t itemsets = 0, rules = 0;
    for (const auto& s : engine.build_stats()) {
      itemsets += s.itemset_count;
      rules += s.rule_count;
    }
    std::printf("itemsets=%zu rules=%zu catalog=%zu archive_entries=%zu\n",
                itemsets, rules, engine.catalog().size(),
                engine.archive().entry_count());
  }
}

}  // namespace
}  // namespace tara::bench

int main() {
  tara::bench::Run();
  return 0;
}
