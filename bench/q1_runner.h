#ifndef TARA_BENCH_Q1_RUNNER_H_
#define TARA_BENCH_Q1_RUNNER_H_

#include "bench/bench_datasets.h"
#include "bench/bench_report.h"

namespace tara::bench {

/// Which query parameter an experiment sweeps.
enum class Vary { kSupport, kConfidence };

/// Runs the Q1 (rule trajectory + parameter recommendation) experiment of
/// Figures 7/8 on one dataset: builds TARA, TARA-S, H-Mine, and PARAS
/// offline, then times the online query for every swept parameter value on
/// all six systems (TARA, TARA-S, TARA-R, H-Mine, PARAS, DCTAR) and prints
/// one row per value with microsecond timings. The TARA engines record
/// into MetricsRegistry::Global(), so harnesses can embed per-query-kind
/// latency percentiles in their reports. When `report` is non-null, every
/// printed row is also appended to it.
void RunQ1Experiment(BenchDataset& dataset, Vary vary,
                     BenchReport* report = nullptr);

/// Runs the Q2 (ruleset comparison, exact match across 4 windows)
/// experiment of Figures 10/11: the second setting's support (or
/// confidence) sweeps while everything else is fixed.
void RunQ2Experiment(BenchDataset& dataset, Vary vary,
                     BenchReport* report = nullptr);

}  // namespace tara::bench

#endif  // TARA_BENCH_Q1_RUNNER_H_
