// loadgen: closed-plus-paced load generator for the TARA serving layer.
//
// Starts two in-process servers over one shared engine:
//
//   1. A serving-sized instance for the STEADY phase: N client threads
//      drive a Zipfian Q1-Q5 mix at a per-client target QPS while a
//      separate connection live-appends windows — the interactive
//      serving scenario of the paper, end-to-end over TCP.
//   2. A deliberately tiny instance (one worker, tiny queue, a slow-down
//      hook) for the OVERLOAD phase: the same clients at full speed must
//      see typed kOverloaded/kDeadlineExceeded rejections that return
//      promptly — never stalls — proving admission control sheds load
//      instead of queueing without bound.
//
// Writes BENCH_server.json: per-phase rows with throughput and
// p50/p99/p999 latency, plus the metrics-registry snapshot (the
// tara.server.* series CI asserts on).
//
//   loadgen [--clients N] [--seconds S] [--qps Q] [--quest N ITEMS]
//           [--windows K]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_report.h"
#include "common/rng.h"
#include "core/query_request.h"
#include "core/tara_engine.h"
#include "datagen/quest_generator.h"
#include "obs/metrics.h"
#include "server/serving_bootstrap.h"
#include "server/tara_client.h"
#include "server/tara_server.h"
#include "txdb/evolving_database.h"

namespace tara::bench {
namespace {

using server::EngineBootstrap;
using server::ServerOptions;
using server::TaraClient;
using server::TaraServer;

using Clock = std::chrono::steady_clock;

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// The Q1-Q5 request mix. Weights skew toward the cheap interactive
/// queries; the Zipf draw over this pool concentrates on the first
/// entries, mimicking hot dashboards re-asking the same questions.
std::vector<QueryRequest> BuildRequestPool(uint32_t window_count) {
  std::vector<QueryRequest> pool;
  std::vector<WindowId> all;
  for (WindowId w = 0; w < window_count; ++w) all.push_back(w);
  for (uint32_t w = 0; w < window_count; ++w) {
    for (const double supp : {0.02, 0.03, 0.05}) {
      for (const double conf : {0.3, 0.4}) {
        const ParameterSetting setting{supp, conf};
        pool.push_back(QueryRequest::MineWindow(w, setting));     // Q1/Q2
        pool.push_back(QueryRequest::Region(w, setting));         // Q3
        pool.push_back(QueryRequest::ContentView(w, setting));    // Q5
        pool.push_back(QueryRequest::Trajectory(w, setting, all));  // Q1
      }
    }
  }
  const ParameterSetting low{0.02, 0.3};
  const ParameterSetting high{0.05, 0.4};
  pool.push_back(QueryRequest::Compare(low, high, all, MatchMode::kExact));
  pool.push_back(QueryRequest::RollUpMine(all, low));  // Q4
  return pool;
}

struct ClientStats {
  std::vector<int64_t> latencies_us;  // successful requests only
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t other_error = 0;
  int64_t max_reject_us = 0;  // slowest shed/deadline round-trip
};

/// One client thread: paced closed loop (sleep to the next slot when a
/// target QPS is set, full speed otherwise).
void RunClient(uint16_t port, const std::vector<QueryRequest>& pool,
               uint64_t seed, double target_qps, uint32_t deadline_ms,
               int64_t until_us, ClientStats* stats) {
  auto connect = TaraClient::Connect("127.0.0.1", port);
  if (!connect.has_value()) {
    ++stats->other_error;
    return;
  }
  TaraClient client = std::move(connect.value());
  Rng rng(seed);
  const int64_t gap_us =
      target_qps > 0 ? static_cast<int64_t>(1e6 / target_qps) : 0;
  int64_t next_slot = NowUs();
  while (true) {
    const int64_t now = NowUs();
    if (now >= until_us) break;
    if (gap_us > 0 && now < next_slot) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(next_slot - now));
    }
    next_slot += gap_us;
    const QueryRequest& request = pool[rng.NextZipf(pool.size(), 1.1)];
    const int64_t start = NowUs();
    const auto result = client.Execute(request, deadline_ms);
    const int64_t elapsed = NowUs() - start;
    if (result.has_value()) {
      ++stats->ok;
      stats->latencies_us.push_back(elapsed);
    } else if (server::IsOverloaded(result.error())) {
      ++stats->shed;
      stats->max_reject_us = std::max(stats->max_reject_us, elapsed);
    } else if (server::IsDeadlineExceeded(result.error())) {
      ++stats->deadline_exceeded;
      stats->max_reject_us = std::max(stats->max_reject_us, elapsed);
    } else {
      ++stats->other_error;
      if (!client.connected()) break;
    }
  }
}

int64_t Percentile(std::vector<int64_t>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t at = std::min(
      sorted_in_place->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_in_place->size())));
  return (*sorted_in_place)[at];
}

struct PhaseResult {
  ClientStats total;
  std::vector<int64_t> latencies;
  double seconds = 0;
  uint64_t appends = 0;
};

PhaseResult RunPhase(uint16_t port, const std::vector<QueryRequest>& pool,
                     int clients, double per_client_qps, uint32_t deadline_ms,
                     double seconds, const TransactionDatabase* append_data) {
  const int64_t until_us =
      NowUs() + static_cast<int64_t>(seconds * 1e6);
  std::vector<ClientStats> stats(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const int64_t phase_start = NowUs();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(RunClient, port, std::cref(pool),
                         /*seed=*/1000 + static_cast<uint64_t>(c) * 77,
                         per_client_qps, deadline_ms, until_us, &stats[c]);
  }
  PhaseResult phase;
  if (append_data != nullptr) {
    // Live ingestion alongside the query load, one window per second.
    auto appender = TaraClient::Connect("127.0.0.1", port);
    if (appender.has_value()) {
      TaraClient client = std::move(appender.value());
      while (NowUs() + 1000000 < until_us) {
        std::this_thread::sleep_for(std::chrono::milliseconds(900));
        const auto ack = client.AppendWindow(*append_data);
        if (!ack.has_value()) break;
        ++phase.appends;
      }
    }
  }
  for (std::thread& t : threads) t.join();
  phase.seconds = static_cast<double>(NowUs() - phase_start) / 1e6;
  for (ClientStats& s : stats) {
    phase.total.ok += s.ok;
    phase.total.shed += s.shed;
    phase.total.deadline_exceeded += s.deadline_exceeded;
    phase.total.other_error += s.other_error;
    phase.total.max_reject_us =
        std::max(phase.total.max_reject_us, s.max_reject_us);
    phase.latencies.insert(phase.latencies.end(), s.latencies_us.begin(),
                           s.latencies_us.end());
  }
  return phase;
}

void AddPhaseRow(BenchReport* report, const char* phase, int clients,
                 PhaseResult* result) {
  const double qps =
      result->seconds > 0
          ? static_cast<double>(result->total.ok) / result->seconds
          : 0;
  report->AddRow()
      .Set("phase", phase)
      .Set("clients", static_cast<uint64_t>(clients))
      .Set("seconds", result->seconds)
      .Set("ok", result->total.ok)
      .Set("shed", result->total.shed)
      .Set("deadline_exceeded", result->total.deadline_exceeded)
      .Set("other_errors", result->total.other_error)
      .Set("appends", result->appends)
      .Set("qps", qps)
      .Set("p50_us",
           static_cast<double>(Percentile(&result->latencies, 0.50)))
      .Set("p99_us",
           static_cast<double>(Percentile(&result->latencies, 0.99)))
      .Set("p999_us",
           static_cast<double>(Percentile(&result->latencies, 0.999)))
      .Set("max_reject_us", static_cast<double>(result->total.max_reject_us));
  std::printf(
      "%-9s %d clients %5.1fs: %llu ok (%.0f qps), %llu shed, %llu "
      "deadline, p50 %lldus p99 %lldus\n",
      phase, clients, result->seconds,
      static_cast<unsigned long long>(result->total.ok), qps,
      static_cast<unsigned long long>(result->total.shed),
      static_cast<unsigned long long>(result->total.deadline_exceeded),
      static_cast<long long>(Percentile(&result->latencies, 0.50)),
      static_cast<long long>(Percentile(&result->latencies, 0.99)));
}

int Run(int argc, char** argv) {
  int clients = 6;
  double seconds = 5;
  double per_client_qps = 200;
  uint32_t quest_transactions = 3000;
  uint32_t quest_items = 100;
  uint32_t windows = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_num = [&](double fallback) -> double {
      return i + 1 < argc ? std::strtod(argv[++i], nullptr) : fallback;
    };
    if (arg == "--clients") {
      clients = static_cast<int>(next_num(clients));
    } else if (arg == "--seconds") {
      seconds = next_num(seconds);
    } else if (arg == "--qps") {
      per_client_qps = next_num(per_client_qps);
    } else if (arg == "--quest") {
      quest_transactions = static_cast<uint32_t>(next_num(3000));
      quest_items = static_cast<uint32_t>(next_num(100));
    } else if (arg == "--windows") {
      windows = static_cast<uint32_t>(next_num(3));
    } else {
      std::fprintf(stderr,
                   "usage: loadgen [--clients N] [--seconds S] [--qps Q] "
                   "[--quest N ITEMS] [--windows K]\n");
      return 2;
    }
  }

  obs::MetricsRegistry metrics;
  EngineBootstrap bootstrap;
  bootstrap.quest_transactions = quest_transactions;
  bootstrap.quest_items = quest_items;
  bootstrap.windows = windows;
  bootstrap.support_floor = 0.02;
  bootstrap.confidence_floor = 0.2;
  bootstrap.metrics = &metrics;
  auto engine = server::BootstrapEngine(bootstrap);
  if (!engine.has_value()) {
    std::fprintf(stderr, "loadgen: %s\n", engine.error().c_str());
    return 1;
  }
  std::printf("engine ready: %u windows, %zu rules\n",
              engine->window_count(),
              engine->Snapshot()->catalog().size());

  // Phase 1: the serving-sized instance under a paced Zipfian mix with
  // live appends.
  ServerOptions serving;
  serving.metrics = &metrics;
  TaraServer steady_server(&engine.value(), serving);
  if (const auto problem = steady_server.Start()) {
    std::fprintf(stderr, "loadgen: %s\n", problem->c_str());
    return 1;
  }
  const std::vector<QueryRequest> pool =
      BuildRequestPool(engine->window_count());
  QuestGenerator::Params append_params;
  append_params.num_transactions = std::max(quest_transactions / 10, 50u);
  append_params.num_items = quest_items;
  append_params.num_patterns = quest_items / 3 + 1;
  append_params.seed = 4242;
  const TransactionDatabase append_data =
      QuestGenerator(append_params).Generate();

  BenchReport report("server");
  PhaseResult steady =
      RunPhase(steady_server.port(), pool, clients, per_client_qps,
               /*deadline_ms=*/10000, seconds, &append_data);
  AddPhaseRow(&report, "steady", clients, &steady);
  steady_server.Stop();

  // Phase 2: a deliberately starved instance — one worker slowed by a
  // hook, almost no queue — hammered at full speed. Admission control
  // must shed with typed errors that return promptly.
  ServerOptions tiny;
  tiny.metrics = &metrics;
  tiny.max_concurrent_queries = 1;
  tiny.max_queued_queries = 1;
  tiny.pre_execute_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  TaraServer overload_server(&engine.value(), tiny);
  if (const auto problem = overload_server.Start()) {
    std::fprintf(stderr, "loadgen: %s\n", problem->c_str());
    return 1;
  }
  PhaseResult overload = RunPhase(
      overload_server.port(), pool, clients, /*per_client_qps=*/0,
      /*deadline_ms=*/250, std::min(seconds, 3.0), nullptr);
  AddPhaseRow(&report, "overload", clients, &overload);
  overload_server.Stop();

  report.SetMetricsJson(metrics.SnapshotJson());
  if (!report.WriteFile()) return 1;
  std::printf("wrote BENCH_server.json\n");
  return 0;
}

}  // namespace
}  // namespace tara::bench

int main(int argc, char** argv) { return tara::bench::Run(argc, argv); }
