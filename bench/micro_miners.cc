// Micro-benchmarks comparing the three frequent-itemset miners on the same
// workload — the ablation behind choosing FP-Growth for TARA's offline
// phase while the H-Mine baseline pregenerates with H-Mine, plus the rule
// derivation stage on its own.

#include <benchmark/benchmark.h>

#include "datagen/quest_generator.h"
#include "mining/apriori.h"
#include "mining/fp_growth.h"
#include "mining/h_mine.h"
#include "mining/rule_generation.h"

namespace tara {
namespace {

const TransactionDatabase& Workload() {
  static const TransactionDatabase* db = [] {
    QuestGenerator::Params params;
    params.num_transactions = 5000;
    params.num_items = 500;
    params.num_patterns = 200;
    params.avg_transaction_len = 10;
    params.seed = 7;
    return new TransactionDatabase(QuestGenerator(params).Generate());
  }();
  return *db;
}

FrequentItemsetMiner::Options MineOptions(double support) {
  FrequentItemsetMiner::Options options;
  options.min_count = MinCountForSupport(support, Workload().size());
  options.max_size = 5;
  return options;
}

template <typename Miner>
void BM_Miner(benchmark::State& state) {
  const Miner miner;
  const double support = static_cast<double>(state.range(0)) / 10000.0;
  const auto options = MineOptions(support);
  size_t itemsets = 0;
  for (auto _ : state) {
    const auto result =
        miner.Mine(Workload(), 0, Workload().size(), options);
    itemsets = result.size();
    benchmark::DoNotOptimize(result.data());
  }
  state.SetLabel("itemsets=" + std::to_string(itemsets));
}

BENCHMARK_TEMPLATE(BM_Miner, AprioriMiner)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Miner, FpGrowthMiner)->Arg(20)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Miner, HMineMiner)->Arg(20)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_RuleGeneration(benchmark::State& state) {
  const FpGrowthMiner miner;
  const auto options = MineOptions(static_cast<double>(state.range(0)) /
                                   10000.0);
  const auto frequent = miner.Mine(Workload(), 0, Workload().size(), options);
  size_t rules = 0;
  for (auto _ : state) {
    const auto result = GenerateRules(frequent, 0.1);
    rules = result.size();
    benchmark::DoNotOptimize(result.data());
  }
  state.SetLabel("rules=" + std::to_string(rules));
}
BENCHMARK(BM_RuleGeneration)->Arg(20)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tara

BENCHMARK_MAIN();
