// Decode-kernel and roll-up-index microbench: prices the two layers the
// kernelized decode refactor added to the query stack.
//
// Part 1 (kernel rows): raw decode throughput (MB/s over payload bytes)
// of every kernel the host supports over stable-rule streams — gap 1 and
// small count wobble, so almost every varint is one byte: the shape the
// SIMD fast path targets. CI asserts the dispatched kernel is never
// slower than the scalar reference (modulo noise when dispatch IS
// scalar).
//
// Part 2 (rollup rows): RollUp p50 latency, linear archive scan vs the
// hierarchical roll-up tree, over the all-windows set and a sparse
// jittered set, with a built-in divergence check (the two paths must
// produce bit-identical bounds). CI asserts the tree beats the linear
// scan on the all-windows set.
//
// Writes BENCH_decode.json (schema of bench_report.h).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "common/arena.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "common/varint.h"
#include "core/decode_kernels.h"
#include "core/rollup_tree.h"
#include "core/tar_archive.h"

namespace tara {
namespace {

constexpr uint32_t kWindows = 4096;
constexpr uint32_t kRules = 64;
constexpr uint64_t kWindowSize = 100000;
constexpr int kDecodeReps = 100;
constexpr int kRollUpReps = 400;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double PercentileUs(std::vector<uint64_t>* ns, double p) {
  if (ns->empty()) return 0;
  std::sort(ns->begin(), ns->end());
  const size_t index =
      std::min(ns->size() - 1,
               static_cast<size_t>(p * static_cast<double>(ns->size())));
  return static_cast<double>((*ns)[index]) / 1000.0;
}

/// The archive, the mirrored roll-up tree, and the raw per-rule byte
/// streams (re-encoded exactly as TarArchive::Add lays them out, so the
/// kernel loop can decode them without going through dispatch).
struct Workload {
  TarArchive archive;
  RollUpTreeBuilder tree_builder;
  std::vector<std::vector<uint8_t>> streams;
  size_t payload_bytes = 0;

  Workload() {
    Rng rng(7);
    std::vector<ArchiveEntry> last(kRules);
    streams.resize(kRules);
    for (WindowId w = 0; w < kWindows; ++w) {
      archive.RegisterWindow(w, kWindowSize, 50, 0.1);
      tree_builder.BeginWindow(
          w, kWindowSize, UnarchivedCountSlack(50, 0.1, kWindowSize));
      for (RuleId r = 0; r < kRules; ++r) {
        const uint64_t rule_count = 500 + r + rng.NextBounded(16);
        const uint64_t ant_count = rule_count + rng.NextBounded(16);
        archive.Add(r, w, rule_count, ant_count);
        tree_builder.AddEntry(r, rule_count, ant_count);
        std::vector<uint8_t>* bytes = &streams[r];
        if (w == 0) {
          varint::EncodeU64(w, bytes);
          varint::EncodeU64(rule_count, bytes);
          varint::EncodeU64(ant_count, bytes);
        } else {
          varint::EncodeU64(w - last[r].window, bytes);
          varint::EncodeS64(static_cast<int64_t>(rule_count) -
                                static_cast<int64_t>(last[r].rule_count),
                            bytes);
          varint::EncodeS64(static_cast<int64_t>(ant_count) -
                                static_cast<int64_t>(last[r].antecedent_count),
                            bytes);
        }
        last[r] = ArchiveEntry{w, rule_count, ant_count};
      }
    }
    for (const auto& s : streams) payload_bytes += s.size();
    if (payload_bytes != archive.payload_bytes()) {
      std::fprintf(stderr, "re-encoded streams diverge from the archive\n");
      std::abort();
    }
  }
};

}  // namespace
}  // namespace tara

int main() {
  using namespace tara;

  Workload workload;
  std::printf("archive: %u windows x %u rules, %zu payload bytes\n", kWindows,
              kRules, workload.payload_bytes);

  bench::BenchReport report("decode");
  DecodeArena arena;

  // --- Part 1: kernel decode throughput -----------------------------------
  const decode::DecodeKernel& active = decode::ActiveDecodeKernel();
  double scalar_mbps = 0;
  double dispatched_mbps = 0;
  for (const decode::DecodeKernel& kernel : decode::SupportedDecodeKernels()) {
    uint64_t best_ns = UINT64_MAX;
    size_t entries = 0;
    for (int rep = 0; rep < kDecodeReps; ++rep) {
      entries = 0;
      const uint64_t start = NowNs();
      for (const std::vector<uint8_t>& bytes : workload.streams) {
        arena.Reset();
        const decode::CheckedDecode result = decode::DecodeStreamCheckedWith(
            kernel, std::span<const uint8_t>(bytes), arena);
        if (result.status != decode::Status::kOk) {
          std::fprintf(stderr, "kernel %s rejected a valid stream: %s\n",
                       kernel.name, decode::StatusName(result.status));
          return 1;
        }
        entries += result.entries.size();
      }
      best_ns = std::min(best_ns, NowNs() - start);
    }
    const double mbps = static_cast<double>(workload.payload_bytes) * 1000.0 /
                        static_cast<double>(best_ns);
    if (std::string(kernel.name) == "scalar") scalar_mbps = mbps;
    if (std::string(kernel.name) == active.name) dispatched_mbps = mbps;
    std::printf("kernel %-6s  %8.1f MB/s  (%zu entries/pass)\n", kernel.name,
                mbps, entries);
    report.AddRow()
        .Set("row", "kernel")
        .Set("kernel", kernel.name)
        .Set("mb_per_s", mbps)
        .Set("entries_per_pass", static_cast<uint64_t>(entries));
  }

  // --- Part 2: roll-up latency, linear vs tree ----------------------------
  const auto tree = workload.tree_builder.Snapshot();
  std::vector<WindowId> all_windows(kWindows);
  for (WindowId w = 0; w < kWindows; ++w) all_windows[w] = w;
  Rng rng(99);
  std::vector<WindowId> sparse;
  for (WindowId w = 0; w < kWindows; w += 1 + rng.NextBounded(15)) {
    sparse.push_back(w);
  }

  struct SetCase {
    const char* name;
    const std::vector<WindowId>* windows;
  };
  const SetCase cases[] = {{"all_windows", &all_windows},
                           {"sparse_jitter", &sparse}};
  for (const SetCase& c : cases) {
    std::vector<uint64_t> linear_ns, tree_ns;
    double divergence = 0;
    for (int rep = 0; rep < kRollUpReps; ++rep) {
      const RuleId rule = static_cast<RuleId>(rep % kRules);
      uint64_t start = NowNs();
      const RollUpBound linear =
          workload.archive.RollUp(rule, *c.windows, &arena);
      linear_ns.push_back(NowNs() - start);
      start = NowNs();
      const RollUpBound hier = tree->RollUp(rule, *c.windows);
      tree_ns.push_back(NowNs() - start);
      divergence += (linear.support_lo - hier.support_lo) +
                    (linear.confidence_hi - hier.confidence_hi);
    }
    if (divergence != 0) {
      std::fprintf(stderr, "tree/linear divergence on %s\n", c.name);
      return 1;
    }
    const double linear_p50 = PercentileUs(&linear_ns, 0.5);
    const double tree_p50 = PercentileUs(&tree_ns, 0.5);
    std::printf("rollup %-13s linear p50 %9.2f us | tree p50 %9.2f us\n",
                c.name, linear_p50, tree_p50);
    report.AddRow()
        .Set("row", "rollup")
        .Set("window_set", c.name)
        .Set("set_size", static_cast<uint64_t>(c.windows->size()))
        .Set("linear_p50_us", linear_p50)
        .Set("tree_p50_us", tree_p50);
  }

  report.AddRow()
      .Set("row", "dispatch")
      .Set("active_kernel", active.name)
      .Set("dispatch_is_scalar", std::string(active.name) == "scalar")
      .Set("scalar_mb_per_s", scalar_mbps)
      .Set("dispatched_mb_per_s", dispatched_mbps)
      .Set("peak_rss_bytes", bench::PeakRssBytes());

  return report.WriteFile() ? 0 : 1;
}
