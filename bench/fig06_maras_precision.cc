// Reproduces Figure 6: precision of the top-K MARAS MDAR signals, averaged
// over 4 quarters, for three synthetic "years" (distinct generator seeds
// standing in for FAERS 2013/2014/2015). Also reports the confidence and
// reporting-ratio baselines at the same K for contrast.
//
// Expected shape (paper): precision is highest at small K and decays as K
// grows (true interactions concentrate at the top of the contrast
// ranking); the baselines sit far below MARAS at every K.

#include <cstdio>

#include "datagen/faers_generator.h"
#include "maras/evaluation.h"
#include "maras/maras_engine.h"

namespace tara::bench {
namespace {

constexpr int kQuarters = 4;
constexpr size_t kKs[] = {10, 20, 30, 40, 50};

struct YearResult {
  double maras[5] = {};
  double confidence[5] = {};
  double lift[5] = {};
};

YearResult RunYear(uint64_t seed) {
  FaersGenerator::Params params;
  params.reports_per_quarter = 6000;
  params.num_drugs = 150;
  params.num_adrs = 80;
  params.num_ddis = 12;
  params.seed = seed;
  const FaersGenerator gen(params);

  YearResult result;
  for (int q = 0; q < kQuarters; ++q) {
    const TransactionDatabase db = gen.GenerateQuarter(q, 0);
    MarasEngine::Options options;
    options.adr_base = gen.adr_base();
    options.min_count = 10;
    options.max_itemset_size = 7;
    const MarasEngine engine(db, 0, db.size(), options);
    const auto by_confidence = engine.RankByConfidence();
    const auto by_lift = engine.RankByLift();
    for (size_t i = 0; i < std::size(kKs); ++i) {
      result.maras[i] +=
          PrecisionAtK(engine.signals(), gen.ground_truth(), kKs[i]);
      result.confidence[i] +=
          PrecisionAtK(by_confidence, gen.ground_truth(), kKs[i]);
      result.lift[i] += PrecisionAtK(by_lift, gen.ground_truth(), kKs[i]);
    }
  }
  for (size_t i = 0; i < std::size(kKs); ++i) {
    result.maras[i] /= kQuarters;
    result.confidence[i] /= kQuarters;
    result.lift[i] /= kQuarters;
  }
  return result;
}

void Run() {
  std::printf("=== Figure 6: precision of top-K MARAS MDAR signals ===\n");
  std::printf("(average over %d quarters per year; synthetic FAERS)\n\n",
              kQuarters);
  const struct {
    const char* year;
    uint64_t seed;
  } years[] = {{"2013", 2013}, {"2014", 2014}, {"2015", 2015}};

  std::printf("%-6s %-12s", "year", "ranker");
  for (size_t k : kKs) std::printf("   P@%-4zu", k);
  std::printf("\n");
  for (const auto& year : years) {
    const YearResult r = RunYear(year.seed);
    std::printf("%-6s %-12s", year.year, "MARAS");
    for (size_t i = 0; i < std::size(kKs); ++i) {
      std::printf("   %.3f ", r.maras[i]);
    }
    std::printf("\n%-6s %-12s", "", "confidence");
    for (size_t i = 0; i < std::size(kKs); ++i) {
      std::printf("   %.3f ", r.confidence[i]);
    }
    std::printf("\n%-6s %-12s", "", "lift(RR)");
    for (size_t i = 0; i < std::size(kKs); ++i) {
      std::printf("   %.3f ", r.lift[i]);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace tara::bench

int main() {
  tara::bench::Run();
  return 0;
}
