// Ablation (iPARAS, the paper's incremental-construction predecessor):
// when batch k+1 arrives, TARA appends one window to the existing
// knowledge base, while a static parameter-space index (PARAS) must be
// rebuilt from scratch over the data it serves. This harness measures the
// cost of keeping the knowledge base current as batches stream in.
//
// Expected shape: TARA's per-arrival cost is flat (one window's mining);
// the rebuild-everything strategy grows linearly with history, so the
// cumulative gap widens with every batch.

#include <cstdio>

#include "bench/bench_datasets.h"
#include "common/stopwatch.h"
#include "core/tara_engine.h"

namespace tara::bench {
namespace {

void Run() {
  std::printf("=== Ablation: incremental append vs full rebuild ===\n");
  for (BenchDataset& d : MakeAllDatasets()) {
    std::printf("\n--- dataset %s ---\n", d.name.c_str());
    std::printf("%-8s %18s %18s %10s\n", "batch", "incremental(s)",
                "full-rebuild(s)", "speedup");

    TaraEngine::Options options;
    options.min_support_floor = d.support_floor;
    options.min_confidence_floor = d.confidence_floor;
    options.max_itemset_size = d.max_itemset_size;

    TaraEngine incremental(options);
    double incremental_total = 0, rebuild_total = 0;
    for (WindowId w = 0; w < d.data.window_count(); ++w) {
      const WindowInfo& info = d.data.window(w);

      Stopwatch append_timer;
      incremental.AppendWindow(d.data.database(), info.begin, info.end);
      const double append_seconds = append_timer.ElapsedSeconds();

      // The rebuild strategy reconstructs the index over every batch seen
      // so far.
      Stopwatch rebuild_timer;
      TaraEngine rebuilt(options);
      for (WindowId past = 0; past <= w; ++past) {
        const WindowInfo& past_info = d.data.window(past);
        rebuilt.AppendWindow(d.data.database(), past_info.begin,
                             past_info.end);
      }
      const double rebuild_seconds = rebuild_timer.ElapsedSeconds();

      incremental_total += append_seconds;
      rebuild_total += rebuild_seconds;
      std::printf("%-8u %18.3f %18.3f %9.1fx\n", w, append_seconds,
                  rebuild_seconds,
                  append_seconds > 0 ? rebuild_seconds / append_seconds
                                     : 0.0);
    }
    std::printf("%-8s %18.3f %18.3f %9.1fx\n", "total", incremental_total,
                rebuild_total,
                incremental_total > 0 ? rebuild_total / incremental_total
                                      : 0.0);
  }
}

}  // namespace
}  // namespace tara::bench

int main() {
  tara::bench::Run();
  return 0;
}
