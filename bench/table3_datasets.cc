// Reproduces Table 3: statistics of the benchmark datasets. Ours are
// scaled-down synthetic analogues (see DESIGN.md); this table reports the
// shapes actually generated so EXPERIMENTS.md can compare them with the
// paper's originals.

#include <cstdio>

#include "bench/bench_datasets.h"
#include "txdb/io.h"

namespace tara::bench {
namespace {

void Run() {
  std::printf("=== Table 3: datasets ===\n");
  std::printf("%-10s %14s %14s %14s %12s %10s\n", "dataset", "transactions",
              "unique_items", "avg_len", "size_MB", "windows");
  for (BenchDataset& d : MakeAllDatasets()) {
    const TransactionDatabase& db = d.data.database();
    const std::string text = DatabaseToString(db);
    std::printf("%-10s %14zu %14zu %14.1f %12.2f %10u\n", d.name.c_str(),
                db.size(), db.distinct_item_count(), db.average_length(),
                text.size() / (1024.0 * 1024.0), d.data.window_count());
  }
  std::printf("\n(paper originals: retail*100 8.8M tx / 16k items / len 10;"
              " T5k 5M / 23.9k / 50; T2k 2M / 30.6k / 100; webdocs 1.7M /"
              " 5.3M / 177)\n");
}

}  // namespace
}  // namespace tara::bench

int main() {
  tara::bench::Run();
  return 0;
}
