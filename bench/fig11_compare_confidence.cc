// Reproduces Figure 11: online time of the Q2 ruleset comparison (exact
// match across 4 windows) as the second setting's confidence varies.
//
// Expected shape (paper): same ordering as Figure 10; TARA several orders
// of magnitude faster than H-Mine and DCTAR at every point.

#include <cstdio>

#include "bench/bench_datasets.h"
#include "bench/bench_report.h"
#include "bench/q1_runner.h"
#include "obs/metrics.h"

int main() {
  using namespace tara::bench;
  std::printf(
      "=== Figure 11: Q2 comparison time, varying 2nd confidence ===\n");
  BenchReport report("fig11");
  for (BenchDataset& d : MakeAllDatasets()) {
    RunQ2Experiment(d, Vary::kConfidence, &report);
  }
  report.SetMetricsJson(tara::obs::MetricsRegistry::Global().SnapshotJson());
  return report.WriteFile() ? 0 : 1;
}
