// Mixed read/write workload: online query latency with and without live
// ingestion running underneath.
//
// Phase 1 (read_only): reader threads hammer a Q1/Q3/Q5/roll-up mix
// against a finished knowledge base — the baseline the RCU snapshot
// design should preserve.
// Phase 2 (live_append): the same readers keep querying while the writer
// appends new windows one at a time, each publishing a new generation.
// The interesting columns are the read p50/p99 deltas between the phases
// (readers never block on the writer; they only pin snapshots) and the
// per-append publication latency.
// Phases 3-5 exercise the generation-pinned query cache on a fixed
// repeated request set: repeat_nocache (baseline, cache off),
// repeat_cache (same series, cache on — p50 must drop and the hit rate
// approach 1), and cache_live_append (cache on under a live appender:
// every publication bumps the generation, so each new generation re-misses
// the set once and then hits again).
// Phase 6 (wal_append): live_append on a twin engine with the
// write-ahead log attached — the durability tax.
// Phase 7 (replication): a WAL-backed primary behind a real TaraServer
// streams durably-acked windows to an in-process ReplicaEngine while
// readers hammer the replica; the interesting columns are replica lag
// (append-ack on the primary -> window applied on the replica) and the
// diverged flag (byte-compare at equal window counts; CI asserts 0).
//
// Writes BENCH_mixed_workload.json (schema of bench_report.h) with a full
// metrics-registry snapshot attached, including the snapshot instruments
// tara.kb.generation and tara.kb.swaps.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_report.h"
#include "core/kb_blocks.h"
#include "core/kb_open.h"
#include "core/kb_storage.h"
#include "core/tara_engine.h"
#include "datagen/basket_generators.h"
#include "obs/metrics.h"
#include "server/replica.h"
#include "server/tara_server.h"
#include "txdb/evolving_database.h"

namespace tara {
namespace {

constexpr uint32_t kBaseWindows = 6;
constexpr uint32_t kLiveWindows = 6;
constexpr uint32_t kCacheLiveWindows = 4;
constexpr uint32_t kTxPerWindow = 2000;
constexpr int kReaders = 4;
constexpr double kReadOnlySeconds = 2.0;
constexpr double kRepeatSeconds = 1.5;
constexpr size_t kCacheBudgetBytes = 64ull << 20;

EvolvingDatabase MakeData(uint32_t windows) {
  BasketGenerator::Params params = BasketGenerator::RetailPreset();
  params.num_transactions = kTxPerWindow;
  params.num_items = 250;
  const BasketGenerator gen(params);
  EvolvingDatabase data;
  for (uint32_t w = 0; w < windows; ++w) {
    data.AppendBatch(gen.GenerateBatch(w, w * kTxPerWindow).transactions());
  }
  return data;
}

double PercentileUs(std::vector<uint64_t>* latencies_ns, double p) {
  if (latencies_ns->empty()) return 0;
  std::sort(latencies_ns->begin(), latencies_ns->end());
  const size_t index = std::min(
      latencies_ns->size() - 1,
      static_cast<size_t>(p * static_cast<double>(latencies_ns->size())));
  return static_cast<double>((*latencies_ns)[index]) / 1000.0;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One reader's loop: a fixed query mix against the engine, recording
/// whole-query latencies until `stop` flips.
void ReaderLoop(const TaraEngine& engine, const ParameterSetting& setting,
                RuleId probe, const Itemset& probe_items,
                const std::atomic<bool>& stop,
                std::vector<uint64_t>* latencies_ns) {
  size_t i = 0;
  while (!stop.load(std::memory_order_acquire)) {
    const std::shared_ptr<const KnowledgeBaseSnapshot> snapshot =
        engine.Snapshot();
    const uint32_t k = snapshot->window_count();
    if (k == 0) continue;
    const WindowSet all = snapshot->AllWindows();
    const WindowId newest = k - 1;
    const uint64_t start = NowNs();
    switch (i++ % 4) {
      case 0:
        (void)snapshot->TrajectoryQuery(newest, setting, all);
        break;
      case 1:
        (void)snapshot->RecommendRegion(newest, setting);
        break;
      case 2:
        (void)snapshot->ContentQuery(newest, probe_items, setting);
        break;
      default:
        (void)snapshot->RollUpRule(probe, all);
        break;
    }
    latencies_ns->push_back(NowNs() - start);
  }
}

/// One reader's loop for the cache phases: cycles a fixed request series
/// through the uniform Execute entrypoint (which consults the cache when
/// one is configured). Readers start at different offsets so the first
/// pass over the series is spread across them.
void RepeatLoop(const TaraEngine& engine,
                const std::vector<QueryRequest>& requests, size_t offset,
                const std::atomic<bool>& stop,
                std::vector<uint64_t>* latencies_ns) {
  size_t i = offset;
  while (!stop.load(std::memory_order_acquire)) {
    const QueryRequest& request = requests[i++ % requests.size()];
    const uint64_t start = NowNs();
    (void)engine.Execute(request);
    latencies_ns->push_back(NowNs() - start);
  }
}

struct PhaseResult {
  std::vector<uint64_t> latencies_ns;
  double seconds = 0;
};

/// Runs `kReaders` reader threads around `writer` (which runs on this
/// thread and flips the stop flag when it returns). `reader` is invoked
/// as reader(thread_index, stop, &latencies).
template <typename Reader, typename Writer>
PhaseResult RunPhase(Reader&& reader, Writer&& writer) {
  std::atomic<bool> stop{false};
  std::vector<std::vector<uint64_t>> per_thread(kReaders);
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    per_thread[r].reserve(1 << 16);
    threads.emplace_back([&, r] { reader(r, stop, &per_thread[r]); });
  }
  const auto start = std::chrono::steady_clock::now();
  writer();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  PhaseResult result;
  result.seconds = elapsed.count();
  for (std::vector<uint64_t>& lat : per_thread) {
    result.latencies_ns.insert(result.latencies_ns.end(), lat.begin(),
                               lat.end());
  }
  return result;
}

void ReportPhase(bench::BenchReport* report, const char* phase,
                 PhaseResult result, std::vector<uint64_t> append_ns,
                 const QueryCache::Stats& cache = {}) {
  const size_t queries = result.latencies_ns.size();
  const double qps =
      result.seconds > 0 ? static_cast<double>(queries) / result.seconds : 0;
  const double p50 = PercentileUs(&result.latencies_ns, 0.50);
  const double p99 = PercentileUs(&result.latencies_ns, 0.99);
  const uint64_t appends = append_ns.size();
  double append_seconds = 0;
  for (const uint64_t ns : append_ns) {
    append_seconds += static_cast<double>(ns) / 1e9;
  }
  const double append_p50 = PercentileUs(&append_ns, 0.50);
  const double append_p99 = PercentileUs(&append_ns, 0.99);
  std::printf("%-16s %10zu queries %10.0f q/s  p50 %8.1fus  p99 %8.1fus",
              phase, queries, qps, p50, p99);
  if (appends > 0) {
    std::printf("  (%llu appends, p50 %.0fus, p99 %.0fus)",
                static_cast<unsigned long long>(appends), append_p50,
                append_p99);
  }
  if (cache.hits + cache.misses > 0) {
    std::printf("  (cache hit rate %.3f, %llu evictions)", cache.hit_rate(),
                static_cast<unsigned long long>(cache.evictions));
  }
  std::printf("\n");
  report->AddRow()
      .Set("phase", phase)
      .Set("readers", static_cast<uint64_t>(kReaders))
      .Set("queries", static_cast<uint64_t>(queries))
      .Set("qps", qps)
      .Set("read_p50_us", p50)
      .Set("read_p99_us", p99)
      .Set("appends", appends)
      .Set("append_seconds_total", append_seconds)
      .Set("append_p50_us", append_p50)
      .Set("append_p99_us", append_p99)
      .Set("cache_hits", cache.hits)
      .Set("cache_misses", cache.misses)
      .Set("cache_evictions", cache.evictions)
      .Set("cache_bytes", cache.bytes)
      .Set("hit_rate", cache.hit_rate())
      .Set("peak_rss_bytes", bench::PeakRssBytes());
}

/// One timed OpenKnowledgeBase call: best-of-N open latency plus the
/// resident-set growth the winning open caused (how many payload bytes
/// it actually faulted in — near zero for a mapped open).
struct OpenCost {
  double open_us = 0;
  uint64_t rss_delta_bytes = 0;
  uint32_t windows = 0;
};

OpenCost TimeOpen(const std::string& dir, OpenMode mode) {
  OpenCost best;
  best.open_us = 1e18;
  for (int i = 0; i < 3; ++i) {
    OpenOptions options;
    options.kb_dir = dir;
    options.mode = mode;
    const uint64_t rss_before = bench::CurrentRssBytes();
    const uint64_t start = NowNs();
    auto opened = OpenKnowledgeBase(options);
    const double us = static_cast<double>(NowNs() - start) / 1000.0;
    if (!opened.has_value()) {
      std::fprintf(stderr, "cannot open %s: open-phase bug\n", dir.c_str());
      return {};
    }
    const uint64_t rss_after = bench::CurrentRssBytes();
    if (us < best.open_us) {
      best.open_us = us;
      best.rss_delta_bytes =
          rss_after > rss_before ? rss_after - rss_before : 0;
    }
    best.windows = opened->window_count();
  }
  return best;
}

/// Phase 7: open-time scaling. The full knowledge base is saved as
/// TARAKB3 blocks twice — once whole, once trimmed to a quarter of the
/// windows — and both are opened in both modes. A mapped open touches
/// manifests only, so its cost must not grow with window count; the
/// eager open decodes every segment and must grow ~linearly. CI asserts
/// exactly that from these two rows.
bool ReportOpenScaling(bench::BenchReport* report,
                       const KnowledgeBaseSnapshot& snapshot) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "mixed_workload_open";
  fs::remove_all(root);
  const std::string large_dir = (root / "large").string();
  const std::string small_dir = (root / "small").string();
  // Small target block size so several blocks exist and the mapped open
  // exercises the multi-mmap path.
  constexpr uint64_t kOpenBlockBytes = 256 * 1024;
  const uint32_t small_windows = snapshot.window_count() / 4;
  if (SaveKnowledgeBaseBlocks(snapshot, large_dir, kOpenBlockBytes) ||
      SaveKnowledgeBaseBlocks(snapshot, small_dir, kOpenBlockBytes) ||
      TrimKnowledgeBase(small_dir, small_windows)) {
    std::fprintf(stderr, "cannot stage the open-phase directories\n");
    return false;
  }
  for (const OpenMode mode : {OpenMode::kMapped, OpenMode::kEager}) {
    const char* phase =
        mode == OpenMode::kMapped ? "open_mmap" : "open_eager";
    const OpenCost small = TimeOpen(small_dir, mode);
    const OpenCost large = TimeOpen(large_dir, mode);
    if (small.windows == 0 || large.windows == 0) return false;
    const double ratio =
        small.open_us > 0 ? large.open_us / small.open_us : 0;
    std::printf("%-16s %4u windows %10.1fus -> %4u windows %10.1fus "
                "(x%.2f, +%llu resident bytes)\n",
                phase, small.windows, small.open_us, large.windows,
                large.open_us, ratio,
                static_cast<unsigned long long>(large.rss_delta_bytes));
    report->AddRow()
        .Set("phase", phase)
        .Set("small_windows", small.windows)
        .Set("large_windows", large.windows)
        .Set("small_open_us", small.open_us)
        .Set("large_open_us", large.open_us)
        .Set("open_ratio", ratio)
        .Set("rss_delta_bytes", large.rss_delta_bytes)
        .Set("peak_rss_bytes", bench::PeakRssBytes());
  }
  fs::remove_all(root);
  return true;
}

/// The fixed repeated series the cache phases cycle: every window's
/// trajectory, region, and content view, plus multi-window roll-ups and
/// comparisons — the expensive, repeat-heavy queries an interactive
/// session reissues as the analyst pans and zooms.
std::vector<QueryRequest> MakeRepeatedRequests(uint32_t windows, RuleId probe,
                                               const Itemset& probe_items,
                                               const ParameterSetting& base) {
  std::vector<WindowId> all;
  all.reserve(windows);
  for (WindowId w = 0; w < windows; ++w) all.push_back(w);
  std::vector<QueryRequest> requests;
  for (WindowId w = 0; w < windows; ++w) {
    requests.push_back(QueryRequest::Trajectory(w, base, all));
    requests.push_back(QueryRequest::Region(w, base));
    requests.push_back(QueryRequest::ContentView(w, base));
  }
  for (int i = 0; i < 4; ++i) {
    const ParameterSetting setting{base.min_support +
                                       0.002 * static_cast<double>(i),
                                   base.min_confidence};
    requests.push_back(QueryRequest::RollUpMine(all, setting));
    requests.push_back(QueryRequest::Compare(
        setting,
        ParameterSetting{setting.min_support + 0.004, setting.min_confidence},
        all, MatchMode::kExact));
  }
  requests.push_back(QueryRequest::Measures(probe, all));
  requests.push_back(QueryRequest::RollUpRule(probe, all));
  requests.push_back(QueryRequest::Content(0, probe_items, base));
  return requests;
}

QueryCache::Stats StatsDelta(const TaraEngine& engine,
                             const QueryCache::Stats& before) {
  if (engine.query_cache() == nullptr) return {};
  QueryCache::Stats now = engine.query_cache()->stats();
  now.hits -= before.hits;
  now.misses -= before.misses;
  now.evictions -= before.evictions;
  return now;
}

int Run() {
  std::printf(
      "mixed workload: %d readers over %u base + %u live windows x %u "
      "transactions (hardware threads: %u)\n\n",
      kReaders, kBaseWindows, kLiveWindows, kTxPerWindow,
      std::thread::hardware_concurrency());

  const EvolvingDatabase data =
      MakeData(kBaseWindows + kLiveWindows + kCacheLiveWindows);
  obs::MetricsRegistry registry;
  TaraEngine::Options options;
  options.min_support_floor = 0.004;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 4;
  options.build_content_index = true;
  options.metrics = &registry;
  TaraEngine engine(options);
  for (uint32_t w = 0; w < kBaseWindows; ++w) {
    const WindowInfo& info = data.window(w);
    engine.AppendWindow(data.database(), info.begin, info.end);
  }

  const ParameterSetting setting{0.008, 0.3};
  const auto mined = engine.MineWindow(0, setting).value();
  if (mined.empty()) {
    std::fprintf(stderr, "dataset produced no rules at the probe setting\n");
    return 1;
  }
  const RuleId probe = mined[0];
  const Itemset probe_items = {engine.catalog().rule(probe).antecedent[0]};

  bench::BenchReport report("mixed_workload");

  const auto mixed_reader = [&](int, const std::atomic<bool>& stop,
                                std::vector<uint64_t>* latencies) {
    ReaderLoop(engine, setting, probe, probe_items, stop, latencies);
  };
  const auto sleep_writer = [] {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(kReadOnlySeconds));
  };
  const auto append_writer = [&](TaraEngine& target, uint32_t begin,
                                 uint32_t end,
                                 std::vector<uint64_t>* append_ns) {
    for (uint32_t w = begin; w < end; ++w) {
      const WindowInfo& info = data.window(w);
      const uint64_t start = NowNs();
      target.AppendWindow(data.database(), info.begin, info.end);
      append_ns->push_back(NowNs() - start);
    }
  };

  // Phase 1: pure reads against the finished base.
  PhaseResult read_only = RunPhase(mixed_reader, sleep_writer);
  ReportPhase(&report, "read_only", std::move(read_only), {});

  // Phase 2: the same readers while windows are appended live.
  std::vector<uint64_t> append_ns;
  PhaseResult live = RunPhase(mixed_reader, [&] {
    append_writer(engine, kBaseWindows, kBaseWindows + kLiveWindows,
                  &append_ns);
  });
  ReportPhase(&report, "live_append", std::move(live), std::move(append_ns));

  // Phases 3-5: a fixed repeated request series through Execute — first
  // with the cache off (baseline), then on (hits dominate), then on with
  // a live appender bumping the generation out from under it.
  const std::vector<QueryRequest> repeated = MakeRepeatedRequests(
      engine.window_count(), probe, probe_items, setting);
  const auto repeat_reader = [&](int r, const std::atomic<bool>& stop,
                                 std::vector<uint64_t>* latencies) {
    RepeatLoop(engine, repeated,
               static_cast<size_t>(r) * repeated.size() / kReaders, stop,
               latencies);
  };
  const auto sleep_repeat = [] {
    std::this_thread::sleep_for(std::chrono::duration<double>(kRepeatSeconds));
  };

  PhaseResult repeat_nocache = RunPhase(repeat_reader, sleep_repeat);
  ReportPhase(&report, "repeat_nocache", std::move(repeat_nocache), {});

  engine.SetQueryCacheBytes(kCacheBudgetBytes);
  QueryCache::Stats before = engine.query_cache()->stats();
  PhaseResult repeat_cache = RunPhase(repeat_reader, sleep_repeat);
  ReportPhase(&report, "repeat_cache", std::move(repeat_cache), {},
              StatsDelta(engine, before));

  before = engine.query_cache()->stats();
  std::vector<uint64_t> cache_append_ns;
  PhaseResult cache_live = RunPhase(repeat_reader, [&] {
    append_writer(engine, kBaseWindows + kLiveWindows,
                  kBaseWindows + kLiveWindows + kCacheLiveWindows,
                  &cache_append_ns);
  });
  ReportPhase(&report, "cache_live_append", std::move(cache_live),
              std::move(cache_append_ns), StatsDelta(engine, before));

  // Phase 6: the live_append phase again on a twin engine with the
  // write-ahead log attached — the durability tax (encode + fdatasync
  // per window, on the append path, inside the commit section).
  const std::filesystem::path wal_dir =
      std::filesystem::temp_directory_path() / "mixed_workload_wal";
  std::filesystem::remove_all(wal_dir);
  {
    TaraEngine::Options wal_options = options;
    wal_options.wal_dir = wal_dir.string();
    TaraEngine wal_engine(wal_options);
    for (uint32_t w = 0; w < kBaseWindows; ++w) {
      const WindowInfo& info = data.window(w);
      wal_engine.AppendWindow(data.database(), info.begin, info.end);
    }
    const auto wal_reader = [&](int, const std::atomic<bool>& stop,
                                std::vector<uint64_t>* latencies) {
      ReaderLoop(wal_engine, setting, probe, probe_items, stop, latencies);
    };
    std::vector<uint64_t> wal_append_ns;
    PhaseResult wal_live = RunPhase(wal_reader, [&] {
      append_writer(wal_engine, kBaseWindows, kBaseWindows + kLiveWindows,
                    &wal_append_ns);
    });
    ReportPhase(&report, "wal_append", std::move(wal_live),
                std::move(wal_append_ns));
  }
  std::filesystem::remove_all(wal_dir);

  // Phase 7: hot-standby replication. A WAL-backed twin primary behind
  // a real TaraServer, an in-process ReplicaEngine subscribed to it;
  // readers query the replica while the primary appends live windows.
  // Per-window lag is append-return (the durable ack) to the replica
  // holding the window.
  const std::filesystem::path repl_wal =
      std::filesystem::temp_directory_path() / "mixed_workload_repl_wal";
  std::filesystem::remove_all(repl_wal);
  {
    TaraEngine::Options primary_options = options;
    primary_options.wal_dir = repl_wal.string();
    TaraEngine primary(primary_options);
    for (uint32_t w = 0; w < kBaseWindows; ++w) {
      const WindowInfo& info = data.window(w);
      primary.AppendWindow(data.database(), info.begin, info.end);
    }
    server::ServerOptions server_options;
    server_options.metrics = &registry;
    server::TaraServer primary_server(&primary, server_options);
    if (primary_server.Start().has_value()) {
      std::fprintf(stderr, "replication phase: primary server failed\n");
      return 1;
    }
    server::ReplicaOptions replica_options;
    replica_options.primary_port = primary_server.port();
    replica_options.metrics = &registry;
    server::ReplicaEngine replica(replica_options);
    if (replica.Start().has_value()) {
      std::fprintf(stderr, "replication phase: replica failed to start\n");
      return 1;
    }
    const auto sync_wait = std::chrono::milliseconds(60000);
    if (replica.WaitForWindows(kBaseWindows, sync_wait) != kBaseWindows) {
      std::fprintf(stderr, "replication phase: replica never synced\n");
      return 1;
    }
    const TaraEngine& replica_engine = *replica.engine();
    const auto replica_reader = [&](int, const std::atomic<bool>& stop,
                                    std::vector<uint64_t>* latencies) {
      ReaderLoop(replica_engine, setting, probe, probe_items, stop, latencies);
    };
    std::vector<uint64_t> repl_append_ns;
    std::vector<uint64_t> lag_ns;
    bool lag_timed_out = false;
    PhaseResult repl = RunPhase(replica_reader, [&] {
      for (uint32_t w = kBaseWindows; w < kBaseWindows + kLiveWindows; ++w) {
        const WindowInfo& info = data.window(w);
        const uint64_t start = NowNs();
        primary.AppendWindow(data.database(), info.begin, info.end);
        const uint64_t acked = NowNs();
        repl_append_ns.push_back(acked - start);
        if (replica.WaitForWindows(w + 1, sync_wait) != w + 1) {
          lag_timed_out = true;
          return;
        }
        lag_ns.push_back(NowNs() - acked);
      }
    });
    if (lag_timed_out) {
      std::fprintf(stderr, "replication phase: lag wait timed out\n");
      return 1;
    }
    // Divergence oracle at equal window counts: the replica's knowledge
    // base must be byte-identical to the primary's.
    const bool diverged =
        EncodeKnowledgeBase(*replica_engine.Snapshot()) !=
        EncodeKnowledgeBase(*primary.Snapshot());
    const server::ReplicaEngine::Status status = replica.GetStatus();
    const size_t repl_queries = repl.latencies_ns.size();
    const double repl_qps =
        repl.seconds > 0 ? static_cast<double>(repl_queries) / repl.seconds
                         : 0;
    const double repl_p50 = PercentileUs(&repl.latencies_ns, 0.50);
    const double repl_p99 = PercentileUs(&repl.latencies_ns, 0.99);
    const double lag_p50 = PercentileUs(&lag_ns, 0.50);
    const double lag_p99 = PercentileUs(&lag_ns, 0.99);
    std::printf("%-16s %10zu queries %10.0f q/s  p50 %8.1fus  p99 %8.1fus"
                "  (lag p50 %.0fus, p99 %.0fus, diverged %d)\n",
                "replication", repl_queries, repl_qps, repl_p50, repl_p99,
                lag_p50, lag_p99, diverged ? 1 : 0);
    report.AddRow()
        .Set("phase", "replication")
        .Set("readers", static_cast<uint64_t>(kReaders))
        .Set("queries", static_cast<uint64_t>(repl_queries))
        .Set("qps", repl_qps)
        .Set("read_p50_us", repl_p50)
        .Set("read_p99_us", repl_p99)
        .Set("appends", static_cast<uint64_t>(repl_append_ns.size()))
        .Set("lag_p50_us", lag_p50)
        .Set("lag_p99_us", lag_p99)
        .Set("replica_windows",
             static_cast<uint64_t>(replica_engine.window_count()))
        .Set("primary_windows", static_cast<uint64_t>(primary.window_count()))
        .Set("records_applied", status.records_applied)
        .Set("reconnects", status.reconnects)
        .Set("diverged", static_cast<uint64_t>(diverged ? 1 : 0))
        .Set("peak_rss_bytes", bench::PeakRssBytes());
    replica.Stop();
    primary_server.Stop();
  }
  std::filesystem::remove_all(repl_wal);

  constexpr uint32_t kAllWindows =
      kBaseWindows + kLiveWindows + kCacheLiveWindows;
  if (engine.window_count() != kAllWindows ||
      engine.generation() != kAllWindows) {
    std::fprintf(stderr, "generation bookkeeping is off: %u windows, "
                 "generation %llu\n",
                 engine.window_count(),
                 static_cast<unsigned long long>(engine.generation()));
    return 1;
  }

  if (!ReportOpenScaling(&report, *engine.Snapshot())) return 1;

  report.SetMetricsJson(registry.SnapshotJson());
  return report.WriteFile() ? 0 : 1;
}

}  // namespace
}  // namespace tara

int main() { return tara::Run(); }
