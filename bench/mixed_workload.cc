// Mixed read/write workload: online query latency with and without live
// ingestion running underneath.
//
// Phase 1 (read_only): reader threads hammer a Q1/Q3/Q5/roll-up mix
// against a finished knowledge base — the baseline the RCU snapshot
// design should preserve.
// Phase 2 (live_append): the same readers keep querying while the writer
// appends new windows one at a time, each publishing a new generation.
// The interesting columns are the read p50/p99 deltas between the phases
// (readers never block on the writer; they only pin snapshots) and the
// per-append publication latency.
//
// Writes BENCH_mixed_workload.json (schema of bench_report.h) with a full
// metrics-registry snapshot attached, including the snapshot instruments
// tara.kb.generation and tara.kb.swaps.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_report.h"
#include "core/tara_engine.h"
#include "datagen/basket_generators.h"
#include "obs/metrics.h"
#include "txdb/evolving_database.h"

namespace tara {
namespace {

constexpr uint32_t kBaseWindows = 6;
constexpr uint32_t kLiveWindows = 6;
constexpr uint32_t kTxPerWindow = 2000;
constexpr int kReaders = 4;
constexpr double kReadOnlySeconds = 2.0;

EvolvingDatabase MakeData(uint32_t windows) {
  BasketGenerator::Params params = BasketGenerator::RetailPreset();
  params.num_transactions = kTxPerWindow;
  params.num_items = 250;
  const BasketGenerator gen(params);
  EvolvingDatabase data;
  for (uint32_t w = 0; w < windows; ++w) {
    data.AppendBatch(gen.GenerateBatch(w, w * kTxPerWindow).transactions());
  }
  return data;
}

double PercentileUs(std::vector<uint64_t>* latencies_ns, double p) {
  if (latencies_ns->empty()) return 0;
  std::sort(latencies_ns->begin(), latencies_ns->end());
  const size_t index = std::min(
      latencies_ns->size() - 1,
      static_cast<size_t>(p * static_cast<double>(latencies_ns->size())));
  return static_cast<double>((*latencies_ns)[index]) / 1000.0;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One reader's loop: a fixed query mix against the engine, recording
/// whole-query latencies until `stop` flips.
void ReaderLoop(const TaraEngine& engine, const ParameterSetting& setting,
                RuleId probe, const Itemset& probe_items,
                const std::atomic<bool>& stop,
                std::vector<uint64_t>* latencies_ns) {
  size_t i = 0;
  while (!stop.load(std::memory_order_acquire)) {
    const std::shared_ptr<const KnowledgeBaseSnapshot> snapshot =
        engine.Snapshot();
    const uint32_t k = snapshot->window_count();
    if (k == 0) continue;
    const WindowSet all = snapshot->AllWindows();
    const WindowId newest = k - 1;
    const uint64_t start = NowNs();
    switch (i++ % 4) {
      case 0:
        (void)snapshot->TrajectoryQuery(newest, setting, all);
        break;
      case 1:
        (void)snapshot->RecommendRegion(newest, setting);
        break;
      case 2:
        (void)snapshot->ContentQuery(newest, probe_items, setting);
        break;
      default:
        (void)snapshot->RollUpRule(probe, all);
        break;
    }
    latencies_ns->push_back(NowNs() - start);
  }
}

struct PhaseResult {
  std::vector<uint64_t> latencies_ns;
  double seconds = 0;
};

/// Runs `kReaders` reader threads around `writer` (which runs on this
/// thread and flips the stop flag when it returns).
template <typename Writer>
PhaseResult RunPhase(const TaraEngine& engine,
                     const ParameterSetting& setting, RuleId probe,
                     const Itemset& probe_items, Writer&& writer) {
  std::atomic<bool> stop{false};
  std::vector<std::vector<uint64_t>> per_thread(kReaders);
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    per_thread[r].reserve(1 << 16);
    threads.emplace_back([&, r] {
      ReaderLoop(engine, setting, probe, probe_items, stop, &per_thread[r]);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  writer();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  PhaseResult result;
  result.seconds = elapsed.count();
  for (std::vector<uint64_t>& lat : per_thread) {
    result.latencies_ns.insert(result.latencies_ns.end(), lat.begin(),
                               lat.end());
  }
  return result;
}

void ReportPhase(bench::BenchReport* report, const char* phase,
                 PhaseResult result, uint64_t appends,
                 double append_seconds) {
  const size_t queries = result.latencies_ns.size();
  const double qps =
      result.seconds > 0 ? static_cast<double>(queries) / result.seconds : 0;
  const double p50 = PercentileUs(&result.latencies_ns, 0.50);
  const double p99 = PercentileUs(&result.latencies_ns, 0.99);
  std::printf("%-12s %10zu queries %10.0f q/s  p50 %8.1fus  p99 %8.1fus",
              phase, queries, qps, p50, p99);
  if (appends > 0) {
    std::printf("  (%llu appends, %.3fs/append)",
                static_cast<unsigned long long>(appends),
                append_seconds / static_cast<double>(appends));
  }
  std::printf("\n");
  report->AddRow()
      .Set("phase", phase)
      .Set("readers", static_cast<uint64_t>(kReaders))
      .Set("queries", static_cast<uint64_t>(queries))
      .Set("qps", qps)
      .Set("read_p50_us", p50)
      .Set("read_p99_us", p99)
      .Set("appends", appends)
      .Set("append_seconds_total", append_seconds);
}

int Run() {
  std::printf(
      "mixed workload: %d readers over %u base + %u live windows x %u "
      "transactions (hardware threads: %u)\n\n",
      kReaders, kBaseWindows, kLiveWindows, kTxPerWindow,
      std::thread::hardware_concurrency());

  const EvolvingDatabase data = MakeData(kBaseWindows + kLiveWindows);
  obs::MetricsRegistry registry;
  TaraEngine::Options options;
  options.min_support_floor = 0.004;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 4;
  options.build_content_index = true;
  options.metrics = &registry;
  TaraEngine engine(options);
  for (uint32_t w = 0; w < kBaseWindows; ++w) {
    const WindowInfo& info = data.window(w);
    engine.AppendWindow(data.database(), info.begin, info.end);
  }

  const ParameterSetting setting{0.008, 0.3};
  const auto mined = engine.MineWindow(0, setting).value();
  if (mined.empty()) {
    std::fprintf(stderr, "dataset produced no rules at the probe setting\n");
    return 1;
  }
  const RuleId probe = mined[0];
  const Itemset probe_items = {engine.catalog().rule(probe).antecedent[0]};

  bench::BenchReport report("mixed_workload");

  // Phase 1: pure reads against the finished base.
  PhaseResult read_only =
      RunPhase(engine, setting, probe, probe_items, [] {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            kReadOnlySeconds));
      });
  ReportPhase(&report, "read_only", std::move(read_only), 0, 0);

  // Phase 2: the same readers while windows are appended live.
  double append_seconds = 0;
  PhaseResult live = RunPhase(
      engine, setting, probe, probe_items, [&] {
        for (uint32_t w = kBaseWindows; w < kBaseWindows + kLiveWindows;
             ++w) {
          const WindowInfo& info = data.window(w);
          const auto start = std::chrono::steady_clock::now();
          engine.AppendWindow(data.database(), info.begin, info.end);
          const std::chrono::duration<double> elapsed =
              std::chrono::steady_clock::now() - start;
          append_seconds += elapsed.count();
        }
      });
  ReportPhase(&report, "live_append", std::move(live), kLiveWindows,
              append_seconds);

  if (engine.window_count() != kBaseWindows + kLiveWindows ||
      engine.generation() != kBaseWindows + kLiveWindows) {
    std::fprintf(stderr, "generation bookkeeping is off: %u windows, "
                 "generation %llu\n",
                 engine.window_count(),
                 static_cast<unsigned long long>(engine.generation()));
    return 1;
  }

  report.SetMetricsJson(registry.SnapshotJson());
  return report.WriteFile() ? 0 : 1;
}

}  // namespace
}  // namespace tara

int main() { return tara::Run(); }
