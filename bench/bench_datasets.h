#ifndef TARA_BENCH_BENCH_DATASETS_H_
#define TARA_BENCH_BENCH_DATASETS_H_

#include <string>
#include <vector>

#include "txdb/evolving_database.h"

namespace tara::bench {

/// One benchmark dataset: the evolving database plus the index-construction
/// thresholds used for it (the paper's Table 4) and the itemset-size cap
/// applied to every system uniformly.
struct BenchDataset {
  std::string name;
  EvolvingDatabase data;
  double support_floor = 0.0;     ///< Table 4 support threshold
  double confidence_floor = 0.0;  ///< Table 4 confidence threshold
  uint32_t max_itemset_size = 5;
  /// Support values swept by the varying-support experiments (>= floor).
  std::vector<double> support_sweep;
  /// Confidence values swept by the varying-confidence experiments.
  std::vector<double> confidence_sweep;
  /// Fixed values used when the other parameter varies.
  double fixed_support = 0.0;
  double fixed_confidence = 0.0;
};

/// The four evaluation datasets, scaled-down analogues of Table 3's
/// retail×100, T5kL50N100, T2kL100N1k, and webdocs (see DESIGN.md for the
/// substitution rationale and EXPERIMENTS.md for the scale factors).
BenchDataset MakeRetail();
BenchDataset MakeT5k();
BenchDataset MakeT2k();
BenchDataset MakeWebdocs();

/// All four, in the paper's order.
std::vector<BenchDataset> MakeAllDatasets();

/// Default sizes fit a single-core box in minutes; TARA_BENCH_FULL=1 in
/// the environment quadruples every dataset (expect ~1h for the scan-based
/// baselines).
bool FullMode();

}  // namespace tara::bench

#endif  // TARA_BENCH_BENCH_DATASETS_H_
