// Reproduces Figure 7: online processing time of the Q1 rule-trajectory +
// parameter-recommendation query as minimum support varies, with minimum
// confidence fixed per dataset.
//
// Expected shape (paper): TARA and TARA-R answer in micro/milliseconds;
// H-Mine is orders of magnitude slower (query-time rule derivation; the
// gap scales with the per-window itemset store, so it compresses at this
// dataset scale — see EXPERIMENTS.md); PARAS and DCTAR are slower still
// (raw-data scans for the horizon windows). TARA-S pays a merge overhead
// over TARA, and can approach H-Mine when the result set is small.

#include <cstdio>

#include "bench/bench_datasets.h"
#include "bench/bench_report.h"
#include "bench/q1_runner.h"
#include "obs/metrics.h"

int main() {
  using namespace tara::bench;
  std::printf("=== Figure 7: Q1 online time, varying support ===\n");
  BenchReport report("fig07");
  for (BenchDataset& d : MakeAllDatasets()) {
    RunQ1Experiment(d, Vary::kSupport, &report);
  }
  report.SetMetricsJson(tara::obs::MetricsRegistry::Global().SnapshotJson());
  return report.WriteFile() ? 0 : 1;
}
