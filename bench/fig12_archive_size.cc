// Reproduces Figure 12: size of the pregenerated information — the H-Mine
// itemset store, the TAR Archive, and the uncompressed per-rule parameter
// values — for each dataset.
//
// Expected shape (paper): the TAR Archive is larger than the H-Mine index
// (TARA pregenerates rules, not just itemsets) but compresses far below
// the uncompressed rule parameter values.

#include <cstdio>

#include "baselines/hmine_baseline.h"
#include "bench/bench_datasets.h"
#include "core/tara_engine.h"

namespace tara::bench {
namespace {

/// Width of one raw archive record: window id (4) + rule count (8) +
/// antecedent count (8).
constexpr size_t kRawRecordBytes = 20;

void Run() {
  std::printf("=== Figure 12: size of the pregenerated information ===\n");
  std::printf("%-10s | %14s %14s | %14s %14s | %16s %12s\n", "dataset",
              "hmine_items", "hmine_KB", "tar_entries", "tar_KB",
              "uncompressed_KB", "ratio");
  for (BenchDataset& d : MakeAllDatasets()) {
    TaraEngine::Options options;
    options.min_support_floor = d.support_floor;
    options.min_confidence_floor = d.confidence_floor;
    options.max_itemset_size = d.max_itemset_size;
    TaraEngine engine(options);
    engine.BuildAll(d.data);

    HMineBaseline hmine(d.support_floor, d.max_itemset_size);
    hmine.Build(d.data);

    const size_t tar_bytes = engine.archive().payload_bytes();
    const size_t raw_bytes = engine.archive().entry_count() * kRawRecordBytes;
    std::printf("%-10s | %14zu %14.1f | %14zu %14.1f | %16.1f %11.2fx\n",
                d.name.c_str(), hmine.StoredItemsetCount(),
                hmine.ApproximateBytes() / 1024.0,
                engine.archive().entry_count(), tar_bytes / 1024.0,
                raw_bytes / 1024.0,
                tar_bytes > 0 ? static_cast<double>(raw_bytes) / tar_bytes
                              : 0.0);
  }
  std::printf("\n(ratio = uncompressed / TAR Archive; EPS index bytes are "
              "reported by micro_index_sizes)\n");
}

}  // namespace
}  // namespace tara::bench

int main() {
  tara::bench::Run();
  return 0;
}
