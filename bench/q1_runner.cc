#include "bench/q1_runner.h"

#include <cstdio>
#include <vector>

#include "baselines/dctar.h"
#include "baselines/hmine_baseline.h"
#include "baselines/paras_baseline.h"
#include "common/stopwatch.h"
#include "core/tara_engine.h"
#include "obs/metrics.h"

namespace tara::bench {
namespace {

/// Times `fn` by running it `reps` times and returning mean microseconds.
template <typename Fn>
double TimeMicros(int reps, Fn&& fn) {
  Stopwatch timer;
  for (int i = 0; i < reps; ++i) fn();
  return timer.ElapsedMicros() / reps;
}

/// Index-based systems answer in micro/milliseconds; average over several
/// runs. Scan-based systems take seconds; run once.
constexpr int kFastReps = 20;
constexpr int kSlowReps = 1;

struct Systems {
  TaraEngine tara;
  TaraEngine tara_s;
  HMineBaseline hmine;
  ParasBaseline paras;
  DctarBaseline dctar;

  explicit Systems(const BenchDataset& d)
      : tara(MakeOptions(d, false)),
        tara_s(MakeOptions(d, true)),
        hmine(d.support_floor, d.max_itemset_size),
        paras(d.support_floor, d.confidence_floor, d.max_itemset_size),
        dctar(&d.data, d.max_itemset_size) {}

  static TaraEngine::Options MakeOptions(const BenchDataset& d,
                                         bool content) {
    TaraEngine::Options options;
    options.min_support_floor = d.support_floor;
    options.min_confidence_floor = d.confidence_floor;
    options.max_itemset_size = d.max_itemset_size;
    options.build_content_index = content;
    // Benchmarked queries feed the process registry, so harnesses can dump
    // per-kind latency percentiles alongside the sweep tables.
    options.metrics = &obs::MetricsRegistry::Global();
    return options;
  }

  void Build(const BenchDataset& d) {
    tara.BuildAll(d.data);
    tara_s.BuildAll(d.data);
    hmine.Build(d.data);
    paras.Build(&d.data);
  }
};

std::vector<WindowId> Horizon(const BenchDataset& d) {
  std::vector<WindowId> horizon;
  const uint32_t n = d.data.window_count();
  const uint32_t first = n >= 4 ? n - 4 : 0;
  for (WindowId w = first; w < n; ++w) horizon.push_back(w);
  return horizon;
}

}  // namespace

void RunQ1Experiment(BenchDataset& d, Vary vary, BenchReport* report) {
  std::printf("\n--- dataset %s (Q1: trajectory + recommendation; anchor = "
              "newest window, horizon = %s4 windows) ---\n",
              d.name.c_str(), d.data.window_count() >= 4 ? "last " : "");
  Systems systems(d);
  systems.Build(d);

  const WindowId anchor = d.data.window_count() - 1;
  // Baselines take raw window lists; the TARA engines take a WindowSet.
  const std::vector<WindowId> horizon = Horizon(d);
  const WindowSet tara_horizon = systems.tara.MakeWindowSet(horizon);
  const std::vector<double>& sweep =
      vary == Vary::kSupport ? d.support_sweep : d.confidence_sweep;

  std::printf("%-10s %8s | %12s %12s %12s %12s %14s %14s\n",
              vary == Vary::kSupport ? "minsupp" : "minconf", "rules",
              "TARA(us)", "TARA-S(us)", "TARA-R(us)", "HMine(us)",
              "PARAS(us)", "DCTAR(us)");

  for (double value : sweep) {
    ParameterSetting setting;
    setting.min_support = vary == Vary::kSupport ? value : d.fixed_support;
    setting.min_confidence =
        vary == Vary::kConfidence ? value : d.fixed_confidence;

    const size_t rules = systems.tara.MineWindow(anchor, setting).value().size();

    // .value() inside the timed lambdas asserts the sweep stays above the
    // dataset floors — a silently rejected query would time the validation
    // path, not the query.
    const double tara_us = TimeMicros(kFastReps, [&] {
      systems.tara.TrajectoryQuery(anchor, setting, tara_horizon).value();
    });
    const double tara_s_us = TimeMicros(kFastReps, [&] {
      systems.tara_s.TrajectoryQuery(anchor, setting, tara_horizon).value();
      systems.tara_s.ContentView(anchor, setting).value();
    });
    const double tara_r_us = TimeMicros(kFastReps, [&] {
      systems.tara.RecommendRegion(anchor, setting).value();
    });
    const double hmine_us = TimeMicros(kSlowReps, [&] {
      systems.hmine.TrajectoryQuery(anchor, setting, horizon);
    });
    const double paras_us = TimeMicros(kSlowReps, [&] {
      systems.paras.TrajectoryQuery(anchor, setting, horizon);
    });
    const double dctar_us = TimeMicros(kSlowReps, [&] {
      systems.dctar.TrajectoryQuery(anchor, setting, horizon);
    });

    std::printf("%-10.4f %8zu | %12.1f %12.1f %12.1f %12.1f %14.1f %14.1f\n",
                value, rules, tara_us, tara_s_us, tara_r_us, hmine_us,
                paras_us, dctar_us);
    if (report != nullptr) {
      report->AddRow()
          .Set("dataset", d.name)
          .Set("vary", vary == Vary::kSupport ? "support" : "confidence")
          .Set("value", value)
          .Set("rules", rules)
          .Set("tara_us", tara_us)
          .Set("tara_s_us", tara_s_us)
          .Set("tara_r_us", tara_r_us)
          .Set("hmine_us", hmine_us)
          .Set("paras_us", paras_us)
          .Set("dctar_us", dctar_us)
          .Set("peak_rss_bytes", PeakRssBytes());
    }
  }
}

void RunQ2Experiment(BenchDataset& d, Vary vary, BenchReport* report) {
  std::printf("\n--- dataset %s (Q2: ruleset comparison, exact match over 4 "
              "windows) ---\n",
              d.name.c_str());
  Systems systems(d);
  systems.Build(d);

  const std::vector<WindowId> windows = Horizon(d);
  const WindowSet tara_windows = systems.tara.MakeWindowSet(windows);
  const std::vector<double>& sweep =
      vary == Vary::kSupport ? d.support_sweep : d.confidence_sweep;

  ParameterSetting first;
  first.min_support = d.fixed_support;
  first.min_confidence = d.fixed_confidence;

  std::printf("%-10s %8s | %12s %12s %14s\n",
              vary == Vary::kSupport ? "minsupp2" : "minconf2", "diff",
              "TARA(us)", "HMine(us)", "DCTAR(us)");

  for (double value : sweep) {
    ParameterSetting second;
    second.min_support = vary == Vary::kSupport ? value : d.fixed_support;
    second.min_confidence =
        vary == Vary::kConfidence ? value : d.fixed_confidence;

    size_t diff_size = 0;
    const double tara_us = TimeMicros(kFastReps, [&] {
      const auto diff = systems.tara
                            .CompareSettings(first, second, tara_windows,
                                             MatchMode::kExact)
                            .value();
      diff_size = diff.only_first.size() + diff.only_second.size();
    });
    const double hmine_us = TimeMicros(kSlowReps, [&] {
      systems.hmine.CompareSettings(first, second, windows);
    });
    const double dctar_us = TimeMicros(kSlowReps, [&] {
      systems.dctar.CompareSettings(first, second, windows);
    });

    std::printf("%-10.4f %8zu | %12.1f %12.1f %14.1f\n", value, diff_size,
                tara_us, hmine_us, dctar_us);
    if (report != nullptr) {
      report->AddRow()
          .Set("dataset", d.name)
          .Set("vary", vary == Vary::kSupport ? "support" : "confidence")
          .Set("value", value)
          .Set("diff", diff_size)
          .Set("tara_us", tara_us)
          .Set("hmine_us", hmine_us)
          .Set("dctar_us", dctar_us)
          .Set("peak_rss_bytes", PeakRssBytes());
    }
  }
}

}  // namespace tara::bench
