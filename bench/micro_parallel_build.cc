// Build-throughput scaling of the parallel offline pipeline: BuildAll over
// the same evolving database at parallelism 1/2/4/8, reporting wall-clock
// speedup versus the sequential build and verifying that every run
// serializes to a byte-identical knowledge base.
//
// On a machine with fewer cores than the requested parallelism the extra
// threads time-slice one core, so the speedup column saturates at roughly
// the core count (std::thread::hardware_concurrency, printed below).

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_report.h"
#include "core/serialization.h"
#include "core/tara_engine.h"
#include "datagen/basket_generators.h"
#include "obs/metrics.h"
#include "txdb/evolving_database.h"

namespace tara {
namespace {

EvolvingDatabase MakeData(uint32_t windows, uint32_t tx_per_window) {
  BasketGenerator::Params params = BasketGenerator::RetailPreset();
  params.num_transactions = tx_per_window;
  params.num_items = 400;
  const BasketGenerator gen(params);
  EvolvingDatabase data;
  for (uint32_t w = 0; w < windows; ++w) {
    data.AppendBatch(gen.GenerateBatch(w, w * tx_per_window).transactions());
  }
  return data;
}

struct RunResult {
  double seconds = 0;
  std::string serialized;
};

RunResult BuildOnce(const EvolvingDatabase& data, uint32_t parallelism) {
  TaraEngine::Options options;
  options.min_support_floor = 0.003;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 4;
  options.parallelism = parallelism;
  options.metrics = &obs::MetricsRegistry::Global();
  TaraEngine engine(options);
  const auto start = std::chrono::steady_clock::now();
  engine.BuildAll(data);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return RunResult{elapsed.count(), KnowledgeBaseToString(engine)};
}

int Run() {
  constexpr uint32_t kWindows = 8;
  constexpr uint32_t kTxPerWindow = 12000;
  constexpr int kReps = 3;

  std::printf("parallel BuildAll scaling: %u windows x %u transactions, "
              "best of %d runs (hardware threads: %u)\n\n",
              kWindows, kTxPerWindow, kReps,
              std::thread::hardware_concurrency());

  const EvolvingDatabase data = MakeData(kWindows, kTxPerWindow);
  const uint64_t total_tx = static_cast<uint64_t>(kWindows) * kTxPerWindow;

  std::printf("%-8s %12s %12s %10s %12s\n", "threads", "seconds", "tx/sec",
              "speedup", "identical");

  bench::BenchReport report("micro_parallel_build");
  double sequential_seconds = 0;
  std::string sequential_bytes;
  bool all_identical = true;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    RunResult best;
    for (int rep = 0; rep < kReps; ++rep) {
      RunResult run = BuildOnce(data, threads);
      if (rep == 0 || run.seconds < best.seconds) best = std::move(run);
    }
    if (threads == 1) {
      sequential_seconds = best.seconds;
      sequential_bytes = best.serialized;
    }
    const bool identical = best.serialized == sequential_bytes;
    all_identical = all_identical && identical;
    std::printf("%-8u %12.3f %12.0f %9.2fx %12s\n", threads, best.seconds,
                total_tx / best.seconds, sequential_seconds / best.seconds,
                identical ? "yes" : "NO");
    report.AddRow()
        .Set("threads", threads)
        .Set("seconds", best.seconds)
        .Set("tx_per_sec", total_tx / best.seconds)
        .Set("speedup", sequential_seconds / best.seconds)
        .Set("identical", identical);
  }

  report.SetMetricsJson(obs::MetricsRegistry::Global().SnapshotJson());
  if (!report.WriteFile()) return 1;

  if (!all_identical) {
    std::printf("\nFAIL: parallel builds diverged from the sequential "
                "knowledge base\n");
    return 1;
  }
  std::printf("\nall knowledge bases byte-identical (%zu bytes)\n",
              sequential_bytes.size());
  return 0;
}

}  // namespace
}  // namespace tara

int main() { return tara::Run(); }
