// Reproduces Figure 8: online processing time of the Q1 rule-trajectory +
// parameter-recommendation query as minimum confidence varies, with
// minimum support fixed per dataset.
//
// Expected shape (paper): same ordering as Figure 7 — TARA variants
// orders of magnitude below H-Mine, which sits orders below PARAS/DCTAR.

#include <cstdio>

#include "bench/bench_datasets.h"
#include "bench/bench_report.h"
#include "bench/q1_runner.h"
#include "obs/metrics.h"

int main() {
  using namespace tara::bench;
  std::printf("=== Figure 8: Q1 online time, varying confidence ===\n");
  BenchReport report("fig08");
  for (BenchDataset& d : MakeAllDatasets()) {
    RunQ1Experiment(d, Vary::kConfidence, &report);
  }
  report.SetMetricsJson(tara::obs::MetricsRegistry::Global().SnapshotJson());
  return report.WriteFile() ? 0 : 1;
}
