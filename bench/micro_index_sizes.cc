// Companion to Figure 12: approximate in-memory footprint of the EPS
// stable-region indexes (plain and TARA-S content-indexed variants) and
// the per-window location/region counts, per dataset.

#include <cstdio>

#include "bench/bench_datasets.h"
#include "core/tara_engine.h"

namespace tara::bench {
namespace {

void Run() {
  std::printf("=== EPS index footprint (companion to Figure 12) ===\n");
  std::printf("%-10s | %10s %10s %12s | %12s %14s\n", "dataset", "locations",
              "regions", "eps_KB", "eps_s_KB", "archive_KB");
  for (BenchDataset& d : MakeAllDatasets()) {
    TaraEngine::Options options;
    options.min_support_floor = d.support_floor;
    options.min_confidence_floor = d.confidence_floor;
    options.max_itemset_size = d.max_itemset_size;
    TaraEngine engine(options);
    engine.BuildAll(d.data);

    options.build_content_index = true;
    TaraEngine engine_s(options);
    engine_s.BuildAll(d.data);

    size_t locations = 0, regions = 0;
    for (const auto& stats : engine.build_stats()) {
      locations += stats.location_count;
      regions += stats.region_count;
    }
    std::printf("%-10s | %10zu %10zu %12.1f | %12.1f %14.1f\n",
                d.name.c_str(), locations, regions,
                engine.IndexBytes() / 1024.0, engine_s.IndexBytes() / 1024.0,
                engine.archive().payload_bytes() / 1024.0);
  }
}

}  // namespace
}  // namespace tara::bench

int main() {
  tara::bench::Run();
  return 0;
}
