// Micro-benchmarks (google-benchmark) for the core data structures —
// ablation-level measurements behind the figure harnesses: archive
// encode/decode throughput, stable-region query cost versus result size,
// tidset counting, contrast scoring, and the observability layer's
// overhead on the online query path (null sink versus live registry).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/stable_region_index.h"
#include "core/tar_archive.h"
#include "core/tara_engine.h"
#include "datagen/faers_generator.h"
#include "datagen/quest_generator.h"
#include "maras/contrast.h"
#include "maras/tidset_index.h"
#include "mining/frequent_itemset.h"
#include "obs/metrics.h"
#include "txdb/evolving_database.h"

namespace tara {
namespace {

void BM_ArchiveAppend(benchmark::State& state) {
  const int windows = 20;
  for (auto _ : state) {
    state.PauseTiming();
    TarArchive archive;
    for (WindowId w = 0; w < windows; ++w) {
      archive.RegisterWindow(w, 10000, 10);
    }
    Rng rng(1);
    state.ResumeTiming();
    for (WindowId w = 0; w < windows; ++w) {
      for (RuleId r = 0; r < 1000; ++r) {
        const uint64_t count = 10 + rng.NextBounded(100);
        archive.Add(r, w, count, count + rng.NextBounded(100));
      }
    }
    benchmark::DoNotOptimize(archive.payload_bytes());
  }
  state.SetItemsProcessed(state.iterations() * windows * 1000);
}
BENCHMARK(BM_ArchiveAppend);

void BM_ArchiveDecode(benchmark::State& state) {
  TarArchive archive;
  const int windows = static_cast<int>(state.range(0));
  for (int w = 0; w < windows; ++w) archive.RegisterWindow(w, 10000, 10);
  Rng rng(2);
  for (int w = 0; w < windows; ++w) {
    const uint64_t count = 50 + rng.NextBounded(20);
    archive.Add(0, w, count, count * 2);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(archive.Decode(0));
  }
  state.SetItemsProcessed(state.iterations() * windows);
}
BENCHMARK(BM_ArchiveDecode)->Arg(5)->Arg(50)->Arg(500);

void BM_ArchiveDecodeInto(benchmark::State& state) {
  TarArchive archive;
  const int windows = static_cast<int>(state.range(0));
  for (int w = 0; w < windows; ++w) archive.RegisterWindow(w, 10000, 10);
  Rng rng(2);
  for (int w = 0; w < windows; ++w) {
    const uint64_t count = 50 + rng.NextBounded(20);
    archive.Add(0, w, count, count * 2);
  }
  DecodeArena arena;
  for (auto _ : state) {
    arena.Reset();
    benchmark::DoNotOptimize(archive.DecodeInto(0, arena).data());
  }
  state.SetItemsProcessed(state.iterations() * windows);
}
BENCHMARK(BM_ArchiveDecodeInto)->Arg(5)->Arg(50)->Arg(500);

WindowIndex BuildIndex(size_t rules, RuleCatalog* catalog) {
  Rng rng(3);
  std::vector<WindowIndex::Entry> entries;
  for (size_t i = 0; i < rules; ++i) {
    const RuleId id = catalog->Intern(
        Rule{{static_cast<ItemId>(i)}, {static_cast<ItemId>(100000 + i)}});
    const uint64_t count = 10 + rng.NextBounded(1000);
    entries.push_back(
        WindowIndex::Entry{id, count, count + rng.NextBounded(1000)});
  }
  WindowIndex index;
  index.Build(entries, 100000, false, *catalog);
  return index;
}

void BM_StableRegionCollect(benchmark::State& state) {
  RuleCatalog catalog;
  const WindowIndex index = BuildIndex(state.range(0), &catalog);
  std::vector<RuleId> out;
  for (auto _ : state) {
    out.clear();
    index.CollectRules(0.001, 0.3, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel("result=" + std::to_string(out.size()));
}
BENCHMARK(BM_StableRegionCollect)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_StableRegionLocate(benchmark::State& state) {
  RuleCatalog catalog;
  const WindowIndex index = BuildIndex(10000, &catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Locate(0.003, 0.42));
  }
}
BENCHMARK(BM_StableRegionLocate);

void BM_TidsetCount(benchmark::State& state) {
  FaersGenerator::Params params;
  params.reports_per_quarter = static_cast<uint32_t>(state.range(0));
  const FaersGenerator gen(params);
  const TransactionDatabase db = gen.GenerateQuarter(0, 0);
  const TidsetIndex index(db, 0, db.size());
  const Itemset query = {gen.ground_truth()[0].drugs[0],
                         gen.ground_truth()[0].drugs[1],
                         gen.ground_truth()[0].adr};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Count(query));
  }
}
BENCHMARK(BM_TidsetCount)->Arg(2000)->Arg(16000);

// --- Observability overhead: the same online queries against an engine
// with metrics disabled (Options::metrics == nullptr, the null sink) and
// one recording into a live registry. The acceptance bar is <3% on the
// hot path; compare the paired benchmarks below.

const EvolvingDatabase& ObsData() {
  static const EvolvingDatabase* data = [] {
    QuestGenerator::Params params;
    params.num_transactions = 8000;
    params.num_items = 150;
    params.num_patterns = 60;
    params.avg_transaction_len = 8;
    params.seed = 23;
    const TransactionDatabase db = QuestGenerator(params).Generate();
    return new EvolvingDatabase(EvolvingDatabase::PartitionIntoBatches(db, 4));
  }();
  return *data;
}

TaraEngine& ObsEngine(obs::MetricsRegistry* registry) {
  auto make = [registry] {
    TaraEngine::Options options;
    options.min_support_floor = 0.01;
    options.min_confidence_floor = 0.1;
    options.max_itemset_size = 4;
    options.metrics = registry;
    auto* engine = new TaraEngine(options);
    engine->BuildAll(ObsData());
    return engine;
  };
  if (registry == nullptr) {
    static TaraEngine* null_sink = make();
    return *null_sink;
  }
  static TaraEngine* recording = make();
  return *recording;
}

obs::MetricsRegistry& ObsRegistry() {
  static obs::MetricsRegistry* registry = new obs::MetricsRegistry;
  return *registry;
}

void MineWindowLoop(benchmark::State& state, TaraEngine& engine) {
  const WindowId newest = engine.window_count() - 1;
  const ParameterSetting setting{0.02, 0.3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.MineWindow(newest, setting).value());
  }
}

void BM_MineWindowNullSink(benchmark::State& state) {
  MineWindowLoop(state, ObsEngine(nullptr));
}
BENCHMARK(BM_MineWindowNullSink);

void BM_MineWindowRegistry(benchmark::State& state) {
  MineWindowLoop(state, ObsEngine(&ObsRegistry()));
}
BENCHMARK(BM_MineWindowRegistry);

// RecommendRegion is the cheapest query (a point-locate on the EPS), so
// it is the most sensitive to per-query span overhead.
void RecommendRegionLoop(benchmark::State& state, TaraEngine& engine) {
  const WindowId newest = engine.window_count() - 1;
  const ParameterSetting setting{0.02, 0.3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.RecommendRegion(newest, setting).value());
  }
}

void BM_RecommendRegionNullSink(benchmark::State& state) {
  RecommendRegionLoop(state, ObsEngine(nullptr));
}
BENCHMARK(BM_RecommendRegionNullSink);

void BM_RecommendRegionRegistry(benchmark::State& state) {
  RecommendRegionLoop(state, ObsEngine(&ObsRegistry()));
}
BENCHMARK(BM_RecommendRegionRegistry);

// Raw instrument costs, for attributing any query-path delta.
void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram histogram;
  uint64_t value = 1;
  for (auto _ : state) {
    histogram.Record(value);
    value = value * 2654435761u % (1u << 20);
  }
  benchmark::DoNotOptimize(histogram.Count());
}
BENCHMARK(BM_HistogramRecord);

void BM_CounterIncrement(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) {
    counter.Increment();
  }
  benchmark::DoNotOptimize(counter.Value());
}
BENCHMARK(BM_CounterIncrement);

void BM_ContrastScore(benchmark::State& state) {
  FaersGenerator gen(FaersGenerator::Params{});
  const TransactionDatabase db = gen.GenerateQuarter(0, 0);
  const TidsetIndex index(db, 0, db.size());
  const PlantedDdi& ddi = gen.ground_truth()[0];
  const DrugAdrAssociation target{ddi.drugs, {ddi.adr}};
  for (auto _ : state) {
    const Cac cac = BuildCac(target, index);
    benchmark::DoNotOptimize(ContrastScore(cac, 0.75));
  }
}
BENCHMARK(BM_ContrastScore);

}  // namespace
}  // namespace tara

BENCHMARK_MAIN();
