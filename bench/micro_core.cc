// Micro-benchmarks (google-benchmark) for the core data structures —
// ablation-level measurements behind the figure harnesses: archive
// encode/decode throughput, stable-region query cost versus result size,
// tidset counting, and contrast scoring.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/stable_region_index.h"
#include "core/tar_archive.h"
#include "datagen/faers_generator.h"
#include "maras/contrast.h"
#include "maras/tidset_index.h"
#include "mining/frequent_itemset.h"

namespace tara {
namespace {

void BM_ArchiveAppend(benchmark::State& state) {
  const int windows = 20;
  for (auto _ : state) {
    state.PauseTiming();
    TarArchive archive;
    for (WindowId w = 0; w < windows; ++w) {
      archive.RegisterWindow(w, 10000, 10);
    }
    Rng rng(1);
    state.ResumeTiming();
    for (WindowId w = 0; w < windows; ++w) {
      for (RuleId r = 0; r < 1000; ++r) {
        const uint64_t count = 10 + rng.NextBounded(100);
        archive.Add(r, w, count, count + rng.NextBounded(100));
      }
    }
    benchmark::DoNotOptimize(archive.payload_bytes());
  }
  state.SetItemsProcessed(state.iterations() * windows * 1000);
}
BENCHMARK(BM_ArchiveAppend);

void BM_ArchiveDecode(benchmark::State& state) {
  TarArchive archive;
  const int windows = static_cast<int>(state.range(0));
  for (int w = 0; w < windows; ++w) archive.RegisterWindow(w, 10000, 10);
  Rng rng(2);
  for (int w = 0; w < windows; ++w) {
    const uint64_t count = 50 + rng.NextBounded(20);
    archive.Add(0, w, count, count * 2);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(archive.Decode(0));
  }
  state.SetItemsProcessed(state.iterations() * windows);
}
BENCHMARK(BM_ArchiveDecode)->Arg(5)->Arg(50)->Arg(500);

WindowIndex BuildIndex(size_t rules, RuleCatalog* catalog) {
  Rng rng(3);
  std::vector<WindowIndex::Entry> entries;
  for (size_t i = 0; i < rules; ++i) {
    const RuleId id = catalog->Intern(
        Rule{{static_cast<ItemId>(i)}, {static_cast<ItemId>(100000 + i)}});
    const uint64_t count = 10 + rng.NextBounded(1000);
    entries.push_back(
        WindowIndex::Entry{id, count, count + rng.NextBounded(1000)});
  }
  WindowIndex index;
  index.Build(entries, 100000, false, *catalog);
  return index;
}

void BM_StableRegionCollect(benchmark::State& state) {
  RuleCatalog catalog;
  const WindowIndex index = BuildIndex(state.range(0), &catalog);
  std::vector<RuleId> out;
  for (auto _ : state) {
    out.clear();
    index.CollectRules(0.001, 0.3, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel("result=" + std::to_string(out.size()));
}
BENCHMARK(BM_StableRegionCollect)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_StableRegionLocate(benchmark::State& state) {
  RuleCatalog catalog;
  const WindowIndex index = BuildIndex(10000, &catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Locate(0.003, 0.42));
  }
}
BENCHMARK(BM_StableRegionLocate);

void BM_TidsetCount(benchmark::State& state) {
  FaersGenerator::Params params;
  params.reports_per_quarter = static_cast<uint32_t>(state.range(0));
  const FaersGenerator gen(params);
  const TransactionDatabase db = gen.GenerateQuarter(0, 0);
  const TidsetIndex index(db, 0, db.size());
  const Itemset query = {gen.ground_truth()[0].drugs[0],
                         gen.ground_truth()[0].drugs[1],
                         gen.ground_truth()[0].adr};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Count(query));
  }
}
BENCHMARK(BM_TidsetCount)->Arg(2000)->Arg(16000);

void BM_ContrastScore(benchmark::State& state) {
  FaersGenerator gen(FaersGenerator::Params{});
  const TransactionDatabase db = gen.GenerateQuarter(0, 0);
  const TidsetIndex index(db, 0, db.size());
  const PlantedDdi& ddi = gen.ground_truth()[0];
  const DrugAdrAssociation target{ddi.drugs, {ddi.adr}};
  for (auto _ : state) {
    const Cac cac = BuildCac(target, index);
    benchmark::DoNotOptimize(ContrastScore(cac, 0.75));
  }
}
BENCHMARK(BM_ContrastScore);

}  // namespace
}  // namespace tara

BENCHMARK_MAIN();
