// CI-sized Q1 harness: runs the Figure 7 experiment on one small synthetic
// dataset (seconds, not minutes) and writes BENCH_q1.json — sweep rows
// plus a snapshot of the engine's metrics registry with per-query-kind
// latency histograms. The full-size sweeps live in fig07/fig08; this
// binary exists so CI can assert the report pipeline end to end on every
// push.

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench/bench_datasets.h"
#include "bench/bench_report.h"
#include "bench/q1_runner.h"
#include "core/kb_blocks.h"
#include "core/kb_open.h"
#include "core/tara_engine.h"
#include "datagen/quest_generator.h"
#include "obs/metrics.h"

namespace tara::bench {
namespace {

BenchDataset MakeCiDataset() {
  QuestGenerator::Params params;
  params.num_transactions = 6000;
  params.num_items = 150;
  params.num_patterns = 60;
  params.avg_transaction_len = 8;
  params.seed = 11;
  const TransactionDatabase db = QuestGenerator(params).Generate();

  BenchDataset d;
  d.name = "quest-ci";
  d.data = EvolvingDatabase::PartitionIntoBatches(db, 4);
  d.support_floor = 0.01;
  d.confidence_floor = 0.1;
  d.max_itemset_size = 4;
  d.support_sweep = {0.012, 0.02, 0.04};
  d.confidence_sweep = {0.2, 0.4, 0.6};
  d.fixed_support = 0.02;
  d.fixed_confidence = 0.3;
  return d;
}

/// Saves the dataset's archive as TARAKB3 blocks and times both open
/// modes, so the report carries open-cost next to query-cost.
void ReportOpenTimes(const BenchDataset& d, BenchReport* report) {
  tara::TaraEngine::Options options;
  options.min_support_floor = d.support_floor;
  options.min_confidence_floor = d.confidence_floor;
  options.max_itemset_size = d.max_itemset_size;
  tara::TaraEngine engine(options);
  engine.BuildAll(d.data);

  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "q1_runner_open";
  fs::remove_all(dir);
  if (tara::SaveKnowledgeBaseBlocks(*engine.Snapshot(), dir.string())) return;
  const auto open_us = [&](tara::OpenMode mode) -> double {
    tara::OpenOptions open;
    open.kb_dir = dir.string();
    open.mode = mode;
    const auto start = std::chrono::steady_clock::now();
    const auto opened = tara::OpenKnowledgeBase(open);
    const std::chrono::duration<double, std::micro> elapsed =
        std::chrono::steady_clock::now() - start;
    return opened.has_value() ? elapsed.count() : 0;
  };
  const double mmap_us = open_us(tara::OpenMode::kMapped);
  const double eager_us = open_us(tara::OpenMode::kEager);
  fs::remove_all(dir);
  std::printf("open: mmap %.1fus, eager %.1fus (%u windows)\n", mmap_us,
              eager_us, engine.window_count());
  report->AddRow()
      .Set("dataset", d.name)
      .Set("phase", "open")
      .Set("windows", engine.window_count())
      .Set("mmap_open_us", mmap_us)
      .Set("eager_open_us", eager_us)
      .Set("peak_rss_bytes", PeakRssBytes());
}

}  // namespace
}  // namespace tara::bench

int main() {
  using namespace tara::bench;
  std::printf("=== q1_runner: CI-sized Q1 sweep ===\n");
  BenchReport report("q1");
  BenchDataset d = MakeCiDataset();
  RunQ1Experiment(d, Vary::kSupport, &report);
  ReportOpenTimes(d, &report);
  report.SetMetricsJson(tara::obs::MetricsRegistry::Global().SnapshotJson());
  return report.WriteFile() ? 0 : 1;
}
