// CI-sized Q1 harness: runs the Figure 7 experiment on one small synthetic
// dataset (seconds, not minutes) and writes BENCH_q1.json — sweep rows
// plus a snapshot of the engine's metrics registry with per-query-kind
// latency histograms. The full-size sweeps live in fig07/fig08; this
// binary exists so CI can assert the report pipeline end to end on every
// push.

#include <cstdio>

#include "bench/bench_datasets.h"
#include "bench/bench_report.h"
#include "bench/q1_runner.h"
#include "datagen/quest_generator.h"
#include "obs/metrics.h"

namespace tara::bench {
namespace {

BenchDataset MakeCiDataset() {
  QuestGenerator::Params params;
  params.num_transactions = 6000;
  params.num_items = 150;
  params.num_patterns = 60;
  params.avg_transaction_len = 8;
  params.seed = 11;
  const TransactionDatabase db = QuestGenerator(params).Generate();

  BenchDataset d;
  d.name = "quest-ci";
  d.data = EvolvingDatabase::PartitionIntoBatches(db, 4);
  d.support_floor = 0.01;
  d.confidence_floor = 0.1;
  d.max_itemset_size = 4;
  d.support_sweep = {0.012, 0.02, 0.04};
  d.confidence_sweep = {0.2, 0.4, 0.6};
  d.fixed_support = 0.02;
  d.fixed_confidence = 0.3;
  return d;
}

}  // namespace
}  // namespace tara::bench

int main() {
  using namespace tara::bench;
  std::printf("=== q1_runner: CI-sized Q1 sweep ===\n");
  BenchReport report("q1");
  BenchDataset d = MakeCiDataset();
  RunQ1Experiment(d, Vary::kSupport, &report);
  report.SetMetricsJson(tara::obs::MetricsRegistry::Global().SnapshotJson());
  return report.WriteFile() ? 0 : 1;
}
