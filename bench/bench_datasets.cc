#include "bench/bench_datasets.h"

#include <cstdlib>

#include "datagen/basket_generators.h"
#include "datagen/quest_generator.h"

namespace tara::bench {
namespace {

constexpr uint32_t kWindows = 5;

/// Per-window transaction count, scaled up in full mode.
uint32_t Scale(uint32_t n) { return FullMode() ? n * 4 : n; }

EvolvingDatabase FromBaskets(BasketGenerator::Params params,
                             uint32_t per_window) {
  params.num_transactions = per_window;
  const BasketGenerator gen(params);
  EvolvingDatabase data;
  Timestamp offset = 0;
  for (uint32_t w = 0; w < kWindows; ++w) {
    const TransactionDatabase batch = gen.GenerateBatch(w, offset);
    data.AppendBatch(batch.transactions());
    offset += per_window;
  }
  return data;
}

EvolvingDatabase FromQuest(QuestGenerator::Params params) {
  const TransactionDatabase db = QuestGenerator(params).Generate();
  return EvolvingDatabase::PartitionIntoBatches(db, kWindows);
}

}  // namespace

bool FullMode() {
  const char* env = std::getenv("TARA_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

BenchDataset MakeRetail() {
  BenchDataset d;
  d.name = "retail";
  BasketGenerator::Params params = BasketGenerator::RetailPreset();
  d.data = FromBaskets(params, Scale(3000));
  d.support_floor = 0.002;
  d.confidence_floor = 0.1;
  d.max_itemset_size = 5;
  d.support_sweep = {0.002, 0.004, 0.008, 0.016, 0.032};
  d.confidence_sweep = {0.1, 0.2, 0.4, 0.6, 0.8};
  d.fixed_support = 0.004;
  // The power-law generator yields lower pair confidences than real retail
  // data; 0.2 keeps a mid-support band alive so Q2 diffs are non-trivial.
  d.fixed_confidence = 0.2;
  return d;
}

BenchDataset MakeT5k() {
  BenchDataset d;
  d.name = "T5k";
  QuestGenerator::Params params;
  params.num_transactions = Scale(2000) * kWindows;
  params.avg_transaction_len = 12;
  params.num_items = 2000;
  params.num_patterns = 600;
  params.avg_pattern_len = 4;
  params.seed = 51;
  d.data = FromQuest(params);
  d.support_floor = 0.002;
  d.confidence_floor = 0.2;
  d.max_itemset_size = 5;
  d.support_sweep = {0.002, 0.004, 0.008, 0.016, 0.032};
  d.confidence_sweep = {0.2, 0.3, 0.45, 0.6, 0.8};
  d.fixed_support = 0.004;
  d.fixed_confidence = 0.2;
  return d;
}

BenchDataset MakeT2k() {
  BenchDataset d;
  d.name = "T2k";
  QuestGenerator::Params params;
  params.num_transactions = Scale(1500) * kWindows;
  params.avg_transaction_len = 16;
  params.num_items = 4000;
  params.num_patterns = 1000;
  params.avg_pattern_len = 5;
  params.seed = 52;
  d.data = FromQuest(params);
  d.support_floor = 0.002;
  d.confidence_floor = 0.2;
  d.max_itemset_size = 5;
  d.support_sweep = {0.002, 0.004, 0.008, 0.016, 0.032};
  d.confidence_sweep = {0.2, 0.3, 0.45, 0.6, 0.8};
  d.fixed_support = 0.004;
  d.fixed_confidence = 0.2;
  return d;
}

BenchDataset MakeWebdocs() {
  BenchDataset d;
  d.name = "webdocs";
  BasketGenerator::Params params = BasketGenerator::WebdocsPreset();
  d.data = FromBaskets(params, Scale(750));
  d.support_floor = 0.08;
  d.confidence_floor = 0.2;
  d.max_itemset_size = 4;
  d.support_sweep = {0.08, 0.1, 0.14, 0.2, 0.28};
  d.confidence_sweep = {0.2, 0.3, 0.45, 0.6, 0.8};
  d.fixed_support = 0.1;
  d.fixed_confidence = 0.4;
  return d;
}

std::vector<BenchDataset> MakeAllDatasets() {
  std::vector<BenchDataset> all;
  all.push_back(MakeRetail());
  all.push_back(MakeT5k());
  all.push_back(MakeT2k());
  all.push_back(MakeWebdocs());
  return all;
}

}  // namespace tara::bench
