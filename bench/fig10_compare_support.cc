// Reproduces Figure 10: online time of the Q2 ruleset comparison (exact
// match across 4 windows) as the second setting's support varies.
//
// Expected shape (paper): comparison time grows with the deviation between
// the settings (more differing rules), and TARA outperforms H-Mine by ~4-5
// orders and DCTAR by ~6-7 orders.

#include <cstdio>

#include "bench/bench_datasets.h"
#include "bench/bench_report.h"
#include "bench/q1_runner.h"
#include "obs/metrics.h"

int main() {
  using namespace tara::bench;
  std::printf("=== Figure 10: Q2 comparison time, varying 2nd support ===\n");
  BenchReport report("fig10");
  for (BenchDataset& d : MakeAllDatasets()) {
    RunQ2Experiment(d, Vary::kSupport, &report);
  }
  report.SetMetricsJson(tara::obs::MetricsRegistry::Global().SnapshotJson());
  return report.WriteFile() ? 0 : 1;
}
