// Reproduces Table 2: the top-5 MDAR signals produced by Confidence,
// Reporting Ratio (lift), and MARAS from one quarter of reports, plus the
// rank at which each ranker first surfaces a true planted DDI.
//
// Expected shape (paper): the confidence and RR top-5 are dominated by
// redundant, overlapping partial interpretations of the same few popular
// drugs; the MARAS top-5 are diverse and hit planted DDIs, which rank
// hundreds-to-thousands deep under confidence/RR (the paper's 2,436th /
// 16,984th observation, scaled to this dataset).

#include <cstdio>

#include "datagen/faers_generator.h"
#include "maras/evaluation.h"
#include "maras/maras_engine.h"

namespace tara::bench {
namespace {

void PrintSignal(const MdarSignal& s, size_t rank, double score,
                 const std::vector<PlantedDdi>& truth) {
  std::printf("  #%zu score=%8.3f count=%4lu %s drugs=[", rank, score,
              static_cast<unsigned long>(s.count),
              IsHit(s, truth) ? "HIT " : "    ");
  for (ItemId d : s.assoc.drugs) std::printf("d%u ", d);
  std::printf("] adrs=[");
  for (ItemId a : s.assoc.adrs) std::printf("a%u ", a);
  std::printf("]\n");
}

/// Mean pairwise Jaccard similarity of the drug sets among the top-5 — the
/// redundancy the paper criticizes in the baseline rankings.
double Redundancy(const std::vector<MdarSignal>& ranked) {
  const size_t n = std::min<size_t>(5, ranked.size());
  double sum = 0;
  size_t pairs = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const Itemset inter =
          Intersection(ranked[i].assoc.drugs, ranked[j].assoc.drugs);
      const Itemset uni = Union(ranked[i].assoc.drugs, ranked[j].assoc.drugs);
      sum += uni.empty() ? 0.0
                         : static_cast<double>(inter.size()) / uni.size();
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : sum / pairs;
}

void Run() {
  FaersGenerator::Params params;
  params.reports_per_quarter = 6000;
  params.num_drugs = 150;
  params.num_adrs = 80;
  params.num_ddis = 12;
  params.seed = 20153;  // "2015 Q3"
  const FaersGenerator gen(params);
  const TransactionDatabase db = gen.GenerateQuarter(2, 0);

  MarasEngine::Options options;
  options.adr_base = gen.adr_base();
  // A lower floor than fig06's: the point of Table 2 is how deeply the
  // small-count confidence/lift flukes bury the true interactions.
  options.min_count = 8;
  options.max_itemset_size = 7;
  const MarasEngine engine(db, 0, db.size(), options);

  const auto by_confidence = engine.RankByConfidence();
  const auto by_lift = engine.RankByLift();
  const auto& by_maras = engine.signals();

  std::printf("=== Table 2: top-5 MDAR signals (one synthetic quarter) ===\n");
  std::printf("\nConfidence ranking (no spuriousness filter):\n");
  for (size_t i = 0; i < 5 && i < by_confidence.size(); ++i) {
    PrintSignal(by_confidence[i], i + 1, by_confidence[i].confidence,
                gen.ground_truth());
  }
  std::printf("\nReporting Ratio (lift) ranking:\n");
  for (size_t i = 0; i < 5 && i < by_lift.size(); ++i) {
    PrintSignal(by_lift[i], i + 1, by_lift[i].lift, gen.ground_truth());
  }
  std::printf("\nMARAS (contrast) ranking:\n");
  for (size_t i = 0; i < 5 && i < by_maras.size(); ++i) {
    PrintSignal(by_maras[i], i + 1, by_maras[i].contrast, gen.ground_truth());
  }

  std::printf("\nTop-5 drug-set redundancy (mean pairwise Jaccard):\n");
  std::printf("  confidence=%.2f lift=%.2f MARAS=%.2f\n",
              Redundancy(by_confidence), Redundancy(by_lift),
              Redundancy(by_maras));

  std::printf("\nRank of the first true DDI under each ranker "
              "(candidates: conf/lift=%zu, MARAS=%zu):\n",
              by_confidence.size(), by_maras.size());
  size_t best_conf = 0, best_lift = 0, best_maras = 0;
  for (const PlantedDdi& ddi : gen.ground_truth()) {
    const size_t rc = RankOfDdi(by_confidence, ddi);
    const size_t rl = RankOfDdi(by_lift, ddi);
    const size_t rm = RankOfDdi(by_maras, ddi);
    auto better = [](size_t current, size_t candidate) {
      return candidate != 0 && (current == 0 || candidate < current);
    };
    if (better(best_conf, rc)) best_conf = rc;
    if (better(best_lift, rl)) best_lift = rl;
    if (better(best_maras, rm)) best_maras = rm;
  }
  std::printf("  MARAS=%zu confidence=%zu lift(RR)=%zu\n", best_maras,
              best_conf, best_lift);
}

}  // namespace
}  // namespace tara::bench

int main() {
  tara::bench::Run();
  return 0;
}
