#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace tara {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResultsThroughFutures) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenWhenAskedForZero) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, SubmittedExceptionsPropagateThroughTheFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker that ran the throwing task is still usable.
  EXPECT_EQ(pool.Submit([] { return 3; }).get(), 3);
}

TEST(ThreadPoolTest, DestructorRunsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool drains the queue before joining.
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](size_t /*chunk*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForChunksAreDenseOrderedAndDeterministic) {
  ThreadPool pool(3);
  const size_t chunks = pool.ChunkCountFor(100);
  ASSERT_GE(chunks, 1u);
  ASSERT_LE(chunks, 4u);  // size() + 1

  // Record each chunk's range twice; the split must be identical.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::pair<size_t, size_t>> ranges(chunks, {0, 0});
    pool.ParallelFor(100, [&ranges](size_t chunk, size_t begin, size_t end) {
      ranges[chunk] = {begin, end};
    });
    size_t expected_begin = 0;
    for (size_t c = 0; c < chunks; ++c) {
      EXPECT_EQ(ranges[c].first, expected_begin) << "chunk " << c;
      EXPECT_GT(ranges[c].second, ranges[c].first);
      expected_begin = ranges[c].second;
    }
    EXPECT_EQ(expected_begin, 100u);
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&calls](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  // n smaller than the worker count: never more chunks than items.
  std::vector<int> hits(2, 0);
  pool.ParallelFor(2, [&hits](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 1);
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  std::vector<std::future<void>> outer;
  // More outer tasks than workers, each doing a nested ParallelFor: if the
  // nested call queued sub-chunks this would deadlock.
  for (int t = 0; t < 8; ++t) {
    outer.push_back(pool.Submit([&pool, &total] {
      EXPECT_TRUE(ThreadPool::InWorkerThread());
      pool.ParallelFor(50, [&total](size_t chunk, size_t begin, size_t end) {
        EXPECT_EQ(chunk, 0u);  // inline: the whole range is one chunk
        total.fetch_add(end - begin);
      });
    }));
  }
  for (auto& f : outer) f.get();
  EXPECT_EQ(total.load(), 8u * 50u);
}

TEST(ThreadPoolTest, InWorkerThreadFalseOnExternalThreads) {
  EXPECT_FALSE(ThreadPool::InWorkerThread());
  ThreadPool pool(1);
  EXPECT_TRUE(pool.Submit([] { return ThreadPool::InWorkerThread(); }).get());
  EXPECT_FALSE(ThreadPool::InWorkerThread());
}

}  // namespace
}  // namespace tara
