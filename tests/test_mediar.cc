#include <gtest/gtest.h>

#include "datagen/faers_generator.h"
#include "maras/evaluation.h"
#include "maras/mediar.h"

namespace tara {
namespace {

FaersGenerator MakeGenerator(uint64_t seed) {
  FaersGenerator::Params params;
  params.reports_per_quarter = 4000;
  params.num_drugs = 120;
  params.num_adrs = 60;
  params.num_ddis = 6;
  params.seed = seed;
  return FaersGenerator(params);
}

MarasEngine::Options EngineOptions(ItemId adr_base) {
  MarasEngine::Options options;
  options.adr_base = adr_base;
  options.min_count = 8;
  options.max_itemset_size = 7;
  options.classify_support = false;  // keep the test fast
  return options;
}

TEST(MediarMonitorTest, TracksSignalsAcrossQuarters) {
  const FaersGenerator gen = MakeGenerator(100);
  MediarMonitor monitor(EngineOptions(gen.adr_base()));
  for (uint32_t q = 0; q < 3; ++q) {
    EXPECT_EQ(monitor.AddQuarter(gen.GenerateQuarter(q, 0)), q);
  }
  EXPECT_EQ(monitor.quarter_count(), 3u);

  // Planted DDIs fire every quarter, so at least one history must span all
  // three quarters.
  bool found_persistent = false;
  for (const auto* history : monitor.histories()) {
    ASSERT_EQ(history->quarters.size(), history->contrasts.size());
    ASSERT_EQ(history->quarters.size(), history->counts.size());
    EXPECT_TRUE(std::is_sorted(history->quarters.begin(),
                               history->quarters.end()));
    if (history->quarters.size() == 3) found_persistent = true;
  }
  EXPECT_TRUE(found_persistent);
}

TEST(MediarMonitorTest, ReviewQueuePutsNewSignalsFirst) {
  const FaersGenerator gen = MakeGenerator(101);
  MediarMonitor monitor(EngineOptions(gen.adr_base()));
  monitor.AddQuarter(gen.GenerateQuarter(0, 0));
  monitor.AddQuarter(gen.GenerateQuarter(1, 0));

  const auto queue = monitor.ReviewQueue();
  ASSERT_FALSE(queue.empty());
  // Every queued history ends at the latest quarter.
  for (const auto* history : queue) {
    EXPECT_EQ(history->quarters.back(), 1u);
  }
  // New signals (first seen in quarter 1) come before recurring ones.
  bool seen_recurring = false;
  for (const auto* history : queue) {
    if (history->NewIn(1)) {
      EXPECT_FALSE(seen_recurring)
          << "new signal ranked after a recurring one";
    } else {
      seen_recurring = true;
    }
  }
}

TEST(MediarMonitorTest, StrengtheningSignalsHavePositiveTrend) {
  const FaersGenerator gen = MakeGenerator(102);
  MediarMonitor monitor(EngineOptions(gen.adr_base()));
  monitor.AddQuarter(gen.GenerateQuarter(0, 0));
  monitor.AddQuarter(gen.GenerateQuarter(1, 0));
  for (const auto* history : monitor.StrengtheningSignals()) {
    EXPECT_GT(history->trend(), 0.0);
    EXPECT_GE(history->quarters.size(), 2u);
  }
}

TEST(MediarMonitorTest, PersistentDdiSignalsKeepTheirIdentity) {
  const FaersGenerator gen = MakeGenerator(103);
  MediarMonitor monitor(EngineOptions(gen.adr_base()));
  for (uint32_t q = 0; q < 3; ++q) {
    monitor.AddQuarter(gen.GenerateQuarter(q, 0));
  }
  // At least one planted DDI should be tracked as a multi-quarter history.
  size_t hits = 0;
  for (const auto* history : monitor.histories()) {
    MdarSignal probe;
    probe.assoc = history->assoc;
    if (IsHit(probe, gen.ground_truth()) && history->quarters.size() >= 2) {
      ++hits;
    }
  }
  EXPECT_GE(hits, 3u) << "planted interactions should persist across "
                         "quarters";
}

}  // namespace
}  // namespace tara
