// Block-partitioned (TARAKB3) persistence and the zero-copy open path:
// round-trips through both OpenMode's, balanced partitioning, the
// append-only block contract, lazy materialization observability, a
// mapped-vs-eager differential oracle over the full query surface, and
// corruption fuzz that must always come back as a typed error — at open
// (verify = kHashes), or as QueryError::kCorruptStorage on the first
// lazy decode that hits it — never a crash.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/kb_blocks.h"
#include "core/kb_open.h"
#include "core/kb_storage.h"
#include "core/query_request.h"
#include "core/serialization.h"
#include "core/tara_engine.h"
#include "datagen/quest_generator.h"
#include "txdb/evolving_database.h"

namespace tara {
namespace {

namespace fs = std::filesystem;

constexpr double kSupportFloor = 0.01;
constexpr double kConfidenceFloor = 0.1;

EvolvingDatabase MakeData(uint32_t windows) {
  QuestGenerator::Params params;
  params.num_transactions = 500 * windows;
  params.num_items = 80;
  params.num_patterns = 40;
  params.avg_transaction_len = 8;
  params.seed = 42;
  const TransactionDatabase db = QuestGenerator(params).Generate();
  return EvolvingDatabase::PartitionIntoBatches(db, windows);
}

TaraEngine BuildEngine(const EvolvingDatabase& data) {
  TaraEngine::Options options;
  options.min_support_floor = kSupportFloor;
  options.min_confidence_floor = kConfidenceFloor;
  options.max_itemset_size = 4;
  TaraEngine engine(options);
  engine.BuildAll(data);
  return engine;
}

Expected<TaraEngine, LoadError> Open(const std::string& dir, OpenMode mode,
                                     OpenVerify verify = OpenVerify::kNone) {
  OpenOptions options;
  options.kb_dir = dir;
  options.mode = mode;
  options.verify = verify;
  return OpenKnowledgeBase(options);
}

std::string ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteFileBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class KbBlocksTest : public ::testing::Test {
 protected:
  KbBlocksTest()
      : dir_(fs::path(::testing::TempDir()) /
             ("kb_blocks_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name())) {
    fs::remove_all(dir_);
  }
  ~KbBlocksTest() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(KbBlocksTest, RoundTripsThroughBothOpenModes) {
  const EvolvingDatabase data = MakeData(4);
  const TaraEngine original = BuildEngine(data);
  ASSERT_FALSE(
      SaveKnowledgeBaseBlocks(*original.Snapshot(), dir_.string()).has_value());
  EXPECT_TRUE(fs::exists(dir_ / "blocks.tarakb3"));
  EXPECT_TRUE(KnowledgeBaseBlocksDirExists(dir_.string()));

  for (const OpenMode mode : {OpenMode::kEager, OpenMode::kMapped}) {
    const auto loaded = Open(dir_.string(), mode);
    ASSERT_TRUE(loaded.has_value()) << loaded.error();
    EXPECT_EQ(loaded->window_count(), original.window_count());
    const ParameterSetting setting{0.02, 0.3};
    for (WindowId w = 0; w < original.window_count(); ++w) {
      EXPECT_EQ(loaded->MineWindow(w, setting).value(),
                original.MineWindow(w, setting).value());
    }
    // Once every window is materialized the loaded engine streams to the
    // exact bytes of the source engine — blocks hold the same segment
    // blobs TARAKB2 does.
    EXPECT_EQ(KnowledgeBaseToString(*loaded), KnowledgeBaseToString(original));
  }
}

TEST_F(KbBlocksTest, PartitionsIntoBalancedContiguousBlocks) {
  const TaraEngine engine = BuildEngine(MakeData(6));
  // A tiny byte target forces several blocks; every block must still get
  // at least one window and the spans must tile [0, window_count).
  ASSERT_FALSE(SaveKnowledgeBaseBlocks(*engine.Snapshot(), dir_.string(), 4096)
                   .has_value());
  const auto manifest = ReadKnowledgeBaseBlocksManifest(dir_.string());
  ASSERT_TRUE(manifest.has_value()) << manifest.error();
  ASSERT_GT(manifest->blocks.size(), 1u);
  EXPECT_EQ(manifest->window_count(), 6u);

  WindowId next_window = 0;
  for (const KbBlockInfo& block : manifest->blocks) {
    EXPECT_EQ(block.first_window, next_window);
    ASSERT_FALSE(block.rows.empty());
    next_window += static_cast<WindowId>(block.rows.size());
    const fs::path file = dir_ / KnowledgeBaseBlockFileName(block.file_index);
    ASSERT_TRUE(fs::exists(file)) << file;
    EXPECT_EQ(fs::file_size(file), block.file_bytes);
    for (const KbBlockRow& row : block.rows) {
      EXPECT_EQ(row.offset % kBlockSegmentAlignment, 0u);
      EXPECT_LE(row.offset + row.segment_bytes, block.file_bytes);
    }
  }
  EXPECT_EQ(next_window, 6u);

  // The default target comfortably holds this KB in one block.
  const fs::path one = dir_.parent_path() / (dir_.filename().string() + "_one");
  fs::remove_all(one);
  ASSERT_FALSE(
      SaveKnowledgeBaseBlocks(*engine.Snapshot(), one.string()).has_value());
  const auto single = ReadKnowledgeBaseBlocksManifest(one.string());
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->blocks.size(), 1u);
  fs::remove_all(one);
}

TEST_F(KbBlocksTest, AppendPacksOnlyNewWindowsIntoFreshBlocks) {
  const EvolvingDatabase data = MakeData(4);
  TaraEngine engine = BuildEngine(EvolvingDatabase());
  for (uint32_t w = 0; w < 3; ++w) {
    const WindowInfo& info = data.window(w);
    engine.AppendWindow(data.database(), info.begin, info.end);
  }
  ASSERT_FALSE(SaveKnowledgeBaseBlocks(*engine.Snapshot(), dir_.string(), 4096)
                   .has_value());
  const auto before = ReadKnowledgeBaseBlocksManifest(dir_.string());
  ASSERT_TRUE(before.has_value());
  std::vector<std::pair<fs::path, std::string>> old_blocks;
  for (const KbBlockInfo& block : before->blocks) {
    const fs::path file = dir_ / KnowledgeBaseBlockFileName(block.file_index);
    old_blocks.emplace_back(file, ReadFileBytes(file));
  }

  const WindowInfo& info = data.window(3);
  engine.AppendWindow(data.database(), info.begin, info.end);
  ASSERT_FALSE(
      AppendKnowledgeBaseBlocks(*engine.Snapshot(), dir_.string(), 4096)
          .has_value());

  // Every pre-existing block file is byte-identical; the new window went
  // into one or more fresh-indexed files.
  for (const auto& [file, bytes] : old_blocks) {
    EXPECT_EQ(ReadFileBytes(file), bytes) << file;
  }
  const auto after = ReadKnowledgeBaseBlocksManifest(dir_.string());
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->window_count(), 4u);
  EXPECT_GT(after->blocks.size(), before->blocks.size());

  const auto loaded = Open(dir_.string(), OpenMode::kMapped);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  EXPECT_EQ(KnowledgeBaseToString(*loaded),
            KnowledgeBaseToString(BuildEngine(data)));
}

TEST_F(KbBlocksTest, MappedOpenMaterializesNothingUntilQueried) {
  const TaraEngine original = BuildEngine(MakeData(5));
  ASSERT_FALSE(SaveKnowledgeBaseBlocks(*original.Snapshot(), dir_.string(),
                                       4096)
                   .has_value());
  const auto loaded = Open(dir_.string(), OpenMode::kMapped);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  const TaraEngine& engine = *loaded;

  // Open itself decoded nothing.
  EXPECT_EQ(engine.window_count(), 5u);
  EXPECT_EQ(engine.materialized_window_count(), 0u);
  EXPECT_FALSE(engine.fully_materialized());

  // A query against window 1 pulls in exactly the prefix it needs.
  const ParameterSetting setting{0.02, 0.3};
  ASSERT_TRUE(engine.MineWindow(1, setting).has_value());
  EXPECT_EQ(engine.materialized_window_count(), 2u);
  EXPECT_FALSE(engine.fully_materialized());

  // Touching the last window completes materialization.
  ASSERT_TRUE(engine.MineWindow(4, setting).has_value());
  EXPECT_EQ(engine.materialized_window_count(), 5u);
  EXPECT_TRUE(engine.fully_materialized());
}

TEST_F(KbBlocksTest, FirstWindowWithRuleFollowsTheWatermarks) {
  const TaraEngine engine = BuildEngine(MakeData(4));
  ASSERT_FALSE(SaveKnowledgeBaseBlocks(*engine.Snapshot(), dir_.string(), 4096)
                   .has_value());
  auto mapped = MappedKb::Open(dir_.string());
  ASSERT_TRUE(mapped.has_value()) << mapped.error();
  const KbBlocksManifest& manifest = mapped->manifest();

  uint64_t watermark = 0;
  WindowId w = 0;
  for (const KbBlockInfo& block : manifest.blocks) {
    for (const KbBlockRow& row : block.rows) {
      if (row.rule_watermark > watermark) {
        // The first and last rule interned by this window map back to it.
        EXPECT_EQ(mapped->FirstWindowWithRule(
                      static_cast<RuleId>(watermark)),
                  std::optional<WindowId>(w));
        EXPECT_EQ(mapped->FirstWindowWithRule(
                      static_cast<RuleId>(row.rule_watermark - 1)),
                  std::optional<WindowId>(w));
      }
      watermark = row.rule_watermark;
      ++w;
    }
  }
  ASSERT_GT(watermark, 0u);
  EXPECT_FALSE(mapped->FirstWindowWithRule(static_cast<RuleId>(watermark))
                   .has_value());
}

/// A random request of any kind, window ids occasionally out of range and
/// settings occasionally below the floors, so the oracle also proves the
/// two modes reject identically.
QueryRequest RandomRequest(Rng* rng, uint32_t window_count) {
  const auto setting = [&]() -> ParameterSetting {
    if (rng->NextBool(0.08)) return {kSupportFloor / 10, kConfidenceFloor};
    return {kSupportFloor + rng->NextDouble() * 0.02,
            kConfidenceFloor + rng->NextDouble() * 0.4};
  };
  const auto window = [&]() -> WindowId {
    return static_cast<WindowId>(
        rng->NextBounded(window_count + (rng->NextBool(0.08) ? 2 : 0)));
  };
  const auto windows = [&]() -> std::vector<WindowId> {
    std::vector<WindowId> ids;
    const uint64_t n = 1 + rng->NextBounded(window_count);
    for (uint64_t i = 0; i < n; ++i) ids.push_back(window());
    return ids;
  };
  const auto rule = [&]() -> RuleId {
    return static_cast<RuleId>(rng->NextBounded(4000));
  };
  const MatchMode mode =
      rng->NextBool(0.5) ? MatchMode::kSingle : MatchMode::kExact;
  switch (static_cast<QueryKind>(rng->NextBounded(kQueryKindCount))) {
    case QueryKind::kMineWindow:
      return QueryRequest::MineWindow(window(), setting());
    case QueryKind::kMineWindows:
      return QueryRequest::MineWindows(windows(), setting(), mode);
    case QueryKind::kTrajectory:
      return QueryRequest::Trajectory(window(), setting(), windows());
    case QueryKind::kCompare:
      return QueryRequest::Compare(setting(), setting(), windows(), mode);
    case QueryKind::kRegion:
      return QueryRequest::Region(window(), setting());
    case QueryKind::kMeasures:
      return QueryRequest::Measures(rule(), windows());
    case QueryKind::kContent: {
      Itemset items;
      const uint64_t n = 1 + rng->NextBounded(2);
      for (uint64_t i = 0; i < n; ++i) {
        items.push_back(static_cast<ItemId>(rng->NextBounded(80)));
      }
      return QueryRequest::Content(window(), std::move(items), setting());
    }
    case QueryKind::kContentView:
      return QueryRequest::ContentView(window(), setting());
    case QueryKind::kRollUpRule:
      return QueryRequest::RollUpRule(rule(), windows());
    case QueryKind::kRollUpMine:
      return QueryRequest::RollUpMine(windows(), setting());
  }
  return QueryRequest::MineWindow(0, setting());
}

::testing::AssertionResult SameAnswer(
    const QueryRequest& request,
    const Expected<QueryResult, QueryError>& eager,
    const Expected<QueryResult, QueryError>& mapped) {
  if (eager.has_value() != mapped.has_value()) {
    return ::testing::AssertionFailure()
           << QueryKindName(request.kind) << ": eager "
           << (eager.has_value() ? "succeeded" : "failed") << ", mapped "
           << (mapped.has_value() ? "succeeded" : "failed");
  }
  if (!eager.has_value()) {
    if (eager.error().code != mapped.error().code) {
      return ::testing::AssertionFailure()
             << QueryKindName(request.kind) << ": error codes differ";
    }
    return ::testing::AssertionSuccess();
  }
  const std::string eager_bytes = EncodeQueryResult(request.kind, eager.value());
  const std::string mapped_bytes =
      EncodeQueryResult(request.kind, mapped.value());
  if (eager_bytes != mapped_bytes) {
    return ::testing::AssertionFailure()
           << QueryKindName(request.kind) << ": serialized results differ ("
           << eager_bytes.size() << " vs " << mapped_bytes.size() << " bytes)";
  }
  return ::testing::AssertionSuccess();
}

// The mode-equivalence oracle: one KB opened eagerly and zero-copy, fed
// the same randomized Q1-Q5 / roll-up stream — byte-identical serialized
// answers (or identical error codes) throughout, including after live
// windows are appended to both opens.
TEST_F(KbBlocksTest, MappedAnswersAreByteIdenticalToEager) {
  const EvolvingDatabase data = MakeData(6);
  {
    TaraEngine base(BuildEngine(EvolvingDatabase()));
    for (uint32_t w = 0; w < 4; ++w) {
      const WindowInfo& info = data.window(w);
      base.AppendWindow(data.database(), info.begin, info.end);
    }
    ASSERT_FALSE(SaveKnowledgeBaseBlocks(*base.Snapshot(), dir_.string(), 4096)
                     .has_value());
  }
  auto eager = Open(dir_.string(), OpenMode::kEager);
  auto mapped = Open(dir_.string(), OpenMode::kMapped);
  ASSERT_TRUE(eager.has_value()) << eager.error();
  ASSERT_TRUE(mapped.has_value()) << mapped.error();
  TaraEngine& eager_engine = eager.value();
  TaraEngine& mapped_engine = mapped.value();

  Rng rng(20260808);
  uint32_t appended = 4;
  constexpr int kSteps = 300;
  for (int step = 0; step < kSteps; ++step) {
    // Two live appends land mid-stream, on both engines.
    if (step > 0 && step % 120 == 0 && appended < data.window_count()) {
      const WindowInfo& info = data.window(appended);
      eager_engine.AppendWindow(data.database(), info.begin, info.end);
      mapped_engine.AppendWindow(data.database(), info.begin, info.end);
      ++appended;
    }
    const QueryRequest request = RandomRequest(&rng, appended);
    EXPECT_TRUE(SameAnswer(request, eager_engine.Execute(request),
                           mapped_engine.Execute(request)))
        << "step " << step;
  }
  EXPECT_EQ(appended, data.window_count());
  EXPECT_EQ(KnowledgeBaseToString(eager_engine),
            KnowledgeBaseToString(mapped_engine));
}

// TSan target: racing queries must materialize each window exactly once
// and never tear the lazy bookkeeping.
TEST_F(KbBlocksTest, ConcurrentQueriesMaterializeLazilyWithoutRacing) {
  const EvolvingDatabase data = MakeData(6);
  const TaraEngine original = BuildEngine(data);
  ASSERT_FALSE(SaveKnowledgeBaseBlocks(*original.Snapshot(), dir_.string(),
                                       4096)
                   .has_value());
  const auto loaded = Open(dir_.string(), OpenMode::kMapped);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  const TaraEngine& engine = *loaded;
  ASSERT_EQ(engine.materialized_window_count(), 0u);

  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, &failures, t] {
      Rng rng(0x5eed0000 + static_cast<uint64_t>(t));
      const ParameterSetting setting{0.02, 0.3};
      for (int i = 0; i < 40; ++i) {
        const WindowId w =
            static_cast<WindowId>(rng.NextBounded(engine.window_count()));
        if (!engine.MineWindow(w, setting).has_value()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(engine.fully_materialized());
  EXPECT_EQ(KnowledgeBaseToString(engine), KnowledgeBaseToString(original));
}

TEST_F(KbBlocksTest, VerifyHashesCatchesEveryInjectedBlockCorruption) {
  const TaraEngine engine = BuildEngine(MakeData(4));
  ASSERT_FALSE(SaveKnowledgeBaseBlocks(*engine.Snapshot(), dir_.string(), 4096)
                   .has_value());
  const auto manifest = ReadKnowledgeBaseBlocksManifest(dir_.string());
  ASSERT_TRUE(manifest.has_value());

  // Flip one byte inside every window's segment in turn; both the plain
  // and the pooled verifier must refuse each time, and a mapped open
  // without verification must still succeed (it reads no payload).
  for (const KbBlockInfo& block : manifest->blocks) {
    const fs::path file = dir_ / KnowledgeBaseBlockFileName(block.file_index);
    const std::string valid = ReadFileBytes(file);
    for (const KbBlockRow& row : block.rows) {
      std::string mutated = valid;
      mutated[row.offset + row.segment_bytes / 2] ^= 0x5a;
      WriteFileBytes(file, mutated);

      auto mapped = MappedKb::Open(dir_.string());
      ASSERT_TRUE(mapped.has_value()) << mapped.error();
      EXPECT_TRUE(mapped->VerifyHashes().has_value());
      ThreadPool pool(2);
      EXPECT_TRUE(mapped->VerifyHashes(&pool).has_value());

      // The unified entrypoint surfaces it as a typed open failure.
      const auto checked =
          Open(dir_.string(), OpenMode::kMapped, OpenVerify::kHashes);
      ASSERT_FALSE(checked.has_value());
      EXPECT_EQ(checked.error().code, LoadError::Code::kCorruptSegment);
    }
    WriteFileBytes(file, valid);
  }
  EXPECT_FALSE(MappedKb::Open(dir_.string())->VerifyHashes().has_value());
}

TEST_F(KbBlocksTest, LazyDecodeOfCorruptStorageIsATypedQueryError) {
  const TaraEngine engine = BuildEngine(MakeData(4));
  ASSERT_FALSE(SaveKnowledgeBaseBlocks(*engine.Snapshot(), dir_.string(), 4096)
                   .has_value());
  const auto manifest = ReadKnowledgeBaseBlocksManifest(dir_.string());
  ASSERT_TRUE(manifest.has_value());

  // Corrupt the LAST window's segment: the mapped open and every query
  // on earlier windows still work, and the first query that needs the
  // damaged window is rejected — sticky, typed, no crash.
  const KbBlockInfo& last_block = manifest->blocks.back();
  const KbBlockRow& last_row = last_block.rows.back();
  const fs::path victim =
      dir_ / KnowledgeBaseBlockFileName(last_block.file_index);
  std::string bytes = ReadFileBytes(victim);
  bytes[last_row.offset + last_row.segment_bytes / 2] ^= 0x5a;
  WriteFileBytes(victim, bytes);

  const auto loaded = Open(dir_.string(), OpenMode::kMapped);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  const ParameterSetting setting{0.02, 0.3};
  EXPECT_TRUE(loaded->MineWindow(0, setting).has_value());

  const auto rejected = loaded->MineWindow(3, setting);
  ASSERT_FALSE(rejected.has_value());
  EXPECT_EQ(rejected.error().code, QueryError::Code::kCorruptStorage);

  // Sticky: the tail stays unavailable, decoded windows keep serving.
  EXPECT_FALSE(loaded->MineWindow(3, setting).has_value());
  EXPECT_TRUE(loaded->MineWindow(0, setting).has_value());
  EXPECT_FALSE(loaded->fully_materialized());

  // The eager open refuses outright with the load-side error.
  const auto eager = Open(dir_.string(), OpenMode::kEager);
  ASSERT_FALSE(eager.has_value());
  EXPECT_EQ(eager.error().code, LoadError::Code::kCorruptSegment);
}

// Corruption fuzz over the blocks manifest: seeded single-byte flips and
// truncations. Every mutation must produce a loaded engine or a typed
// LoadError — never a crash — and the vast majority must be detected.
TEST_F(KbBlocksTest, ManifestByteFlipsNeverCrashEitherOpenMode) {
  const TaraEngine engine = BuildEngine(MakeData(3));
  ASSERT_FALSE(SaveKnowledgeBaseBlocks(*engine.Snapshot(), dir_.string(), 4096)
                   .has_value());
  const fs::path manifest = dir_ / "blocks.tarakb3";
  const std::string valid = ReadFileBytes(manifest);

  Rng rng(0xB10C5);
  int rejected = 0;
  constexpr int kFlips = 60;
  for (int i = 0; i < kFlips; ++i) {
    std::string mutated = valid;
    const size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] ^= static_cast<char>(1 + rng.NextBounded(255));
    WriteFileBytes(manifest, mutated);
    const auto mapped = Open(dir_.string(), OpenMode::kMapped);
    if (!mapped.has_value()) {
      EXPECT_FALSE(mapped.error().message.empty());
    }
    // The eager opener must survive the same mutation, and may reject
    // strictly more than the mapped open: a flipped stored hash passes
    // the structural checks (all a mapped open runs) but fails the
    // decode-time verification.
    const auto eager = Open(dir_.string(), OpenMode::kEager);
    if (eager.has_value()) {
      EXPECT_TRUE(mapped.has_value());
    } else {
      ++rejected;
      EXPECT_FALSE(eager.error().message.empty());
    }
  }
  EXPECT_GT(rejected, kFlips / 2);

  WriteFileBytes(manifest, valid);
  EXPECT_TRUE(Open(dir_.string(), OpenMode::kMapped).has_value());
}

TEST_F(KbBlocksTest, ManifestTruncationsAreTypedErrors) {
  const TaraEngine engine = BuildEngine(MakeData(3));
  ASSERT_FALSE(SaveKnowledgeBaseBlocks(*engine.Snapshot(), dir_.string(), 4096)
                   .has_value());
  const fs::path manifest = dir_ / "blocks.tarakb3";
  const std::string valid = ReadFileBytes(manifest);

  Rng rng(0x7au);
  for (int i = 0; i < 25; ++i) {
    WriteFileBytes(manifest,
                   valid.substr(0, rng.NextBounded(valid.size())));
    const auto loaded = Open(dir_.string(), OpenMode::kMapped);
    ASSERT_FALSE(loaded.has_value());
    EXPECT_FALSE(loaded.error().message.empty());
  }
  WriteFileBytes(manifest, "junk that is surely not a manifest");
  EXPECT_EQ(Open(dir_.string(), OpenMode::kMapped).error().code,
            LoadError::Code::kBadMagic);
  WriteFileBytes(manifest, valid + "x");
  EXPECT_EQ(Open(dir_.string(), OpenMode::kMapped).error().code,
            LoadError::Code::kTrailingBytes);

  // A manifest that names a missing or short block file is refused by
  // the open (fstat size check), not by a later fault.
  WriteFileBytes(manifest, valid);
  const auto parsed = ReadKnowledgeBaseBlocksManifest(dir_.string());
  ASSERT_TRUE(parsed.has_value());
  const fs::path block =
      dir_ / KnowledgeBaseBlockFileName(parsed->blocks.front().file_index);
  const std::string block_bytes = ReadFileBytes(block);
  WriteFileBytes(block, block_bytes.substr(0, block_bytes.size() - 1));
  EXPECT_FALSE(Open(dir_.string(), OpenMode::kMapped).has_value());
  fs::remove(block);
  EXPECT_EQ(Open(dir_.string(), OpenMode::kMapped).error().code,
            LoadError::Code::kIoError);
}

TEST_F(KbBlocksTest, RepartitionTrimAndRemoveRoundTrip) {
  const EvolvingDatabase data = MakeData(4);
  const TaraEngine original = BuildEngine(data);
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*original.Snapshot(), dir_.string()).has_value());

  // TARAKB2 -> TARAKB3 conversion is a byte-level move: same windows,
  // same stream bytes, old per-window files gone.
  ASSERT_FALSE(RepartitionKnowledgeBase(dir_.string(), 4096).has_value());
  EXPECT_TRUE(KnowledgeBaseBlocksDirExists(dir_.string()));
  EXPECT_FALSE(fs::exists(dir_ / "manifest.tarakb"));
  EXPECT_FALSE(fs::exists(dir_ / "window-000000.seg"));
  {
    const auto loaded = Open(dir_.string(), OpenMode::kMapped);
    ASSERT_TRUE(loaded.has_value()) << loaded.error();
    EXPECT_EQ(KnowledgeBaseToString(*loaded), KnowledgeBaseToString(original));
  }

  // Rebalance into one big block: fresh file indices, same bytes.
  ASSERT_FALSE(RepartitionKnowledgeBase(dir_.string()).has_value());
  const auto rebalanced = ReadKnowledgeBaseBlocksManifest(dir_.string());
  ASSERT_TRUE(rebalanced.has_value());
  EXPECT_EQ(rebalanced->blocks.size(), 1u);

  // Trim to a 2-window prefix; it must equal a direct 2-window build's
  // persisted form when loaded.
  ASSERT_FALSE(TrimKnowledgeBase(dir_.string(), 2).has_value());
  {
    const auto loaded = Open(dir_.string(), OpenMode::kEager);
    ASSERT_TRUE(loaded.has_value()) << loaded.error();
    EXPECT_EQ(loaded->window_count(), 2u);
    TaraEngine prefix = BuildEngine(EvolvingDatabase());
    for (uint32_t w = 0; w < 2; ++w) {
      const WindowInfo& info = data.window(w);
      prefix.AppendWindow(data.database(), info.begin, info.end);
    }
    EXPECT_EQ(KnowledgeBaseToString(*loaded), KnowledgeBaseToString(prefix));
  }
  // Over-trim is a typed refusal.
  EXPECT_TRUE(TrimKnowledgeBase(dir_.string(), 7).has_value());

  // rm deletes exactly the manifest-named files; strangers survive.
  WriteFileBytes(dir_ / "bystander.txt", "not part of the kb");
  ASSERT_FALSE(RemoveKnowledgeBase(dir_.string()).has_value());
  EXPECT_FALSE(KnowledgeBaseBlocksDirExists(dir_.string()));
  std::vector<std::string> leftovers;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
    leftovers.push_back(entry.path().filename().string());
  }
  EXPECT_EQ(leftovers, std::vector<std::string>{"bystander.txt"});
}

TEST_F(KbBlocksTest, WalRecoveryOverBlocksReproducesAckedState) {
  const EvolvingDatabase data = MakeData(4);
  const fs::path wal_dir = dir_ / "wal";

  // Checkpoint the first two windows as blocks, then append two more
  // through an attached WAL without re-checkpointing.
  std::string reference;
  {
    TaraEngine engine = BuildEngine(EvolvingDatabase());
    for (uint32_t w = 0; w < 2; ++w) {
      const WindowInfo& info = data.window(w);
      engine.AppendWindow(data.database(), info.begin, info.end);
    }
    ASSERT_FALSE(SaveKnowledgeBaseBlocks(*engine.Snapshot(), dir_.string(),
                                         4096)
                     .has_value());
    const auto attach = engine.AttachWal(wal_dir.string());
    ASSERT_TRUE(attach.has_value()) << attach.error();
    for (uint32_t w = 2; w < 4; ++w) {
      const WindowInfo& info = data.window(w);
      engine.AppendWindow(data.database(), info.begin, info.end);
    }
    reference = KnowledgeBaseToString(engine);
  }

  // Recover-on-open: mapped checkpoint + WAL tail. Replay forces full
  // materialization, so the recovered engine is immediately appendable.
  OpenOptions options;
  options.kb_dir = dir_.string();
  options.mode = OpenMode::kMapped;
  options.wal_dir = wal_dir.string();
  WalReplayStats stats;
  options.replay_stats = &stats;
  const auto recovered = OpenKnowledgeBase(options);
  ASSERT_TRUE(recovered.has_value()) << recovered.error();
  EXPECT_TRUE(recovered->wal_attached());
  EXPECT_TRUE(recovered->fully_materialized());
  EXPECT_EQ(recovered->window_count(), 4u);
  EXPECT_EQ(stats.records_replayed, 2u);
  EXPECT_EQ(KnowledgeBaseToString(*recovered), reference);
}

}  // namespace
}  // namespace tara
