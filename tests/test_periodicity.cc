#include <gtest/gtest.h>

#include "core/periodicity.h"

namespace tara {
namespace {

Trajectory FromPattern(const std::string& pattern) {
  Trajectory t;
  for (size_t i = 0; i < pattern.size(); ++i) {
    TrajectoryPoint p;
    p.window = static_cast<WindowId>(i);
    p.present = pattern[i] == '1';
    p.support = p.present ? 0.1 : 0.0;
    p.confidence = p.present ? 0.5 : 0.0;
    t.push_back(p);
  }
  return t;
}

TEST(PeriodicityTest, DetectsPerfectPeriodTwo) {
  const PeriodicityResult r = DetectPeriodicity(FromPattern("10101010"), 4);
  EXPECT_EQ(r.period, 2u);
  EXPECT_EQ(r.phase, 0u);
  EXPECT_DOUBLE_EQ(r.strength, 1.0);
}

TEST(PeriodicityTest, DetectsPhaseOffset) {
  const PeriodicityResult r = DetectPeriodicity(FromPattern("01010101"), 4);
  EXPECT_EQ(r.period, 2u);
  EXPECT_EQ(r.phase, 1u);
  EXPECT_DOUBLE_EQ(r.strength, 1.0);
}

TEST(PeriodicityTest, DetectsWeekendLikePeriodThree) {
  // Present every third window — "every weekend" over day windows scaled.
  const PeriodicityResult r =
      DetectPeriodicity(FromPattern("100100100100"), 6);
  EXPECT_EQ(r.period, 3u);
  EXPECT_EQ(r.phase, 0u);
  EXPECT_DOUBLE_EQ(r.strength, 1.0);
}

TEST(PeriodicityTest, AlwaysPresentIsNotPeriodic) {
  const PeriodicityResult r = DetectPeriodicity(FromPattern("11111111"), 4);
  EXPECT_EQ(r.period, 0u);
  EXPECT_DOUBLE_EQ(r.strength, 0.0);
}

TEST(PeriodicityTest, NeverPresentIsNotPeriodic) {
  const PeriodicityResult r = DetectPeriodicity(FromPattern("00000000"), 4);
  EXPECT_EQ(r.period, 0u);
}

TEST(PeriodicityTest, TooShortTrajectoriesYieldNothing) {
  EXPECT_EQ(DetectPeriodicity(FromPattern("101"), 4).period, 0u);
  EXPECT_EQ(DetectPeriodicity({}, 4).period, 0u);
}

TEST(PeriodicityTest, NoisyPatternScoresBelowPerfect) {
  const PeriodicityResult perfect =
      DetectPeriodicity(FromPattern("101010101010"), 4);
  const PeriodicityResult noisy =
      DetectPeriodicity(FromPattern("101010111010"), 4);
  EXPECT_EQ(perfect.period, 2u);
  EXPECT_EQ(noisy.period, 2u);
  EXPECT_GT(perfect.strength, noisy.strength);
  EXPECT_GT(noisy.strength, 0.5);
}

TEST(PeriodicityTest, PrefersShorterPeriodOnTies) {
  // "10101010" matches period 2 and period 4 equally; period 2 must win.
  const PeriodicityResult r = DetectPeriodicity(FromPattern("10101010"), 4);
  EXPECT_EQ(r.period, 2u);
}

TEST(PeriodicityTest, SingleOccurrenceDoesNotCount) {
  // One lone presence can "align" with any period; require two on-phase
  // hits.
  const PeriodicityResult r = DetectPeriodicity(FromPattern("00001000"), 4);
  EXPECT_EQ(r.period, 0u);
}

TEST(PeriodicityTest, RespectsMaxPeriod) {
  // True period 4, but the caller caps at 3: the detector may return a
  // weaker short-period fit or nothing, never a period above the cap.
  const PeriodicityResult r =
      DetectPeriodicity(FromPattern("100010001000"), 3);
  EXPECT_LE(r.period, 3u);
}

}  // namespace
}  // namespace tara
