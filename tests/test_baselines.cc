#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "baselines/dctar.h"
#include "baselines/hmine_baseline.h"
#include "baselines/paras_baseline.h"
#include "core/tara_engine.h"
#include "datagen/quest_generator.h"

namespace tara {
namespace {

EvolvingDatabase MakeData(uint64_t seed) {
  QuestGenerator::Params params;
  params.num_transactions = 1200;
  params.num_items = 70;
  params.num_patterns = 35;
  params.avg_transaction_len = 8;
  params.seed = seed;
  const TransactionDatabase db = QuestGenerator(params).Generate();
  return EvolvingDatabase::PartitionIntoBatches(db, 3);
}

using RuleSet = std::set<std::pair<Itemset, Itemset>>;

RuleSet ToSet(const std::vector<MinedRule>& rules) {
  RuleSet set;
  for (const MinedRule& r : rules) set.emplace(r.antecedent, r.consequent);
  return set;
}

RuleSet ToSet(const std::vector<Rule>& rules) {
  RuleSet set;
  for (const Rule& r : rules) set.emplace(r.antecedent, r.consequent);
  return set;
}

TEST(DctarTest, MinedRuleCountsMatchRawScans) {
  const EvolvingDatabase data = MakeData(50);
  const DctarBaseline dctar(&data, 5);
  const ParameterSetting setting{0.03, 0.3};
  const auto rules = dctar.MineWindow(1, setting);
  ASSERT_FALSE(rules.empty());
  const WindowInfo& info = data.window(1);
  for (const MinedRule& r : rules) {
    EXPECT_EQ(r.rule_count,
              data.database().CountContaining(
                  Union(r.antecedent, r.consequent), info.begin, info.end));
    EXPECT_GE(r.SupportOver(info.size()) + 1e-12, setting.min_support);
    EXPECT_GE(r.Confidence() + 1e-12, setting.min_confidence);
  }
}

TEST(HMineBaselineTest, OnlineMiningMatchesDctar) {
  const EvolvingDatabase data = MakeData(51);
  const DctarBaseline dctar(&data, 5);
  HMineBaseline hmine(0.01, 5);
  hmine.Build(data);

  for (WindowId w = 0; w < data.window_count(); ++w) {
    for (double supp : {0.02, 0.05}) {
      for (double conf : {0.2, 0.5}) {
        const ParameterSetting setting{supp, conf};
        EXPECT_EQ(ToSet(hmine.MineWindow(w, setting)),
                  ToSet(dctar.MineWindow(w, setting)))
            << "w=" << w << " supp=" << supp << " conf=" << conf;
      }
    }
  }
}

TEST(HMineBaselineTest, TrajectoriesMatchDctarForArchivedItemsets) {
  const EvolvingDatabase data = MakeData(52);
  const DctarBaseline dctar(&data, 5);
  HMineBaseline hmine(0.01, 5);
  hmine.Build(data);

  const ParameterSetting setting{0.04, 0.3};
  const std::vector<WindowId> horizon = {0, 1, 2};
  const auto rules = hmine.MineWindow(2, setting);
  for (const MinedRule& mined : rules) {
    const Rule rule{mined.antecedent, mined.consequent};
    for (WindowId w : horizon) {
      const TrajectoryPoint from_hmine = hmine.EvaluateRule(rule, w);
      const TrajectoryPoint from_raw = dctar.EvaluateRule(rule, w);
      if (from_hmine.present) {
        // Counts above the pregeneration floor are exact.
        EXPECT_DOUBLE_EQ(from_hmine.support, from_raw.support);
        EXPECT_DOUBLE_EQ(from_hmine.confidence, from_raw.confidence);
      } else {
        // Itemset below floor in w: H-Mine's store cannot see it; raw
        // support must indeed be below the floor.
        EXPECT_LT(from_raw.support, 0.01 + 1e-9);
      }
    }
  }
}

TEST(HMineBaselineTest, StoreSizesAreReported) {
  const EvolvingDatabase data = MakeData(53);
  HMineBaseline hmine(0.01, 5);
  const auto stats = hmine.Build(data);
  EXPECT_GT(stats.itemset_count, 0u);
  EXPECT_EQ(stats.itemset_count, hmine.StoredItemsetCount());
  EXPECT_GT(hmine.ApproximateBytes(), 0u);
  EXPECT_EQ(hmine.window_count(), 3u);
}

TEST(ParasBaselineTest, IndexedWindowMatchesDctar) {
  const EvolvingDatabase data = MakeData(54);
  const DctarBaseline dctar(&data, 5);
  ParasBaseline paras(0.01, 0.1, 5);
  const auto stats = paras.Build(&data);
  EXPECT_GT(stats.rule_count, 0u);
  EXPECT_EQ(paras.indexed_window(), 2u);

  for (double supp : {0.02, 0.05}) {
    const ParameterSetting setting{supp, 0.3};
    EXPECT_EQ(ToSet(paras.MineWindow(2, setting)),
              ToSet(dctar.MineWindow(2, setting)));
  }
}

TEST(ParasBaselineTest, OtherWindowsFallBackToScratchButStayCorrect) {
  const EvolvingDatabase data = MakeData(55);
  const DctarBaseline dctar(&data, 5);
  ParasBaseline paras(0.01, 0.1, 5);
  paras.Build(&data);
  const ParameterSetting setting{0.03, 0.3};
  EXPECT_EQ(ToSet(paras.MineWindow(0, setting)),
            ToSet(dctar.MineWindow(0, setting)));
}

TEST(ParasBaselineTest, RegionQueryOnIndexedWindowMatchesTara) {
  const EvolvingDatabase data = MakeData(56);
  ParasBaseline paras(0.01, 0.1, 5);
  paras.Build(&data);

  TaraEngine::Options options;
  options.min_support_floor = 0.01;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 5;
  TaraEngine engine(options);
  engine.BuildAll(data);

  const ParameterSetting setting{0.04, 0.4};
  const RegionInfo from_paras = paras.RecommendRegion(setting);
  const RegionInfo from_tara = engine.RecommendRegion(2, setting).value();
  EXPECT_DOUBLE_EQ(from_paras.support_lower, from_tara.support_lower);
  EXPECT_DOUBLE_EQ(from_paras.support_upper, from_tara.support_upper);
  EXPECT_EQ(from_paras.result_size, from_tara.result_size);
}

TEST(BaselineAgreementTest, AllFourSystemsProduceTheSameRulesets) {
  const EvolvingDatabase data = MakeData(57);
  const DctarBaseline dctar(&data, 5);
  HMineBaseline hmine(0.01, 5);
  hmine.Build(data);
  ParasBaseline paras(0.01, 0.1, 5);
  paras.Build(&data);
  TaraEngine::Options options;
  options.min_support_floor = 0.01;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 5;
  TaraEngine engine(options);
  engine.BuildAll(data);

  const WindowId w = data.window_count() - 1;
  const ParameterSetting setting{0.03, 0.25};

  const RuleSet truth = ToSet(dctar.MineWindow(w, setting));
  EXPECT_EQ(ToSet(hmine.MineWindow(w, setting)), truth);
  EXPECT_EQ(ToSet(paras.MineWindow(w, setting)), truth);
  RuleSet tara_set;
  for (RuleId id : engine.MineWindow(w, setting).value()) {
    const Rule& r = engine.catalog().rule(id);
    tara_set.emplace(r.antecedent, r.consequent);
  }
  EXPECT_EQ(tara_set, truth);
}

}  // namespace
}  // namespace tara
