// Differential oracle for the generation-pinned query cache: a cache-on
// engine and a cache-off oracle receive the same randomized Q1-Q5 /
// roll-up request stream (seeded Rng, heavy request reuse so the cache
// actually serves hits), interleaved with live AppendWindow calls on
// both. Every answer must match byte-for-byte under the canonical result
// serialization — or carry the same error code — including the queries
// issued right after an append, which proves generation keying never
// serves a stale generation's answer.
//
// Also here: QueryCache unit tests (generation keying, LRU eviction
// within the byte budget, oversized-entry refusal, stats counters) and a
// TSan-targeted stress test racing Execute/ExecuteBatch against a live
// appender. Run under both sanitizer presets (tools/run_asan.sh,
// tools/run_tsan.sh).

#include <atomic>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/query_cache.h"
#include "core/query_request.h"
#include "core/tara_engine.h"
#include "datagen/basket_generators.h"
#include "txdb/evolving_database.h"

namespace tara {
namespace {

constexpr uint32_t kBaseWindows = 3;
constexpr uint32_t kLiveWindows = 3;
constexpr uint32_t kTxPerWindow = 800;
constexpr double kSupportFloor = 0.005;
constexpr double kConfidenceFloor = 0.1;

EvolvingDatabase MakeData() {
  BasketGenerator::Params params = BasketGenerator::RetailPreset();
  params.num_transactions = kTxPerWindow;
  params.num_items = 150;
  const BasketGenerator gen(params);
  EvolvingDatabase data;
  for (uint32_t w = 0; w < kBaseWindows + kLiveWindows; ++w) {
    data.AppendBatch(gen.GenerateBatch(w, w * kTxPerWindow).transactions());
  }
  return data;
}

TaraEngine::Options MakeOptions(size_t cache_bytes) {
  TaraEngine::Options options;
  options.min_support_floor = kSupportFloor;
  options.min_confidence_floor = kConfidenceFloor;
  options.max_itemset_size = 4;
  options.build_content_index = true;
  options.query_cache_bytes = cache_bytes;
  return options;
}

void AppendWindowTo(TaraEngine* engine, const EvolvingDatabase& data,
                    uint32_t w) {
  const WindowInfo& info = data.window(w);
  engine->AppendWindow(data.database(), info.begin, info.end);
}

/// A random request of any kind. Window ids may run past the engine's
/// count and settings may dip below the floors, so the stream exercises
/// every QueryError path as well as every result alternative.
QueryRequest RandomRequest(Rng* rng, uint32_t window_count) {
  const auto setting = [&]() -> ParameterSetting {
    if (rng->NextBool(0.08)) return {kSupportFloor / 10, kConfidenceFloor};
    return {kSupportFloor + rng->NextDouble() * 0.02,
            kConfidenceFloor + rng->NextDouble() * 0.4};
  };
  const auto window = [&]() -> WindowId {
    return static_cast<WindowId>(
        rng->NextBounded(window_count + (rng->NextBool(0.08) ? 2 : 0)));
  };
  const auto windows = [&]() -> std::vector<WindowId> {
    std::vector<WindowId> ids;
    const uint64_t n = 1 + rng->NextBounded(window_count);
    for (uint64_t i = 0; i < n; ++i) ids.push_back(window());
    return ids;
  };
  const auto rule = [&]() -> RuleId {
    return static_cast<RuleId>(rng->NextBounded(4000));
  };
  const MatchMode mode =
      rng->NextBool(0.5) ? MatchMode::kSingle : MatchMode::kExact;
  switch (static_cast<QueryKind>(rng->NextBounded(kQueryKindCount))) {
    case QueryKind::kMineWindow:
      return QueryRequest::MineWindow(window(), setting());
    case QueryKind::kMineWindows:
      return QueryRequest::MineWindows(windows(), setting(), mode);
    case QueryKind::kTrajectory:
      return QueryRequest::Trajectory(window(), setting(), windows());
    case QueryKind::kCompare:
      return QueryRequest::Compare(setting(), setting(), windows(), mode);
    case QueryKind::kRegion:
      return QueryRequest::Region(window(), setting());
    case QueryKind::kMeasures:
      return QueryRequest::Measures(rule(), windows());
    case QueryKind::kContent: {
      Itemset items;
      const uint64_t n = 1 + rng->NextBounded(2);
      for (uint64_t i = 0; i < n; ++i) {
        items.push_back(static_cast<ItemId>(rng->NextBounded(150)));
      }
      return QueryRequest::Content(window(), std::move(items), setting());
    }
    case QueryKind::kContentView:
      return QueryRequest::ContentView(window(), setting());
    case QueryKind::kRollUpRule:
      return QueryRequest::RollUpRule(rule(), windows());
    case QueryKind::kRollUpMine:
      return QueryRequest::RollUpMine(windows(), setting());
  }
  return QueryRequest::MineWindow(0, setting());
}

/// Both engines must give byte-identical serialized results, or the same
/// error code. Returns true when they do (so callers can count).
::testing::AssertionResult SameAnswer(
    const QueryRequest& request,
    const Expected<QueryResult, QueryError>& oracle,
    const Expected<QueryResult, QueryError>& cached) {
  if (oracle.has_value() != cached.has_value()) {
    return ::testing::AssertionFailure()
           << QueryKindName(request.kind) << ": oracle "
           << (oracle.has_value() ? "succeeded" : "failed") << ", cached "
           << (cached.has_value() ? "succeeded" : "failed");
  }
  if (!oracle.has_value()) {
    if (oracle.error().code != cached.error().code) {
      return ::testing::AssertionFailure()
             << QueryKindName(request.kind) << ": error codes differ";
    }
    return ::testing::AssertionSuccess();
  }
  const std::string oracle_bytes =
      EncodeQueryResult(request.kind, oracle.value());
  const std::string cached_bytes =
      EncodeQueryResult(request.kind, cached.value());
  if (oracle_bytes != cached_bytes) {
    return ::testing::AssertionFailure()
           << QueryKindName(request.kind) << ": serialized results differ ("
           << oracle_bytes.size() << " vs " << cached_bytes.size()
           << " bytes)";
  }
  return ::testing::AssertionSuccess();
}

TEST(QueryCacheDifferential, CachedEqualsOracleAcrossGenerations) {
  const EvolvingDatabase data = MakeData();
  TaraEngine oracle(MakeOptions(0));
  TaraEngine cached(MakeOptions(8u << 20));
  for (uint32_t w = 0; w < kBaseWindows; ++w) {
    AppendWindowTo(&oracle, data, w);
    AppendWindowTo(&cached, data, w);
  }

  Rng rng(20260806);
  std::vector<QueryRequest> history;
  uint32_t appended = kBaseWindows;
  constexpr int kSteps = 450;
  constexpr int kStepsPerAppend = 120;
  for (int step = 0; step < kSteps; ++step) {
    if (step > 0 && step % kStepsPerAppend == 0 &&
        appended < kBaseWindows + kLiveWindows) {
      // Live append on BOTH engines: the next queries run against the
      // new generation, and the cache must never answer them from the
      // old one (its entries for older generations stay valid and
      // merely age out).
      AppendWindowTo(&oracle, data, appended);
      AppendWindowTo(&cached, data, appended);
      ++appended;
      ASSERT_EQ(oracle.generation(), cached.generation());
      // Replay everything seen so far immediately after the publication:
      // every replayed request hits the cache-on engine's warm entries
      // only if they were stored under the *new* generation — which they
      // were not — so each must recompute and still match the oracle.
      for (const QueryRequest& request : history) {
        ASSERT_TRUE(SameAnswer(request, oracle.Execute(request),
                               cached.Execute(request)));
      }
    }
    // Heavy reuse: half the stream re-issues an earlier request so the
    // cached engine serves real hits, not just first-time fills.
    const QueryRequest request =
        !history.empty() && rng.NextBool(0.5)
            ? history[rng.NextBounded(history.size())]
            : RandomRequest(&rng, appended);
    if (history.size() < 64) history.push_back(request);
    ASSERT_TRUE(SameAnswer(request, oracle.Execute(request),
                           cached.Execute(request)));
  }

  ASSERT_EQ(appended, kBaseWindows + kLiveWindows);
  ASSERT_NE(cached.query_cache(), nullptr);
  const QueryCache::Stats stats = cached.query_cache()->stats();
  // The reuse-heavy stream must have produced real hits, and the oracle
  // (cache off) must have none of the cache machinery attached.
  EXPECT_GT(stats.hits, 100u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_EQ(oracle.query_cache(), nullptr);
}

TEST(QueryCacheDifferential, BatchMatchesOracleAndDedups) {
  const EvolvingDatabase data = MakeData();
  TaraEngine oracle(MakeOptions(0));
  TaraEngine cached(MakeOptions(8u << 20));
  for (uint32_t w = 0; w < kBaseWindows; ++w) {
    AppendWindowTo(&oracle, data, w);
    AppendWindowTo(&cached, data, w);
  }

  Rng rng(424242);
  std::vector<QueryRequest> requests;
  for (int i = 0; i < 24; ++i) {
    requests.push_back(RandomRequest(&rng, kBaseWindows));
  }
  // Duplicates (executed once, answered everywhere) and an argument-order
  // variant (ids are canonicalized, so it shares the duplicate's entry).
  requests.push_back(requests[0]);
  requests.push_back(requests[5]);
  requests.push_back(QueryRequest::Trajectory(0, {0.01, 0.3}, {2, 0, 1, 1}));
  requests.push_back(QueryRequest::Trajectory(0, {0.01, 0.3}, {0, 1, 2}));

  const auto oracle_results = oracle.ExecuteBatch(requests);
  const auto cached_results = cached.ExecuteBatch(requests);
  ASSERT_EQ(oracle_results.size(), requests.size());
  ASSERT_EQ(cached_results.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(
        SameAnswer(requests[i], oracle_results[i], cached_results[i]))
        << "at batch position " << i;
  }

  // Re-running the identical batch is answered fully from cache for the
  // successful requests; rejected ones are never cached (errors are
  // cheap to recompute and must stay loud), so each unique failed
  // request re-misses exactly once per batch.
  std::unordered_set<std::string> failed_keys;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!cached_results[i].has_value()) {
      failed_keys.insert(EncodeQueryRequest(requests[i]));
    }
  }
  const QueryCache::Stats before = cached.query_cache()->stats();
  const auto replay = cached.ExecuteBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(SameAnswer(requests[i], oracle_results[i], replay[i]));
  }
  const QueryCache::Stats after = cached.query_cache()->stats();
  EXPECT_EQ(after.misses, before.misses + failed_keys.size());
  EXPECT_GT(after.hits, before.hits);
}

TEST(QueryCacheUnit, KeysIncludeGenerationAndKind) {
  QueryCache cache(1u << 20);
  cache.Put(1, QueryKind::kMineWindow, "req", "result");
  EXPECT_EQ(cache.Get(1, QueryKind::kMineWindow, "req"), "result");
  // Different generation, kind, or request bytes: all distinct keys.
  EXPECT_FALSE(cache.Get(2, QueryKind::kMineWindow, "req").has_value());
  EXPECT_FALSE(cache.Get(1, QueryKind::kRegion, "req").has_value());
  EXPECT_FALSE(cache.Get(1, QueryKind::kMineWindow, "req2").has_value());
  const QueryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.25);
}

TEST(QueryCacheUnit, EvictsLruToStayWithinBudget) {
  constexpr size_t kBudget = 8 * 1024;
  QueryCache cache(kBudget);
  const std::string value(256, 'v');
  for (uint64_t g = 0; g < 200; ++g) {
    cache.Put(g, QueryKind::kMineWindow, "req", value);
    EXPECT_LE(cache.stats().bytes, kBudget);
  }
  const QueryCache::Stats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.bytes, 0u);
  // The newest insertion is its shard's MRU entry and must survive.
  EXPECT_TRUE(cache.Get(199, QueryKind::kMineWindow, "req").has_value());
}

TEST(QueryCacheUnit, RefusesEntriesLargerThanAShard) {
  QueryCache cache(1024);  // 64 bytes per shard: nothing below fits
  cache.Put(1, QueryKind::kMineWindow, "req", std::string(512, 'v'));
  EXPECT_FALSE(cache.Get(1, QueryKind::kMineWindow, "req").has_value());
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(QueryCacheUnit, PutRefreshesInPlace) {
  QueryCache cache(1u << 20);
  cache.Put(1, QueryKind::kMineWindow, "req", "old");
  const uint64_t bytes_once = cache.stats().bytes;
  cache.Put(1, QueryKind::kMineWindow, "req", "new");
  EXPECT_EQ(cache.Get(1, QueryKind::kMineWindow, "req"), "new");
  EXPECT_EQ(cache.stats().bytes, bytes_once);
}

// TSan target: Execute and ExecuteBatch race a live appender. Window 0's
// content never changes across generations, so every answer — cached
// under any generation, or computed fresh — must equal the baseline
// taken before the race started.
TEST(QueryCacheConcurrency, ExecuteRacesWithLiveAppends) {
  const EvolvingDatabase data = MakeData();
  TaraEngine engine(MakeOptions(8u << 20));
  for (uint32_t w = 0; w < kBaseWindows; ++w) {
    AppendWindowTo(&engine, data, w);
  }

  const std::vector<QueryRequest> fixed = {
      QueryRequest::MineWindow(0, {0.01, 0.3}),
      QueryRequest::Trajectory(0, {0.01, 0.3}, {0, 1, 2}),
      QueryRequest::Region(0, {0.01, 0.3}),
      QueryRequest::RollUpMine({0, 1, 2}, {0.01, 0.3}),
  };
  std::vector<std::string> baselines;
  for (const QueryRequest& request : fixed) {
    const auto result = engine.Execute(request);
    ASSERT_TRUE(result.has_value());
    baselines.push_back(EncodeQueryResult(request.kind, result.value()));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  auto reader = [&](size_t offset) {
    size_t i = offset;
    while (!stop.load(std::memory_order_acquire)) {
      const size_t pick = i++ % (fixed.size() + 1);
      if (pick == fixed.size()) {
        const auto batch = engine.ExecuteBatch(fixed);
        for (size_t q = 0; q < fixed.size(); ++q) {
          if (!batch[q].has_value() ||
              EncodeQueryResult(fixed[q].kind, batch[q].value()) !=
                  baselines[q]) {
            failures.fetch_add(1);
          }
        }
        continue;
      }
      const auto result = engine.Execute(fixed[pick]);
      if (!result.has_value() ||
          EncodeQueryResult(fixed[pick].kind, result.value()) !=
              baselines[pick]) {
        failures.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) threads.emplace_back(reader, t);
  for (uint32_t w = kBaseWindows; w < kBaseWindows + kLiveWindows; ++w) {
    AppendWindowTo(&engine, data, w);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.generation(), kBaseWindows + kLiveWindows);
  EXPECT_GT(engine.query_cache()->stats().hits, 0u);
}

}  // namespace
}  // namespace tara
