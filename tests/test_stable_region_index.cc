#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/stable_region_index.h"
#include "mining/frequent_itemset.h"

namespace tara {
namespace {

/// Builds a catalog + entries from (antecedent item, consequent item,
/// rule_count, antecedent_count) tuples for single-item rules.
struct Fixture {
  RuleCatalog catalog;
  std::vector<WindowIndex::Entry> entries;

  RuleId AddRule(ItemId a, ItemId c, uint64_t count, uint64_t ant) {
    const RuleId id = catalog.Intern(Rule{{a}, {c}});
    entries.push_back(WindowIndex::Entry{id, count, ant});
    return id;
  }
};

std::vector<RuleId> Sorted(std::vector<RuleId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(WindowIndexTest, CollectsByDominance) {
  Fixture fx;
  // total = 100. Locations: (supp, conf).
  const RuleId r1 = fx.AddRule(1, 2, 18, 36);  // (0.18, 0.50)
  const RuleId r2 = fx.AddRule(2, 1, 18, 45);  // (0.18, 0.40)
  const RuleId r3 = fx.AddRule(1, 3, 18, 36);  // (0.18, 0.50) same location
  const RuleId r4 = fx.AddRule(3, 2, 9, 36);   // (0.09, 0.25)
  WindowIndex index;
  index.Build(fx.entries, 100, false, fx.catalog);

  std::vector<RuleId> out;
  index.CollectRules(0.10, 0.45, &out);
  EXPECT_EQ(Sorted(out), Sorted({r1, r3}));

  out.clear();
  index.CollectRules(0.10, 0.30, &out);
  EXPECT_EQ(Sorted(out), Sorted({r1, r2, r3}));

  out.clear();
  index.CollectRules(0.05, 0.0, &out);
  EXPECT_EQ(Sorted(out), Sorted({r1, r2, r3, r4}));

  out.clear();
  index.CollectRules(0.2, 0.0, &out);
  EXPECT_TRUE(out.empty());

  EXPECT_EQ(index.CountRules(0.10, 0.30), 3u);
  EXPECT_EQ(index.location_count(), 3u);
}

TEST(WindowIndexTest, BoundaryValuesAreInclusive) {
  Fixture fx;
  const RuleId r = fx.AddRule(1, 2, 18, 36);
  WindowIndex index;
  index.Build(fx.entries, 100, false, fx.catalog);
  std::vector<RuleId> out;
  // Exactly at the rule's support and confidence: rule qualifies.
  index.CollectRules(0.18, 0.50, &out);
  EXPECT_EQ(out, std::vector<RuleId>{r});
}

TEST(WindowIndexTest, LocateReturnsEnclosingStableRegion) {
  Fixture fx;
  fx.AddRule(1, 2, 18, 36);  // (0.18, 0.5)
  fx.AddRule(3, 2, 9, 36);   // (0.09, 0.25)
  WindowIndex index;
  index.Build(fx.entries, 100, false, fx.catalog);

  // Query inside (0.09, 0.18] x (0.25, 0.5].
  const RegionInfo region = index.Locate(0.12, 0.3);
  EXPECT_DOUBLE_EQ(region.support_lower, 0.09);
  EXPECT_DOUBLE_EQ(region.support_upper, 0.18);
  EXPECT_DOUBLE_EQ(region.confidence_lower, 0.25);
  EXPECT_DOUBLE_EQ(region.confidence_upper, 0.5);
  EXPECT_EQ(region.result_size, 1u);

  // Above every support value: empty result, open-topped region.
  const RegionInfo top = index.Locate(0.5, 0.3);
  EXPECT_EQ(top.result_size, 0u);
  EXPECT_DOUBLE_EQ(top.support_lower, 0.18);
  EXPECT_DOUBLE_EQ(top.support_upper, 1.0);

  // Below every boundary.
  const RegionInfo bottom = index.Locate(0.01, 0.01);
  EXPECT_DOUBLE_EQ(bottom.support_lower, 0.0);
  EXPECT_DOUBLE_EQ(bottom.support_upper, 0.09);
  EXPECT_EQ(bottom.result_size, 2u);
}

TEST(WindowIndexTest, ResultsConstantInsideRegionChangeAcrossBoundary) {
  Rng rng(42);
  Fixture fx;
  for (int i = 0; i < 60; ++i) {
    const uint64_t count = 5 + rng.NextBounded(50);
    fx.AddRule(static_cast<ItemId>(i), static_cast<ItemId>(100 + i), count,
               count + rng.NextBounded(60));
  }
  WindowIndex index;
  index.Build(fx.entries, 200, false, fx.catalog);

  for (int trial = 0; trial < 50; ++trial) {
    const double s = rng.NextDouble() * 0.3;
    const double c = rng.NextDouble();
    const RegionInfo region = index.Locate(s, c);
    // Any other setting inside the region yields identical results.
    const double s2 = region.support_lower +
                      (region.support_upper - region.support_lower) *
                          (0.5 + 0.49 * rng.NextDouble());
    const double c2 = region.confidence_lower +
                      (region.confidence_upper - region.confidence_lower) *
                          (0.5 + 0.49 * rng.NextDouble());
    std::vector<RuleId> a, b;
    index.CollectRules(s, c, &a);
    index.CollectRules(s2, c2, &b);
    EXPECT_EQ(Sorted(a), Sorted(b))
        << "s=" << s << " c=" << c << " s2=" << s2 << " c2=" << c2;
    EXPECT_EQ(a.size(), region.result_size);
  }
}

TEST(WindowIndexTest, CollectMatchesBruteForceFilter) {
  Rng rng(7);
  Fixture fx;
  const uint64_t total = 500;
  for (int i = 0; i < 200; ++i) {
    const uint64_t count = 1 + rng.NextBounded(200);
    fx.AddRule(static_cast<ItemId>(i), static_cast<ItemId>(1000 + i), count,
               count + rng.NextBounded(300));
  }
  WindowIndex index;
  index.Build(fx.entries, total, false, fx.catalog);

  for (int trial = 0; trial < 100; ++trial) {
    const double s = rng.NextDouble() * 0.5;
    const double c = rng.NextDouble();
    std::vector<RuleId> got;
    index.CollectRules(s, c, &got);

    std::vector<RuleId> want;
    const uint64_t min_count = MinCountForSupport(s, total);
    for (const auto& e : fx.entries) {
      const double conf = static_cast<double>(e.rule_count) /
                          static_cast<double>(e.antecedent_count);
      if (e.rule_count >= min_count && conf + 1e-12 >= c) {
        want.push_back(e.rule);
      }
    }
    EXPECT_EQ(Sorted(got), Sorted(want)) << "s=" << s << " c=" << c;
  }
}

TEST(WindowIndexTest, ContentQueryFiltersByItems) {
  Fixture fx;
  const RuleId r1 = fx.AddRule(1, 2, 20, 40);
  const RuleId r2 = fx.AddRule(1, 3, 20, 40);
  const RuleId r3 = fx.AddRule(4, 5, 10, 40);
  WindowIndex index;
  index.Build(fx.entries, 100, /*build_content_index=*/true, fx.catalog);

  std::vector<RuleId> out;
  index.ContentQuery({1}, 0.0, 0.0, &out);
  EXPECT_EQ(Sorted(out), Sorted({r1, r2}));

  out.clear();
  index.ContentQuery({1, 3}, 0.0, 0.0, &out);
  EXPECT_EQ(out, std::vector<RuleId>{r2});

  out.clear();
  index.ContentQuery({4}, 0.15, 0.0, &out);  // r3 support 0.10 < 0.15
  EXPECT_TRUE(out.empty());

  out.clear();
  index.ContentQuery({99}, 0.0, 0.0, &out);
  EXPECT_TRUE(out.empty());
  (void)r3;
}

TEST(WindowIndexTest, FindRuleReturnsLocation) {
  Fixture fx;
  const RuleId r = fx.AddRule(1, 2, 20, 40);
  WindowIndex index;
  index.Build(fx.entries, 100, false, fx.catalog);
  const WindowIndex::Entry* entry = index.FindRule(r);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->rule_count, 20u);
  EXPECT_EQ(index.FindRule(999), nullptr);
}

TEST(WindowIndexTest, RegionCountReflectsGrid) {
  Fixture fx;
  fx.AddRule(1, 2, 18, 36);  // unique supports {18}, confs {0.5}
  fx.AddRule(2, 3, 9, 36);   // supports {18, 9}, confs {0.5, 0.25}
  WindowIndex index;
  index.Build(fx.entries, 100, false, fx.catalog);
  // (2 support boundaries + 1) * (2 confidence boundaries + 1) = 9 cells.
  EXPECT_EQ(index.region_count(), 9u);
}

}  // namespace
}  // namespace tara
