#include <vector>

#include <gtest/gtest.h>

#include "core/tara_engine.h"
#include "core/window_set.h"

namespace tara {
namespace {

TEST(WindowSetTest, CanonicalizesToSortedUnique) {
  const WindowSet set({3, 1, 3, 0, 1}, 4);
  EXPECT_EQ(set.ids(), (std::vector<WindowId>{0, 1, 3}));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_FALSE(set.empty());
  EXPECT_EQ(set.required_window_count(), 4u);
}

TEST(WindowSetTest, DefaultIsEmpty) {
  const WindowSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.required_window_count(), 0u);
  EXPECT_EQ(set.begin(), set.end());
}

TEST(WindowSetTest, OutOfRangeIdAborts) {
  EXPECT_DEATH(WindowSet({0, 4}, 4), "window");
  EXPECT_DEATH(WindowSet({0}, 0), "window");
}

TEST(WindowSetTest, AllAndRangeAndSingle) {
  EXPECT_EQ(WindowSet::All(3).ids(), (std::vector<WindowId>{0, 1, 2}));
  EXPECT_TRUE(WindowSet::All(0).empty());
  EXPECT_EQ(WindowSet::Range(1, 3, 4).ids(), (std::vector<WindowId>{1, 2}));
  EXPECT_TRUE(WindowSet::Range(2, 2, 4).empty());
  EXPECT_EQ(WindowSet::Single(2, 4).ids(), (std::vector<WindowId>{2}));
  EXPECT_DEATH(WindowSet::Single(4, 4), "window");
}

TEST(WindowSetTest, ContainsUsesTheCanonicalIds) {
  const WindowSet set({5, 2, 2, 0}, 6);
  EXPECT_TRUE(set.contains(0));
  EXPECT_TRUE(set.contains(2));
  EXPECT_TRUE(set.contains(5));
  EXPECT_FALSE(set.contains(1));
  EXPECT_FALSE(set.contains(3));
  EXPECT_FALSE(set.contains(6));
}

TEST(WindowSetTest, EqualityIsSetEquality) {
  EXPECT_EQ(WindowSet({2, 1}, 3), WindowSet({1, 2, 2}, 3));
  EXPECT_FALSE(WindowSet({1}, 3) == WindowSet({2}, 3));
}

TEST(WindowSetTest, RangeForIterationIsAscending) {
  const WindowSet set({4, 0, 2}, 5);
  std::vector<WindowId> seen;
  for (WindowId w : set) seen.push_back(w);
  EXPECT_EQ(seen, (std::vector<WindowId>{0, 2, 4}));
}

TEST(WindowSetTest, EngineFactoriesBoundByWindowCount) {
  TaraEngine::Options options;
  options.min_support_floor = 0.01;
  options.min_confidence_floor = 0.1;
  TaraEngine engine(options);
  engine.AppendPrecomputedWindow(100, {});
  engine.AppendPrecomputedWindow(100, {});
  engine.AppendPrecomputedWindow(100, {});

  EXPECT_EQ(engine.AllWindows().ids(), (std::vector<WindowId>{0, 1, 2}));
  EXPECT_EQ(engine.MakeWindowSet({2, 0}).ids(), (std::vector<WindowId>{0, 2}));
  EXPECT_DEATH(engine.MakeWindowSet({3}), "window");
  EXPECT_EQ(engine.RecentWindows(2).ids(), (std::vector<WindowId>{1, 2}));
  EXPECT_EQ(engine.RecentWindows(99).ids(), (std::vector<WindowId>{0, 1, 2}));
}

TEST(WindowSetTest, CanonicalizedSetsAnswerLikeTheirSortedForm) {
  TaraEngine::Options options;
  options.min_support_floor = 0.01;
  options.min_confidence_floor = 0.1;
  TaraEngine engine(options);
  TaraEngine::PrecomputedRule rule;
  rule.rule = Rule{{1}, {2}};
  rule.rule_count = 40;
  rule.antecedent_count = 50;
  engine.AppendPrecomputedWindow(1000, {rule});
  engine.AppendPrecomputedWindow(1000, {rule});

  // MakeWindowSet canonicalizes an unsorted, duplicated id list, so every
  // query sees {0, 1} regardless of how the caller spelled it.
  const ParameterSetting setting{0.02, 0.5};
  const WindowSet all = engine.AllWindows();
  const WindowSet loose = engine.MakeWindowSet({1, 0, 1});
  EXPECT_EQ(loose, all);
  EXPECT_EQ(engine.MineWindows(loose, setting, MatchMode::kExact).value(),
            engine.MineWindows(all, setting, MatchMode::kExact).value());
  EXPECT_EQ(engine.TrajectoryQuery(1, setting, loose).value().rules,
            engine.TrajectoryQuery(1, setting, all).value().rules);
  const RuleId id = engine.catalog().Find(rule.rule);
  EXPECT_EQ(engine.RuleMeasures(id, loose).value().coverage,
            engine.RuleMeasures(id, all).value().coverage);
  EXPECT_EQ(engine.RollUpRule(id, loose).value().support_lo,
            engine.RollUpRule(id, all).value().support_lo);
}

}  // namespace
}  // namespace tara
