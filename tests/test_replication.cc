// Hot-standby replication tests: the follower-divergence differential
// oracle (a seeded randomized Q1-Q5/roll-up stream must be
// byte-identical between primary and replica at equal window counts,
// across interleaved live appends), stream replay racing concurrent
// replica reads (run under TSan in CI), the read-only append rejection,
// in-process reconnect with exponential backoff, and the kill -9 fault
// matrix — primary killed mid-stream and replica killed mid-replay,
// both required to resume to the last durably-acked window with no
// divergence and no torn tail propagated.

#include "server/replica.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/kb_open.h"
#include "core/kb_storage.h"
#include "core/query_request.h"
#include "core/tara_engine.h"
#include "core/wire_format.h"
#include "datagen/quest_generator.h"
#include "obs/metrics.h"
#include "server/serving_bootstrap.h"
#include "server/tara_client.h"
#include "server/tara_server.h"
#include "txdb/evolving_database.h"

// The kill -9 matrix forks children that start server/replica threads
// while the parent's own threads are live; TSan refuses to start
// threads after a multi-threaded fork, so those two tests are skipped
// under TSan (the replay-vs-readers race test still runs there; the
// fault matrix runs in the plain and ASan jobs).
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TARA_UNDER_TSAN 1
#endif
#endif
#if !defined(TARA_UNDER_TSAN) && defined(__SANITIZE_THREAD__)
#define TARA_UNDER_TSAN 1
#endif

namespace tara::server {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

constexpr uint32_t kWindows = 8;
/// Generous per-wait ceiling: sanitizer builds are slow, and every wait
/// here is condition-based (it returns the moment the state lands).
constexpr auto kWait = 60s;

EvolvingDatabase MakeData(uint32_t windows = kWindows) {
  QuestGenerator::Params params;
  params.num_transactions = 250 * windows;
  params.num_items = 60;
  params.num_patterns = 25;
  params.avg_transaction_len = 8;
  params.seed = 4242;
  const TransactionDatabase db = QuestGenerator(params).Generate();
  return EvolvingDatabase::PartitionIntoBatches(db, windows);
}

TaraEngine::Options EngineOptions() {
  TaraEngine::Options options;
  options.min_support_floor = 0.01;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 4;
  options.build_content_index = true;
  return options;
}

std::string Encode(const TaraEngine& engine) {
  return EncodeKnowledgeBase(*engine.Snapshot());
}

/// A seeded request stream over every online operation, valid for an
/// engine with `windows` windows and `rules` interned rules. The same
/// (seed, windows, rules) triple yields the same stream — the oracle
/// replays one stream against both engines.
std::vector<QueryRequest> OracleRequests(uint64_t seed, uint32_t windows,
                                         uint64_t rules, size_t count) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> support(0.01, 0.08);
  std::uniform_real_distribution<double> confidence(0.1, 0.6);
  std::vector<QueryRequest> requests;
  requests.reserve(count);
  const auto window = [&]() -> WindowId {
    return static_cast<WindowId>(rng() % windows);
  };
  const auto window_set = [&]() {
    std::vector<WindowId> ids;
    for (WindowId w = 0; w < windows; ++w) {
      if (rng() % 2 == 0) ids.push_back(w);
    }
    if (ids.empty()) ids.push_back(window());
    return ids;
  };
  const auto rule = [&]() -> RuleId {
    return rules == 0 ? 0 : static_cast<RuleId>(rng() % rules);
  };
  for (size_t i = 0; i < count; ++i) {
    const ParameterSetting setting{support(rng), confidence(rng)};
    switch (rng() % 9) {
      case 0:
        requests.push_back(QueryRequest::MineWindow(window(), setting));
        break;
      case 1:
        requests.push_back(QueryRequest::MineWindows(
            window_set(), setting,
            rng() % 2 == 0 ? MatchMode::kExact : MatchMode::kSingle));
        break;
      case 2:
        requests.push_back(
            QueryRequest::Trajectory(window(), setting, window_set()));
        break;
      case 3:
        requests.push_back(QueryRequest::Compare(
            setting, ParameterSetting{support(rng), confidence(rng)},
            window_set(), MatchMode::kExact));
        break;
      case 4:
        requests.push_back(QueryRequest::Region(window(), setting));
        break;
      case 5:
        requests.push_back(QueryRequest::Measures(rule(), window_set()));
        break;
      case 6:
        requests.push_back(QueryRequest::Content(
            window(),
            {static_cast<ItemId>(rng() % 60), static_cast<ItemId>(rng() % 60)},
            setting));
        break;
      case 7:
        requests.push_back(QueryRequest::RollUpRule(rule(), window_set()));
        break;
      default:
        requests.push_back(QueryRequest::RollUpMine(window_set(), setting));
        break;
    }
  }
  return requests;
}

/// Executes `request` and folds the outcome to comparable bytes: the
/// canonical result serialization on success, the error code name on a
/// typed rejection. Divergence in either direction is a failure.
std::string ExecuteToBytes(const TaraEngine& engine,
                           const QueryRequest& request) {
  const auto result = engine.Execute(request);
  if (!result.has_value()) {
    return std::string("error:") +
           std::string(QueryErrorCodeName(result.error().code));
  }
  return EncodeQueryResult(request.kind, *result);
}

/// In-process fixture: a primary engine + TaraServer on an ephemeral
/// port, and a ReplicaEngine subscribed to it.
class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tara_repl_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    if (replica_ != nullptr) replica_->Stop();
    if (server_ != nullptr) server_->Stop();
    fs::remove_all(dir_);
  }

  void StartPrimary(uint32_t base_windows, bool with_wal,
                    uint16_t port = 0) {
    data_ = MakeData();
    primary_ = std::make_unique<TaraEngine>(EngineOptions());
    if (with_wal) {
      const auto replay = primary_->AttachWal((dir_ / "wal").string());
      ASSERT_TRUE(replay.has_value()) << replay.error();
    }
    for (uint32_t w = 0; w < base_windows; ++w) {
      AppendPrimaryWindow(w);
    }
    ServerOptions options;
    options.port = port;
    options.metrics = &primary_metrics_;
    server_ = std::make_unique<TaraServer>(primary_.get(), options);
    const auto problem = server_->Start();
    ASSERT_FALSE(problem.has_value()) << *problem;
  }

  void AppendPrimaryWindow(uint32_t w) {
    const WindowInfo& info = data_.window(w);
    primary_->AppendWindow(data_.database(), info.begin, info.end);
  }

  void StartReplica() {
    ReplicaOptions options;
    options.primary_port = server_->port();
    options.metrics = &replica_metrics_;
    replica_ = std::make_unique<ReplicaEngine>(options);
    const auto problem = replica_->Start();
    ASSERT_FALSE(problem.has_value()) << *problem;
  }

  /// Waits until the replica holds the primary's windows (the primary
  /// must be quiesced) and asserts byte-identical knowledge bases.
  void AwaitConverged() {
    const uint32_t want = primary_->window_count();
    ASSERT_EQ(replica_->WaitForWindows(
                  want, std::chrono::duration_cast<std::chrono::milliseconds>(
                            kWait)),
              want)
        << "replica never caught up; last error: "
        << replica_->GetStatus().last_error;
    ASSERT_EQ(Encode(*replica_->engine()), Encode(*primary_))
        << "replica diverged from the primary at " << want << " windows";
  }

  fs::path dir_;
  EvolvingDatabase data_;
  obs::MetricsRegistry primary_metrics_;
  obs::MetricsRegistry replica_metrics_;
  std::unique_ptr<TaraEngine> primary_;
  std::unique_ptr<TaraServer> server_;
  std::unique_ptr<ReplicaEngine> replica_;
};

// The tentpole oracle: the same seeded request stream, executed against
// the primary and the replica at equal window counts, must fold to
// byte-identical results — before, between, and after live appends.
TEST_F(ReplicationTest, DifferentialOracleAcrossLiveAppends) {
  StartPrimary(/*base_windows=*/3, /*with_wal=*/true);
  StartReplica();
  uint64_t seed = 20260808;
  for (uint32_t next = 3; next <= data_.window_count(); ++next) {
    AwaitConverged();
    const uint32_t windows = primary_->window_count();
    const uint64_t rules = primary_->Snapshot()->rule_count();
    const auto requests = OracleRequests(seed++, windows, rules, 40);
    for (const QueryRequest& request : requests) {
      ASSERT_EQ(ExecuteToBytes(*replica_->engine(), request),
                ExecuteToBytes(*primary_, request))
          << QueryKindName(request.kind) << " diverged at " << windows
          << " windows";
    }
    if (next < data_.window_count()) AppendPrimaryWindow(next);
  }
  // No checkpoint: the replica bootstrapped from window 0, so every
  // window arrived off the stream.
  EXPECT_EQ(replica_->GetStatus().records_applied, data_.window_count());
}

// Replay racing reads: readers hammer the replica engine while the
// stream applies new windows. TSan (CI) proves the RCU hand-off; the
// final byte-compare proves the races never corrupted anything.
TEST_F(ReplicationTest, StreamReplayRacesConcurrentReplicaReads) {
  StartPrimary(/*base_windows=*/2, /*with_wal=*/false);
  StartReplica();
  AwaitConverged();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937_64 rng(1000 + t);
      const TaraEngine* engine = replica_->engine();
      while (!stop.load(std::memory_order_relaxed)) {
        // Window ids may be momentarily stale against a racing apply;
        // the engine answers from its pinned snapshot either way.
        const uint32_t windows = engine->window_count();
        const auto requests = OracleRequests(rng(), windows, 0, 4);
        for (const QueryRequest& request : requests) {
          (void)engine->Execute(request);
          reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (uint32_t w = 2; w < data_.window_count(); ++w) {
    AppendPrimaryWindow(w);
  }
  AwaitConverged();
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0u);
}

// The typed read-only contract: appends against a replica-role server
// come back as kReadOnlyReplica (wire code 105), and the replica's
// knowledge base is untouched.
TEST_F(ReplicationTest, ReadOnlyReplicaRejectsAppendsWithTypedCode) {
  StartPrimary(/*base_windows=*/2, /*with_wal=*/false);
  StartReplica();
  AwaitConverged();

  ServerOptions options;
  options.read_only = true;
  options.metrics = &replica_metrics_;
  TaraServer replica_server(replica_->engine(), options);
  ASSERT_FALSE(replica_server.Start().has_value());
  auto connected = TaraClient::Connect("127.0.0.1", replica_server.port());
  ASSERT_TRUE(connected.has_value());
  TaraClient client = std::move(connected.value());

  const uint32_t windows_before = replica_->engine()->window_count();
  const auto append = client.AppendWindow(data_.database(), 0, 50);
  ASSERT_FALSE(append.has_value());
  EXPECT_EQ(append.error().code,
            static_cast<uint32_t>(ServerWireError::kReadOnlyReplica));
  EXPECT_EQ(replica_->engine()->window_count(), windows_before);

  // Queries keep working on the same connection.
  const auto result = client.Execute(
      QueryRequest::MineWindow(0, ParameterSetting{0.02, 0.2}));
  EXPECT_TRUE(result.has_value());
  replica_server.Stop();
}

// Reconnect-and-resume without processes: stop the primary's server,
// append while the replica is cut off, restart on the same port — the
// replica must reconnect with backoff, resume from its own window
// count, and converge. The reconnect shows up in the metrics.
TEST_F(ReplicationTest, ReconnectsAndResumesAfterPrimaryServerRestart) {
  StartPrimary(/*base_windows=*/3, /*with_wal=*/true);
  const uint16_t port = server_->port();
  StartReplica();
  AwaitConverged();

  server_->Stop();
  server_.reset();
  for (uint32_t w = 3; w < 6; ++w) AppendPrimaryWindow(w);

  ServerOptions options;
  options.port = port;
  options.metrics = &primary_metrics_;
  server_ = std::make_unique<TaraServer>(primary_.get(), options);
  const auto problem = server_->Start();
  ASSERT_FALSE(problem.has_value()) << *problem;

  AwaitConverged();
  EXPECT_GE(replica_->GetStatus().reconnects, 1u);
  const std::string text = replica_metrics_.SnapshotText();
  EXPECT_NE(text.find("tara.replica.records_applied"), std::string::npos)
      << text;
  EXPECT_NE(text.find("tara.replica.reconnects"), std::string::npos) << text;
}

// A primary whose floors differ from the subscriber's engine must be
// refused at the handshake — replaying a foreign stream is divergence
// by construction.
TEST_F(ReplicationTest, HandshakeRefusesMismatchedFloors) {
  StartPrimary(/*base_windows=*/2, /*with_wal=*/false);
  // Seed a checkpoint at DIFFERENT floors for the replica to load.
  TaraEngine::Options other = EngineOptions();
  other.min_support_floor = 0.02;
  TaraEngine foreign(other);
  foreign.AppendWindow(data_.database(), 0, 100);
  const std::string ckpt = (dir_ / "foreign_ckpt").string();
  ASSERT_FALSE(AppendKnowledgeBaseDir(*foreign.Snapshot(), ckpt).has_value());

  ReplicaOptions options;
  options.primary_port = server_->port();
  options.kb_dir = ckpt;
  ReplicaEngine replica(options);
  const auto problem = replica.Start();
  ASSERT_TRUE(problem.has_value());
  EXPECT_NE(problem->find("different options"), std::string::npos)
      << *problem;
}

/// --- kill -9 fault matrix -------------------------------------------------
/// Child processes carry one role each; the parent drives the kills.
/// Exit codes: 0 = ran to completion, 2 = an un-injected step failed.

/// Primary child: WAL-backed engine + server on `port` (0 = ephemeral,
/// reported via `port_path`), appends windows [window_count, total)
/// with a pacing delay, then serves until killed. On restart the WAL
/// replay resumes the engine exactly at the durably-acked windows.
[[noreturn]] void PrimaryChild(const EvolvingDatabase& data, uint16_t port,
                               const std::string& wal_dir,
                               const std::string& port_path, int delay_us) {
  TaraEngine engine(EngineOptions());
  if (!engine.AttachWal(wal_dir).has_value()) _exit(2);
  ServerOptions options;
  options.port = port;
  TaraServer server(&engine, options);
  if (server.Start().has_value()) _exit(2);
  if (!WritePortFile(port_path + ".tmp", server.port())) _exit(2);
  if (::rename((port_path + ".tmp").c_str(), port_path.c_str()) != 0) {
    _exit(2);
  }
  for (uint32_t w = engine.window_count(); w < data.window_count(); ++w) {
    const WindowInfo& info = data.window(w);
    engine.AppendWindow(data.database(), info.begin, info.end);
    if (delay_us > 0) ::usleep(delay_us);
  }
  for (;;) ::pause();
}

uint16_t WaitForPortFile(const std::string& path) {
  const auto deadline = std::chrono::steady_clock::now() + kWait;
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(path);
    int port = 0;
    if (in >> port && port > 0) return static_cast<uint16_t>(port);
    std::this_thread::sleep_for(5ms);
  }
  return 0;
}

class ReplicationCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tara_repl_crash_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// References: the deterministic knowledge base at every window count
  /// (same data, same floors — the bytes any honest follower must hold).
  void BuildReferences(const EvolvingDatabase& data) {
    TaraEngine engine(EngineOptions());
    refs_.push_back(Encode(engine));
    for (uint32_t w = 0; w < data.window_count(); ++w) {
      const WindowInfo& info = data.window(w);
      engine.AppendWindow(data.database(), info.begin, info.end);
      refs_.push_back(Encode(engine));
    }
  }

  void KillAndReap(pid_t child) {
    ::kill(child, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
  }

  fs::path dir_;
  std::vector<std::string> refs_;
};

// kill -9 the primary mid-stream: the replica must hold only durable
// windows (never a torn tail), reconnect to the restarted primary —
// which recovered from its WAL — resume from its own position, and
// converge byte-for-byte with the full reference.
TEST_F(ReplicationCrashTest, PrimaryKilledMidStreamFollowerNeverDiverges) {
#ifdef TARA_UNDER_TSAN
  GTEST_SKIP() << "forked children start threads; unsupported under TSan";
#endif
  const EvolvingDatabase data = MakeData();
  BuildReferences(data);
  const std::string wal_dir = (dir_ / "wal").string();
  const std::string port_path = (dir_ / "port").string();

  pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    PrimaryChild(data, 0, wal_dir, port_path, /*delay_us=*/20000);
  }
  const uint16_t port = WaitForPortFile(port_path);
  ASSERT_NE(port, 0) << "primary child never reported a port";

  ReplicaOptions options;
  options.primary_port = port;
  options.backoff_initial_ms = 10;
  ReplicaEngine replica(options);
  ASSERT_FALSE(replica.Start().has_value());

  // Let a few windows stream, then kill the primary mid-append.
  replica.WaitForWindows(
      2, std::chrono::duration_cast<std::chrono::milliseconds>(kWait));
  KillAndReap(child);

  // Whatever the replica holds right now must be a durably-acked prefix
  // — never a torn or unacked window.
  {
    const uint32_t held = replica.engine()->window_count();
    ASSERT_LE(held, data.window_count());
    EXPECT_EQ(Encode(*replica.engine()), refs_[held])
        << "replica holds a state no honest primary ever acked";
  }

  // Restart the primary on the SAME port: WAL recovery resumes it at
  // the durable windows, the append loop finishes the remainder, and
  // the replica reconnects and catches up.
  fs::remove(port_path);
  child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    PrimaryChild(data, port, wal_dir, port_path, /*delay_us=*/0);
  }
  ASSERT_NE(WaitForPortFile(port_path), 0)
      << "restarted primary never came up";
  const uint32_t want = data.window_count();
  ASSERT_EQ(
      replica.WaitForWindows(
          want, std::chrono::duration_cast<std::chrono::milliseconds>(kWait)),
      want)
      << "replica never converged after the primary restart; last error: "
      << replica.GetStatus().last_error;
  EXPECT_EQ(Encode(*replica.engine()), refs_[want]);
  EXPECT_GE(replica.GetStatus().reconnects, 1u);
  replica.Stop();
  KillAndReap(child);
}

/// Replica child: subscribes to the parent's in-process primary,
/// checkpoints every applied window to `ckpt_dir` (fsync/rename
/// discipline), acks each window durably into `ack_path`, and — once it
/// holds `target` windows — writes its encoded knowledge base to
/// `out_path` and exits 0. A restarted child bootstraps from the
/// checkpoint and resumes mid-stream instead of starting over.
[[noreturn]] void ReplicaChild(uint16_t port, const std::string& ckpt_dir,
                               const std::string& ack_path,
                               const std::string& out_path, uint32_t target) {
  const int ack_fd =
      ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (ack_fd < 0) _exit(2);
  ReplicaOptions options;
  options.primary_port = port;
  options.backoff_initial_ms = 10;
  if (KnowledgeBaseDirExists(ckpt_dir)) options.kb_dir = ckpt_dir;
  ReplicaEngine replica(options);
  if (replica.Start().has_value()) _exit(2);
  uint32_t have = replica.engine()->window_count();
  while (have < target) {
    const uint32_t now = replica.WaitForWindows(
        have + 1, std::chrono::duration_cast<std::chrono::milliseconds>(kWait));
    if (now <= have) _exit(2);
    have = now;
    if (AppendKnowledgeBaseDir(*replica.engine()->Snapshot(), ckpt_dir)
            .has_value()) {
      _exit(2);
    }
    if (::write(ack_fd, "a", 1) != 1 || ::fsync(ack_fd) != 0) _exit(2);
  }
  const std::string bytes = Encode(*replica.engine());
  const std::string tmp = out_path + ".tmp";
  std::ofstream out(tmp, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  if (!out || ::rename(tmp.c_str(), out_path.c_str()) != 0) _exit(2);
  replica.Stop();
  _exit(0);
}

// kill -9 the replica mid-replay: a restarted replica must bootstrap
// from its (fsync/rename-disciplined) checkpoint, resume the stream
// from its own window count, and finish byte-identical to the
// reference. The torn kill never leaves a checkpoint the restart
// cannot continue from.
TEST_F(ReplicationCrashTest, ReplicaKilledMidReplayResumesFromCheckpoint) {
#ifdef TARA_UNDER_TSAN
  GTEST_SKIP() << "forked children start threads; unsupported under TSan";
#endif
  const EvolvingDatabase data = MakeData();
  BuildReferences(data);
  const std::string ckpt_dir = (dir_ / "ckpt").string();
  const std::string ack_path = (dir_ / "acks").string();
  const std::string out_path = (dir_ / "final_kb").string();

  TaraEngine primary(EngineOptions());
  const WindowInfo& w0 = data.window(0);
  primary.AppendWindow(data.database(), w0.begin, w0.end);
  ServerOptions server_options;
  TaraServer server(&primary, server_options);
  ASSERT_FALSE(server.Start().has_value());

  pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ReplicaChild(server.port(), ckpt_dir, ack_path, out_path,
                 data.window_count());
  }

  // Feed a few windows, wait for the child to durably ack at least two
  // applied windows, then kill it mid-replay.
  for (uint32_t w = 1; w < 4; ++w) {
    const WindowInfo& info = data.window(w);
    primary.AppendWindow(data.database(), info.begin, info.end);
  }
  const auto deadline = std::chrono::steady_clock::now() + kWait;
  uint64_t acked = 0;
  while (acked < 2 && std::chrono::steady_clock::now() < deadline) {
    std::error_code ec;
    const auto size = fs::file_size(ack_path, ec);
    acked = ec ? 0 : size;
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_GE(acked, 2u) << "replica child never acked two windows";
  KillAndReap(child);
  ASSERT_FALSE(fs::exists(out_path));

  // The torn checkpoint must still be a loadable, honest prefix.
  {
    OpenOptions open;
    open.kb_dir = ckpt_dir;
    auto recovered = OpenKnowledgeBase(open);
    ASSERT_TRUE(recovered.has_value()) << recovered.error().message;
    const uint32_t held = recovered->window_count();
    ASSERT_GE(held, 1u);
    EXPECT_EQ(Encode(*recovered), refs_[held]);
  }

  // Finish the stream and restart the child: it must resume from the
  // checkpoint (not from zero) and converge.
  for (uint32_t w = 4; w < data.window_count(); ++w) {
    const WindowInfo& info = data.window(w);
    primary.AppendWindow(data.database(), info.begin, info.end);
  }
  child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ReplicaChild(server.port(), ckpt_dir, ack_path, out_path,
                 data.window_count());
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "restarted replica child failed";
  std::ifstream in(out_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string final_bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  EXPECT_EQ(final_bytes, refs_[data.window_count()])
      << "restarted replica diverged from the reference";
  server.Stop();
}

}  // namespace
}  // namespace tara::server
