#include <gtest/gtest.h>

#include "core/serialization.h"
#include "core/tara_engine.h"
#include "datagen/quest_generator.h"
#include "txdb/evolving_database.h"

namespace tara {
namespace {

EvolvingDatabase MakeData(uint64_t seed) {
  QuestGenerator::Params params;
  params.num_transactions = 1500;
  params.num_items = 80;
  params.num_patterns = 40;
  params.avg_transaction_len = 8;
  params.seed = seed;
  const TransactionDatabase db = QuestGenerator(params).Generate();
  return EvolvingDatabase::PartitionIntoBatches(db, 3);
}

TaraEngine BuildEngine(const EvolvingDatabase& data, bool content_index) {
  TaraEngine::Options options;
  options.min_support_floor = 0.01;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 5;
  options.build_content_index = content_index;
  TaraEngine engine(options);
  engine.BuildAll(data);
  return engine;
}

TEST(SerializationTest, RoundTripPreservesEveryQueryAnswer) {
  const EvolvingDatabase data = MakeData(60);
  const TaraEngine original = BuildEngine(data, false);
  const TaraEngine loaded =
      KnowledgeBaseFromString(KnowledgeBaseToString(original)).value();

  ASSERT_EQ(loaded.window_count(), original.window_count());
  ASSERT_EQ(loaded.catalog().size(), original.catalog().size());
  ASSERT_EQ(loaded.archive().entry_count(), original.archive().entry_count());

  // Every interned rule survives verbatim (same ids, same content).
  for (RuleId id = 0; id < original.catalog().size(); ++id) {
    EXPECT_EQ(loaded.catalog().rule(id).antecedent,
              original.catalog().rule(id).antecedent);
    EXPECT_EQ(loaded.catalog().rule(id).consequent,
              original.catalog().rule(id).consequent);
  }

  // Mining, regions, and trajectories answer identically.
  const std::vector<WindowId> horizon = {0, 1, 2};
  for (double supp : {0.01, 0.02, 0.05}) {
    for (double conf : {0.1, 0.4, 0.7}) {
      const ParameterSetting setting{supp, conf};
      for (WindowId w = 0; w < original.window_count(); ++w) {
        EXPECT_EQ(loaded.MineWindow(w, setting).value(),
                  original.MineWindow(w, setting).value());
        const RegionInfo a = loaded.RecommendRegion(w, setting).value();
        const RegionInfo b = original.RecommendRegion(w, setting).value();
        EXPECT_DOUBLE_EQ(a.support_upper, b.support_upper);
        EXPECT_EQ(a.result_size, b.result_size);
      }
    }
  }
  const auto rules =
      original.MineWindow(0, ParameterSetting{0.02, 0.3}).value();
  for (RuleId id : rules) {
    const Trajectory a = BuildTrajectory(loaded.archive(), id, horizon);
    const Trajectory b = BuildTrajectory(original.archive(), id, horizon);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].present, b[i].present);
      EXPECT_DOUBLE_EQ(a[i].support, b[i].support);
      EXPECT_DOUBLE_EQ(a[i].confidence, b[i].confidence);
    }
  }
}

TEST(SerializationTest, PreservesOptionsAndContentIndex) {
  const EvolvingDatabase data = MakeData(61);
  const TaraEngine original = BuildEngine(data, true);
  const TaraEngine loaded =
      KnowledgeBaseFromString(KnowledgeBaseToString(original)).value();
  EXPECT_DOUBLE_EQ(loaded.options().min_support_floor, 0.01);
  EXPECT_DOUBLE_EQ(loaded.options().min_confidence_floor, 0.1);
  EXPECT_EQ(loaded.options().max_itemset_size, 5u);
  EXPECT_TRUE(loaded.options().build_content_index);

  // Content queries work on the reloaded base.
  const ParameterSetting setting{0.02, 0.2};
  const auto rules = loaded.MineWindow(0, setting).value();
  ASSERT_FALSE(rules.empty());
  const ItemId item = loaded.catalog().rule(rules[0]).antecedent[0];
  EXPECT_EQ(loaded.ContentQuery(0, {item}, setting).value(),
            original.ContentQuery(0, {item}, setting).value());
}

TEST(SerializationTest, LoadedEngineKeepsEvolving) {
  const EvolvingDatabase data = MakeData(62);
  const TaraEngine original = BuildEngine(data, false);
  TaraEngine loaded =
      KnowledgeBaseFromString(KnowledgeBaseToString(original)).value();

  // A new batch can be appended to the reloaded base.
  const EvolvingDatabase more = MakeData(63);
  const WindowInfo& info = more.window(0);
  const WindowId w = loaded.AppendWindow(more.database(), info.begin,
                                         info.end);
  EXPECT_EQ(w, 3u);
  EXPECT_FALSE(
      loaded.MineWindow(w, ParameterSetting{0.02, 0.2}).value().empty());
}

TEST(SerializationTest, RejectsGarbageStreamsAsValues) {
  // The loader treats its input as untrusted bytes: garbage comes back as
  // a LoadError value, never a crash.
  const auto garbage = KnowledgeBaseFromString("not a knowledge base");
  ASSERT_FALSE(garbage.has_value());
  EXPECT_EQ(garbage.error().code, LoadError::Code::kBadMagic);

  // An old-format magic is distinguished for a better operator message.
  const auto stale = KnowledgeBaseFromString("TARAKB1 leftover bytes");
  ASSERT_FALSE(stale.has_value());
  EXPECT_EQ(stale.error().code, LoadError::Code::kBadVersion);

  const TaraEngine original = BuildEngine(MakeData(64), false);
  const std::string bytes = KnowledgeBaseToString(original);

  // Truncation anywhere is reported, not CHECK-aborted.
  for (size_t keep : {size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
    const auto truncated = KnowledgeBaseFromString(bytes.substr(0, keep));
    ASSERT_FALSE(truncated.has_value()) << "kept " << keep << " bytes";
  }

  // Trailing bytes after a well-formed knowledge base are flagged too.
  const auto trailing = KnowledgeBaseFromString(bytes + "x");
  ASSERT_FALSE(trailing.has_value());
  EXPECT_EQ(trailing.error().code, LoadError::Code::kTrailingBytes);
}

TEST(SerializationTest, EmptyEngineRoundTrips) {
  TaraEngine::Options options;
  options.min_support_floor = 0.05;
  const TaraEngine empty(options);
  const TaraEngine loaded =
      KnowledgeBaseFromString(KnowledgeBaseToString(empty)).value();
  EXPECT_EQ(loaded.window_count(), 0u);
  EXPECT_EQ(loaded.catalog().size(), 0u);
}

}  // namespace
}  // namespace tara
