#include <gtest/gtest.h>

#include "core/tar_archive.h"
#include "core/trajectory.h"

namespace tara {
namespace {

Trajectory MakeTrajectory(
    std::initializer_list<std::tuple<bool, double, double>> points) {
  Trajectory t;
  WindowId w = 0;
  for (const auto& [present, support, confidence] : points) {
    TrajectoryPoint p;
    p.window = w++;
    p.present = present;
    p.support = present ? support : 0.0;
    p.confidence = present ? confidence : 0.0;
    t.push_back(p);
  }
  return t;
}

TEST(TrajectoryMeasuresTest, EmptyTrajectoryYieldsZeros) {
  const TrajectoryMeasures m = ComputeMeasures({});
  EXPECT_DOUBLE_EQ(m.coverage, 0.0);
  EXPECT_DOUBLE_EQ(m.stability, 0.0);
}

TEST(TrajectoryMeasuresTest, CoverageCountsPresence) {
  const auto t = MakeTrajectory({{true, 0.1, 0.5},
                                 {false, 0, 0},
                                 {true, 0.1, 0.5},
                                 {true, 0.1, 0.5}});
  EXPECT_DOUBLE_EQ(ComputeMeasures(t).coverage, 0.75);
}

TEST(TrajectoryMeasuresTest, PerfectlyStableRuleScoresOne) {
  const auto t = MakeTrajectory(
      {{true, 0.2, 0.6}, {true, 0.2, 0.6}, {true, 0.2, 0.6}});
  const TrajectoryMeasures m = ComputeMeasures(t);
  EXPECT_DOUBLE_EQ(m.stability, 1.0);
  EXPECT_NEAR(m.support_stddev, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.mean_support, 0.2);
  EXPECT_DOUBLE_EQ(m.mean_confidence, 0.6);
}

TEST(TrajectoryMeasuresTest, VolatileRuleScoresLow) {
  const auto stable = MakeTrajectory(
      {{true, 0.2, 0.5}, {true, 0.21, 0.5}, {true, 0.2, 0.5}});
  const auto volatile_t = MakeTrajectory(
      {{true, 0.4, 0.5}, {false, 0, 0}, {true, 0.4, 0.5}});
  EXPECT_GT(ComputeMeasures(stable).stability,
            ComputeMeasures(volatile_t).stability);
}

TEST(TrajectoryMeasuresTest, StddevMatchesHandComputation) {
  const auto t = MakeTrajectory({{true, 0.1, 0.2}, {true, 0.3, 0.4}});
  const TrajectoryMeasures m = ComputeMeasures(t);
  EXPECT_DOUBLE_EQ(m.mean_support, 0.2);
  EXPECT_NEAR(m.support_stddev, 0.1, 1e-12);
  EXPECT_NEAR(m.confidence_stddev, 0.1, 1e-12);
}

TEST(BuildTrajectoryTest, AssemblesFromArchive) {
  TarArchive archive;
  archive.RegisterWindow(0, 100, 2);
  archive.RegisterWindow(1, 200, 2);
  archive.RegisterWindow(2, 100, 2);
  archive.Add(5, 0, 10, 20);
  archive.Add(5, 2, 25, 50);

  const Trajectory t = BuildTrajectory(archive, 5, {0, 1, 2});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_TRUE(t[0].present);
  EXPECT_DOUBLE_EQ(t[0].support, 0.1);
  EXPECT_DOUBLE_EQ(t[0].confidence, 0.5);
  EXPECT_FALSE(t[1].present);
  EXPECT_TRUE(t[2].present);
  EXPECT_DOUBLE_EQ(t[2].support, 0.25);
  EXPECT_DOUBLE_EQ(t[2].confidence, 0.5);
}

TEST(BuildTrajectoryTest, SelectsRequestedWindowsOnly) {
  TarArchive archive;
  for (WindowId w = 0; w < 5; ++w) archive.RegisterWindow(w, 100, 2);
  for (WindowId w = 0; w < 5; ++w) archive.Add(1, w, 10 + w, 20);
  const Trajectory t = BuildTrajectory(archive, 1, {4, 2});
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].window, 4u);
  EXPECT_DOUBLE_EQ(t[0].support, 0.14);
  EXPECT_EQ(t[1].window, 2u);
  EXPECT_DOUBLE_EQ(t[1].support, 0.12);
}

}  // namespace
}  // namespace tara
