#include <gtest/gtest.h>

#include "common/logging.h"

namespace tara {
namespace {

TEST(CheckTest, PassingConditionsAreSilent) {
  TARA_CHECK(true);
  TARA_CHECK_EQ(1, 1);
  TARA_CHECK_NE(1, 2);
  TARA_CHECK_LT(1, 2);
  TARA_CHECK_LE(2, 2);
  TARA_CHECK_GT(3, 2);
  TARA_CHECK_GE(3, 3);
  SUCCEED();
}

TEST(CheckDeathTest, FailureAbortsWithExpression) {
  EXPECT_DEATH(TARA_CHECK(1 == 2), "1 == 2");
}

TEST(CheckDeathTest, StreamedMessageIsIncluded) {
  const int n = -5;
  EXPECT_DEATH(TARA_CHECK(n >= 0) << "bad n: " << n, "bad n: -5");
}

TEST(CheckDeathTest, ComparisonMacrosReportLocation) {
  EXPECT_DEATH(TARA_CHECK_EQ(2 + 2, 5), "TARA_CHECK failed");
  EXPECT_DEATH(TARA_CHECK_LT(9, 3), "\\(9\\) < \\(3\\)");
}

TEST(CheckTest, ConditionIsEvaluatedExactlyOnce) {
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return true;
  };
  TARA_CHECK(count());
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckTest, DcheckPassesInAllBuildModes) {
  TARA_DCHECK(true);
  SUCCEED();
}

}  // namespace
}  // namespace tara
