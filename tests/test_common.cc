#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/rng.h"
#include "common/varint.h"

namespace tara {
namespace {

TEST(VarintTest, EncodesSmallValuesInOneByte) {
  for (uint64_t v : {0ULL, 1ULL, 42ULL, 127ULL}) {
    std::vector<uint8_t> bytes;
    varint::EncodeU64(v, &bytes);
    EXPECT_EQ(bytes.size(), 1u) << v;
  }
}

TEST(VarintTest, RoundTripsUnsigned) {
  const std::vector<uint64_t> values = {
      0, 1, 127, 128, 255, 16383, 16384, 1u << 20, (1ull << 32) - 1,
      1ull << 32, 0x7fffffffffffffffULL, 0xffffffffffffffffULL};
  std::vector<uint8_t> bytes;
  for (uint64_t v : values) varint::EncodeU64(v, &bytes);
  size_t pos = 0;
  for (uint64_t v : values) {
    EXPECT_EQ(varint::DecodeU64(bytes.data(), bytes.size(), &pos), v);
  }
  EXPECT_EQ(pos, bytes.size());
}

TEST(VarintTest, RoundTripsSigned) {
  const std::vector<int64_t> values = {0, -1, 1, -63, 64, -64, 1000, -100000,
                                       INT64_MAX, INT64_MIN};
  std::vector<uint8_t> bytes;
  for (int64_t v : values) varint::EncodeS64(v, &bytes);
  size_t pos = 0;
  for (int64_t v : values) {
    EXPECT_EQ(varint::DecodeS64(bytes.data(), bytes.size(), &pos), v);
  }
}

TEST(VarintTest, ZigzagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(varint::ZigzagEncode(0), 0u);
  EXPECT_EQ(varint::ZigzagEncode(-1), 1u);
  EXPECT_EQ(varint::ZigzagEncode(1), 2u);
  EXPECT_EQ(varint::ZigzagEncode(-2), 3u);
  for (int64_t v = -1000; v <= 1000; ++v) {
    EXPECT_EQ(varint::ZigzagDecode(varint::ZigzagEncode(v)), v);
  }
}

class VarintPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintPropertyTest, RandomRoundTrip) {
  Rng rng(GetParam());
  std::vector<uint64_t> values;
  std::vector<uint8_t> bytes;
  for (int i = 0; i < 1000; ++i) {
    // Mix magnitudes so all byte lengths are exercised.
    const uint64_t v = rng.Next() >> rng.NextBounded(64);
    values.push_back(v);
    varint::EncodeU64(v, &bytes);
  }
  size_t pos = 0;
  for (uint64_t v : values) {
    ASSERT_EQ(varint::DecodeU64(bytes.data(), bytes.size(), &pos), v);
  }
  EXPECT_EQ(pos, bytes.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VarintPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 20160197));

TEST(RngTest, IsDeterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleStaysInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, PoissonMeanIsApproximatelyCorrect) {
  Rng rng(11);
  const double mean = 8.0;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextPoisson(mean);
  EXPECT_NEAR(sum / n, mean, 0.15);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng(13);
  const double mean = 100.0;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextPoisson(mean);
  EXPECT_NEAR(sum / n, mean, 1.0);
}

TEST(RngTest, ZipfStaysInRangeAndIsSkewed) {
  Rng rng(17);
  const uint64_t n = 100;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t r = rng.NextZipf(n, 1.2);
    ASSERT_LT(r, n);
    ++counts[r];
  }
  // Rank 0 must dominate rank 50 heavily under alpha=1.2.
  EXPECT_GT(counts[0], counts[50] * 10);
  // Monotone-ish head.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
}

TEST(HashTest, CombinesOrderSensitively) {
  const std::vector<uint32_t> a = {1, 2, 3};
  const std::vector<uint32_t> b = {3, 2, 1};
  EXPECT_NE(HashSpan(a), HashSpan(b));
  EXPECT_EQ(HashSpan(a), HashSpan(a));
}

}  // namespace
}  // namespace tara
