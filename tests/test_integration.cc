// End-to-end integration tests: whole pipelines crossing module
// boundaries — generator → windowing → engine → serialization →
// exploration, drill-down consistency, and TARA applied to the
// pharmacovigilance reports themselves.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "baselines/dctar.h"
#include "core/exploration.h"
#include "core/serialization.h"
#include "core/tara_engine.h"
#include "datagen/basket_generators.h"
#include "datagen/faers_generator.h"
#include "maras/evaluation.h"
#include "maras/maras_engine.h"
#include "txdb/evolving_database.h"
#include "txdb/io.h"

namespace tara {
namespace {

TEST(IntegrationTest, RetailPipelineEndToEnd) {
  // Generate drifting retail batches, build, save, reload, explore — and
  // every reloaded answer must match scratch mining of the raw data.
  BasketGenerator::Params params = BasketGenerator::RetailPreset();
  params.num_transactions = 2000;
  params.num_items = 500;
  const BasketGenerator gen(params);
  EvolvingDatabase data;
  for (uint32_t w = 0; w < 4; ++w) {
    data.AppendBatch(gen.GenerateBatch(w, w * 2000).transactions());
  }

  TaraEngine::Options options;
  options.min_support_floor = 0.004;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 4;
  TaraEngine engine(options);
  engine.BuildAll(data);

  const TaraEngine reloaded =
      KnowledgeBaseFromString(KnowledgeBaseToString(engine)).value();
  const DctarBaseline scratch(&data, 4);

  const ParameterSetting setting{0.006, 0.3};
  for (WindowId w = 0; w < 4; ++w) {
    std::set<std::pair<Itemset, Itemset>> from_index;
    for (RuleId id : reloaded.MineWindow(w, setting).value()) {
      const Rule& r = reloaded.catalog().rule(id);
      from_index.emplace(r.antecedent, r.consequent);
    }
    std::set<std::pair<Itemset, Itemset>> from_scratch;
    for (const MinedRule& r : scratch.MineWindow(w, setting)) {
      from_scratch.emplace(r.antecedent, r.consequent);
    }
    EXPECT_EQ(from_index, from_scratch) << "window " << w;
  }

  // The exploration service runs on the reloaded base.
  ExplorationService service(&reloaded);
  const auto stable =
      service.TopStable(reloaded.AllWindows(), setting, 5).value();
  EXPECT_FALSE(stable.empty());
  EXPECT_GT(stable[0].measures.coverage, 0.0);
}

TEST(IntegrationTest, DrillDownRefinesRollUp) {
  // Build at fine granularity; rolled-up measures over all fine windows
  // must agree with a single-window build of the same data whenever the
  // rule is archived in every fine window (counts are additive).
  BasketGenerator::Params params = BasketGenerator::RetailPreset();
  params.num_transactions = 6000;
  params.num_items = 300;
  params.drift_rate = 0;  // stationary so rules appear in all windows
  const TransactionDatabase batch =
      BasketGenerator(params).GenerateBatch(0, 0);
  const EvolvingDatabase fine =
      EvolvingDatabase::PartitionIntoBatches(batch, 3);
  const EvolvingDatabase coarse =
      EvolvingDatabase::PartitionIntoBatches(batch, 1);

  TaraEngine::Options options;
  options.min_support_floor = 0.005;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 4;
  TaraEngine fine_engine(options);
  fine_engine.BuildAll(fine);
  TaraEngine coarse_engine(options);
  coarse_engine.BuildAll(coarse);

  const ParameterSetting setting{0.01, 0.3};
  const auto coarse_rules = coarse_engine.MineWindow(0, setting).value();
  size_t checked = 0;
  for (RuleId coarse_id : coarse_rules) {
    const Rule& rule = coarse_engine.catalog().rule(coarse_id);
    const RuleId fine_id = fine_engine.catalog().Find(rule);
    if (fine_id == RuleCatalog::kNotFound) continue;
    // Only exact when archived in all three fine windows.
    if (fine_engine.archive().Decode(fine_id).size() != 3) continue;
    const RollUpBound bound =
        fine_engine.RollUpRule(fine_id, fine_engine.AllWindows()).value();
    const auto coarse_entry =
        coarse_engine.archive().EntryFor(coarse_id, 0);
    ASSERT_TRUE(coarse_entry.has_value());
    const double coarse_support =
        static_cast<double>(coarse_entry->rule_count) / batch.size();
    const double coarse_confidence =
        static_cast<double>(coarse_entry->rule_count) /
        coarse_entry->antecedent_count;
    EXPECT_NEAR(bound.support_lo, coarse_support, 1e-12);
    EXPECT_NEAR(bound.support_hi, coarse_support, 1e-12);
    EXPECT_NEAR(bound.confidence_lo, coarse_confidence, 1e-12);
    EXPECT_NEAR(bound.confidence_hi, coarse_confidence, 1e-12);
    ++checked;
  }
  EXPECT_GT(checked, 10u) << "too few fully-archived rules to be meaningful";
}

TEST(IntegrationTest, TaraOverFaersQuartersTracksDdiRules) {
  // The TARA engine itself runs over the pharmacovigilance reports: each
  // quarter is a window, and a planted DDI shows up as a temporal
  // drug-ADR association with full coverage.
  FaersGenerator::Params params;
  params.reports_per_quarter = 4000;
  params.num_drugs = 100;
  params.num_adrs = 50;
  params.num_ddis = 5;
  params.seed = 77;
  const FaersGenerator gen(params);
  EvolvingDatabase data;
  for (uint32_t q = 0; q < 3; ++q) {
    data.AppendBatch(gen.GenerateQuarter(q, q * 10000).transactions());
  }

  TaraEngine::Options options;
  options.min_support_floor = 0.002;
  options.min_confidence_floor = 0.2;
  options.max_itemset_size = 4;
  TaraEngine engine(options);
  engine.BuildAll(data);

  size_t tracked = 0;
  for (const PlantedDdi& ddi : gen.ground_truth()) {
    const RuleId id = engine.catalog().Find(Rule{ddi.drugs, {ddi.adr}});
    if (id == RuleCatalog::kNotFound) continue;
    const TrajectoryMeasures m =
        engine.RuleMeasures(id, engine.AllWindows()).value();
    EXPECT_GT(m.mean_confidence, 0.5)
        << "interaction ADR should follow the combo";
    if (m.coverage == 1.0) ++tracked;
  }
  EXPECT_GE(tracked, 3u) << "most DDI rules persist across quarters";
}

TEST(IntegrationTest, TextRoundTripFeedsTheEngine) {
  // Databases survive text serialization and produce identical indexes.
  BasketGenerator::Params params = BasketGenerator::RetailPreset();
  params.num_transactions = 1500;
  params.num_items = 200;
  const TransactionDatabase original =
      BasketGenerator(params).GenerateBatch(0, 0);
  const TransactionDatabase reloaded =
      DatabaseFromString(DatabaseToString(original));

  TaraEngine::Options options;
  options.min_support_floor = 0.01;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 4;
  TaraEngine a(options);
  a.AppendWindow(original, 0, original.size());
  TaraEngine b(options);
  b.AppendWindow(reloaded, 0, reloaded.size());

  const ParameterSetting setting{0.02, 0.3};
  EXPECT_EQ(a.MineWindow(0, setting).value().size(),
            b.MineWindow(0, setting).value().size());
  EXPECT_EQ(a.archive().payload_bytes(), b.archive().payload_bytes());
}

TEST(IntegrationTest, MarasAndTaraAgreeOnAssociationCounts) {
  // The MARAS tidset counts and the TARA archive record the same reality.
  FaersGenerator::Params params;
  params.reports_per_quarter = 3000;
  params.num_drugs = 80;
  params.num_adrs = 40;
  params.num_ddis = 4;
  params.seed = 13;
  const FaersGenerator gen(params);
  const TransactionDatabase reports = gen.GenerateQuarter(0, 0);

  MarasEngine::Options maras_options;
  maras_options.adr_base = gen.adr_base();
  maras_options.min_count = 8;
  maras_options.max_itemset_size = 6;
  maras_options.classify_support = false;
  const MarasEngine maras(reports, 0, reports.size(), maras_options);

  TaraEngine::Options tara_options;
  tara_options.min_support_floor = 0.002;
  tara_options.min_confidence_floor = 0.0;
  tara_options.max_itemset_size = 4;
  TaraEngine engine(tara_options);
  engine.AppendWindow(reports, 0, reports.size());

  size_t compared = 0;
  for (const MdarSignal& signal : maras.signals()) {
    if (signal.assoc.drugs.size() + signal.assoc.adrs.size() > 4) continue;
    const RuleId id =
        engine.catalog().Find(Rule{signal.assoc.drugs, signal.assoc.adrs});
    if (id == RuleCatalog::kNotFound) continue;
    const auto entry = engine.archive().EntryFor(id, 0);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->rule_count, signal.count);
    EXPECT_EQ(entry->antecedent_count,
              maras.tidset().Count(signal.assoc.drugs));
    ++compared;
  }
  EXPECT_GT(compared, 5u);
}

}  // namespace
}  // namespace tara
