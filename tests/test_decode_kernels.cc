// Differential oracle for the decode kernel layer: every SIMD variant the
// host supports must match the scalar reference byte-for-byte on valid
// streams, agree with it on the typed status of corrupt streams, and never
// crash on arbitrary bytes.

#include <cstdint>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "common/varint.h"
#include "core/decode_kernels.h"
#include "core/tar_archive.h"
#include "gtest/gtest.h"

namespace tara {
namespace {

using decode::CheckedDecode;
using decode::DecodeKernel;
using decode::DecodeStreamCheckedWith;
using decode::Status;

std::span<const DecodeKernel> Kernels() {
  return decode::SupportedDecodeKernels();
}

/// Encodes a synthetic entry sequence exactly the way TarArchive::Add
/// does: first triple absolute, then (gap, zigzag delta, zigzag delta).
std::vector<uint8_t> EncodeSeries(const std::vector<ArchiveEntry>& entries) {
  std::vector<uint8_t> bytes;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i == 0) {
      varint::EncodeU64(entries[i].window, &bytes);
      varint::EncodeU64(entries[i].rule_count, &bytes);
      varint::EncodeU64(entries[i].antecedent_count, &bytes);
    } else {
      varint::EncodeU64(entries[i].window - entries[i - 1].window, &bytes);
      varint::EncodeS64(
          static_cast<int64_t>(entries[i].rule_count) -
              static_cast<int64_t>(entries[i - 1].rule_count),
          &bytes);
      varint::EncodeS64(
          static_cast<int64_t>(entries[i].antecedent_count) -
              static_cast<int64_t>(entries[i - 1].antecedent_count),
          &bytes);
    }
  }
  return bytes;
}

/// A randomized series exercising every varint lane width: counts are
/// drawn near the 2^(7k) encoding boundaries so deltas span 1..10 byte
/// varints, including large negative swings (zigzag).
std::vector<ArchiveEntry> RandomSeries(Rng& rng, size_t max_entries) {
  const size_t n = rng.NextBounded(max_entries + 1);
  std::vector<ArchiveEntry> entries(n);
  WindowId window = static_cast<WindowId>(rng.NextBounded(4));
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) {
      // Gap pattern mix: dense appends (gap 1) and sparse jumps.
      const uint64_t kind = rng.NextBounded(4);
      const uint32_t gap =
          kind == 0 ? 1
                    : static_cast<uint32_t>(1 + rng.NextBounded(1u << 16));
      window += gap;
    }
    // Lane-width sweep: values around 2^0 .. 2^62, so consecutive deltas
    // hit every zigzag varint length.
    const int shift = static_cast<int>(rng.NextBounded(63));
    const uint64_t base = 1ULL << shift;
    const uint64_t rule_count = 1 + rng.NextBounded(base);
    entries[i].window = window;
    entries[i].rule_count = rule_count;
    entries[i].antecedent_count = rule_count + rng.NextBounded(base);
  }
  return entries;
}

TEST(DecodeKernels, HostReportsAtLeastScalar) {
  ASSERT_GE(Kernels().size(), 1u);
  EXPECT_STREQ(Kernels()[0].name, "scalar");
}

TEST(DecodeKernels, AllKernelsMatchScalarOnRandomizedStreams) {
  Rng rng(0x5eed5eedULL);
  for (int round = 0; round < 200; ++round) {
    const std::vector<ArchiveEntry> expected = RandomSeries(rng, 300);
    const std::vector<uint8_t> bytes = EncodeSeries(expected);
    for (const DecodeKernel& kernel : Kernels()) {
      DecodeArena arena;
      const CheckedDecode result = DecodeStreamCheckedWith(
          kernel, std::span<const uint8_t>(bytes), arena);
      ASSERT_EQ(result.status, Status::kOk) << kernel.name;
      ASSERT_EQ(result.entries.size(), expected.size()) << kernel.name;
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(result.entries[i].window, expected[i].window)
            << kernel.name << " entry " << i;
        EXPECT_EQ(result.entries[i].rule_count, expected[i].rule_count)
            << kernel.name << " entry " << i;
        EXPECT_EQ(result.entries[i].antecedent_count,
                  expected[i].antecedent_count)
            << kernel.name << " entry " << i;
      }
    }
  }
}

TEST(DecodeKernels, MatchesArchiveDecodeOnDenseAppends) {
  // The stable-rule shape the SIMD fast path is built for: gap 1 and tiny
  // count wobble, so nearly every varint is one byte.
  TarArchive archive;
  Rng rng(42);
  for (WindowId w = 0; w < 512; ++w) archive.RegisterWindow(w, 1000, 3);
  for (WindowId w = 0; w < 512; ++w) {
    const uint64_t rule_count = 500 + rng.NextBounded(9);
    archive.Add(9, w, rule_count, rule_count + rng.NextBounded(3));
  }
  const std::vector<ArchiveEntry> reference = archive.Decode(9);
  ASSERT_EQ(reference.size(), 512u);
  DecodeArena arena;
  const std::span<const ArchiveEntry> dispatched =
      archive.DecodeInto(9, arena);
  ASSERT_EQ(dispatched.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(dispatched[i].window, reference[i].window);
    EXPECT_EQ(dispatched[i].rule_count, reference[i].rule_count);
    EXPECT_EQ(dispatched[i].antecedent_count, reference[i].antecedent_count);
  }
}

TEST(DecodeKernels, EmptyStreamDecodesEmpty) {
  for (const DecodeKernel& kernel : Kernels()) {
    DecodeArena arena;
    const CheckedDecode result =
        DecodeStreamCheckedWith(kernel, {}, arena);
    EXPECT_EQ(result.status, Status::kOk) << kernel.name;
    EXPECT_TRUE(result.entries.empty()) << kernel.name;
  }
}

TEST(DecodeKernels, CorruptByteFuzzNeverCrashesAndKernelsAgree) {
  Rng rng(0xf022dULL);
  for (int round = 0; round < 400; ++round) {
    std::vector<uint8_t> bytes = EncodeSeries(RandomSeries(rng, 40));
    // Corruption mix: bit flips, truncation, garbage appends, and pure
    // random buffers.
    switch (rng.NextBounded(4)) {
      case 0:
        if (!bytes.empty()) {
          bytes[rng.NextBounded(bytes.size())] ^=
              static_cast<uint8_t>(1u << rng.NextBounded(8));
        }
        break;
      case 1:
        bytes.resize(rng.NextBounded(bytes.size() + 1));
        break;
      case 2:
        for (int i = 0; i < 8; ++i) {
          bytes.push_back(static_cast<uint8_t>(rng.Next()));
        }
        break;
      default:
        bytes.assign(rng.NextBounded(64), 0);
        for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng.Next());
        break;
    }

    DecodeArena scalar_arena;
    const CheckedDecode reference = DecodeStreamCheckedWith(
        decode::ScalarDecodeKernel(), std::span<const uint8_t>(bytes),
        scalar_arena);
    for (const DecodeKernel& kernel : Kernels()) {
      DecodeArena arena;
      const CheckedDecode result = DecodeStreamCheckedWith(
          kernel, std::span<const uint8_t>(bytes), arena);
      // Typed status, never a crash — and every kernel classifies the
      // corruption identically and salvages the same valid prefix.
      EXPECT_EQ(result.status, reference.status)
          << kernel.name << " round " << round;
      ASSERT_EQ(result.entries.size(), reference.entries.size())
          << kernel.name << " round " << round;
      for (size_t i = 0; i < reference.entries.size(); ++i) {
        EXPECT_EQ(result.entries[i].window, reference.entries[i].window);
        EXPECT_EQ(result.entries[i].rule_count,
                  reference.entries[i].rule_count);
        EXPECT_EQ(result.entries[i].antecedent_count,
                  reference.entries[i].antecedent_count);
      }
    }
  }
}

TEST(DecodeKernels, TruncationMidVarintIsTruncated) {
  std::vector<uint8_t> bytes;
  varint::EncodeU64(0, &bytes);
  varint::EncodeU64(1u << 20, &bytes);  // multi-byte varint
  bytes.pop_back();                     // cut its last byte
  for (const DecodeKernel& kernel : Kernels()) {
    DecodeArena arena;
    const CheckedDecode result = DecodeStreamCheckedWith(
        kernel, std::span<const uint8_t>(bytes), arena);
    EXPECT_EQ(result.status, Status::kTruncated) << kernel.name;
    EXPECT_TRUE(result.entries.empty()) << kernel.name;
  }
}

TEST(DecodeKernels, DanglingValuesIsTyped) {
  // Two complete varints, then a clean end: value count % 3 != 0.
  std::vector<uint8_t> bytes;
  varint::EncodeU64(3, &bytes);
  varint::EncodeU64(7, &bytes);
  for (const DecodeKernel& kernel : Kernels()) {
    DecodeArena arena;
    const CheckedDecode result = DecodeStreamCheckedWith(
        kernel, std::span<const uint8_t>(bytes), arena);
    EXPECT_EQ(result.status, Status::kDanglingValues) << kernel.name;
    EXPECT_TRUE(result.entries.empty()) << kernel.name;
  }
}

TEST(DecodeKernels, OverlongVarintIsTyped) {
  // Eleven continuation bytes never terminate a 64-bit varint.
  std::vector<uint8_t> bytes(11, 0x80);
  for (const DecodeKernel& kernel : Kernels()) {
    DecodeArena arena;
    const CheckedDecode result = DecodeStreamCheckedWith(
        kernel, std::span<const uint8_t>(bytes), arena);
    EXPECT_EQ(result.status, Status::kOverlong) << kernel.name;
  }
}

TEST(DecodeKernels, DispatchPrefersWidestAndHonorsForceScalar) {
  CpuFeatures none;
  EXPECT_STREQ(decode::DispatchDecodeKernel(none, false).name, "scalar");

  CpuFeatures sse;
  sse.sse41 = true;
  CpuFeatures avx;
  avx.sse41 = true;
  avx.avx2 = true;
#if defined(__x86_64__) || defined(__i386__)
  EXPECT_STREQ(decode::DispatchDecodeKernel(sse, false).name, "sse4");
  EXPECT_STREQ(decode::DispatchDecodeKernel(avx, false).name, "avx2");
#endif
  // TARA_FORCE_SCALAR pins dispatch regardless of features.
  EXPECT_STREQ(decode::DispatchDecodeKernel(sse, true).name, "scalar");
  EXPECT_STREQ(decode::DispatchDecodeKernel(avx, true).name, "scalar");
}

TEST(DecodeKernels, ActiveKernelMatchesProcessDispatch) {
  const DecodeKernel& expected = decode::DispatchDecodeKernel(
      GetCpuFeatures(), ScalarDecodeForced());
  EXPECT_STREQ(decode::ActiveDecodeKernel().name, expected.name);
}

TEST(DecodeKernels, VisitEntriesEarlyExitMatchesEntryFor) {
  TarArchive archive;
  for (WindowId w = 0; w < 64; ++w) archive.RegisterWindow(w, 100, 2);
  for (WindowId w = 0; w < 64; w += 3) archive.Add(4, w, 10 + w, 20 + w);

  size_t visited = 0;
  archive.VisitEntries(4, [&](const ArchiveEntry& e) {
    ++visited;
    return e.window < 30;
  });
  // Early exit: stops at the first window >= 30, not the full 22 entries.
  EXPECT_EQ(visited, 11u);

  for (WindowId w = 0; w < 64; ++w) {
    const auto entry = archive.EntryFor(4, w);
    if (w % 3 == 0) {
      ASSERT_TRUE(entry.has_value()) << w;
      EXPECT_EQ(entry->rule_count, 10u + w);
      EXPECT_EQ(entry->antecedent_count, 20u + w);
    } else {
      EXPECT_FALSE(entry.has_value()) << w;
    }
  }
  EXPECT_FALSE(archive.EntryFor(4, 1000).has_value());
  EXPECT_FALSE(archive.EntryFor(999, 0).has_value());
}

TEST(DecodeKernels, ConcurrentDecodeIntoWithPrivateArenas) {
  // DecodeInto is const and takes the arena by reference: concurrent
  // readers with private arenas must not race (tsan coverage).
  TarArchive archive;
  for (WindowId w = 0; w < 128; ++w) archive.RegisterWindow(w, 1000, 3);
  for (RuleId r = 0; r < 16; ++r) {
    for (WindowId w = 0; w < 128; ++w) {
      archive.Add(r, w, 100 + r + (w % 7), 200 + r + (w % 11));
    }
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&archive, t] {
      DecodeArena arena;
      for (int round = 0; round < 50; ++round) {
        arena.Reset();
        const RuleId rule = static_cast<RuleId>((t + round) % 16);
        const auto entries = archive.DecodeInto(rule, arena);
        ASSERT_EQ(entries.size(), 128u);
        ASSERT_EQ(entries.front().rule_count, 100u + rule);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

TEST(DecodeArenaTest, ReusesCapacityAfterReset) {
  DecodeArena arena;
  EXPECT_EQ(arena.heap_block_count(), 0u);
  (void)arena.AllocSpan<uint64_t>(100);  // fits inline
  EXPECT_EQ(arena.heap_block_count(), 0u);
  (void)arena.AllocSpan<uint64_t>(10000);  // overflows to the heap
  (void)arena.AllocSpan<uint64_t>(10000);  // second block
  EXPECT_GE(arena.heap_block_count(), 1u);
  const size_t high_water = arena.high_water_bytes();
  arena.Reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  // Steady state: one consolidated block, no further allocation churn.
  EXPECT_EQ(arena.heap_block_count(), 1u);
  (void)arena.AllocSpan<uint64_t>(10000);
  (void)arena.AllocSpan<uint64_t>(10000);
  EXPECT_EQ(arena.heap_block_count(), 1u);
  EXPECT_EQ(arena.high_water_bytes(), high_water);
}

}  // namespace
}  // namespace tara
