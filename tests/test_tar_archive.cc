#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/tar_archive.h"

namespace tara {
namespace {

TEST(TarArchiveTest, RoundTripsSingleRule) {
  TarArchive archive;
  archive.RegisterWindow(0, 100, 2);
  archive.RegisterWindow(1, 120, 2);
  archive.RegisterWindow(2, 90, 2);
  archive.Add(7, 0, 10, 20);
  archive.Add(7, 2, 12, 25);

  const auto series = archive.Decode(7);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].window, 0u);
  EXPECT_EQ(series[0].rule_count, 10u);
  EXPECT_EQ(series[0].antecedent_count, 20u);
  EXPECT_EQ(series[1].window, 2u);
  EXPECT_EQ(series[1].rule_count, 12u);
  EXPECT_EQ(series[1].antecedent_count, 25u);

  EXPECT_TRUE(archive.EntryFor(7, 0).has_value());
  EXPECT_FALSE(archive.EntryFor(7, 1).has_value());
  EXPECT_EQ(archive.EntryFor(7, 2)->rule_count, 12u);
}

TEST(TarArchiveTest, UnknownRuleDecodesEmpty) {
  TarArchive archive;
  archive.RegisterWindow(0, 10, 1);
  EXPECT_TRUE(archive.Decode(3).empty());
  EXPECT_TRUE(archive.Decode(12345).empty());
}

TEST(TarArchiveTest, DecreasingCountsRoundTrip) {
  TarArchive archive;
  for (WindowId w = 0; w < 5; ++w) archive.RegisterWindow(w, 1000, 3);
  uint64_t counts[] = {500, 400, 450, 100, 90};
  uint64_t ants[] = {800, 700, 650, 300, 95};
  for (WindowId w = 0; w < 5; ++w) archive.Add(0, w, counts[w], ants[w]);
  const auto series = archive.Decode(0);
  ASSERT_EQ(series.size(), 5u);
  for (WindowId w = 0; w < 5; ++w) {
    EXPECT_EQ(series[w].rule_count, counts[w]);
    EXPECT_EQ(series[w].antecedent_count, ants[w]);
  }
}

TEST(TarArchiveTest, StableRulesCompressWell) {
  // A rule with identical counts across many windows should take ~3 bytes
  // per entry after the first, versus 20 raw.
  TarArchive archive;
  for (WindowId w = 0; w < 100; ++w) archive.RegisterWindow(w, 1000, 3);
  for (WindowId w = 0; w < 100; ++w) archive.Add(0, w, 50, 100);
  EXPECT_EQ(archive.entry_count(), 100u);
  EXPECT_LT(archive.payload_bytes(), 100u * 4);
  const auto series = archive.Decode(0);
  ASSERT_EQ(series.size(), 100u);
  EXPECT_EQ(series[99].rule_count, 50u);
}

TEST(TarArchiveTest, RollUpIsExactWhenAllWindowsPresent) {
  TarArchive archive;
  archive.RegisterWindow(0, 100, 2);
  archive.RegisterWindow(1, 100, 2);
  archive.Add(1, 0, 10, 20);
  archive.Add(1, 1, 30, 40);
  const RollUpBound bound = archive.RollUp(1, {0, 1});
  EXPECT_EQ(bound.missing_windows, 0u);
  EXPECT_DOUBLE_EQ(bound.support_lo, 40.0 / 200.0);
  EXPECT_DOUBLE_EQ(bound.support_hi, 40.0 / 200.0);
  EXPECT_DOUBLE_EQ(bound.confidence_lo, 40.0 / 60.0);
  EXPECT_DOUBLE_EQ(bound.confidence_hi, 40.0 / 60.0);
}

TEST(TarArchiveTest, RollUpBoundsWidenForMissingWindows) {
  TarArchive archive;
  archive.RegisterWindow(0, 100, 5);
  archive.RegisterWindow(1, 100, 5);
  archive.Add(2, 0, 10, 20);  // absent in window 1 (count must be < 5)
  const RollUpBound bound = archive.RollUp(2, {0, 1});
  EXPECT_EQ(bound.missing_windows, 1u);
  // Support: known 10 plus at most 4 undetected, over 200.
  EXPECT_DOUBLE_EQ(bound.support_lo, 10.0 / 200.0);
  EXPECT_DOUBLE_EQ(bound.support_hi, 14.0 / 200.0);
  // Confidence: worst case antecedent fills window 1 (100 tx) with no rule;
  // best case 4 more rule occurrences with antecedent only on those.
  EXPECT_DOUBLE_EQ(bound.confidence_lo, 10.0 / 120.0);
  EXPECT_DOUBLE_EQ(bound.confidence_hi, 14.0 / 24.0);
  EXPECT_LE(bound.support_lo, bound.support_hi);
  EXPECT_LE(bound.confidence_lo, bound.confidence_hi);
}

TEST(TarArchiveTest, RollUpOfRuleAbsentEverywhereIsPureSlack) {
  TarArchive archive;
  archive.RegisterWindow(0, 100, 5, 0.0);
  archive.RegisterWindow(1, 100, 5, 0.0);
  archive.Add(0, 0, 10, 20);  // some other rule exists; 9 was never added
  const RollUpBound bound = archive.RollUp(9, {0, 1});
  EXPECT_EQ(bound.missing_windows, 2u);
  // Nothing known: lower bounds collapse to zero, upper bounds are pure
  // floor slack — at most floor-1 = 4 undetected occurrences per window.
  EXPECT_DOUBLE_EQ(bound.support_lo, 0.0);
  EXPECT_DOUBLE_EQ(bound.support_hi, 8.0 / 200.0);
  EXPECT_DOUBLE_EQ(bound.confidence_lo, 0.0);
  // Best case: every undetected occurrence is also the whole antecedent.
  EXPECT_DOUBLE_EQ(bound.confidence_hi, 1.0);
}

TEST(TarArchiveTest, RollUpSlackStaysStrictlyBelowTheFloor) {
  // A rule observed at EXACTLY the floor count is archived and exact; an
  // absent window contributes at most floor-1 — so a missing window can
  // never account for a rule that actually met the floor there.
  TarArchive archive;
  archive.RegisterWindow(0, 100, 5, 0.0);
  archive.RegisterWindow(1, 100, 5, 0.0);
  archive.Add(0, 0, 5, 10);  // at the floor: present, not slack
  archive.Add(0, 1, 5, 10);
  archive.Add(1, 0, 5, 10);  // same counts, but absent from window 1
  const RollUpBound at_floor = archive.RollUp(0, {0, 1});
  EXPECT_EQ(at_floor.missing_windows, 0u);
  EXPECT_DOUBLE_EQ(at_floor.support_lo, 10.0 / 200.0);
  EXPECT_DOUBLE_EQ(at_floor.support_hi, 10.0 / 200.0);

  const RollUpBound missing_one = archive.RollUp(1, {0, 1});
  EXPECT_EQ(missing_one.missing_windows, 1u);
  EXPECT_DOUBLE_EQ(missing_one.support_hi, 9.0 / 200.0);
  EXPECT_LT(missing_one.support_hi, at_floor.support_hi);
}

TEST(TarArchiveTest, RollUpOverASingleWindowSet) {
  TarArchive archive;
  archive.RegisterWindow(0, 100, 5, 0.2);
  archive.Add(3, 0, 25, 50);
  // Present in the only window: a single-window roll-up is exact and
  // degenerates to that window's point measures.
  const RollUpBound present = archive.RollUp(3, {0});
  EXPECT_EQ(present.missing_windows, 0u);
  EXPECT_DOUBLE_EQ(present.support_lo, 0.25);
  EXPECT_DOUBLE_EQ(present.support_hi, 0.25);
  EXPECT_DOUBLE_EQ(present.confidence_lo, 0.5);
  EXPECT_DOUBLE_EQ(present.confidence_hi, 0.5);

  // Absent from the only window, with a confidence floor that dominates
  // the count floor: slack = max(5-1, 0.2 * 100) = 20.
  const RollUpBound absent = archive.RollUp(4, {0});
  EXPECT_EQ(absent.missing_windows, 1u);
  EXPECT_DOUBLE_EQ(absent.support_lo, 0.0);
  EXPECT_DOUBLE_EQ(absent.support_hi, 20.0 / 100.0);
  EXPECT_DOUBLE_EQ(absent.confidence_lo, 0.0);
  EXPECT_DOUBLE_EQ(absent.confidence_hi, 1.0);
}

TEST(TarArchiveTest, RollUpBoundsAreNeverInverted) {
  Rng rng(2026);
  TarArchive archive;
  const uint32_t windows = 8;
  for (WindowId w = 0; w < windows; ++w) {
    archive.RegisterWindow(w, 200 + rng.NextBounded(800),
                           1 + rng.NextBounded(10),
                           rng.NextDouble() * 0.3);
  }
  constexpr RuleId kRules = 50;
  for (WindowId w = 0; w < windows; ++w) {
    for (RuleId r = 0; r < kRules; ++r) {
      if (rng.NextBool(0.5)) continue;
      const uint64_t count = 1 + rng.NextBounded(100);
      archive.Add(r, w, count, count + rng.NextBounded(100));
    }
  }
  for (RuleId r = 0; r < kRules; ++r) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<WindowId> subset;
      for (WindowId w = 0; w < windows; ++w) {
        if (rng.NextBool(0.5)) subset.push_back(w);
      }
      if (subset.empty()) subset.push_back(0);
      const RollUpBound bound = archive.RollUp(r, subset);
      EXPECT_LE(bound.support_lo, bound.support_hi) << "rule " << r;
      EXPECT_LE(bound.confidence_lo, bound.confidence_hi) << "rule " << r;
      EXPECT_GE(bound.support_lo, 0.0);
      EXPECT_LE(bound.support_hi, 1.0);
      EXPECT_GE(bound.confidence_lo, 0.0);
      EXPECT_LE(bound.confidence_hi, 1.0);
      EXPECT_LE(bound.missing_windows, subset.size());
    }
  }
}

TEST(TarArchiveTest, PayloadIsSmallerThanRawEncoding) {
  Rng rng(3);
  TarArchive archive;
  const uint32_t windows = 20;
  for (WindowId w = 0; w < windows; ++w) archive.RegisterWindow(w, 5000, 5);
  for (RuleId r = 0; r < 500; ++r) {
    uint64_t count = 50 + rng.NextBounded(100);
    uint64_t ant = count + rng.NextBounded(100);
    for (WindowId w = 0; w < windows; ++w) {
      // Small random walk — the realistic evolving-rule profile.
      const int64_t dc = static_cast<int64_t>(rng.NextBounded(11)) - 5;
      count = static_cast<uint64_t>(
          std::max<int64_t>(5, static_cast<int64_t>(count) + dc));
      ant = std::max(ant, count);
      archive.Add(r, w, count, ant);
    }
  }
  // Raw record: window(4) + two counts(8+8) = 20 bytes per entry.
  const size_t raw = archive.entry_count() * 20;
  EXPECT_LT(archive.payload_bytes(), raw / 3)
      << "delta+varint should compress at least 3x on stable rules";
  EXPECT_EQ(archive.rule_count(), 500u);
}

TEST(TarArchiveTest, RandomizedRoundTripAgainstShadow) {
  Rng rng(99);
  TarArchive archive;
  const uint32_t windows = 30;
  for (WindowId w = 0; w < windows; ++w) {
    archive.RegisterWindow(w, 1000, 3);
  }
  std::vector<std::vector<ArchiveEntry>> shadow(200);
  for (WindowId w = 0; w < windows; ++w) {
    for (RuleId r = 0; r < 200; ++r) {
      if (rng.NextBool(0.4)) continue;  // rule absent this window
      const uint64_t count = 3 + rng.NextBounded(500);
      const uint64_t ant = count + rng.NextBounded(500);
      archive.Add(r, w, count, ant);
      shadow[r].push_back(ArchiveEntry{w, count, ant});
    }
  }
  for (RuleId r = 0; r < 200; ++r) {
    const auto series = archive.Decode(r);
    ASSERT_EQ(series.size(), shadow[r].size()) << "rule " << r;
    for (size_t i = 0; i < series.size(); ++i) {
      EXPECT_EQ(series[i].window, shadow[r][i].window);
      EXPECT_EQ(series[i].rule_count, shadow[r][i].rule_count);
      EXPECT_EQ(series[i].antecedent_count, shadow[r][i].antecedent_count);
    }
  }
}

}  // namespace
}  // namespace tara
