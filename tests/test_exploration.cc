#include <gtest/gtest.h>

#include "core/exploration.h"
#include "core/tara_engine.h"

namespace tara {
namespace {

/// Builds an engine from hand-crafted per-window rule profiles via
/// AppendPrecomputedWindow, giving the exploration tests full control over
/// every trajectory.
class ExplorationFixture : public ::testing::Test {
 protected:
  static constexpr uint64_t kWindowSize = 1000;

  ExplorationFixture() : engine_(MakeOptions()) {}

  static TaraEngine::Options MakeOptions() {
    TaraEngine::Options options;
    options.min_support_floor = 0.005;
    options.min_confidence_floor = 0.1;
    return options;
  }

  static Rule MakeRule(ItemId a, ItemId c) { return Rule{{a}, {c}}; }

  /// profiles[rule_index] = counts per window (0 = absent that window).
  void Build(const std::vector<std::vector<uint64_t>>& profiles) {
    const size_t windows = profiles[0].size();
    for (size_t w = 0; w < windows; ++w) {
      std::vector<TaraEngine::PrecomputedRule> rules;
      for (size_t r = 0; r < profiles.size(); ++r) {
        const uint64_t count = profiles[r][w];
        if (count == 0) continue;
        TaraEngine::PrecomputedRule p;
        p.rule = MakeRule(static_cast<ItemId>(r), 1000 + static_cast<ItemId>(r));
        p.rule_count = count;
        p.antecedent_count = count * 2;  // confidence 0.5 everywhere
        rules.push_back(p);
      }
      engine_.AppendPrecomputedWindow(kWindowSize, rules);
    }
    horizon_ = engine_.AllWindows();
  }

  RuleId IdOf(size_t rule_index) {
    return engine_.catalog().Find(MakeRule(
        static_cast<ItemId>(rule_index),
        1000 + static_cast<ItemId>(rule_index)));
  }

  TaraEngine engine_;
  WindowSet horizon_;
  ParameterSetting setting_{0.005, 0.1};
};

TEST_F(ExplorationFixture, TopStablePrefersFullSteadyCoverage) {
  Build({
      {50, 50, 50, 50, 50, 50},  // rule 0: rock stable
      {50, 80, 20, 90, 10, 60},  // rule 1: volatile but always present
      {50, 50, 0, 50, 50, 50},   // rule 2: one gap
  });
  ExplorationService service(&engine_);
  const auto top = service.TopStable(horizon_, setting_, 3).value();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].rule, IdOf(0));
  EXPECT_EQ(top[1].rule, IdOf(1));  // full coverage beats gap
  EXPECT_EQ(top[2].rule, IdOf(2));
  EXPECT_DOUBLE_EQ(top[0].measures.coverage, 1.0);
  EXPECT_GT(top[0].measures.stability, top[1].measures.stability);
}

TEST_F(ExplorationFixture, TopEmergingAndFadingAreMirrors) {
  Build({
      {0, 0, 0, 40, 80, 120},    // rule 0: emerging
      {120, 80, 40, 0, 0, 0},    // rule 1: fading
      {50, 50, 50, 50, 50, 50},  // rule 2: flat
  });
  ExplorationService service(&engine_);
  const auto emerging = service.TopEmerging(horizon_, setting_, 1).value();
  const auto fading = service.TopFading(horizon_, setting_, 1).value();
  ASSERT_EQ(emerging.size(), 1u);
  ASSERT_EQ(fading.size(), 1u);
  EXPECT_EQ(emerging[0].rule, IdOf(0));
  EXPECT_EQ(fading[0].rule, IdOf(1));
  EXPECT_GT(emerging[0].emergence, 0.0);
  EXPECT_LT(fading[0].emergence, 0.0);
}

TEST_F(ExplorationFixture, TopPeriodicFindsTheCycle) {
  Build({
      {60, 0, 60, 0, 60, 0, 60, 0},      // rule 0: period 2
      {60, 60, 60, 60, 60, 60, 60, 60},  // rule 1: constant (not periodic)
      {60, 0, 0, 60, 30, 0, 0, 60},      // rule 2: messy
  });
  ExplorationService service(&engine_);
  const auto periodic = service.TopPeriodic(horizon_, setting_, 3, 4).value();
  ASSERT_FALSE(periodic.empty());
  EXPECT_EQ(periodic[0].rule, IdOf(0));
  EXPECT_EQ(periodic[0].periodicity.period, 2u);
  EXPECT_DOUBLE_EQ(periodic[0].periodicity.strength, 1.0);
  // The constant rule must not appear in the periodic list.
  for (const RuleInsight& insight : periodic) {
    EXPECT_NE(insight.rule, IdOf(1));
  }
}

TEST_F(ExplorationFixture, ProfileCoversRulesValidAnywhere) {
  Build({
      {50, 0, 0, 0, 0, 0},  // only in window 0
      {0, 0, 0, 0, 0, 50},  // only in window 5
  });
  ExplorationService service(&engine_);
  const auto insights = service.ProfileRules(horizon_, setting_).value();
  EXPECT_EQ(insights.size(), 2u);
}

TEST_F(ExplorationFixture, SettingFiltersProfiles) {
  Build({
      {50, 50, 50, 50, 50, 50},  // support 0.05 everywhere
      {8, 8, 8, 8, 8, 8},        // support 0.008 everywhere
  });
  ExplorationService service(&engine_);
  const auto all =
      service.ProfileRules(horizon_, ParameterSetting{0.005, 0.1}).value();
  const auto strong =
      service.ProfileRules(horizon_, ParameterSetting{0.02, 0.1}).value();
  EXPECT_EQ(all.size(), 2u);
  ASSERT_EQ(strong.size(), 1u);
  EXPECT_EQ(strong[0].rule, IdOf(0));
}

}  // namespace
}  // namespace tara
