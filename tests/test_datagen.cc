#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "datagen/basket_generators.h"
#include "datagen/faers_generator.h"
#include "datagen/quest_generator.h"
#include "txdb/io.h"

namespace tara {
namespace {

TEST(QuestGeneratorTest, IsDeterministic) {
  QuestGenerator::Params params;
  params.num_transactions = 200;
  params.seed = 5;
  const TransactionDatabase a = QuestGenerator(params).Generate();
  const TransactionDatabase b = QuestGenerator(params).Generate();
  EXPECT_EQ(DatabaseToString(a), DatabaseToString(b));
}

TEST(QuestGeneratorTest, DifferentSeedsDiffer) {
  QuestGenerator::Params params;
  params.num_transactions = 200;
  params.seed = 5;
  const TransactionDatabase a = QuestGenerator(params).Generate();
  params.seed = 6;
  const TransactionDatabase b = QuestGenerator(params).Generate();
  EXPECT_NE(DatabaseToString(a), DatabaseToString(b));
}

TEST(QuestGeneratorTest, MatchesRequestedShape) {
  QuestGenerator::Params params;
  params.num_transactions = 3000;
  params.avg_transaction_len = 12;
  params.num_items = 500;
  params.seed = 11;
  const TransactionDatabase db = QuestGenerator(params).Generate();
  EXPECT_EQ(db.size(), 3000u);
  EXPECT_LT(db.item_bound(), 501u);
  // Average length lands near the target (corruption and dedup push it
  // around; allow a broad band).
  EXPECT_GT(db.average_length(), 6.0);
  EXPECT_LT(db.average_length(), 20.0);
}

TEST(QuestGeneratorTest, EmbedsFrequentPatterns) {
  // A pattern-based generator must produce correlated items: some pair must
  // co-occur far above independence.
  QuestGenerator::Params params;
  params.num_transactions = 2000;
  params.num_items = 300;
  params.num_patterns = 40;
  params.seed = 13;
  const TransactionDatabase db = QuestGenerator(params).Generate();

  // Find the two most frequent items and check their joint count.
  std::vector<uint64_t> counts(db.item_bound(), 0);
  for (const Transaction& t : db.transactions()) {
    for (ItemId i : t.items) ++counts[i];
  }
  // Find the pair with the highest co-occurrence lift among pairs that
  // occur at least 20 times.
  std::map<std::pair<ItemId, ItemId>, uint64_t> pair_counts;
  for (const Transaction& t : db.transactions()) {
    for (size_t i = 0; i < t.items.size(); ++i) {
      for (size_t j = i + 1; j < t.items.size(); ++j) {
        ++pair_counts[{t.items[i], t.items[j]}];
      }
    }
  }
  double best_lift = 0;
  for (const auto& [pair, joint] : pair_counts) {
    if (joint < 20) continue;
    const double lift = static_cast<double>(joint) * db.size() /
                        (static_cast<double>(counts[pair.first]) *
                         counts[pair.second]);
    best_lift = std::max(best_lift, lift);
  }
  EXPECT_GT(best_lift, 2.0) << "no correlated pair found";
}

TEST(QuestGeneratorTest, TimestampsAreSequentialFromOffset) {
  QuestGenerator::Params params;
  params.num_transactions = 50;
  const TransactionDatabase db = QuestGenerator(params).Generate(1000);
  EXPECT_EQ(db[0].time, 1000);
  EXPECT_EQ(db[49].time, 1049);
}

TEST(BasketGeneratorTest, BatchesAreDeterministicAndDistinct) {
  BasketGenerator gen(BasketGenerator::RetailPreset());
  const TransactionDatabase a = gen.GenerateBatch(0, 0);
  const TransactionDatabase b = gen.GenerateBatch(0, 0);
  const TransactionDatabase c = gen.GenerateBatch(1, 0);
  EXPECT_EQ(DatabaseToString(a), DatabaseToString(b));
  EXPECT_NE(DatabaseToString(a), DatabaseToString(c));
}

TEST(BasketGeneratorTest, PopularityIsSkewed) {
  BasketGenerator::Params params;
  params.num_transactions = 5000;
  params.num_items = 1000;
  params.avg_len = 8;
  params.zipf_alpha = 1.2;
  params.drift_rate = 0;
  const TransactionDatabase db =
      BasketGenerator(params).GenerateBatch(0, 0);
  std::vector<uint64_t> counts(db.item_bound(), 0);
  for (const Transaction& t : db.transactions()) {
    for (ItemId i : t.items) ++counts[i];
  }
  std::sort(counts.rbegin(), counts.rend());
  // Head dominates the tail by an order of magnitude.
  EXPECT_GT(counts[0], 10 * std::max<uint64_t>(counts[counts.size() / 2], 1));
}

TEST(BasketGeneratorTest, DriftShiftsPopularItems) {
  BasketGenerator::Params params;
  params.num_transactions = 3000;
  params.num_items = 500;
  params.drift_rate = 0.2;
  params.avg_len = 6;
  BasketGenerator gen(params);
  auto top_item = [](const TransactionDatabase& db) {
    std::vector<uint64_t> counts(db.item_bound(), 0);
    for (const Transaction& t : db.transactions()) {
      for (ItemId i : t.items) ++counts[i];
    }
    return static_cast<ItemId>(std::max_element(counts.begin(),
                                                counts.end()) -
                               counts.begin());
  };
  const ItemId top0 = top_item(gen.GenerateBatch(0, 0));
  const ItemId top3 = top_item(gen.GenerateBatch(3, 0));
  EXPECT_NE(top0, top3) << "heavy drift must move the most popular item";
}

TEST(FaersGeneratorTest, GroundTruthIsWellFormed) {
  FaersGenerator::Params params;
  params.seed = 42;
  const FaersGenerator gen(params);
  ASSERT_EQ(gen.ground_truth().size(), params.num_ddis);
  for (const PlantedDdi& ddi : gen.ground_truth()) {
    EXPECT_GE(ddi.drugs.size(), 2u);
    EXPECT_LE(ddi.drugs.size(), 3u);
    for (ItemId d : ddi.drugs) EXPECT_LT(d, params.num_drugs);
    EXPECT_TRUE(gen.IsAdr(ddi.adr));
  }
}

TEST(FaersGeneratorTest, ReportsSeparateDrugAndAdrSpaces) {
  FaersGenerator gen(FaersGenerator::Params{});
  const TransactionDatabase db = gen.GenerateQuarter(0, 0);
  EXPECT_EQ(db.size(), gen.params().reports_per_quarter);
  size_t with_drug = 0, with_adr = 0;
  for (const Transaction& t : db.transactions()) {
    bool drug = false, adr = false;
    for (ItemId item : t.items) {
      (gen.IsAdr(item) ? adr : drug) = true;
    }
    with_drug += drug;
    with_adr += adr;
  }
  EXPECT_EQ(with_drug, db.size()) << "every report names a drug";
  EXPECT_EQ(with_adr, db.size()) << "every report names an ADR";
}

TEST(FaersGeneratorTest, PlantedCombosProduceInteractionAdr) {
  FaersGenerator::Params params;
  params.reports_per_quarter = 8000;
  params.seed = 17;
  const FaersGenerator gen(params);
  const TransactionDatabase db = gen.GenerateQuarter(0, 0);
  const PlantedDdi& ddi = gen.ground_truth().front();

  size_t combo_reports = 0, combo_with_adr = 0;
  for (const Transaction& t : db.transactions()) {
    if (!IsSubsetOf(ddi.drugs, t.items)) continue;
    ++combo_reports;
    if (std::binary_search(t.items.begin(), t.items.end(), ddi.adr)) {
      ++combo_with_adr;
    }
  }
  ASSERT_GT(combo_reports, 10u) << "combo must occur often enough to mine";
  // Interaction ADR fires at ~interaction_adr_prob among combo reports.
  EXPECT_GT(static_cast<double>(combo_with_adr) / combo_reports, 0.5);
}

TEST(FaersGeneratorTest, QuartersAreIndependentButReproducible) {
  FaersGenerator gen(FaersGenerator::Params{});
  const TransactionDatabase q0 = gen.GenerateQuarter(0, 0);
  const TransactionDatabase q0_again = gen.GenerateQuarter(0, 0);
  const TransactionDatabase q1 = gen.GenerateQuarter(1, 0);
  EXPECT_EQ(DatabaseToString(q0), DatabaseToString(q0_again));
  EXPECT_NE(DatabaseToString(q0), DatabaseToString(q1));
}

}  // namespace
}  // namespace tara
