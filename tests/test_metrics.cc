// Unit tests for the observability layer: bucket geometry and percentile
// accuracy of the √2 histogram, instrument semantics, registry interning,
// and the byte-exact JSON snapshot contract that BENCH_*.json consumers
// and the CLI rely on.

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/query_span.h"

namespace tara::obs {
namespace {

constexpr double kSqrt2 = 1.41421356237309504880;

TEST(HistogramBucketTest, ZeroGetsItsOwnBucket) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
}

TEST(HistogramBucketTest, UpperBoundsRoundTripToTheirBucket) {
  // Index 2 — the upper half-octave of 2^0, i.e. [√2, 2) — contains no
  // integer, so it can never be occupied and its bound round-trips to
  // bucket 1. Index 129 is kBucketCount padding past the last reachable
  // bucket (1 + 2·63 + 1 = 128).
  for (size_t index = 0; index <= 128; ++index) {
    if (index == 2) continue;
    const uint64_t upper = Histogram::BucketUpperBound(index);
    EXPECT_EQ(Histogram::BucketIndex(upper), index) << "index=" << index;
    // The next value starts the next occupiable bucket (except at the
    // uint64 top).
    if (upper != UINT64_MAX) {
      EXPECT_EQ(Histogram::BucketIndex(upper + 1), index == 1 ? 3 : index + 1)
          << "index=" << index;
    }
  }
}

TEST(HistogramBucketTest, BucketsAreHalfOctaves) {
  // 2^e always starts the lower half of its octave; ceil(2^e·√2) starts
  // the upper half. e in [1, 40]: e=0's upper half holds no integer, and
  // past ~2^50 recomputing the boundary here would race the table's long
  // double rounding.
  for (int e = 1; e <= 40; ++e) {
    const uint64_t pow2 = uint64_t{1} << e;
    EXPECT_EQ(Histogram::BucketIndex(pow2), 1 + 2 * static_cast<size_t>(e));
    const uint64_t half = static_cast<uint64_t>(
        std::ceil(std::pow(2.0L, static_cast<long double>(e)) * kSqrt2));
    EXPECT_EQ(Histogram::BucketIndex(half), 2 + 2 * static_cast<size_t>(e))
        << "e=" << e;
    EXPECT_EQ(Histogram::BucketIndex(half - 1),
              1 + 2 * static_cast<size_t>(e))
        << "e=" << e;
  }
}

TEST(HistogramBucketTest, RelativeErrorStaysWithinSqrt2) {
  for (uint64_t value : {1ull, 2ull, 3ull, 5ull, 7ull, 100ull, 1000ull,
                         12345ull, 999999ull, 1ull << 40, (1ull << 40) + 17}) {
    const uint64_t upper =
        Histogram::BucketUpperBound(Histogram::BucketIndex(value));
    EXPECT_GE(upper, value);
    // The bucket's report overshoots the true value by at most √2 (+1 for
    // the ceil at the half-octave boundary).
    EXPECT_LE(static_cast<double>(upper),
              static_cast<double>(value) * kSqrt2 + 1.0)
        << "value=" << value;
  }
}

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, SingleSampleDominatesEveryPercentile) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Sum(), 42u);
  EXPECT_EQ(h.Min(), 42u);
  EXPECT_EQ(h.Max(), 42u);
  // Percentiles clamp the bucket bound to the observed range, so a single
  // sample reports exactly.
  EXPECT_EQ(h.Percentile(0), 42.0);
  EXPECT_EQ(h.Percentile(50), 42.0);
  EXPECT_EQ(h.Percentile(100), 42.0);
}

TEST(HistogramTest, PercentilesOfAUniformStreamAreSqrt2Accurate) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.Count(), 1000u);
  EXPECT_EQ(h.Sum(), 500500u);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 1000u);
  for (double p : {50.0, 90.0, 99.0}) {
    const double truth = p * 10;  // the p-th percentile of 1..1000
    const double reported = h.Percentile(p);
    EXPECT_GE(reported, truth * 0.999) << "p=" << p;
    EXPECT_LE(reported, truth * kSqrt2 + 1.0) << "p=" << p;
  }
}

TEST(HistogramTest, ExtremePercentilesClampToObservedRange) {
  Histogram h;
  h.Record(10);
  h.Record(1000000);
  // p0 reports 10's bucket bound (11), within √2 of the true min; p100
  // clamps the coarse top bucket to the observed max exactly.
  EXPECT_GE(h.Percentile(0), 10.0);
  EXPECT_LE(h.Percentile(0), 10.0 * kSqrt2 + 1.0);
  EXPECT_EQ(h.Percentile(100), 1000000.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(7);
  h.Record(9);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(5);
  EXPECT_EQ(c.Value(), 6u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddAndReset) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 4.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(QuerySpanTest, RecordsOnDestructionAndCancelSkips) {
  Histogram h;
  { QuerySpan span(&h); }
  EXPECT_EQ(h.Count(), 1u);
  {
    QuerySpan span(&h);
    span.Cancel();
  }
  EXPECT_EQ(h.Count(), 1u);
  // The null sink records nothing and must not crash.
  { QuerySpan span(nullptr); }
}

TEST(MetricsRegistryTest, GetInternsByName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("hits");
  Counter* b = registry.GetCounter("hits");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("misses"), a);
  EXPECT_EQ(registry.GetHistogram("lat"), registry.GetHistogram("lat"));
  EXPECT_EQ(registry.GetGauge("size"), registry.GetGauge("size"));
}

TEST(MetricsRegistryTest, EmptyRegistrySnapshots) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.SnapshotJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  EXPECT_EQ(registry.SnapshotText(), "(no metrics registered)\n");
}

// The JSON snapshot is a stable contract: keys sorted, integral doubles
// printed without a decimal point, histograms summarized as
// count/sum/min/max/p50/p90/p99. BENCH_*.json consumers parse this shape.
TEST(MetricsRegistryTest, SnapshotJsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("queries.ok")->Increment(3);
  registry.GetGauge("build.seconds")->Set(2.5);
  registry.GetHistogram("latency")->Record(4);
  EXPECT_EQ(registry.SnapshotJson(),
            "{\"counters\":{\"queries.ok\":3},"
            "\"gauges\":{\"build.seconds\":2.5},"
            "\"histograms\":{\"latency\":{\"count\":1,\"sum\":4,\"min\":4,"
            "\"max\":4,\"p50\":4,\"p90\":4,\"p99\":4}}}");
}

TEST(MetricsRegistryTest, SnapshotKeysAreSorted) {
  MetricsRegistry registry;
  registry.GetCounter("zebra")->Increment();
  registry.GetCounter("alpha")->Increment(2);
  EXPECT_EQ(registry.SnapshotJson(),
            "{\"counters\":{\"alpha\":2,\"zebra\":1},"
            "\"gauges\":{},\"histograms\":{}}");
}

TEST(MetricsRegistryTest, ResetZeroesAllInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(9);
  registry.GetGauge("g")->Set(1.25);
  registry.GetHistogram("h")->Record(100);
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("c")->Value(), 0u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("g")->Value(), 0.0);
  EXPECT_EQ(registry.GetHistogram("h")->Count(), 0u);
}

}  // namespace
}  // namespace tara::obs
