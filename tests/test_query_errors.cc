// Error-path coverage for the crash-free query API: every Q1-Q5/roll-up
// entrypoint must reject invalid input with the right QueryError code and
// an actionable message — and keep serving afterwards — instead of
// aborting the process. Also pins the metrics contract for rejections:
// they count in tara.query.rejected but record no latency sample.

#include <sstream>

#include <gtest/gtest.h>

#include "core/tara_engine.h"
#include "datagen/quest_generator.h"
#include "obs/metrics.h"
#include "txdb/evolving_database.h"

namespace tara {
namespace {

constexpr double kFloorSupport = 0.01;
constexpr double kFloorConfidence = 0.1;
const ParameterSetting kOkSetting{0.02, 0.3};

EvolvingDatabase MakeData() {
  QuestGenerator::Params params;
  params.num_transactions = 1500;
  params.num_items = 80;
  params.num_patterns = 40;
  params.avg_transaction_len = 8;
  params.seed = 31;
  const TransactionDatabase db = QuestGenerator(params).Generate();
  return EvolvingDatabase::PartitionIntoBatches(db, 3);
}

class QueryErrorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const EvolvingDatabase data = MakeData();
    TaraEngine::Options options;
    options.min_support_floor = kFloorSupport;
    options.min_confidence_floor = kFloorConfidence;
    options.max_itemset_size = 4;
    engine_ = new TaraEngine(options);
    engine_->BuildAll(data);
  }

  static TaraEngine* engine_;
};

TaraEngine* QueryErrorTest::engine_ = nullptr;

TEST_F(QueryErrorTest, MineWindowRejectsSupportBelowFloor) {
  const auto result =
      engine_->MineWindow(0, ParameterSetting{0.001, 0.3});
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, QueryError::Code::kSupportBelowFloor);
  EXPECT_NE(result.error().message.find("floor"), std::string::npos)
      << result.error().message;
}

TEST_F(QueryErrorTest, MineWindowRejectsConfidenceBelowFloor) {
  const auto result =
      engine_->MineWindow(0, ParameterSetting{0.02, 0.01});
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, QueryError::Code::kConfidenceBelowFloor);
}

TEST_F(QueryErrorTest, MineWindowRejectsBadWindow) {
  const auto result = engine_->MineWindow(99, kOkSetting);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, QueryError::Code::kBadWindow);
}

TEST_F(QueryErrorTest, FloorBoundaryIsInclusive) {
  // Exactly the floor is a valid setting; only strictly below rejects.
  EXPECT_TRUE(
      engine_
          ->MineWindow(0, ParameterSetting{kFloorSupport, kFloorConfidence})
          .has_value());
}

TEST_F(QueryErrorTest, MineWindowsRejectsEmptyWindowSet) {
  const auto result =
      engine_->MineWindows(WindowSet(), kOkSetting, MatchMode::kSingle);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, QueryError::Code::kEmptyWindowSet);
}

TEST_F(QueryErrorTest, MineWindowsRejectsForeignWindowSet) {
  // A set validated against a bigger engine must not be trusted here.
  const WindowSet foreign = WindowSet::Single(50, 100);
  const auto result =
      engine_->MineWindows(foreign, kOkSetting, MatchMode::kExact);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, QueryError::Code::kWindowSetMismatch);
}

TEST_F(QueryErrorTest, TrajectoryQueryRejectsBadAnchorAndBadHorizon) {
  const WindowSet horizon = engine_->AllWindows();
  const auto bad_anchor = engine_->TrajectoryQuery(99, kOkSetting, horizon);
  ASSERT_FALSE(bad_anchor.has_value());
  EXPECT_EQ(bad_anchor.error().code, QueryError::Code::kBadWindow);

  const auto bad_horizon =
      engine_->TrajectoryQuery(0, kOkSetting, WindowSet());
  ASSERT_FALSE(bad_horizon.has_value());
  EXPECT_EQ(bad_horizon.error().code, QueryError::Code::kEmptyWindowSet);
}

TEST_F(QueryErrorTest, CompareSettingsRejectsEitherSettingBelowFloor) {
  const WindowSet windows = engine_->AllWindows();
  const auto first_bad = engine_->CompareSettings(
      ParameterSetting{0.001, 0.3}, kOkSetting, windows, MatchMode::kExact);
  ASSERT_FALSE(first_bad.has_value());
  EXPECT_EQ(first_bad.error().code, QueryError::Code::kSupportBelowFloor);

  const auto second_bad = engine_->CompareSettings(
      kOkSetting, ParameterSetting{0.02, 0.001}, windows, MatchMode::kExact);
  ASSERT_FALSE(second_bad.has_value());
  EXPECT_EQ(second_bad.error().code,
            QueryError::Code::kConfidenceBelowFloor);
}

TEST_F(QueryErrorTest, RecommendRegionRejectsBadWindow) {
  const auto result = engine_->RecommendRegion(7, kOkSetting);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, QueryError::Code::kBadWindow);
}

TEST_F(QueryErrorTest, RuleMeasuresRejectsUnknownRule) {
  const RuleId unknown = static_cast<RuleId>(engine_->catalog().size());
  const auto result = engine_->RuleMeasures(unknown, engine_->AllWindows());
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, QueryError::Code::kUnknownRule);
}

TEST_F(QueryErrorTest, ContentQueryWithoutContentIndexIsRejected) {
  const auto result = engine_->ContentQuery(0, {1}, kOkSetting);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, QueryError::Code::kNoContentIndex);
  EXPECT_NE(result.error().message.find("build_content_index"),
            std::string::npos)
      << result.error().message;
}

TEST_F(QueryErrorTest, RollUpRejectsUnknownRuleAndEmptySet) {
  const RuleId unknown = static_cast<RuleId>(engine_->catalog().size() + 5);
  const auto bad_rule = engine_->RollUpRule(unknown, engine_->AllWindows());
  ASSERT_FALSE(bad_rule.has_value());
  EXPECT_EQ(bad_rule.error().code, QueryError::Code::kUnknownRule);

  const auto empty = engine_->MineRolledUp(WindowSet(), kOkSetting);
  ASSERT_FALSE(empty.has_value());
  EXPECT_EQ(empty.error().code, QueryError::Code::kEmptyWindowSet);
}

TEST_F(QueryErrorTest, EngineKeepsAnsweringAfterRejections) {
  (void)engine_->MineWindow(99, kOkSetting);
  (void)engine_->MineWindow(0, ParameterSetting{0.0001, 0.3});
  const auto result = engine_->MineWindow(0, kOkSetting);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->empty());
}

TEST_F(QueryErrorTest, ValueOnAnErrorAborts) {
  // .value() keeps the old CHECK contract for callers that want it.
  EXPECT_DEATH(engine_->MineWindow(99, kOkSetting).value(), "window");
}

TEST(QueryErrorMetricsTest, RejectionsCountButRecordNoLatency) {
  obs::MetricsRegistry registry;
  const EvolvingDatabase data = MakeData();
  TaraEngine::Options options;
  options.min_support_floor = kFloorSupport;
  options.min_confidence_floor = kFloorConfidence;
  options.max_itemset_size = 4;
  options.metrics = &registry;
  TaraEngine engine(options);
  engine.BuildAll(data);

  obs::Histogram* latency =
      registry.GetHistogram("tara.query.mine_window.latency_ns");
  obs::Counter* ok = registry.GetCounter("tara.query.ok");
  obs::Counter* rejected = registry.GetCounter("tara.query.rejected");

  ASSERT_TRUE(engine.MineWindow(0, kOkSetting).has_value());
  EXPECT_EQ(latency->Count(), 1u);
  EXPECT_EQ(ok->Value(), 1u);
  EXPECT_EQ(rejected->Value(), 0u);

  ASSERT_FALSE(engine.MineWindow(99, kOkSetting).has_value());
  EXPECT_EQ(latency->Count(), 1u) << "rejected query must not record latency";
  EXPECT_EQ(ok->Value(), 1u);
  EXPECT_EQ(rejected->Value(), 1u);
}

TEST(QueryErrorFormattingTest, CodeNamesAreStable) {
  EXPECT_EQ(QueryErrorCodeName(QueryError::Code::kSupportBelowFloor),
            "support_below_floor");
  EXPECT_EQ(QueryErrorCodeName(QueryError::Code::kConfidenceBelowFloor),
            "confidence_below_floor");
  EXPECT_EQ(QueryErrorCodeName(QueryError::Code::kBadWindow), "bad_window");
  EXPECT_EQ(QueryErrorCodeName(QueryError::Code::kEmptyWindowSet),
            "empty_window_set");
  EXPECT_EQ(QueryErrorCodeName(QueryError::Code::kWindowSetMismatch),
            "window_set_mismatch");
  EXPECT_EQ(QueryErrorCodeName(QueryError::Code::kUnknownRule),
            "unknown_rule");
  EXPECT_EQ(QueryErrorCodeName(QueryError::Code::kNoContentIndex),
            "no_content_index");
}

TEST(QueryErrorFormattingTest, StreamOperatorShowsCodeAndMessage) {
  std::ostringstream out;
  out << QueryError{QueryError::Code::kBadWindow, "window 9 of 3"};
  EXPECT_EQ(out.str(), "QueryError[bad_window]: window 9 of 3");
}

}  // namespace
}  // namespace tara
