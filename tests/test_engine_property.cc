// Parameterized ground-truth sweeps of the whole engine against scratch
// mining, across generator families (the Quest-based sweep lives in
// test_tara_engine.cc; this file covers the power-law retail/webdocs
// analogues and the FAERS reports, whose distributions stress different
// index shapes: long heads, long transactions, and bipartite item spaces).

#include <set>

#include <gtest/gtest.h>

#include "baselines/dctar.h"
#include "core/tara_engine.h"
#include "datagen/basket_generators.h"
#include "datagen/faers_generator.h"
#include "txdb/evolving_database.h"

namespace tara {
namespace {

struct Workload {
  std::string name;
  EvolvingDatabase data;
  double floor_support;
  uint32_t max_size;
  std::vector<double> supports;
};

Workload MakeWorkload(const std::string& name) {
  Workload w;
  w.name = name;
  if (name == "retail") {
    BasketGenerator::Params params = BasketGenerator::RetailPreset();
    params.num_transactions = 1500;
    params.num_items = 400;
    const BasketGenerator gen(params);
    for (uint32_t b = 0; b < 3; ++b) {
      w.data.AppendBatch(gen.GenerateBatch(b, b * 1500).transactions());
    }
    w.floor_support = 0.004;
    w.max_size = 4;
    w.supports = {0.004, 0.01, 0.03};
  } else if (name == "webdocs") {
    BasketGenerator::Params params = BasketGenerator::WebdocsPreset();
    params.num_transactions = 400;
    params.num_items = 3000;
    params.avg_len = 30;
    const BasketGenerator gen(params);
    for (uint32_t b = 0; b < 3; ++b) {
      w.data.AppendBatch(gen.GenerateBatch(b, b * 400).transactions());
    }
    w.floor_support = 0.05;
    w.max_size = 3;
    w.supports = {0.05, 0.1, 0.2};
  } else {  // faers
    FaersGenerator::Params params;
    params.reports_per_quarter = 1200;
    params.num_drugs = 60;
    params.num_adrs = 30;
    params.num_ddis = 4;
    params.seed = 5;
    const FaersGenerator gen(params);
    for (uint32_t q = 0; q < 3; ++q) {
      w.data.AppendBatch(gen.GenerateQuarter(q, q * 2000).transactions());
    }
    w.floor_support = 0.005;
    w.max_size = 4;
    w.supports = {0.005, 0.01, 0.02};
  }
  return w;
}

using RuleSet = std::set<std::pair<Itemset, Itemset>>;

class EnginePropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EnginePropertyTest, AllQueriesMatchScratchMiningEverywhere) {
  Workload w = MakeWorkload(GetParam());
  TaraEngine::Options options;
  options.min_support_floor = w.floor_support;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = w.max_size;
  TaraEngine engine(options);
  engine.BuildAll(w.data);
  const DctarBaseline scratch(&w.data, w.max_size);

  for (WindowId window = 0; window < w.data.window_count(); ++window) {
    for (double support : w.supports) {
      for (double confidence : {0.1, 0.4, 0.7}) {
        const ParameterSetting setting{support, confidence};
        RuleSet from_index;
        for (RuleId id : engine.MineWindow(window, setting).value()) {
          const Rule& r = engine.catalog().rule(id);
          from_index.emplace(r.antecedent, r.consequent);
        }
        RuleSet from_scratch;
        for (const MinedRule& r : scratch.MineWindow(window, setting)) {
          from_scratch.emplace(r.antecedent, r.consequent);
        }
        EXPECT_EQ(from_index, from_scratch)
            << w.name << " window=" << window << " supp=" << support
            << " conf=" << confidence;
        // Region result size is consistent with the mining result.
        EXPECT_EQ(engine.RecommendRegion(window, setting).value().result_size,
                  from_index.size());
      }
    }
  }
}

TEST_P(EnginePropertyTest, ArchivedCountsMatchRawScans) {
  Workload w = MakeWorkload(GetParam());
  TaraEngine::Options options;
  options.min_support_floor = w.floor_support;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = w.max_size;
  TaraEngine engine(options);
  engine.BuildAll(w.data);

  for (WindowId window = 0; window < w.data.window_count(); ++window) {
    const WindowInfo& info = w.data.window(window);
    for (const WindowIndex::Entry& e : engine.window_entries(window)) {
      const Rule& rule = engine.catalog().rule(e.rule);
      const Itemset whole = Union(rule.antecedent, rule.consequent);
      EXPECT_EQ(e.rule_count, w.data.database().CountContaining(
                                  whole, info.begin, info.end));
      EXPECT_EQ(e.antecedent_count,
                w.data.database().CountContaining(rule.antecedent,
                                                  info.begin, info.end));
      const auto archived = engine.archive().EntryFor(e.rule, window);
      ASSERT_TRUE(archived.has_value());
      EXPECT_EQ(archived->rule_count, e.rule_count);
      EXPECT_EQ(archived->antecedent_count, e.antecedent_count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, EnginePropertyTest,
                         ::testing::Values("retail", "webdocs", "faers"));

}  // namespace
}  // namespace tara
