// Live ingestion: the RCU snapshot layer under the engine facade.
//
// Three properties are pinned down here:
//   1. Snapshot isolation — a pinned generation never changes, no matter
//      how many windows are appended after it was pinned.
//   2. Determinism across paths — the serialized knowledge base is
//      byte-identical whether windows arrive via BuildAll (at any
//      parallelism) or one at a time through live AppendWindow calls.
//   3. Consistency under concurrency — readers hammering Q1-Q5 while a
//      writer appends windows always observe some complete generation:
//      window_count == generation (each live append publishes exactly
//      once) and every per-window answer equals a single-threaded
//      reference. Run under ThreadSanitizer (tools/run_tsan.sh) this is
//      the proof the atomic publication protocol has no data races.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/serialization.h"
#include "core/tara_engine.h"
#include "datagen/basket_generators.h"
#include "obs/metrics.h"
#include "txdb/evolving_database.h"

namespace tara {
namespace {

constexpr uint32_t kWindows = 8;
constexpr uint32_t kTransactionsPerWindow = 600;

EvolvingDatabase MakeData() {
  BasketGenerator::Params params = BasketGenerator::RetailPreset();
  params.num_transactions = kTransactionsPerWindow;
  params.num_items = 150;
  const BasketGenerator gen(params);
  EvolvingDatabase data;
  for (uint32_t w = 0; w < kWindows; ++w) {
    data.AppendBatch(
        gen.GenerateBatch(w, w * kTransactionsPerWindow).transactions());
  }
  return data;
}

TaraEngine::Options MakeOptions(obs::MetricsRegistry* registry = nullptr,
                                uint32_t parallelism = 1) {
  TaraEngine::Options options;
  options.min_support_floor = 0.005;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 4;
  options.build_content_index = true;
  options.parallelism = parallelism;
  options.metrics = registry;
  return options;
}

/// Appends window `w` of `data` to `engine` (the live-path step).
WindowId AppendOne(TaraEngine* engine, const EvolvingDatabase& data,
                   uint32_t w) {
  const WindowInfo& info = data.window(w);
  return engine->AppendWindow(data.database(), info.begin, info.end);
}

TEST(LiveIngestionTest, PinnedSnapshotIsImmuneToLaterAppends) {
  const EvolvingDatabase data = MakeData();
  TaraEngine engine(MakeOptions());
  AppendOne(&engine, data, 0);
  AppendOne(&engine, data, 1);

  const std::shared_ptr<const KnowledgeBaseSnapshot> pinned =
      engine.Snapshot();
  ASSERT_EQ(pinned->window_count(), 2u);
  ASSERT_EQ(pinned->generation(), 2u);
  const ParameterSetting setting{0.01, 0.3};
  const auto before = pinned->MineWindow(1, setting).value();
  const size_t rules_before = pinned->rule_count();
  const std::string bytes_before = KnowledgeBaseToString(*pinned);

  for (uint32_t w = 2; w < kWindows; ++w) AppendOne(&engine, data, w);

  // The pinned generation is frozen: same windows, same rules, same
  // answers, same serialized bytes — even though the engine moved on.
  EXPECT_EQ(pinned->window_count(), 2u);
  EXPECT_EQ(pinned->rule_count(), rules_before);
  EXPECT_EQ(pinned->MineWindow(1, setting).value(), before);
  EXPECT_EQ(KnowledgeBaseToString(*pinned), bytes_before);
  // A window committed after the pin is out of range *for that pin*.
  EXPECT_FALSE(pinned->MineWindow(2, setting).has_value());

  // The engine's current view does see everything.
  EXPECT_EQ(engine.window_count(), kWindows);
  EXPECT_EQ(engine.generation(), kWindows);
  EXPECT_TRUE(engine.MineWindow(kWindows - 1, setting).has_value());
}

TEST(LiveIngestionTest, LiveAppendsSerializeIdenticallyToBuildAll) {
  const EvolvingDatabase data = MakeData();

  TaraEngine bulk(MakeOptions());
  bulk.BuildAll(data);
  const std::string bulk_bytes = KnowledgeBaseToString(bulk);

  // Pure live path: one publication per window.
  TaraEngine live(MakeOptions());
  for (uint32_t w = 0; w < kWindows; ++w) AppendOne(&live, data, w);
  EXPECT_EQ(KnowledgeBaseToString(live), bulk_bytes);

  // Parallel bulk build, then the byte-identity must still hold.
  TaraEngine parallel(MakeOptions(nullptr, 3));
  parallel.BuildAll(data);
  EXPECT_EQ(KnowledgeBaseToString(parallel), bulk_bytes);

  // Mixed path: bulk prefix, live suffix.
  EvolvingDatabase prefix;
  for (uint32_t w = 0; w < kWindows / 2; ++w) {
    const WindowInfo& info = data.window(w);
    std::vector<Transaction> batch;
    for (size_t t = info.begin; t < info.end; ++t) {
      batch.push_back(data.database()[t]);
    }
    prefix.AppendBatch(std::move(batch));
  }
  TaraEngine mixed(MakeOptions(nullptr, 2));
  mixed.BuildAll(prefix);
  for (uint32_t w = kWindows / 2; w < kWindows; ++w) {
    AppendOne(&mixed, data, w);
  }
  EXPECT_EQ(KnowledgeBaseToString(mixed), bulk_bytes);
}

TEST(LiveIngestionTest, ConcurrentReadersSeeOnlyCompleteGenerations) {
  const EvolvingDatabase data = MakeData();

  // Single-threaded reference over the full history; any pinned prefix
  // generation must agree with it window for window (WindowSegments are
  // shared, never rebuilt).
  TaraEngine reference(MakeOptions());
  reference.BuildAll(data);
  const ParameterSetting setting{0.01, 0.3};
  const ParameterSetting tighter{0.02, 0.4};

  // Per-prefix baselines, indexed by window count k (1..kWindows).
  std::vector<std::vector<RuleId>> mine_base(kWindows + 1);
  std::vector<RegionInfo> region_base(kWindows + 1);
  std::vector<RollUpBound> rollup_base(kWindows + 1);
  std::vector<std::vector<RuleId>> content_base(kWindows + 1);
  const RuleId probe =
      reference.MineWindow(0, setting).value().at(0);
  const Itemset probe_items = {
      reference.catalog().rule(probe).antecedent[0]};
  for (uint32_t k = 1; k <= kWindows; ++k) {
    std::vector<WindowId> ids(k);
    for (uint32_t w = 0; w < k; ++w) ids[w] = w;
    const WindowSet windows = reference.MakeWindowSet(ids);
    mine_base[k] = reference.MineWindow(k - 1, setting).value();
    region_base[k] = reference.RecommendRegion(k - 1, setting).value();
    rollup_base[k] = reference.RollUpRule(probe, windows).value();
    content_base[k] =
        reference.ContentQuery(k - 1, probe_items, setting).value();
  }

  obs::MetricsRegistry registry;
  TaraEngine engine(MakeOptions(&registry));
  std::atomic<bool> done{false};
  std::atomic<size_t> observations{0};
  std::atomic<size_t> failures{0};

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!done.load(std::memory_order_acquire)) {
        const std::shared_ptr<const KnowledgeBaseSnapshot> snapshot =
            engine.Snapshot();
        const uint32_t k = snapshot->window_count();
        // Only live appends publish here, so every generation holds
        // exactly as many windows as publications: a torn/partial
        // publication would break this equality.
        if (snapshot->generation() != k) {
          failures.fetch_add(1);
          continue;
        }
        if (k == 0) continue;
        const WindowSet all = snapshot->AllWindows();
        bool ok = true;
        // Q1 anchored at the snapshot's newest window.
        const auto q1 =
            snapshot->TrajectoryQuery(k - 1, setting, all).value();
        ok &= q1.rules == mine_base[k];
        // Q2 between the two settings (smoke: must not crash/race; the
        // diff is validated against the per-prefix mine baselines).
        const auto q2 =
            snapshot->CompareSettings(setting, tighter, all,
                                      MatchMode::kSingle)
                .value();
        ok &= q2.only_second.empty();  // tighter set is a subset
        // Q3 region of the newest window.
        const RegionInfo q3 =
            snapshot->RecommendRegion(k - 1, setting).value();
        ok &= q3.result_size == region_base[k].result_size &&
              q3.support_upper == region_base[k].support_upper &&
              q3.confidence_upper == region_base[k].confidence_upper;
        // Q4/roll-up of the probe rule over every pinned window.
        const RollUpBound q4 = snapshot->RollUpRule(probe, all).value();
        ok &= q4.support_lo == rollup_base[k].support_lo &&
              q4.support_hi == rollup_base[k].support_hi &&
              q4.missing_windows == rollup_base[k].missing_windows;
        // Q5 content query in the newest window.
        const auto q5 =
            snapshot->ContentQuery(k - 1, probe_items, setting).value();
        ok &= q5 == content_base[k];
        if (!ok) failures.fetch_add(1);
        observations.fetch_add(1);
        // Round-robin a facade-level query too: it pins its own
        // (possibly newer) snapshot and exercises the metric spans.
        switch (r % 3) {
          case 0:
            (void)engine.MineWindow(0, setting);
            break;
          case 1:
            (void)engine.RecommendRegion(0, setting);
            break;
          default:
            (void)engine.RuleMeasures(probe, all);
            break;
        }
      }
    });
  }

  // The writer: live-append all windows, one publication each.
  for (uint32_t w = 0; w < kWindows; ++w) AppendOne(&engine, data, w);
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(engine.window_count(), kWindows);
  EXPECT_EQ(engine.generation(), kWindows);
  // Final state answers exactly like the reference.
  EXPECT_EQ(engine.MineWindow(kWindows - 1, setting).value(),
            mine_base[kWindows]);
  EXPECT_EQ(KnowledgeBaseToString(engine),
            KnowledgeBaseToString(reference));
  // The snapshot gauges tracked the publications.
  EXPECT_NE(registry.SnapshotText().find("tara.kb.generation"),
            std::string::npos);
}

TEST(LiveIngestionTest, GenerationZeroIsAnEmptyQueryableSnapshot) {
  TaraEngine engine(MakeOptions());
  const std::shared_ptr<const KnowledgeBaseSnapshot> empty =
      engine.Snapshot();
  EXPECT_EQ(empty->generation(), 0u);
  EXPECT_EQ(empty->window_count(), 0u);
  EXPECT_EQ(empty->rule_count(), 0u);
  // Queries against the empty generation reject cleanly, never crash.
  const auto mined = empty->MineWindow(0, ParameterSetting{0.01, 0.3});
  ASSERT_FALSE(mined.has_value());
  EXPECT_EQ(mined.error().code, QueryError::Code::kBadWindow);
}

}  // namespace
}  // namespace tara
