#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/dctar.h"
#include "core/tara_engine.h"
#include "datagen/quest_generator.h"
#include "txdb/evolving_database.h"

namespace tara {
namespace {

EvolvingDatabase MakeEvolvingQuest(uint32_t windows, uint64_t seed) {
  QuestGenerator::Params params;
  params.num_transactions = 400 * windows;
  params.num_items = 80;
  params.num_patterns = 40;
  params.avg_transaction_len = 8;
  params.seed = seed;
  const TransactionDatabase db = QuestGenerator(params).Generate();
  return EvolvingDatabase::PartitionIntoBatches(db, windows);
}

TaraEngine::Options EngineOptions() {
  TaraEngine::Options options;
  options.min_support_floor = 0.01;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 5;
  return options;
}

std::set<std::pair<Itemset, Itemset>> AsRuleSet(
    const TaraEngine& engine, const std::vector<RuleId>& ids) {
  std::set<std::pair<Itemset, Itemset>> set;
  for (RuleId id : ids) {
    const Rule& r = engine.catalog().rule(id);
    set.emplace(r.antecedent, r.consequent);
  }
  return set;
}

std::set<std::pair<Itemset, Itemset>> AsRuleSet(
    const std::vector<MinedRule>& rules) {
  std::set<std::pair<Itemset, Itemset>> set;
  for (const MinedRule& r : rules) set.emplace(r.antecedent, r.consequent);
  return set;
}

class EngineGroundTruthTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(EngineGroundTruthTest, MineWindowMatchesScratchMining) {
  const auto& [min_supp, min_conf] = GetParam();
  const EvolvingDatabase data = MakeEvolvingQuest(4, 31);
  TaraEngine engine(EngineOptions());
  engine.BuildAll(data);
  const DctarBaseline scratch(&data, 5);

  for (WindowId w = 0; w < data.window_count(); ++w) {
    const ParameterSetting setting{min_supp, min_conf};
    const auto tara_rules = AsRuleSet(engine, engine.MineWindow(w, setting).value());
    const auto scratch_rules = AsRuleSet(scratch.MineWindow(w, setting));
    EXPECT_EQ(tara_rules, scratch_rules)
        << "window " << w << " supp=" << min_supp << " conf=" << min_conf;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSweep, EngineGroundTruthTest,
    ::testing::Combine(::testing::Values(0.01, 0.02, 0.05, 0.1),
                       ::testing::Values(0.1, 0.3, 0.5, 0.8)));

TEST(TaraEngineTest, TrajectoriesMatchRawScans) {
  const EvolvingDatabase data = MakeEvolvingQuest(4, 32);
  TaraEngine engine(EngineOptions());
  engine.BuildAll(data);

  const ParameterSetting setting{0.03, 0.3};
  const WindowSet horizon = engine.AllWindows();
  const auto result = engine.TrajectoryQuery(3, setting, horizon).value();
  ASSERT_FALSE(result.rules.empty());
  ASSERT_EQ(result.rules.size(), result.trajectories.size());

  for (size_t i = 0; i < result.rules.size(); ++i) {
    const Rule& rule = engine.catalog().rule(result.rules[i]);
    const Itemset whole = Union(rule.antecedent, rule.consequent);
    for (const TrajectoryPoint& p : result.trajectories[i]) {
      const WindowInfo& info = data.window(p.window);
      const uint64_t rule_count = data.database().CountContaining(
          whole, info.begin, info.end);
      const uint64_t ant_count = data.database().CountContaining(
          rule.antecedent, info.begin, info.end);
      if (p.present) {
        EXPECT_DOUBLE_EQ(p.support,
                         static_cast<double>(rule_count) / info.size());
        EXPECT_DOUBLE_EQ(p.confidence,
                         static_cast<double>(rule_count) / ant_count);
      } else {
        // Absent means sub-floor in that window (or rule truly missing) —
        // the rule may still occur, but below the generation threshold or
        // confidence floor.
        const double support =
            static_cast<double>(rule_count) / info.size();
        const double confidence =
            ant_count == 0 ? 0.0
                           : static_cast<double>(rule_count) / ant_count;
        EXPECT_TRUE(support < engine.options().min_support_floor ||
                    confidence < engine.options().min_confidence_floor)
            << "rule archived counts missing though above floors";
      }
    }
  }
}

TEST(TaraEngineTest, MatchModesCombineWindows) {
  const EvolvingDatabase data = MakeEvolvingQuest(3, 33);
  TaraEngine engine(EngineOptions());
  engine.BuildAll(data);

  const ParameterSetting setting{0.02, 0.2};
  const WindowSet windows = engine.AllWindows();
  const auto any =
      engine.MineWindows(windows, setting, MatchMode::kSingle).value();
  const auto all =
      engine.MineWindows(windows, setting, MatchMode::kExact).value();
  EXPECT_TRUE(std::is_sorted(any.begin(), any.end()));
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  EXPECT_LE(all.size(), any.size());
  // kExact results must each be valid in every window.
  for (RuleId id : all) {
    for (WindowId w : windows) {
      const auto in_window = engine.MineWindow(w, setting).value();
      EXPECT_TRUE(std::find(in_window.begin(), in_window.end(), id) !=
                  in_window.end());
    }
  }
  // Union really is the union.
  std::set<RuleId> union_set;
  for (WindowId w : windows) {
    for (RuleId id : engine.MineWindow(w, setting).value()) union_set.insert(id);
  }
  EXPECT_EQ(any.size(), union_set.size());
}

TEST(TaraEngineTest, CompareSettingsMatchesManualDiff) {
  const EvolvingDatabase data = MakeEvolvingQuest(3, 34);
  TaraEngine engine(EngineOptions());
  engine.BuildAll(data);

  const ParameterSetting p1{0.02, 0.2};
  const ParameterSetting p2{0.05, 0.2};
  const WindowSet windows = engine.AllWindows();
  const auto diff =
      engine.CompareSettings(p1, p2, windows, MatchMode::kExact).value();

  const auto a = engine.MineWindows(windows, p1, MatchMode::kExact).value();
  const auto b = engine.MineWindows(windows, p2, MatchMode::kExact).value();
  std::vector<RuleId> only_a, only_b;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(only_a));
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(only_b));
  EXPECT_EQ(diff.only_first, only_a);
  EXPECT_EQ(diff.only_second, only_b);
  // Tighter support can only lose rules.
  EXPECT_TRUE(diff.only_second.empty());
  EXPECT_FALSE(diff.only_first.empty());
}

TEST(TaraEngineTest, RecommendRegionIsConsistentWithMining) {
  const EvolvingDatabase data = MakeEvolvingQuest(2, 35);
  TaraEngine engine(EngineOptions());
  engine.BuildAll(data);

  const ParameterSetting setting{0.04, 0.4};
  const RegionInfo region = engine.RecommendRegion(1, setting).value();
  EXPECT_EQ(region.result_size, engine.MineWindow(1, setting).value().size());
  EXPECT_LE(region.support_lower, setting.min_support);
  EXPECT_GE(region.support_upper + 1e-12, setting.min_support);
}

TEST(TaraEngineTest, ContentQueryRequiresAndUsesContentIndex) {
  TaraEngine::Options options = EngineOptions();
  options.build_content_index = true;
  const EvolvingDatabase data = MakeEvolvingQuest(2, 36);
  TaraEngine engine(options);
  engine.BuildAll(data);

  const ParameterSetting setting{0.02, 0.2};
  const auto all_rules = engine.MineWindow(0, setting).value();
  ASSERT_FALSE(all_rules.empty());
  // Pick an item appearing in some rule and query for it.
  const Rule& probe = engine.catalog().rule(all_rules.front());
  const ItemId item = probe.antecedent.front();
  const auto matches = engine.ContentQuery(0, {item}, setting).value();
  EXPECT_FALSE(matches.empty());
  for (RuleId id : matches) {
    const Rule& r = engine.catalog().rule(id);
    const Itemset items = Union(r.antecedent, r.consequent);
    EXPECT_TRUE(std::binary_search(items.begin(), items.end(), item));
  }
  // Every matching rule from plain mining appears here too.
  size_t expected = 0;
  for (RuleId id : all_rules) {
    const Rule& r = engine.catalog().rule(id);
    const Itemset items = Union(r.antecedent, r.consequent);
    if (std::binary_search(items.begin(), items.end(), item)) ++expected;
  }
  EXPECT_EQ(matches.size(), expected);
}

TEST(TaraEngineTest, ContentViewGroupsResultByItem) {
  const EvolvingDatabase data = MakeEvolvingQuest(2, 37);
  TaraEngine engine(EngineOptions());
  engine.BuildAll(data);
  const ParameterSetting setting{0.02, 0.2};
  const auto view = engine.ContentView(0, setting).value();
  const auto rules = engine.MineWindow(0, setting).value();
  // Every rule appears under each of its items.
  for (RuleId id : rules) {
    const Rule& r = engine.catalog().rule(id);
    for (ItemId item : r.antecedent) {
      const auto it = view.find(item);
      ASSERT_NE(it, view.end());
      EXPECT_TRUE(std::binary_search(it->second.begin(), it->second.end(),
                                     id));
    }
  }
}

TEST(TaraEngineTest, RollUpCertainRulesAreTrulyValid) {
  const EvolvingDatabase data = MakeEvolvingQuest(3, 38);
  TaraEngine engine(EngineOptions());
  engine.BuildAll(data);

  const ParameterSetting setting{0.02, 0.3};
  const WindowSet windows = engine.AllWindows();
  const auto rolled = engine.MineRolledUp(windows, setting).value();

  // "Certain" rules must pass an exact raw-scan check over the union.
  size_t begin = data.window(0).begin;
  size_t end = data.window(2).end;
  const uint64_t total = end - begin;
  for (RuleId id : rolled.certain) {
    const Rule& r = engine.catalog().rule(id);
    const Itemset whole = Union(r.antecedent, r.consequent);
    const uint64_t rule_count =
        data.database().CountContaining(whole, begin, end);
    const uint64_t ant_count =
        data.database().CountContaining(r.antecedent, begin, end);
    EXPECT_GE(static_cast<double>(rule_count) / total + 1e-9,
              setting.min_support);
    EXPECT_GE(static_cast<double>(rule_count) / ant_count + 1e-9,
              setting.min_confidence);
  }
  // And every truly-valid archived rule must appear in certain ∪ possible.
  std::set<RuleId> candidates(rolled.certain.begin(), rolled.certain.end());
  candidates.insert(rolled.possible.begin(), rolled.possible.end());
  const auto anywhere =
      engine
          .MineWindows(windows, ParameterSetting{0.02, 0.3},
                       MatchMode::kSingle)
          .value();
  for (RuleId id : anywhere) {
    const Rule& r = engine.catalog().rule(id);
    const Itemset whole = Union(r.antecedent, r.consequent);
    const uint64_t rule_count =
        data.database().CountContaining(whole, begin, end);
    const uint64_t ant_count =
        data.database().CountContaining(r.antecedent, begin, end);
    const bool valid =
        static_cast<double>(rule_count) / total + 1e-9 >=
            setting.min_support &&
        static_cast<double>(rule_count) / ant_count + 1e-9 >=
            setting.min_confidence;
    if (valid) {
      EXPECT_TRUE(candidates.count(id))
          << "valid rolled-up rule missing from certain ∪ possible";
    }
  }
}

TEST(TaraEngineTest, RollUpBoundsContainExactValues) {
  const EvolvingDatabase data = MakeEvolvingQuest(3, 39);
  TaraEngine engine(EngineOptions());
  engine.BuildAll(data);

  const WindowSet windows = engine.AllWindows();
  const auto rules = engine.MineWindow(0, ParameterSetting{0.02, 0.2}).value();
  const size_t begin = data.window(0).begin;
  const size_t end = data.window(2).end;
  const uint64_t total = end - begin;
  for (RuleId id : rules) {
    const RollUpBound bound = engine.RollUpRule(id, windows).value();
    const Rule& r = engine.catalog().rule(id);
    const Itemset whole = Union(r.antecedent, r.consequent);
    const double support = static_cast<double>(data.database().CountContaining(
                               whole, begin, end)) /
                           total;
    const uint64_t ant =
        data.database().CountContaining(r.antecedent, begin, end);
    const double confidence =
        ant == 0 ? 0.0
                 : static_cast<double>(
                       data.database().CountContaining(whole, begin, end)) /
                       ant;
    EXPECT_LE(bound.support_lo, support + 1e-9);
    EXPECT_GE(bound.support_hi + 1e-9, support);
    EXPECT_LE(bound.confidence_lo, confidence + 1e-9);
    EXPECT_GE(bound.confidence_hi + 1e-9, confidence);
  }
}

TEST(TaraEngineTest, IncrementalAppendMatchesBulkBuild) {
  const EvolvingDatabase data = MakeEvolvingQuest(4, 40);

  TaraEngine bulk(EngineOptions());
  bulk.BuildAll(data);

  TaraEngine incremental(EngineOptions());
  for (WindowId w = 0; w < data.window_count(); ++w) {
    const WindowInfo& info = data.window(w);
    incremental.AppendWindow(data.database(), info.begin, info.end);
  }

  const ParameterSetting setting{0.02, 0.3};
  for (WindowId w = 0; w < data.window_count(); ++w) {
    EXPECT_EQ(AsRuleSet(bulk, bulk.MineWindow(w, setting).value()),
              AsRuleSet(incremental,
                        incremental.MineWindow(w, setting).value()));
  }
}

TEST(TaraEngineTest, BuildStatsCoverEveryWindowAndTask) {
  const EvolvingDatabase data = MakeEvolvingQuest(3, 41);
  TaraEngine engine(EngineOptions());
  engine.BuildAll(data);
  ASSERT_EQ(engine.build_stats().size(), 3u);
  for (const auto& stats : engine.build_stats()) {
    EXPECT_GT(stats.itemset_count, 0u);
    EXPECT_GT(stats.rule_count, 0u);
    EXPECT_GT(stats.location_count, 0u);
    EXPECT_GE(stats.total_seconds(), stats.itemset_seconds);
  }
}

TEST(TaraEngineTest, RejectsQueriesBelowTheFloorWithoutAborting) {
  const EvolvingDatabase data = MakeEvolvingQuest(1, 42);
  TaraEngine engine(EngineOptions());
  engine.BuildAll(data);
  const auto rejected = engine.MineWindow(0, ParameterSetting{0.001, 0.2});
  ASSERT_FALSE(rejected.has_value());
  EXPECT_EQ(rejected.error().code, QueryError::Code::kSupportBelowFloor);
  EXPECT_NE(rejected.error().message.find("generation floor"),
            std::string::npos);
  // The engine survives and keeps answering valid requests.
  EXPECT_TRUE(
      engine.MineWindow(0, ParameterSetting{0.02, 0.2}).has_value());
}

}  // namespace
}  // namespace tara
