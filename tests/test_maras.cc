#include <algorithm>

#include <gtest/gtest.h>

#include "datagen/faers_generator.h"
#include "maras/contrast.h"
#include "maras/drug_adr.h"
#include "maras/evaluation.h"
#include "mining/closed_itemsets.h"
#include "maras/maras_engine.h"
#include "maras/tidset_index.h"

namespace tara {
namespace {

constexpr ItemId kAdrBase = 100;

TEST(TidsetIndexTest, CountsMatchScans) {
  TransactionDatabase db;
  db.Append(0, {1, 2, 100});
  db.Append(1, {1, 100, 101});
  db.Append(2, {2, 3});
  db.Append(3, {1, 2, 3, 101});
  const TidsetIndex index(db, 0, db.size());
  EXPECT_EQ(index.total(), 4u);
  for (const Itemset& q : std::vector<Itemset>{
           {}, {1}, {2}, {1, 2}, {1, 100}, {2, 3, 101}, {9}}) {
    EXPECT_EQ(index.Count(q), db.CountContaining(q)) << "query size "
                                                     << q.size();
  }
}

TEST(TidsetIndexTest, HandlesWordBoundaries) {
  TransactionDatabase db;
  for (int i = 0; i < 130; ++i) {
    db.Append(i, {static_cast<ItemId>(i % 3)});
  }
  const TidsetIndex index(db, 0, db.size());
  EXPECT_EQ(index.Count({0}), db.CountContaining({0}));
  EXPECT_EQ(index.Count({2}), db.CountContaining({2}));
}

TEST(SplitReportTest, SeparatesSpaces) {
  const DrugAdrAssociation assoc =
      SplitReport({1, 5, 100, 103}, kAdrBase);
  EXPECT_EQ(assoc.drugs, (Itemset{1, 5}));
  EXPECT_EQ(assoc.adrs, (Itemset{100, 103}));
  EXPECT_EQ(assoc.AllItems(), (Itemset{1, 5, 100, 103}));
}

TransactionDatabase ReportsFixture() {
  // Reports mirroring Section 2.3.2's running example:
  //   t0: {d1, d2, d3} ∪ {a1, a2}
  //   t1: {d1, d2, d4} ∪ {a1, a2}
  // Drugs = 1..4, ADRs = 100, 101.
  TransactionDatabase db;
  db.Append(0, {1, 2, 3, 100, 101});
  db.Append(1, {1, 2, 4, 100, 101});
  return db;
}

TEST(ClassifySupportTest, ExplicitWhenAReportMatchesExactly) {
  const TransactionDatabase db = ReportsFixture();
  const DrugAdrAssociation r1{{1, 2, 3}, {100, 101}};
  EXPECT_EQ(ClassifySupport(r1, db, 0, db.size()), SupportType::kExplicit);
}

TEST(ClassifySupportTest, ImplicitWhenIntersectionOfReports) {
  const TransactionDatabase db = ReportsFixture();
  // {d1,d2} ⇒ {a1,a2} is the intersection of t0 and t1 — implicit.
  const DrugAdrAssociation r4{{1, 2}, {100, 101}};
  EXPECT_EQ(ClassifySupport(r4, db, 0, db.size()), SupportType::kImplicit);
  EXPECT_TRUE(IsPairwiseIntersection(r4, db, 0, db.size()));
}

TEST(ClassifySupportTest, SpuriousPartialInterpretations) {
  const TransactionDatabase db = ReportsFixture();
  // d1 ⇒ a2 is a partial interpretation backed by no exact report and no
  // intersection.
  const DrugAdrAssociation r2{{1}, {101}};
  // Single-drug: not an MDAR anyway, but classification must call it
  // spurious (closure of {d1, a2} is bigger).
  EXPECT_EQ(ClassifySupport(r2, db, 0, db.size()), SupportType::kSpurious);
  const DrugAdrAssociation r5{{1, 3}, {100}};
  EXPECT_EQ(ClassifySupport(r5, db, 0, db.size()), SupportType::kSpurious);
}

TEST(ClassifySupportTest, Lemma1ClosedEqualsExplicitOrImplicit) {
  // Empirical check of Lemma 1 on generated reports: an association whose
  // item union is closed must classify explicit or implicit; a non-closed
  // one must classify spurious.
  FaersGenerator::Params params;
  params.reports_per_quarter = 300;
  params.num_drugs = 40;
  params.num_adrs = 20;
  params.num_ddis = 5;
  params.seed = 3;
  const FaersGenerator gen(params);
  const TransactionDatabase db = gen.GenerateQuarter(0, 0);

  // Probe with all distinct report signatures and their pairwise
  // intersections.
  std::vector<Itemset> probes;
  for (size_t i = 0; i < 60 && i < db.size(); ++i) {
    probes.push_back(db[i].items);
    for (size_t j = i + 1; j < 60 && j < db.size(); ++j) {
      const Itemset inter = Intersection(db[i].items, db[j].items);
      if (!inter.empty()) probes.push_back(inter);
    }
  }
  for (const Itemset& probe : probes) {
    const DrugAdrAssociation assoc = SplitReport(probe, gen.adr_base());
    if (assoc.drugs.empty() || assoc.adrs.empty()) continue;
    const SupportType type = ClassifySupport(assoc, db, 0, db.size());
    const Itemset closure = ComputeClosure(probe, db, 0, db.size());
    if (closure == probe) {
      EXPECT_NE(type, SupportType::kSpurious)
          << "closed association classified spurious";
    } else {
      EXPECT_EQ(type, SupportType::kSpurious)
          << "non-closed association not classified spurious";
    }
  }
}

TEST(BuildCacTest, ThreeDrugTargetHasSixContextuals) {
  // Table 1's example: a 3-drug target has 3 two-drug and 3 one-drug
  // contextual associations.
  TransactionDatabase db;
  db.Append(0, {1, 2, 3, 100});
  db.Append(1, {1, 2, 3, 100});
  db.Append(2, {1, 2});
  db.Append(3, {3, 100});
  const TidsetIndex index(db, 0, db.size());
  const Cac cac = BuildCac(DrugAdrAssociation{{1, 2, 3}, {100}}, index);
  ASSERT_EQ(cac.levels.size(), 2u);
  EXPECT_EQ(cac.levels[0].size(), 3u);  // 1-drug contextuals
  EXPECT_EQ(cac.levels[1].size(), 3u);  // 2-drug contextuals
  EXPECT_DOUBLE_EQ(cac.target_confidence, 1.0);
  // Contextual confidences match raw scans.
  for (const auto& level : cac.levels) {
    for (const ContextualAssociation& c : level) {
      const double expected =
          static_cast<double>(db.CountContaining(Union(c.drugs, {100}))) /
          db.CountContaining(c.drugs);
      EXPECT_DOUBLE_EQ(c.confidence, expected);
    }
  }
}

Cac TwoDrugCac(double target_conf, double ctx1, double ctx2) {
  Cac cac;
  cac.target = DrugAdrAssociation{{1, 2}, {100}};
  cac.target_confidence = target_conf;
  cac.levels.resize(1);
  cac.levels[0].push_back(ContextualAssociation{{1}, ctx1});
  cac.levels[0].push_back(ContextualAssociation{{2}, ctx2});
  return cac;
}

TEST(ContrastTest, PaperWorkedExampleForContrastCv) {
  // Section 2.3.5: C1 confidences {1, 0.2, 0.8}, C2 {1, 0.5, 0.55};
  // theta = 0.75 gives contrast_cv 0.18 and 0.45.
  const Cac c1 = TwoDrugCac(1.0, 0.2, 0.8);
  const Cac c2 = TwoDrugCac(1.0, 0.5, 0.55);
  EXPECT_DOUBLE_EQ(ContrastAvg(c1), 0.5);
  EXPECT_NEAR(ContrastCv(c1, 0.75), 0.18, 0.005);
  EXPECT_NEAR(ContrastCv(c2, 0.75), 0.45, 0.005);
  EXPECT_GT(ContrastCv(c2, 0.75), ContrastCv(c1, 0.75))
      << "variation penalty must prefer uniformly weak contextuals";
}

TEST(ContrastTest, ContrastMaxUsesStrongestContextual) {
  const Cac cac = TwoDrugCac(0.9, 0.2, 0.8);
  EXPECT_NEAR(ContrastMax(cac), 0.9 - 0.8, 1e-12);
  // Dominated by a subset: negative.
  const Cac dominated = TwoDrugCac(0.5, 0.9, 0.1);
  EXPECT_LT(ContrastMax(dominated), 0.0);
}

TEST(ContrastTest, FinalScoreRewardsExclusiveInteractions) {
  // Strong DDI: target confident, all subsets weak.
  const Cac ddi = TwoDrugCac(0.9, 0.05, 0.08);
  // Confounded: one drug alone explains the ADR.
  const Cac confounded = TwoDrugCac(0.9, 0.88, 0.1);
  EXPECT_GT(ContrastScore(ddi, 0.75), ContrastScore(confounded, 0.75));
  // The 1/n normalization caps a perfect 2-drug DDI at 0.5.
  EXPECT_GT(ContrastScore(ddi, 0.75), 0.25);
}

TEST(ContrastTest, WeightingFavorsWeakSingleDrugEvidence) {
  // Two 3-drug targets with the same average contextual confidence, but one
  // concentrates the strength at the single-drug level. H(i, n) weighs
  // level 1 more, so strength there must hurt more.
  auto three_drug_cac = [](double l1, double l2) {
    Cac cac;
    cac.target = DrugAdrAssociation{{1, 2, 3}, {100}};
    cac.target_confidence = 1.0;
    cac.levels.resize(2);
    for (int i = 0; i < 3; ++i) {
      cac.levels[0].push_back(ContextualAssociation{{1}, l1});
      cac.levels[1].push_back(ContextualAssociation{{1, 2}, l2});
    }
    return cac;
  };
  const double strong_singles = ContrastScore(three_drug_cac(0.6, 0.1), 0.75);
  const double strong_pairs = ContrastScore(three_drug_cac(0.1, 0.6), 0.75);
  EXPECT_LT(strong_singles, strong_pairs);
}

class MarasEndToEndTest : public ::testing::Test {
 protected:
  static FaersGenerator MakeGenerator() {
    FaersGenerator::Params params;
    params.reports_per_quarter = 6000;
    params.num_drugs = 150;
    params.num_adrs = 80;
    params.num_ddis = 8;
    params.seed = 88;
    return FaersGenerator(params);
  }

  static MarasEngine::Options EngineOptions(ItemId adr_base) {
    MarasEngine::Options options;
    options.adr_base = adr_base;
    options.min_count = 10;
    options.max_itemset_size = 7;
    return options;
  }
};

TEST_F(MarasEndToEndTest, SignalsAreRankedAndNonSpurious) {
  const FaersGenerator gen = MakeGenerator();
  const TransactionDatabase db = gen.GenerateQuarter(0, 0);
  const MarasEngine engine(db, 0, db.size(), EngineOptions(gen.adr_base()));
  ASSERT_FALSE(engine.signals().empty());
  for (size_t i = 1; i < engine.signals().size(); ++i) {
    EXPECT_GE(engine.signals()[i - 1].contrast,
              engine.signals()[i].contrast);
  }
  for (const MdarSignal& s : engine.signals()) {
    EXPECT_GE(s.assoc.drugs.size(), 2u);
    EXPECT_FALSE(s.assoc.adrs.empty());
    EXPECT_NE(s.support_type, SupportType::kSpurious)
        << "closedness filter must remove spurious associations";
  }
}

TEST_F(MarasEndToEndTest, ContrastBeatsBaselinesOnPrecisionAtK) {
  const FaersGenerator gen = MakeGenerator();
  const TransactionDatabase db = gen.GenerateQuarter(0, 0);
  const MarasEngine engine(db, 0, db.size(), EngineOptions(gen.adr_base()));

  const double p10_maras =
      PrecisionAtK(engine.signals(), gen.ground_truth(), 10);
  const double p10_conf =
      PrecisionAtK(engine.RankByConfidence(), gen.ground_truth(), 10);
  const double p10_lift =
      PrecisionAtK(engine.RankByLift(), gen.ground_truth(), 10);
  EXPECT_GE(p10_maras, 0.5) << "planted DDIs must surface in the top 10";
  EXPECT_GT(p10_maras, p10_conf);
  EXPECT_GT(p10_maras, p10_lift);
}

TEST_F(MarasEndToEndTest, TrueDdisRankDeepUnderBaselines) {
  const FaersGenerator gen = MakeGenerator();
  const TransactionDatabase db = gen.GenerateQuarter(0, 0);
  const MarasEngine engine(db, 0, db.size(), EngineOptions(gen.adr_base()));

  // The top MARAS hit must rank far deeper in the confidence ranking
  // (Table 2's 2,436th-style observation, scaled to this dataset).
  const auto by_confidence = engine.RankByConfidence();
  size_t maras_rank = 0;
  const PlantedDdi* found = nullptr;
  for (size_t i = 0; i < engine.signals().size() && found == nullptr; ++i) {
    for (const PlantedDdi& ddi : gen.ground_truth()) {
      if (RankOfDdi({engine.signals()[i]}, ddi) == 1) {
        maras_rank = i + 1;
        found = &ddi;
        break;
      }
    }
  }
  ASSERT_NE(found, nullptr) << "no planted DDI detected at all";
  EXPECT_LE(maras_rank, 10u);
  const size_t conf_rank = RankOfDdi(by_confidence, *found);
  ASSERT_GT(conf_rank, 0u);
  EXPECT_GT(conf_rank, 3 * maras_rank)
      << "confidence ranking should bury the DDI relative to MARAS";
}

TEST(EvaluationTest, PrecisionAndRankHelpers) {
  std::vector<PlantedDdi> truth = {{{1, 2}, 100}};
  MdarSignal hit;
  hit.assoc = DrugAdrAssociation{{1, 2}, {100}};
  MdarSignal miss;
  miss.assoc = DrugAdrAssociation{{3, 4}, {101}};
  EXPECT_TRUE(IsHit(hit, truth));
  EXPECT_FALSE(IsHit(miss, truth));
  EXPECT_DOUBLE_EQ(PrecisionAtK({miss, hit}, truth, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK({miss, hit}, truth, 1), 0.0);
  EXPECT_EQ(RankOfDdi({miss, hit}, truth[0]), 2u);
  EXPECT_EQ(RankOfDdi({miss}, truth[0]), 0u);
  // Superset drugs and extra ADRs still hit.
  MdarSignal superset;
  superset.assoc = DrugAdrAssociation{{1, 2, 9}, {99, 100}};
  EXPECT_TRUE(IsHit(superset, truth));
}

}  // namespace
}  // namespace tara
