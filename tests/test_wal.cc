// Write-ahead-log durability: replay round-trips, checkpoint + log
// truncation, torn-tail tolerance, typed mismatch/gap errors, and the
// crash harness — SIGKILL injected between every durability step of
// live appends and checkpoints, plus timed kill -9 runs, each followed
// by a recovery that must reproduce the last acked state byte-for-byte.

#include "core/wal.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/crash_point.h"
#include "core/kb_open.h"
#include "core/kb_storage.h"
#include "core/tara_engine.h"
#include "datagen/quest_generator.h"
#include "obs/metrics.h"
#include "txdb/evolving_database.h"

namespace tara {
namespace {

namespace fs = std::filesystem;

constexpr uint32_t kWindows = 4;

EvolvingDatabase MakeData() {
  QuestGenerator::Params params;
  params.num_transactions = 300 * kWindows;
  params.num_items = 70;
  params.num_patterns = 30;
  params.avg_transaction_len = 8;
  params.seed = 1234;
  const TransactionDatabase db = QuestGenerator(params).Generate();
  return EvolvingDatabase::PartitionIntoBatches(db, kWindows);
}

TaraEngine::Options EngineOptions() {
  TaraEngine::Options options;
  options.min_support_floor = 0.01;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 4;
  return options;
}

std::string Encode(const TaraEngine& engine) {
  return EncodeKnowledgeBase(*engine.Snapshot());
}

/// Checkpoint + WAL recovery through the unified open entry point.
Expected<TaraEngine, LoadError> Recover(const std::string& kb_dir,
                                        const std::string& wal_dir,
                                        obs::MetricsRegistry* metrics = nullptr,
                                        WalReplayStats* stats = nullptr) {
  OpenOptions options;
  options.kb_dir = kb_dir;
  options.wal_dir = wal_dir;
  options.metrics = metrics;
  options.replay_stats = stats;
  return OpenKnowledgeBase(options);
}

class WalTest : public ::testing::Test {
 protected:
  // The pid keeps concurrent suite runs (e.g. plain + sanitized build
  // trees on one machine) from clobbering each other's fixtures.
  WalTest()
      : dir_(fs::path(::testing::TempDir()) /
             ("wal_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name())),
        wal_dir_((dir_ / "wal").string()),
        kb_dir_((dir_ / "kb").string()) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~WalTest() override { fs::remove_all(dir_); }

  /// Serialized reference states: refs_[k] is the knowledge base after k
  /// appended windows. The recovery assertions compare against these.
  void BuildReferences(const EvolvingDatabase& data) {
    TaraEngine engine(EngineOptions());
    refs_.push_back(Encode(engine));
    for (uint32_t w = 0; w < data.window_count(); ++w) {
      const WindowInfo& info = data.window(w);
      engine.AppendWindow(data.database(), info.begin, info.end);
      refs_.push_back(Encode(engine));
    }
  }

  fs::path dir_;
  std::string wal_dir_;
  std::string kb_dir_;
  std::vector<std::string> refs_;
};

TEST_F(WalTest, LoggedWindowsReplayByteIdentically) {
  const EvolvingDatabase data = MakeData();
  BuildReferences(data);
  {
    // Options::wal_dir exercises the construction-time attach.
    TaraEngine::Options options = EngineOptions();
    options.wal_dir = wal_dir_;
    TaraEngine engine(options);
    ASSERT_TRUE(engine.wal_attached());
    for (uint32_t w = 0; w < kWindows; ++w) {
      const WindowInfo& info = data.window(w);
      engine.AppendWindow(data.database(), info.begin, info.end);
    }
    EXPECT_EQ(Encode(engine), refs_[kWindows]);
  }
  // A fresh engine attaching the same log replays every window.
  TaraEngine replayed(EngineOptions());
  const auto stats = replayed.AttachWal(wal_dir_);
  ASSERT_TRUE(stats.has_value()) << stats.error();
  EXPECT_EQ(stats->records_replayed, kWindows);
  EXPECT_EQ(stats->records_skipped, 0u);
  EXPECT_EQ(stats->truncated_bytes, 0u);
  EXPECT_EQ(Encode(replayed), refs_[kWindows]);
}

TEST_F(WalTest, CheckpointTruncatesAndTailReplaysOnTop) {
  const EvolvingDatabase data = MakeData();
  BuildReferences(data);
  TaraEngine engine(EngineOptions());
  ASSERT_TRUE(engine.AttachWal(wal_dir_).has_value());
  for (uint32_t w = 0; w < 2; ++w) {
    const WindowInfo& info = data.window(w);
    engine.AppendWindow(data.database(), info.begin, info.end);
  }
  // Checkpoint: windows 0-1 land durably in the directory, then the log
  // resets to its header.
  ASSERT_FALSE(AppendKnowledgeBaseDir(*engine.Snapshot(), kb_dir_));
  ASSERT_FALSE(engine.TruncateWal().has_value());
  {
    const auto contents = ReadWal(wal_dir_);
    ASSERT_TRUE(contents.has_value()) << contents.error();
    EXPECT_TRUE(contents->records.empty());
  }
  for (uint32_t w = 2; w < kWindows; ++w) {
    const WindowInfo& info = data.window(w);
    engine.AppendWindow(data.database(), info.begin, info.end);
  }

  WalReplayStats stats;
  auto recovered = Recover(kb_dir_, wal_dir_, nullptr, &stats);
  ASSERT_TRUE(recovered.has_value()) << recovered.error();
  EXPECT_EQ(stats.records_replayed, kWindows - 2);
  EXPECT_EQ(recovered->window_count(), kWindows);
  EXPECT_EQ(Encode(*recovered), refs_[kWindows]);
}

TEST_F(WalTest, RecoversFromTheLogAloneBeforeAnyCheckpoint) {
  const EvolvingDatabase data = MakeData();
  BuildReferences(data);
  {
    TaraEngine engine(EngineOptions());
    ASSERT_TRUE(engine.AttachWal(wal_dir_).has_value());
    for (uint32_t w = 0; w < kWindows; ++w) {
      const WindowInfo& info = data.window(w);
      engine.AppendWindow(data.database(), info.begin, info.end);
    }
  }
  // kb_dir_ was never written: the engine options come from the WAL
  // header, the windows from its records.
  WalReplayStats stats;
  auto recovered = Recover(kb_dir_, wal_dir_, nullptr, &stats);
  ASSERT_TRUE(recovered.has_value()) << recovered.error();
  EXPECT_EQ(stats.records_replayed, kWindows);
  EXPECT_EQ(Encode(*recovered), refs_[kWindows]);
  // And the recovered engine keeps ingesting + logging: its log can be
  // replayed again.
  EXPECT_TRUE(recovered->wal_attached());
}

TEST_F(WalTest, TornTailIsTruncatedAndEarlierRecordsSurvive) {
  const EvolvingDatabase data = MakeData();
  BuildReferences(data);
  {
    TaraEngine engine(EngineOptions());
    ASSERT_TRUE(engine.AttachWal(wal_dir_).has_value());
    for (uint32_t w = 0; w < kWindows; ++w) {
      const WindowInfo& info = data.window(w);
      engine.AppendWindow(data.database(), info.begin, info.end);
    }
  }
  // Tear the last record: chop off its final bytes, as a crash mid-write
  // would.
  const fs::path wal_file = fs::path(wal_dir_) / "wal.tarawal";
  const uint64_t full_size = fs::file_size(wal_file);
  fs::resize_file(wal_file, full_size - 7);

  const auto contents = ReadWal(wal_dir_);
  ASSERT_TRUE(contents.has_value()) << contents.error();
  EXPECT_EQ(contents->records.size(), kWindows - 1);
  EXPECT_GT(contents->truncated_bytes, 0u);

  WalReplayStats stats;
  auto result = Recover(kb_dir_, wal_dir_, nullptr, &stats);
  ASSERT_TRUE(result.has_value()) << result.error();
  TaraEngine recovered = std::move(result).value();
  EXPECT_EQ(stats.records_replayed, kWindows - 1);
  EXPECT_EQ(stats.truncated_bytes, full_size - 7 - contents->valid_bytes);
  EXPECT_EQ(Encode(recovered), refs_[kWindows - 1]);

  // Re-appending the torn window through the recovered engine converges
  // back onto the reference — the torn tail was dropped cleanly.
  const WindowInfo& info = data.window(kWindows - 1);
  recovered.AppendWindow(data.database(), info.begin, info.end);
  EXPECT_EQ(Encode(recovered), refs_[kWindows]);
}

TEST_F(WalTest, MismatchedOptionsAndGapsAreTypedErrors) {
  const EvolvingDatabase data = MakeData();
  {
    TaraEngine engine(EngineOptions());
    ASSERT_TRUE(engine.AttachWal(wal_dir_).has_value());
    const WindowInfo& info = data.window(0);
    engine.AppendWindow(data.database(), info.begin, info.end);
  }
  // Different floors -> refuse to attach (and to replay).
  TaraEngine::Options other = EngineOptions();
  other.min_support_floor = 0.02;
  TaraEngine mismatched(other);
  const auto attach = mismatched.AttachWal(wal_dir_);
  ASSERT_FALSE(attach.has_value());
  EXPECT_EQ(attach.error().code, LoadError::Code::kBadManifest);

  // A log whose first record is past the engine's next window is a gap:
  // checkpoint, truncate, append one more — then recover WITHOUT the
  // checkpoint directory.
  {
    auto result = Recover(kb_dir_, wal_dir_);
    ASSERT_TRUE(result.has_value()) << result.error();
    TaraEngine engine = std::move(result).value();
    ASSERT_FALSE(AppendKnowledgeBaseDir(*engine.Snapshot(), kb_dir_));
    ASSERT_FALSE(engine.TruncateWal().has_value());
    const WindowInfo& info = data.window(1);
    engine.AppendWindow(data.database(), info.begin, info.end);
  }
  const auto gap =
      Recover((dir_ / "no_kb").string(), wal_dir_);
  ASSERT_FALSE(gap.has_value());
  EXPECT_EQ(gap.error().code, LoadError::Code::kBadManifest);
  EXPECT_NE(gap.error().message.find("jumps"), std::string::npos)
      << gap.error().message;

  // Missing log altogether: typed IO error.
  const auto missing = ReadWal((dir_ / "no_wal").string());
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.error().code, LoadError::Code::kIoError);
}

TEST_F(WalTest, InstrumentsCountRecordsAndReplays) {
  const EvolvingDatabase data = MakeData();
  obs::MetricsRegistry metrics;
  {
    TaraEngine::Options options = EngineOptions();
    options.metrics = &metrics;
    options.wal_dir = wal_dir_;
    TaraEngine engine(options);
    for (uint32_t w = 0; w < 2; ++w) {
      const WindowInfo& info = data.window(w);
      engine.AppendWindow(data.database(), info.begin, info.end);
    }
  }
  const std::string text = metrics.SnapshotText();
  EXPECT_NE(text.find("tara.wal.records = 2"), std::string::npos) << text;
  EXPECT_NE(text.find("tara.wal.bytes"), std::string::npos);
  EXPECT_NE(text.find("tara.wal.fsyncs"), std::string::npos);

  obs::MetricsRegistry recovery_metrics;
  WalReplayStats stats;
  auto recovered =
      Recover(kb_dir_, wal_dir_, &recovery_metrics, &stats);
  ASSERT_TRUE(recovered.has_value()) << recovered.error();
  EXPECT_EQ(stats.records_replayed, 2u);
  EXPECT_NE(recovery_metrics.SnapshotText().find("tara.wal.replays = 2"),
            std::string::npos)
      << recovery_metrics.SnapshotText();
}

/// The crash harness: a forked child ingests live windows with the WAL
/// attached, acking each append durably into an ack file the moment
/// AppendWindow returns, and checkpointing midway. The parent kills it
/// with SIGKILL at an injected crash point (every durability-step
/// boundary in turn), recovers, and requires: no acked window is lost,
/// and the recovered knowledge base is byte-identical to an uncrashed
/// reference at the recovered window count.
class WalCrashTest : public WalTest {
 protected:
  /// Child body; never returns. Exit codes: 0 = ran to completion,
  /// 2 = a step failed (distinguishes bugs from injected kills).
  [[noreturn]] void ChildIngest(const EvolvingDatabase& data,
                                const std::string& ack_path,
                                long crash_at, int delay_us) {
    if (crash_at >= 0) ArmCrashPoint(crash_at);
    const int ack_fd =
        ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (ack_fd < 0) _exit(2);
    TaraEngine engine(EngineOptions());
    if (!engine.AttachWal(wal_dir_).has_value()) _exit(2);
    for (uint32_t w = 0; w < data.window_count(); ++w) {
      const WindowInfo& info = data.window(w);
      engine.AppendWindow(data.database(), info.begin, info.end);
      // The append returned -> the record is durable -> ack it, also
      // durably, so the parent can trust the ack count after a kill.
      if (::write(ack_fd, "a", 1) != 1 || ::fsync(ack_fd) != 0) _exit(2);
      if (w == 1) {
        // Mid-run checkpoint: directory save + log truncation, both of
        // which have their own injected crash points.
        if (AppendKnowledgeBaseDir(*engine.Snapshot(), kb_dir_)) _exit(2);
        if (engine.TruncateWal().has_value()) _exit(2);
      }
      if (delay_us > 0) ::usleep(delay_us);
    }
    _exit(0);
  }

  /// Recovers after the child stopped and checks the acceptance bar.
  void CheckRecovery(uint64_t acked, const std::string& label) {
    WalReplayStats stats;
    auto recovered = Recover(kb_dir_, wal_dir_, nullptr, &stats);
    if (!recovered.has_value()) {
      // A kill that lands before the first append (seen under sanitizers
      // and on loaded machines, where startup is slow) leaves either no
      // WAL file at all or a freshly-attached header-only log, and no
      // checkpoint; nothing was acked, so there is nothing to recover
      // and the typed error is the correct answer.
      ASSERT_EQ(acked, 0u) << label << ": " << recovered.error();
      return;
    }
    const uint32_t count = recovered->window_count();
    // Never lose an acked window; at most one unacked window may have
    // become durable between the WAL fsync and the ack write.
    ASSERT_GE(count, acked) << label;
    ASSERT_LE(count, refs_.size() - 1) << label;
    EXPECT_EQ(Encode(*recovered), refs_[count])
        << label << ": recovered state diverges from the reference at "
        << count << " windows";
  }

  uint64_t AckCount(const std::string& ack_path) {
    std::error_code ec;
    const auto size = fs::file_size(ack_path, ec);
    return ec ? 0 : size;
  }
};

TEST_F(WalCrashTest, KillNineAtEveryDurabilityStepNeverLosesAnAckedWindow) {
  const EvolvingDatabase data = MakeData();
  BuildReferences(data);
  bool completed_cleanly = false;
  for (long crash_at = 0; crash_at < 96 && !completed_cleanly; ++crash_at) {
    fs::remove_all(wal_dir_);
    fs::remove_all(kb_dir_);
    const std::string ack_path =
        (dir_ / ("acks_" + std::to_string(crash_at))).string();
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) ChildIngest(data, ack_path, crash_at, /*delay_us=*/0);
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    if (WIFEXITED(status)) {
      ASSERT_EQ(WEXITSTATUS(status), 0) << "child step failed un-injected";
      completed_cleanly = true;
    } else {
      ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
          << "unexpected termination at crash point " << crash_at;
    }
    const std::string label = "crash point " + std::to_string(crash_at);
    CheckRecovery(AckCount(ack_path), label);
    if (completed_cleanly) {
      // The clean pass must have every window, not just the acked floor.
      auto recovered = Recover(kb_dir_, wal_dir_);
      ASSERT_TRUE(recovered.has_value());
      EXPECT_EQ(recovered->window_count(), data.window_count());
    }
  }
  EXPECT_TRUE(completed_cleanly)
      << "crash-point matrix never exhausted the injection sites";
}

TEST_F(WalCrashTest, TimedKillNineRecoversToTheLastAckedWindow) {
  const EvolvingDatabase data = MakeData();
  BuildReferences(data);
  // Real wall-clock kills at a few offsets — no injection, the signal
  // lands wherever the child happens to be.
  for (const int kill_after_us : {500, 2000, 8000}) {
    fs::remove_all(wal_dir_);
    fs::remove_all(kb_dir_);
    const std::string ack_path =
        (dir_ / ("acks_t" + std::to_string(kill_after_us))).string();
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      ChildIngest(data, ack_path, /*crash_at=*/-1, /*delay_us=*/300);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(kill_after_us));
    ::kill(child, SIGKILL);
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    CheckRecovery(AckCount(ack_path),
                  "timed kill at " + std::to_string(kill_after_us) + "us");
  }
}

}  // namespace
}  // namespace tara
