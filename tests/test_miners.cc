#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/quest_generator.h"
#include "mining/apriori.h"
#include "mining/eclat.h"
#include "mining/fp_growth.h"
#include "mining/frequent_itemset.h"
#include "mining/h_mine.h"
#include "txdb/transaction_database.h"

namespace tara {
namespace {

std::unique_ptr<FrequentItemsetMiner> MakeMiner(const std::string& name) {
  if (name == "apriori") return std::make_unique<AprioriMiner>();
  if (name == "fp-growth") return std::make_unique<FpGrowthMiner>();
  if (name == "eclat") return std::make_unique<EclatMiner>();
  return std::make_unique<HMineMiner>();
}

/// Exhaustive reference: enumerates every itemset over a small item
/// universe and counts by scanning.
std::vector<FrequentItemset> BruteForceMine(const TransactionDatabase& db,
                                            uint64_t min_count,
                                            uint32_t max_size) {
  const ItemId bound = db.item_bound();
  EXPECT_LE(bound, 16u) << "brute force only for tiny universes";
  std::vector<FrequentItemset> out;
  for (uint32_t mask = 1; mask < (1u << bound); ++mask) {
    Itemset items;
    for (ItemId i = 0; i < bound; ++i) {
      if (mask & (1u << i)) items.push_back(i);
    }
    if (max_size != 0 && items.size() > max_size) continue;
    const uint64_t count = db.CountContaining(items);
    if (count >= min_count) out.push_back(FrequentItemset{items, count});
  }
  return out;
}

TransactionDatabase RandomTinyDatabase(uint64_t seed, size_t transactions,
                                       ItemId universe, double density) {
  Rng rng(seed);
  TransactionDatabase db;
  for (size_t t = 0; t < transactions; ++t) {
    Itemset items;
    for (ItemId i = 0; i < universe; ++i) {
      if (rng.NextBool(density)) items.push_back(i);
    }
    if (items.empty()) items.push_back(static_cast<ItemId>(
        rng.NextBounded(universe)));
    db.Append(static_cast<Timestamp>(t), items);
  }
  return db;
}

struct MinerCase {
  std::string miner;
  uint64_t seed;
};

class MinerCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(MinerCorrectnessTest, MatchesBruteForceOnRandomData) {
  const auto& [miner_name, seed] = GetParam();
  const TransactionDatabase db = RandomTinyDatabase(seed, 40, 8, 0.35);
  const std::unique_ptr<FrequentItemsetMiner> miner = MakeMiner(miner_name);
  for (uint64_t min_count : {1u, 2u, 4u, 8u}) {
    FrequentItemsetMiner::Options options;
    options.min_count = min_count;
    std::vector<FrequentItemset> got = miner->Mine(db, 0, db.size(), options);
    std::vector<FrequentItemset> want = BruteForceMine(db, min_count, 0);
    SortItemsets(&got);
    SortItemsets(&want);
    ASSERT_EQ(got.size(), want.size())
        << miner_name << " min_count=" << min_count;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].items, want[i].items);
      EXPECT_EQ(got[i].count, want[i].count);
    }
  }
}

TEST_P(MinerCorrectnessTest, HonorsMaxSize) {
  const auto& [miner_name, seed] = GetParam();
  const TransactionDatabase db = RandomTinyDatabase(seed + 1000, 30, 8, 0.4);
  const std::unique_ptr<FrequentItemsetMiner> miner = MakeMiner(miner_name);
  FrequentItemsetMiner::Options options;
  options.min_count = 2;
  options.max_size = 2;
  std::vector<FrequentItemset> got = miner->Mine(db, 0, db.size(), options);
  std::vector<FrequentItemset> want = BruteForceMine(db, 2, 2);
  SortItemsets(&got);
  SortItemsets(&want);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].items, want[i].items);
    EXPECT_LE(got[i].items.size(), 2u);
  }
}

TEST_P(MinerCorrectnessTest, MinesSubrangesIndependently) {
  const auto& [miner_name, seed] = GetParam();
  const TransactionDatabase db = RandomTinyDatabase(seed + 2000, 60, 6, 0.4);
  const std::unique_ptr<FrequentItemsetMiner> miner = MakeMiner(miner_name);
  FrequentItemsetMiner::Options options;
  options.min_count = 3;
  // Mining [0, 30) must only reflect those transactions.
  std::vector<FrequentItemset> got = miner->Mine(db, 0, 30, options);
  for (const FrequentItemset& f : got) {
    EXPECT_EQ(f.count, db.CountContaining(f.items, 0, 30));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMiners, MinerCorrectnessTest,
    ::testing::Combine(::testing::Values("apriori", "fp-growth", "h-mine", "eclat"),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

TEST(MinerEquivalenceTest, AllFourAgreeOnQuestData) {
  QuestGenerator::Params params;
  params.num_transactions = 800;
  params.num_items = 60;
  params.num_patterns = 30;
  params.avg_transaction_len = 8;
  params.seed = 99;
  const TransactionDatabase db = QuestGenerator(params).Generate();

  FrequentItemsetMiner::Options options;
  options.min_count = MinCountForSupport(0.02, db.size());
  options.max_size = 5;

  std::vector<FrequentItemset> apriori =
      AprioriMiner().Mine(db, 0, db.size(), options);
  std::vector<FrequentItemset> fp =
      FpGrowthMiner().Mine(db, 0, db.size(), options);
  std::vector<FrequentItemset> hmine =
      HMineMiner().Mine(db, 0, db.size(), options);
  std::vector<FrequentItemset> eclat =
      EclatMiner().Mine(db, 0, db.size(), options);
  SortItemsets(&apriori);
  SortItemsets(&fp);
  SortItemsets(&hmine);
  SortItemsets(&eclat);

  ASSERT_FALSE(apriori.empty());
  ASSERT_EQ(apriori.size(), fp.size());
  ASSERT_EQ(apriori.size(), hmine.size());
  ASSERT_EQ(apriori.size(), eclat.size());
  for (size_t i = 0; i < apriori.size(); ++i) {
    EXPECT_EQ(apriori[i].items, fp[i].items);
    EXPECT_EQ(apriori[i].count, fp[i].count);
    EXPECT_EQ(apriori[i].items, hmine[i].items);
    EXPECT_EQ(apriori[i].count, hmine[i].count);
    EXPECT_EQ(apriori[i].items, eclat[i].items);
    EXPECT_EQ(apriori[i].count, eclat[i].count);
  }
}

TEST(MinCountForSupportTest, CeilsAndClampsToOne) {
  EXPECT_EQ(MinCountForSupport(0.1, 100), 10u);
  EXPECT_EQ(MinCountForSupport(0.101, 100), 11u);
  EXPECT_EQ(MinCountForSupport(0.0, 100), 1u);
  EXPECT_EQ(MinCountForSupport(0.001, 100), 1u);
  EXPECT_EQ(MinCountForSupport(1.0, 100), 100u);
}

}  // namespace
}  // namespace tara
