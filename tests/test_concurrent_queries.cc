// Multi-threaded stress test of the online query path: N threads hammer
// Q1-Q5 and the roll-up operations against one finished engine, and every
// answer must equal the single-threaded baseline computed up front. Run
// under ThreadSanitizer (tools/run_tsan.sh) this also proves the const
// query path performs no hidden mutation — including metric recording,
// which the fixture leaves ENABLED so the relaxed-atomic instrument
// writes are exercised under the race detector.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/exploration.h"
#include "core/tara_engine.h"
#include "datagen/basket_generators.h"
#include "obs/metrics.h"
#include "txdb/evolving_database.h"

namespace tara {
namespace {

class ConcurrentQueriesTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kWindows = 4;

  ConcurrentQueriesTest() : engine_(MakeOptions(&registry_)) {
    BasketGenerator::Params params = BasketGenerator::RetailPreset();
    params.num_transactions = 1000;
    params.num_items = 200;
    const BasketGenerator gen(params);
    EvolvingDatabase data;
    for (uint32_t w = 0; w < kWindows; ++w) {
      data.AppendBatch(gen.GenerateBatch(w, w * 1000).transactions());
    }
    engine_.BuildAll(data);
    all_ = engine_.AllWindows();
  }

  static TaraEngine::Options MakeOptions(obs::MetricsRegistry* registry) {
    TaraEngine::Options options;
    options.min_support_floor = 0.005;
    options.min_confidence_floor = 0.1;
    options.max_itemset_size = 4;
    options.build_content_index = true;  // Q5 needs the content index
    options.metrics = registry;
    return options;
  }

  // Declared before engine_: the registry must outlive the engine.
  obs::MetricsRegistry registry_;
  TaraEngine engine_;
  WindowSet all_;
  const ParameterSetting setting_{0.01, 0.3};
};

TEST_F(ConcurrentQueriesTest, QueriesMatchSingleThreadedBaselines) {
  const WindowId anchor = kWindows - 1;

  // Single-threaded baselines, computed before any concurrency starts.
  const auto base_q1 =
      engine_.TrajectoryQuery(anchor, setting_, all_).value();
  ASSERT_FALSE(base_q1.rules.empty());
  const ParameterSetting second{0.02, 0.4};
  const auto base_q2 =
      engine_.CompareSettings(setting_, second, all_, MatchMode::kExact)
          .value();
  const RegionInfo base_q3 =
      engine_.RecommendRegion(anchor, setting_).value();
  const RuleId probe_rule = base_q1.rules[0];
  const TrajectoryMeasures base_q4 =
      engine_.RuleMeasures(probe_rule, all_).value();
  const Itemset probe_items = {
      engine_.catalog().rule(probe_rule).antecedent[0]};
  const auto base_q5 =
      engine_.ContentQuery(anchor, probe_items, setting_).value();
  const RollUpBound base_rollup =
      engine_.RollUpRule(probe_rule, all_).value();
  const auto base_mined = engine_.MineRolledUp(all_, setting_).value();
  const auto base_window = engine_.MineWindow(anchor, setting_).value();

  const unsigned hw = std::thread::hardware_concurrency();
  const size_t num_threads = hw > 1 ? (hw > 8 ? 8 : hw) : 4;
  constexpr int kItersPerThread = 25;
  std::atomic<int> failures{0};

  auto worker = [&](size_t tid) {
    for (int i = 0; i < kItersPerThread; ++i) {
      // Each thread builds its own WindowSet too, exercising the catalog
      // and window accessors concurrently.
      const WindowSet mine = engine_.AllWindows();
      const auto q1 = engine_.TrajectoryQuery(anchor, setting_, mine).value();
      if (q1.rules != base_q1.rules) failures.fetch_add(1);

      const auto q2 =
          engine_.CompareSettings(setting_, second, mine, MatchMode::kExact)
              .value();
      if (q2.only_first != base_q2.only_first ||
          q2.only_second != base_q2.only_second) {
        failures.fetch_add(1);
      }

      const RegionInfo q3 = engine_.RecommendRegion(anchor, setting_).value();
      if (q3.result_size != base_q3.result_size ||
          q3.support_lower != base_q3.support_lower) {
        failures.fetch_add(1);
      }

      const TrajectoryMeasures q4 =
          engine_.RuleMeasures(probe_rule, mine).value();
      if (q4.coverage != base_q4.coverage ||
          q4.mean_support != base_q4.mean_support) {
        failures.fetch_add(1);
      }

      const auto q5 =
          engine_.ContentQuery(anchor, probe_items, setting_).value();
      if (q5 != base_q5) failures.fetch_add(1);

      const RollUpBound ru = engine_.RollUpRule(probe_rule, mine).value();
      if (ru.support_lo != base_rollup.support_lo ||
          ru.confidence_hi != base_rollup.confidence_hi) {
        failures.fetch_add(1);
      }

      // Rejections must also be concurrency-safe: a sub-floor setting
      // comes back as an error value (rejected counter only), never an
      // abort or a race.
      const auto rejected =
          engine_.MineWindow(anchor, ParameterSetting{0.0001, 0.3});
      if (rejected.has_value() ||
          rejected.error().code != QueryError::Code::kSupportBelowFloor) {
        failures.fetch_add(1);
      }

      // Stagger the heavier calls so threads interleave different queries.
      if ((i + tid) % 3 == 0) {
        const auto mined = engine_.MineRolledUp(mine, setting_).value();
        if (mined.certain != base_mined.certain) failures.fetch_add(1);
      }
      if ((i + tid) % 2 == 0) {
        if (engine_.MineWindow(anchor, setting_).value() != base_window) {
          failures.fetch_add(1);
        }
      }
    }
  };

  std::vector<std::thread> threads;
  for (size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Concurrent recording must not lose samples: every rejection above is
  // in the rejected counter, and each per-kind histogram holds exactly
  // the calls made of that kind (relaxed atomics still count exactly —
  // only ordering is relaxed).
  const uint64_t per_thread = static_cast<uint64_t>(kItersPerThread);
  const uint64_t n = static_cast<uint64_t>(num_threads);
  EXPECT_EQ(registry_.GetCounter("tara.query.rejected")->Value(),
            n * per_thread);
  const auto* trajectory =
      registry_.GetHistogram("tara.query.trajectory.latency_ns");
  // +1 for the single-threaded baseline.
  EXPECT_EQ(trajectory->Count(), n * per_thread + 1);
  EXPECT_GT(registry_.GetCounter("tara.query.ok")->Value(),
            6 * n * per_thread);
}

TEST_F(ConcurrentQueriesTest, ExplorationServiceIsConcurrencySafe) {
  const ExplorationService service(&engine_);
  const auto base_stable = service.TopStable(all_, setting_, 5).value();
  const auto base_emerging = service.TopEmerging(all_, setting_, 5).value();

  std::atomic<int> failures{0};
  auto worker = [&] {
    for (int i = 0; i < 10; ++i) {
      const auto stable = service.TopStable(all_, setting_, 5).value();
      if (stable.size() != base_stable.size() ||
          (!stable.empty() && stable[0].rule != base_stable[0].rule)) {
        failures.fetch_add(1);
      }
      const auto emerging = service.TopEmerging(all_, setting_, 5).value();
      if (emerging.size() != base_emerging.size()) failures.fetch_add(1);
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ConcurrentQueriesTest, SnapshotsAreSafeWhileRecordersRun) {
  // Readers (SnapshotText/SnapshotJson) race benignly with recorders;
  // under TSan this proves snapshotting needs no stop-the-world.
  std::atomic<bool> stop{false};
  std::thread recorder([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)engine_.MineWindow(0, setting_);
    }
  });
  for (int i = 0; i < 50; ++i) {
    const std::string text = registry_.SnapshotText();
    const std::string json = registry_.SnapshotJson();
    EXPECT_NE(text.find("tara.query.mine_window.latency_ns"),
              std::string::npos);
    EXPECT_NE(json.find("\"tara.query.ok\""), std::string::npos);
  }
  stop.store(true);
  recorder.join();
}

}  // namespace
}  // namespace tara
