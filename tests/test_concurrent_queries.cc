// Multi-threaded stress test of the online query path: N threads hammer
// Q1-Q5 and the roll-up operations against one finished engine, and every
// answer must equal the single-threaded baseline computed up front. Run
// under ThreadSanitizer (tools/run_tsan.sh) this also proves the const
// query path performs no hidden mutation.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/exploration.h"
#include "core/tara_engine.h"
#include "datagen/basket_generators.h"
#include "txdb/evolving_database.h"

namespace tara {
namespace {

class ConcurrentQueriesTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kWindows = 4;

  ConcurrentQueriesTest() : engine_(MakeOptions()) {
    BasketGenerator::Params params = BasketGenerator::RetailPreset();
    params.num_transactions = 1000;
    params.num_items = 200;
    const BasketGenerator gen(params);
    EvolvingDatabase data;
    for (uint32_t w = 0; w < kWindows; ++w) {
      data.AppendBatch(gen.GenerateBatch(w, w * 1000).transactions());
    }
    engine_.BuildAll(data);
    all_ = engine_.AllWindows();
  }

  static TaraEngine::Options MakeOptions() {
    TaraEngine::Options options;
    options.min_support_floor = 0.005;
    options.min_confidence_floor = 0.1;
    options.max_itemset_size = 4;
    options.build_content_index = true;  // Q5 needs the content index
    return options;
  }

  TaraEngine engine_;
  WindowSet all_;
  const ParameterSetting setting_{0.01, 0.3};
};

TEST_F(ConcurrentQueriesTest, QueriesMatchSingleThreadedBaselines) {
  const WindowId anchor = kWindows - 1;

  // Single-threaded baselines, computed before any concurrency starts.
  const auto base_q1 = engine_.TrajectoryQuery(anchor, setting_, all_);
  ASSERT_FALSE(base_q1.rules.empty());
  const ParameterSetting second{0.02, 0.4};
  const auto base_q2 =
      engine_.CompareSettings(setting_, second, all_, MatchMode::kExact);
  const RegionInfo base_q3 = engine_.RecommendRegion(anchor, setting_);
  const RuleId probe_rule = base_q1.rules[0];
  const TrajectoryMeasures base_q4 = engine_.RuleMeasures(probe_rule, all_);
  const Itemset probe_items = {
      engine_.catalog().rule(probe_rule).antecedent[0]};
  const auto base_q5 = engine_.ContentQuery(anchor, probe_items, setting_);
  const RollUpBound base_rollup = engine_.RollUpRule(probe_rule, all_);
  const auto base_mined = engine_.MineRolledUp(all_, setting_);
  const auto base_window = engine_.MineWindow(anchor, setting_);

  const unsigned hw = std::thread::hardware_concurrency();
  const size_t num_threads = hw > 1 ? (hw > 8 ? 8 : hw) : 4;
  constexpr int kItersPerThread = 25;
  std::atomic<int> failures{0};

  auto worker = [&](size_t tid) {
    for (int i = 0; i < kItersPerThread; ++i) {
      // Each thread builds its own WindowSet too, exercising the catalog
      // and window accessors concurrently.
      const WindowSet mine = engine_.AllWindows();
      const auto q1 = engine_.TrajectoryQuery(anchor, setting_, mine);
      if (q1.rules != base_q1.rules) failures.fetch_add(1);

      const auto q2 =
          engine_.CompareSettings(setting_, second, mine, MatchMode::kExact);
      if (q2.only_first != base_q2.only_first ||
          q2.only_second != base_q2.only_second) {
        failures.fetch_add(1);
      }

      const RegionInfo q3 = engine_.RecommendRegion(anchor, setting_);
      if (q3.result_size != base_q3.result_size ||
          q3.support_lower != base_q3.support_lower) {
        failures.fetch_add(1);
      }

      const TrajectoryMeasures q4 = engine_.RuleMeasures(probe_rule, mine);
      if (q4.coverage != base_q4.coverage ||
          q4.mean_support != base_q4.mean_support) {
        failures.fetch_add(1);
      }

      const auto q5 = engine_.ContentQuery(anchor, probe_items, setting_);
      if (q5 != base_q5) failures.fetch_add(1);

      const RollUpBound ru = engine_.RollUpRule(probe_rule, mine);
      if (ru.support_lo != base_rollup.support_lo ||
          ru.confidence_hi != base_rollup.confidence_hi) {
        failures.fetch_add(1);
      }

      // Stagger the heavier calls so threads interleave different queries.
      if ((i + tid) % 3 == 0) {
        const auto mined = engine_.MineRolledUp(mine, setting_);
        if (mined.certain != base_mined.certain) failures.fetch_add(1);
      }
      if ((i + tid) % 2 == 0) {
        if (engine_.MineWindow(anchor, setting_) != base_window) {
          failures.fetch_add(1);
        }
      }
    }
  };

  std::vector<std::thread> threads;
  for (size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ConcurrentQueriesTest, ExplorationServiceIsConcurrencySafe) {
  const ExplorationService service(&engine_);
  const auto base_stable = service.TopStable(all_, setting_, 5);
  const auto base_emerging = service.TopEmerging(all_, setting_, 5);

  std::atomic<int> failures{0};
  auto worker = [&] {
    for (int i = 0; i < 10; ++i) {
      const auto stable = service.TopStable(all_, setting_, 5);
      if (stable.size() != base_stable.size() ||
          (!stable.empty() && stable[0].rule != base_stable[0].rule)) {
        failures.fetch_add(1);
      }
      const auto emerging = service.TopEmerging(all_, setting_, 5);
      if (emerging.size() != base_emerging.size()) failures.fetch_add(1);
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace tara
