// Segmented (directory-backed) knowledge-base persistence: round-trips,
// the O(new window) append contract, and rejection of every kind of
// on-disk damage as a LoadError value rather than a crash.

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crash_point.h"
#include "common/rng.h"
#include "core/kb_open.h"
#include "core/kb_storage.h"
#include "core/serialization.h"
#include "core/tara_engine.h"
#include "datagen/quest_generator.h"
#include "txdb/evolving_database.h"

namespace tara {
namespace {

namespace fs = std::filesystem;

EvolvingDatabase MakeData(uint32_t windows) {
  QuestGenerator::Params params;
  params.num_transactions = 500 * windows;
  params.num_items = 80;
  params.num_patterns = 40;
  params.avg_transaction_len = 8;
  params.seed = 77;
  const TransactionDatabase db = QuestGenerator(params).Generate();
  return EvolvingDatabase::PartitionIntoBatches(db, windows);
}

TaraEngine BuildEngine(const EvolvingDatabase& data) {
  TaraEngine::Options options;
  options.min_support_floor = 0.01;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 4;
  TaraEngine engine(options);
  engine.BuildAll(data);
  return engine;
}

/// Eager open through the unified entry point (the legacy
/// LoadKnowledgeBaseDir shim keeps its own smoke test below).
Expected<TaraEngine, LoadError> Load(const std::string& dir) {
  OpenOptions options;
  options.kb_dir = dir;
  return OpenKnowledgeBase(options);
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteFile(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class KbStorageTest : public ::testing::Test {
 protected:
  // The pid keeps concurrent suite runs (e.g. plain + sanitized build
  // trees on one machine) from clobbering each other's fixtures.
  KbStorageTest()
      : dir_(fs::path(::testing::TempDir()) /
             ("kb_storage_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name())) {
    fs::remove_all(dir_);
  }
  ~KbStorageTest() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(KbStorageTest, DirectoryRoundTripPreservesQueryAnswers) {
  const EvolvingDatabase data = MakeData(4);
  const TaraEngine original = BuildEngine(data);
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*original.Snapshot(), dir_.string()).has_value());

  // Layout: one manifest plus one segment file per window.
  EXPECT_TRUE(fs::exists(dir_ / "manifest.tarakb"));
  for (uint32_t w = 0; w < 4; ++w) {
    char name[32];
    std::snprintf(name, sizeof(name), "window-%06u.seg", w);
    EXPECT_TRUE(fs::exists(dir_ / name)) << name;
  }

  const auto loaded = Load(dir_.string());
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  const TaraEngine& engine = *loaded;
  EXPECT_EQ(engine.window_count(), original.window_count());
  EXPECT_EQ(engine.catalog().size(), original.catalog().size());
  const ParameterSetting setting{0.02, 0.3};
  for (WindowId w = 0; w < original.window_count(); ++w) {
    EXPECT_EQ(engine.MineWindow(w, setting).value(),
              original.MineWindow(w, setting).value());
  }
  // Loaded-then-streamed equals streamed directly: the directory holds
  // exactly the same segmented bytes as the single-stream format.
  EXPECT_EQ(KnowledgeBaseToString(engine), KnowledgeBaseToString(original));
}

TEST_F(KbStorageTest, AppendRewritesOnlyNewSegmentsAndManifest) {
  const EvolvingDatabase data = MakeData(4);

  // Save the first three windows, then append the fourth live.
  TaraEngine engine = BuildEngine(EvolvingDatabase());
  for (uint32_t w = 0; w < 3; ++w) {
    const WindowInfo& info = data.window(w);
    engine.AppendWindow(data.database(), info.begin, info.end);
  }
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());
  std::vector<std::string> old_segments;
  for (uint32_t w = 0; w < 3; ++w) {
    char name[32];
    std::snprintf(name, sizeof(name), "window-%06u.seg", w);
    old_segments.push_back(ReadFile(dir_ / name));
  }

  const WindowInfo& info = data.window(3);
  engine.AppendWindow(data.database(), info.begin, info.end);
  ASSERT_FALSE(
      AppendKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());

  // The three old segment files are byte-identical — append touched only
  // window-000003.seg and the manifest.
  for (uint32_t w = 0; w < 3; ++w) {
    char name[32];
    std::snprintf(name, sizeof(name), "window-%06u.seg", w);
    EXPECT_EQ(ReadFile(dir_ / name), old_segments[w]) << name;
  }
  EXPECT_TRUE(fs::exists(dir_ / "window-000003.seg"));

  // And the appended directory loads to the same knowledge base as a
  // from-scratch build over all four windows.
  const auto loaded = Load(dir_.string());
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  EXPECT_EQ(KnowledgeBaseToString(*loaded),
            KnowledgeBaseToString(BuildEngine(data)));
}

TEST_F(KbStorageTest, AppendIntoEmptyDirectoryDoesAFullSave) {
  const EvolvingDatabase data = MakeData(2);
  const TaraEngine engine = BuildEngine(data);
  ASSERT_FALSE(
      AppendKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());
  const auto loaded = Load(dir_.string());
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  EXPECT_EQ(loaded->window_count(), 2u);
}

TEST_F(KbStorageTest, AppendRefusesAMismatchedDirectory) {
  const TaraEngine first = BuildEngine(MakeData(3));
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*first.Snapshot(), dir_.string()).has_value());

  // A different engine (different floors) must not append over it.
  TaraEngine::Options options;
  options.min_support_floor = 0.02;
  options.min_confidence_floor = 0.2;
  TaraEngine other(options);
  const auto error = AppendKnowledgeBaseDir(*other.Snapshot(), dir_.string());
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, LoadError::Code::kBadManifest);
}

TEST_F(KbStorageTest, RejectsCorruptedSegment) {
  const TaraEngine engine = BuildEngine(MakeData(3));
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());

  const fs::path victim = dir_ / "window-000001.seg";
  std::string bytes = ReadFile(victim);
  ASSERT_GT(bytes.size(), 16u);
  bytes[bytes.size() / 2] ^= 0x5a;  // flip bits mid-segment
  WriteFile(victim, bytes);

  const auto loaded = Load(dir_.string());
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, LoadError::Code::kCorruptSegment);
  EXPECT_NE(loaded.error().message.find("window 1"), std::string::npos)
      << loaded.error().message;
}

TEST_F(KbStorageTest, RejectsTruncatedSegmentFile) {
  const TaraEngine engine = BuildEngine(MakeData(2));
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());
  const fs::path victim = dir_ / "window-000000.seg";
  const std::string bytes = ReadFile(victim);
  WriteFile(victim, bytes.substr(0, bytes.size() / 2));
  const auto loaded = Load(dir_.string());
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, LoadError::Code::kCorruptSegment);
}

TEST_F(KbStorageTest, RejectsTruncatedOrGarbageManifest) {
  const TaraEngine engine = BuildEngine(MakeData(2));
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());
  const fs::path manifest = dir_ / "manifest.tarakb";
  const std::string bytes = ReadFile(manifest);

  WriteFile(manifest, bytes.substr(0, bytes.size() - 5));
  auto loaded = Load(dir_.string());
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, LoadError::Code::kTruncated);

  WriteFile(manifest, "definitely not a manifest");
  loaded = Load(dir_.string());
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, LoadError::Code::kBadMagic);

  WriteFile(manifest, bytes + "tail");
  loaded = Load(dir_.string());
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, LoadError::Code::kTrailingBytes);
}

// Corruption fuzz smoke: seeded single-byte flips and truncations of a
// valid serialized knowledge base. Every mutation must come back as a
// loaded engine or a typed LoadError — never a crash, hang, or (under
// the ASan preset) a leak. A flipped byte may land somewhere the decoder
// legitimately tolerates (a rule's count, say), so a successful load is
// acceptable; an abort is not.
TEST(KbStorageFuzz, SingleByteFlipsNeverCrashTheStreamLoader) {
  const TaraEngine engine = BuildEngine(MakeData(2));
  const std::string valid = KnowledgeBaseToString(engine);
  ASSERT_GT(valid.size(), 256u);
  ASSERT_TRUE(KnowledgeBaseFromString(valid).has_value());

  Rng rng(0xF00DF00D);
  int rejected = 0;
  constexpr int kFlips = 150;
  for (int i = 0; i < kFlips; ++i) {
    std::string mutated = valid;
    const size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] ^= static_cast<char>(1 + rng.NextBounded(255));
    const auto loaded = KnowledgeBaseFromString(mutated);
    if (!loaded.has_value()) {
      ++rejected;
      EXPECT_FALSE(loaded.error().message.empty());
    }
  }
  // The format is dense: the vast majority of flips must be detected.
  EXPECT_GT(rejected, kFlips / 2);
}

TEST(KbStorageFuzz, TruncationsNeverCrashTheStreamLoader) {
  const TaraEngine engine = BuildEngine(MakeData(2));
  const std::string valid = KnowledgeBaseToString(engine);

  Rng rng(0xBADC0FFE);
  for (int i = 0; i < 50; ++i) {
    const auto loaded =
        KnowledgeBaseFromString(valid.substr(0, rng.NextBounded(valid.size())));
    // A strict prefix can never be a whole knowledge base.
    ASSERT_FALSE(loaded.has_value());
    EXPECT_FALSE(loaded.error().message.empty());
  }
  // Every exact-boundary truncation near the tail as well.
  for (size_t cut = valid.size() - 16; cut < valid.size(); ++cut) {
    ASSERT_FALSE(KnowledgeBaseFromString(valid.substr(0, cut)).has_value());
  }
}

TEST_F(KbStorageTest, ManifestByteFlipsNeverCrashTheDirectoryLoader) {
  const TaraEngine engine = BuildEngine(MakeData(2));
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());
  const fs::path manifest = dir_ / "manifest.tarakb";
  const std::string valid = ReadFile(manifest);

  Rng rng(0xD15EA5E);
  int rejected = 0;
  constexpr int kFlips = 50;
  for (int i = 0; i < kFlips; ++i) {
    std::string mutated = valid;
    const size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] ^= static_cast<char>(1 + rng.NextBounded(255));
    WriteFile(manifest, mutated);
    if (!Load(dir_.string()).has_value()) ++rejected;
  }
  EXPECT_GT(rejected, kFlips / 2);

  // Restored manifest loads again: the fuzz loop left no side effects.
  WriteFile(manifest, valid);
  EXPECT_TRUE(Load(dir_.string()).has_value());
}

TEST_F(KbStorageTest, ZeroLengthManifestIsATypedTornWriteError) {
  // The signature damage of the old in-place truncating rewrite: a
  // crash after open(trunc) but before the write left a 0-byte
  // manifest. The loader must name the torn write, not crash or claim
  // "wrong file format".
  const TaraEngine engine = BuildEngine(MakeData(2));
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());
  WriteFile(dir_ / "manifest.tarakb", "");
  const auto loaded = Load(dir_.string());
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, LoadError::Code::kTruncated);
  EXPECT_NE(loaded.error().message.find("zero-length"), std::string::npos)
      << loaded.error().message;
  // Appending over it refuses for the same typed reason.
  const auto append = AppendKnowledgeBaseDir(*engine.Snapshot(), dir_.string());
  ASSERT_TRUE(append.has_value());
  EXPECT_EQ(append->code, LoadError::Code::kTruncated);
}

TEST_F(KbStorageTest, CleanSavesLeaveNoTempFiles) {
  TaraEngine engine = BuildEngine(EvolvingDatabase());
  const EvolvingDatabase data = MakeData(3);
  for (uint32_t w = 0; w < 2; ++w) {
    const WindowInfo& info = data.window(w);
    engine.AppendWindow(data.database(), info.begin, info.end);
  }
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());
  const WindowInfo& info = data.window(2);
  engine.AppendWindow(data.database(), info.begin, info.end);
  ASSERT_FALSE(
      AppendKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
}

// Crash-point matrix: kill the process (SIGKILL, no destructors — the
// user-space stand-in for a power cut) between every pair of durability
// steps inside AppendKnowledgeBaseDir, then require the directory to
// load as either the old 3-window prefix or the full 4-window KB,
// byte-identical to an uncrashed reference either way. Exercises every
// write/fsync/rename/dirsync boundary until one run completes cleanly.
TEST_F(KbStorageTest, AppendSurvivesACrashAtEveryDurabilityStep) {
  const EvolvingDatabase data = MakeData(4);
  TaraEngine engine = BuildEngine(EvolvingDatabase());
  for (uint32_t w = 0; w < 3; ++w) {
    const WindowInfo& info = data.window(w);
    engine.AppendWindow(data.database(), info.begin, info.end);
  }
  const fs::path seed_dir = dir_ / "seed";
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*engine.Snapshot(), seed_dir.string()).has_value());
  const std::string reference3 = KnowledgeBaseToString(engine);
  const WindowInfo& info = data.window(3);
  engine.AppendWindow(data.database(), info.begin, info.end);
  const std::string reference4 = KnowledgeBaseToString(engine);

  bool completed_cleanly = false;
  for (long crash_at = 0; crash_at < 64 && !completed_cleanly; ++crash_at) {
    const fs::path trial = dir_ / ("trial_" + std::to_string(crash_at));
    fs::remove_all(trial);
    fs::copy(seed_dir, trial);
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      // Forked child: arm the injector, run the append, report a clean
      // pass via the exit code. _exit skips gtest/atexit teardown.
      ArmCrashPoint(crash_at);
      const auto error =
          AppendKnowledgeBaseDir(*engine.Snapshot(), trial.string());
      _exit(error.has_value() ? 2 : 0);
    }
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    if (WIFEXITED(status)) {
      ASSERT_EQ(WEXITSTATUS(status), 0) << "append failed in the child";
      completed_cleanly = true;  // injector ran out of crossings
    } else {
      ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
          << "unexpected child termination, status " << status;
    }
    // Killed or not, the directory must load — to the old prefix or the
    // fully-appended KB, never anything else and never an error.
    const auto loaded = Load(trial.string());
    ASSERT_TRUE(loaded.has_value())
        << "crash point " << crash_at << ": " << loaded.error();
    const std::string recovered = KnowledgeBaseToString(*loaded);
    if (loaded->window_count() == 3u) {
      EXPECT_EQ(recovered, reference3) << "crash point " << crash_at;
      EXPECT_FALSE(completed_cleanly)
          << "a clean append must surface the new window";
    } else {
      ASSERT_EQ(loaded->window_count(), 4u) << "crash point " << crash_at;
      EXPECT_EQ(recovered, reference4) << "crash point " << crash_at;
    }
  }
  EXPECT_TRUE(completed_cleanly)
      << "crash-point matrix never exhausted the injection sites";
}

TEST_F(KbStorageTest, RejectsMissingPieces) {
  // No directory / no manifest at all.
  auto loaded = Load((dir_ / "nowhere").string());
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, LoadError::Code::kIoError);

  const TaraEngine engine = BuildEngine(MakeData(2));
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());
  fs::remove(dir_ / "window-000001.seg");
  loaded = Load(dir_.string());
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, LoadError::Code::kIoError);
}

// The deprecated entry points must keep compiling and working — they
// route through OpenKnowledgeBase (so TARAKB3 directories work through
// them too) after a one-time stderr deprecation note.
TEST_F(KbStorageTest, LegacyLoaderShimsStillWork) {
  const EvolvingDatabase data = MakeData(2);
  const TaraEngine original = BuildEngine(data);
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*original.Snapshot(), dir_.string()).has_value());

  const auto loaded = LoadKnowledgeBaseDir(dir_.string());
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  EXPECT_EQ(loaded->window_count(), original.window_count());
  EXPECT_EQ(KnowledgeBaseToString(*loaded), KnowledgeBaseToString(original));

  // RecoverKnowledgeBase without an existing WAL creates one over the
  // checkpoint, exactly as before the redesign.
  const std::string wal_dir = (dir_ / "wal").string();
  const auto recovered = RecoverKnowledgeBase(dir_.string(), wal_dir);
  ASSERT_TRUE(recovered.has_value()) << recovered.error();
  EXPECT_EQ(recovered->window_count(), original.window_count());
  EXPECT_TRUE(recovered->wal_attached());
}

}  // namespace
}  // namespace tara
