// Segmented (directory-backed) knowledge-base persistence: round-trips,
// the O(new window) append contract, and rejection of every kind of
// on-disk damage as a LoadError value rather than a crash.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/kb_storage.h"
#include "core/serialization.h"
#include "core/tara_engine.h"
#include "datagen/quest_generator.h"
#include "txdb/evolving_database.h"

namespace tara {
namespace {

namespace fs = std::filesystem;

EvolvingDatabase MakeData(uint32_t windows) {
  QuestGenerator::Params params;
  params.num_transactions = 500 * windows;
  params.num_items = 80;
  params.num_patterns = 40;
  params.avg_transaction_len = 8;
  params.seed = 77;
  const TransactionDatabase db = QuestGenerator(params).Generate();
  return EvolvingDatabase::PartitionIntoBatches(db, windows);
}

TaraEngine BuildEngine(const EvolvingDatabase& data) {
  TaraEngine::Options options;
  options.min_support_floor = 0.01;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 4;
  TaraEngine engine(options);
  engine.BuildAll(data);
  return engine;
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteFile(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class KbStorageTest : public ::testing::Test {
 protected:
  KbStorageTest()
      : dir_(fs::path(::testing::TempDir()) /
             ("kb_storage_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name())) {
    fs::remove_all(dir_);
  }
  ~KbStorageTest() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(KbStorageTest, DirectoryRoundTripPreservesQueryAnswers) {
  const EvolvingDatabase data = MakeData(4);
  const TaraEngine original = BuildEngine(data);
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*original.Snapshot(), dir_.string()).has_value());

  // Layout: one manifest plus one segment file per window.
  EXPECT_TRUE(fs::exists(dir_ / "manifest.tarakb"));
  for (uint32_t w = 0; w < 4; ++w) {
    char name[32];
    std::snprintf(name, sizeof(name), "window-%06u.seg", w);
    EXPECT_TRUE(fs::exists(dir_ / name)) << name;
  }

  const auto loaded = LoadKnowledgeBaseDir(dir_.string());
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  const TaraEngine& engine = *loaded;
  EXPECT_EQ(engine.window_count(), original.window_count());
  EXPECT_EQ(engine.catalog().size(), original.catalog().size());
  const ParameterSetting setting{0.02, 0.3};
  for (WindowId w = 0; w < original.window_count(); ++w) {
    EXPECT_EQ(engine.MineWindow(w, setting).value(),
              original.MineWindow(w, setting).value());
  }
  // Loaded-then-streamed equals streamed directly: the directory holds
  // exactly the same segmented bytes as the single-stream format.
  EXPECT_EQ(KnowledgeBaseToString(engine), KnowledgeBaseToString(original));
}

TEST_F(KbStorageTest, AppendRewritesOnlyNewSegmentsAndManifest) {
  const EvolvingDatabase data = MakeData(4);

  // Save the first three windows, then append the fourth live.
  TaraEngine engine = BuildEngine(EvolvingDatabase());
  for (uint32_t w = 0; w < 3; ++w) {
    const WindowInfo& info = data.window(w);
    engine.AppendWindow(data.database(), info.begin, info.end);
  }
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());
  std::vector<std::string> old_segments;
  for (uint32_t w = 0; w < 3; ++w) {
    char name[32];
    std::snprintf(name, sizeof(name), "window-%06u.seg", w);
    old_segments.push_back(ReadFile(dir_ / name));
  }

  const WindowInfo& info = data.window(3);
  engine.AppendWindow(data.database(), info.begin, info.end);
  ASSERT_FALSE(
      AppendKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());

  // The three old segment files are byte-identical — append touched only
  // window-000003.seg and the manifest.
  for (uint32_t w = 0; w < 3; ++w) {
    char name[32];
    std::snprintf(name, sizeof(name), "window-%06u.seg", w);
    EXPECT_EQ(ReadFile(dir_ / name), old_segments[w]) << name;
  }
  EXPECT_TRUE(fs::exists(dir_ / "window-000003.seg"));

  // And the appended directory loads to the same knowledge base as a
  // from-scratch build over all four windows.
  const auto loaded = LoadKnowledgeBaseDir(dir_.string());
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  EXPECT_EQ(KnowledgeBaseToString(*loaded),
            KnowledgeBaseToString(BuildEngine(data)));
}

TEST_F(KbStorageTest, AppendIntoEmptyDirectoryDoesAFullSave) {
  const EvolvingDatabase data = MakeData(2);
  const TaraEngine engine = BuildEngine(data);
  ASSERT_FALSE(
      AppendKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());
  const auto loaded = LoadKnowledgeBaseDir(dir_.string());
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  EXPECT_EQ(loaded->window_count(), 2u);
}

TEST_F(KbStorageTest, AppendRefusesAMismatchedDirectory) {
  const TaraEngine first = BuildEngine(MakeData(3));
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*first.Snapshot(), dir_.string()).has_value());

  // A different engine (different floors) must not append over it.
  TaraEngine::Options options;
  options.min_support_floor = 0.02;
  options.min_confidence_floor = 0.2;
  TaraEngine other(options);
  const auto error = AppendKnowledgeBaseDir(*other.Snapshot(), dir_.string());
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, LoadError::Code::kBadManifest);
}

TEST_F(KbStorageTest, RejectsCorruptedSegment) {
  const TaraEngine engine = BuildEngine(MakeData(3));
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());

  const fs::path victim = dir_ / "window-000001.seg";
  std::string bytes = ReadFile(victim);
  ASSERT_GT(bytes.size(), 16u);
  bytes[bytes.size() / 2] ^= 0x5a;  // flip bits mid-segment
  WriteFile(victim, bytes);

  const auto loaded = LoadKnowledgeBaseDir(dir_.string());
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, LoadError::Code::kCorruptSegment);
  EXPECT_NE(loaded.error().message.find("window 1"), std::string::npos)
      << loaded.error().message;
}

TEST_F(KbStorageTest, RejectsTruncatedSegmentFile) {
  const TaraEngine engine = BuildEngine(MakeData(2));
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());
  const fs::path victim = dir_ / "window-000000.seg";
  const std::string bytes = ReadFile(victim);
  WriteFile(victim, bytes.substr(0, bytes.size() / 2));
  const auto loaded = LoadKnowledgeBaseDir(dir_.string());
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, LoadError::Code::kCorruptSegment);
}

TEST_F(KbStorageTest, RejectsTruncatedOrGarbageManifest) {
  const TaraEngine engine = BuildEngine(MakeData(2));
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());
  const fs::path manifest = dir_ / "manifest.tarakb";
  const std::string bytes = ReadFile(manifest);

  WriteFile(manifest, bytes.substr(0, bytes.size() - 5));
  auto loaded = LoadKnowledgeBaseDir(dir_.string());
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, LoadError::Code::kTruncated);

  WriteFile(manifest, "definitely not a manifest");
  loaded = LoadKnowledgeBaseDir(dir_.string());
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, LoadError::Code::kBadMagic);

  WriteFile(manifest, bytes + "tail");
  loaded = LoadKnowledgeBaseDir(dir_.string());
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, LoadError::Code::kTrailingBytes);
}

// Corruption fuzz smoke: seeded single-byte flips and truncations of a
// valid serialized knowledge base. Every mutation must come back as a
// loaded engine or a typed LoadError — never a crash, hang, or (under
// the ASan preset) a leak. A flipped byte may land somewhere the decoder
// legitimately tolerates (a rule's count, say), so a successful load is
// acceptable; an abort is not.
TEST(KbStorageFuzz, SingleByteFlipsNeverCrashTheStreamLoader) {
  const TaraEngine engine = BuildEngine(MakeData(2));
  const std::string valid = KnowledgeBaseToString(engine);
  ASSERT_GT(valid.size(), 256u);
  ASSERT_TRUE(KnowledgeBaseFromString(valid).has_value());

  Rng rng(0xF00DF00D);
  int rejected = 0;
  constexpr int kFlips = 150;
  for (int i = 0; i < kFlips; ++i) {
    std::string mutated = valid;
    const size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] ^= static_cast<char>(1 + rng.NextBounded(255));
    const auto loaded = KnowledgeBaseFromString(mutated);
    if (!loaded.has_value()) {
      ++rejected;
      EXPECT_FALSE(loaded.error().message.empty());
    }
  }
  // The format is dense: the vast majority of flips must be detected.
  EXPECT_GT(rejected, kFlips / 2);
}

TEST(KbStorageFuzz, TruncationsNeverCrashTheStreamLoader) {
  const TaraEngine engine = BuildEngine(MakeData(2));
  const std::string valid = KnowledgeBaseToString(engine);

  Rng rng(0xBADC0FFE);
  for (int i = 0; i < 50; ++i) {
    const auto loaded =
        KnowledgeBaseFromString(valid.substr(0, rng.NextBounded(valid.size())));
    // A strict prefix can never be a whole knowledge base.
    ASSERT_FALSE(loaded.has_value());
    EXPECT_FALSE(loaded.error().message.empty());
  }
  // Every exact-boundary truncation near the tail as well.
  for (size_t cut = valid.size() - 16; cut < valid.size(); ++cut) {
    ASSERT_FALSE(KnowledgeBaseFromString(valid.substr(0, cut)).has_value());
  }
}

TEST_F(KbStorageTest, ManifestByteFlipsNeverCrashTheDirectoryLoader) {
  const TaraEngine engine = BuildEngine(MakeData(2));
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());
  const fs::path manifest = dir_ / "manifest.tarakb";
  const std::string valid = ReadFile(manifest);

  Rng rng(0xD15EA5E);
  int rejected = 0;
  constexpr int kFlips = 50;
  for (int i = 0; i < kFlips; ++i) {
    std::string mutated = valid;
    const size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] ^= static_cast<char>(1 + rng.NextBounded(255));
    WriteFile(manifest, mutated);
    if (!LoadKnowledgeBaseDir(dir_.string()).has_value()) ++rejected;
  }
  EXPECT_GT(rejected, kFlips / 2);

  // Restored manifest loads again: the fuzz loop left no side effects.
  WriteFile(manifest, valid);
  EXPECT_TRUE(LoadKnowledgeBaseDir(dir_.string()).has_value());
}

TEST_F(KbStorageTest, RejectsMissingPieces) {
  // No directory / no manifest at all.
  auto loaded = LoadKnowledgeBaseDir((dir_ / "nowhere").string());
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, LoadError::Code::kIoError);

  const TaraEngine engine = BuildEngine(MakeData(2));
  ASSERT_FALSE(
      SaveKnowledgeBaseDir(*engine.Snapshot(), dir_.string()).has_value());
  fs::remove(dir_ / "window-000001.seg");
  loaded = LoadKnowledgeBaseDir(dir_.string());
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, LoadError::Code::kIoError);
}

}  // namespace
}  // namespace tara
