// The parallel offline build must be an execution detail: any
// Options::parallelism value has to produce a knowledge base that is
// byte-identical, once serialized, to the sequential build's.

#include <string>

#include <gtest/gtest.h>

#include "core/serialization.h"
#include "core/tara_engine.h"
#include "datagen/basket_generators.h"
#include "txdb/evolving_database.h"

namespace tara {
namespace {

EvolvingDatabase MakeData(uint32_t windows, uint32_t seed_offset = 0) {
  BasketGenerator::Params params = BasketGenerator::RetailPreset();
  params.num_transactions = 1200;
  params.num_items = 300;
  const BasketGenerator gen(params);
  EvolvingDatabase data;
  for (uint32_t w = 0; w < windows; ++w) {
    data.AppendBatch(
        gen.GenerateBatch(w + seed_offset, (w + seed_offset) * 1200)
            .transactions());
  }
  return data;
}

TaraEngine::Options BaseOptions() {
  TaraEngine::Options options;
  options.min_support_floor = 0.005;
  options.min_confidence_floor = 0.1;
  options.max_itemset_size = 4;
  return options;
}

std::string BuildSerialized(const EvolvingDatabase& data, uint32_t parallelism,
                            bool content_index) {
  TaraEngine::Options options = BaseOptions();
  options.parallelism = parallelism;
  options.build_content_index = content_index;
  TaraEngine engine(options);
  engine.BuildAll(data);
  return KnowledgeBaseToString(engine);
}

TEST(ParallelBuildTest, ParallelKnowledgeBaseIsByteIdentical) {
  const EvolvingDatabase data = MakeData(6);
  const std::string sequential = BuildSerialized(data, 1, false);
  EXPECT_EQ(BuildSerialized(data, 2, false), sequential);
  EXPECT_EQ(BuildSerialized(data, 4, false), sequential);
  EXPECT_EQ(BuildSerialized(data, 8, false), sequential);
}

TEST(ParallelBuildTest, ByteIdenticalWithContentIndex) {
  const EvolvingDatabase data = MakeData(4);
  EXPECT_EQ(BuildSerialized(data, 4, true), BuildSerialized(data, 1, true));
}

TEST(ParallelBuildTest, HardwareParallelismIsByteIdenticalToo) {
  const EvolvingDatabase data = MakeData(3);
  // parallelism = 0 resolves to the hardware concurrency.
  EXPECT_EQ(BuildSerialized(data, 0, false), BuildSerialized(data, 1, false));
}

TEST(ParallelBuildTest, ParallelEngineAnswersMatchSequential) {
  const EvolvingDatabase data = MakeData(5);
  TaraEngine::Options options = BaseOptions();
  TaraEngine sequential(options);
  sequential.BuildAll(data);
  options.parallelism = 4;
  TaraEngine parallel(options);
  parallel.BuildAll(data);

  ASSERT_EQ(parallel.window_count(), sequential.window_count());
  const ParameterSetting setting{0.008, 0.3};
  for (WindowId w = 0; w < sequential.window_count(); ++w) {
    EXPECT_EQ(parallel.MineWindow(w, setting).value(),
              sequential.MineWindow(w, setting).value())
        << "window " << w;
  }
  const WindowSet all = sequential.AllWindows();
  EXPECT_EQ(parallel
                .MineWindows(parallel.AllWindows(), setting, MatchMode::kExact)
                .value(),
            sequential.MineWindows(all, setting, MatchMode::kExact).value());
}

TEST(ParallelBuildTest, ParallelAppendWindowMatchesSequential) {
  // AppendWindow parallelizes intra-window loops; the committed window must
  // be unchanged.
  const EvolvingDatabase data = MakeData(1);
  TaraEngine::Options options = BaseOptions();
  TaraEngine sequential(options);
  options.parallelism = 4;
  TaraEngine parallel(options);
  const WindowInfo& info = data.window(0);
  sequential.AppendWindow(data.database(), info.begin, info.end);
  parallel.AppendWindow(data.database(), info.begin, info.end);
  EXPECT_EQ(KnowledgeBaseToString(parallel), KnowledgeBaseToString(sequential));
}

TEST(ParallelBuildTest, BuildStatsArePopulatedPerWindow) {
  const EvolvingDatabase data = MakeData(3);
  TaraEngine::Options options = BaseOptions();
  options.parallelism = 4;
  TaraEngine engine(options);
  engine.BuildAll(data);
  ASSERT_EQ(engine.build_stats().size(), 3u);
  for (WindowId w = 0; w < 3; ++w) {
    const auto& stats = engine.build_stats()[w];
    EXPECT_EQ(stats.window, w);
    EXPECT_GT(stats.rule_count, 0u);
    EXPECT_GT(stats.location_count, 0u);
    EXPECT_GE(stats.total_seconds(), 0.0);
  }
}

TEST(OptionsValidateTest, AcceptsDefaultsAndSaneValues) {
  EXPECT_FALSE(TaraEngine::Options{}.Validate().has_value());
  TaraEngine::Options options = BaseOptions();
  options.parallelism = 0;
  options.max_itemset_size = 0;
  EXPECT_FALSE(options.Validate().has_value());
}

TEST(OptionsValidateTest, RejectsOutOfRangeFloors) {
  TaraEngine::Options options = BaseOptions();
  options.min_support_floor = 0.0;
  ASSERT_TRUE(options.Validate().has_value());
  EXPECT_NE(options.Validate()->find("min_support_floor"), std::string::npos);

  options = BaseOptions();
  options.min_support_floor = 1.5;
  EXPECT_TRUE(options.Validate().has_value());

  options = BaseOptions();
  options.min_confidence_floor = -0.1;
  ASSERT_TRUE(options.Validate().has_value());
  EXPECT_NE(options.Validate()->find("min_confidence_floor"),
            std::string::npos);

  options = BaseOptions();
  options.min_confidence_floor = 1.1;
  EXPECT_TRUE(options.Validate().has_value());
}

TEST(OptionsValidateTest, RejectsItemsetCapOfOne) {
  TaraEngine::Options options = BaseOptions();
  options.max_itemset_size = 1;
  ASSERT_TRUE(options.Validate().has_value());
  EXPECT_NE(options.Validate()->find("max_itemset_size"), std::string::npos);
}

TEST(OptionsValidateTest, ConstructorAbortsWithTheValidateMessage) {
  TaraEngine::Options options = BaseOptions();
  options.min_support_floor = -1.0;
  EXPECT_DEATH(TaraEngine{options}, "min_support_floor");
}

}  // namespace
}  // namespace tara
