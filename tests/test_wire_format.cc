// Wire-format tests: request/frame round-trips for every query kind,
// pinned numeric codes, typed rejection of malformed headers and
// payloads, and a seeded corruption fuzz pass — untrusted bytes must
// yield Expected errors, never aborts.

#include "core/wire_format.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/query_request.h"

namespace tara {
namespace {

std::vector<QueryRequest> AllKindsOfRequests() {
  const ParameterSetting setting{0.02, 0.4};
  const ParameterSetting other{0.05, 0.5};
  std::vector<QueryRequest> requests;
  requests.push_back(QueryRequest::MineWindow(3, setting));
  requests.push_back(
      QueryRequest::MineWindows({0, 2, 5}, setting, MatchMode::kExact));
  requests.push_back(
      QueryRequest::MineWindows({1, 4}, setting, MatchMode::kSingle));
  requests.push_back(QueryRequest::Trajectory(4, setting, {0, 1, 2, 3, 4}));
  requests.push_back(
      QueryRequest::Compare(setting, other, {0, 1, 2}, MatchMode::kExact));
  requests.push_back(QueryRequest::Region(1, setting));
  requests.push_back(QueryRequest::Measures(42, {0, 1, 2, 3}));
  requests.push_back(QueryRequest::Content(2, {7, 11, 13}, setting));
  requests.push_back(QueryRequest::ContentView(0, setting));
  requests.push_back(QueryRequest::RollUpRule(99, {1, 3}));
  requests.push_back(QueryRequest::RollUpMine({0, 1, 2, 3, 4, 5}, setting));
  return requests;
}

TEST(WireFormat, RequestRoundTripAllKinds) {
  for (const QueryRequest& request : AllKindsOfRequests()) {
    const std::string bytes = EncodeQueryRequest(request);
    const auto decoded = DecodeQueryRequest(bytes);
    ASSERT_TRUE(decoded.has_value())
        << QueryKindName(request.kind) << ": " << decoded.error();
    // Canonical-bytes identity is the strongest equality we can assert
    // (and the property the query cache keys on).
    EXPECT_EQ(EncodeQueryRequest(*decoded), bytes)
        << QueryKindName(request.kind);
    EXPECT_EQ(decoded->kind, request.kind);
  }
}

TEST(WireFormat, FrameRoundTrip) {
  const std::string frame = EncodeFrame(FrameType::kPing, "abc");
  ASSERT_EQ(frame.size(), kWireHeaderBytes + 3);
  EXPECT_EQ(static_cast<uint8_t>(frame[0]), kWireMagic0);
  EXPECT_EQ(static_cast<uint8_t>(frame[1]), kWireMagic1);
  EXPECT_EQ(static_cast<uint8_t>(frame[2]), kWireProtocolVersion);
  const auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.has_value()) << decoded.error();
  EXPECT_EQ(decoded->header.type, FrameType::kPing);
  EXPECT_EQ(decoded->payload, "abc");
}

TEST(WireFormat, HeaderRejectsBadMagic) {
  std::string frame = EncodeFrame(FrameType::kPing, "");
  frame[0] = 'X';
  const auto decoded = DecodeFrameHeader(frame);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error().code, ParseError::Code::kBadMagic);
}

TEST(WireFormat, HeaderRejectsFutureVersion) {
  std::string frame = EncodeFrame(FrameType::kExecute, "");
  frame[2] = static_cast<char>(kWireProtocolVersion + 1);
  const auto decoded = DecodeFrameHeader(frame);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error().code, ParseError::Code::kUnsupportedVersion);
}

TEST(WireFormat, HeaderRejectsUnknownType) {
  std::string frame = EncodeFrame(FrameType::kPing, "");
  frame[3] = static_cast<char>(200);
  const auto decoded = DecodeFrameHeader(frame);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error().code, ParseError::Code::kUnknownFrameType);
}

TEST(WireFormat, HeaderRejectsOversizedPayload) {
  std::string frame = EncodeFrame(FrameType::kExecute, "xxxx");
  const auto decoded = DecodeFrameHeader(frame, /*max_payload=*/2);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error().code, ParseError::Code::kFrameTooLarge);
}

TEST(WireFormat, HeaderRejectsTruncation) {
  const std::string frame = EncodeFrame(FrameType::kPing, "");
  for (size_t n = 0; n < kWireHeaderBytes; ++n) {
    const auto decoded = DecodeFrameHeader(frame.substr(0, n));
    ASSERT_FALSE(decoded.has_value()) << "prefix length " << n;
    EXPECT_EQ(decoded.error().code, ParseError::Code::kTruncatedHeader);
  }
}

TEST(WireFormat, RequestRejectsUnknownKind) {
  std::string bytes = EncodeQueryRequest(
      QueryRequest::MineWindow(0, ParameterSetting{0.02, 0.4}));
  bytes[0] = static_cast<char>(kQueryKindCount);
  const auto decoded = DecodeQueryRequest(bytes);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error().code, ParseError::Code::kUnknownQueryKind);
}

TEST(WireFormat, RequestRejectsTrailingBytes) {
  std::string bytes = EncodeQueryRequest(
      QueryRequest::Region(1, ParameterSetting{0.02, 0.4}));
  bytes += '\0';
  const auto decoded = DecodeQueryRequest(bytes);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error().code, ParseError::Code::kTrailingBytes);
}

TEST(WireFormat, RequestRejectsTruncationAtEveryLength) {
  for (const QueryRequest& request : AllKindsOfRequests()) {
    const std::string bytes = EncodeQueryRequest(request);
    for (size_t n = 0; n < bytes.size(); ++n) {
      const auto decoded = DecodeQueryRequest(bytes.substr(0, n));
      // A proper prefix of a canonical encoding never parses: every
      // grammar ends exactly at the last field.
      EXPECT_FALSE(decoded.has_value())
          << QueryKindName(request.kind) << " prefix " << n;
    }
  }
}

TEST(WireFormat, ExecuteFrameCarriesDeadline) {
  const QueryRequest request =
      QueryRequest::MineWindow(2, ParameterSetting{0.02, 0.4});
  const std::string frame = EncodeExecuteFrame(request, 1500);
  const auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.has_value()) << decoded.error();
  ASSERT_EQ(decoded->header.type, FrameType::kExecute);
  const auto command = DecodeExecutePayload(decoded->payload);
  ASSERT_TRUE(command.has_value()) << command.error();
  EXPECT_EQ(command->deadline_ms, 1500u);
  EXPECT_EQ(EncodeQueryRequest(command->request),
            EncodeQueryRequest(request));
}

TEST(WireFormat, ResultRoundTrip) {
  const QueryResult result = std::vector<RuleId>{3, 1, 4, 1, 5};
  const std::string frame = EncodeResultFrame(QueryKind::kMineWindow, result);
  const auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.has_value()) << decoded.error();
  const auto payload = DecodeResultPayload(decoded->payload);
  ASSERT_TRUE(payload.has_value()) << payload.error();
  EXPECT_EQ(payload->first, QueryKind::kMineWindow);
  EXPECT_EQ(std::get<std::vector<RuleId>>(payload->second),
            (std::vector<RuleId>{3, 1, 4, 1, 5}));
}

TEST(WireFormat, ErrorRoundTripPreservesCode) {
  const std::string frame =
      EncodeErrorFrame(ServerWireError::kOverloaded, "try later");
  const auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.has_value()) << decoded.error();
  ASSERT_EQ(decoded->header.type, FrameType::kError);
  const auto error = DecodeErrorPayload(decoded->payload);
  ASSERT_TRUE(error.has_value()) << error.error();
  EXPECT_EQ(error->code, 100u);
  EXPECT_EQ(error->message, "try later");
}

TEST(WireFormat, QueryErrorTravelsVerbatim) {
  QueryError query_error;
  query_error.code = QueryError::Code::kBadWindow;
  query_error.message = "window 7 of 3";
  const std::string frame = EncodeErrorFrame(query_error);
  const auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.has_value());
  const auto error = DecodeErrorPayload(decoded->payload);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, QueryErrorWireCode(QueryError::Code::kBadWindow));
  EXPECT_EQ(QueryErrorFromWireCode(error->code), QueryError::Code::kBadWindow);
}

// The numeric code space is a wire contract: these values must never
// change. A failure here means an incompatible protocol change.
TEST(WireFormat, NumericCodesArePinned) {
  EXPECT_EQ(QueryErrorWireCode(QueryError::Code::kSupportBelowFloor), 1u);
  EXPECT_EQ(QueryErrorWireCode(QueryError::Code::kConfidenceBelowFloor), 2u);
  EXPECT_EQ(QueryErrorWireCode(QueryError::Code::kBadWindow), 3u);
  EXPECT_EQ(QueryErrorWireCode(QueryError::Code::kEmptyWindowSet), 4u);
  EXPECT_EQ(QueryErrorWireCode(QueryError::Code::kWindowSetMismatch), 5u);
  EXPECT_EQ(QueryErrorWireCode(QueryError::Code::kUnknownRule), 6u);
  EXPECT_EQ(QueryErrorWireCode(QueryError::Code::kNoContentIndex), 7u);

  EXPECT_EQ(static_cast<uint32_t>(ServerWireError::kOverloaded), 100u);
  EXPECT_EQ(static_cast<uint32_t>(ServerWireError::kDeadlineExceeded), 101u);
  EXPECT_EQ(static_cast<uint32_t>(ServerWireError::kShuttingDown), 102u);
  EXPECT_EQ(static_cast<uint32_t>(ServerWireError::kBadRequest), 103u);
  EXPECT_EQ(static_cast<uint32_t>(ServerWireError::kInternal), 104u);

  EXPECT_EQ(static_cast<uint32_t>(ParseError::Code::kTruncatedHeader), 200u);
  EXPECT_EQ(static_cast<uint32_t>(ParseError::Code::kBadMagic), 201u);
  EXPECT_EQ(static_cast<uint32_t>(ParseError::Code::kUnsupportedVersion),
            202u);
  EXPECT_EQ(static_cast<uint32_t>(ParseError::Code::kUnknownFrameType), 203u);
  EXPECT_EQ(static_cast<uint32_t>(ParseError::Code::kFrameTooLarge), 204u);
  EXPECT_EQ(static_cast<uint32_t>(ParseError::Code::kTruncatedPayload), 205u);
  EXPECT_EQ(static_cast<uint32_t>(ParseError::Code::kUnknownQueryKind), 206u);
  EXPECT_EQ(static_cast<uint32_t>(ParseError::Code::kBadRequestBody), 207u);
  EXPECT_EQ(static_cast<uint32_t>(ParseError::Code::kBadResultBody), 208u);
  EXPECT_EQ(static_cast<uint32_t>(ParseError::Code::kBadErrorBody), 209u);
  EXPECT_EQ(static_cast<uint32_t>(ParseError::Code::kTrailingBytes), 210u);
  EXPECT_EQ(static_cast<uint32_t>(ParseError::Code::kUnexpectedFrame), 211u);

  EXPECT_EQ(WireErrorCodeName(3), "bad_window");
  EXPECT_EQ(WireErrorCodeName(100), "overloaded");
  EXPECT_EQ(WireErrorCodeName(202), "unsupported_version");
  EXPECT_EQ(WireErrorCodeName(9999), "unknown");
}

TEST(WireFormat, UnknownWireCodeMapsToNothing) {
  EXPECT_FALSE(QueryErrorFromWireCode(0).has_value());
  EXPECT_FALSE(QueryErrorFromWireCode(99).has_value());
  // Code 8 became kCorruptStorage and must stay assigned.
  ASSERT_TRUE(QueryErrorFromWireCode(8).has_value());
  EXPECT_EQ(*QueryErrorFromWireCode(8), QueryError::Code::kCorruptStorage);
  EXPECT_EQ(WireErrorCodeName(8), "corrupt_storage");
  EXPECT_FALSE(QueryErrorFromWireCode(100).has_value());
}

TEST(WireFormat, BatchExecuteRoundTrip) {
  const std::vector<QueryRequest> requests = AllKindsOfRequests();
  const std::string frame = EncodeBatchExecuteFrame(requests, 250);
  const auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.has_value()) << decoded.error();
  ASSERT_EQ(decoded->header.type, FrameType::kBatchExecute);
  const auto batch = DecodeBatchExecutePayload(decoded->payload);
  ASSERT_TRUE(batch.has_value()) << batch.error();
  EXPECT_EQ(batch->deadline_ms, 250u);
  ASSERT_EQ(batch->requests.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(EncodeQueryRequest(batch->requests[i]),
              EncodeQueryRequest(requests[i]));
  }
}

TEST(WireFormat, BatchResultMixesOkAndError) {
  std::vector<QueryKind> kinds = {QueryKind::kMineWindow,
                                  QueryKind::kRegion};
  std::vector<Expected<QueryResult, QueryError>> results;
  results.emplace_back(QueryResult(std::vector<RuleId>{1, 2, 3}));
  QueryError error;
  error.code = QueryError::Code::kSupportBelowFloor;
  error.message = "0.001 < floor 0.01";
  results.emplace_back(error);
  const std::string frame = EncodeBatchResultFrame(kinds, results);
  const auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.has_value()) << decoded.error();
  const auto batch = DecodeBatchResultPayload(decoded->payload);
  ASSERT_TRUE(batch.has_value()) << batch.error();
  ASSERT_EQ(batch->size(), 2u);
  ASSERT_TRUE((*batch)[0].has_value());
  EXPECT_EQ(std::get<std::vector<RuleId>>((*batch)[0].value()),
            (std::vector<RuleId>{1, 2, 3}));
  ASSERT_FALSE((*batch)[1].has_value());
  EXPECT_EQ((*batch)[1].error().code, 1u);
  EXPECT_EQ((*batch)[1].error().message, "0.001 < floor 0.01");
}

TEST(WireFormat, AppendWindowRoundTrip) {
  TransactionDatabase db;
  db.Append(100, {3, 1, 2});
  db.Append(101, {2, 5});
  db.Append(105, {9});
  const std::string frame = EncodeAppendWindowFrame(db, 0, db.size());
  const auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.has_value()) << decoded.error();
  ASSERT_EQ(decoded->header.type, FrameType::kAppendWindow);
  const auto copy = DecodeAppendWindowPayload(decoded->payload);
  ASSERT_TRUE(copy.has_value()) << copy.error();
  ASSERT_EQ(copy->size(), 3u);
  EXPECT_EQ((*copy)[0].time, 100);
  EXPECT_EQ((*copy)[2].time, 105);
  EXPECT_EQ((*copy)[1].items, (Itemset{2, 5}));
}

TEST(WireFormat, AppendWindowRejectsDecreasingTimestamps) {
  // Hand-build a payload whose second timestamp goes backwards; the
  // decoder must reject it instead of letting TransactionDatabase abort.
  TransactionDatabase db;
  db.Append(100, {1});
  db.Append(100, {2});
  std::string frame = EncodeAppendWindowFrame(db, 0, db.size());
  // Patch the second zigzag timestamp varint (200 -> smaller value).
  // Safer: decode-and-check over a corpus is covered below; here just
  // corrupt the byte where the second timestamp starts and require a
  // typed outcome either way.
  bool saw_typed_error = false;
  for (size_t i = kWireHeaderBytes; i < frame.size(); ++i) {
    std::string corrupt = frame;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x7f);
    const auto decoded = DecodeFrame(corrupt);
    if (!decoded.has_value()) continue;
    const auto payload = DecodeAppendWindowPayload(decoded->payload);
    if (!payload.has_value()) saw_typed_error = true;
  }
  EXPECT_TRUE(saw_typed_error);
}

TEST(WireFormat, AppendAckAndInfoRoundTrip) {
  // The decoded payload is a view into the frame bytes, so the encoded
  // string must outlive it.
  const std::string ack_bytes = EncodeAppendAckFrame(7, 123);
  const auto ack_frame = DecodeFrame(ack_bytes);
  ASSERT_TRUE(ack_frame.has_value());
  const auto ack = DecodeAppendAckPayload(ack_frame->payload);
  ASSERT_TRUE(ack.has_value()) << ack.error();
  EXPECT_EQ(ack->window, 7u);
  EXPECT_EQ(ack->generation, 123u);

  ServerInfo info;
  info.window_count = 12;
  info.generation = 99;
  info.rule_count = 1u << 20;
  const std::string info_bytes = EncodeInfoResponseFrame(info);
  const auto info_frame = DecodeFrame(info_bytes);
  ASSERT_TRUE(info_frame.has_value());
  const auto round = DecodeInfoResponsePayload(info_frame->payload);
  ASSERT_TRUE(round.has_value()) << round.error();
  EXPECT_EQ(round->window_count, 12u);
  EXPECT_EQ(round->generation, 99u);
  EXPECT_EQ(round->rule_count, 1u << 20);
}

TEST(WireFormat, ReplicaSubscribeRoundTrip) {
  const std::string frame = EncodeReplicaSubscribeFrame(7);
  const auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->header.type, FrameType::kReplicaSubscribe);
  const auto subscribe = DecodeReplicaSubscribePayload(decoded->payload);
  ASSERT_TRUE(subscribe.has_value()) << subscribe.error();
  EXPECT_EQ(subscribe->from_window, 7u);
}

TEST(WireFormat, ReplicaCheckpointRoundTrip) {
  ReplicaCheckpoint checkpoint;
  checkpoint.min_support_floor = 0.015;
  checkpoint.min_confidence_floor = 0.25;
  checkpoint.max_itemset_size = 5;
  checkpoint.build_content_index = true;
  checkpoint.window_count = 12;
  checkpoint.generation = 37;
  const std::string frame = EncodeReplicaCheckpointFrame(checkpoint);
  const auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->header.type, FrameType::kReplicaCheckpoint);
  const auto round = DecodeReplicaCheckpointPayload(decoded->payload);
  ASSERT_TRUE(round.has_value()) << round.error();
  // Floors travel as raw f64 bits, so equality is exact.
  EXPECT_EQ(round->min_support_floor, checkpoint.min_support_floor);
  EXPECT_EQ(round->min_confidence_floor, checkpoint.min_confidence_floor);
  EXPECT_EQ(round->max_itemset_size, 5u);
  EXPECT_TRUE(round->build_content_index);
  EXPECT_EQ(round->window_count, 12u);
  EXPECT_EQ(round->generation, 37u);
}

TEST(WireFormat, ReplicaRecordRoundTrip) {
  const std::string segment = "\x01\x02segment-bytes\xff";
  const std::string frame =
      EncodeReplicaRecordFrame(4, 2000, 9, segment);
  const auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->header.type, FrameType::kReplicaRecord);
  const auto record = DecodeReplicaRecordPayload(decoded->payload);
  ASSERT_TRUE(record.has_value()) << record.error();
  EXPECT_EQ(record->window, 4u);
  EXPECT_EQ(record->total_transactions, 2000u);
  EXPECT_EQ(record->generation, 9u);
  EXPECT_EQ(record->segment, segment);
}

TEST(WireFormat, ReplicaRecordRejectsEmptySegment) {
  const std::string frame = EncodeReplicaRecordFrame(4, 2000, 9, "");
  const auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.has_value());
  const auto record = DecodeReplicaRecordPayload(decoded->payload);
  ASSERT_FALSE(record.has_value());
  EXPECT_EQ(record.error().code, ParseError::Code::kTruncatedPayload);
}

TEST(WireFormat, ReplicaHeartbeatRoundTrip) {
  const std::string frame = EncodeReplicaHeartbeatFrame(19, 23);
  const auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->header.type, FrameType::kReplicaHeartbeat);
  const auto heartbeat = DecodeReplicaHeartbeatPayload(decoded->payload);
  ASSERT_TRUE(heartbeat.has_value()) << heartbeat.error();
  EXPECT_EQ(heartbeat->window_count, 19u);
  EXPECT_EQ(heartbeat->generation, 23u);
}

TEST(WireFormat, ReplicaHeartbeatRejectsTrailingBytes) {
  std::string frame = EncodeReplicaHeartbeatFrame(19, 23);
  frame.push_back('\x00');
  // Patch the header's length to cover the extra byte so the payload
  // decoder (not the framing layer) sees it.
  frame[4] = static_cast<char>(frame.size() - kWireHeaderBytes);
  const auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.has_value());
  const auto heartbeat = DecodeReplicaHeartbeatPayload(decoded->payload);
  ASSERT_FALSE(heartbeat.has_value());
  EXPECT_EQ(heartbeat.error().code, ParseError::Code::kTrailingBytes);
}

// Replication frame types and the read-only rejection code are wire
// contracts like every other number here: frozen forever.
TEST(WireFormat, ReplicationCodesArePinned) {
  EXPECT_EQ(static_cast<uint8_t>(FrameType::kReplicaSubscribe), 14u);
  EXPECT_EQ(static_cast<uint8_t>(FrameType::kReplicaCheckpoint), 15u);
  EXPECT_EQ(static_cast<uint8_t>(FrameType::kReplicaRecord), 16u);
  EXPECT_EQ(static_cast<uint8_t>(FrameType::kReplicaHeartbeat), 17u);
  EXPECT_EQ(static_cast<uint32_t>(ServerWireError::kReadOnlyReplica), 105u);
  EXPECT_EQ(WireErrorCodeName(105), "read_only_replica");
}

/// Decodes `bytes` through every payload decoder its header names. The
/// fuzz invariant: typed error or benign success, never a crash/abort.
void DecodeEverything(const std::string& bytes) {
  const auto frame = DecodeFrame(bytes);
  if (!frame.has_value()) return;
  switch (frame->header.type) {
    case FrameType::kExecute:
      (void)DecodeExecutePayload(frame->payload);
      break;
    case FrameType::kResult:
      (void)DecodeResultPayload(frame->payload);
      break;
    case FrameType::kError:
      (void)DecodeErrorPayload(frame->payload);
      break;
    case FrameType::kAppendWindow:
      (void)DecodeAppendWindowPayload(frame->payload);
      break;
    case FrameType::kAppendAck:
      (void)DecodeAppendAckPayload(frame->payload);
      break;
    case FrameType::kBatchExecute:
      (void)DecodeBatchExecutePayload(frame->payload);
      break;
    case FrameType::kBatchResult:
      (void)DecodeBatchResultPayload(frame->payload);
      break;
    case FrameType::kInfoResponse:
      (void)DecodeInfoResponsePayload(frame->payload);
      break;
    case FrameType::kReplicaSubscribe:
      (void)DecodeReplicaSubscribePayload(frame->payload);
      break;
    case FrameType::kReplicaCheckpoint:
      (void)DecodeReplicaCheckpointPayload(frame->payload);
      break;
    case FrameType::kReplicaRecord:
      (void)DecodeReplicaRecordPayload(frame->payload);
      break;
    case FrameType::kReplicaHeartbeat:
      (void)DecodeReplicaHeartbeatPayload(frame->payload);
      break;
    default:
      break;
  }
}

TEST(WireFormatFuzz, CorruptedFramesNeverCrash) {
  // Seed corpus: one frame of every interesting type.
  std::vector<std::string> corpus;
  for (const QueryRequest& request : AllKindsOfRequests()) {
    corpus.push_back(EncodeExecuteFrame(request, 100));
  }
  corpus.push_back(EncodeBatchExecuteFrame(AllKindsOfRequests(), 50));
  corpus.push_back(
      EncodeResultFrame(QueryKind::kMineWindow, std::vector<RuleId>{1, 2}));
  corpus.push_back(EncodeErrorFrame(ServerWireError::kOverloaded, "x"));
  TransactionDatabase db;
  db.Append(10, {1, 2});
  db.Append(11, {3});
  corpus.push_back(EncodeAppendWindowFrame(db, 0, db.size()));
  corpus.push_back(EncodeAppendAckFrame(1, 2));
  corpus.push_back(EncodeInfoResponseFrame(ServerInfo{3, 4, 5}));
  corpus.push_back(EncodeReplicaSubscribeFrame(6));
  ReplicaCheckpoint checkpoint;
  checkpoint.min_support_floor = 0.01;
  checkpoint.min_confidence_floor = 0.2;
  checkpoint.max_itemset_size = 4;
  checkpoint.build_content_index = true;
  checkpoint.window_count = 8;
  checkpoint.generation = 21;
  corpus.push_back(EncodeReplicaCheckpointFrame(checkpoint));
  corpus.push_back(EncodeReplicaRecordFrame(3, 1500, 7, "fuzzable segment"));
  corpus.push_back(EncodeReplicaHeartbeatFrame(5, 9));

  Rng rng(20240807);
  for (const std::string& seed : corpus) {
    // Every truncation point.
    for (size_t n = 0; n <= seed.size(); ++n) {
      DecodeEverything(seed.substr(0, n));
    }
    // Single-byte flips at every offset.
    for (size_t i = 0; i < seed.size(); ++i) {
      for (const uint8_t flip : {uint8_t{1}, uint8_t{0x80}, uint8_t{0xff}}) {
        std::string corrupt = seed;
        corrupt[i] = static_cast<char>(corrupt[i] ^ flip);
        DecodeEverything(corrupt);
      }
    }
    // Random multi-byte corruption.
    for (int round = 0; round < 200; ++round) {
      std::string corrupt = seed;
      const int edits = 1 + static_cast<int>(rng.Next() % 8);
      for (int e = 0; e < edits; ++e) {
        const size_t at = rng.Next() % corrupt.size();
        corrupt[at] = static_cast<char>(rng.Next());
      }
      DecodeEverything(corrupt);
    }
  }
  // Pure garbage, including sizes around the header boundary.
  for (int round = 0; round < 500; ++round) {
    const size_t size = rng.Next() % 64;
    std::string garbage(size, '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Next());
    DecodeEverything(garbage);
  }
  SUCCEED();
}

}  // namespace
}  // namespace tara
