// Tree-vs-linear equivalence for the hierarchical roll-up index: both
// paths aggregate into RollUpAggregate and finish through FinishRollUp,
// so the property tests here demand EXACT double equality, not
// tolerances — any drift means the partial sums diverged.

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/rollup_tree.h"
#include "core/tar_archive.h"
#include "core/tara_engine.h"
#include "core/window_set.h"
#include "gtest/gtest.h"

namespace tara {
namespace {

void ExpectSameBound(const RollUpBound& tree, const RollUpBound& linear) {
  EXPECT_EQ(tree.support_lo, linear.support_lo);
  EXPECT_EQ(tree.support_hi, linear.support_hi);
  EXPECT_EQ(tree.confidence_lo, linear.confidence_lo);
  EXPECT_EQ(tree.confidence_hi, linear.confidence_hi);
  EXPECT_EQ(tree.missing_windows, linear.missing_windows);
}

/// Archive and tree builder fed byte-identically, the way KbBuilder
/// drives them at commit time.
struct MirroredIndex {
  TarArchive archive;
  RollUpTreeBuilder builder;
  uint32_t window_count = 0;
  uint32_t rule_count = 0;

  void AddWindow(uint64_t size, uint64_t floor_count,
                 double confidence_floor) {
    const WindowId w = window_count++;
    archive.RegisterWindow(w, size, floor_count, confidence_floor);
    builder.BeginWindow(
        w, size, UnarchivedCountSlack(floor_count, confidence_floor, size));
  }

  void AddEntry(RuleId rule, uint64_t rule_cnt, uint64_t ant_cnt) {
    const WindowId w = window_count - 1;
    archive.Add(rule, w, rule_cnt, ant_cnt);
    builder.AddEntry(rule, rule_cnt, ant_cnt);
    if (rule >= rule_count) rule_count = rule + 1;
  }
};

/// A seeded random index: per-window sizes/floors vary, rules are present
/// in ~60% of windows with counts spanning several varint widths.
MirroredIndex RandomIndex(uint64_t seed, uint32_t windows, uint32_t rules) {
  MirroredIndex m;
  Rng rng(seed);
  for (uint32_t w = 0; w < windows; ++w) {
    const uint64_t size = 500 + rng.NextBounded(1000);
    const uint64_t floor_count = rng.NextBounded(12);  // 0 = no count floor
    const double confidence_floor = rng.NextDouble() * 0.3;
    m.AddWindow(size, floor_count, confidence_floor);
    for (RuleId r = 0; r < rules; ++r) {
      if (rng.NextBounded(10) >= 6) continue;  // absent ~40% of windows
      const uint64_t rule_cnt = 1 + rng.NextBounded(size / 2);
      const uint64_t ant_cnt = rule_cnt + rng.NextBounded(size / 2);
      m.AddEntry(r, rule_cnt, ant_cnt);
    }
  }
  m.rule_count = rules;
  return m;
}

/// Random sorted-unique window sets of every interesting shape: singles,
/// dense ranges, sparse subsets, and the full set.
WindowSet RandomWindowSet(Rng& rng, uint32_t window_count) {
  switch (rng.NextBounded(4)) {
    case 0:
      return WindowSet::Single(
          static_cast<WindowId>(rng.NextBounded(window_count)), window_count);
    case 1: {
      const WindowId begin =
          static_cast<WindowId>(rng.NextBounded(window_count));
      const WindowId end =
          begin + 1 +
          static_cast<WindowId>(rng.NextBounded(window_count - begin));
      return WindowSet::Range(begin, end, window_count);
    }
    case 2: {
      std::vector<WindowId> ids;
      for (WindowId w = 0; w < window_count; ++w) {
        if (rng.NextBounded(3) == 0) ids.push_back(w);
      }
      if (ids.empty()) ids.push_back(0);
      return WindowSet(std::move(ids), window_count);
    }
    default:
      return WindowSet::All(window_count);
  }
}

TEST(RollUpTree, MatchesLinearScanOnRandomizedIndexes) {
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const MirroredIndex m = RandomIndex(seed, 48, 12);
    const std::shared_ptr<const RollUpTree> tree = m.builder.Snapshot();
    Rng rng(seed * 1000 + 7);
    for (int round = 0; round < 100; ++round) {
      const WindowSet windows = RandomWindowSet(rng, m.window_count);
      // Include a rule id past everything archived (decodes to empty).
      for (RuleId rule = 0; rule <= m.rule_count; ++rule) {
        ExpectSameBound(tree->RollUp(rule, windows.ids()),
                        m.archive.RollUp(rule, windows.ids()));
      }
    }
  }
}

TEST(RollUpTree, EntryForMatchesArchive) {
  const MirroredIndex m = RandomIndex(99, 32, 8);
  const std::shared_ptr<const RollUpTree> tree = m.builder.Snapshot();
  for (RuleId rule = 0; rule <= m.rule_count; ++rule) {
    EXPECT_EQ(tree->entry_count(rule), m.archive.entry_count(rule));
    for (WindowId w = 0; w < m.window_count; ++w) {
      const auto from_tree = tree->EntryFor(rule, w);
      const auto from_archive = m.archive.EntryFor(rule, w);
      ASSERT_EQ(from_tree.has_value(), from_archive.has_value())
          << "rule " << rule << " window " << w;
      if (from_tree) {
        EXPECT_EQ(from_tree->window, from_archive->window);
        EXPECT_EQ(from_tree->rule_count, from_archive->rule_count);
        EXPECT_EQ(from_tree->antecedent_count,
                  from_archive->antecedent_count);
      }
    }
    EXPECT_FALSE(tree->EntryFor(rule, m.window_count + 5).has_value());
  }
}

TEST(RollUpTree, HandlesEmptyAndSparseSeries) {
  MirroredIndex m;
  m.AddWindow(100, 3, 0.1);
  m.AddWindow(200, 3, 0.1);
  m.AddWindow(300, 3, 0.1);
  // Rule 0: only the last window. Rules 1 and 7: never archived.
  m.AddEntry(0, 12, 24);
  const std::shared_ptr<const RollUpTree> tree = m.builder.Snapshot();
  for (RuleId rule : {0u, 1u, 7u}) {
    ExpectSameBound(tree->RollUp(rule, WindowSet::All(3).ids()),
                    m.archive.RollUp(rule, WindowSet::All(3).ids()));
  }
  EXPECT_EQ(tree->window_count(), 3u);
}

/// Live appends through the engine: after every published window the
/// snapshot's tree must agree with a linear scan of that snapshot's own
/// archive, and snapshots pinned earlier must keep answering from their
/// generation (immutability under the builder's copy-on-write appends).
TEST(RollUpTree, LiveAppendsKeepTreeAndPinnedSnapshotsConsistent) {
  TaraEngine::Options options;
  options.min_support_floor = 0.01;
  options.min_confidence_floor = 0.2;
  TaraEngine engine(options);

  Rng rng(2024);
  std::vector<std::shared_ptr<const KnowledgeBaseSnapshot>> pinned;
  constexpr uint64_t kWindowSize = 1000;
  constexpr int kRules = 6;

  for (int w = 0; w < 10; ++w) {
    std::vector<TaraEngine::PrecomputedRule> rules;
    for (int r = 0; r < kRules; ++r) {
      if (rng.NextBounded(10) >= 7) continue;  // rule absent this window
      TaraEngine::PrecomputedRule p;
      p.rule = Rule{{static_cast<ItemId>(r)},
                    {static_cast<ItemId>(1000 + r)}};
      p.rule_count = 20 + rng.NextBounded(200);
      p.antecedent_count = p.rule_count + rng.NextBounded(300);
      rules.push_back(p);
    }
    engine.AppendPrecomputedWindow(kWindowSize, rules);
    pinned.push_back(engine.Snapshot());
  }

  for (size_t g = 0; g < pinned.size(); ++g) {
    const auto& snapshot = pinned[g];
    ASSERT_EQ(snapshot->window_count(), g + 1);
    const WindowSet all = snapshot->AllWindows();
    const uint32_t known_rules =
        static_cast<uint32_t>(snapshot->archive().rule_count());
    for (RuleId rule = 0; rule < known_rules; ++rule) {
      // The pinned snapshot's archive IS that generation — tree answers
      // must match it, not the engine's latest state.
      ExpectSameBound(snapshot->rollup_tree().RollUp(rule, all.ids()),
                      snapshot->archive().RollUp(rule, all.ids()));
      const auto bound = snapshot->RollUpRule(rule, all);
      ASSERT_TRUE(bound.has_value());
      ExpectSameBound(*bound, snapshot->archive().RollUp(rule, all.ids()));
      for (WindowId win = 0; win < snapshot->window_count(); ++win) {
        const auto from_tree = snapshot->EntryFor(rule, win);
        const auto from_archive = snapshot->archive().EntryFor(rule, win);
        ASSERT_EQ(from_tree.has_value(), from_archive.has_value());
        if (from_tree) {
          EXPECT_EQ(from_tree->rule_count, from_archive->rule_count);
          EXPECT_EQ(from_tree->antecedent_count,
                    from_archive->antecedent_count);
        }
      }
      // Windows published after this snapshot do not exist in its tree.
      EXPECT_FALSE(
          snapshot->EntryFor(rule, snapshot->window_count()).has_value());
    }
  }
}

TEST(RollUpTree, MineRolledUpAgreesWithPerRuleBounds) {
  TaraEngine::Options options;
  options.min_support_floor = 0.01;
  options.min_confidence_floor = 0.1;
  TaraEngine engine(options);

  Rng rng(777);
  for (int w = 0; w < 6; ++w) {
    std::vector<TaraEngine::PrecomputedRule> rules;
    for (int r = 0; r < 8; ++r) {
      if (rng.NextBounded(4) == 0) continue;
      TaraEngine::PrecomputedRule p;
      p.rule = Rule{{static_cast<ItemId>(r)},
                    {static_cast<ItemId>(1000 + r)}};
      p.rule_count = 15 + rng.NextBounded(100);
      p.antecedent_count = p.rule_count + rng.NextBounded(150);
      rules.push_back(p);
    }
    engine.AppendPrecomputedWindow(1000, rules);
  }

  const auto snapshot = engine.Snapshot();
  const WindowSet windows = WindowSet::Range(1, 5, snapshot->window_count());
  const ParameterSetting setting{0.05, 0.3};
  const auto rolled = snapshot->MineRolledUp(windows, setting);
  ASSERT_TRUE(rolled.has_value());

  const uint32_t known_rules =
      static_cast<uint32_t>(snapshot->archive().rule_count());
  for (RuleId rule = 0; rule < known_rules; ++rule) {
    const RollUpBound bound =
        snapshot->archive().RollUp(rule, windows.ids());
    const bool certain = bound.support_lo + 1e-12 >= setting.min_support &&
                         bound.confidence_lo + 1e-12 >= setting.min_confidence;
    const bool possible = bound.support_hi + 1e-12 >= setting.min_support &&
                          bound.confidence_hi + 1e-12 >= setting.min_confidence;
    const bool in_certain =
        std::find(rolled->certain.begin(), rolled->certain.end(), rule) !=
        rolled->certain.end();
    const bool in_possible =
        std::find(rolled->possible.begin(), rolled->possible.end(), rule) !=
        rolled->possible.end();
    // A rule present in any requested window is a candidate; classify it
    // exactly as the linear bounds do.
    bool present = false;
    for (WindowId win : windows) {
      present = present || snapshot->archive().EntryFor(rule, win).has_value();
    }
    if (present) {
      EXPECT_EQ(in_certain, certain) << "rule " << rule;
      EXPECT_EQ(in_possible, certain ? false : possible) << "rule " << rule;
    } else {
      EXPECT_FALSE(in_certain) << "rule " << rule;
      EXPECT_FALSE(in_possible) << "rule " << rule;
    }
  }
}

TEST(RollUpTreeBuilder, SnapshotsShareSeriesCopyOnWrite) {
  MirroredIndex m;
  m.AddWindow(100, 2, 0.0);
  m.AddEntry(0, 10, 20);
  const std::shared_ptr<const RollUpTree> first = m.builder.Snapshot();

  // Appending after a snapshot must not mutate what it published.
  m.AddWindow(100, 2, 0.0);
  m.AddEntry(0, 30, 40);
  const std::shared_ptr<const RollUpTree> second = m.builder.Snapshot();

  EXPECT_EQ(first->window_count(), 1u);
  EXPECT_EQ(second->window_count(), 2u);
  EXPECT_EQ(first->entry_count(0), 1u);
  EXPECT_EQ(second->entry_count(0), 2u);
  EXPECT_FALSE(first->EntryFor(0, 1).has_value());
  const auto updated = second->EntryFor(0, 1);
  ASSERT_TRUE(updated.has_value());
  EXPECT_EQ(updated->rule_count, 30u);
}

}  // namespace
}  // namespace tara
