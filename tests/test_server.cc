// Serving-layer integration tests: a real TaraServer on an ephemeral
// port, driven by real TaraClient connections. Covers result
// byte-identity with local execution, typed error passthrough,
// concurrent clients with live wire ingestion, the deterministic shed
// and deadline admission paths, malformed-frame survival, and the
// metrics/info endpoints. Runs under TSan in CI.

#include "server/tara_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/query_request.h"
#include "core/wire_format.h"
#include "datagen/quest_generator.h"
#include "obs/metrics.h"
#include "server/net_io.h"
#include "server/tara_client.h"
#include "txdb/evolving_database.h"

namespace tara::server {
namespace {

TransactionDatabase MakeData(uint32_t transactions, uint64_t seed) {
  QuestGenerator::Params params;
  params.num_transactions = transactions;
  params.num_items = 60;
  params.num_patterns = 25;
  params.avg_transaction_len = 8;
  params.seed = seed;
  return QuestGenerator(params).Generate();
}

/// A small engine + server, freshly built per fixture.
class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    TaraEngine::Options engine_options;
    engine_options.min_support_floor = 0.02;
    engine_options.min_confidence_floor = 0.2;
    engine_options.max_itemset_size = 4;
    engine_options.build_content_index = true;
    engine_options.metrics = &metrics_;
    engine_ = std::make_unique<TaraEngine>(engine_options);
    engine_->BuildAll(
        EvolvingDatabase::PartitionIntoBatches(MakeData(1200, 7), 3));
    options.metrics = &metrics_;
    server_ = std::make_unique<TaraServer>(engine_.get(), options);
    const auto problem = server_->Start();
    ASSERT_FALSE(problem.has_value()) << *problem;
    ASSERT_NE(server_->port(), 0);
  }

  TaraClient Connect() {
    auto client = TaraClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.has_value());
    return std::move(client.value());
  }

  obs::MetricsRegistry metrics_;
  std::unique_ptr<TaraEngine> engine_;
  std::unique_ptr<TaraServer> server_;
};

TEST_F(ServerTest, RemoteResultsMatchLocalByteForByte) {
  StartServer();
  TaraClient client = Connect();
  const ParameterSetting setting{0.03, 0.3};
  std::vector<QueryRequest> requests;
  requests.push_back(QueryRequest::MineWindow(1, setting));
  requests.push_back(QueryRequest::Region(2, setting));
  requests.push_back(QueryRequest::Trajectory(2, setting, {0, 1, 2}));
  requests.push_back(QueryRequest::Compare(
      setting, ParameterSetting{0.05, 0.4}, {0, 1, 2}, MatchMode::kExact));
  requests.push_back(QueryRequest::ContentView(0, setting));
  requests.push_back(QueryRequest::RollUpMine({0, 1, 2}, setting));
  for (const QueryRequest& request : requests) {
    const auto local = engine_->Execute(request);
    ASSERT_TRUE(local.has_value());
    const auto remote = client.Execute(request);
    ASSERT_TRUE(remote.has_value())
        << QueryKindName(request.kind) << ": " << remote.error();
    EXPECT_EQ(EncodeQueryResult(request.kind, *remote),
              EncodeQueryResult(request.kind, *local))
        << QueryKindName(request.kind);
  }
}

TEST_F(ServerTest, QueryErrorsArriveWithFrozenCodes) {
  StartServer();
  TaraClient client = Connect();
  // Window 9 does not exist -> kBadWindow, wire code 3.
  const auto bad_window = client.Execute(
      QueryRequest::MineWindow(9, ParameterSetting{0.03, 0.3}));
  ASSERT_FALSE(bad_window.has_value());
  EXPECT_EQ(bad_window.error().code,
            QueryErrorWireCode(QueryError::Code::kBadWindow));
  // Support below the 0.02 floor -> wire code 1.
  const auto below_floor = client.Execute(
      QueryRequest::MineWindow(0, ParameterSetting{0.001, 0.3}));
  ASSERT_FALSE(below_floor.has_value());
  EXPECT_EQ(below_floor.error().code,
            QueryErrorWireCode(QueryError::Code::kSupportBelowFloor));
  // The connection survives typed errors.
  EXPECT_TRUE(client.Ping().has_value());
}

TEST_F(ServerTest, BatchMixesResultsAndErrors) {
  StartServer();
  TaraClient client = Connect();
  const ParameterSetting setting{0.03, 0.3};
  std::vector<QueryRequest> requests;
  requests.push_back(QueryRequest::MineWindow(0, setting));
  requests.push_back(QueryRequest::MineWindow(9, setting));  // bad window
  requests.push_back(QueryRequest::Region(1, setting));
  const auto batch = client.ExecuteBatch(requests);
  ASSERT_TRUE(batch.has_value()) << batch.error();
  ASSERT_EQ(batch->size(), 3u);
  EXPECT_TRUE((*batch)[0].has_value());
  ASSERT_FALSE((*batch)[1].has_value());
  EXPECT_EQ((*batch)[1].error().code, 3u);
  EXPECT_TRUE((*batch)[2].has_value());
  // Byte-identity against the local batch path.
  const auto local = engine_->ExecuteBatch(requests);
  EXPECT_EQ(EncodeQueryResult(requests[0].kind, (*batch)[0].value()),
            EncodeQueryResult(requests[0].kind, local[0].value()));
}

TEST_F(ServerTest, LiveIngestionDuringConcurrentQueries) {
  StartServer();
  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 25;
  std::atomic<int> ok{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, c, &ok, &failed] {
      auto connect = TaraClient::Connect("127.0.0.1", server_->port());
      ASSERT_TRUE(connect.has_value());
      TaraClient client = std::move(connect.value());
      const ParameterSetting setting{0.03, 0.25 + 0.01 * c};
      for (int i = 0; i < kQueriesPerClient; ++i) {
        // Window 0 always exists no matter how many appends landed.
        const auto result = client.Execute(
            i % 2 == 0 ? QueryRequest::MineWindow(0, setting)
                       : QueryRequest::Trajectory(0, setting, {0}));
        if (result.has_value()) {
          ok.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  // Meanwhile: live appends over the wire from a separate connection.
  TaraClient appender = Connect();
  const TransactionDatabase extra = MakeData(300, 99);
  uint32_t appended = 0;
  for (int i = 0; i < 3; ++i) {
    const auto ack = appender.AppendWindow(extra);
    ASSERT_TRUE(ack.has_value()) << ack.error();
    ++appended;
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kQueriesPerClient);
  EXPECT_EQ(failed.load(), 0);
  // All appends became windows: 3 built + 3 live.
  const auto info = appender.Info();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->window_count, 3u + appended);
}

TEST_F(ServerTest, SaturatedPoolShedsWithOverloaded) {
  // One worker, zero queue slots: while the first request executes, any
  // other request must be shed immediately with kOverloaded.
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> executing{0};
  ServerOptions options;
  options.max_concurrent_queries = 1;
  options.max_queued_queries = 0;
  options.pre_execute_hook = [&] {
    executing.fetch_add(1);
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
  };
  StartServer(options);

  const QueryRequest request =
      QueryRequest::MineWindow(0, ParameterSetting{0.03, 0.3});
  std::thread holder([this, &request] {
    TaraClient client = Connect();
    const auto result = client.Execute(request);
    EXPECT_TRUE(result.has_value());
  });
  while (executing.load() == 0) std::this_thread::yield();

  TaraClient shed_client = Connect();
  const auto shed = shed_client.Execute(request);
  ASSERT_FALSE(shed.has_value());
  EXPECT_TRUE(IsOverloaded(shed.error())) << shed.error();
  EXPECT_EQ(shed.error().code, 100u);

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  holder.join();
  // The shed was counted.
  EXPECT_EQ(metrics_.SnapshotText().find("tara.server.shed = 0"),
            std::string::npos);
}

TEST_F(ServerTest, QueuedRequestHonorsDeadline) {
  // One worker with queue room: a queued request whose deadline expires
  // before a slot frees must fail kDeadlineExceeded, not execute.
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> executing{0};
  ServerOptions options;
  options.max_concurrent_queries = 1;
  options.max_queued_queries = 4;
  options.pre_execute_hook = [&] {
    const int n = executing.fetch_add(1);
    if (n == 0) {
      // Only the first request blocks; later ones run normally.
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return release; });
    }
  };
  StartServer(options);

  const QueryRequest request =
      QueryRequest::MineWindow(0, ParameterSetting{0.03, 0.3});
  std::thread holder([this, &request] {
    TaraClient client = Connect();
    const auto result = client.Execute(request);
    EXPECT_TRUE(result.has_value());
  });
  while (executing.load() == 0) std::this_thread::yield();

  TaraClient queued_client = Connect();
  const auto start = std::chrono::steady_clock::now();
  const auto queued = queued_client.Execute(request, /*deadline_ms=*/100);
  const auto waited = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(queued.has_value());
  EXPECT_TRUE(IsDeadlineExceeded(queued.error())) << queued.error();
  EXPECT_EQ(queued.error().code, 101u);
  // The rejection must arrive promptly after the deadline, not stall.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            5000);

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  holder.join();
}

TEST_F(ServerTest, HostnamesResolveForConnectAndFailuresAreTyped) {
  StartServer();
  // A hostname (not a dotted quad) goes through the system resolver.
  auto named = TaraClient::Connect("localhost", server_->port());
  ASSERT_TRUE(named.has_value()) << named.error();
  TaraClient named_client = std::move(named).value();
  EXPECT_TRUE(named_client.Ping().has_value());
  // An unresolvable name fails with a typed resolution message (RFC 2606
  // reserves .invalid, so no resolver can answer it).
  auto bogus = TaraClient::Connect("no-such-host.invalid", 1);
  ASSERT_FALSE(bogus.has_value());
  EXPECT_EQ(bogus.error().code, kClientTransportError);
  EXPECT_NE(bogus.error().message.find("cannot resolve host"),
            std::string::npos)
      << bogus.error().message;
}

TEST_F(ServerTest, StalledResponseTripsTheClientDeadlineBackstop) {
  // The hook stalls the client's OWN request mid-execution: the server
  // admitted it (so no server-side deadline shed will ever come) and
  // cannot respond until released. The client's local socket deadline —
  // the backstop for a hung server — must fire with the 303 pseudo-code
  // and close the now-desynchronized connection.
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  ServerOptions options;
  options.max_concurrent_queries = 1;
  options.pre_execute_hook = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
  };
  StartServer(options);

  TaraClient client = Connect();
  const QueryRequest request =
      QueryRequest::MineWindow(0, ParameterSetting{0.03, 0.3});
  const auto start = std::chrono::steady_clock::now();
  const auto result = client.Execute(request, /*deadline_ms=*/100);
  const auto waited_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  ASSERT_FALSE(result.has_value());
  EXPECT_TRUE(IsClientTimeout(result.error())) << result.error();
  EXPECT_EQ(result.error().code, 303u);
  // Fired no earlier than the deadline, and promptly rather than hanging.
  EXPECT_GE(waited_ms, 100);
  EXPECT_LT(waited_ms, 10000);
  // A late response must never be read as the answer to the next
  // request: the connection is gone and further calls fail locally.
  EXPECT_FALSE(client.connected());
  EXPECT_FALSE(client.Execute(request).has_value());

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
}

TEST_F(ServerTest, MalformedFramesGetTypedErrorsAndServerSurvives) {
  StartServer();
  // Raw socket: send garbage that is not even a TARA header.
  {
    auto raw = ConnectTcp("127.0.0.1", server_->port());
    ASSERT_TRUE(raw.has_value());
    std::string error;
    ASSERT_TRUE(WriteAll(raw.value().fd(), "this is not a TARA frame....",
                         &error));
    const FrameRead reply = ReadFrame(raw.value().fd(), kWireMaxPayloadBytes);
    ASSERT_EQ(reply.status, FrameRead::Status::kOk);
    ASSERT_EQ(reply.header.type, FrameType::kError);
    const auto wire_error = DecodeErrorPayload(reply.payload);
    ASSERT_TRUE(wire_error.has_value());
    EXPECT_EQ(wire_error->code,
              static_cast<uint32_t>(ParseError::Code::kBadMagic));
    // Framing is lost -> the server closes this connection.
    const FrameRead next = ReadFrame(raw.value().fd(), kWireMaxPayloadBytes);
    EXPECT_EQ(next.status, FrameRead::Status::kEof);
  }
  // A version from the future is rejected the same way.
  {
    auto raw = ConnectTcp("127.0.0.1", server_->port());
    ASSERT_TRUE(raw.has_value());
    std::string frame = EncodeFrame(FrameType::kPing, {});
    frame[2] = static_cast<char>(kWireProtocolVersion + 1);
    std::string error;
    ASSERT_TRUE(WriteAll(raw.value().fd(), frame, &error));
    const FrameRead reply = ReadFrame(raw.value().fd(), kWireMaxPayloadBytes);
    ASSERT_EQ(reply.status, FrameRead::Status::kOk);
    const auto wire_error = DecodeErrorPayload(reply.payload);
    ASSERT_TRUE(wire_error.has_value());
    EXPECT_EQ(wire_error->code,
              static_cast<uint32_t>(ParseError::Code::kUnsupportedVersion));
  }
  // A well-framed Execute with a corrupt body is a payload-level error:
  // typed reply, connection survives.
  {
    auto raw = ConnectTcp("127.0.0.1", server_->port());
    ASSERT_TRUE(raw.has_value());
    const std::string frame =
        EncodeFrame(FrameType::kExecute, std::string("\x00\xff", 2));
    std::string error;
    ASSERT_TRUE(WriteAll(raw.value().fd(), frame, &error));
    const FrameRead reply = ReadFrame(raw.value().fd(), kWireMaxPayloadBytes);
    ASSERT_EQ(reply.status, FrameRead::Status::kOk);
    ASSERT_EQ(reply.header.type, FrameType::kError);
    // Same connection keeps working.
    ASSERT_TRUE(WriteAll(raw.value().fd(), EncodeFrame(FrameType::kPing, {}),
                         &error));
    const FrameRead pong = ReadFrame(raw.value().fd(), kWireMaxPayloadBytes);
    ASSERT_EQ(pong.status, FrameRead::Status::kOk);
    EXPECT_EQ(pong.header.type, FrameType::kPong);
  }
  // A frame type that is valid but not a request -> kUnexpectedFrame,
  // connection survives.
  {
    TaraClient client = Connect();
    EXPECT_TRUE(client.Ping().has_value());
  }
  // And the server still answers normal queries.
  TaraClient client = Connect();
  const auto result = client.Execute(
      QueryRequest::MineWindow(0, ParameterSetting{0.03, 0.3}));
  EXPECT_TRUE(result.has_value());
}

TEST_F(ServerTest, MetricsEndpointExposesServerSeries) {
  StartServer();
  TaraClient client = Connect();
  (void)client.Execute(
      QueryRequest::MineWindow(0, ParameterSetting{0.03, 0.3}));
  const auto text = client.Metrics(/*json=*/false);
  ASSERT_TRUE(text.has_value()) << text.error();
  EXPECT_NE(text->find("tara.server.requests"), std::string::npos);
  EXPECT_NE(text->find("tara.server.connections"), std::string::npos);
  const auto json = client.Metrics(/*json=*/true);
  ASSERT_TRUE(json.has_value());
  EXPECT_NE(json->find("tara.server.requests"), std::string::npos);
}

TEST_F(ServerTest, InfoReportsKnowledgeBaseShape) {
  StartServer();
  TaraClient client = Connect();
  const auto info = client.Info();
  ASSERT_TRUE(info.has_value()) << info.error();
  EXPECT_EQ(info->window_count, 3u);
  EXPECT_EQ(info->generation, engine_->generation());
  EXPECT_EQ(info->rule_count, engine_->Snapshot()->catalog().size());
}

TEST_F(ServerTest, StopDrainsCleanly) {
  StartServer();
  TaraClient client = Connect();
  EXPECT_TRUE(client.Ping().has_value());
  server_->Stop();
  // After Stop, the connection is gone and new connects fail.
  const auto after = client.Ping();
  EXPECT_FALSE(after.has_value());
  auto reconnect = TaraClient::Connect("127.0.0.1", server_->port());
  EXPECT_FALSE(reconnect.has_value());
  // Stop is idempotent.
  server_->Stop();
}

}  // namespace
}  // namespace tara::server
