#include <gtest/gtest.h>

#include "common/rng.h"
#include "txdb/dictionary.h"
#include "txdb/evolving_database.h"
#include "txdb/io.h"
#include "txdb/transaction_database.h"
#include "txdb/types.h"

namespace tara {
namespace {

TEST(ItemsetOpsTest, CanonicalizeSortsAndDeduplicates) {
  Itemset items = {5, 1, 3, 1, 5, 2};
  Canonicalize(&items);
  EXPECT_EQ(items, (Itemset{1, 2, 3, 5}));
}

TEST(ItemsetOpsTest, SubsetChecks) {
  EXPECT_TRUE(IsSubsetOf({}, {1, 2}));
  EXPECT_TRUE(IsSubsetOf({1}, {1, 2}));
  EXPECT_TRUE(IsSubsetOf({1, 2}, {1, 2}));
  EXPECT_FALSE(IsSubsetOf({3}, {1, 2}));
  EXPECT_FALSE(IsSubsetOf({1, 3}, {1, 2}));
}

TEST(ItemsetOpsTest, SetAlgebra) {
  const Itemset a = {1, 2, 4};
  const Itemset b = {2, 3};
  EXPECT_EQ(Union(a, b), (Itemset{1, 2, 3, 4}));
  EXPECT_EQ(Intersection(a, b), (Itemset{2}));
  EXPECT_EQ(Difference(a, b), (Itemset{1, 4}));
  EXPECT_EQ(Difference(b, a), (Itemset{3}));
}

class ItemsetAlgebraPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ItemsetAlgebraPropertyTest, UnionIntersectionDifferencePartition) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    Itemset a, b;
    for (int i = 0; i < 12; ++i) {
      if (rng.NextBool(0.5)) a.push_back(static_cast<ItemId>(
          rng.NextBounded(20)));
      if (rng.NextBool(0.5)) b.push_back(static_cast<ItemId>(
          rng.NextBounded(20)));
    }
    Canonicalize(&a);
    Canonicalize(&b);
    // |A ∪ B| = |A \ B| + |B \ A| + |A ∩ B|.
    EXPECT_EQ(Union(a, b).size(), Difference(a, b).size() +
                                      Difference(b, a).size() +
                                      Intersection(a, b).size());
    // A ∩ B ⊆ A ⊆ A ∪ B.
    EXPECT_TRUE(IsSubsetOf(Intersection(a, b), a));
    EXPECT_TRUE(IsSubsetOf(a, Union(a, b)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ItemsetAlgebraPropertyTest,
                         ::testing::Values(1, 7, 99));

TEST(DictionaryTest, InternsAndLooksUp) {
  Dictionary dict;
  const ItemId aspirin = dict.Intern("aspirin");
  const ItemId ibuprofen = dict.Intern("ibuprofen");
  EXPECT_NE(aspirin, ibuprofen);
  EXPECT_EQ(dict.Intern("aspirin"), aspirin);
  EXPECT_EQ(dict.Find("ibuprofen"), ibuprofen);
  EXPECT_EQ(dict.Find("nonexistent"), Dictionary::kNotFound);
  EXPECT_EQ(dict.Name(aspirin), "aspirin");
  EXPECT_EQ(dict.size(), 2u);
}

TEST(TransactionDatabaseTest, AppendsCanonicallyAndCounts) {
  TransactionDatabase db;
  db.Append(0, {3, 1, 3});
  db.Append(1, {1, 2});
  db.Append(5, {2, 3});
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db[0].items, (Itemset{1, 3}));
  EXPECT_EQ(db.CountContaining({1}), 2u);
  EXPECT_EQ(db.CountContaining({3}), 2u);
  EXPECT_EQ(db.CountContaining({1, 3}), 1u);
  EXPECT_EQ(db.CountContaining({}), 3u);
  EXPECT_EQ(db.CountContaining({9}), 0u);
}

TEST(TransactionDatabaseTest, CountsOverRanges) {
  TransactionDatabase db;
  for (int i = 0; i < 10; ++i) db.Append(i, {static_cast<ItemId>(i % 2)});
  EXPECT_EQ(db.CountContaining({0}, 0, 10), 5u);
  EXPECT_EQ(db.CountContaining({0}, 0, 4), 2u);
  EXPECT_EQ(db.CountContaining({1}, 5, 10), 3u);
}

TEST(TransactionDatabaseTest, TimeBounds) {
  TransactionDatabase db;
  db.Append(10, {1});
  db.Append(20, {1});
  db.Append(20, {2});
  db.Append(30, {3});
  EXPECT_EQ(db.LowerBound(20), 1u);
  EXPECT_EQ(db.UpperBound(20), 3u);
  EXPECT_EQ(db.LowerBound(5), 0u);
  EXPECT_EQ(db.LowerBound(35), 4u);
}

TEST(TransactionDatabaseTest, Statistics) {
  TransactionDatabase db;
  db.Append(0, {1, 2});
  db.Append(1, {2, 3, 4, 5});
  EXPECT_EQ(db.distinct_item_count(), 5u);
  EXPECT_DOUBLE_EQ(db.average_length(), 3.0);
  EXPECT_EQ(db.item_bound(), 6u);
}

TEST(IoTest, RoundTripsThroughText) {
  TransactionDatabase db;
  db.Append(7, {1, 5, 9});
  db.Append(8, {2});
  db.Append(12, {3, 4});
  const TransactionDatabase copy = DatabaseFromString(DatabaseToString(db));
  ASSERT_EQ(copy.size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(copy[i].time, db[i].time);
    EXPECT_EQ(copy[i].items, db[i].items);
  }
}

TEST(EvolvingDatabaseTest, PartitionsIntoEqualBatches) {
  TransactionDatabase db;
  for (int i = 0; i < 103; ++i) db.Append(i, {static_cast<ItemId>(i % 7)});
  const EvolvingDatabase evolving =
      EvolvingDatabase::PartitionIntoBatches(db, 5);
  ASSERT_EQ(evolving.window_count(), 5u);
  size_t total = 0;
  for (WindowId w = 0; w < 5; ++w) {
    total += evolving.window(w).size();
    EXPECT_GE(evolving.window(w).size(), 20u);
  }
  EXPECT_EQ(total, 103u);
  // Windows tile the database contiguously.
  EXPECT_EQ(evolving.window(0).begin, 0u);
  for (WindowId w = 1; w < 5; ++w) {
    EXPECT_EQ(evolving.window(w).begin, evolving.window(w - 1).end);
  }
}

TEST(EvolvingDatabaseTest, PartitionsByDuration) {
  TransactionDatabase db;
  db.Append(0, {1});
  db.Append(5, {1});
  db.Append(25, {2});  // skips one empty window [10, 20)
  db.Append(31, {3});
  const EvolvingDatabase evolving =
      EvolvingDatabase::PartitionByDuration(db, 10);
  ASSERT_EQ(evolving.window_count(), 4u);
  EXPECT_EQ(evolving.window(0).size(), 2u);
  EXPECT_EQ(evolving.window(1).size(), 0u);  // empty window preserved
  EXPECT_EQ(evolving.window(2).size(), 1u);
  EXPECT_EQ(evolving.window(3).size(), 1u);
}

TEST(EvolvingDatabaseTest, AppendBatchExtendsWindows) {
  EvolvingDatabase evolving;
  std::vector<Transaction> batch1 = {{0, {1, 2}}, {1, {2, 3}}};
  std::vector<Transaction> batch2 = {{2, {1, 3}}};
  EXPECT_EQ(evolving.AppendBatch(batch1), 0u);
  EXPECT_EQ(evolving.AppendBatch(batch2), 1u);
  EXPECT_EQ(evolving.window_count(), 2u);
  EXPECT_EQ(evolving.CountContaining({2}, WindowId{0}), 2u);
  EXPECT_EQ(evolving.CountContaining({2}, WindowId{1}), 0u);
  EXPECT_EQ(evolving.CountContaining({1}, {0u, 1u}), 2u);
}

}  // namespace
}  // namespace tara
