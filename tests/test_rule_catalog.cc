#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/rule_catalog.h"

namespace tara {
namespace {

TEST(RuleCatalogTest, InterningIsIdempotent) {
  RuleCatalog catalog;
  const Rule rule{{1, 2}, {3}};
  const RuleId id = catalog.Intern(rule);
  EXPECT_EQ(catalog.Intern(rule), id);
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.rule(id).antecedent, (Itemset{1, 2}));
  EXPECT_EQ(catalog.rule(id).consequent, (Itemset{3}));
}

TEST(RuleCatalogTest, DirectionMatters) {
  RuleCatalog catalog;
  const RuleId forward = catalog.Intern(Rule{{1}, {2}});
  const RuleId backward = catalog.Intern(Rule{{2}, {1}});
  EXPECT_NE(forward, backward);
  EXPECT_EQ(catalog.size(), 2u);
}

TEST(RuleCatalogTest, FindDoesNotIntern) {
  RuleCatalog catalog;
  EXPECT_EQ(catalog.Find(Rule{{1}, {2}}), RuleCatalog::kNotFound);
  EXPECT_EQ(catalog.size(), 0u);
  const RuleId id = catalog.Intern(Rule{{1}, {2}});
  EXPECT_EQ(catalog.Find(Rule{{1}, {2}}), id);
}

TEST(RuleCatalogTest, IdsAreDenseAndStable) {
  RuleCatalog catalog;
  for (ItemId i = 0; i < 100; ++i) {
    EXPECT_EQ(catalog.Intern(Rule{{i}, {i + 1000}}), i);
  }
  // Re-interning in reverse order returns the original ids.
  for (ItemId i = 100; i-- > 0;) {
    EXPECT_EQ(catalog.Intern(Rule{{i}, {i + 1000}}), i);
  }
  EXPECT_EQ(catalog.size(), 100u);
}

TEST(RuleCatalogTest, FormatRuleIsReadable) {
  RuleCatalog catalog;
  const RuleId id = catalog.Intern(Rule{{3, 7}, {11, 12}});
  EXPECT_EQ(catalog.FormatRule(id), "3 7 -> 11 12");
}

TEST(RuleCatalogTest, RandomizedInternRetrieveConsistency) {
  Rng rng(1234);
  RuleCatalog catalog;
  std::vector<std::pair<Rule, RuleId>> interned;
  for (int i = 0; i < 2000; ++i) {
    Rule rule;
    const size_t na = 1 + rng.NextBounded(3);
    const size_t nc = 1 + rng.NextBounded(2);
    for (size_t k = 0; k < na; ++k) {
      rule.antecedent.push_back(static_cast<ItemId>(rng.NextBounded(30)));
    }
    for (size_t k = 0; k < nc; ++k) {
      rule.consequent.push_back(
          static_cast<ItemId>(100 + rng.NextBounded(30)));
    }
    Canonicalize(&rule.antecedent);
    Canonicalize(&rule.consequent);
    interned.emplace_back(rule, catalog.Intern(rule));
  }
  for (const auto& [rule, id] : interned) {
    EXPECT_EQ(catalog.Find(rule), id);
    EXPECT_EQ(catalog.rule(id), rule);
  }
}

TEST(RuleCatalogDeathTest, RejectsUnknownIds) {
  RuleCatalog catalog;
  catalog.Intern(Rule{{1}, {2}});
  EXPECT_DEATH(catalog.rule(5), "unknown rule id");
}

}  // namespace
}  // namespace tara
