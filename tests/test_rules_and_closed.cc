#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mining/closed_itemsets.h"
#include "mining/fp_growth.h"
#include "mining/measures.h"
#include "mining/rule_generation.h"
#include "txdb/transaction_database.h"

namespace tara {
namespace {

TransactionDatabase SmallDatabase() {
  // Classic 5-transaction example.
  TransactionDatabase db;
  db.Append(0, {1, 2, 3});
  db.Append(1, {1, 2});
  db.Append(2, {1, 3});
  db.Append(3, {2, 3});
  db.Append(4, {1, 2, 3});
  return db;
}

TEST(MeasuresTest, FormulasMatchDefinitions) {
  RuleCounts c;
  c.rule_count = 2;
  c.antecedent_count = 4;
  c.consequent_count = 4;
  c.total = 5;
  EXPECT_DOUBLE_EQ(Support(c), 0.4);
  EXPECT_DOUBLE_EQ(Confidence(c), 0.5);
  EXPECT_DOUBLE_EQ(Lift(c), 2.0 * 5 / (4.0 * 4));
}

TEST(MeasuresTest, HandlesEmptyDenominators) {
  RuleCounts c;
  EXPECT_DOUBLE_EQ(Support(c), 0.0);
  EXPECT_DOUBLE_EQ(Confidence(c), 0.0);
  EXPECT_DOUBLE_EQ(Lift(c), 0.0);
}

TEST(RuleGenerationTest, GeneratesAllConfidentRules) {
  const TransactionDatabase db = SmallDatabase();
  FpGrowthMiner miner;
  FrequentItemsetMiner::Options options;
  options.min_count = 2;
  const auto frequent = miner.Mine(db, 0, db.size(), options);
  const auto rules = GenerateRules(frequent, 0.0);

  // Every rule's counts must match raw scans, and confidence formula holds.
  for (const MinedRule& r : rules) {
    const Itemset whole = Union(r.antecedent, r.consequent);
    EXPECT_EQ(r.rule_count, db.CountContaining(whole));
    EXPECT_EQ(r.antecedent_count, db.CountContaining(r.antecedent));
    EXPECT_FALSE(r.antecedent.empty());
    EXPECT_FALSE(r.consequent.empty());
    EXPECT_TRUE(Intersection(r.antecedent, r.consequent).empty());
  }

  // {1,2} count 3: rules 1->2 (conf 3/4) and 2->1 (conf 3/4) must exist.
  const auto has_rule = [&](Itemset a, Itemset c) {
    return std::any_of(rules.begin(), rules.end(), [&](const MinedRule& r) {
      return r.antecedent == a && r.consequent == c;
    });
  };
  EXPECT_TRUE(has_rule({1}, {2}));
  EXPECT_TRUE(has_rule({2}, {1}));
  EXPECT_TRUE(has_rule({1, 2}, {3}));
  EXPECT_TRUE(has_rule({3}, {1, 2}));
}

TEST(RuleGenerationTest, ConfidenceThresholdFilters) {
  const TransactionDatabase db = SmallDatabase();
  FpGrowthMiner miner;
  FrequentItemsetMiner::Options options;
  options.min_count = 2;
  const auto frequent = miner.Mine(db, 0, db.size(), options);

  const auto loose = GenerateRules(frequent, 0.0);
  const auto tight = GenerateRules(frequent, 0.75);
  EXPECT_LT(tight.size(), loose.size());
  for (const MinedRule& r : tight) {
    EXPECT_GE(r.Confidence() + 1e-12, 0.75);
  }
  // Threshold 0 keeps everything: counts of rules from k-itemsets equal
  // sum over frequent itemsets of (2^k - 2).
  size_t expected = 0;
  for (const auto& f : frequent) {
    if (f.items.size() >= 2) expected += (1u << f.items.size()) - 2;
  }
  EXPECT_EQ(loose.size(), expected);
}

TEST(ItemsetCountIndexTest, LooksUpCounts) {
  const TransactionDatabase db = SmallDatabase();
  FpGrowthMiner miner;
  FrequentItemsetMiner::Options options;
  options.min_count = 2;
  const auto frequent = miner.Mine(db, 0, db.size(), options);
  const ItemsetCountIndex index(frequent);
  EXPECT_EQ(index.Count({1}), 4u);
  EXPECT_EQ(index.Count({1, 2}), 3u);
  EXPECT_EQ(index.Count({99}), 0u);
}

TEST(ClosureTest, ClosureIsIntersectionOfContainingTransactions) {
  const TransactionDatabase db = SmallDatabase();
  // {1} appears in tx 0,1,2,4 → intersection {1}.
  EXPECT_EQ(ComputeClosure({1}, db, 0, db.size()), (Itemset{1}));
  // {2,3} appears in tx 0,3,4 → intersection {2,3}.
  EXPECT_EQ(ComputeClosure({2, 3}, db, 0, db.size()), (Itemset{2, 3}));
  // Never-contained itemset → empty closure.
  EXPECT_EQ(ComputeClosure({7}, db, 0, db.size()), Itemset{});
}

TEST(ClosureTest, NonClosedItemsetGrowsToItsClosure) {
  TransactionDatabase db;
  db.Append(0, {1, 2, 3});
  db.Append(1, {1, 2, 3});
  db.Append(2, {4});
  // {1} only occurs with {2,3}; its closure is {1,2,3}.
  EXPECT_EQ(ComputeClosure({1}, db, 0, db.size()), (Itemset{1, 2, 3}));
}

TEST(FilterClosedTest, MatchesClosureDefinition) {
  Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    TransactionDatabase db;
    for (int t = 0; t < 25; ++t) {
      Itemset items;
      for (ItemId i = 0; i < 7; ++i) {
        if (rng.NextBool(0.4)) items.push_back(i);
      }
      if (items.empty()) items.push_back(0);
      db.Append(t, items);
    }
    FpGrowthMiner miner;
    FrequentItemsetMiner::Options options;
    options.min_count = 2;
    const auto frequent = miner.Mine(db, 0, db.size(), options);
    const auto closed = FilterClosed(frequent);

    // Exactly the itemsets equal to their own closure survive.
    size_t expected = 0;
    for (const auto& f : frequent) {
      if (ComputeClosure(f.items, db, 0, db.size()) == f.items) ++expected;
    }
    EXPECT_EQ(closed.size(), expected);
    for (const auto& f : closed) {
      EXPECT_EQ(ComputeClosure(f.items, db, 0, db.size()), f.items);
    }
  }
}

TEST(FilterClosedTest, ClosedSetRecoversAllCounts) {
  // Every frequent itemset's count equals the minimum count among closed
  // supersets — the compact-representation property of closed itemsets.
  const TransactionDatabase db = SmallDatabase();
  FpGrowthMiner miner;
  FrequentItemsetMiner::Options options;
  options.min_count = 1;
  const auto frequent = miner.Mine(db, 0, db.size(), options);
  const auto closed = FilterClosed(frequent);
  for (const auto& f : frequent) {
    uint64_t best = 0;
    for (const auto& c : closed) {
      if (IsSubsetOf(f.items, c.items)) best = std::max(best, c.count);
    }
    EXPECT_EQ(best, f.count) << "itemset size " << f.items.size();
  }
}

}  // namespace
}  // namespace tara
