#ifndef TARA_OBS_QUERY_SPAN_H_
#define TARA_OBS_QUERY_SPAN_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace tara::obs {

/// Scoped latency span: times its enclosing scope and records the elapsed
/// nanoseconds into a Histogram on destruction.
///
/// A null histogram is the *null sink*: the constructor skips the clock
/// read entirely and the destructor is a branch — this is what makes a
/// metrics-disabled engine essentially free, without compiling the
/// instrumentation out.
class QuerySpan {
 public:
  explicit QuerySpan(Histogram* latency) : latency_(latency) {
    if (latency_ != nullptr) start_ = Clock::now();
  }

  QuerySpan(const QuerySpan&) = delete;
  QuerySpan& operator=(const QuerySpan&) = delete;

  /// Drops the span without recording (error paths report through their
  /// own counter instead of polluting the latency series).
  void Cancel() { latency_ = nullptr; }

  ~QuerySpan() {
    if (latency_ == nullptr) return;
    const int64_t nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - start_)
                              .count();
    latency_->Record(nanos < 0 ? 0 : static_cast<uint64_t>(nanos));
  }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* latency_;
  Clock::time_point start_;
};

}  // namespace tara::obs

#endif  // TARA_OBS_QUERY_SPAN_H_
