#ifndef TARA_OBS_METRICS_H_
#define TARA_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

/// \file
/// Lock-cheap process metrics for the TARA engine: monotonic counters,
/// last-value gauges, and log-bucketed latency histograms, collected in a
/// named MetricsRegistry that snapshots to human text or machine JSON.
///
/// Design constraints (see DESIGN.md, "Observability"):
/// - The *recording* paths (Counter::Increment, Gauge::Set,
///   Histogram::Record) touch only relaxed atomics — no locks, no
///   allocation — so they are safe and cheap under the engine's
///   concurrent query phase and TSan-clean by construction.
/// - Registration (MetricsRegistry::Get*) takes a mutex and may allocate;
///   it happens once at engine construction, never per query.
/// - Snapshots read the same atomics with relaxed loads: a snapshot taken
///   while recorders run is a consistent-enough view (each instrument is
///   internally monotone), never a data race.

namespace tara::obs {

/// Monotonically increasing event count.
class alignas(64) Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written value (sizes, seconds, ratios). Writers race benignly:
/// the newest Set wins; there is no read-modify-write on the hot path.
class alignas(64) Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Summary of a histogram at one instant (the snapshot unit).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

/// Fixed-bucket latency histogram over the power-of-√2 grid.
///
/// Bucket b covers one half-octave: two buckets per power of two, with
/// the split at round-up(2^e·√2). Any recorded value is therefore
/// reported (by Percentile) with at most a √2 relative error — accurate
/// enough to tell 2 µs from 2 ms across the full uint64 range — while
/// recording is just one array index computation plus four relaxed
/// atomic adds, with no per-histogram lock and no allocation.
class Histogram {
 public:
  /// Bucket 0 holds zeros; buckets 1 + 2e + h (e in [0,63], h in {0,1})
  /// hold the half-octaves of 2^e.
  static constexpr size_t kBucketCount = 130;

  /// Records one sample. Any thread, any time; relaxed atomics only.
  void Record(uint64_t value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Largest / smallest recorded value (0 when empty).
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t Min() const;

  /// Upper bound of the bucket holding the p-th percentile (p in
  /// [0, 100]), clamped to the observed max. 0 when empty.
  double Percentile(double p) const;

  /// The bucket a value lands in (exposed for boundary tests).
  static size_t BucketIndex(uint64_t value);
  /// Largest value mapping to bucket `index`.
  static uint64_t BucketUpperBound(size_t index);

  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBucketCount] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  /// Sentinel UINT64_MAX = nothing recorded yet.
  std::atomic<uint64_t> min_{UINT64_MAX};
};

/// Named instrument registry. Get* interns by name: the first call
/// creates the instrument, later calls (same name) return the same
/// pointer, so independent components naturally aggregate into shared
/// series. Returned pointers stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide default registry (what tara_cli snapshots).
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Pretty, line-oriented dump for terminals.
  std::string SnapshotText() const;
  /// Machine-readable dump: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,min,max,p50,p90,p99}}}. Keys are
  /// sorted, so equal registry states produce byte-equal JSON.
  std::string SnapshotJson() const;

  /// Zeroes every registered instrument (tests and benchmark reruns).
  void Reset();

 private:
  mutable std::mutex mutex_;
  /// std::map keeps snapshot ordering deterministic; unique_ptr keeps
  /// instrument addresses stable across later registrations.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace tara::obs

#endif  // TARA_OBS_METRICS_H_
