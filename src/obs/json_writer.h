#ifndef TARA_OBS_JSON_WRITER_H_
#define TARA_OBS_JSON_WRITER_H_

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace tara::obs {

/// Minimal streaming JSON writer — just enough for metrics snapshots and
/// the BENCH_*.json emitters, with no dependency beyond the standard
/// library. Comma placement is handled automatically; the caller is
/// responsible for well-nested Begin/End pairs (DCHECK-free by design:
/// misuse shows up immediately as unparsable output in the schema-checked
/// consumers).
///
/// Numbers that hold integral values are printed without a decimal point
/// so equal states serialize byte-identically (golden-testable).
class JsonWriter {
 public:
  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  /// Object key; must be followed by exactly one value or container.
  void Key(std::string_view name) {
    Separate();
    AppendString(name);
    out_ += ':';
    just_wrote_key_ = true;
  }

  void String(std::string_view value) {
    Separate();
    AppendString(value);
  }

  void Number(uint64_t value) {
    Separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out_ += buf;
  }

  void Number(int value) { Number(static_cast<uint64_t>(value)); }

  void Number(double value) {
    Separate();
    char buf[40];
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 9.007199254740992e15) {
      std::snprintf(buf, sizeof(buf), "%.0f", value);
    } else if (std::isfinite(value)) {
      std::snprintf(buf, sizeof(buf), "%.6g", value);
    } else {
      // JSON has no inf/nan; null is the conventional stand-in.
      std::snprintf(buf, sizeof(buf), "null");
    }
    out_ += buf;
  }

  void Bool(bool value) {
    Separate();
    out_ += value ? "true" : "false";
  }

  /// Splices an already-serialized JSON value verbatim (e.g. a registry
  /// snapshot embedded inside a BENCH_*.json report).
  void Raw(std::string_view json) {
    Separate();
    out_ += json;
  }

  const std::string& str() const { return out_; }

 private:
  void Open(char c) {
    Separate();
    out_ += c;
    need_comma_ = false;
  }

  void Close(char c) {
    out_ += c;
    need_comma_ = true;
  }

  /// Emits a comma unless this value directly follows a key or opens a
  /// container's first element.
  void Separate() {
    if (just_wrote_key_) {
      just_wrote_key_ = false;
      return;
    }
    if (need_comma_) out_ += ',';
    need_comma_ = true;
  }

  void AppendString(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\t':
          out_ += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  bool need_comma_ = false;
  bool just_wrote_key_ = false;
};

}  // namespace tara::obs

#endif  // TARA_OBS_JSON_WRITER_H_
