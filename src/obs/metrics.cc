#include "obs/metrics.h"

#include <array>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/json_writer.h"

namespace tara::obs {
namespace {

/// boundary[e] = smallest value in the upper half-octave of 2^e, i.e.
/// ceil(2^e · √2). Computed once; thereafter BucketIndex is a bit_width
/// plus one table compare.
const std::array<uint64_t, 64>& HalfBoundaries() {
  static const std::array<uint64_t, 64> table = [] {
    std::array<uint64_t, 64> t{};
    for (int e = 0; e < 64; ++e) {
      t[e] = static_cast<uint64_t>(
          std::ceil(std::pow(2.0L, static_cast<long double>(e)) *
                    1.41421356237309504880L));
    }
    return t;
  }();
  return table;
}

}  // namespace

size_t Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  const int exp = std::bit_width(value) - 1;
  const size_t half = value >= HalfBoundaries()[exp] ? 1 : 0;
  return 1 + 2 * static_cast<size_t>(exp) + half;
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index == 0) return 0;
  const int exp = static_cast<int>((index - 1) / 2);
  const bool upper_half = (index - 1) % 2 != 0;
  if (!upper_half) return HalfBoundaries()[exp] - 1;
  if (exp == 63) return UINT64_MAX;
  return (uint64_t{2} << exp) - 1;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Min() const {
  const uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

double Histogram::Percentile(double p) const {
  const uint64_t count = Count();
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  uint64_t target =
      static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count)));
  if (target == 0) target = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      // Clamp the bucket bound to the observed range so p0/p100 report
      // real values even though buckets are coarse.
      const double upper = static_cast<double>(BucketUpperBound(i));
      const double lo = static_cast<double>(Min());
      const double hi = static_cast<double>(Max());
      return upper < lo ? lo : (upper > hi ? hi : upper);
    }
  }
  return static_cast<double>(Max());
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = Count();
  s.sum = Sum();
  s.min = Min();
  s.max = Max();
  s.p50 = Percentile(50);
  s.p90 = Percentile(90);
  s.p99 = Percentile(99);
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::SnapshotText() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  if (!counters_.empty()) {
    out << "counters:\n";
    for (const auto& [name, counter] : counters_) {
      out << "  " << name << " = " << counter->Value() << "\n";
    }
  }
  if (!gauges_.empty()) {
    out << "gauges:\n";
    for (const auto& [name, gauge] : gauges_) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.6g", gauge->Value());
      out << "  " << name << " = " << buf << "\n";
    }
  }
  if (!histograms_.empty()) {
    out << "histograms:\n";
    for (const auto& [name, histogram] : histograms_) {
      const HistogramSnapshot s = histogram->Snapshot();
      out << "  " << name << ": count=" << s.count << " sum=" << s.sum
          << " min=" << s.min << " p50=" << static_cast<uint64_t>(s.p50)
          << " p90=" << static_cast<uint64_t>(s.p90)
          << " p99=" << static_cast<uint64_t>(s.p99) << " max=" << s.max
          << "\n";
    }
  }
  if (counters_.empty() && gauges_.empty() && histograms_.empty()) {
    out << "(no metrics registered)\n";
  }
  return out.str();
}

std::string MetricsRegistry::SnapshotJson() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter json;
  json.BeginObject();
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.Key(name);
    json.Number(counter->Value());
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.Key(name);
    json.Number(gauge->Value());
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot s = histogram->Snapshot();
    json.Key(name);
    json.BeginObject();
    json.Key("count");
    json.Number(s.count);
    json.Key("sum");
    json.Number(s.sum);
    json.Key("min");
    json.Number(s.min);
    json.Key("max");
    json.Number(s.max);
    json.Key("p50");
    json.Number(s.p50);
    json.Key("p90");
    json.Number(s.p90);
    json.Key("p99");
    json.Number(s.p99);
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

void MetricsRegistry::Reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace tara::obs
