#include "maras/evaluation.h"

#include <algorithm>

namespace tara {

bool IsHit(const MdarSignal& signal, const std::vector<PlantedDdi>& truth) {
  for (const PlantedDdi& ddi : truth) {
    if (IsSubsetOf(ddi.drugs, signal.assoc.drugs) &&
        std::binary_search(signal.assoc.adrs.begin(), signal.assoc.adrs.end(),
                           ddi.adr)) {
      return true;
    }
  }
  return false;
}

double PrecisionAtK(const std::vector<MdarSignal>& ranked,
                    const std::vector<PlantedDdi>& truth, size_t k) {
  const size_t n = std::min(k, ranked.size());
  if (n == 0) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (IsHit(ranked[i], truth)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

size_t RankOfDdi(const std::vector<MdarSignal>& ranked,
                 const PlantedDdi& ddi) {
  for (size_t i = 0; i < ranked.size(); ++i) {
    const MdarSignal& signal = ranked[i];
    if (IsSubsetOf(ddi.drugs, signal.assoc.drugs) &&
        std::binary_search(signal.assoc.adrs.begin(), signal.assoc.adrs.end(),
                           ddi.adr)) {
      return i + 1;
    }
  }
  return 0;
}

}  // namespace tara
