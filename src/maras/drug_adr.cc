#include "maras/drug_adr.h"

#include <algorithm>

#include "mining/closed_itemsets.h"

namespace tara {

DrugAdrAssociation SplitReport(const Itemset& items, ItemId adr_base) {
  DrugAdrAssociation assoc;
  for (ItemId item : items) {
    if (item < adr_base) {
      assoc.drugs.push_back(item);
    } else {
      assoc.adrs.push_back(item);
    }
  }
  return assoc;
}

SupportType ClassifySupport(const DrugAdrAssociation& assoc,
                            const TransactionDatabase& db, size_t begin,
                            size_t end) {
  const Itemset all = assoc.AllItems();
  size_t containing = 0;
  bool exact = false;
  for (size_t i = begin; i < end; ++i) {
    const Itemset& tx = db[i].items;
    if (!IsSubsetOf(all, tx)) continue;
    ++containing;
    if (tx.size() == all.size()) exact = true;
  }
  if (exact) return SupportType::kExplicit;
  if (containing < 2) return SupportType::kSpurious;
  const Itemset closure = ComputeClosure(all, db, begin, end);
  return closure == all ? SupportType::kImplicit : SupportType::kSpurious;
}

bool IsPairwiseIntersection(const DrugAdrAssociation& assoc,
                            const TransactionDatabase& db, size_t begin,
                            size_t end) {
  const Itemset all = assoc.AllItems();
  // Collect the containing reports once; quadratic over that (usually
  // small) subset.
  std::vector<const Itemset*> containing;
  for (size_t i = begin; i < end; ++i) {
    if (IsSubsetOf(all, db[i].items)) containing.push_back(&db[i].items);
  }
  for (size_t i = 0; i < containing.size(); ++i) {
    for (size_t j = i + 1; j < containing.size(); ++j) {
      if (*containing[i] == *containing[j]) continue;
      if (Intersection(*containing[i], *containing[j]) == all) return true;
    }
  }
  return false;
}

}  // namespace tara
