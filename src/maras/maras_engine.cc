#include "maras/maras_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "mining/closed_itemsets.h"
#include "mining/fp_growth.h"

namespace tara {
namespace {

/// Shapes a frequent itemset into a Drug-ADR association if it has >= 2
/// drugs and >= 1 ADR (the MDAR focus of Section 2.3); returns false
/// otherwise.
bool ShapeCandidate(const Itemset& items, ItemId adr_base,
                    DrugAdrAssociation* out) {
  *out = SplitReport(items, adr_base);
  return out->drugs.size() >= 2 && !out->adrs.empty();
}

void SortByScore(std::vector<MdarSignal>* signals,
                 double MdarSignal::* field) {
  std::sort(signals->begin(), signals->end(),
            [field](const MdarSignal& a, const MdarSignal& b) {
              if (a.*field != b.*field) return a.*field > b.*field;
              if (a.count != b.count) return a.count > b.count;
              if (a.assoc.drugs != b.assoc.drugs) {
                return a.assoc.drugs < b.assoc.drugs;
              }
              return a.assoc.adrs < b.assoc.adrs;
            });
}

}  // namespace

MarasEngine::MarasEngine(const TransactionDatabase& db, size_t begin,
                         size_t end, const Options& options)
    : options_(options),
      db_(db),
      begin_(begin),
      end_(end),
      tidset_(db, begin, end) {
  TARA_CHECK(options.adr_base > 0) << "adr_base must separate the id spaces";

  FpGrowthMiner miner;
  FrequentItemsetMiner::Options mine_options;
  mine_options.min_count = options.min_count;
  mine_options.max_size = options.max_itemset_size;
  const std::vector<FrequentItemset> frequent =
      miner.Mine(db, begin, end, mine_options);
  const std::vector<FrequentItemset> closed = FilterClosed(frequent);

  for (const FrequentItemset& f : closed) {
    DrugAdrAssociation assoc;
    if (!ShapeCandidate(f.items, options.adr_base, &assoc)) continue;
    // FilterClosed is only exact on an uncapped miner output: with
    // max_itemset_size set, an equal-count superset can be invisible to it.
    // Verify true closure against the reports before accepting.
    if (ComputeClosure(f.items, db, begin, end) != f.items) continue;

    MdarSignal signal;
    signal.count = f.count;
    const uint64_t drugs_count = tidset_.Count(assoc.drugs);
    const uint64_t adrs_count = tidset_.Count(assoc.adrs);
    signal.confidence = drugs_count == 0
                            ? 0.0
                            : static_cast<double>(f.count) /
                                  static_cast<double>(drugs_count);
    if (signal.confidence < options.min_confidence) continue;
    signal.lift =
        (drugs_count == 0 || adrs_count == 0)
            ? 0.0
            : (static_cast<double>(f.count) *
               static_cast<double>(tidset_.total())) /
                  (static_cast<double>(drugs_count) *
                   static_cast<double>(adrs_count));
    const Cac cac = BuildCac(assoc, tidset_);
    signal.contrast = ContrastScore(cac, options.theta);
    if (options.classify_support) {
      signal.support_type = ClassifySupport(assoc, db, begin, end);
    }
    signal.assoc = std::move(assoc);
    signals_.push_back(std::move(signal));
  }
  SortByScore(&signals_, &MdarSignal::contrast);
}

std::vector<MdarSignal> MarasEngine::UnfilteredCandidates() const {
  FpGrowthMiner miner;
  FrequentItemsetMiner::Options mine_options;
  mine_options.min_count = options_.min_count;
  mine_options.max_size = options_.max_itemset_size;
  const std::vector<FrequentItemset> frequent =
      miner.Mine(db_, begin_, end_, mine_options);

  std::vector<MdarSignal> candidates;
  for (const FrequentItemset& f : frequent) {
    DrugAdrAssociation assoc;
    if (!ShapeCandidate(f.items, options_.adr_base, &assoc)) continue;
    MdarSignal signal;
    signal.count = f.count;
    const uint64_t drugs_count = tidset_.Count(assoc.drugs);
    const uint64_t adrs_count = tidset_.Count(assoc.adrs);
    signal.confidence = drugs_count == 0
                            ? 0.0
                            : static_cast<double>(f.count) /
                                  static_cast<double>(drugs_count);
    signal.lift =
        (drugs_count == 0 || adrs_count == 0)
            ? 0.0
            : (static_cast<double>(f.count) *
               static_cast<double>(tidset_.total())) /
                  (static_cast<double>(drugs_count) *
                   static_cast<double>(adrs_count));
    signal.assoc = std::move(assoc);
    candidates.push_back(std::move(signal));
  }
  return candidates;
}

std::vector<MdarSignal> MarasEngine::RankByConfidence() const {
  std::vector<MdarSignal> candidates = UnfilteredCandidates();
  SortByScore(&candidates, &MdarSignal::confidence);
  return candidates;
}

std::vector<MdarSignal> MarasEngine::RankByLift() const {
  std::vector<MdarSignal> candidates = UnfilteredCandidates();
  SortByScore(&candidates, &MdarSignal::lift);
  return candidates;
}

}  // namespace tara
