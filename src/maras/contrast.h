#ifndef TARA_MARAS_CONTRAST_H_
#define TARA_MARAS_CONTRAST_H_

#include <vector>

#include "maras/drug_adr.h"
#include "maras/tidset_index.h"

namespace tara {

/// One contextual association D' ⇒ A of a target D ⇒ A, with D' ⊂ D
/// (Definition 6), carrying its confidence over the report collection.
struct ContextualAssociation {
  Itemset drugs;
  double confidence = 0.0;
};

/// The Contextual Association Cluster of a target Drug-ADR association
/// (Definition 7): the target plus every D' ⇒ A for non-empty proper
/// subsets D' of the target drugs, grouped by |D'| (Table 1's layout).
struct Cac {
  DrugAdrAssociation target;
  double target_confidence = 0.0;
  /// levels[i] holds the contextual associations with i+1 drugs; there are
  /// |target.drugs| - 1 levels.
  std::vector<std::vector<ContextualAssociation>> levels;
};

/// Builds the CAC of `target` with exact confidences from the tidset index.
Cac BuildCac(const DrugAdrAssociation& target, const TidsetIndex& index);

/// contrast_max (Formula 5): target confidence minus the maximum contextual
/// confidence. Negative means some drug subset explains the ADRs better.
double ContrastMax(const Cac& cac);

/// contrast_avg (Formula 6): target confidence minus the mean contextual
/// confidence.
double ContrastAvg(const Cac& cac);

/// contrast_cv (Formula 7): contrast_avg damped by the coefficient of
/// variation of all contextual confidences, with penalty weight `theta`.
double ContrastCv(const Cac& cac, double theta);

/// The final MARAS contrast score (Formula 9): per-level confidence gaps
/// weighted by the linear-decay H(i, n) = 1 - (i-1)/n and the per-level
/// variation penalty G, averaged over levels.
double ContrastScore(const Cac& cac, double theta);

}  // namespace tara

#endif  // TARA_MARAS_CONTRAST_H_
