#ifndef TARA_MARAS_MARAS_ENGINE_H_
#define TARA_MARAS_MARAS_ENGINE_H_

#include <cstdint>
#include <vector>

#include "maras/contrast.h"
#include "maras/drug_adr.h"
#include "maras/tidset_index.h"
#include "txdb/transaction_database.h"

namespace tara {

/// A ranked multi-drug adverse reaction (MDAR) signal.
struct MdarSignal {
  DrugAdrAssociation assoc;
  uint64_t count = 0;          ///< reports containing drugs ∪ ADRs
  double confidence = 0.0;     ///< P(ADRs | drugs)
  double lift = 0.0;           ///< reporting ratio
  double contrast = 0.0;       ///< the MARAS score (Formula 9)
  SupportType support_type = SupportType::kSpurious;
};

/// The MARAS signal detector (Section 2.3): learns non-spurious multi-drug
/// Drug-ADR associations from a collection of ADR reports and ranks them by
/// the contrast score.
///
/// Pipeline: mine frequent itemsets over the reports → keep the closed ones
/// (Lemma 1: exactly the explicitly or implicitly supported associations) →
/// keep those shaped like a Drug-ADR association with >= 2 drugs → build
/// each target's Contextual Association Cluster via the vertical tidset
/// index → score with the contrast measure → rank.
class MarasEngine {
 public:
  struct Options {
    ItemId adr_base = 0;          ///< ids >= adr_base are ADRs (required)
    uint64_t min_count = 5;       ///< minimum reports backing a signal
    double theta = 0.75;          ///< variation-penalty weight (Formula 8)
    uint32_t max_itemset_size = 8;
    /// Candidates whose target confidence is below this are not scored.
    double min_confidence = 0.05;
    /// Classify each signal's support type (one extra scan per signal).
    bool classify_support = true;
  };

  /// Analyzes reports [begin, end) of `db`.
  MarasEngine(const TransactionDatabase& db, size_t begin, size_t end,
              const Options& options);

  /// Signals sorted by contrast, descending.
  const std::vector<MdarSignal>& signals() const { return signals_; }

  /// The same candidate universe *without* the closedness (spuriousness)
  /// filter, ranked by plain confidence or by lift (reporting ratio) —
  /// the Table 2 baselines that flood the analyst with redundant partial
  /// interpretations.
  std::vector<MdarSignal> RankByConfidence() const;
  std::vector<MdarSignal> RankByLift() const;

  const TidsetIndex& tidset() const { return tidset_; }

 private:
  std::vector<MdarSignal> UnfilteredCandidates() const;

  Options options_;
  const TransactionDatabase& db_;
  size_t begin_;
  size_t end_;
  TidsetIndex tidset_;
  std::vector<MdarSignal> signals_;
};

}  // namespace tara

#endif  // TARA_MARAS_MARAS_ENGINE_H_
