#ifndef TARA_MARAS_TIDSET_INDEX_H_
#define TARA_MARAS_TIDSET_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "txdb/transaction_database.h"
#include "txdb/types.h"

namespace tara {

/// Vertical bitmap index: one bitset of transaction ids per item. Exact
/// counts of arbitrary itemsets come from AND-ing bitsets and popcounting —
/// the workhorse behind MARAS's contextual-association confidences, where
/// the needed subsets are usually below any frequent-mining threshold.
class TidsetIndex {
 public:
  /// Builds the index over transactions [begin, end) of `db`.
  TidsetIndex(const TransactionDatabase& db, size_t begin, size_t end);

  /// Number of transactions containing every item of `items`. An empty
  /// itemset counts all transactions.
  uint64_t Count(const Itemset& items) const;

  /// Number of indexed transactions.
  uint64_t total() const { return total_; }

 private:
  using Bitmap = std::vector<uint64_t>;

  const Bitmap* Find(ItemId item) const;

  uint64_t total_ = 0;
  size_t words_ = 0;
  std::unordered_map<ItemId, Bitmap> bitmaps_;
};

}  // namespace tara

#endif  // TARA_MARAS_TIDSET_INDEX_H_
