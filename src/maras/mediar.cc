#include "maras/mediar.h"

#include <algorithm>

#include "common/hash.h"

namespace tara {

size_t MediarMonitor::AssocHash::operator()(
    const DrugAdrAssociation& a) const {
  return HashCombine(HashSpan(a.drugs), HashSpan(a.adrs));
}

uint32_t MediarMonitor::AddQuarter(const TransactionDatabase& reports) {
  const uint32_t quarter = quarter_++;
  const MarasEngine engine(reports, 0, reports.size(), options_);
  for (const MdarSignal& signal : engine.signals()) {
    SignalHistory& history = histories_[signal.assoc];
    if (history.quarters.empty()) history.assoc = signal.assoc;
    history.quarters.push_back(quarter);
    history.contrasts.push_back(signal.contrast);
    history.counts.push_back(signal.count);
  }
  return quarter;
}

std::vector<const MediarMonitor::SignalHistory*> MediarMonitor::histories()
    const {
  std::vector<const SignalHistory*> out;
  out.reserve(histories_.size());
  for (const auto& [assoc, history] : histories_) out.push_back(&history);
  return out;
}

std::vector<const MediarMonitor::SignalHistory*> MediarMonitor::ReviewQueue()
    const {
  const uint32_t latest = quarter_ == 0 ? 0 : quarter_ - 1;
  std::vector<const SignalHistory*> queue;
  for (const auto& [assoc, history] : histories_) {
    if (!history.quarters.empty() && history.quarters.back() == latest) {
      queue.push_back(&history);
    }
  }
  std::sort(queue.begin(), queue.end(),
            [latest](const SignalHistory* a, const SignalHistory* b) {
              const bool a_new = a->NewIn(latest);
              const bool b_new = b->NewIn(latest);
              if (a_new != b_new) return a_new;
              if (a->latest_contrast() != b->latest_contrast()) {
                return a->latest_contrast() > b->latest_contrast();
              }
              return a->assoc.drugs < b->assoc.drugs;
            });
  return queue;
}

std::vector<const MediarMonitor::SignalHistory*>
MediarMonitor::StrengtheningSignals() const {
  const uint32_t latest = quarter_ == 0 ? 0 : quarter_ - 1;
  std::vector<const SignalHistory*> out;
  for (const auto& [assoc, history] : histories_) {
    if (!history.quarters.empty() && history.quarters.back() == latest &&
        history.trend() > 0) {
      out.push_back(&history);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SignalHistory* a, const SignalHistory* b) {
              return a->trend() > b->trend();
            });
  return out;
}

}  // namespace tara
