#include "maras/tidset_index.h"

#include <bit>

#include "common/logging.h"

namespace tara {

TidsetIndex::TidsetIndex(const TransactionDatabase& db, size_t begin,
                         size_t end) {
  TARA_CHECK(begin <= end && end <= db.size());
  total_ = end - begin;
  words_ = (total_ + 63) / 64;
  for (size_t i = begin; i < end; ++i) {
    const size_t tid = i - begin;
    for (ItemId item : db[i].items) {
      Bitmap& bitmap = bitmaps_[item];
      if (bitmap.empty()) bitmap.resize(words_, 0);
      bitmap[tid >> 6] |= uint64_t{1} << (tid & 63);
    }
  }
}

const TidsetIndex::Bitmap* TidsetIndex::Find(ItemId item) const {
  const auto it = bitmaps_.find(item);
  return it == bitmaps_.end() ? nullptr : &it->second;
}

uint64_t TidsetIndex::Count(const Itemset& items) const {
  if (items.empty()) return total_;
  const Bitmap* first = Find(items[0]);
  if (first == nullptr) return 0;
  if (items.size() == 1) {
    uint64_t count = 0;
    for (uint64_t word : *first) count += std::popcount(word);
    return count;
  }
  Bitmap acc = *first;
  for (size_t k = 1; k < items.size(); ++k) {
    const Bitmap* next = Find(items[k]);
    if (next == nullptr) return 0;
    for (size_t w = 0; w < words_; ++w) acc[w] &= (*next)[w];
  }
  uint64_t count = 0;
  for (uint64_t word : acc) count += std::popcount(word);
  return count;
}

}  // namespace tara
