#ifndef TARA_MARAS_EVALUATION_H_
#define TARA_MARAS_EVALUATION_H_

#include <cstddef>
#include <vector>

#include "datagen/faers_generator.h"
#include "maras/maras_engine.h"

namespace tara {

/// True if `signal` hits a planted DDI: some ground-truth entry whose drug
/// combination is contained in the signal's drugs and whose interaction ADR
/// is among the signal's ADRs. This mirrors the paper's "hit of a known
/// MDAR" check against Drugs.com/DrugBank.
bool IsHit(const MdarSignal& signal, const std::vector<PlantedDdi>& truth);

/// Precision of the top-k signals against the ground truth (Figure 6's
/// "Precision at K"). `ranked` must already be sorted best-first.
double PrecisionAtK(const std::vector<MdarSignal>& ranked,
                    const std::vector<PlantedDdi>& truth, size_t k);

/// 1-based rank of the first signal hitting `ddi` in `ranked`, or 0 if none
/// does — used for Table 2's "ranked 2,436th by confidence" comparisons.
size_t RankOfDdi(const std::vector<MdarSignal>& ranked, const PlantedDdi& ddi);

}  // namespace tara

#endif  // TARA_MARAS_EVALUATION_H_
