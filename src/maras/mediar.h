#ifndef TARA_MARAS_MEDIAR_H_
#define TARA_MARAS_MEDIAR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "maras/maras_engine.h"

namespace tara {

/// MeDIAR (the dissertation's multi-drug adverse reaction analytics demo):
/// runs MARAS on each arriving quarter of reports and tracks every signal's
/// contrast trajectory across quarters, so a drug-safety reviewer sees not
/// just today's ranking but which interactions are newly appearing and
/// which are strengthening — the temporal dimension the EDBT paper's TARA
/// machinery brings to pharmacovigilance.
class MediarMonitor {
 public:
  /// The cross-quarter history of one MDAR signal.
  struct SignalHistory {
    DrugAdrAssociation assoc;
    std::vector<uint32_t> quarters;   ///< quarters where it was signaled
    std::vector<double> contrasts;    ///< contrast per signaled quarter
    std::vector<uint64_t> counts;     ///< backing reports per quarter

    /// Contrast in the most recent signaled quarter.
    double latest_contrast() const {
      return contrasts.empty() ? 0.0 : contrasts.back();
    }
    /// True if the signal first appeared in quarter `q`.
    bool NewIn(uint32_t q) const {
      return !quarters.empty() && quarters.front() == q;
    }
    /// Contrast change from the previous signaled quarter to the latest.
    double trend() const {
      return contrasts.size() < 2
                 ? 0.0
                 : contrasts.back() - contrasts[contrasts.size() - 2];
    }
  };

  explicit MediarMonitor(const MarasEngine::Options& options)
      : options_(options) {}

  /// Analyzes the next quarter of reports; returns its index.
  uint32_t AddQuarter(const TransactionDatabase& reports);

  uint32_t quarter_count() const { return quarter_; }

  /// All tracked signal histories (unordered).
  std::vector<const SignalHistory*> histories() const;

  /// Signals from the latest quarter ranked for reviewer attention: new
  /// signals first, then by latest contrast.
  std::vector<const SignalHistory*> ReviewQueue() const;

  /// Signals whose contrast rose in the latest quarter.
  std::vector<const SignalHistory*> StrengtheningSignals() const;

 private:
  struct AssocHash {
    size_t operator()(const DrugAdrAssociation& a) const;
  };

  MarasEngine::Options options_;
  uint32_t quarter_ = 0;
  std::unordered_map<DrugAdrAssociation, SignalHistory, AssocHash>
      histories_;
};

}  // namespace tara

#endif  // TARA_MARAS_MEDIAR_H_
