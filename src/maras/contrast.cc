#include "maras/contrast.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tara {
namespace {

/// Sample coefficient of variation of confidences (the paper's worked
/// example in Section 2.3.5 implies the n-1 denominator). Zero for fewer
/// than two values or zero mean.
double CoefficientOfVariation(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double sum = 0;
  for (double v : values) sum += v;
  const double mean = sum / values.size();
  if (mean <= 0) return 0.0;
  double ss = 0;
  for (double v : values) ss += (v - mean) * (v - mean);
  const double stddev = std::sqrt(ss / (values.size() - 1));
  return stddev / mean;
}

double Penalty(const std::vector<double>& confidences, double theta) {
  return 1.0 - theta * CoefficientOfVariation(confidences);
}

std::vector<double> AllContextualConfidences(const Cac& cac) {
  std::vector<double> all;
  for (const auto& level : cac.levels) {
    for (const ContextualAssociation& c : level) all.push_back(c.confidence);
  }
  return all;
}

}  // namespace

Cac BuildCac(const DrugAdrAssociation& target, const TidsetIndex& index) {
  TARA_CHECK_GE(target.drugs.size(), 2u) << "CAC needs a multi-drug target";
  TARA_CHECK_LE(target.drugs.size(), 16u);
  Cac cac;
  cac.target = target;

  const uint64_t target_union = index.Count(target.AllItems());
  const uint64_t target_drugs = index.Count(target.drugs);
  cac.target_confidence =
      target_drugs == 0 ? 0.0
                        : static_cast<double>(target_union) /
                              static_cast<double>(target_drugs);

  const size_t n = target.drugs.size();
  cac.levels.assign(n - 1, {});
  const uint32_t full = (1u << n) - 1;
  for (uint32_t mask = 1; mask < full; ++mask) {
    Itemset subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) subset.push_back(target.drugs[i]);
    }
    const uint64_t drugs_count = index.Count(subset);
    const uint64_t union_count = index.Count(Union(subset, target.adrs));
    ContextualAssociation ctx;
    ctx.confidence = drugs_count == 0
                         ? 0.0
                         : static_cast<double>(union_count) /
                               static_cast<double>(drugs_count);
    const size_t level = subset.size() - 1;
    ctx.drugs = std::move(subset);
    cac.levels[level].push_back(std::move(ctx));
  }
  return cac;
}

double ContrastMax(const Cac& cac) {
  double max_conf = 0.0;
  for (const auto& level : cac.levels) {
    for (const ContextualAssociation& c : level) {
      max_conf = std::max(max_conf, c.confidence);
    }
  }
  return cac.target_confidence - max_conf;
}

double ContrastAvg(const Cac& cac) {
  const std::vector<double> all = AllContextualConfidences(cac);
  if (all.empty()) return cac.target_confidence;
  double sum = 0;
  for (double v : all) sum += v;
  return cac.target_confidence - sum / all.size();
}

double ContrastCv(const Cac& cac, double theta) {
  return ContrastAvg(cac) * Penalty(AllContextualConfidences(cac), theta);
}

double ContrastScore(const Cac& cac, double theta) {
  const size_t n = cac.levels.size() + 1;  // number of target drugs
  double score = 0;
  for (size_t level = 0; level < cac.levels.size(); ++level) {
    const auto& group = cac.levels[level];
    if (group.empty()) continue;
    const size_t i = level + 1;  // drugs per contextual association
    double gap_sum = 0;
    std::vector<double> confidences;
    confidences.reserve(group.size());
    for (const ContextualAssociation& c : group) {
      gap_sum += cac.target_confidence - c.confidence;
      confidences.push_back(c.confidence);
    }
    const double mean_gap = gap_sum / group.size();
    const double weight =
        1.0 - (static_cast<double>(i) - 1.0) / static_cast<double>(n);
    score += mean_gap * weight * Penalty(confidences, theta);
  }
  return score / static_cast<double>(n);
}

}  // namespace tara
