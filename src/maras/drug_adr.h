#ifndef TARA_MARAS_DRUG_ADR_H_
#define TARA_MARAS_DRUG_ADR_H_

#include <cstdint>

#include "txdb/transaction_database.h"
#include "txdb/types.h"

namespace tara {

/// A Drug-ADR association D ⇒ A (Definition 2): drugs and ADRs come from
/// disjoint item-id spaces — ids below `adr_base` are drugs, ids at or
/// above it are ADRs.
struct DrugAdrAssociation {
  Itemset drugs;
  Itemset adrs;

  Itemset AllItems() const { return Union(drugs, adrs); }

  bool operator==(const DrugAdrAssociation& other) const {
    return drugs == other.drugs && adrs == other.adrs;
  }
};

/// Splits a report's canonical item list into its drug and ADR parts.
DrugAdrAssociation SplitReport(const Itemset& items, ItemId adr_base);

/// How a Drug-ADR association is supported by the report collection
/// (Definitions 3 and 4). Spurious associations are partial interpretations
/// that no report or report intersection backs, and must be discarded.
enum class SupportType {
  kExplicit,  ///< some report contains exactly these drugs and ADRs
  kImplicit,  ///< closed intersection of >= 2 reports, not explicit
  kSpurious,  ///< neither — a misleading partial interpretation
};

/// Classifies the association against reports [begin, end) of `db`, by the
/// closure characterization of Lemma 1: explicit if some report equals
/// D ∪ A exactly; otherwise implicit iff D ∪ A is closed (equals the
/// intersection of all reports containing it) and occurs at all; spurious
/// otherwise.
SupportType ClassifySupport(const DrugAdrAssociation& assoc,
                            const TransactionDatabase& db, size_t begin,
                            size_t end);

/// True if some pair of distinct reports intersects exactly to D ∪ A —
/// Definition 4's literal form, used by tests to validate Lemma 1
/// empirically.
bool IsPairwiseIntersection(const DrugAdrAssociation& assoc,
                            const TransactionDatabase& db, size_t begin,
                            size_t end);

}  // namespace tara

#endif  // TARA_MARAS_DRUG_ADR_H_
