#ifndef TARA_MINING_FREQUENT_ITEMSET_H_
#define TARA_MINING_FREQUENT_ITEMSET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "txdb/transaction_database.h"
#include "txdb/types.h"

namespace tara {

/// A frequent itemset together with its occurrence count in the mined range.
struct FrequentItemset {
  Itemset items;
  uint64_t count = 0;
};

/// Abstract frequent-itemset mining algorithm over an index slice
/// [begin, end) of a TransactionDatabase.
///
/// Three implementations are provided — Apriori, FP-Growth, and H-Mine —
/// which must produce identical results; the equivalence is enforced by the
/// parameterized test suite. FP-Growth is the default workhorse; H-Mine
/// doubles as the pregeneration stage of the paper's H-Mine baseline.
class FrequentItemsetMiner {
 public:
  struct Options {
    /// Minimum absolute occurrence count (ceil(minsupp * |D|)).
    uint64_t min_count = 1;
    /// Maximum itemset cardinality; 0 means unlimited. Benchmark harnesses
    /// cap this to keep dense synthetic workloads tractable.
    uint32_t max_size = 0;
  };

  virtual ~FrequentItemsetMiner() = default;

  /// Mines all itemsets with count >= options.min_count among transactions
  /// [begin, end). Result order is unspecified; itemsets are canonical.
  virtual std::vector<FrequentItemset> Mine(const TransactionDatabase& db,
                                            size_t begin, size_t end,
                                            const Options& options) const = 0;

  /// Algorithm name for reports ("apriori", "fp-growth", "h-mine").
  virtual std::string name() const = 0;
};

/// Sorts itemsets lexicographically — a canonical order for comparing the
/// outputs of different miners.
void SortItemsets(std::vector<FrequentItemset>* itemsets);

/// Converts a fractional minimum support into the absolute count used by
/// Options (ceil(min_support * n), at least 1).
uint64_t MinCountForSupport(double min_support, size_t n);

}  // namespace tara

#endif  // TARA_MINING_FREQUENT_ITEMSET_H_
