#include "mining/apriori.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"

namespace tara {
namespace {

struct ItemsetHash {
  size_t operator()(const Itemset& s) const { return HashSpan(s); }
};

using CandidateCounts = std::unordered_map<Itemset, uint64_t, ItemsetHash>;

/// Apriori-gen: joins two frequent (k-1)-itemsets sharing a (k-2)-prefix and
/// prunes candidates with an infrequent (k-1)-subset.
std::vector<Itemset> GenerateCandidates(
    const std::vector<Itemset>& previous_level) {
  std::vector<Itemset> candidates;
  std::unordered_map<Itemset, bool, ItemsetHash> frequent;
  frequent.reserve(previous_level.size() * 2);
  for (const Itemset& s : previous_level) frequent[s] = true;

  for (size_t i = 0; i < previous_level.size(); ++i) {
    for (size_t j = i + 1; j < previous_level.size(); ++j) {
      const Itemset& a = previous_level[i];
      const Itemset& b = previous_level[j];
      // Sorted lexicographic order means joinable pairs share all but the
      // last element.
      if (!std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1)) {
        // previous_level is sorted, so once prefixes diverge no later j
        // matches i either.
        break;
      }
      Itemset candidate = a;
      candidate.push_back(b.back());
      // Prune: every (k-1)-subset must be frequent. Subsets obtained by
      // dropping one of the first k-2 positions are the only ones not
      // already known frequent (a and b are).
      bool all_frequent = true;
      for (size_t drop = 0; drop + 2 < candidate.size(); ++drop) {
        Itemset subset;
        subset.reserve(candidate.size() - 1);
        for (size_t p = 0; p < candidate.size(); ++p) {
          if (p != drop) subset.push_back(candidate[p]);
        }
        if (!frequent.count(subset)) {
          all_frequent = false;
          break;
        }
      }
      if (all_frequent) candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

}  // namespace

std::vector<FrequentItemset> AprioriMiner::Mine(const TransactionDatabase& db,
                                                size_t begin, size_t end,
                                                const Options& options) const {
  TARA_CHECK(begin <= end && end <= db.size());
  std::vector<FrequentItemset> result;

  // Level 1: direct item counting.
  std::unordered_map<ItemId, uint64_t> item_counts;
  for (size_t i = begin; i < end; ++i) {
    for (ItemId item : db[i].items) ++item_counts[item];
  }
  std::vector<Itemset> level;
  for (const auto& [item, count] : item_counts) {
    if (count >= options.min_count) {
      result.push_back(FrequentItemset{{item}, count});
      level.push_back({item});
    }
  }
  std::sort(level.begin(), level.end());

  uint32_t k = 2;
  while (!level.empty() && (options.max_size == 0 || k <= options.max_size)) {
    std::vector<Itemset> candidates = GenerateCandidates(level);
    if (candidates.empty()) break;
    std::sort(candidates.begin(), candidates.end());

    CandidateCounts counts;
    counts.reserve(candidates.size() * 2);
    for (const Itemset& c : candidates) counts[c] = 0;
    for (size_t i = begin; i < end; ++i) {
      const Itemset& tx = db[i].items;
      if (tx.size() < k) continue;
      for (auto& [candidate, count] : counts) {
        if (IsSubsetOf(candidate, tx)) ++count;
      }
    }

    level.clear();
    for (const Itemset& c : candidates) {
      const uint64_t count = counts[c];
      if (count >= options.min_count) {
        result.push_back(FrequentItemset{c, count});
        level.push_back(c);
      }
    }
    std::sort(level.begin(), level.end());
    ++k;
  }
  return result;
}

}  // namespace tara
