#ifndef TARA_MINING_FP_GROWTH_H_
#define TARA_MINING_FP_GROWTH_H_

#include "mining/frequent_itemset.h"

namespace tara {

/// FP-Growth (Han et al.): builds a frequency-ordered prefix tree of the
/// transactions and mines it recursively via conditional pattern bases.
/// This is the workhorse miner used by the TARA offline preprocessing phase.
class FpGrowthMiner : public FrequentItemsetMiner {
 public:
  std::vector<FrequentItemset> Mine(const TransactionDatabase& db,
                                    size_t begin, size_t end,
                                    const Options& options) const override;

  std::string name() const override { return "fp-growth"; }
};

}  // namespace tara

#endif  // TARA_MINING_FP_GROWTH_H_
