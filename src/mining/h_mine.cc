#include "mining/h_mine.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace tara {
namespace {

/// Cursor into one stored transaction: items at positions >= offset are the
/// candidate extensions for the current prefix.
struct Cursor {
  uint32_t row = 0;
  uint32_t offset = 0;
};

struct HContext {
  const std::vector<std::vector<ItemId>>* rows;
  uint64_t min_count;
  uint32_t max_size;
  std::vector<FrequentItemset>* out;
};

void MineProjection(const std::vector<Cursor>& cursors, Itemset* prefix,
                    const HContext& ctx) {
  if (ctx.max_size != 0 && prefix->size() >= ctx.max_size) return;

  // Count extension items reachable from the cursors, and remember where
  // each item occurs so the child projection can be built in one pass.
  std::unordered_map<ItemId, uint64_t> counts;
  for (const Cursor& c : cursors) {
    const std::vector<ItemId>& row = (*ctx.rows)[c.row];
    for (uint32_t p = c.offset; p < row.size(); ++p) ++counts[row[p]];
  }

  std::vector<ItemId> frequent;
  for (const auto& [item, count] : counts) {
    if (count >= ctx.min_count) frequent.push_back(item);
  }
  std::sort(frequent.begin(), frequent.end());

  for (ItemId item : frequent) {
    prefix->push_back(item);
    Itemset emitted = *prefix;
    Canonicalize(&emitted);
    ctx.out->push_back(FrequentItemset{std::move(emitted), counts[item]});

    std::vector<Cursor> child;
    for (const Cursor& c : cursors) {
      const std::vector<ItemId>& row = (*ctx.rows)[c.row];
      for (uint32_t p = c.offset; p < row.size(); ++p) {
        if (row[p] == item) {
          if (p + 1 < row.size()) child.push_back(Cursor{c.row, p + 1});
          break;
        }
      }
    }
    if (!child.empty()) MineProjection(child, prefix, ctx);
    prefix->pop_back();
  }
}

}  // namespace

std::vector<FrequentItemset> HMineMiner::Mine(const TransactionDatabase& db,
                                              size_t begin, size_t end,
                                              const Options& options) const {
  TARA_CHECK(begin <= end && end <= db.size());
  std::vector<FrequentItemset> result;

  std::unordered_map<ItemId, uint64_t> item_counts;
  for (size_t i = begin; i < end; ++i) {
    for (ItemId item : db[i].items) ++item_counts[item];
  }

  // Keep frequent items only; rows stay in canonical (ascending id) order,
  // which is the fixed total order the projections use.
  std::vector<std::vector<ItemId>> rows;
  rows.reserve(end - begin);
  std::vector<Cursor> cursors;
  for (size_t i = begin; i < end; ++i) {
    std::vector<ItemId> filtered;
    for (ItemId item : db[i].items) {
      if (item_counts[item] >= options.min_count) filtered.push_back(item);
    }
    if (!filtered.empty()) {
      cursors.push_back(
          Cursor{static_cast<uint32_t>(rows.size()), 0});
      rows.push_back(std::move(filtered));
    }
  }

  HContext ctx{&rows, options.min_count, options.max_size, &result};
  Itemset prefix;
  MineProjection(cursors, &prefix, ctx);
  return result;
}

}  // namespace tara
