#include "mining/frequent_itemset.h"

#include <algorithm>
#include <cmath>

namespace tara {

void SortItemsets(std::vector<FrequentItemset>* itemsets) {
  std::sort(itemsets->begin(), itemsets->end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.items < b.items;
            });
}

uint64_t MinCountForSupport(double min_support, size_t n) {
  const double raw = min_support * static_cast<double>(n);
  const uint64_t count = static_cast<uint64_t>(std::ceil(raw - 1e-9));
  return count == 0 ? 1 : count;
}

}  // namespace tara
