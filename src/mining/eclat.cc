#include "mining/eclat.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "common/logging.h"

namespace tara {
namespace {

using Bitmap = std::vector<uint64_t>;

uint64_t Popcount(const Bitmap& bitmap) {
  uint64_t count = 0;
  for (uint64_t word : bitmap) count += std::popcount(word);
  return count;
}

Bitmap Intersect(const Bitmap& a, const Bitmap& b) {
  Bitmap out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] & b[i];
  return out;
}

struct EclatContext {
  uint64_t min_count;
  uint32_t max_size;
  std::vector<FrequentItemset>* out;
};

/// Depth-first extension: `candidates` holds (item, tidset, count) triples
/// sharing the prefix, in ascending item order; each is extended by the
/// candidates after it.
struct Candidate {
  ItemId item;
  Bitmap tids;
  uint64_t count;
};

void MineBranch(const std::vector<Candidate>& candidates, Itemset* prefix,
                const EclatContext& ctx) {
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    prefix->push_back(c.item);
    ctx.out->push_back(FrequentItemset{*prefix, c.count});
    if (ctx.max_size == 0 || prefix->size() < ctx.max_size) {
      std::vector<Candidate> next;
      for (size_t j = i + 1; j < candidates.size(); ++j) {
        Bitmap joint = Intersect(c.tids, candidates[j].tids);
        const uint64_t count = Popcount(joint);
        if (count >= ctx.min_count) {
          next.push_back(Candidate{candidates[j].item, std::move(joint),
                                   count});
        }
      }
      if (!next.empty()) MineBranch(next, prefix, ctx);
    }
    prefix->pop_back();
  }
}

}  // namespace

std::vector<FrequentItemset> EclatMiner::Mine(const TransactionDatabase& db,
                                              size_t begin, size_t end,
                                              const Options& options) const {
  TARA_CHECK(begin <= end && end <= db.size());
  const size_t n = end - begin;
  const size_t words = (n + 63) / 64;

  // Build vertical tidsets for all items.
  std::unordered_map<ItemId, Bitmap> tidsets;
  for (size_t i = begin; i < end; ++i) {
    const size_t tid = i - begin;
    for (ItemId item : db[i].items) {
      Bitmap& bitmap = tidsets[item];
      if (bitmap.empty()) bitmap.resize(words, 0);
      bitmap[tid >> 6] |= uint64_t{1} << (tid & 63);
    }
  }

  std::vector<Candidate> roots;
  for (auto& [item, bitmap] : tidsets) {
    const uint64_t count = Popcount(bitmap);
    if (count >= options.min_count) {
      roots.push_back(Candidate{item, std::move(bitmap), count});
    }
  }
  std::sort(roots.begin(), roots.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.item < b.item;
            });

  std::vector<FrequentItemset> result;
  EclatContext ctx{options.min_count, options.max_size, &result};
  Itemset prefix;
  MineBranch(roots, &prefix, ctx);
  return result;
}

}  // namespace tara
