#include "mining/fp_growth.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace tara {
namespace {

/// Node of an FP-tree. Children are kept in a small sorted vector: trees for
/// the window sizes used here are wide at the root but shallow, and vector
/// scan beats hashing for the typical fanout.
struct FpNode {
  ItemId item = 0;
  uint64_t count = 0;
  int32_t parent = -1;
  std::vector<int32_t> children;
};

class FpTree {
 public:
  FpTree() { nodes_.push_back(FpNode{});  /* root */ }

  /// Inserts a transaction (items already filtered to frequent ones and
  /// sorted by descending global frequency) with multiplicity `count`.
  void Insert(const std::vector<ItemId>& items, uint64_t count,
              std::unordered_map<ItemId, std::vector<int32_t>>* header) {
    int32_t current = 0;
    for (ItemId item : items) {
      int32_t child = -1;
      for (int32_t c : nodes_[current].children) {
        if (nodes_[c].item == item) {
          child = c;
          break;
        }
      }
      if (child < 0) {
        child = static_cast<int32_t>(nodes_.size());
        nodes_.push_back(FpNode{item, 0, current, {}});
        nodes_[current].children.push_back(child);
        (*header)[item].push_back(child);
      }
      nodes_[child].count += count;
      current = child;
    }
  }

  const FpNode& node(int32_t i) const { return nodes_[i]; }

 private:
  std::vector<FpNode> nodes_;
};

/// A conditional pattern base entry: the prefix path items (frequency-order)
/// and how many times the path was traversed.
struct PatternBase {
  std::vector<std::pair<std::vector<ItemId>, uint64_t>> paths;
};

struct MineContext {
  uint64_t min_count;
  uint32_t max_size;  // 0 = unlimited
  std::vector<FrequentItemset>* out;
};

/// Recursive FP-Growth over a list of (path, count) rows. `suffix` is the
/// itemset accumulated so far (canonical order restored at emission).
void MinePatternBase(
    const std::vector<std::pair<std::vector<ItemId>, uint64_t>>& rows,
    Itemset* suffix, const MineContext& ctx) {
  if (ctx.max_size != 0 && suffix->size() >= ctx.max_size) return;

  // Count items in this conditional base.
  std::unordered_map<ItemId, uint64_t> counts;
  for (const auto& [path, count] : rows) {
    for (ItemId item : path) counts[item] += count;
  }
  std::vector<std::pair<ItemId, uint64_t>> frequent;
  for (const auto& [item, count] : counts) {
    if (count >= ctx.min_count) frequent.emplace_back(item, count);
  }
  // Deterministic processing order.
  std::sort(frequent.begin(), frequent.end());

  for (const auto& [item, count] : frequent) {
    suffix->push_back(item);
    Itemset emitted = *suffix;
    Canonicalize(&emitted);
    ctx.out->push_back(FrequentItemset{std::move(emitted), count});

    if (ctx.max_size == 0 || suffix->size() < ctx.max_size) {
      // Build the conditional base of `item`: for every row containing it,
      // keep the items before it (paths are in fixed global frequency
      // order, so "before" = the other items that can still extend).
      std::vector<std::pair<std::vector<ItemId>, uint64_t>> conditional;
      for (const auto& [path, row_count] : rows) {
        auto it = std::find(path.begin(), path.end(), item);
        if (it == path.end()) continue;
        std::vector<ItemId> prefix(path.begin(), it);
        if (!prefix.empty()) conditional.emplace_back(std::move(prefix),
                                                      row_count);
      }
      if (!conditional.empty()) MinePatternBase(conditional, suffix, ctx);
    }
    suffix->pop_back();
  }
}

}  // namespace

std::vector<FrequentItemset> FpGrowthMiner::Mine(const TransactionDatabase& db,
                                                 size_t begin, size_t end,
                                                 const Options& options) const {
  TARA_CHECK(begin <= end && end <= db.size());
  std::vector<FrequentItemset> result;

  // Pass 1: global item frequencies.
  std::unordered_map<ItemId, uint64_t> item_counts;
  for (size_t i = begin; i < end; ++i) {
    for (ItemId item : db[i].items) ++item_counts[item];
  }
  // Frequency-descending order (ties by item id) for tree compactness.
  std::vector<std::pair<ItemId, uint64_t>> order;
  for (const auto& [item, count] : item_counts) {
    if (count >= options.min_count) order.emplace_back(item, count);
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::unordered_map<ItemId, uint32_t> rank;
  rank.reserve(order.size() * 2);
  for (uint32_t r = 0; r < order.size(); ++r) rank[order[r].first] = r;

  for (const auto& [item, count] : order) {
    result.push_back(FrequentItemset{{item}, count});
  }
  if (order.empty() || (options.max_size == 1)) return result;

  // Pass 2: build the FP-tree.
  FpTree tree;
  std::unordered_map<ItemId, std::vector<int32_t>> header;
  std::vector<ItemId> filtered;
  for (size_t i = begin; i < end; ++i) {
    filtered.clear();
    for (ItemId item : db[i].items) {
      if (rank.count(item)) filtered.push_back(item);
    }
    std::sort(filtered.begin(), filtered.end(),
              [&](ItemId a, ItemId b) { return rank[a] < rank[b]; });
    if (!filtered.empty()) tree.Insert(filtered, 1, &header);
  }

  // Mine each item's conditional pattern base, in reverse frequency order.
  MineContext ctx{options.min_count, options.max_size, &result};
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const ItemId item = it->first;
    std::vector<std::pair<std::vector<ItemId>, uint64_t>> rows;
    for (int32_t node_index : header[item]) {
      const uint64_t count = tree.node(node_index).count;
      std::vector<ItemId> path;
      int32_t current = tree.node(node_index).parent;
      while (current > 0) {
        path.push_back(tree.node(current).item);
        current = tree.node(current).parent;
      }
      std::reverse(path.begin(), path.end());
      if (!path.empty()) rows.emplace_back(std::move(path), count);
    }
    if (rows.empty()) continue;
    Itemset suffix{item};
    MinePatternBase(rows, &suffix, ctx);
  }
  return result;
}

}  // namespace tara
