#ifndef TARA_MINING_MEASURES_H_
#define TARA_MINING_MEASURES_H_

#include <cstdint>

namespace tara {

/// Raw occurrence counts backing the interestingness measures of a rule
/// X ⇒ Y over a transaction range (Formulas 1-3 of the paper). Counts are
/// stored rather than ratios so measures over window unions stay exact.
struct RuleCounts {
  uint64_t rule_count = 0;        ///< |F(X ∪ Y, D, T)|
  uint64_t antecedent_count = 0;  ///< |F(X, D, T)|
  uint64_t consequent_count = 0;  ///< |F(Y, D, T)| (needed for lift only)
  uint64_t total = 0;             ///< |F(∅, D, T)| = number of transactions
};

/// Support(X ⇒ Y) = |F(X∪Y)| / |D| (Formula 1). Zero when the range is
/// empty.
inline double Support(const RuleCounts& c) {
  return c.total == 0 ? 0.0
                      : static_cast<double>(c.rule_count) /
                            static_cast<double>(c.total);
}

/// Confidence(X ⇒ Y) = |F(X∪Y)| / |F(X)| (Formula 2). Zero when the
/// antecedent never occurs.
inline double Confidence(const RuleCounts& c) {
  return c.antecedent_count == 0
             ? 0.0
             : static_cast<double>(c.rule_count) /
                   static_cast<double>(c.antecedent_count);
}

/// Lift (a.k.a. reporting ratio in pharmacovigilance, Formula 3). Zero when
/// either side never occurs.
inline double Lift(const RuleCounts& c) {
  if (c.antecedent_count == 0 || c.consequent_count == 0) return 0.0;
  return (static_cast<double>(c.rule_count) * static_cast<double>(c.total)) /
         (static_cast<double>(c.antecedent_count) *
          static_cast<double>(c.consequent_count));
}

}  // namespace tara

#endif  // TARA_MINING_MEASURES_H_
