#ifndef TARA_MINING_RULE_GENERATION_H_
#define TARA_MINING_RULE_GENERATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "mining/frequent_itemset.h"
#include "txdb/types.h"

namespace tara {

/// One association rule X ⇒ Y mined from a window, with the raw counts from
/// which support and confidence derive.
struct MinedRule {
  Itemset antecedent;
  Itemset consequent;
  uint64_t rule_count = 0;        ///< count of X ∪ Y
  uint64_t antecedent_count = 0;  ///< count of X

  double SupportOver(uint64_t total) const {
    return total == 0 ? 0.0
                      : static_cast<double>(rule_count) /
                            static_cast<double>(total);
  }
  double Confidence() const {
    return antecedent_count == 0
               ? 0.0
               : static_cast<double>(rule_count) /
                     static_cast<double>(antecedent_count);
  }
};

/// Lookup table from canonical itemset to its count, built from a miner
/// output. Downward closure guarantees every subset of a frequent itemset is
/// present.
class ItemsetCountIndex {
 public:
  explicit ItemsetCountIndex(const std::vector<FrequentItemset>& frequent);

  /// Count of `items`, or 0 if not frequent (not present).
  uint64_t Count(const Itemset& items) const;

  size_t size() const { return counts_.size(); }

 private:
  struct Hash {
    size_t operator()(const Itemset& s) const;
  };
  std::unordered_map<Itemset, uint64_t, Hash> counts_;
};

/// Generates every rule X ⇒ Y with X ∪ Y in `frequent`, X, Y non-empty
/// disjoint, and confidence >= `min_confidence`. This is the paper's rule
/// derivation step: TARA runs it once per window offline with the archive
/// floor thresholds; the H-Mine baseline runs it per query online.
///
/// With a non-null `pool`, the sweep over `frequent` is chunked across the
/// pool's workers; per-chunk outputs are concatenated in chunk order, so
/// the result is element-for-element identical to the sequential sweep
/// (the determinism the parallel offline build relies on).
std::vector<MinedRule> GenerateRules(
    const std::vector<FrequentItemset>& frequent, double min_confidence,
    ThreadPool* pool = nullptr);

}  // namespace tara

#endif  // TARA_MINING_RULE_GENERATION_H_
