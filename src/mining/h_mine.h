#ifndef TARA_MINING_H_MINE_H_
#define TARA_MINING_H_MINE_H_

#include "mining/frequent_itemset.h"

namespace tara {

/// H-Mine (Pei et al.): mines frequent itemsets by depth-first projection
/// over a hyper-structure of the frequent-item-filtered transactions. Each
/// projection is represented as (row, offset) cursors into a shared
/// transaction store, the in-memory rendering of H-struct hyperlinks.
///
/// This is also the offline pregeneration engine of the paper's H-Mine
/// baseline (Section 2.5.2), which stores the mined itemsets and derives
/// rules at query time.
class HMineMiner : public FrequentItemsetMiner {
 public:
  std::vector<FrequentItemset> Mine(const TransactionDatabase& db,
                                    size_t begin, size_t end,
                                    const Options& options) const override;

  std::string name() const override { return "h-mine"; }
};

}  // namespace tara

#endif  // TARA_MINING_H_MINE_H_
