#ifndef TARA_MINING_APRIORI_H_
#define TARA_MINING_APRIORI_H_

#include "mining/frequent_itemset.h"

namespace tara {

/// Classic level-wise Apriori (Agrawal & Srikant). Kept primarily as the
/// readable reference implementation that the faster miners are validated
/// against; it is also the mining engine inside the DCTAR baseline, matching
/// the paper's "derive the ruleset directly from the raw data" behavior.
class AprioriMiner : public FrequentItemsetMiner {
 public:
  std::vector<FrequentItemset> Mine(const TransactionDatabase& db,
                                    size_t begin, size_t end,
                                    const Options& options) const override;

  std::string name() const override { return "apriori"; }
};

}  // namespace tara

#endif  // TARA_MINING_APRIORI_H_
