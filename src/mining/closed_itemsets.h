#ifndef TARA_MINING_CLOSED_ITEMSETS_H_
#define TARA_MINING_CLOSED_ITEMSETS_H_

#include <vector>

#include "mining/frequent_itemset.h"
#include "txdb/transaction_database.h"

namespace tara {

/// Computes the closure of `items` over transactions [begin, end): the
/// intersection of every transaction containing `items`. An itemset is
/// closed iff it equals its own closure. Returns an empty set if no
/// transaction contains `items`.
Itemset ComputeClosure(const Itemset& items, const TransactionDatabase& db,
                       size_t begin, size_t end);

/// Filters `frequent` (a complete frequent-itemset collection, e.g. a miner
/// output) down to the closed ones: those with no strict superset of equal
/// count in the collection (Definition 5). The input must be
/// downward-complete — every frequent subset present — which all miners in
/// this library guarantee.
std::vector<FrequentItemset> FilterClosed(
    const std::vector<FrequentItemset>& frequent);

}  // namespace tara

#endif  // TARA_MINING_CLOSED_ITEMSETS_H_
