#ifndef TARA_MINING_ECLAT_H_
#define TARA_MINING_ECLAT_H_

#include "mining/frequent_itemset.h"

namespace tara {

/// Eclat (Zaki): vertical mining over transaction-id bitsets. Each item
/// carries the bitset of transactions containing it; an itemset's count is
/// the popcount of the intersection, and the search proceeds depth-first
/// over a prefix tree with tidset intersection at each extension.
///
/// Included as the fourth independently-implemented miner: it exercises a
/// completely different data layout (vertical vs the horizontal Apriori /
/// FP-tree / H-struct), which makes the four-way equivalence test a strong
/// oracle for all of them.
class EclatMiner : public FrequentItemsetMiner {
 public:
  std::vector<FrequentItemset> Mine(const TransactionDatabase& db,
                                    size_t begin, size_t end,
                                    const Options& options) const override;

  std::string name() const override { return "eclat"; }
};

}  // namespace tara

#endif  // TARA_MINING_ECLAT_H_
