#include "mining/closed_itemsets.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"

namespace tara {

Itemset ComputeClosure(const Itemset& items, const TransactionDatabase& db,
                       size_t begin, size_t end) {
  Itemset closure;
  bool first = true;
  for (size_t i = begin; i < end; ++i) {
    const Itemset& tx = db[i].items;
    if (!IsSubsetOf(items, tx)) continue;
    if (first) {
      closure = tx;
      first = false;
    } else {
      closure = Intersection(closure, tx);
    }
    if (closure.size() == items.size()) break;  // cannot shrink below items
  }
  return closure;
}

std::vector<FrequentItemset> FilterClosed(
    const std::vector<FrequentItemset>& frequent) {
  // Group itemsets by count; within a group, an itemset is non-closed iff
  // some other group member is a strict superset (equal count + superset is
  // exactly the Definition 5 condition, given downward completeness).
  std::unordered_map<uint64_t, std::vector<const FrequentItemset*>> by_count;
  for (const FrequentItemset& f : frequent) {
    by_count[f.count].push_back(&f);
  }
  std::vector<FrequentItemset> closed;
  closed.reserve(frequent.size());
  for (const FrequentItemset& f : frequent) {
    const auto& group = by_count[f.count];
    bool is_closed = true;
    for (const FrequentItemset* other : group) {
      if (other->items.size() > f.items.size() &&
          IsSubsetOf(f.items, other->items)) {
        is_closed = false;
        break;
      }
    }
    if (is_closed) closed.push_back(f);
  }
  return closed;
}

}  // namespace tara
