#include "mining/rule_generation.h"

#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"

namespace tara {

size_t ItemsetCountIndex::Hash::operator()(const Itemset& s) const {
  return HashSpan(s);
}

ItemsetCountIndex::ItemsetCountIndex(
    const std::vector<FrequentItemset>& frequent) {
  counts_.reserve(frequent.size() * 2);
  for (const FrequentItemset& f : frequent) counts_[f.items] = f.count;
}

uint64_t ItemsetCountIndex::Count(const Itemset& items) const {
  auto it = counts_.find(items);
  return it == counts_.end() ? 0 : it->second;
}

namespace {

/// Enumerates non-empty proper subsets of `base` as antecedents via a
/// bitmask sweep. Caller guarantees |base| <= 20 (the miners' max_size caps
/// are far below this in practice; guarded by a CHECK).
void EmitRulesForItemset(const Itemset& base, uint64_t base_count,
                         const ItemsetCountIndex& index, double min_confidence,
                         std::vector<MinedRule>* out) {
  const size_t n = base.size();
  TARA_CHECK_LE(n, 20u) << "itemset too large for rule enumeration";
  const uint32_t limit = (1u << n) - 1;  // skip 0 (empty) and limit (full)
  Itemset antecedent;
  Itemset consequent;
  for (uint32_t mask = 1; mask < limit; ++mask) {
    antecedent.clear();
    consequent.clear();
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        antecedent.push_back(base[i]);
      } else {
        consequent.push_back(base[i]);
      }
    }
    const uint64_t antecedent_count = index.Count(antecedent);
    TARA_DCHECK(antecedent_count >= base_count)
        << "downward closure violated";
    const double confidence = static_cast<double>(base_count) /
                              static_cast<double>(antecedent_count);
    if (confidence + 1e-12 >= min_confidence) {
      out->push_back(
          MinedRule{antecedent, consequent, base_count, antecedent_count});
    }
  }
}

}  // namespace

std::vector<MinedRule> GenerateRules(
    const std::vector<FrequentItemset>& frequent, double min_confidence,
    ThreadPool* pool) {
  ItemsetCountIndex index(frequent);
  if (pool == nullptr || pool->ChunkCountFor(frequent.size()) <= 1 ||
      ThreadPool::InWorkerThread()) {
    std::vector<MinedRule> rules;
    for (const FrequentItemset& f : frequent) {
      if (f.items.size() < 2) continue;
      EmitRulesForItemset(f.items, f.count, index, min_confidence, &rules);
    }
    return rules;
  }

  // Chunked sweep: each chunk fills its own slot; concatenating slots in
  // chunk order reproduces the sequential output exactly.
  std::vector<std::vector<MinedRule>> parts(
      pool->ChunkCountFor(frequent.size()));
  pool->ParallelFor(
      frequent.size(), [&](size_t chunk, size_t begin, size_t end) {
        std::vector<MinedRule>& out = parts[chunk];
        for (size_t i = begin; i < end; ++i) {
          const FrequentItemset& f = frequent[i];
          if (f.items.size() < 2) continue;
          EmitRulesForItemset(f.items, f.count, index, min_confidence, &out);
        }
      });
  std::vector<MinedRule> rules;
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  rules.reserve(total);
  for (auto& part : parts) {
    rules.insert(rules.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
  }
  return rules;
}

}  // namespace tara
