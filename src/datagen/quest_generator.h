#ifndef TARA_DATAGEN_QUEST_GENERATOR_H_
#define TARA_DATAGEN_QUEST_GENERATOR_H_

#include <cstdint>

#include "txdb/transaction_database.h"

namespace tara {

/// Reimplementation of the IBM Quest synthetic market-basket generator
/// (Agrawal & Srikant, VLDB'94), the tool behind the paper's T5kL50N100 and
/// T2kL100N1k benchmark datasets.
///
/// The generator first builds a table of `num_patterns` "potentially large"
/// itemsets — pattern sizes are Poisson-distributed around
/// `avg_pattern_len`, consecutive patterns share a correlated fraction of
/// items, and each pattern carries an exponential weight and a corruption
/// level. Each transaction then draws its length from
/// Poisson(`avg_transaction_len`) and is filled by weighted pattern picks,
/// with items independently dropped at the pattern's corruption level, and
/// oversized final patterns kept with probability 1/2.
class QuestGenerator {
 public:
  struct Params {
    uint32_t num_transactions = 10000;  ///< |D|
    double avg_transaction_len = 10;    ///< T
    uint32_t num_items = 1000;          ///< N
    uint32_t num_patterns = 500;        ///< L (pattern table size)
    double avg_pattern_len = 4;         ///< I
    double correlation = 0.5;           ///< shared fraction between patterns
    double corruption_mean = 0.5;       ///< mean per-pattern corruption
    uint64_t seed = 1;
  };

  explicit QuestGenerator(const Params& params) : params_(params) {}

  /// Generates the database; timestamps are 0..num_transactions-1 offset by
  /// `time_offset` (so consecutive batches form an evolving timeline).
  TransactionDatabase Generate(Timestamp time_offset = 0) const;

 private:
  Params params_;
};

}  // namespace tara

#endif  // TARA_DATAGEN_QUEST_GENERATOR_H_
