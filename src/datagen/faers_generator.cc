#include "datagen/faers_generator.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"

namespace tara {

FaersGenerator::FaersGenerator(const Params& params) : params_(params) {
  const Params& p = params_;
  TARA_CHECK(p.num_drugs >= 10 && p.num_adrs >= 10);
  TARA_CHECK_LE(p.num_strong_confounders, p.num_drugs);
  Rng rng(p.seed);

  // Known single-drug ADR profiles.
  known_adrs_.resize(p.num_drugs);
  adr_prob_.resize(p.num_drugs, p.known_adr_prob);
  for (uint32_t d = 0; d < p.num_drugs; ++d) {
    Itemset adrs;
    for (uint32_t k = 0; k < p.known_adrs_per_drug; ++k) {
      adrs.push_back(adr_base() +
                     static_cast<ItemId>(rng.NextBounded(p.num_adrs)));
    }
    Canonicalize(&adrs);
    known_adrs_[d] = std::move(adrs);
  }
  // Strong confounders: the most popular drugs (low ids under Zipf) fire
  // their known ADRs nearly always — exactly the signals a confidence
  // ranking surfaces first.
  for (uint32_t d = 0; d < p.num_strong_confounders; ++d) {
    adr_prob_[d] = p.strong_adr_prob;
  }

  // Plant DDIs: pairs (and ~20% triples) of drugs with an interaction ADR
  // no member drug causes alone. Combos take *adjacent popularity ranks*
  // in disjoint blocks just past the strong confounders: adjacent ranks
  // give each member a similar background report volume, so the combo's
  // single-drug contextual confidences are both low and uniform — the
  // signature the contrast measure keys on. Sharing a drug between two
  // interactions would inflate its contextual confidence, hence the
  // disjoint blocks.
  ItemId next_rank = static_cast<ItemId>(p.num_strong_confounders);
  while (ddis_.size() < p.num_ddis) {
    const uint32_t size = rng.NextBool(0.2) ? 3 : 2;
    TARA_CHECK_LT(next_rank + size, p.num_drugs)
        << "not enough drugs for the requested number of DDIs";
    Itemset drugs;
    for (uint32_t k = 0; k < size; ++k) drugs.push_back(next_rank + k);
    next_rank += size + 1;  // one-rank gap between combos

    // Interaction ADR must be unexplained by every member drug.
    ItemId adr = 0;
    for (int attempt = 0; attempt < 64; ++attempt) {
      adr = adr_base() + static_cast<ItemId>(rng.NextBounded(p.num_adrs));
      bool clean = true;
      for (ItemId d : drugs) {
        if (std::binary_search(known_adrs_[d].begin(), known_adrs_[d].end(),
                               adr)) {
          clean = false;
          break;
        }
      }
      if (clean) break;
    }
    ddis_.push_back(PlantedDdi{std::move(drugs), adr});
  }
}

TransactionDatabase FaersGenerator::GenerateQuarter(
    uint32_t quarter_index, Timestamp time_offset) const {
  const Params& p = params_;
  Rng rng(p.seed * 0x100000001b3ULL + 0x9e3779b9ULL * (quarter_index + 1));

  TransactionDatabase db;
  Itemset items;
  for (uint32_t r = 0; r < p.reports_per_quarter; ++r) {
    items.clear();
    Itemset drugs;
    bool is_ddi_report = rng.NextBool(p.ddi_report_rate) && !ddis_.empty();
    const PlantedDdi* combo = nullptr;
    if (is_ddi_report) {
      combo = &ddis_[rng.NextBounded(ddis_.size())];
      drugs = combo->drugs;
      // Occasionally a bystander drug is co-reported.
      if (rng.NextBool(0.25)) {
        drugs.push_back(
            static_cast<ItemId>(rng.NextBounded(p.num_drugs)));
        Canonicalize(&drugs);
      }
    } else {
      const uint32_t n =
          1 + std::min<uint32_t>(4, rng.NextPoisson(p.background_drug_mean));
      while (drugs.size() < n) {
        drugs.push_back(static_cast<ItemId>(
            rng.NextZipf(p.num_drugs, p.zipf_alpha)));
        Canonicalize(&drugs);
      }
    }

    Itemset adrs;
    if (combo != nullptr && rng.NextBool(p.interaction_adr_prob)) {
      adrs.push_back(combo->adr);
    }
    for (ItemId d : drugs) {
      for (ItemId adr : known_adrs_[d]) {
        if (rng.NextBool(adr_prob_[d])) adrs.push_back(adr);
      }
    }
    if (rng.NextBool(p.noise_adr_prob) || adrs.empty()) {
      adrs.push_back(adr_base() +
                     static_cast<ItemId>(rng.NextBounded(p.num_adrs)));
    }
    Canonicalize(&adrs);

    items = drugs;
    items.insert(items.end(), adrs.begin(), adrs.end());
    db.Append(time_offset + r, items);
  }
  return db;
}

}  // namespace tara
