#include "datagen/basket_generators.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace tara {

TransactionDatabase BasketGenerator::GenerateBatch(
    uint32_t batch_index, Timestamp time_offset) const {
  const Params& p = params_;
  TARA_CHECK(p.num_items > 0);
  // Per-batch rng derived from the shared seed so batches differ but the
  // whole sequence is reproducible.
  Rng rng(p.seed * 0x9e3779b97f4a7c15ULL + batch_index);

  // Drift: popularity rank r maps to item (r + shift) mod N, so the most
  // popular items change gradually across batches.
  const uint32_t shift = static_cast<uint32_t>(
      p.drift_rate * p.num_items * batch_index) % p.num_items;

  TransactionDatabase db;
  Itemset tx;
  for (uint32_t t = 0; t < p.num_transactions; ++t) {
    const uint32_t len = std::max<uint32_t>(1, rng.NextPoisson(p.avg_len));
    tx.clear();
    for (uint32_t i = 0; i < len; ++i) {
      const uint64_t r = rng.NextZipf(p.num_items, p.zipf_alpha);
      tx.push_back(static_cast<ItemId>((r + shift) % p.num_items));
    }
    db.Append(time_offset + t, tx);
  }
  return db;
}

BasketGenerator::Params BasketGenerator::RetailPreset() {
  Params p;
  p.num_transactions = 20000;
  p.num_items = 3000;
  p.avg_len = 10;
  p.zipf_alpha = 1.1;
  // Shift popularity by ~2 ranks per batch: rules drift measurably across
  // windows while the head of the distribution stays recognizable, so
  // trajectories have both stable and fading rules.
  p.drift_rate = 0.0008;
  p.seed = 20160101;
  return p;
}

BasketGenerator::Params BasketGenerator::WebdocsPreset() {
  Params p;
  p.num_transactions = 4000;
  p.num_items = 20000;
  p.avg_len = 60;  // scaled down from 177 to fit a single-core budget
  p.zipf_alpha = 1.25;
  p.drift_rate = 0.0002;  // ~4 ranks per batch over the 20k vocabulary
  p.seed = 20160202;
  return p;
}

}  // namespace tara
