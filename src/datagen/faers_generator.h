#ifndef TARA_DATAGEN_FAERS_GENERATOR_H_
#define TARA_DATAGEN_FAERS_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "txdb/transaction_database.h"

namespace tara {

/// A planted drug-drug interaction: when all of `drugs` are taken together,
/// the otherwise-unexplained `adr` occurs. This is the ground truth the
/// precision@K evaluation of Figure 6 scores against, playing the role of
/// the paper's Drugs.com / DrugBank known-DDI references.
struct PlantedDdi {
  Itemset drugs;  ///< drug item ids (>= 2 of them)
  ItemId adr;     ///< ADR item id (offset by num_drugs)
};

/// Synthetic FAERS-like spontaneous-report generator.
///
/// Reports are transactions over a disjoint item space: drug ids occupy
/// [0, num_drugs), ADR ids occupy [num_drugs, num_drugs + num_adrs). The
/// generative process mirrors what makes real FAERS data hard:
///
///  - every drug has a few *known* single-drug ADRs it triggers whenever
///    present (these create the redundant high-confidence signals that
///    drown naive rankers);
///  - a handful of *strong confounder* drugs trigger their known ADR almost
///    always (top of any confidence ranking, yet not DDIs);
///  - planted DDIs (pairs and triples) trigger an interaction ADR that no
///    member drug causes alone — the exclusiveness the contrast measure is
///    designed to detect;
///  - drug popularity is Zipf-skewed and reports carry uniform ADR noise,
///    which hands spurious high-lift signals to the reporting-ratio ranker.
class FaersGenerator {
 public:
  struct Params {
    uint32_t num_drugs = 300;
    uint32_t num_adrs = 150;
    uint32_t reports_per_quarter = 6000;
    uint32_t num_ddis = 15;
    uint32_t known_adrs_per_drug = 2;
    uint32_t num_strong_confounders = 10;
    double ddi_report_rate = 0.05;     ///< fraction of reports from a combo
    double interaction_adr_prob = 0.92;
    double known_adr_prob = 0.55;
    /// Kept below interaction_adr_prob²: a pair of strong confounders
    /// produces its joint known-ADR conjunction with probability
    /// strong_adr_prob², which must not out-rank true interactions.
    double strong_adr_prob = 0.7;
    /// Mean of the Poisson governing extra drugs in background reports.
    /// Higher values make popular drug pairs co-occur often enough that
    /// their joint-ADR conjunction confidences converge to their true
    /// (sub-DDI) level instead of producing small-count flukes.
    double background_drug_mean = 1.4;
    double noise_adr_prob = 0.08;
    double zipf_alpha = 1.0;
    uint64_t seed = 2016;
  };

  explicit FaersGenerator(const Params& params);

  /// Generates one quarter of reports with timestamps starting at
  /// `time_offset`. Quarters share the same ground truth but are
  /// statistically independent.
  TransactionDatabase GenerateQuarter(uint32_t quarter_index,
                                      Timestamp time_offset) const;

  const std::vector<PlantedDdi>& ground_truth() const { return ddis_; }
  const Params& params() const { return params_; }

  /// First ADR item id (= num_drugs); items below are drugs.
  ItemId adr_base() const { return params_.num_drugs; }

  /// True if `item` denotes an ADR rather than a drug.
  bool IsAdr(ItemId item) const { return item >= params_.num_drugs; }

 private:
  Params params_;
  /// known_adrs_[d] = ADR item ids drug d triggers on its own.
  std::vector<Itemset> known_adrs_;
  /// Per-drug probability of triggering each known ADR (strong confounders
  /// get strong_adr_prob).
  std::vector<double> adr_prob_;
  std::vector<PlantedDdi> ddis_;
};

}  // namespace tara

#endif  // TARA_DATAGEN_FAERS_GENERATOR_H_
