#ifndef TARA_DATAGEN_BASKET_GENERATORS_H_
#define TARA_DATAGEN_BASKET_GENERATORS_H_

#include <cstdint>

#include "txdb/transaction_database.h"

namespace tara {

/// Power-law market-basket generator standing in for the paper's real
/// `retail` (Belgian supermarket, avg length 10) and `webdocs` (spidered
/// HTML, avg length 177, multi-million vocabulary) datasets, which are not
/// redistributable here. Item popularity follows Zipf(`zipf_alpha`); basket
/// sizes follow Poisson(`avg_len`). `drift_rate` rotates the popularity
/// ranking between batches so that associations appear, strengthen, and
/// fade across windows — the evolving behavior the paper's trajectory
/// queries exercise.
class BasketGenerator {
 public:
  struct Params {
    uint32_t num_transactions = 10000;  ///< per batch
    uint32_t num_items = 2000;
    double avg_len = 10;
    double zipf_alpha = 1.1;
    /// Fraction of the item-rank space the popularity permutation rotates by
    /// per batch (0 = stationary).
    double drift_rate = 0.05;
    uint64_t seed = 7;
  };

  explicit BasketGenerator(const Params& params) : params_(params) {}

  /// Generates batch `batch_index` with timestamps starting at
  /// `time_offset`. Different batch indices shift item popularity by
  /// drift_rate, while keeping a shared seed so runs are reproducible.
  TransactionDatabase GenerateBatch(uint32_t batch_index,
                                    Timestamp time_offset) const;

  /// Presets matching the shape of Table 3's datasets (scaled for a
  /// single-core box; see EXPERIMENTS.md for scale factors).
  static Params RetailPreset();
  static Params WebdocsPreset();

 private:
  Params params_;
};

}  // namespace tara

#endif  // TARA_DATAGEN_BASKET_GENERATORS_H_
