#include "datagen/quest_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace tara {
namespace {

struct Pattern {
  Itemset items;
  double weight = 0;      // cumulative after normalization
  double corruption = 0;  // probability an item is dropped at insertion
};

}  // namespace

TransactionDatabase QuestGenerator::Generate(Timestamp time_offset) const {
  const Params& p = params_;
  TARA_CHECK(p.num_items > 0 && p.num_patterns > 0);
  Rng rng(p.seed);

  // Build the potentially-large pattern table.
  std::vector<Pattern> patterns(p.num_patterns);
  double weight_sum = 0;
  for (uint32_t i = 0; i < p.num_patterns; ++i) {
    Pattern& pat = patterns[i];
    uint32_t len = std::max<uint32_t>(1, rng.NextPoisson(p.avg_pattern_len));
    len = std::min<uint32_t>(len, p.num_items);
    Itemset items;
    // Correlated fraction reused from the previous pattern.
    if (i > 0) {
      const Itemset& prev = patterns[i - 1].items;
      const uint32_t reuse = std::min<uint32_t>(
          static_cast<uint32_t>(p.correlation * len + 0.5),
          static_cast<uint32_t>(prev.size()));
      for (uint32_t r = 0; r < reuse; ++r) {
        items.push_back(prev[rng.NextBounded(prev.size())]);
      }
    }
    while (items.size() < len) {
      items.push_back(static_cast<ItemId>(rng.NextBounded(p.num_items)));
    }
    Canonicalize(&items);
    pat.items = std::move(items);
    // Exponential weight.
    const double w = -std::log(rng.NextDouble() + 1e-18);
    pat.weight = w;
    weight_sum += w;
    // Corruption level clamped to [0, 1] from N(mean, 0.1) drawn via CLT.
    double noise = 0;
    for (int k = 0; k < 12; ++k) noise += rng.NextDouble();
    noise = (noise - 6.0) * 0.1;  // ~N(0, 0.1)
    pat.corruption = std::clamp(p.corruption_mean + noise, 0.0, 1.0);
  }
  // Cumulative weights for roulette selection.
  double acc = 0;
  for (Pattern& pat : patterns) {
    acc += pat.weight / weight_sum;
    pat.weight = acc;
  }
  patterns.back().weight = 1.0;

  auto pick_pattern = [&]() -> const Pattern& {
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(
        patterns.begin(), patterns.end(), u,
        [](const Pattern& pat, double v) { return pat.weight < v; });
    return it == patterns.end() ? patterns.back() : *it;
  };

  TransactionDatabase db;
  Itemset tx;
  for (uint32_t t = 0; t < p.num_transactions; ++t) {
    const uint32_t target_len =
        std::max<uint32_t>(1, rng.NextPoisson(p.avg_transaction_len));
    tx.clear();
    // Fill with corrupted patterns until the target length is met.
    int guard = 0;
    while (tx.size() < target_len && ++guard < 1000) {
      const Pattern& pat = pick_pattern();
      Itemset kept;
      for (ItemId item : pat.items) {
        if (!rng.NextBool(pat.corruption)) kept.push_back(item);
      }
      if (kept.empty()) continue;
      if (tx.size() + kept.size() > target_len * 1.5 && !tx.empty()) {
        // Oversized final pattern: keep anyway half the time (Quest rule).
        if (rng.NextBool(0.5)) break;
      }
      tx.insert(tx.end(), kept.begin(), kept.end());
    }
    if (tx.empty()) tx.push_back(static_cast<ItemId>(rng.NextBounded(
        p.num_items)));
    db.Append(time_offset + t, tx);
  }
  return db;
}

}  // namespace tara
