#include "server/tara_client.h"

namespace tara::server {
namespace {

WireError Transport(std::string message) {
  return WireError{kClientTransportError, std::move(message)};
}

WireError Protocol(std::string message) {
  return WireError{kClientProtocolError, std::move(message)};
}

WireError Closed() {
  return WireError{kClientConnectionClosed,
                   "server closed the connection before responding"};
}

WireError TimedOut(uint32_t deadline_ms, std::string_view when) {
  return WireError{kClientTimedOut,
                   "deadline of " + std::to_string(deadline_ms) +
                       "ms expired " + std::string(when) +
                       " (connection closed)"};
}

/// Local socket deadline backing a request deadline: the server enforces
/// `deadline_ms` itself and its rejection frame must win the race when
/// it is alive, so the local guard fires a grace period later — it is
/// the backstop for a hung or unreachable server, not the primary timer.
constexpr uint32_t kLocalDeadlineGraceMs = 1000;

uint32_t SocketDeadlineMs(uint32_t deadline_ms) {
  return deadline_ms == 0 ? 0 : deadline_ms + kLocalDeadlineGraceMs;
}

/// Folds a ParseError from decoding the *server's* bytes into the
/// client-protocol pseudo-code (the numeric parse code is preserved in
/// the message; it describes the peer's malformed output, not ours).
WireError PeerParse(const ParseError& error) {
  std::string message = "malformed server response (";
  message += ParseErrorCodeName(error.code);
  message += "): ";
  message += error.message;
  return Protocol(std::move(message));
}

}  // namespace

Expected<TaraClient, WireError> TaraClient::Connect(const std::string& host,
                                                    uint16_t port) {
  auto socket = ConnectTcp(host, port);
  if (!socket.has_value()) return Transport(socket.error());
  return TaraClient(std::move(socket.value()));
}

Expected<DecodedFrame, WireError> TaraClient::RoundTrip(
    const std::string& frame, uint32_t deadline_ms) {
  std::string error;
  if (!SetSocketTimeouts(socket_.fd(), SocketDeadlineMs(deadline_ms),
                         &error)) {
    return Transport(std::move(error));
  }
  bool send_timed_out = false;
  if (!WriteAll(socket_.fd(), frame, &error, &send_timed_out)) {
    if (send_timed_out) {
      socket_.Close();
      return TimedOut(deadline_ms, "sending the request");
    }
    return Transport(std::move(error));
  }
  FrameRead response = ReadFrame(socket_.fd(), kWireMaxPayloadBytes);
  switch (response.status) {
    case FrameRead::Status::kEof:
      return Closed();
    case FrameRead::Status::kIoError:
      return Transport(std::move(response.io_message));
    case FrameRead::Status::kTimeout:
      // The response may still arrive later; reading it as the answer
      // to the NEXT request would desynchronize the lockstep stream, so
      // the connection is unusable from here on.
      socket_.Close();
      return TimedOut(deadline_ms, "waiting for the response");
    case FrameRead::Status::kParseError:
      return PeerParse(response.parse_error);
    case FrameRead::Status::kOk:
      break;
  }
  response_payload_ = std::move(response.payload);
  if (response.header.type == FrameType::kError) {
    auto wire_error = DecodeErrorPayload(response_payload_);
    if (!wire_error.has_value()) return PeerParse(wire_error.error());
    return *std::move(wire_error);
  }
  DecodedFrame decoded;
  decoded.header = response.header;
  decoded.payload = response_payload_;
  return decoded;
}

Expected<QueryResult, WireError> TaraClient::Execute(
    const QueryRequest& request, uint32_t deadline_ms) {
  auto response = RoundTrip(EncodeExecuteFrame(request, deadline_ms),
                            deadline_ms);
  if (!response.has_value()) return response.error();
  if (response->header.type != FrameType::kResult) {
    return Protocol("expected a kResult frame, got type " +
                    std::to_string(
                        static_cast<unsigned>(response->header.type)));
  }
  auto result = DecodeResultPayload(response->payload);
  if (!result.has_value()) return PeerParse(result.error());
  if (result->first != request.kind) {
    return Protocol("server answered with a different query kind");
  }
  return std::move(result->second);
}

Expected<std::vector<Expected<QueryResult, WireError>>, WireError>
TaraClient::ExecuteBatch(const std::vector<QueryRequest>& requests,
                         uint32_t deadline_ms) {
  auto response = RoundTrip(EncodeBatchExecuteFrame(requests, deadline_ms),
                            deadline_ms);
  if (!response.has_value()) return response.error();
  if (response->header.type != FrameType::kBatchResult) {
    return Protocol("expected a kBatchResult frame, got type " +
                    std::to_string(
                        static_cast<unsigned>(response->header.type)));
  }
  auto results = DecodeBatchResultPayload(response->payload);
  if (!results.has_value()) return PeerParse(results.error());
  if (results->size() != requests.size()) {
    return Protocol("server answered " + std::to_string(results->size()) +
                    " results for " + std::to_string(requests.size()) +
                    " requests");
  }
  return *std::move(results);
}

Expected<AppendAck, WireError> TaraClient::AppendWindow(
    const TransactionDatabase& db, size_t begin, size_t end) {
  auto response = RoundTrip(EncodeAppendWindowFrame(db, begin, end));
  if (!response.has_value()) return response.error();
  if (response->header.type != FrameType::kAppendAck) {
    return Protocol("expected a kAppendAck frame");
  }
  auto ack = DecodeAppendAckPayload(response->payload);
  if (!ack.has_value()) return PeerParse(ack.error());
  return *ack;
}

Expected<std::string, WireError> TaraClient::Metrics(bool json) {
  std::string payload(1, json ? char(1) : char(0));
  auto response =
      RoundTrip(EncodeFrame(FrameType::kMetricsRequest, payload));
  if (!response.has_value()) return response.error();
  if (response->header.type != FrameType::kMetricsResponse) {
    return Protocol("expected a kMetricsResponse frame");
  }
  return std::string(response->payload);
}

Expected<ServerInfo, WireError> TaraClient::Info() {
  auto response = RoundTrip(EncodeFrame(FrameType::kInfoRequest, {}));
  if (!response.has_value()) return response.error();
  if (response->header.type != FrameType::kInfoResponse) {
    return Protocol("expected a kInfoResponse frame");
  }
  auto info = DecodeInfoResponsePayload(response->payload);
  if (!info.has_value()) return PeerParse(info.error());
  return *info;
}

Expected<bool, WireError> TaraClient::Ping() {
  auto response = RoundTrip(EncodeFrame(FrameType::kPing, {}));
  if (!response.has_value()) return response.error();
  if (response->header.type != FrameType::kPong) {
    return Protocol("expected a kPong frame");
  }
  return true;
}

}  // namespace tara::server
