#ifndef TARA_SERVER_TARA_CLIENT_H_
#define TARA_SERVER_TARA_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.h"
#include "core/query_request.h"
#include "core/wire_format.h"
#include "server/net_io.h"
#include "txdb/transaction_database.h"

namespace tara::server {

/// Client-side pseudo-codes (range 300-399). These are NEVER sent on the
/// wire; TaraClient uses them to report local failures through the same
/// numeric space remote errors arrive in, so callers branch on one code.
/// Append-only like every other wire-code range.
inline constexpr uint32_t kClientTransportError = 300;  ///< socket I/O failed
inline constexpr uint32_t kClientProtocolError = 301;   ///< peer broke protocol
inline constexpr uint32_t kClientConnectionClosed = 302;  ///< orderly EOF
/// The caller's deadline expired at this end — the request may or may
/// not have reached (or been executed by) the server. The connection is
/// closed: a late response would desynchronize the lockstep stream.
inline constexpr uint32_t kClientTimedOut = 303;

/// A blocking client for the TARA wire protocol: one TCP connection in
/// request-response lockstep (the protocol is synchronous per
/// connection — open one client per concurrent in-flight request).
///
/// Every method returns Expected<_, WireError>. The error's `code` is a
/// frozen wire code: 1-99 query validation (the server's QueryError,
/// round-tripped), 100-199 serving-layer (overloaded, deadline
/// exceeded), 200-299 protocol/parse, 300-399 local transport. Helpers
/// below name the interesting ones.
class TaraClient {
 public:
  /// Opens a connection. `host` is anything the resolver understands:
  /// a hostname, an IPv4 dotted quad, or an IPv6 literal.
  static Expected<TaraClient, WireError> Connect(const std::string& host,
                                                 uint16_t port);

  TaraClient(TaraClient&&) = default;
  TaraClient& operator=(TaraClient&&) = default;

  /// Executes one query. deadline_ms > 0 bounds BOTH the server-side
  /// queueing delay (the server sheds with kDeadlineExceeded) and, as a
  /// backstop for a hung or unreachable server, the local socket waits
  /// (armed at deadline_ms plus a short grace so the server's own
  /// rejection wins when it is alive; expiry is kClientTimedOut and
  /// closes the connection). 0 means no deadline anywhere.
  Expected<QueryResult, WireError> Execute(const QueryRequest& request,
                                           uint32_t deadline_ms = 0);

  /// Executes a batch against one server-pinned snapshot. The outer
  /// Expected is the transport/admission fate of the whole batch; inner
  /// entries are positionally aligned per-request outcomes.
  Expected<std::vector<Expected<QueryResult, WireError>>, WireError>
  ExecuteBatch(const std::vector<QueryRequest>& requests,
               uint32_t deadline_ms = 0);

  /// Live-appends transactions [begin, end) of `db` as one new window.
  Expected<AppendAck, WireError> AppendWindow(const TransactionDatabase& db,
                                              size_t begin, size_t end);
  Expected<AppendAck, WireError> AppendWindow(const TransactionDatabase& db) {
    return AppendWindow(db, 0, db.size());
  }

  /// The server's metrics-registry snapshot (the /metrics endpoint).
  Expected<std::string, WireError> Metrics(bool json = false);

  /// Knowledge-base shape: window count, generation, rule count.
  Expected<ServerInfo, WireError> Info();

  /// Liveness probe. true on pong.
  Expected<bool, WireError> Ping();

  bool connected() const { return socket_.valid(); }

 private:
  explicit TaraClient(Socket socket) : socket_(std::move(socket)) {}

  /// Sends `frame` and reads exactly one response frame, turning
  /// transport failures and kError responses into WireError.
  /// deadline_ms > 0 arms the socket's send/receive deadlines for this
  /// round trip; expiry maps to kClientTimedOut and closes the socket.
  Expected<DecodedFrame, WireError> RoundTrip(const std::string& frame,
                                              uint32_t deadline_ms = 0);

  Socket socket_;
  /// The response payload of the last RoundTrip (DecodedFrame::payload
  /// points into it).
  std::string response_payload_;
};

/// true when `error` is the server's admission-control shed signal.
inline bool IsOverloaded(const WireError& error) {
  return error.code == static_cast<uint32_t>(ServerWireError::kOverloaded);
}

/// true when the request's deadline expired while queued at the server.
inline bool IsDeadlineExceeded(const WireError& error) {
  return error.code ==
         static_cast<uint32_t>(ServerWireError::kDeadlineExceeded);
}

/// true when the deadline expired client-side (no response in time).
inline bool IsClientTimeout(const WireError& error) {
  return error.code == kClientTimedOut;
}

}  // namespace tara::server

#endif  // TARA_SERVER_TARA_CLIENT_H_
