#include "server/replica.h"

#include <sys/socket.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/kb_open.h"
#include "core/kb_storage.h"
#include "core/wire_format.h"

namespace tara::server {

namespace {

std::string DescribeFrameFailure(const FrameRead& read) {
  switch (read.status) {
    case FrameRead::Status::kEof:
      return "the primary closed the stream";
    case FrameRead::Status::kTimeout:
      return "the stream went silent past the io timeout";
    case FrameRead::Status::kParseError:
      return "hostile frame header from the primary: " +
             read.parse_error.message;
    case FrameRead::Status::kIoError:
    default:
      return "stream read failed: " + read.io_message;
  }
}

}  // namespace

ReplicaEngine::ReplicaEngine(ReplicaOptions options)
    : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    generation_gauge_ = options_.metrics->GetGauge("tara.replica.generation");
    lag_gauge_ = options_.metrics->GetGauge("tara.replica.lag_windows");
    reconnects_counter_ =
        options_.metrics->GetCounter("tara.replica.reconnects");
    records_counter_ =
        options_.metrics->GetCounter("tara.replica.records_applied");
  }
}

ReplicaEngine::~ReplicaEngine() { Stop(); }

std::optional<std::string> ReplicaEngine::Start() {
  if (started_) return "ReplicaEngine::Start called twice";
  if (!options_.kb_dir.empty()) {
    OpenOptions open;
    open.kb_dir = options_.kb_dir;
    open.mode = OpenMode::kEager;
    open.metrics = options_.metrics;
    open.parallelism = options_.parallelism;
    open.query_cache_bytes = options_.query_cache_bytes;
    auto opened = OpenKnowledgeBase(open);
    if (!opened.has_value()) {
      return "replica checkpoint " + options_.kb_dir +
             " failed to open: " + opened.error().message;
    }
    engine_ = std::make_unique<TaraEngine>(std::move(opened).value());
  }
  // First subscribe runs synchronously so a bad endpoint, a floor
  // mismatch, or a hostile handshake is a returned error the operator
  // sees immediately — not a silent retry loop.
  Socket first;
  if (auto error = OpenStream(&first)) return error;
  started_ = true;
  tail_thread_ = std::thread(
      [this, socket = std::make_shared<Socket>(std::move(first))]() mutable {
        Socket live = std::move(*socket);
        socket.reset();
        uint32_t backoff_ms = options_.backoff_initial_ms;
        bool have_stream = true;
        while (!stopping_.load(std::memory_order_relaxed)) {
          if (!have_stream) {
            if (auto error = OpenStream(&live)) {
              NoteError(*error);
              if (!SleepBackoff(&backoff_ms)) break;
              continue;
            }
            reconnects_.fetch_add(1, std::memory_order_relaxed);
            if (reconnects_counter_ != nullptr) {
              reconnects_counter_->Increment();
            }
          }
          have_stream = false;
          backoff_ms = options_.backoff_initial_ms;
          const std::string error = RunSession(&live);
          {
            std::lock_guard<std::mutex> lock(socket_mutex_);
            live_fd_ = -1;
          }
          live.Close();
          {
            std::lock_guard<std::mutex> lock(state_mutex_);
            connected_ = false;
          }
          state_cv_.notify_all();
          if (stopping_.load(std::memory_order_relaxed)) break;
          NoteError(error);
          if (!SleepBackoff(&backoff_ms)) break;
        }
      });
  return std::nullopt;
}

void ReplicaEngine::Stop() {
  stopping_.store(true, std::memory_order_relaxed);
  state_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(socket_mutex_);
    if (live_fd_ >= 0) ::shutdown(live_fd_, SHUT_RDWR);
  }
  if (tail_thread_.joinable()) tail_thread_.join();
}

std::optional<std::string> ReplicaEngine::OpenStream(Socket* socket) {
  const std::string endpoint =
      options_.primary_host + ":" + std::to_string(options_.primary_port);
  auto connected = ConnectTcp(options_.primary_host, options_.primary_port);
  if (!connected.has_value()) {
    return "connect to primary " + endpoint + " failed: " + connected.error();
  }
  Socket stream = std::move(connected).value();
  std::string io_error;
  if (!SetSocketTimeouts(stream.fd(), options_.io_timeout_ms, &io_error)) {
    return io_error;
  }
  const uint32_t from = engine_ != nullptr ? engine_->window_count() : 0;
  if (!WriteAll(stream.fd(), EncodeReplicaSubscribeFrame(from), &io_error)) {
    return "subscribe to " + endpoint + " failed: " + io_error;
  }
  FrameRead read = ReadFrame(stream.fd(), kWireMaxPayloadBytes);
  if (read.status != FrameRead::Status::kOk) {
    return "handshake with " + endpoint + ": " + DescribeFrameFailure(read);
  }
  if (read.header.type == FrameType::kError) {
    auto wire_error = DecodeErrorPayload(read.payload);
    if (wire_error.has_value()) {
      return "primary refused the subscription (code " +
             std::to_string(wire_error->code) + "): " + wire_error->message;
    }
    return "primary refused the subscription with a malformed error frame";
  }
  if (read.header.type != FrameType::kReplicaCheckpoint) {
    return "expected a checkpoint handshake, got frame type " +
           std::to_string(static_cast<int>(read.header.type));
  }
  auto checkpoint = DecodeReplicaCheckpointPayload(read.payload);
  if (!checkpoint.has_value()) {
    return "checkpoint handshake does not decode: " +
           checkpoint.error().message;
  }
  if (engine_ == nullptr) {
    // Stream bootstrap: the handshake's option fingerprint becomes the
    // local engine's construction options. The fields came off the wire,
    // so validate before constructing (KbBuilder aborts on bad options).
    KbOptions kb;
    kb.min_support_floor = checkpoint->min_support_floor;
    kb.min_confidence_floor = checkpoint->min_confidence_floor;
    kb.max_itemset_size = checkpoint->max_itemset_size;
    kb.build_content_index = checkpoint->build_content_index;
    kb.metrics = options_.metrics;
    kb.parallelism = options_.parallelism;
    kb.query_cache_bytes = options_.query_cache_bytes;
    if (auto invalid = kb.Validate()) {
      return "primary handshake carries invalid engine options: " + *invalid;
    }
    engine_ = std::make_unique<TaraEngine>(kb);
  } else {
    // Same compatibility gate AttachWal applies to a foreign log: a
    // stream mined at other floors must never be replayed here.
    const KbOptions& mine = engine_->options();
    if (mine.min_support_floor != checkpoint->min_support_floor ||
        mine.min_confidence_floor != checkpoint->min_confidence_floor ||
        mine.max_itemset_size != checkpoint->max_itemset_size ||
        mine.build_content_index != checkpoint->build_content_index) {
      return "primary " + endpoint +
             " was built with different options than the local checkpoint "
             "(floors/itemset cap/content index mismatch); refusing to "
             "replay a foreign stream";
    }
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    connected_ = true;
    primary_windows_ = std::max(primary_windows_, checkpoint->window_count);
    last_error_.clear();
  }
  state_cv_.notify_all();
  UpdateLagMetrics();
  {
    std::lock_guard<std::mutex> lock(socket_mutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      return "replica is stopping";
    }
    live_fd_ = stream.fd();
  }
  *socket = std::move(stream);
  return std::nullopt;
}

std::string ReplicaEngine::RunSession(Socket* socket) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    FrameRead read = ReadFrame(socket->fd(), kWireMaxPayloadBytes);
    if (read.status != FrameRead::Status::kOk) {
      return DescribeFrameFailure(read);
    }
    switch (read.header.type) {
      case FrameType::kReplicaRecord: {
        if (auto error = ApplyRecord(read.payload)) return *error;
        break;
      }
      case FrameType::kReplicaHeartbeat: {
        auto heartbeat = DecodeReplicaHeartbeatPayload(read.payload);
        if (!heartbeat.has_value()) {
          return "heartbeat does not decode: " + heartbeat.error().message;
        }
        {
          std::lock_guard<std::mutex> lock(state_mutex_);
          primary_windows_ =
              std::max(primary_windows_, heartbeat->window_count);
        }
        UpdateLagMetrics();
        break;
      }
      case FrameType::kError: {
        auto wire_error = DecodeErrorPayload(read.payload);
        if (wire_error.has_value()) {
          return "primary reported error " +
                 std::to_string(wire_error->code) + ": " +
                 wire_error->message;
        }
        return "primary sent a malformed error frame";
      }
      default:
        return "unexpected frame type " +
               std::to_string(static_cast<int>(read.header.type)) +
               " on the replication stream";
    }
  }
  return "replica is stopping";
}

std::optional<std::string> ReplicaEngine::ApplyRecord(
    const std::string& payload) {
  auto record = DecodeReplicaRecordPayload(payload);
  if (!record.has_value()) {
    return "record frame does not decode: " + record.error().message;
  }
  const uint32_t next = engine_->window_count();
  if (record->window < next) {
    // Duplicate of a window already applied (the primary streamed from
    // an older position than we asked for) — identical bytes by the
    // determinism contract, so skipping is safe. Mirrors WAL replay.
    return std::nullopt;
  }
  if (record->window > next) {
    return "stream gap: got window " + std::to_string(record->window) +
           " but the next expected window is " + std::to_string(next);
  }
  const auto* data = reinterpret_cast<const uint8_t*>(record->segment.data());
  auto decoded =
      DecodeWindowSegment(data, record->segment.size(), engine_->catalog());
  if (!decoded.has_value()) {
    return "window " + std::to_string(record->window) +
           " segment does not decode: " + decoded.error().message;
  }
  if (decoded->window != record->window) {
    return "record header says window " + std::to_string(record->window) +
           " but the segment blob says " + std::to_string(decoded->window);
  }
  if (decoded->first_rule != engine_->catalog().size()) {
    return "window " + std::to_string(record->window) +
           " starts its rules at id " + std::to_string(decoded->first_rule) +
           " but the local catalog holds " +
           std::to_string(engine_->catalog().size()) +
           " rules — the stream does not continue this knowledge base";
  }
  engine_->AppendPrecomputedWindow(record->total_transactions,
                                   decoded->entries);
  if (records_counter_ != nullptr) records_counter_->Increment();
  records_applied_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    primary_windows_ = std::max(primary_windows_, record->window + 1);
  }
  state_cv_.notify_all();
  UpdateLagMetrics();
  return std::nullopt;
}

bool ReplicaEngine::SleepBackoff(uint32_t* backoff_ms) {
  std::unique_lock<std::mutex> lock(state_mutex_);
  state_cv_.wait_for(lock, std::chrono::milliseconds(*backoff_ms), [&] {
    return stopping_.load(std::memory_order_relaxed);
  });
  *backoff_ms = std::min(*backoff_ms * 2, options_.backoff_max_ms);
  return !stopping_.load(std::memory_order_relaxed);
}

void ReplicaEngine::NoteError(const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    last_error_ = message;
  }
  state_cv_.notify_all();
}

void ReplicaEngine::UpdateLagMetrics() {
  if (engine_ == nullptr) return;
  const uint32_t local = engine_->window_count();
  if (generation_gauge_ != nullptr) {
    generation_gauge_->Set(static_cast<double>(engine_->generation()));
  }
  if (lag_gauge_ != nullptr) {
    uint32_t primary = 0;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      primary = primary_windows_;
    }
    lag_gauge_->Set(primary > local ? static_cast<double>(primary - local)
                                    : 0.0);
  }
}

ReplicaEngine::Status ReplicaEngine::GetStatus() const {
  Status status;
  std::lock_guard<std::mutex> lock(state_mutex_);
  status.connected = connected_;
  if (engine_ != nullptr) {
    status.window_count = engine_->window_count();
    status.generation = engine_->generation();
  }
  status.primary_windows = primary_windows_;
  status.lag_windows = status.primary_windows > status.window_count
                           ? status.primary_windows - status.window_count
                           : 0;
  status.records_applied = records_applied_.load(std::memory_order_relaxed);
  status.reconnects = reconnects_.load(std::memory_order_relaxed);
  status.last_error = last_error_;
  return status;
}

uint32_t ReplicaEngine::WaitForWindows(
    uint32_t windows, std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(state_mutex_);
  state_cv_.wait_for(lock, timeout, [&] {
    return stopping_.load(std::memory_order_relaxed) ||
           (engine_ != nullptr && engine_->window_count() >= windows);
  });
  return engine_ != nullptr ? engine_->window_count() : 0;
}

}  // namespace tara::server
