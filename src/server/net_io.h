#ifndef TARA_SERVER_NET_IO_H_
#define TARA_SERVER_NET_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/expected.h"
#include "core/wire_format.h"

/// \file
/// Thin blocking-socket plumbing shared by TaraServer and TaraClient:
/// an RAII fd, EINTR-safe exact read/write, and whole-frame transfer in
/// terms of the core wire format. Linux-only (the repo's platform); no
/// third-party networking dependency.

namespace tara::server {

/// Owning socket file descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { Close(); }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  /// Wakes any thread blocked in read/accept on this socket (used by
  /// Stop to unblock connection threads before joining them).
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// Outcome of reading one frame off a socket. Exactly one of the error
/// conditions is set for non-kOk statuses.
struct FrameRead {
  enum class Status {
    kOk,          ///< header + payload follow
    kEof,         ///< orderly peer close at a frame boundary
    kIoError,     ///< read failed (io_message) or mid-frame disconnect
    kParseError,  ///< the header was hostile (parse_error)
    kTimeout,     ///< a receive deadline (SetSocketTimeouts) expired
  };
  Status status = Status::kIoError;
  FrameHeader header;
  std::string payload;
  ParseError parse_error;
  std::string io_message;
};

/// Blocks until a whole frame arrives. `max_payload` bounds the
/// accepted payload size (admission against memory bombs).
FrameRead ReadFrame(int fd, uint32_t max_payload);

/// Writes every byte of `bytes`. Returns false and fills `*error` on
/// failure (peer gone, etc.). When a send deadline (SetSocketTimeouts)
/// expires, `*timed_out` (if non-null) is additionally set.
bool WriteAll(int fd, std::string_view bytes, std::string* error,
              bool* timed_out = nullptr);

/// Applies `timeout_ms` as both the receive and send deadline of `fd`
/// (SO_RCVTIMEO/SO_SNDTIMEO); 0 restores fully blocking behavior. The
/// deadline bounds each socket syscall, which for the lockstep protocols
/// here bounds the whole wait. False + `*error` on setsockopt failure.
bool SetSocketTimeouts(int fd, uint32_t timeout_ms, std::string* error);

/// Connects to host:port. `host` is anything the resolver understands:
/// a hostname, an IPv4 dotted quad, or an IPv6 literal. Every resolved
/// address is tried in resolver order; the error of the last attempt
/// (or a typed resolution failure) is returned if none connects.
Expected<Socket, std::string> ConnectTcp(const std::string& host,
                                         uint16_t port);

/// Binds + listens on host:port (port 0 = ephemeral) and reports the
/// actually bound port through `*bound_port`. `host` resolves like
/// ConnectTcp.
Expected<Socket, std::string> ListenTcp(const std::string& host,
                                        uint16_t port, int backlog,
                                        uint16_t* bound_port);

/// Splits "HOST:PORT" ("127.0.0.1:7411"). Returns false on a malformed
/// spec (missing colon, non-numeric or out-of-range port).
bool SplitHostPort(std::string_view spec, std::string* host, uint16_t* port);

}  // namespace tara::server

#endif  // TARA_SERVER_NET_IO_H_
