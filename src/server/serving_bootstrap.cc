#include "server/serving_bootstrap.h"

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>

#include "core/kb_blocks.h"
#include "core/kb_open.h"
#include "core/kb_storage.h"
#include "datagen/quest_generator.h"
#include "obs/metrics.h"
#include "server/replica.h"
#include "server/tara_server.h"
#include "txdb/evolving_database.h"

namespace tara::server {

Expected<TaraEngine, std::string> BootstrapEngine(
    const EngineBootstrap& bootstrap) {
  if (!bootstrap.loaddir.empty()) {
    OpenOptions open;
    open.kb_dir = bootstrap.loaddir;
    open.mode = bootstrap.mmap ? OpenMode::kMapped : OpenMode::kEager;
    open.verify = bootstrap.verify_hashes ? OpenVerify::kHashes
                                          : OpenVerify::kNone;
    // With a WAL configured, recovery subsumes loading: the checkpoint
    // directory (if any) plus the replayed log tail, log left attached.
    if (!bootstrap.wal_dir.empty() &&
        (WalExists(bootstrap.wal_dir) ||
         KnowledgeBaseDirExists(bootstrap.loaddir) ||
         KnowledgeBaseBlocksDirExists(bootstrap.loaddir))) {
      open.wal_dir = bootstrap.wal_dir;
    }
    open.metrics = bootstrap.metrics;
    open.query_cache_bytes = bootstrap.cache_bytes;
    Expected<TaraEngine, LoadError> loaded = OpenKnowledgeBase(open);
    if (!loaded.has_value()) {
      std::ostringstream message;
      message << "cannot load " << bootstrap.loaddir << ": "
              << loaded.error();
      return message.str();
    }
    return std::move(loaded).value();
  }
  if (bootstrap.windows == 0) {
    return std::string("need at least one window (--windows)");
  }
  QuestGenerator::Params params;
  params.num_transactions = bootstrap.quest_transactions;
  params.num_items = bootstrap.quest_items;
  params.num_patterns = bootstrap.quest_items / 3 + 1;
  params.avg_transaction_len = 9;
  params.seed = 11;
  const TransactionDatabase db = QuestGenerator(params).Generate();
  const EvolvingDatabase data =
      EvolvingDatabase::PartitionIntoBatches(db, bootstrap.windows);
  TaraEngine::Options options;
  options.min_support_floor = bootstrap.support_floor;
  options.min_confidence_floor = bootstrap.confidence_floor;
  options.max_itemset_size = 5;
  options.build_content_index = true;
  options.parallelism = 0;
  options.metrics = bootstrap.metrics;
  options.query_cache_bytes = bootstrap.cache_bytes;
  if (const auto problem = options.Validate()) return *problem;
  TaraEngine engine(options);
  engine.BuildAll(data);
  if (!bootstrap.wal_dir.empty()) {
    // Attach AFTER BuildAll: the Quest base is deterministic (same seed,
    // same params on every start), so the log only needs to carry — and
    // on restart replay — the windows appended live on top of it.
    const auto replay = engine.AttachWal(bootstrap.wal_dir);
    if (!replay.has_value()) {
      std::ostringstream message;
      message << "cannot attach WAL " << bootstrap.wal_dir << ": "
              << replay.error();
      return message.str();
    }
  }
  return engine;
}

bool WritePortFile(const std::string& path, uint16_t port) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok = std::fprintf(file, "%u\n", port) > 0;
  return std::fclose(file) == 0 && ok;
}

namespace {

std::atomic<bool> g_serve_stop{false};

void HandleServeSignal(int) { g_serve_stop.store(true); }

}  // namespace

int RunServeMain(int argc, char** argv, const char* usage_prefix) {
  const auto usage = [usage_prefix]() -> int {
    std::fprintf(stderr,
                 "usage: %s HOST:PORT [--loaddir DIR] [--wal DIR] [--mmap] "
                 "[--verify] [--quest N ITEMS] "
                 "[--windows K] [--floor S C] [--cache BYTES] [--workers N] "
                 "[--queue N] [--port-file FILE] "
                 "[--replicate-from HOST:PORT]\n",
                 usage_prefix);
    return 2;
  };
  if (argc < 1) return usage();

  ServerOptions server_options;
  if (!SplitHostPort(argv[0], &server_options.host, &server_options.port)) {
    std::fprintf(stderr, "%s: bad HOST:PORT: %s\n", usage_prefix, argv[0]);
    return 2;
  }

  EngineBootstrap bootstrap;
  std::string port_file;
  std::string replicate_from;
  bool bad_flag = false;
  for (int i = 1; i < argc && !bad_flag; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs %s\n", usage_prefix, arg.c_str(),
                     what);
        bad_flag = true;
        return "";
      }
      return argv[++i];
    };
    if (arg == "--loaddir") {
      bootstrap.loaddir = next("DIR");
    } else if (arg == "--wal") {
      bootstrap.wal_dir = next("DIR");
    } else if (arg == "--mmap") {
      bootstrap.mmap = true;
    } else if (arg == "--verify") {
      bootstrap.verify_hashes = true;
    } else if (arg == "--quest") {
      bootstrap.quest_transactions =
          static_cast<uint32_t>(std::strtoul(next("N"), nullptr, 10));
      bootstrap.quest_items =
          static_cast<uint32_t>(std::strtoul(next("ITEMS"), nullptr, 10));
    } else if (arg == "--windows") {
      bootstrap.windows =
          static_cast<uint32_t>(std::strtoul(next("K"), nullptr, 10));
    } else if (arg == "--floor") {
      bootstrap.support_floor = std::strtod(next("S"), nullptr);
      bootstrap.confidence_floor = std::strtod(next("C"), nullptr);
    } else if (arg == "--cache") {
      bootstrap.cache_bytes = std::strtoull(next("BYTES"), nullptr, 10);
    } else if (arg == "--workers") {
      server_options.max_concurrent_queries =
          static_cast<uint32_t>(std::strtoul(next("N"), nullptr, 10));
    } else if (arg == "--queue") {
      server_options.max_queued_queries =
          static_cast<uint32_t>(std::strtoul(next("N"), nullptr, 10));
    } else if (arg == "--port-file") {
      port_file = next("FILE");
    } else if (arg == "--replicate-from") {
      replicate_from = next("HOST:PORT");
    } else {
      return usage();
    }
  }
  if (bad_flag) return 2;

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  bootstrap.metrics = &metrics;
  server_options.metrics = &metrics;

  // The serving engine: either this process's own (built or loaded), or
  // a hot-standby follower of another primary (--replicate-from), served
  // read-only while its tail thread replays the primary's stream.
  std::optional<Expected<TaraEngine, std::string>> owned;
  std::unique_ptr<ReplicaEngine> replica;
  TaraEngine* serving_engine = nullptr;
  if (!replicate_from.empty()) {
    ReplicaOptions replica_options;
    if (!SplitHostPort(replicate_from, &replica_options.primary_host,
                       &replica_options.primary_port)) {
      std::fprintf(stderr, "%s: bad --replicate-from HOST:PORT: %s\n",
                   usage_prefix, replicate_from.c_str());
      return 2;
    }
    replica_options.kb_dir = bootstrap.loaddir;
    replica_options.metrics = &metrics;
    replica_options.query_cache_bytes = bootstrap.cache_bytes;
    replica = std::make_unique<ReplicaEngine>(replica_options);
    if (const auto problem = replica->Start()) {
      std::fprintf(stderr, "%s: %s\n", usage_prefix, problem->c_str());
      return 1;
    }
    serving_engine = replica->engine();
    server_options.read_only = true;
    std::fprintf(stderr,
                 "%s: replicating from %s (%u windows at subscribe)\n",
                 usage_prefix, replicate_from.c_str(),
                 serving_engine->window_count());
  } else {
    owned.emplace(BootstrapEngine(bootstrap));
    Expected<TaraEngine, std::string>& engine = *owned;
    if (!engine.has_value()) {
      std::fprintf(stderr, "%s: %s\n", usage_prefix, engine.error().c_str());
      return 1;
    }
    if (engine->fully_materialized()) {
      std::fprintf(stderr,
                   "%s: knowledge base ready (%u windows, %zu rules%s)\n",
                   usage_prefix, engine->window_count(),
                   engine->Snapshot()->catalog().size(),
                   engine->wal_attached() ? ", WAL attached" : "");
    } else {
      // Mapped open: don't force materialization just for a log line.
      std::fprintf(stderr,
                   "%s: knowledge base mapped (%u windows, decoded on "
                   "demand)\n",
                   usage_prefix, engine->window_count());
    }
    serving_engine = &engine.value();
  }

  TaraServer server(serving_engine, server_options);
  if (const auto problem = server.Start()) {
    std::fprintf(stderr, "%s: %s\n", usage_prefix, problem->c_str());
    return 1;
  }
  std::fprintf(stderr, "%s: listening on %s:%u\n", usage_prefix,
               server_options.host.c_str(), server.port());
  if (!port_file.empty() && !WritePortFile(port_file, server.port())) {
    std::fprintf(stderr, "%s: cannot write %s\n", usage_prefix,
                 port_file.c_str());
    server.Stop();
    return 1;
  }

  g_serve_stop.store(false);
  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  while (!g_serve_stop.load()) usleep(100 * 1000);

  std::fprintf(stderr, "%s: shutting down\n", usage_prefix);
  server.Stop();
  if (replica != nullptr) replica->Stop();
  return 0;
}

}  // namespace tara::server
