#include "server/tara_server.h"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>

namespace tara::server {

using Clock = std::chrono::steady_clock;

TaraServer::AdmissionGate::Outcome TaraServer::AdmissionGate::Enter(
    std::optional<Clock::time_point> deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) return Outcome::kShutdown;
  if (active_ < max_active_) {
    ++active_;
    return Outcome::kAdmitted;
  }
  if (waiting_ >= max_waiting_) return Outcome::kShed;
  ++waiting_;
  const auto slot_free = [this] { return active_ < max_active_ || stopping_; };
  bool got_slot = true;
  if (deadline.has_value()) {
    got_slot = cv_.wait_until(lock, *deadline, slot_free);
  } else {
    cv_.wait(lock, slot_free);
  }
  --waiting_;
  if (stopping_) return Outcome::kShutdown;
  if (!got_slot) return Outcome::kDeadline;
  ++active_;
  return Outcome::kAdmitted;
}

void TaraServer::AdmissionGate::Leave() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_;
  }
  cv_.notify_one();
}

void TaraServer::AdmissionGate::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
}

TaraServer::TaraServer(TaraEngine* engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      gate_(options_.max_concurrent_queries > 0
                ? options_.max_concurrent_queries
                : std::max(1u, std::thread::hardware_concurrency()),
            std::max(0, options_.max_queued_queries)) {
  options_.max_payload_bytes =
      std::min(options_.max_payload_bytes, kWireMaxPayloadBytes);
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* registry = options_.metrics;
    metrics_.connections = registry->GetCounter("tara.server.connections");
    metrics_.active_connections =
        registry->GetGauge("tara.server.active_connections");
    metrics_.requests = registry->GetCounter("tara.server.requests");
    metrics_.shed = registry->GetCounter("tara.server.shed");
    metrics_.deadline_exceeded =
        registry->GetCounter("tara.server.deadline_exceeded");
    metrics_.appends = registry->GetCounter("tara.server.appends");
    metrics_.parse_errors = registry->GetCounter("tara.server.parse_errors");
    metrics_.request_latency =
        registry->GetHistogram("tara.server.request_latency_ns");
  }
}

TaraServer::~TaraServer() { Stop(); }

std::optional<std::string> TaraServer::Start() {
  if (started_) return std::string("Start() called twice");
  auto listener = ListenTcp(options_.host, options_.port,
                            options_.listen_backlog, &bound_port_);
  if (!listener.has_value()) return listener.error();
  listener_ = std::move(listener.value());
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return std::nullopt;
}

void TaraServer::Stop() {
  if (!started_ || stopping_.exchange(true)) {
    // Not started, or another Stop already ran the shutdown sequence.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  gate_.Shutdown();
  // Shutdown (a read of fd_) may race-freely overlap the accept loop's
  // own fd() reads; Close() writes fd_ = -1, so it must wait until the
  // accept thread — which rechecks stopping_ at least every poll
  // interval — has been joined.
  listener_.ShutdownBoth();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    connection->socket.ShutdownBoth();
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void TaraServer::ReapFinishedConnections() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void TaraServer::AcceptLoop() {
  // Poll with a timeout instead of blocking in accept(): shutdown() on a
  // *listening* socket does not reliably wake a blocked accept() (unlike
  // on connected sockets), so Stop() could otherwise hang in join. The
  // timeout bounds shutdown latency to one poll interval.
  while (!stopping_.load(std::memory_order_relaxed)) {
    struct pollfd pfd = {listener_.fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (stopping_.load(std::memory_order_relaxed)) break;
    if (ready <= 0) continue;  // timeout or EINTR
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      continue;  // aborted handshake between poll and accept
    }
    ReapFinishedConnections();
    auto connection = std::make_unique<Connection>();
    connection->socket = Socket(fd);
    if (metrics_.connections != nullptr) metrics_.connections->Increment();
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] { HandleConnection(raw); });
  }
}

void TaraServer::HandleConnection(Connection* connection) {
  if (metrics_.active_connections != nullptr) {
    metrics_.active_connections->Add(1);
  }
  while (!stopping_.load(std::memory_order_relaxed)) {
    FrameRead frame =
        ReadFrame(connection->socket.fd(), options_.max_payload_bytes);
    if (frame.status == FrameRead::Status::kEof ||
        frame.status == FrameRead::Status::kIoError ||
        frame.status == FrameRead::Status::kTimeout) {
      break;
    }
    if (frame.status == FrameRead::Status::kParseError) {
      // Header-level corruption: framing integrity is gone, so reply
      // with the typed parse error and drop the connection.
      if (metrics_.parse_errors != nullptr) metrics_.parse_errors->Increment();
      Reply(connection, EncodeErrorFrame(frame.parse_error));
      break;
    }
    if (!HandleFrame(connection, frame.header, frame.payload)) break;
  }
  connection->socket.ShutdownBoth();
  if (metrics_.active_connections != nullptr) {
    metrics_.active_connections->Add(-1);
  }
  connection->done.store(true, std::memory_order_release);
}

bool TaraServer::HandleFrame(Connection* connection,
                             const FrameHeader& header,
                             const std::string& payload) {
  switch (header.type) {
    case FrameType::kExecute:
      return HandleExecute(connection, payload);
    case FrameType::kBatchExecute:
      return HandleBatchExecute(connection, payload);
    case FrameType::kAppendWindow:
      return HandleAppendWindow(connection, payload);
    case FrameType::kMetricsRequest: {
      const bool json = !payload.empty() && payload[0] == 1;
      const std::string snapshot =
          options_.metrics == nullptr
              ? std::string()
              : (json ? options_.metrics->SnapshotJson()
                      : options_.metrics->SnapshotText());
      return Reply(connection,
                   EncodeFrame(FrameType::kMetricsResponse, snapshot));
    }
    case FrameType::kInfoRequest: {
      const auto snapshot = engine_->Snapshot();
      ServerInfo info;
      info.window_count = snapshot->window_count();
      info.generation = snapshot->generation();
      info.rule_count = snapshot->catalog().size();
      return Reply(connection, EncodeInfoResponseFrame(info));
    }
    case FrameType::kPing:
      return Reply(connection, EncodeFrame(FrameType::kPong, {}));
    default: {
      // Valid frame, wrong direction (kResult at the server, ...): the
      // framing is intact, so answer typed and keep the connection.
      if (metrics_.parse_errors != nullptr) metrics_.parse_errors->Increment();
      std::string message = "frame type ";
      message += std::to_string(static_cast<unsigned>(header.type));
      message += " is not a client request";
      return Reply(connection,
                   EncodeErrorFrame(
                       ParseError{ParseError::Code::kUnexpectedFrame,
                                  std::move(message)}));
    }
  }
}

std::optional<std::string> TaraServer::TryAdmit(
    std::optional<Clock::time_point> deadline) {
  switch (gate_.Enter(deadline)) {
    case AdmissionGate::Outcome::kAdmitted:
      return std::nullopt;
    case AdmissionGate::Outcome::kShed:
      if (metrics_.shed != nullptr) metrics_.shed->Increment();
      return EncodeErrorFrame(ServerWireError::kOverloaded,
                              "query pool and wait queue are full; retry "
                              "with backoff");
    case AdmissionGate::Outcome::kDeadline:
      if (metrics_.deadline_exceeded != nullptr) {
        metrics_.deadline_exceeded->Increment();
      }
      return EncodeErrorFrame(ServerWireError::kDeadlineExceeded,
                              "deadline expired before a pool slot freed up");
    case AdmissionGate::Outcome::kShutdown:
      return EncodeErrorFrame(ServerWireError::kShuttingDown,
                              "server is draining");
  }
  return EncodeErrorFrame(ServerWireError::kInternal, "unreachable");
}

bool TaraServer::HandleExecute(Connection* connection,
                               const std::string& payload) {
  const Clock::time_point received = Clock::now();
  if (metrics_.requests != nullptr) metrics_.requests->Increment();
  auto command = DecodeExecutePayload(payload);
  if (!command.has_value()) {
    if (metrics_.parse_errors != nullptr) metrics_.parse_errors->Increment();
    return Reply(connection, EncodeErrorFrame(command.error()));
  }
  std::optional<Clock::time_point> deadline;
  if (command->deadline_ms > 0) {
    deadline = received + std::chrono::milliseconds(command->deadline_ms);
  }
  if (auto rejection = TryAdmit(deadline)) {
    return Reply(connection, *rejection);
  }
  if (options_.pre_execute_hook) options_.pre_execute_hook();
  const auto result = engine_->Execute(command->request);
  gate_.Leave();
  if (metrics_.request_latency != nullptr) {
    metrics_.request_latency->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             received)
            .count()));
  }
  if (!result.has_value()) {
    return Reply(connection, EncodeErrorFrame(result.error()));
  }
  return Reply(connection,
               EncodeResultFrame(command->request.kind, *result));
}

bool TaraServer::HandleBatchExecute(Connection* connection,
                                    const std::string& payload) {
  const Clock::time_point received = Clock::now();
  if (metrics_.requests != nullptr) metrics_.requests->Increment();
  auto command = DecodeBatchExecutePayload(payload);
  if (!command.has_value()) {
    if (metrics_.parse_errors != nullptr) metrics_.parse_errors->Increment();
    return Reply(connection, EncodeErrorFrame(command.error()));
  }
  std::optional<Clock::time_point> deadline;
  if (command->deadline_ms > 0) {
    deadline = received + std::chrono::milliseconds(command->deadline_ms);
  }
  // A batch occupies one pool slot; its requests fan out over the
  // engine's own query pool (ExecuteBatch), so admission cost is
  // per-batch, not per-contained-request.
  if (auto rejection = TryAdmit(deadline)) {
    return Reply(connection, *rejection);
  }
  if (options_.pre_execute_hook) options_.pre_execute_hook();
  const auto results = engine_->ExecuteBatch(command->requests);
  gate_.Leave();
  if (metrics_.request_latency != nullptr) {
    metrics_.request_latency->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             received)
            .count()));
  }
  std::vector<QueryKind> kinds;
  kinds.reserve(command->requests.size());
  for (const QueryRequest& request : command->requests) {
    kinds.push_back(request.kind);
  }
  return Reply(connection, EncodeBatchResultFrame(kinds, results));
}

bool TaraServer::HandleAppendWindow(Connection* connection,
                                    const std::string& payload) {
  auto db = DecodeAppendWindowPayload(payload);
  if (!db.has_value()) {
    if (metrics_.parse_errors != nullptr) metrics_.parse_errors->Increment();
    return Reply(connection, EncodeErrorFrame(db.error()));
  }
  if (db->empty()) {
    return Reply(connection,
                 EncodeErrorFrame(ServerWireError::kBadRequest,
                                  "AppendWindow with zero transactions"));
  }
  const WindowId window = engine_->AppendWindow(*db, 0, db->size());
  if (metrics_.appends != nullptr) metrics_.appends->Increment();
  return Reply(connection,
               EncodeAppendAckFrame(window, engine_->generation()));
}

bool TaraServer::Reply(Connection* connection, const std::string& frame) {
  std::string error;
  return WriteAll(connection->socket.fd(), frame, &error);
}

}  // namespace tara::server
