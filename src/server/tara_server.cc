#include "server/tara_server.h"

#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "core/kb_storage.h"

namespace tara::server {

using Clock = std::chrono::steady_clock;

TaraServer::AdmissionGate::Outcome TaraServer::AdmissionGate::Enter(
    std::optional<Clock::time_point> deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) return Outcome::kShutdown;
  if (active_ < max_active_) {
    ++active_;
    return Outcome::kAdmitted;
  }
  if (waiting_ >= max_waiting_) return Outcome::kShed;
  ++waiting_;
  const auto slot_free = [this] { return active_ < max_active_ || stopping_; };
  bool got_slot = true;
  if (deadline.has_value()) {
    got_slot = cv_.wait_until(lock, *deadline, slot_free);
  } else {
    cv_.wait(lock, slot_free);
  }
  --waiting_;
  if (stopping_) return Outcome::kShutdown;
  if (!got_slot) return Outcome::kDeadline;
  ++active_;
  return Outcome::kAdmitted;
}

void TaraServer::AdmissionGate::Leave() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_;
  }
  cv_.notify_one();
}

void TaraServer::AdmissionGate::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
}

TaraServer::TaraServer(TaraEngine* engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      gate_(options_.max_concurrent_queries > 0
                ? options_.max_concurrent_queries
                : std::max(1u, std::thread::hardware_concurrency()),
            std::max(0, options_.max_queued_queries)) {
  options_.max_payload_bytes =
      std::min(options_.max_payload_bytes, kWireMaxPayloadBytes);
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* registry = options_.metrics;
    metrics_.connections = registry->GetCounter("tara.server.connections");
    metrics_.active_connections =
        registry->GetGauge("tara.server.active_connections");
    metrics_.requests = registry->GetCounter("tara.server.requests");
    metrics_.shed = registry->GetCounter("tara.server.shed");
    metrics_.deadline_exceeded =
        registry->GetCounter("tara.server.deadline_exceeded");
    metrics_.appends = registry->GetCounter("tara.server.appends");
    metrics_.parse_errors = registry->GetCounter("tara.server.parse_errors");
    metrics_.request_latency =
        registry->GetHistogram("tara.server.request_latency_ns");
    metrics_.replica_streams =
        registry->GetCounter("tara.server.replica_streams");
    metrics_.replica_records =
        registry->GetCounter("tara.server.replica_records");
  }
}

TaraServer::~TaraServer() { Stop(); }

std::optional<std::string> TaraServer::Start() {
  if (started_) return std::string("Start() called twice");
  auto listener = ListenTcp(options_.host, options_.port,
                            options_.listen_backlog, &bound_port_);
  if (!listener.has_value()) return listener.error();
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    return std::string("eventfd: ") + std::strerror(errno);
  }
  listener_ = std::move(listener.value());
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return std::nullopt;
}

void TaraServer::Stop() {
  if (!started_ || stopping_.exchange(true)) {
    // Not started, or another Stop already ran the shutdown sequence.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  gate_.Shutdown();
  // Knock on the accept loop's eventfd: poll wakes immediately, the loop
  // sees stopping_ and exits — no polling interval, no reliance on
  // shutdown() waking a blocked accept on a *listening* socket (which
  // POSIX does not promise). Shutdown (a read of fd_) may race-freely
  // overlap the accept loop's own fd() reads; Close() writes fd_ = -1,
  // so it must wait until the accept thread has been joined.
  listener_.ShutdownBoth();
  const uint64_t knock = 1;
  [[maybe_unused]] const ssize_t wrote =
      ::write(wake_fd_, &knock, sizeof(knock));
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  ::close(wake_fd_);
  wake_fd_ = -1;
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    connection->socket.ShutdownBoth();
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void TaraServer::ReapFinishedConnections() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void TaraServer::AcceptLoop() {
  // Poll the listener alongside the Stop() eventfd with no timeout: the
  // loop sleeps until a connection arrives or Stop() knocks, so shutdown
  // is immediate and idle servers burn no wakeups. (The previous 100 ms
  // timed poll made every Stop() — and therefore every server test — up
  // to one interval slower, a fixed-sleep flake in disguise.)
  while (!stopping_.load(std::memory_order_relaxed)) {
    struct pollfd pfds[2] = {{listener_.fd(), POLLIN, 0},
                             {wake_fd_, POLLIN, 0}};
    const int ready = ::poll(pfds, 2, /*timeout_ms=*/-1);
    if (stopping_.load(std::memory_order_relaxed)) break;
    if (ready <= 0) continue;  // EINTR
    if (pfds[1].revents != 0) break;  // Stop() knocked
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      continue;  // aborted handshake between poll and accept
    }
    ReapFinishedConnections();
    auto connection = std::make_unique<Connection>();
    connection->socket = Socket(fd);
    if (metrics_.connections != nullptr) metrics_.connections->Increment();
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] { HandleConnection(raw); });
  }
}

void TaraServer::HandleConnection(Connection* connection) {
  if (metrics_.active_connections != nullptr) {
    metrics_.active_connections->Add(1);
  }
  while (!stopping_.load(std::memory_order_relaxed)) {
    FrameRead frame =
        ReadFrame(connection->socket.fd(), options_.max_payload_bytes);
    if (frame.status == FrameRead::Status::kEof ||
        frame.status == FrameRead::Status::kIoError ||
        frame.status == FrameRead::Status::kTimeout) {
      break;
    }
    if (frame.status == FrameRead::Status::kParseError) {
      // Header-level corruption: framing integrity is gone, so reply
      // with the typed parse error and drop the connection.
      if (metrics_.parse_errors != nullptr) metrics_.parse_errors->Increment();
      Reply(connection, EncodeErrorFrame(frame.parse_error));
      break;
    }
    if (!HandleFrame(connection, frame.header, frame.payload)) break;
  }
  connection->socket.ShutdownBoth();
  if (metrics_.active_connections != nullptr) {
    metrics_.active_connections->Add(-1);
  }
  connection->done.store(true, std::memory_order_release);
}

bool TaraServer::HandleFrame(Connection* connection,
                             const FrameHeader& header,
                             const std::string& payload) {
  switch (header.type) {
    case FrameType::kExecute:
      return HandleExecute(connection, payload);
    case FrameType::kBatchExecute:
      return HandleBatchExecute(connection, payload);
    case FrameType::kAppendWindow:
      return HandleAppendWindow(connection, payload);
    case FrameType::kReplicaSubscribe:
      return HandleReplicaSubscribe(connection, payload);
    case FrameType::kMetricsRequest: {
      const bool json = !payload.empty() && payload[0] == 1;
      const std::string snapshot =
          options_.metrics == nullptr
              ? std::string()
              : (json ? options_.metrics->SnapshotJson()
                      : options_.metrics->SnapshotText());
      return Reply(connection,
                   EncodeFrame(FrameType::kMetricsResponse, snapshot));
    }
    case FrameType::kInfoRequest: {
      const auto snapshot = engine_->Snapshot();
      ServerInfo info;
      info.window_count = snapshot->window_count();
      info.generation = snapshot->generation();
      info.rule_count = snapshot->catalog().size();
      return Reply(connection, EncodeInfoResponseFrame(info));
    }
    case FrameType::kPing:
      return Reply(connection, EncodeFrame(FrameType::kPong, {}));
    default: {
      // Valid frame, wrong direction (kResult at the server, ...): the
      // framing is intact, so answer typed and keep the connection.
      if (metrics_.parse_errors != nullptr) metrics_.parse_errors->Increment();
      std::string message = "frame type ";
      message += std::to_string(static_cast<unsigned>(header.type));
      message += " is not a client request";
      return Reply(connection,
                   EncodeErrorFrame(
                       ParseError{ParseError::Code::kUnexpectedFrame,
                                  std::move(message)}));
    }
  }
}

std::optional<std::string> TaraServer::TryAdmit(
    std::optional<Clock::time_point> deadline) {
  switch (gate_.Enter(deadline)) {
    case AdmissionGate::Outcome::kAdmitted:
      return std::nullopt;
    case AdmissionGate::Outcome::kShed:
      if (metrics_.shed != nullptr) metrics_.shed->Increment();
      return EncodeErrorFrame(ServerWireError::kOverloaded,
                              "query pool and wait queue are full; retry "
                              "with backoff");
    case AdmissionGate::Outcome::kDeadline:
      if (metrics_.deadline_exceeded != nullptr) {
        metrics_.deadline_exceeded->Increment();
      }
      return EncodeErrorFrame(ServerWireError::kDeadlineExceeded,
                              "deadline expired before a pool slot freed up");
    case AdmissionGate::Outcome::kShutdown:
      return EncodeErrorFrame(ServerWireError::kShuttingDown,
                              "server is draining");
  }
  return EncodeErrorFrame(ServerWireError::kInternal, "unreachable");
}

bool TaraServer::HandleExecute(Connection* connection,
                               const std::string& payload) {
  const Clock::time_point received = Clock::now();
  if (metrics_.requests != nullptr) metrics_.requests->Increment();
  auto command = DecodeExecutePayload(payload);
  if (!command.has_value()) {
    if (metrics_.parse_errors != nullptr) metrics_.parse_errors->Increment();
    return Reply(connection, EncodeErrorFrame(command.error()));
  }
  std::optional<Clock::time_point> deadline;
  if (command->deadline_ms > 0) {
    deadline = received + std::chrono::milliseconds(command->deadline_ms);
  }
  if (auto rejection = TryAdmit(deadline)) {
    return Reply(connection, *rejection);
  }
  if (options_.pre_execute_hook) options_.pre_execute_hook();
  const auto result = engine_->Execute(command->request);
  gate_.Leave();
  if (metrics_.request_latency != nullptr) {
    metrics_.request_latency->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             received)
            .count()));
  }
  if (!result.has_value()) {
    return Reply(connection, EncodeErrorFrame(result.error()));
  }
  return Reply(connection,
               EncodeResultFrame(command->request.kind, *result));
}

bool TaraServer::HandleBatchExecute(Connection* connection,
                                    const std::string& payload) {
  const Clock::time_point received = Clock::now();
  if (metrics_.requests != nullptr) metrics_.requests->Increment();
  auto command = DecodeBatchExecutePayload(payload);
  if (!command.has_value()) {
    if (metrics_.parse_errors != nullptr) metrics_.parse_errors->Increment();
    return Reply(connection, EncodeErrorFrame(command.error()));
  }
  std::optional<Clock::time_point> deadline;
  if (command->deadline_ms > 0) {
    deadline = received + std::chrono::milliseconds(command->deadline_ms);
  }
  // A batch occupies one pool slot; its requests fan out over the
  // engine's own query pool (ExecuteBatch), so admission cost is
  // per-batch, not per-contained-request.
  if (auto rejection = TryAdmit(deadline)) {
    return Reply(connection, *rejection);
  }
  if (options_.pre_execute_hook) options_.pre_execute_hook();
  const auto results = engine_->ExecuteBatch(command->requests);
  gate_.Leave();
  if (metrics_.request_latency != nullptr) {
    metrics_.request_latency->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             received)
            .count()));
  }
  std::vector<QueryKind> kinds;
  kinds.reserve(command->requests.size());
  for (const QueryRequest& request : command->requests) {
    kinds.push_back(request.kind);
  }
  return Reply(connection, EncodeBatchResultFrame(kinds, results));
}

bool TaraServer::HandleAppendWindow(Connection* connection,
                                    const std::string& payload) {
  auto db = DecodeAppendWindowPayload(payload);
  if (!db.has_value()) {
    if (metrics_.parse_errors != nullptr) metrics_.parse_errors->Increment();
    return Reply(connection, EncodeErrorFrame(db.error()));
  }
  if (options_.read_only) {
    return Reply(connection,
                 EncodeErrorFrame(ServerWireError::kReadOnlyReplica,
                                  "this server is a read-only replica; "
                                  "send appends to the primary"));
  }
  if (db->empty()) {
    return Reply(connection,
                 EncodeErrorFrame(ServerWireError::kBadRequest,
                                  "AppendWindow with zero transactions"));
  }
  const WindowId window = engine_->AppendWindow(*db, 0, db->size());
  if (metrics_.appends != nullptr) metrics_.appends->Increment();
  return Reply(connection,
               EncodeAppendAckFrame(window, engine_->generation()));
}

bool TaraServer::HandleReplicaSubscribe(Connection* connection,
                                        const std::string& payload) {
  auto subscribe = DecodeReplicaSubscribePayload(payload);
  if (!subscribe.has_value()) {
    if (metrics_.parse_errors != nullptr) metrics_.parse_errors->Increment();
    Reply(connection, EncodeErrorFrame(subscribe.error()));
    return true;  // lockstep framing is intact; the connection survives
  }
  uint32_t next = subscribe->from_window;
  if (next > engine_->durable_window_count()) {
    // A follower ahead of this primary holds windows we never durably
    // acked — it is replicating the wrong knowledge base (or the wrong
    // incarnation of it). Refuse rather than stream a diverging tail.
    std::string message = "subscription starts at window ";
    message += std::to_string(next);
    message += " but the primary has ";
    message += std::to_string(engine_->durable_window_count());
    message += " durable windows";
    return Reply(connection, EncodeErrorFrame(ServerWireError::kBadRequest,
                                              std::move(message)));
  }
  if (metrics_.replica_streams != nullptr) {
    metrics_.replica_streams->Increment();
  }
  {
    // Handshake: announce this engine's option fingerprint and durable
    // position so the follower can refuse a stream mined at other floors
    // (the same compatibility gate AttachWal applies to a foreign log).
    const auto snapshot = engine_->Snapshot();
    const KbOptions& engine_options = snapshot->options();
    ReplicaCheckpoint checkpoint;
    checkpoint.min_support_floor = engine_options.min_support_floor;
    checkpoint.min_confidence_floor = engine_options.min_confidence_floor;
    checkpoint.max_itemset_size = engine_options.max_itemset_size;
    checkpoint.build_content_index = engine_options.build_content_index;
    checkpoint.window_count = engine_->durable_window_count();
    checkpoint.generation = snapshot->generation();
    if (!Reply(connection, EncodeReplicaCheckpointFrame(checkpoint))) {
      return false;
    }
  }
  const auto heartbeat_wait =
      std::chrono::milliseconds(options_.replication_heartbeat_ms);
  while (!stopping_.load(std::memory_order_relaxed)) {
    uint32_t durable = engine_->durable_window_count();
    if (durable <= next) {
      durable = engine_->WaitDurableWindowsAbove(next, heartbeat_wait);
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (durable <= next) {
        // Still caught up: heartbeat, which doubles as peer-liveness
        // detection (a vanished follower fails the write).
        if (!Reply(connection, EncodeReplicaHeartbeatFrame(
                                   durable, engine_->generation()))) {
          return false;
        }
        continue;
      }
    }
    // The snapshot is published before the WAL fsync advances the
    // watermark, so any snapshot taken now holds every durable window.
    const auto snapshot = engine_->Snapshot();
    const uint32_t limit = std::min(durable, snapshot->window_count());
    for (; next < limit; ++next) {
      const std::vector<uint8_t> segment = EncodeWindowSegment(*snapshot, next);
      const std::string frame = EncodeReplicaRecordFrame(
          next, snapshot->segment(next).total_transactions,
          snapshot->generation(),
          std::string_view(reinterpret_cast<const char*>(segment.data()),
                           segment.size()));
      if (!Reply(connection, frame)) return false;
      if (metrics_.replica_records != nullptr) {
        metrics_.replica_records->Increment();
      }
    }
  }
  return false;  // server draining: close the stream
}

bool TaraServer::Reply(Connection* connection, const std::string& frame) {
  std::string error;
  return WriteAll(connection->socket.fd(), frame, &error);
}

}  // namespace tara::server
