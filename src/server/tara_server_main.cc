// tara_server: the TARA serving daemon.
//
//   tara_server HOST:PORT [options]
//
// Builds (or loads) a knowledge base, then serves the wire protocol
// until SIGINT/SIGTERM. With port 0 the kernel picks a free port;
// --port-file makes the bound port discoverable by scripts. The whole
// implementation lives in RunServeMain so `tara_cli serve` is the same
// server behind a different front door.
//
// Options:
//   --loaddir DIR     load a TARAKB2 knowledge-base directory instead of
//                     generating data
//   --quest N ITEMS   Quest generator size (default 4000 120)
//   --windows K       windows to partition the generated data into (4)
//   --floor S C       support / confidence mining floors (0.01 0.1)
//   --cache BYTES     query-cache budget (default 32 MiB, 0 disables)
//   --workers N       max concurrently executing queries (0 = hardware)
//   --queue N         admission wait-queue depth (default 64)
//   --port-file FILE  write the bound port to FILE after listening

#include "server/serving_bootstrap.h"

int main(int argc, char** argv) {
  return tara::server::RunServeMain(argc - 1, argv + 1, "tara_server");
}
