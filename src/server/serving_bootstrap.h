#ifndef TARA_SERVER_SERVING_BOOTSTRAP_H_
#define TARA_SERVER_SERVING_BOOTSTRAP_H_

#include <cstdint>
#include <string>

#include "common/expected.h"
#include "core/tara_engine.h"

namespace tara::server {

/// How a serving process obtains its engine: load a segmented TARAKB2
/// directory, or synthesize + build a Quest dataset (demos, smoke tests,
/// load generation). Shared by the tara_server binary and `tara_cli
/// serve` so the two front doors stay behaviorally identical.
struct EngineBootstrap {
  /// When non-empty, load this knowledge-base directory and ignore the
  /// generator fields.
  std::string loaddir;
  /// When non-empty, attach a write-ahead log in this directory: appends
  /// are acked only after their WAL record is fdatasync'd, and startup
  /// replays any log tail a crash left behind (on top of `loaddir`'s
  /// checkpoint when both are given, on top of the deterministically
  /// rebuilt Quest base otherwise).
  std::string wal_dir;
  /// Open `loaddir` in mapped mode (TARAKB3 zero-copy, windows
  /// materialize on demand). Ignored when the directory is TARAKB2 or a
  /// WAL is configured — both force an eager open.
  bool mmap = false;
  /// Verify checkpoint content hashes before serving from it.
  bool verify_hashes = false;
  uint32_t quest_transactions = 4000;
  uint32_t quest_items = 120;
  uint32_t windows = 4;
  double support_floor = 0.01;
  double confidence_floor = 0.1;
  /// Query-cache budget for the serving engine (0 disables).
  size_t cache_bytes = 32u << 20;
  /// Instrument destination (usually the process-global registry).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Builds or loads the serving engine. Returns an error message suitable
/// for stderr on failure (bad directory, invalid floors).
Expected<TaraEngine, std::string> BootstrapEngine(
    const EngineBootstrap& bootstrap);

/// Writes the decimal port into `path` (for scripts that started a
/// server on an ephemeral port). Returns false on I/O failure.
bool WritePortFile(const std::string& path, uint16_t port);

/// The full serve entry point shared by the `tara_server` daemon and
/// `tara_cli serve`: parses `HOST:PORT [flags...]` from `args`,
/// bootstraps an engine, serves until SIGINT/SIGTERM, and returns the
/// process exit code. `usage_prefix` names the front door in usage and
/// log lines (e.g. "tara_server" or "tara_cli serve").
int RunServeMain(int argc, char** argv, const char* usage_prefix);

}  // namespace tara::server

#endif  // TARA_SERVER_SERVING_BOOTSTRAP_H_
