#ifndef TARA_SERVER_TARA_SERVER_H_
#define TARA_SERVER_TARA_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/tara_engine.h"
#include "core/wire_format.h"
#include "obs/metrics.h"
#include "server/net_io.h"

namespace tara::server {

/// Serving configuration. The defaults suit tests and small deployments;
/// a production process sizes the pool and queue to its hardware.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (the bound port is reported by TaraServer::port()).
  uint16_t port = 0;
  /// Concurrent query executions (the "query pool"). 0 = hardware
  /// concurrency.
  int max_concurrent_queries = 0;
  /// Requests allowed to wait for a pool slot beyond the concurrent
  /// limit. The (max_concurrent_queries + max_queued_queries + 1)-th
  /// simultaneous request is shed with kOverloaded.
  int max_queued_queries = 64;
  /// Per-frame payload ceiling enforced at the header (memory-bomb
  /// admission; must be <= kWireMaxPayloadBytes).
  uint32_t max_payload_bytes = kWireMaxPayloadBytes;
  /// Listen backlog passed to listen(2).
  int listen_backlog = 64;
  /// Instrument destination for the tara.server.* series and the
  /// kMetricsRequest endpoint; nullptr = no metrics, empty endpoint.
  obs::MetricsRegistry* metrics = nullptr;
  /// Hot-standby role: reject kAppendWindow with kReadOnlyReplica
  /// instead of mutating the engine. Queries, info, metrics, and
  /// (chained) replication subscriptions all keep working.
  bool read_only = false;
  /// Cadence of kReplicaHeartbeat frames on a caught-up replication
  /// stream. Also bounds how long a stream thread can sit in the
  /// durable-watermark wait before noticing Stop().
  uint32_t replication_heartbeat_ms = 250;
  /// Test seam: runs on the worker after admission, immediately before
  /// engine execution. Lets tests hold the pool occupied deterministically
  /// to drive the shed and deadline paths. Never set in production.
  std::function<void()> pre_execute_hook;
};

/// A multi-threaded TCP server exposing the TARA wire protocol
/// (core/wire_format.h) over a TaraEngine: Execute / ExecuteBatch with
/// per-request deadlines and admission control, live AppendWindow
/// ingestion, a metrics endpoint, and info/ping.
///
/// ## Threading model
///
/// One accept thread plus one handler thread per connection. Each
/// connection is request-response lockstep (the protocol is synchronous
/// per connection; open more connections for parallelism). Query
/// execution passes through an admission gate bounding the number of
/// concurrently executing queries to max_concurrent_queries with at most
/// max_queued_queries waiters:
///
/// - pool free           -> execute immediately
/// - pool busy, queue ok -> wait (bounded by the request deadline)
/// - queue full          -> shed NOW with kOverloaded (never stalls)
/// - deadline expires while queued -> kDeadlineExceeded, never executed
///
/// Deadlines gate admission, not execution: a query that starts is run
/// to completion (queries are not preemptible), so the deadline bounds
/// queueing delay — the quantity admission control can actually control.
///
/// Ingestion (kAppendWindow) bypasses the query gate and serializes on
/// the engine's internal commit mutex; queries keep answering from
/// pinned snapshots while an append runs (the PR-4 RCU design, now
/// end-to-end over a socket).
///
/// ## Error behavior
///
/// Every failure is a typed kError frame (wire codes of wire_format.h).
/// A payload-level parse error is recoverable (the connection survives);
/// a header-level parse error (bad magic/version/length) means framing
/// integrity is lost, so the server replies and closes that connection.
/// The engine's QueryErrors pass through with their frozen codes. The
/// server process itself never aborts on anything a client sends.
///
/// ## Metrics
///
/// With ServerOptions::metrics set, the server registers
///   tara.server.connections          total accepted (counter)
///   tara.server.active_connections   currently open (gauge)
///   tara.server.requests             execute + batch frames (counter)
///   tara.server.shed                 admission rejections (counter)
///   tara.server.deadline_exceeded    queued past deadline (counter)
///   tara.server.appends              windows ingested over the wire
///   tara.server.parse_errors         malformed frames/payloads
///   tara.server.request_latency_ns   admission + execution (histogram)
class TaraServer {
 public:
  /// `engine` must outlive the server. The engine may concurrently serve
  /// local callers and other servers; all synchronization is the
  /// engine's snapshot design.
  TaraServer(TaraEngine* engine, ServerOptions options);
  ~TaraServer();

  TaraServer(const TaraServer&) = delete;
  TaraServer& operator=(const TaraServer&) = delete;

  /// Binds, listens, and starts the accept loop. Returns an error
  /// message on failure (port in use, bad host, ...), nullopt on
  /// success. Call at most once.
  std::optional<std::string> Start();

  /// Drains: closes the listener, wakes queued requests, shuts every
  /// connection, joins all threads. Idempotent; the destructor calls it.
  void Stop();

  /// The bound port (resolves ephemeral port 0). Valid after Start().
  uint16_t port() const { return bound_port_; }
  const ServerOptions& options() const { return options_; }

 private:
  /// Bounded concurrency gate for query execution (see class comment).
  class AdmissionGate {
   public:
    enum class Outcome { kAdmitted, kShed, kDeadline, kShutdown };

    AdmissionGate(int max_active, int max_waiting)
        : max_active_(max_active), max_waiting_(max_waiting) {}

    Outcome Enter(
        std::optional<std::chrono::steady_clock::time_point> deadline);
    void Leave();
    void Shutdown();

   private:
    std::mutex mutex_;
    std::condition_variable cv_;
    int active_ = 0;
    int waiting_ = 0;
    bool stopping_ = false;
    const int max_active_;
    const int max_waiting_;
  };

  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  struct ServerMetrics {
    obs::Counter* connections = nullptr;
    obs::Gauge* active_connections = nullptr;
    obs::Counter* requests = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* appends = nullptr;
    obs::Counter* parse_errors = nullptr;
    obs::Histogram* request_latency = nullptr;
    obs::Counter* replica_streams = nullptr;
    obs::Counter* replica_records = nullptr;
  };

  void AcceptLoop();
  void HandleConnection(Connection* connection);
  /// Dispatches one frame; returns false when the connection must close
  /// (header-level corruption or write failure).
  bool HandleFrame(Connection* connection, const FrameHeader& header,
                   const std::string& payload);
  /// Passes the admission gate. Returns nullopt when admitted (caller
  /// owes a gate_.Leave()); otherwise the encoded typed-error frame to
  /// send instead, with the shed/deadline counters already bumped.
  std::optional<std::string> TryAdmit(
      std::optional<std::chrono::steady_clock::time_point> deadline);
  bool HandleExecute(Connection* connection, const std::string& payload);
  bool HandleBatchExecute(Connection* connection, const std::string& payload);
  bool HandleAppendWindow(Connection* connection, const std::string& payload);
  /// Switches the connection from lockstep to server-push streaming:
  /// checkpoint handshake, then durably-acked records as they land, with
  /// heartbeats while caught up. Returns only when the peer goes away or
  /// the server stops — always false (the connection closes with the
  /// stream).
  bool HandleReplicaSubscribe(Connection* connection,
                              const std::string& payload);
  bool Reply(Connection* connection, const std::string& frame);
  /// Joins and discards connections whose handler has finished.
  void ReapFinishedConnections();

  TaraEngine* engine_;
  ServerOptions options_;
  ServerMetrics metrics_;
  AdmissionGate gate_;
  Socket listener_;
  /// eventfd the accept loop polls alongside the listener; Stop() writes
  /// it to wake the loop deterministically (shutdown() on a *listening*
  /// socket does not reliably wake poll/accept on all kernels).
  int wake_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace tara::server

#endif  // TARA_SERVER_TARA_SERVER_H_
