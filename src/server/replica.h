#ifndef TARA_SERVER_REPLICA_H_
#define TARA_SERVER_REPLICA_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "core/tara_engine.h"
#include "obs/metrics.h"
#include "server/net_io.h"

namespace tara::server {

/// Configuration of a hot-standby follower.
struct ReplicaOptions {
  /// The primary's TaraServer endpoint.
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;
  /// Optional local checkpoint (TARAKB2/TARAKB3 directory) to bootstrap
  /// from before subscribing; empty = bootstrap entirely from the
  /// primary's stream. A checkpoint must carry the primary's floors —
  /// the handshake refuses mismatched options, exactly as AttachWal
  /// refuses a foreign log.
  std::string kb_dir;
  /// Instrument destination for the tara.replica.* series; nullptr = no
  /// metrics. Also becomes the replica engine's registry.
  obs::MetricsRegistry* metrics = nullptr;
  /// Engine knobs for the local replica engine.
  uint64_t query_cache_bytes = 0;
  uint32_t parallelism = 1;
  /// Reconnect backoff: starts at `backoff_initial_ms`, doubles per
  /// consecutive failure, saturates at `backoff_max_ms`.
  uint32_t backoff_initial_ms = 50;
  uint32_t backoff_max_ms = 2000;
  /// Per-syscall socket deadline on the subscription connection. Must
  /// comfortably exceed the primary's heartbeat cadence (default 250 ms)
  /// or a healthy idle stream reads as a dead peer.
  uint32_t io_timeout_ms = 5000;
};

/// A hot-standby follower of one TARA primary: it bootstraps from an
/// optional local checkpoint, subscribes to the primary's durably-acked
/// window stream (kReplicaSubscribe), and replays each kReplicaRecord
/// through the engine's ordinary append path — so the replica's
/// knowledge base is rebuilt by exactly the machinery WAL recovery uses,
/// and every generation it publishes is byte-identical to the primary's
/// at the same window count (the differential oracle in
/// tests/test_replication.cc enforces this).
///
/// ## Threading model
///
/// One tail thread owns the subscription socket and is the engine's
/// single writer. Readers query engine() concurrently at any time — the
/// engine's RCU snapshot design needs nothing more. Status()/
/// WaitForWindows() are safe from any thread.
///
/// ## Failure model
///
/// Any stream problem — connect refusal, read timeout, torn frame, a
/// record that does not decode, a gap past the next expected window —
/// tears the connection down and reconnects with exponential backoff,
/// resubscribing from the engine's own window count. Windows already
/// applied are never reapplied (the subscribe position advances), so a
/// mid-stream primary restart or replica kill resumes exactly at the
/// last durably-acked window. A primary whose floors mismatch the local
/// checkpoint is a permanent error: the tail loop parks in backoff and
/// reports the message through Status().
///
/// ## Metrics (with ReplicaOptions::metrics set)
///
///   tara.replica.generation       engine generation (gauge)
///   tara.replica.lag_windows      primary durable windows - local (gauge)
///   tara.replica.reconnects      resubscriptions after the first (counter)
///   tara.replica.records_applied windows replayed off the stream (counter)
class ReplicaEngine {
 public:
  /// A point-in-time view of the follower, for CLI status and tests.
  struct Status {
    bool connected = false;
    uint32_t window_count = 0;
    uint64_t generation = 0;
    /// The primary's durable window count per the latest checkpoint/
    /// heartbeat/record seen (0 until the first handshake).
    uint32_t primary_windows = 0;
    uint32_t lag_windows = 0;
    uint64_t records_applied = 0;
    uint64_t reconnects = 0;
    /// Last connection/replay error, "" while healthy.
    std::string last_error;
  };

  explicit ReplicaEngine(ReplicaOptions options);
  ~ReplicaEngine();

  ReplicaEngine(const ReplicaEngine&) = delete;
  ReplicaEngine& operator=(const ReplicaEngine&) = delete;

  /// Loads the checkpoint (if any), performs the first subscribe +
  /// handshake synchronously — so misconfiguration (bad endpoint, floor
  /// mismatch, corrupt checkpoint) is a returned error, not a silent
  /// retry loop — then starts the tail thread. Call at most once.
  std::optional<std::string> Start();

  /// Stops tailing: wakes the backoff sleeper, shuts the live socket,
  /// joins the tail thread. Idempotent; the destructor calls it.
  void Stop();

  /// The local engine. Valid after a successful Start(); serve it
  /// read-only (TaraServer with ServerOptions::read_only) or query it
  /// directly. The tail thread is the only writer.
  TaraEngine* engine() { return engine_.get(); }
  const TaraEngine* engine() const { return engine_.get(); }

  Status GetStatus() const;

  /// Blocks until the engine holds >= `windows` windows or `timeout`
  /// elapses; returns the window count either way. Condition-based (no
  /// polling) — tests and the lag bench wait on this.
  uint32_t WaitForWindows(uint32_t windows,
                          std::chrono::milliseconds timeout) const;

 private:
  /// One subscription lifetime: reads and applies the stream off a live
  /// socket until it breaks. Returns the error that ended it.
  std::string RunSession(Socket* socket);
  /// Connect + subscribe-from-engine-window-count + checkpoint
  /// handshake. On success fills `*socket` with the live stream.
  std::optional<std::string> OpenStream(Socket* socket);
  /// Applies one kReplicaRecord payload through the append path.
  std::optional<std::string> ApplyRecord(const std::string& payload);
  void TailLoop();
  /// Interruptible backoff sleep; returns false when stopping.
  bool SleepBackoff(uint32_t* backoff_ms);
  void NoteError(const std::string& message);
  void UpdateLagMetrics();

  ReplicaOptions options_;
  std::unique_ptr<TaraEngine> engine_;
  std::thread tail_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  /// Guards live_fd_ so Stop() can shutdown(2) the socket the tail
  /// thread is blocked reading.
  mutable std::mutex socket_mutex_;
  int live_fd_ = -1;

  mutable std::mutex state_mutex_;
  mutable std::condition_variable state_cv_;
  bool connected_ = false;
  uint32_t primary_windows_ = 0;
  std::atomic<uint64_t> records_applied_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::string last_error_;

  obs::Gauge* generation_gauge_ = nullptr;
  obs::Gauge* lag_gauge_ = nullptr;
  obs::Counter* reconnects_counter_ = nullptr;
  obs::Counter* records_counter_ = nullptr;
};

}  // namespace tara::server

#endif  // TARA_SERVER_REPLICA_H_
