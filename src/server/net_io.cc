#include "server/net_io.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tara::server {
namespace {

std::string ErrnoMessage(std::string_view what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// EINTR-safe full read; returns bytes read (short only on EOF), or -1.
ssize_t ReadExact(int fd, char* buffer, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buffer + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) break;
    got += static_cast<size_t>(r);
  }
  return static_cast<ssize_t>(got);
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

FrameRead ReadFrame(int fd, uint32_t max_payload) {
  FrameRead out;
  char header_bytes[kWireHeaderBytes];
  const ssize_t header_got = ReadExact(fd, header_bytes, kWireHeaderBytes);
  if (header_got < 0) {
    out.status = FrameRead::Status::kIoError;
    out.io_message = ErrnoMessage("read");
    return out;
  }
  if (header_got == 0) {
    out.status = FrameRead::Status::kEof;
    return out;
  }
  if (static_cast<size_t>(header_got) < kWireHeaderBytes) {
    out.status = FrameRead::Status::kIoError;
    out.io_message = "peer closed mid-header";
    return out;
  }
  auto header = DecodeFrameHeader(
      std::string_view(header_bytes, kWireHeaderBytes), max_payload);
  if (!header.has_value()) {
    out.status = FrameRead::Status::kParseError;
    out.parse_error = header.error();
    return out;
  }
  out.header = *header;
  out.payload.resize(header->payload_size);
  if (header->payload_size > 0) {
    const ssize_t payload_got =
        ReadExact(fd, out.payload.data(), header->payload_size);
    if (payload_got < 0) {
      out.status = FrameRead::Status::kIoError;
      out.io_message = ErrnoMessage("read");
      return out;
    }
    if (static_cast<size_t>(payload_got) < header->payload_size) {
      out.status = FrameRead::Status::kIoError;
      out.io_message = "peer closed mid-payload";
      return out;
    }
  }
  out.status = FrameRead::Status::kOk;
  return out;
}

bool WriteAll(int fd, std::string_view bytes, std::string* error) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t w =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = ErrnoMessage("send");
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  return true;
}

namespace {

bool FillAddress(const std::string& host, uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const char* name = host == "localhost" ? "127.0.0.1" : host.c_str();
  return ::inet_pton(AF_INET, name, &addr->sin_addr) == 1;
}

}  // namespace

Expected<Socket, std::string> ConnectTcp(const std::string& host,
                                         uint16_t port) {
  sockaddr_in addr;
  if (!FillAddress(host, port, &addr)) {
    return std::string("cannot parse host address '" + host +
                       "' (IPv4 dotted quad or 'localhost')");
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoMessage("socket");
  while (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    return ErrnoMessage("connect to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Expected<Socket, std::string> ListenTcp(const std::string& host,
                                        uint16_t port, int backlog,
                                        uint16_t* bound_port) {
  sockaddr_in addr;
  if (!FillAddress(host, port, &addr)) {
    return std::string("cannot parse host address '" + host +
                       "' (IPv4 dotted quad or 'localhost')");
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoMessage("socket");
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return ErrnoMessage("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(sock.fd(), backlog) != 0) return ErrnoMessage("listen");
  if (bound_port != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return ErrnoMessage("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return sock;
}

bool SplitHostPort(std::string_view spec, std::string* host, uint16_t* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  unsigned long value = 0;
  const std::string digits(spec.substr(colon + 1));
  if (digits.empty()) return false;
  char* end = nullptr;
  value = std::strtoul(digits.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value > 65535) return false;
  *host = std::string(spec.substr(0, colon));
  *port = static_cast<uint16_t>(value);
  return true;
}

}  // namespace tara::server
