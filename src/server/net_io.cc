#include "server/net_io.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tara::server {
namespace {

std::string ErrnoMessage(std::string_view what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// EINTR-safe full read; returns bytes read (short only on EOF), or -1.
ssize_t ReadExact(int fd, char* buffer, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buffer + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) break;
    got += static_cast<size_t>(r);
  }
  return static_cast<ssize_t>(got);
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

FrameRead ReadFrame(int fd, uint32_t max_payload) {
  FrameRead out;
  char header_bytes[kWireHeaderBytes];
  const ssize_t header_got = ReadExact(fd, header_bytes, kWireHeaderBytes);
  if (header_got < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      out.status = FrameRead::Status::kTimeout;
      out.io_message = "receive deadline expired waiting for a frame";
      return out;
    }
    out.status = FrameRead::Status::kIoError;
    out.io_message = ErrnoMessage("read");
    return out;
  }
  if (header_got == 0) {
    out.status = FrameRead::Status::kEof;
    return out;
  }
  if (static_cast<size_t>(header_got) < kWireHeaderBytes) {
    out.status = FrameRead::Status::kIoError;
    out.io_message = "peer closed mid-header";
    return out;
  }
  auto header = DecodeFrameHeader(
      std::string_view(header_bytes, kWireHeaderBytes), max_payload);
  if (!header.has_value()) {
    out.status = FrameRead::Status::kParseError;
    out.parse_error = header.error();
    return out;
  }
  out.header = *header;
  out.payload.resize(header->payload_size);
  if (header->payload_size > 0) {
    const ssize_t payload_got =
        ReadExact(fd, out.payload.data(), header->payload_size);
    if (payload_got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        out.status = FrameRead::Status::kTimeout;
        out.io_message = "receive deadline expired mid-frame";
        return out;
      }
      out.status = FrameRead::Status::kIoError;
      out.io_message = ErrnoMessage("read");
      return out;
    }
    if (static_cast<size_t>(payload_got) < header->payload_size) {
      out.status = FrameRead::Status::kIoError;
      out.io_message = "peer closed mid-payload";
      return out;
    }
  }
  out.status = FrameRead::Status::kOk;
  return out;
}

bool WriteAll(int fd, std::string_view bytes, std::string* error,
              bool* timed_out) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t w =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (timed_out != nullptr) *timed_out = true;
        if (error != nullptr) *error = "send deadline expired";
        return false;
      }
      if (error != nullptr) *error = ErrnoMessage("send");
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  return true;
}

bool SetSocketTimeouts(int fd, uint32_t timeout_ms, std::string* error) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    if (error != nullptr) {
      *error = ErrnoMessage("setsockopt(SO_RCVTIMEO/SO_SNDTIMEO)");
    }
    return false;
  }
  return true;
}

namespace {

/// getaddrinfo over host:port. A non-zero return code becomes a typed
/// message in `*error` (resolver wording, not a bare errno).
addrinfo* ResolveAddress(const std::string& host, uint16_t port,
                         bool passive, std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;  // IPv4 and IPv6 alike
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &results);
  if (rc != 0) {
    *error = "cannot resolve host '" + host + "': " +
             (rc == EAI_SYSTEM ? std::strerror(errno) : ::gai_strerror(rc));
    return nullptr;
  }
  return results;
}

}  // namespace

Expected<Socket, std::string> ConnectTcp(const std::string& host,
                                         uint16_t port) {
  std::string error;
  addrinfo* results = ResolveAddress(host, port, /*passive=*/false, &error);
  if (results == nullptr) return error;
  error = "no usable addresses for '" + host + "'";
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    Socket sock(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!sock.valid()) {
      error = ErrnoMessage("socket");
      continue;
    }
    int rc = 0;
    do {
      rc = ::connect(sock.fd(), ai->ai_addr, ai->ai_addrlen);
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) {
      const int one = 1;
      ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(results);
      return sock;
    }
    error = ErrnoMessage("connect to " + host + ":" + std::to_string(port));
  }
  ::freeaddrinfo(results);
  return error;
}

Expected<Socket, std::string> ListenTcp(const std::string& host,
                                        uint16_t port, int backlog,
                                        uint16_t* bound_port) {
  std::string error;
  addrinfo* results = ResolveAddress(host, port, /*passive=*/true, &error);
  if (results == nullptr) return error;
  error = "no usable addresses for '" + host + "'";
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    Socket sock(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!sock.valid()) {
      error = ErrnoMessage("socket");
      continue;
    }
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(sock.fd(), ai->ai_addr, ai->ai_addrlen) != 0) {
      error = ErrnoMessage("bind " + host + ":" + std::to_string(port));
      continue;
    }
    if (::listen(sock.fd(), backlog) != 0) {
      error = ErrnoMessage("listen");
      continue;
    }
    if (bound_port != nullptr) {
      sockaddr_storage bound;
      socklen_t len = sizeof(bound);
      if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound),
                        &len) != 0) {
        error = ErrnoMessage("getsockname");
        continue;
      }
      *bound_port =
          bound.ss_family == AF_INET6
              ? ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port)
              : ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
    }
    ::freeaddrinfo(results);
    return sock;
  }
  ::freeaddrinfo(results);
  return error;
}

bool SplitHostPort(std::string_view spec, std::string* host, uint16_t* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  unsigned long value = 0;
  const std::string digits(spec.substr(colon + 1));
  if (digits.empty()) return false;
  char* end = nullptr;
  value = std::strtoul(digits.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value > 65535) return false;
  *host = std::string(spec.substr(0, colon));
  *port = static_cast<uint16_t>(value);
  return true;
}

}  // namespace tara::server
