#include "core/kb_builder.h"

#include <algorithm>
#include <deque>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/kb_storage.h"
#include "mining/fp_growth.h"

namespace tara {
namespace {

/// Resolves Options::parallelism (0 = hardware concurrency) to a concrete
/// worker count.
uint32_t EffectiveParallelism(uint32_t requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

KbBuilder::KbBuilder(const Options& options)
    : options_(options), catalog_(std::make_shared<RuleCatalog>()) {
  const std::optional<std::string> error = options_.Validate();
  TARA_CHECK(!error.has_value()) << *error;
  const uint32_t parallelism = EffectiveParallelism(options_.parallelism);
  if (parallelism > 1) pool_ = std::make_unique<ThreadPool>(parallelism);
  RegisterMetrics();
  {
    // Publish the empty generation-0 snapshot so snapshot() is never null.
    std::lock_guard<std::mutex> lock(commit_mutex_);
    PublishSnapshotLocked();
  }
  if (!options_.wal_dir.empty()) {
    const auto attached = AttachWal(options_.wal_dir);
    TARA_CHECK(attached.has_value())
        << "cannot attach the write-ahead log in '" << options_.wal_dir
        << "': " << attached.error().message;
  }
}

Expected<WalReplayStats, LoadError> KbBuilder::AttachWal(
    const std::string& dir) {
  TARA_CHECK(wal_ == nullptr) << "a write-ahead log is already attached";
  WalReplayStats stats;
  uint64_t valid_bytes = 0;
  if (WalExists(dir)) {
    auto contents = ReadWal(dir);
    if (!contents.has_value()) return contents.error();
    // The log must describe this builder's engine; replaying records
    // mined at other floors would poison the knowledge base.
    if (contents->options.min_support_floor != options_.min_support_floor ||
        contents->options.min_confidence_floor !=
            options_.min_confidence_floor ||
        contents->options.max_itemset_size != options_.max_itemset_size ||
        contents->options.build_content_index !=
            options_.build_content_index) {
      return LoadError{
          LoadError::Code::kBadManifest,
          "write-ahead log in '" + dir +
              "' was written by an engine with different construction "
              "options (floors/itemset cap/content index) — refusing to "
              "attach"};
    }
    valid_bytes = contents->valid_bytes;
    stats.truncated_bytes = contents->truncated_bytes;
    stats.records_scanned = contents->records.size();
    for (const WalRecord& record : contents->records) {
      // Order the record by its window id BEFORE decoding: stale and
      // out-of-sequence records must not be parsed against this
      // engine's catalog (a gap record would misreport as corruption).
      const auto window = PeekWindowSegmentWindow(record.segment_bytes.data(),
                                                 record.segment_bytes.size());
      if (!window.has_value()) return window.error();
      const WindowId next = static_cast<WindowId>(segments_.size());
      if (*window < next) {
        // A record the last checkpoint already covers (the crash landed
        // between the checkpoint and the log truncation).
        ++stats.records_skipped;
        continue;
      }
      if (*window > next) {
        return LoadError{
            LoadError::Code::kBadManifest,
            "write-ahead log in '" + dir + "' jumps to window " +
                std::to_string(*window) + " but the engine has " +
                std::to_string(next) +
                " windows — the log does not belong to this knowledge base"};
      }
      auto decoded = DecodeWindowSegment(record.segment_bytes.data(),
                                         record.segment_bytes.size(),
                                         *catalog_);
      if (!decoded.has_value()) return decoded.error();
      if (decoded->first_rule != static_cast<RuleId>(catalog_->size())) {
        return LoadError{LoadError::Code::kCorruptSegment,
                         "write-ahead record for window " +
                             std::to_string(decoded->window) +
                             " starts its rule ids at " +
                             std::to_string(decoded->first_rule) +
                             " but the catalog holds " +
                             std::to_string(catalog_->size()) + " rules"};
      }
      AppendPrecomputedWindow(record.total_transactions, decoded->entries);
      ++stats.records_replayed;
    }
  }
  auto writer = WalWriter::Open(dir, options_, valid_bytes, options_.metrics);
  if (!writer.has_value()) return writer.error();
  {
    std::lock_guard<std::mutex> lock(commit_mutex_);
    wal_ = std::make_unique<WalWriter>(std::move(writer.value()));
  }
  if (options_.metrics != nullptr && stats.records_replayed > 0) {
    options_.metrics->GetCounter("tara.wal.replays")
        ->Increment(stats.records_replayed);
  }
  return stats;
}

std::optional<LoadError> KbBuilder::TruncateWal() {
  std::lock_guard<std::mutex> lock(commit_mutex_);
  if (wal_ == nullptr) return std::nullopt;
  return wal_->Truncate();
}

void KbBuilder::LogWindowsLocked(WindowId first) {
  if (wal_ == nullptr) return;
  const std::shared_ptr<const KnowledgeBaseSnapshot> snapshot =
      current_.load(std::memory_order_relaxed);
  for (WindowId w = first; w < static_cast<WindowId>(segments_.size()); ++w) {
    const auto error = wal_->Append(segments_[w]->total_transactions,
                                    EncodeWindowSegment(*snapshot, w));
    // The window is already committed and visible; returning without
    // durability would let the caller ack a window a crash can lose.
    TARA_CHECK(!error.has_value())
        << "write-ahead log append failed for window " << w << ": "
        << error->message;
  }
}

void KbBuilder::MarkDurableLocked() {
  {
    std::lock_guard<std::mutex> lock(durable_mutex_);
    durable_windows_.store(static_cast<uint32_t>(segments_.size()),
                           std::memory_order_release);
  }
  durable_cv_.notify_all();
}

uint32_t KbBuilder::WaitDurableWindowsAbove(
    uint32_t floor, std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(durable_mutex_);
  durable_cv_.wait_for(lock, timeout, [&] {
    return durable_windows_.load(std::memory_order_acquire) > floor;
  });
  return durable_windows_.load(std::memory_order_acquire);
}

void KbBuilder::RegisterMetrics() {
  obs::MetricsRegistry* registry = options_.metrics;
  if (registry == nullptr) return;
  metrics_.build_itemset_seconds =
      registry->GetGauge("tara.build.itemset_seconds");
  metrics_.build_rule_seconds = registry->GetGauge("tara.build.rule_seconds");
  metrics_.build_archive_seconds =
      registry->GetGauge("tara.build.archive_seconds");
  metrics_.build_index_seconds =
      registry->GetGauge("tara.build.index_seconds");
  metrics_.build_windows = registry->GetGauge("tara.build.windows");
  metrics_.build_rules = registry->GetGauge("tara.build.rules");
  metrics_.build_regions = registry->GetGauge("tara.build.regions");
  metrics_.archive_payload_bytes =
      registry->GetGauge("tara.archive.payload_bytes");
  metrics_.archive_entries = registry->GetGauge("tara.archive.entries");
  metrics_.index_bytes = registry->GetGauge("tara.index.bytes");
  metrics_.kb_generation = registry->GetGauge("tara.kb.generation");
  metrics_.kb_swaps = registry->GetCounter("tara.kb.swaps");
}

void KbBuilder::UpdateBuildMetrics() {
  if (options_.metrics == nullptr) return;
  double itemset = 0, rule = 0, archive = 0, index = 0;
  double regions = 0;
  for (const WindowBuildStats& s : stats_) {
    itemset += s.itemset_seconds;
    rule += s.rule_seconds;
    archive += s.archive_seconds;
    index += s.index_seconds;
    regions += static_cast<double>(s.region_count);
  }
  metrics_.build_itemset_seconds->Set(itemset);
  metrics_.build_rule_seconds->Set(rule);
  metrics_.build_archive_seconds->Set(archive);
  metrics_.build_index_seconds->Set(index);
  metrics_.build_windows->Set(static_cast<double>(segments_.size()));
  metrics_.build_rules->Set(static_cast<double>(catalog_->size()));
  metrics_.build_regions->Set(regions);
  metrics_.archive_payload_bytes->Set(
      static_cast<double>(archive_.payload_bytes()));
  metrics_.archive_entries->Set(static_cast<double>(archive_.entry_count()));
  metrics_.index_bytes->Set(static_cast<double>(IndexBytes()));
}

const WindowSegment& KbBuilder::segment(WindowId w) const {
  TARA_CHECK_LT(w, segments_.size()) << "bad window id";
  return *segments_[w];
}

size_t KbBuilder::IndexBytes() const {
  size_t bytes = 0;
  for (const auto& segment : segments_) {
    bytes += segment->index.ApproximateBytes();
  }
  return bytes;
}

KbBuilder::MinedWindow KbBuilder::MineWindowSlice(
    const TransactionDatabase& db, size_t begin, size_t end,
    ThreadPool* intra_pool) const {
  MinedWindow mined;
  mined.total_transactions = end - begin;

  // (1) Frequent itemset generation at the floor support.
  Stopwatch timer;
  FpGrowthMiner miner;
  FrequentItemsetMiner::Options mine_options;
  mine_options.min_count =
      MinCountForSupport(options_.min_support_floor, mined.total_transactions);
  mine_options.max_size = options_.max_itemset_size;
  mined.floor_count = mine_options.min_count;
  const std::vector<FrequentItemset> frequent =
      miner.Mine(db, begin, end, mine_options);
  mined.itemset_seconds = timer.ElapsedSeconds();
  mined.itemset_count = frequent.size();

  // (2) Rule derivation at the floor confidence.
  timer.Restart();
  mined.rules =
      GenerateRules(frequent, options_.min_confidence_floor, intra_pool);
  mined.rule_seconds = timer.ElapsedSeconds();
  return mined;
}

std::vector<WindowIndex::Entry> KbBuilder::InternAndArchive(
    WindowId window, const std::vector<MinedRule>& rules) {
  std::vector<WindowIndex::Entry> entries;
  entries.reserve(rules.size());
  for (const MinedRule& r : rules) {
    const RuleId id = catalog_->Intern(Rule{r.antecedent, r.consequent});
    archive_.Add(id, window, r.rule_count, r.antecedent_count);
    tree_builder_.AddEntry(id, r.rule_count, r.antecedent_count);
    entries.push_back(
        WindowIndex::Entry{id, r.rule_count, r.antecedent_count});
  }
  return entries;
}

WindowId KbBuilder::CommitAndPublish(MinedWindow mined) {
  std::lock_guard<std::mutex> lock(commit_mutex_);
  const WindowId window = static_cast<WindowId>(segments_.size());
  auto segment = std::make_shared<WindowSegment>();
  segment->total_transactions = mined.total_transactions;
  segment->floor_count = mined.floor_count;
  WindowBuildStats& stats = segment->stats;
  stats.window = window;
  stats.itemset_seconds = mined.itemset_seconds;
  stats.rule_seconds = mined.rule_seconds;
  stats.itemset_count = mined.itemset_count;
  stats.rule_count = mined.rules.size();

  // (3) Archive append + catalog interning (the serialized commit stage).
  Stopwatch timer;
  archive_.RegisterWindow(window, mined.total_transactions, mined.floor_count,
                          options_.min_confidence_floor);
  tree_builder_.BeginWindow(
      window, mined.total_transactions,
      UnarchivedCountSlack(mined.floor_count, options_.min_confidence_floor,
                           mined.total_transactions));
  segment->entries = InternAndArchive(window, mined.rules);
  segment->rule_watermark = static_cast<RuleId>(catalog_->size());
  stats.archive_seconds = timer.ElapsedSeconds();

  // (4) EPS slice (stable region index) build.
  timer.Restart();
  segment->index.Build(segment->entries, mined.total_transactions,
                       options_.build_content_index, *catalog_, pool_.get());
  stats.index_seconds = timer.ElapsedSeconds();
  stats.location_count = segment->index.location_count();
  stats.region_count = segment->index.region_count();

  PublishLocked(std::move(segment));
  LogWindowsLocked(window);
  MarkDurableLocked();
  return window;
}

void KbBuilder::PublishLocked(std::shared_ptr<const WindowSegment> segment) {
  stats_.push_back(segment->stats);
  segments_.push_back(std::move(segment));
  PublishSnapshotLocked();
}

void KbBuilder::PublishSnapshotLocked() {
  auto snapshot =
      std::shared_ptr<KnowledgeBaseSnapshot>(new KnowledgeBaseSnapshot());
  snapshot->catalog_ = catalog_;
  snapshot->rule_count_ = catalog_->size();
  // Readers must never observe the builder's in-place archive appends, so
  // each generation carries its own immutable copy of the (compressed)
  // delta streams.
  snapshot->archive_ = std::make_shared<const TarArchive>(archive_);
  snapshot->rollup_tree_ = tree_builder_.Snapshot();
  snapshot->segments_ = segments_;
  snapshot->options_ = options_;
  const bool initial = current_.load(std::memory_order_relaxed) == nullptr;
  snapshot->generation_ = initial ? 0 : ++generation_;
  current_.store(std::move(snapshot), std::memory_order_release);
  UpdateBuildMetrics();
  if (options_.metrics != nullptr) {
    metrics_.kb_generation->Set(static_cast<double>(generation_));
    if (!initial) metrics_.kb_swaps->Increment();
  }
}

WindowId KbBuilder::AppendWindow(const TransactionDatabase& db, size_t begin,
                                 size_t end) {
  return CommitAndPublish(MineWindowSlice(db, begin, end, pool_.get()));
}

WindowId KbBuilder::AppendPrecomputedWindow(
    uint64_t total_transactions, const std::vector<PrecomputedRule>& rules) {
  MinedWindow mined;
  mined.total_transactions = total_transactions;
  mined.floor_count =
      MinCountForSupport(options_.min_support_floor, total_transactions);
  mined.rules.reserve(rules.size());
  for (const PrecomputedRule& r : rules) {
    MinedRule rule;
    rule.antecedent = r.rule.antecedent;
    rule.consequent = r.rule.consequent;
    rule.rule_count = r.rule_count;
    rule.antecedent_count = r.antecedent_count;
    mined.rules.push_back(std::move(rule));
  }
  return CommitAndPublish(std::move(mined));
}

void KbBuilder::BuildAll(const EvolvingDatabase& data) {
  const uint32_t n = data.window_count();
  ThreadPool* pool = pool_.get();
  if (pool == nullptr || n <= 1) {
    for (WindowId w = 0; w < n; ++w) {
      const WindowInfo& info = data.window(w);
      AppendWindow(data.database(), info.begin, info.end);
    }
    return;
  }

  // Parallel pipeline. Windows are independent by construction (the iPARAS
  // increment never revisits prior windows), so:
  //   stage 1 (fan-out):  mine itemsets + derive rules per window;
  //   stage 2 (serial):   intern rules + append archive counts, strictly
  //                       in window order — RuleIds and the archive byte
  //                       stream come out identical to a sequential build;
  //   stage 3 (fan-out):  build each committed window's EPS slice.
  // The pending segments stay private to this call until every index
  // build has joined; a single publication then makes all of them visible
  // to readers atomically. In-flight queries keep answering from the
  // generation they pinned throughout.
  std::lock_guard<std::mutex> lock(commit_mutex_);
  const TransactionDatabase& db = data.database();
  const WindowId base = static_cast<WindowId>(segments_.size());
  std::vector<std::shared_ptr<WindowSegment>> pending(n);

  // Keep only a few windows of mined-but-uncommitted rules in memory.
  const uint32_t max_ahead = pool->size() + 2;
  std::deque<std::future<MinedWindow>> in_flight;
  WindowId next_to_mine = 0;
  const auto submit_next_mine = [&] {
    if (next_to_mine >= n) return;
    const WindowInfo info = data.window(next_to_mine);
    in_flight.push_back(pool->Submit([this, &db, info] {
      // Intra-window loops stay sequential here: the window fan-out
      // already keeps every worker busy.
      return MineWindowSlice(db, info.begin, info.end, nullptr);
    }));
    ++next_to_mine;
  };
  while (next_to_mine < n && next_to_mine < max_ahead) submit_next_mine();

  std::vector<std::future<void>> eps_builds;
  eps_builds.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    MinedWindow mined = in_flight.front().get();
    in_flight.pop_front();
    submit_next_mine();

    const WindowId window = base + i;
    auto segment = std::make_shared<WindowSegment>();
    pending[i] = segment;
    segment->total_transactions = mined.total_transactions;
    segment->floor_count = mined.floor_count;
    WindowBuildStats& stats = segment->stats;
    stats.window = window;
    stats.itemset_seconds = mined.itemset_seconds;
    stats.rule_seconds = mined.rule_seconds;
    stats.itemset_count = mined.itemset_count;
    stats.rule_count = mined.rules.size();

    Stopwatch timer;
    archive_.RegisterWindow(window, mined.total_transactions,
                            mined.floor_count,
                            options_.min_confidence_floor);
    tree_builder_.BeginWindow(
        window, mined.total_transactions,
        UnarchivedCountSlack(mined.floor_count,
                             options_.min_confidence_floor,
                             mined.total_transactions));
    segment->entries = InternAndArchive(window, mined.rules);
    segment->rule_watermark = static_cast<RuleId>(catalog_->size());
    stats.archive_seconds = timer.ElapsedSeconds();

    // Stage 3 reads the catalog (content index only) while later windows
    // intern — safe: RuleCatalog readers lock shared against the writer.
    // Each task writes only its own (still private) segment.
    WindowSegment* slot = segment.get();
    eps_builds.push_back(pool->Submit([this, slot] {
      Stopwatch index_timer;
      slot->index.Build(slot->entries, slot->total_transactions,
                        options_.build_content_index, *catalog_, nullptr);
      slot->stats.index_seconds = index_timer.ElapsedSeconds();
      slot->stats.location_count = slot->index.location_count();
      slot->stats.region_count = slot->index.region_count();
    }));
  }
  for (std::future<void>& f : eps_builds) f.get();

  for (auto& segment : pending) {
    stats_.push_back(segment->stats);
    segments_.push_back(std::move(segment));
  }
  PublishSnapshotLocked();
  LogWindowsLocked(base);
  MarkDurableLocked();
}

}  // namespace tara
