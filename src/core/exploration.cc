#include "core/exploration.h"

#include <algorithm>

namespace tara {
namespace {

double Emergence(const Trajectory& trajectory) {
  if (trajectory.size() < 2) return 0.0;
  const size_t half = trajectory.size() / 2;
  double early = 0, late = 0;
  for (size_t i = 0; i < trajectory.size(); ++i) {
    const double support =
        trajectory[i].present ? trajectory[i].support : 0.0;
    if (i < half) {
      early += support;
    } else {
      late += support;
    }
  }
  early /= half;
  late /= trajectory.size() - half;
  return late - early;
}

std::vector<RuleInsight> TakeTop(std::vector<RuleInsight> insights,
                                 size_t k) {
  if (insights.size() > k) insights.resize(k);
  return insights;
}

}  // namespace

std::vector<RuleInsight> ExplorationService::ProfileRules(
    const WindowSet& horizon, const ParameterSetting& setting) const {
  const std::vector<RuleId> rules =
      engine_->MineWindows(horizon, setting, MatchMode::kSingle);
  std::vector<RuleInsight> insights;
  insights.reserve(rules.size());
  const uint32_t max_period =
      std::max<uint32_t>(2, static_cast<uint32_t>(horizon.size() / 2));
  for (RuleId rule : rules) {
    RuleInsight insight;
    insight.rule = rule;
    const Trajectory trajectory =
        BuildTrajectory(engine_->archive(), rule, horizon.ids());
    insight.measures = ComputeMeasures(trajectory);
    insight.periodicity = DetectPeriodicity(trajectory, max_period);
    insight.emergence = Emergence(trajectory);
    insights.push_back(std::move(insight));
  }
  return insights;
}

std::vector<RuleInsight> ExplorationService::TopStable(
    const WindowSet& horizon, const ParameterSetting& setting,
    size_t k) const {
  std::vector<RuleInsight> insights = ProfileRules(horizon, setting);
  std::sort(insights.begin(), insights.end(),
            [](const RuleInsight& a, const RuleInsight& b) {
              if (a.measures.coverage != b.measures.coverage) {
                return a.measures.coverage > b.measures.coverage;
              }
              if (a.measures.stability != b.measures.stability) {
                return a.measures.stability > b.measures.stability;
              }
              return a.rule < b.rule;
            });
  return TakeTop(std::move(insights), k);
}

std::vector<RuleInsight> ExplorationService::TopEmerging(
    const WindowSet& horizon, const ParameterSetting& setting,
    size_t k) const {
  std::vector<RuleInsight> insights = ProfileRules(horizon, setting);
  std::sort(insights.begin(), insights.end(),
            [](const RuleInsight& a, const RuleInsight& b) {
              if (a.emergence != b.emergence) {
                return a.emergence > b.emergence;
              }
              return a.rule < b.rule;
            });
  return TakeTop(std::move(insights), k);
}

std::vector<RuleInsight> ExplorationService::TopFading(
    const WindowSet& horizon, const ParameterSetting& setting,
    size_t k) const {
  std::vector<RuleInsight> insights = ProfileRules(horizon, setting);
  std::sort(insights.begin(), insights.end(),
            [](const RuleInsight& a, const RuleInsight& b) {
              if (a.emergence != b.emergence) {
                return a.emergence < b.emergence;
              }
              return a.rule < b.rule;
            });
  return TakeTop(std::move(insights), k);
}

std::vector<RuleInsight> ExplorationService::TopPeriodic(
    const WindowSet& horizon, const ParameterSetting& setting,
    size_t k, uint32_t max_period) const {
  std::vector<RuleInsight> insights = ProfileRules(horizon, setting);
  for (RuleInsight& insight : insights) {
    const Trajectory trajectory =
        BuildTrajectory(engine_->archive(), insight.rule, horizon.ids());
    insight.periodicity = DetectPeriodicity(trajectory, max_period);
  }
  std::sort(insights.begin(), insights.end(),
            [](const RuleInsight& a, const RuleInsight& b) {
              if (a.periodicity.strength != b.periodicity.strength) {
                return a.periodicity.strength > b.periodicity.strength;
              }
              if (a.periodicity.period != b.periodicity.period) {
                return a.periodicity.period < b.periodicity.period;
              }
              return a.rule < b.rule;
            });
  while (!insights.empty() && insights.back().periodicity.period == 0) {
    insights.pop_back();
  }
  return TakeTop(std::move(insights), k);
}

}  // namespace tara
