#include "core/exploration.h"

#include <algorithm>

namespace tara {
namespace {

double Emergence(std::span<const TrajectoryPoint> trajectory) {
  if (trajectory.size() < 2) return 0.0;
  const size_t half = trajectory.size() / 2;
  double early = 0, late = 0;
  for (size_t i = 0; i < trajectory.size(); ++i) {
    const double support =
        trajectory[i].present ? trajectory[i].support : 0.0;
    if (i < half) {
      early += support;
    } else {
      late += support;
    }
  }
  early /= half;
  late /= trajectory.size() - half;
  return late - early;
}

std::vector<RuleInsight> TakeTop(std::vector<RuleInsight> insights,
                                 size_t k) {
  if (insights.size() > k) insights.resize(k);
  return insights;
}

}  // namespace

Expected<std::vector<RuleInsight>, QueryError>
ExplorationService::ProfileRules(const WindowSet& horizon,
                                 const ParameterSetting& setting) const {
  // Pin one generation for the whole profile so the mined ruleset and the
  // trajectories agree even while windows are being appended.
  const std::shared_ptr<const KnowledgeBaseSnapshot> snapshot =
      engine_->Snapshot();
  Expected<std::vector<RuleId>, QueryError> mined =
      snapshot->MineWindows(horizon, setting, MatchMode::kSingle);
  if (!mined) return mined.error();
  const std::vector<RuleId>& rules = *mined;
  std::vector<RuleInsight> insights;
  insights.reserve(rules.size());
  const uint32_t max_period =
      std::max<uint32_t>(2, static_cast<uint32_t>(horizon.size() / 2));
  // One arena for the whole profile: each rule's decode + trajectory is
  // scratch that dies at the top of the next iteration.
  DecodeArena arena;
  for (RuleId rule : rules) {
    arena.Reset();
    RuleInsight insight;
    insight.rule = rule;
    const std::span<const TrajectoryPoint> trajectory =
        BuildTrajectoryInto(snapshot->archive(), rule, horizon.ids(), arena);
    insight.measures = ComputeMeasures(trajectory);
    insight.periodicity = DetectPeriodicity(trajectory, max_period);
    insight.emergence = Emergence(trajectory);
    insights.push_back(std::move(insight));
  }
  return insights;
}

Expected<std::vector<RuleInsight>, QueryError> ExplorationService::TopStable(
    const WindowSet& horizon, const ParameterSetting& setting,
    size_t k) const {
  Expected<std::vector<RuleInsight>, QueryError> profiled =
      ProfileRules(horizon, setting);
  if (!profiled) return profiled.error();
  std::vector<RuleInsight> insights = std::move(profiled).value();
  std::sort(insights.begin(), insights.end(),
            [](const RuleInsight& a, const RuleInsight& b) {
              if (a.measures.coverage != b.measures.coverage) {
                return a.measures.coverage > b.measures.coverage;
              }
              if (a.measures.stability != b.measures.stability) {
                return a.measures.stability > b.measures.stability;
              }
              return a.rule < b.rule;
            });
  return TakeTop(std::move(insights), k);
}

Expected<std::vector<RuleInsight>, QueryError>
ExplorationService::TopEmerging(const WindowSet& horizon,
                                const ParameterSetting& setting,
                                size_t k) const {
  Expected<std::vector<RuleInsight>, QueryError> profiled =
      ProfileRules(horizon, setting);
  if (!profiled) return profiled.error();
  std::vector<RuleInsight> insights = std::move(profiled).value();
  std::sort(insights.begin(), insights.end(),
            [](const RuleInsight& a, const RuleInsight& b) {
              if (a.emergence != b.emergence) {
                return a.emergence > b.emergence;
              }
              return a.rule < b.rule;
            });
  return TakeTop(std::move(insights), k);
}

Expected<std::vector<RuleInsight>, QueryError> ExplorationService::TopFading(
    const WindowSet& horizon, const ParameterSetting& setting,
    size_t k) const {
  Expected<std::vector<RuleInsight>, QueryError> profiled =
      ProfileRules(horizon, setting);
  if (!profiled) return profiled.error();
  std::vector<RuleInsight> insights = std::move(profiled).value();
  std::sort(insights.begin(), insights.end(),
            [](const RuleInsight& a, const RuleInsight& b) {
              if (a.emergence != b.emergence) {
                return a.emergence < b.emergence;
              }
              return a.rule < b.rule;
            });
  return TakeTop(std::move(insights), k);
}

Expected<std::vector<RuleInsight>, QueryError>
ExplorationService::TopPeriodic(const WindowSet& horizon,
                                const ParameterSetting& setting, size_t k,
                                uint32_t max_period) const {
  Expected<std::vector<RuleInsight>, QueryError> profiled =
      ProfileRules(horizon, setting);
  if (!profiled) return profiled.error();
  std::vector<RuleInsight> insights = std::move(profiled).value();
  const std::shared_ptr<const KnowledgeBaseSnapshot> snapshot =
      engine_->Snapshot();
  DecodeArena arena;
  for (RuleInsight& insight : insights) {
    arena.Reset();
    const std::span<const TrajectoryPoint> trajectory = BuildTrajectoryInto(
        snapshot->archive(), insight.rule, horizon.ids(), arena);
    insight.periodicity = DetectPeriodicity(trajectory, max_period);
  }
  std::sort(insights.begin(), insights.end(),
            [](const RuleInsight& a, const RuleInsight& b) {
              if (a.periodicity.strength != b.periodicity.strength) {
                return a.periodicity.strength > b.periodicity.strength;
              }
              if (a.periodicity.period != b.periodicity.period) {
                return a.periodicity.period < b.periodicity.period;
              }
              return a.rule < b.rule;
            });
  while (!insights.empty() && insights.back().periodicity.period == 0) {
    insights.pop_back();
  }
  return TakeTop(std::move(insights), k);
}

}  // namespace tara
