#ifndef TARA_CORE_KB_STORAGE_H_
#define TARA_CORE_KB_STORAGE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.h"
#include "core/load_error.h"
#include "core/tara_engine.h"
#include "core/wal.h"

namespace tara {

/// Segmented binary persistence of a TARA knowledge base (format TARAKB2).
///
/// The serialized knowledge base is a **manifest** plus one **window
/// segment** per committed window:
///
/// - The manifest holds the construction options (the serialized subset:
///   floors, itemset cap, content-index flag) and, per window, its
///   transaction count, rule-count watermark, entry count, and the byte
///   size + checksum of its segment.
/// - A window's segment holds the contents of the rules that window
///   interned first (ids [previous watermark, watermark) — contiguous by
///   the commit-order invariant) and the window's (rule, counts) entries.
///
/// Segments are immutable once written, mirroring the in-memory
/// WindowSegment sharing: appending a window to a knowledge-base
/// directory writes ONE new segment file plus the manifest — O(new
/// window), not O(knowledge base). The single-stream format
/// (serialization.h) is the same manifest and segments concatenated.
///
/// Integers are LEB128 varints, doubles and checksums are 8-byte
/// little-endian; itemsets are delta-encoded. Loaders treat all input as
/// untrusted and return LoadError instead of aborting.

/// Serializes one pinned generation: manifest followed by every window
/// segment. Deterministic — byte-identical for the same window sequence
/// regardless of build parallelism or whether windows arrived via
/// BuildAll or live appends.
std::string EncodeKnowledgeBase(const KnowledgeBaseSnapshot& snapshot);

/// Parses bytes produced by EncodeKnowledgeBase (or the stream helpers in
/// serialization.h). `metrics` becomes the loaded engine's
/// Options::metrics — runtime knobs are not serialized state.
Expected<TaraEngine, LoadError> DecodeKnowledgeBase(
    std::string_view bytes, obs::MetricsRegistry* metrics = nullptr);

/// --- Directory-backed persistence ----------------------------------------
/// Layout: `<dir>/manifest.tarakb` plus `<dir>/window-NNNNNN.seg`, one per
/// window. Every file is written crash-safely (temp file → fsync → rename
/// → parent-directory fsync) and segments land before the manifest that
/// names them, so a crash at any instant leaves either the previous
/// manifest or the new one fully in place — never a truncated or
/// zero-length file. Leftover `.tmp` files and unreferenced `.seg` files
/// from a crashed save are ignored by the loader and overwritten by the
/// next save.

/// Writes the full knowledge base of `snapshot` into `dir` (created if
/// missing). Returns nullopt on success.
std::optional<LoadError> SaveKnowledgeBaseDir(
    const KnowledgeBaseSnapshot& snapshot, const std::string& dir);

/// Incremental save: verifies the manifest already in `dir` describes a
/// prefix of `snapshot`'s windows (same options; per-window transaction
/// counts, watermarks, and entry counts match), then writes only the NEW
/// windows' segment files and the updated manifest. Existing segment
/// files are never rewritten. Falls back to a full SaveKnowledgeBaseDir
/// when `dir` has no manifest yet.
std::optional<LoadError> AppendKnowledgeBaseDir(
    const KnowledgeBaseSnapshot& snapshot, const std::string& dir);

/// Loads a knowledge base saved by Save/AppendKnowledgeBaseDir,
/// verifying every segment's size and checksum against the manifest.
Expected<TaraEngine, LoadError> LoadKnowledgeBaseDir(
    const std::string& dir, obs::MetricsRegistry* metrics = nullptr);

/// True if `dir` holds a knowledge-base manifest.
bool KnowledgeBaseDirExists(const std::string& dir);

/// --- Window-segment codec -------------------------------------------------
/// The per-window TARAKB2 blob, exposed so the write-ahead log (wal.h)
/// carries exactly the bytes a `window-NNNNNN.seg` file would hold.

/// Encodes window `window` of `snapshot` as its segment blob.
std::vector<uint8_t> EncodeWindowSegment(const KnowledgeBaseSnapshot& snapshot,
                                         WindowId window);

/// A decoded segment blob: the window it belongs to, where its rule ids
/// start, and its entries with rule contents resolved — ready for
/// AppendPrecomputedWindow.
struct DecodedWindowSegment {
  WindowId window = 0;
  RuleId first_rule = 0;
  std::vector<PrecomputedRule> entries;
};

/// Parses a segment blob. Entries referencing rules older than
/// `first_rule` resolve their contents through `catalog` (which must
/// hold at least `first_rule` rules); rules the window interned first
/// come from the blob itself. Untrusted-input discipline: any
/// inconsistency is a LoadError, never an abort.
Expected<DecodedWindowSegment, LoadError> DecodeWindowSegment(
    const uint8_t* data, size_t size, const RuleCatalog& catalog);

/// Reads just the window id from a segment blob's header, so WAL replay
/// can order records before committing to a full (catalog-dependent)
/// decode.
Expected<WindowId, LoadError> PeekWindowSegmentWindow(const uint8_t* data,
                                                      size_t size);

/// --- Crash recovery -------------------------------------------------------

/// Rebuilds the engine state as of the last durable instant: loads the
/// knowledge base in `kb_dir` (if its manifest exists — otherwise the
/// engine is constructed from the WAL header's options), replays the
/// write-ahead log tail in `wal_dir` on top, and leaves the log attached
/// so ingestion can continue. `stats`, when non-null, receives the
/// replay outcome. Checkpoint the recovered engine with
/// AppendKnowledgeBaseDir + TaraEngine::TruncateWal to retire the log.
Expected<TaraEngine, LoadError> RecoverKnowledgeBase(
    const std::string& kb_dir, const std::string& wal_dir,
    obs::MetricsRegistry* metrics = nullptr, WalReplayStats* stats = nullptr);

}  // namespace tara

#endif  // TARA_CORE_KB_STORAGE_H_
