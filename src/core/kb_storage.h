#ifndef TARA_CORE_KB_STORAGE_H_
#define TARA_CORE_KB_STORAGE_H_

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.h"
#include "core/load_error.h"
#include "core/tara_engine.h"
#include "core/wal.h"

namespace tara {

/// Segmented binary persistence of a TARA knowledge base (format TARAKB2).
///
/// The serialized knowledge base is a **manifest** plus one **window
/// segment** per committed window:
///
/// - The manifest holds the construction options (the serialized subset:
///   floors, itemset cap, content-index flag) and, per window, its
///   transaction count, rule-count watermark, entry count, and the byte
///   size + checksum of its segment.
/// - A window's segment holds the contents of the rules that window
///   interned first (ids [previous watermark, watermark) — contiguous by
///   the commit-order invariant) and the window's (rule, counts) entries.
///
/// Segments are immutable once written, mirroring the in-memory
/// WindowSegment sharing: appending a window to a knowledge-base
/// directory writes ONE new segment file plus the manifest — O(new
/// window), not O(knowledge base). The single-stream format
/// (serialization.h) is the same manifest and segments concatenated.
/// The block-partitioned TARAKB3 form (kb_blocks.h) stores the same
/// segment blobs packed into balanced, memory-mappable block files.
///
/// Integers are LEB128 varints, doubles and checksums are 8-byte
/// little-endian; itemsets are delta-encoded. Loaders treat all input as
/// untrusted and return LoadError instead of aborting.

/// Serializes one pinned generation: manifest followed by every window
/// segment. Deterministic — byte-identical for the same window sequence
/// regardless of build parallelism or whether windows arrived via
/// BuildAll or live appends.
std::string EncodeKnowledgeBase(const KnowledgeBaseSnapshot& snapshot);

/// Parses bytes produced by EncodeKnowledgeBase (or the stream helpers in
/// serialization.h). `metrics` becomes the loaded engine's
/// Options::metrics — runtime knobs are not serialized state.
Expected<TaraEngine, LoadError> DecodeKnowledgeBase(
    std::string_view bytes, obs::MetricsRegistry* metrics = nullptr);

/// --- Directory-backed persistence ----------------------------------------
/// Layout: `<dir>/manifest.tarakb` plus `<dir>/window-NNNNNN.seg`, one per
/// window. Every file is written crash-safely (temp file → fsync → rename
/// → parent-directory fsync) and segments land before the manifest that
/// names them, so a crash at any instant leaves either the previous
/// manifest or the new one fully in place — never a truncated or
/// zero-length file. Leftover `.tmp` files and unreferenced `.seg` files
/// from a crashed save are ignored by the loader and overwritten by the
/// next save.

/// Writes the full knowledge base of `snapshot` into `dir` (created if
/// missing). Returns nullopt on success.
std::optional<LoadError> SaveKnowledgeBaseDir(
    const KnowledgeBaseSnapshot& snapshot, const std::string& dir);

/// Incremental save: verifies the manifest already in `dir` describes a
/// prefix of `snapshot`'s windows (same options; per-window transaction
/// counts, watermarks, and entry counts match), then writes only the NEW
/// windows' segment files and the updated manifest. Existing segment
/// files are never rewritten. Falls back to a full SaveKnowledgeBaseDir
/// when `dir` has no manifest yet.
std::optional<LoadError> AppendKnowledgeBaseDir(
    const KnowledgeBaseSnapshot& snapshot, const std::string& dir);

/// DEPRECATED: use OpenKnowledgeBase(OpenOptions) in core/kb_open.h,
/// which subsumes this and the TARAKB3 block form behind one entrypoint.
/// Kept for one release as a thin shim (emits a one-time stderr note).
///
/// Loads a knowledge base saved by Save/AppendKnowledgeBaseDir,
/// verifying every segment's size and checksum against the manifest.
Expected<TaraEngine, LoadError> LoadKnowledgeBaseDir(
    const std::string& dir, obs::MetricsRegistry* metrics = nullptr);

/// True if `dir` holds a TARAKB2 knowledge-base manifest.
bool KnowledgeBaseDirExists(const std::string& dir);

/// The TARAKB2 file names, exposed for the db tooling suite
/// ("manifest.tarakb" and "window-NNNNNN.seg").
std::string KnowledgeBaseManifestFileName();
std::string KnowledgeBaseSegmentFileName(WindowId window);

/// --- Manifest introspection ----------------------------------------------

/// One manifest row describing a window and its segment blob.
struct KbManifestRow {
  uint64_t total_transactions = 0;
  uint64_t rule_watermark = 0;
  uint64_t entry_count = 0;
  uint64_t segment_bytes = 0;
  uint64_t segment_hash = 0;
};

/// The decoded TARAKB2 manifest: the serialized construction options plus
/// one row per window.
struct KbManifest {
  double min_support_floor = 0;
  double min_confidence_floor = 0;
  uint64_t max_itemset_size = 0;
  bool build_content_index = false;
  std::vector<KbManifestRow> rows;
};

/// Reads and validates `<dir>/manifest.tarakb` without touching any
/// segment file — the metadata backbone of `db stats` and of the KB2 →
/// KB3 byte-level repartition in kb_blocks.h.
Expected<KbManifest, LoadError> ReadKnowledgeBaseDirManifest(
    const std::string& dir);

/// --- Window-segment codec -------------------------------------------------
/// The per-window TARAKB2 blob, exposed so the write-ahead log (wal.h)
/// carries exactly the bytes a `window-NNNNNN.seg` file would hold, and so
/// TARAKB3 block files (kb_blocks.h) can pack the identical blobs.

/// Encodes window `window` of `snapshot` as its segment blob.
std::vector<uint8_t> EncodeWindowSegment(const KnowledgeBaseSnapshot& snapshot,
                                         WindowId window);

/// A decoded segment blob: the window it belongs to, where its rule ids
/// start, and its entries with rule contents resolved — ready for
/// AppendPrecomputedWindow.
struct DecodedWindowSegment {
  WindowId window = 0;
  RuleId first_rule = 0;
  std::vector<PrecomputedRule> entries;
};

/// Parses a segment blob. Entries referencing rules older than
/// `first_rule` resolve their contents through `catalog` (which must
/// hold at least `first_rule` rules); rules the window interned first
/// come from the blob itself. Untrusted-input discipline: any
/// inconsistency is a LoadError, never an abort.
Expected<DecodedWindowSegment, LoadError> DecodeWindowSegment(
    const uint8_t* data, size_t size, const RuleCatalog& catalog);

/// A segment blob parsed WITHOUT a catalog: entries keep their raw rule
/// ids and count deltas. This is stage 1 of the two-phase decode that
/// lets block-parallel loaders parse many segments concurrently — only
/// the catalog-dependent resolution (stage 2, ResolveParsedSegment) must
/// run in window order.
struct ParsedWindowSegment {
  WindowId window = 0;
  RuleId first_rule = 0;
  /// Contents of the rules this window interned first
  /// (ids [first_rule, first_rule + new_rules.size())).
  std::vector<Rule> new_rules;
  struct RawEntry {
    uint64_t rule = 0;
    uint64_t rule_count = 0;
    uint64_t antecedent_delta = 0;
  };
  std::vector<RawEntry> entries;
};

/// Stage 1: catalog-free structural parse of a segment blob. Safe to run
/// on many segments concurrently.
Expected<ParsedWindowSegment, LoadError> ParseWindowSegment(
    const uint8_t* data, size_t size);

/// Stage 2: resolves a parsed segment's entries against `catalog`, which
/// must hold exactly the rules of all prior windows (i.e. at least
/// `parsed.first_rule` of them). Must be called in window order.
Expected<std::vector<PrecomputedRule>, LoadError> ResolveParsedSegment(
    const ParsedWindowSegment& parsed, const RuleCatalog& catalog);

/// Reads just the window id from a segment blob's header, so WAL replay
/// can order records before committing to a full (catalog-dependent)
/// decode.
Expected<WindowId, LoadError> PeekWindowSegmentWindow(const uint8_t* data,
                                                      size_t size);

/// --- Crash recovery -------------------------------------------------------

/// DEPRECATED: use OpenKnowledgeBase(OpenOptions) in core/kb_open.h with
/// OpenOptions::wal_dir set — recover-on-open is part of the unified
/// entrypoint. Kept for one release as a thin shim (emits a one-time
/// stderr note).
///
/// Rebuilds the engine state as of the last durable instant: loads the
/// knowledge base in `kb_dir` (if its manifest exists — otherwise the
/// engine is constructed from the WAL header's options), replays the
/// write-ahead log tail in `wal_dir` on top, and leaves the log attached
/// so ingestion can continue. `stats`, when non-null, receives the
/// replay outcome. Checkpoint the recovered engine with
/// CheckpointKnowledgeBaseDir (kb_blocks.h) + TaraEngine::TruncateWal to
/// retire the log.
Expected<TaraEngine, LoadError> RecoverKnowledgeBase(
    const std::string& kb_dir, const std::string& wal_dir,
    obs::MetricsRegistry* metrics = nullptr, WalReplayStats* stats = nullptr);

/// --- Implementation plumbing (internal) -----------------------------------
/// Shared by kb_open.cc / kb_blocks.cc. Not part of the public API
/// surface; subject to change without a deprecation cycle.
namespace internal {

/// The eager TARAKB2 directory loader behind the LoadKnowledgeBaseDir
/// shim and OpenKnowledgeBase's KB2 path (no deprecation note).
/// `parallelism` becomes the loaded engine's Options::parallelism.
Expected<TaraEngine, LoadError> LoadKnowledgeBaseDirImpl(
    const std::string& dir, obs::MetricsRegistry* metrics,
    uint32_t parallelism);

/// The TARAKB2 checkpoint+replay recovery behind the RecoverKnowledgeBase
/// shim and OpenKnowledgeBase's wal_dir path (no deprecation note).
Expected<TaraEngine, LoadError> RecoverKnowledgeBaseImpl(
    const std::string& kb_dir, const std::string& wal_dir,
    obs::MetricsRegistry* metrics, WalReplayStats* stats,
    uint32_t parallelism);

/// Crash-safe file replacement: bytes land in `<path>.tmp`, are fsync'd,
/// renamed over `path`, then the parent directory entry is fsync'd. A
/// crash at any step leaves either the old file intact or the new one
/// fully in place. CrashPoint crossings ("storage.tmp_written",
/// "storage.tmp_synced", "storage.renamed", "storage.dir_synced")
/// separate the durability steps for the crash-matrix tests.
std::optional<LoadError> AtomicWriteFileBytes(
    const std::filesystem::path& path, const std::vector<uint8_t>& bytes);

/// Slurps a file, typed kIoError on failure.
std::optional<LoadError> ReadFileBytes(const std::filesystem::path& path,
                                       std::vector<uint8_t>* out);

/// Crash-safely replaces `<dir>/manifest.tarakb` with the encoding of
/// `manifest`. Used by the trim tooling; segment files must already
/// match what the rows claim.
std::optional<LoadError> WriteKnowledgeBaseDirManifest(
    const std::string& dir, const KbManifest& manifest);

/// One-time (per call site, per process) deprecation note on stderr.
void WarnDeprecatedOnce(bool* warned, const char* legacy,
                        const char* replacement);

}  // namespace internal

}  // namespace tara

#endif  // TARA_CORE_KB_STORAGE_H_
