#ifndef TARA_CORE_KB_STORAGE_H_
#define TARA_CORE_KB_STORAGE_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/expected.h"
#include "core/load_error.h"
#include "core/tara_engine.h"

namespace tara {

/// Segmented binary persistence of a TARA knowledge base (format TARAKB2).
///
/// The serialized knowledge base is a **manifest** plus one **window
/// segment** per committed window:
///
/// - The manifest holds the construction options (the serialized subset:
///   floors, itemset cap, content-index flag) and, per window, its
///   transaction count, rule-count watermark, entry count, and the byte
///   size + checksum of its segment.
/// - A window's segment holds the contents of the rules that window
///   interned first (ids [previous watermark, watermark) — contiguous by
///   the commit-order invariant) and the window's (rule, counts) entries.
///
/// Segments are immutable once written, mirroring the in-memory
/// WindowSegment sharing: appending a window to a knowledge-base
/// directory writes ONE new segment file plus the manifest — O(new
/// window), not O(knowledge base). The single-stream format
/// (serialization.h) is the same manifest and segments concatenated.
///
/// Integers are LEB128 varints, doubles and checksums are 8-byte
/// little-endian; itemsets are delta-encoded. Loaders treat all input as
/// untrusted and return LoadError instead of aborting.

/// Serializes one pinned generation: manifest followed by every window
/// segment. Deterministic — byte-identical for the same window sequence
/// regardless of build parallelism or whether windows arrived via
/// BuildAll or live appends.
std::string EncodeKnowledgeBase(const KnowledgeBaseSnapshot& snapshot);

/// Parses bytes produced by EncodeKnowledgeBase (or the stream helpers in
/// serialization.h). `metrics` becomes the loaded engine's
/// Options::metrics — runtime knobs are not serialized state.
Expected<TaraEngine, LoadError> DecodeKnowledgeBase(
    std::string_view bytes, obs::MetricsRegistry* metrics = nullptr);

/// --- Directory-backed persistence ----------------------------------------
/// Layout: `<dir>/manifest.tarakb` plus `<dir>/window-NNNNNN.seg`, one per
/// window. Segment files are written before the manifest, so a crash
/// mid-save leaves the previous manifest consistent (extra .seg files are
/// ignored by the loader).

/// Writes the full knowledge base of `snapshot` into `dir` (created if
/// missing). Returns nullopt on success.
std::optional<LoadError> SaveKnowledgeBaseDir(
    const KnowledgeBaseSnapshot& snapshot, const std::string& dir);

/// Incremental save: verifies the manifest already in `dir` describes a
/// prefix of `snapshot`'s windows (same options; per-window transaction
/// counts, watermarks, and entry counts match), then writes only the NEW
/// windows' segment files and the updated manifest. Existing segment
/// files are never rewritten. Falls back to a full SaveKnowledgeBaseDir
/// when `dir` has no manifest yet.
std::optional<LoadError> AppendKnowledgeBaseDir(
    const KnowledgeBaseSnapshot& snapshot, const std::string& dir);

/// Loads a knowledge base saved by Save/AppendKnowledgeBaseDir,
/// verifying every segment's size and checksum against the manifest.
Expected<TaraEngine, LoadError> LoadKnowledgeBaseDir(
    const std::string& dir, obs::MetricsRegistry* metrics = nullptr);

}  // namespace tara

#endif  // TARA_CORE_KB_STORAGE_H_
