#ifndef TARA_CORE_PERIODICITY_H_
#define TARA_CORE_PERIODICITY_H_

#include <cstdint>

#include "core/trajectory.h"

namespace tara {

/// A detected cyclic presence pattern in a rule's trajectory — the
/// "association that reappears every weekend" insight of Section 2.2.1
/// (cyclic association mining of Özden et al., surfaced here as a
/// trajectory measure).
struct PeriodicityResult {
  /// Detected period in windows (0 = no periodic pattern).
  uint32_t period = 0;
  /// Offset of the first on-phase window in [0, period).
  uint32_t phase = 0;
  /// In [0, 1]: on-phase presence rate times off-phase absence rate. 1
  /// means the rule appears in exactly the windows ≡ phase (mod period).
  double strength = 0.0;
};

/// Scans periods 2..max_period over the presence pattern of `trajectory`
/// and returns the strongest (period, phase). Patterns need at least two
/// on-phase occurrences to count; a rule present in every window is not
/// periodic (strength 0).
PeriodicityResult DetectPeriodicity(std::span<const TrajectoryPoint> trajectory,
                                    uint32_t max_period);

}  // namespace tara

#endif  // TARA_CORE_PERIODICITY_H_
