#ifndef TARA_CORE_TAR_ARCHIVE_H_
#define TARA_CORE_TAR_ARCHIVE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/rule_catalog.h"
#include "txdb/evolving_database.h"

namespace tara {

/// One decoded archive entry: the raw counts of a rule in one window.
/// Support = rule_count / window size; confidence = rule_count /
/// antecedent_count.
struct ArchiveEntry {
  WindowId window = 0;
  uint64_t rule_count = 0;
  uint64_t antecedent_count = 0;
};

/// Interval bounds for measures over a union of windows (the roll-up
/// operation, Section 2.4.1). For windows where the rule was archived the
/// contribution is exact; for windows where it fell below the generation
/// floor its count is only known to lie in [0, floor_count - 1], which
/// widens the interval — this is the paper's roll-up approximation bound
/// made explicit.
struct RollUpBound {
  double support_lo = 0;
  double support_hi = 0;
  double confidence_lo = 0;
  double confidence_hi = 0;
  uint32_t missing_windows = 0;  ///< windows with no archived entry
};

/// The Temporal Association Rule Archive (TAR Archive).
///
/// Per rule, the per-window (rule_count, antecedent_count) series is stored
/// as a delta-encoded varint byte stream: window gaps are varint-encoded
/// and counts are zigzag-delta encoded against the previous entry, so a
/// rule that stays stable across windows costs ~3 bytes per window instead
/// of 20. Entries must be appended in increasing window order (the
/// evolving build provides exactly that); decoding is a linear scan of the
/// rule's private stream.
class TarArchive {
 public:
  TarArchive() = default;

  /// Registers a window's transaction count and generation floors: the
  /// absolute minimum count used when mining it and the minimum confidence
  /// used when deriving rules. Both floors bound how large an *unarchived*
  /// rule's count could be in that window (a rule is absent iff its support
  /// was below floor_count OR its confidence below confidence_floor).
  /// Windows must be registered in order, before entries referencing them
  /// are added.
  void RegisterWindow(WindowId window, uint64_t transaction_count,
                      uint64_t floor_count, double confidence_floor = 0.0);

  /// Appends one (rule, window) observation. `window` must be the most
  /// recently registered window or later than the rule's last entry.
  void Add(RuleId rule, WindowId window, uint64_t rule_count,
           uint64_t antecedent_count);

  /// Decodes the full series of a rule. Rules never added decode to empty.
  std::vector<ArchiveEntry> Decode(RuleId rule) const;

  /// Returns the entry of `rule` in `window`, if archived.
  std::optional<ArchiveEntry> EntryFor(RuleId rule, WindowId window) const;

  /// Exact/interval measures of `rule` over the union of `windows`.
  RollUpBound RollUp(RuleId rule, const std::vector<WindowId>& windows) const;

  /// Number of registered windows.
  uint32_t window_count() const {
    return static_cast<uint32_t>(window_sizes_.size());
  }
  uint64_t window_size(WindowId w) const;
  uint64_t floor_count(WindowId w) const;

  /// Total payload bytes across all rule streams (the paper's Figure 12
  /// "TAR Archive" series).
  size_t payload_bytes() const { return payload_bytes_; }

  /// Total archived (rule, window) entries — multiplied by the raw record
  /// width this gives Figure 12's "uncompressed" series.
  size_t entry_count() const { return entry_count_; }

  /// Number of rules with at least one entry.
  size_t rule_count() const;

 private:
  struct RuleStream {
    std::vector<uint8_t> bytes;
    // Delta bases for appending.
    uint32_t last_window = 0;
    uint64_t last_rule_count = 0;
    uint64_t last_antecedent_count = 0;
    bool empty = true;
  };

  std::vector<RuleStream> streams_;
  std::vector<uint64_t> window_sizes_;
  std::vector<uint64_t> floor_counts_;
  std::vector<double> confidence_floors_;
  size_t payload_bytes_ = 0;
  size_t entry_count_ = 0;
};

}  // namespace tara

#endif  // TARA_CORE_TAR_ARCHIVE_H_
