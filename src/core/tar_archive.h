#ifndef TARA_CORE_TAR_ARCHIVE_H_
#define TARA_CORE_TAR_ARCHIVE_H_

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/varint.h"
#include "core/rule_catalog.h"
#include "txdb/evolving_database.h"

namespace tara {

/// One decoded archive entry: the raw counts of a rule in one window.
/// Support = rule_count / window size; confidence = rule_count /
/// antecedent_count.
struct ArchiveEntry {
  WindowId window = 0;
  uint64_t rule_count = 0;
  uint64_t antecedent_count = 0;
};

/// Interval bounds for measures over a union of windows (the roll-up
/// operation, Section 2.4.1). For windows where the rule was archived the
/// contribution is exact; for windows where it fell below the generation
/// floor its count is only known to lie in [0, floor_count - 1], which
/// widens the interval — this is the paper's roll-up approximation bound
/// made explicit.
struct RollUpBound {
  double support_lo = 0;
  double support_hi = 0;
  double confidence_lo = 0;
  double confidence_hi = 0;
  uint32_t missing_windows = 0;  ///< windows with no archived entry
};

/// Largest count an *unarchived* rule could have had in a window mined
/// with the given floors: absence means support below floor_count OR
/// confidence below confidence_floor, so the undetected count is bounded
/// by the larger escape hatch (a confident-but-rare rule by
/// floor_count - 1, a frequent-but-unconfident one by
/// confidence_floor * |D_w|).
inline uint64_t UnarchivedCountSlack(uint64_t floor_count,
                                     double confidence_floor,
                                     uint64_t window_size) {
  const uint64_t support_slack = floor_count > 0 ? floor_count - 1 : 0;
  const uint64_t confidence_slack = static_cast<uint64_t>(
      confidence_floor * static_cast<double>(window_size));
  return support_slack > confidence_slack ? support_slack : confidence_slack;
}

/// Integer sums a roll-up reduces to before the final divisions. Both the
/// linear scan and the hierarchical roll-up tree aggregate into this and
/// finish through FinishRollUp, so their intervals are bit-identical: the
/// u64 sums are associative and the doubles are produced by the same
/// divisions in the same order.
struct RollUpAggregate {
  uint64_t known_rule = 0;     ///< rule_count over archived windows
  uint64_t known_ant = 0;      ///< antecedent_count over archived windows
  uint64_t missing_slack = 0;  ///< UnarchivedCountSlack over missing windows
  uint64_t missing_size = 0;   ///< transactions in missing windows
  uint64_t total = 0;          ///< transactions in all requested windows
  uint32_t missing_windows = 0;
};

RollUpBound FinishRollUp(const RollUpAggregate& agg);

/// The Temporal Association Rule Archive (TAR Archive).
///
/// Per rule, the per-window (rule_count, antecedent_count) series is stored
/// as a delta-encoded varint byte stream: window gaps are varint-encoded
/// and counts are zigzag-delta encoded against the previous entry, so a
/// rule that stays stable across windows costs ~3 bytes per window instead
/// of 20. Entries must be appended in increasing window order (the
/// evolving build provides exactly that); decoding is a linear scan of the
/// rule's private stream, dispatched to the widest SIMD kernel the host
/// supports (see core/decode_kernels.h).
class TarArchive {
 public:
  TarArchive() = default;

  /// Registers a window's transaction count and generation floors: the
  /// absolute minimum count used when mining it and the minimum confidence
  /// used when deriving rules. Both floors bound how large an *unarchived*
  /// rule's count could be in that window (a rule is absent iff its support
  /// was below floor_count OR its confidence below confidence_floor).
  /// Windows must be registered in order, before entries referencing them
  /// are added.
  void RegisterWindow(WindowId window, uint64_t transaction_count,
                      uint64_t floor_count, double confidence_floor = 0.0);

  /// Appends one (rule, window) observation. `window` must be the most
  /// recently registered window or later than the rule's last entry.
  void Add(RuleId rule, WindowId window, uint64_t rule_count,
           uint64_t antecedent_count);

  /// Decodes the full series of a rule into `arena` via the dispatched
  /// kernel. The span stays valid until the arena's next Reset(); rules
  /// never added decode to empty. This is the hot-path decode shape —
  /// zero heap allocation once the arena is warm.
  std::span<const ArchiveEntry> DecodeInto(RuleId rule,
                                           DecodeArena& arena) const;

  /// Allocating legacy shape, kept as a shim over DecodeInto for one
  /// release; prefer DecodeInto or VisitEntries in new code.
  std::vector<ArchiveEntry> Decode(RuleId rule) const;

  /// Single-pass visitor over a rule's series in window order, no
  /// materialization. `visitor(const ArchiveEntry&)` returns false to stop
  /// early. The decode is the portable scalar scan — consumers that want
  /// the SIMD kernels should DecodeInto.
  template <typename Visitor>
  void VisitEntries(RuleId rule, Visitor&& visitor) const {
    if (rule >= streams_.size() || streams_[rule].empty) return;
    const RuleStream& s = streams_[rule];
    const uint8_t* data = s.bytes.data();
    const size_t size = s.bytes.size();
    size_t pos = 0;
    ArchiveEntry entry;
    entry.window = static_cast<WindowId>(varint::DecodeU64(data, size, &pos));
    entry.rule_count = varint::DecodeU64(data, size, &pos);
    entry.antecedent_count = varint::DecodeU64(data, size, &pos);
    if (!visitor(static_cast<const ArchiveEntry&>(entry))) return;
    while (pos < size) {
      entry.window +=
          static_cast<WindowId>(varint::DecodeU64(data, size, &pos));
      entry.rule_count = static_cast<uint64_t>(
          static_cast<int64_t>(entry.rule_count) +
          varint::DecodeS64(data, size, &pos));
      entry.antecedent_count = static_cast<uint64_t>(
          static_cast<int64_t>(entry.antecedent_count) +
          varint::DecodeS64(data, size, &pos));
      if (!visitor(static_cast<const ArchiveEntry&>(entry))) return;
    }
  }

  /// Returns the entry of `rule` in `window`, if archived. Early-exits the
  /// scan at the target window instead of decoding the whole stream.
  std::optional<ArchiveEntry> EntryFor(RuleId rule, WindowId window) const;

  /// Exact/interval measures of `rule` over the union of `windows` (any
  /// order, no duplicates — WindowSet::ids() converts implicitly). Decodes
  /// once and binary-searches per window, O(entries + windows log entries);
  /// `scratch` avoids a heap allocation when provided.
  RollUpBound RollUp(RuleId rule, std::span<const WindowId> windows,
                     DecodeArena* scratch = nullptr) const;
  RollUpBound RollUp(RuleId rule,
                     std::initializer_list<WindowId> windows) const {
    return RollUp(rule, std::span<const WindowId>(windows.begin(),
                                                  windows.size()));
  }

  /// Number of registered windows.
  uint32_t window_count() const {
    return static_cast<uint32_t>(window_sizes_.size());
  }
  uint64_t window_size(WindowId w) const;
  uint64_t floor_count(WindowId w) const;
  double confidence_floor(WindowId w) const;

  /// Total payload bytes across all rule streams (the paper's Figure 12
  /// "TAR Archive" series).
  size_t payload_bytes() const { return payload_bytes_; }

  /// Total archived (rule, window) entries — multiplied by the raw record
  /// width this gives Figure 12's "uncompressed" series.
  size_t entry_count() const { return entry_count_; }

  /// Archived entries in one rule's stream (0 for rules never added).
  uint32_t entry_count(RuleId rule) const {
    if (rule >= streams_.size()) return 0;
    return streams_[rule].entries;
  }

  /// Number of rules with at least one entry.
  size_t rule_count() const;

 private:
  struct RuleStream {
    std::vector<uint8_t> bytes;
    // Delta bases for appending.
    uint32_t last_window = 0;
    uint64_t last_rule_count = 0;
    uint64_t last_antecedent_count = 0;
    uint32_t entries = 0;
    bool empty = true;
  };

  std::vector<RuleStream> streams_;
  std::vector<uint64_t> window_sizes_;
  std::vector<uint64_t> floor_counts_;
  std::vector<double> confidence_floors_;
  size_t payload_bytes_ = 0;
  size_t entry_count_ = 0;
};

}  // namespace tara

#endif  // TARA_CORE_TAR_ARCHIVE_H_
