#include "core/query_error.h"

namespace tara {

std::string_view QueryErrorCodeName(QueryError::Code code) {
  switch (code) {
    case QueryError::Code::kSupportBelowFloor:
      return "support_below_floor";
    case QueryError::Code::kConfidenceBelowFloor:
      return "confidence_below_floor";
    case QueryError::Code::kBadWindow:
      return "bad_window";
    case QueryError::Code::kEmptyWindowSet:
      return "empty_window_set";
    case QueryError::Code::kWindowSetMismatch:
      return "window_set_mismatch";
    case QueryError::Code::kUnknownRule:
      return "unknown_rule";
    case QueryError::Code::kNoContentIndex:
      return "no_content_index";
    case QueryError::Code::kCorruptStorage:
      return "corrupt_storage";
  }
  return "unknown";
}

std::optional<QueryError::Code> QueryErrorFromWireCode(uint32_t code) {
  switch (code) {
    case 1:
      return QueryError::Code::kSupportBelowFloor;
    case 2:
      return QueryError::Code::kConfidenceBelowFloor;
    case 3:
      return QueryError::Code::kBadWindow;
    case 4:
      return QueryError::Code::kEmptyWindowSet;
    case 5:
      return QueryError::Code::kWindowSetMismatch;
    case 6:
      return QueryError::Code::kUnknownRule;
    case 7:
      return QueryError::Code::kNoContentIndex;
    case 8:
      return QueryError::Code::kCorruptStorage;
    default:
      return std::nullopt;
  }
}

std::ostream& operator<<(std::ostream& out, const QueryError& error) {
  return out << "QueryError[" << QueryErrorCodeName(error.code) << "]: "
             << error.message;
}

}  // namespace tara
