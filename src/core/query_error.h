#ifndef TARA_CORE_QUERY_ERROR_H_
#define TARA_CORE_QUERY_ERROR_H_

#include <ostream>
#include <string>
#include <string_view>

namespace tara {

/// Why an online query was rejected. Every Q1-Q5/roll-up entrypoint
/// validates its request up front and returns one of these (inside an
/// Expected) instead of aborting: invalid *input* is a client problem the
/// serving process survives; CHECK aborts remain reserved for internal
/// invariant violations.
struct QueryError {
  enum class Code {
    /// min_support below the engine's generation floor — sub-floor rules
    /// were never mined, so the archive cannot answer.
    kSupportBelowFloor,
    /// min_confidence below the generation floor.
    kConfidenceBelowFloor,
    /// A window id at or past window_count().
    kBadWindow,
    /// The operation needs at least one window.
    kEmptyWindowSet,
    /// A WindowSet validated against a larger engine than this one.
    kWindowSetMismatch,
    /// A RuleId never interned by this engine's catalog.
    kUnknownRule,
    /// Q5 content query on an engine built without
    /// Options::build_content_index.
    kNoContentIndex,
  };

  Code code = Code::kSupportBelowFloor;
  /// Actionable description including the offending value and the bound
  /// it violated.
  std::string message;
};

/// Stable identifier string of a code ("support_below_floor", ...), used
/// in error counters and CLI output.
std::string_view QueryErrorCodeName(QueryError::Code code);

/// gtest-friendly printing.
std::ostream& operator<<(std::ostream& out, const QueryError& error);

}  // namespace tara

#endif  // TARA_CORE_QUERY_ERROR_H_
