#ifndef TARA_CORE_QUERY_ERROR_H_
#define TARA_CORE_QUERY_ERROR_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

namespace tara {

/// Why an online query was rejected. Every Q1-Q5/roll-up entrypoint
/// validates its request up front and returns one of these (inside an
/// Expected) instead of aborting: invalid *input* is a client problem the
/// serving process survives; CHECK aborts remain reserved for internal
/// invariant violations.
struct QueryError {
  /// The numeric values are the wire error codes (range 1-99 of the
  /// protocol error space, see core/wire_format.h): they round-trip over
  /// the network and are parsed by remote clients, so they are frozen.
  /// Append new codes with fresh numbers; NEVER reuse or renumber. 0 is
  /// reserved (it is not a valid wire code).
  enum class Code : uint32_t {
    /// min_support below the engine's generation floor — sub-floor rules
    /// were never mined, so the archive cannot answer.
    kSupportBelowFloor = 1,
    /// min_confidence below the generation floor.
    kConfidenceBelowFloor = 2,
    /// A window id at or past window_count().
    kBadWindow = 3,
    /// The operation needs at least one window.
    kEmptyWindowSet = 4,
    /// A WindowSet validated against a larger engine than this one.
    kWindowSetMismatch = 5,
    /// A RuleId never interned by this engine's catalog.
    kUnknownRule = 6,
    /// Q5 content query on an engine built without
    /// Options::build_content_index.
    kNoContentIndex = 7,
    /// A memory-mapped knowledge base failed to decode a window the
    /// query needed (lazy materialization hit corrupt storage). The
    /// engine stays up; this query — and any other needing the damaged
    /// window — is rejected. Opening with OpenVerify::kHashes detects
    /// the damage at open time instead.
    kCorruptStorage = 8,
  };

  Code code = Code::kSupportBelowFloor;
  /// Actionable description including the offending value and the bound
  /// it violated.
  std::string message;
};

/// Stable identifier string of a code ("support_below_floor", ...), used
/// in error counters and CLI output.
std::string_view QueryErrorCodeName(QueryError::Code code);

/// The frozen numeric wire code of `code` (the enum value itself).
constexpr uint32_t QueryErrorWireCode(QueryError::Code code) {
  return static_cast<uint32_t>(code);
}

/// Inverse of QueryErrorWireCode: nullopt for a number this build does
/// not know (a newer peer's code — surface it numerically, don't guess).
std::optional<QueryError::Code> QueryErrorFromWireCode(uint32_t code);

/// gtest-friendly printing.
std::ostream& operator<<(std::ostream& out, const QueryError& error);

}  // namespace tara

#endif  // TARA_CORE_QUERY_ERROR_H_
