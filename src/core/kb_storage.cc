#include "core/kb_storage.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/crash_point.h"
#include "common/hash.h"
#include "core/byte_codec.h"
#include "core/kb_open.h"

namespace tara {
namespace {

using codec::ByteReader;
using codec::ByteWriter;

constexpr char kManifestMagic[] = "TARAKB2";
constexpr size_t kManifestMagicLen = sizeof(kManifestMagic) - 1;
constexpr char kSegmentMagic[] = "TSEG";
constexpr size_t kSegmentMagicLen = sizeof(kSegmentMagic) - 1;
constexpr char kManifestFile[] = "manifest.tarakb";

std::string SegmentFileName(WindowId window) {
  char name[32];
  std::snprintf(name, sizeof(name), "window-%06u.seg", window);
  return name;
}

using Manifest = KbManifest;
using ManifestRow = KbManifestRow;

LoadError Err(LoadError::Code code, std::string message) {
  return LoadError{code, std::move(message)};
}

std::vector<uint8_t> EncodeSegmentBytes(const KnowledgeBaseSnapshot& snapshot,
                                        WindowId window) {
  const WindowSegment& segment = snapshot.segment(window);
  const RuleId first_rule =
      window == 0 ? 0 : snapshot.segment(window - 1).rule_watermark;
  ByteWriter w;
  w.Magic(kSegmentMagic, kSegmentMagicLen);
  w.U64(window);
  w.U64(first_rule);
  w.U64(segment.rule_watermark - first_rule);
  for (RuleId id = first_rule; id < segment.rule_watermark; ++id) {
    const Rule& rule = snapshot.catalog().rule(id);
    w.Items(rule.antecedent);
    w.Items(rule.consequent);
  }
  w.U64(segment.entries.size());
  for (const WindowIndex::Entry& e : segment.entries) {
    w.U64(e.rule);
    w.U64(e.rule_count);
    w.U64(e.antecedent_count - e.rule_count);  // delta, always >= 0
  }
  return w.bytes();
}

ManifestRow RowFor(const KnowledgeBaseSnapshot& snapshot, WindowId window,
                   const std::vector<uint8_t>& segment_bytes) {
  const WindowSegment& segment = snapshot.segment(window);
  ManifestRow row;
  row.total_transactions = segment.total_transactions;
  row.rule_watermark = segment.rule_watermark;
  row.entry_count = segment.entries.size();
  row.segment_bytes = segment_bytes.size();
  row.segment_hash = HashBytes(segment_bytes.data(), segment_bytes.size());
  return row;
}

std::vector<uint8_t> EncodeManifestBytes(const Manifest& manifest) {
  ByteWriter w;
  w.Magic(kManifestMagic, kManifestMagicLen);
  w.F64(manifest.min_support_floor);
  w.F64(manifest.min_confidence_floor);
  w.U64(manifest.max_itemset_size);
  w.U64(manifest.build_content_index ? 1 : 0);
  w.U64(manifest.rows.size());
  for (const ManifestRow& row : manifest.rows) {
    w.U64(row.total_transactions);
    w.U64(row.rule_watermark);
    w.U64(row.entry_count);
    w.U64(row.segment_bytes);
    w.Raw64(row.segment_hash);
  }
  return w.bytes();
}

Manifest ManifestFor(const KnowledgeBaseSnapshot& snapshot) {
  const KbOptions& options = snapshot.options();
  Manifest manifest;
  manifest.min_support_floor = options.min_support_floor;
  manifest.min_confidence_floor = options.min_confidence_floor;
  manifest.max_itemset_size = options.max_itemset_size;
  manifest.build_content_index = options.build_content_index;
  return manifest;
}

/// Parses a manifest from `reader`; on success the cursor rests on the
/// first byte after it (the first segment, in the stream format).
std::optional<LoadError> DecodeManifest(ByteReader* reader,
                                        Manifest* manifest) {
  if (reader->remaining() == 0) {
    // The classic symptom of a crash inside a truncating in-place
    // rewrite; called out separately from generic bad magic so the
    // operator knows it is a torn write, not the wrong file.
    return Err(LoadError::Code::kTruncated,
               "manifest is zero-length (torn write from a crashed save?)");
  }
  if (!reader->Magic(kManifestMagic, kManifestMagicLen)) {
    // Distinguish a stale format from arbitrary bytes for a better
    // operator message.
    ByteReader probe(*reader);
    if (probe.Magic("TARAKB", 6)) {
      return Err(LoadError::Code::kBadVersion,
                 "stream is a different TARA knowledge-base format version "
                 "(expected TARAKB2); re-serialize with this build");
    }
    return Err(LoadError::Code::kBadMagic,
               "not a TARA knowledge base (TARAKB2 magic missing)");
  }
  uint64_t content_index = 0;
  uint64_t window_count = 0;
  if (!reader->F64(&manifest->min_support_floor) ||
      !reader->F64(&manifest->min_confidence_floor) ||
      !reader->U64(&manifest->max_itemset_size) ||
      !reader->U64(&content_index) || !reader->U64(&window_count)) {
    return Err(LoadError::Code::kTruncated,
               "manifest ended mid-header (truncated stream?)");
  }
  if (content_index > 1) {
    return Err(LoadError::Code::kBadManifest,
               "manifest content-index flag is neither 0 nor 1");
  }
  manifest->build_content_index = content_index != 0;
  KbOptions options;
  options.min_support_floor = manifest->min_support_floor;
  options.min_confidence_floor = manifest->min_confidence_floor;
  options.max_itemset_size =
      static_cast<uint32_t>(manifest->max_itemset_size);
  if (options.max_itemset_size != manifest->max_itemset_size ||
      options.Validate().has_value()) {
    return Err(LoadError::Code::kBadManifest,
               "manifest options are outside the valid ranges: " +
                   options.Validate().value_or("itemset cap overflows"));
  }
  manifest->rows.reserve(window_count <= 4096 ? window_count : 0);
  uint64_t previous_watermark = 0;
  for (uint64_t i = 0; i < window_count; ++i) {
    ManifestRow row;
    if (!reader->U64(&row.total_transactions) ||
        !reader->U64(&row.rule_watermark) || !reader->U64(&row.entry_count) ||
        !reader->U64(&row.segment_bytes) || !reader->Raw64(&row.segment_hash)) {
      std::ostringstream message;
      message << "manifest ended inside window row " << i << " of "
              << window_count;
      return Err(LoadError::Code::kTruncated, message.str());
    }
    if (row.rule_watermark < previous_watermark) {
      std::ostringstream message;
      message << "manifest watermarks decrease at window " << i << " ("
              << previous_watermark << " -> " << row.rule_watermark
              << ") — watermarks count cumulative interned rules";
      return Err(LoadError::Code::kBadManifest, message.str());
    }
    if (row.entry_count < row.rule_watermark - previous_watermark) {
      std::ostringstream message;
      message << "manifest window " << i << " claims "
              << row.rule_watermark - previous_watermark
              << " first-seen rules but only " << row.entry_count
              << " entries";
      return Err(LoadError::Code::kBadManifest, message.str());
    }
    previous_watermark = row.rule_watermark;
    manifest->rows.push_back(row);
  }
  return std::nullopt;
}

/// Decodes one window's segment blob and appends it to `engine`,
/// cross-checking every claim against the manifest row. `rules` is the
/// catalog replay: rule contents accumulated from all prior segments,
/// indexed by RuleId.
std::optional<LoadError> DecodeSegmentInto(const uint8_t* data, size_t size,
                                           const ManifestRow& row,
                                           WindowId window,
                                           std::vector<Rule>* rules,
                                           TaraEngine* engine) {
  const auto corrupt = [window](const std::string& what) {
    std::ostringstream message;
    message << "segment of window " << window << " is corrupt: " << what;
    return Err(LoadError::Code::kCorruptSegment, message.str());
  };
  if (HashBytes(data, size) != row.segment_hash) {
    return corrupt("checksum does not match the manifest");
  }
  auto parsed = ParseWindowSegment(data, size);
  if (!parsed.has_value()) return parsed.error();
  if (parsed->window != window) {
    return corrupt("segment belongs to a different window");
  }
  if (parsed->first_rule != rules->size() ||
      parsed->first_rule + parsed->new_rules.size() != row.rule_watermark) {
    return corrupt("rule id range disagrees with the manifest watermark");
  }
  if (parsed->entries.size() != row.entry_count) {
    return corrupt("entry count disagrees with the manifest");
  }
  for (Rule& rule : parsed.value().new_rules) {
    rules->push_back(std::move(rule));
  }
  std::vector<TaraEngine::PrecomputedRule> precomputed;
  precomputed.reserve(parsed->entries.size());
  for (const ParsedWindowSegment::RawEntry& e : parsed->entries) {
    if (e.rule >= row.rule_watermark) {
      return corrupt("entry references a rule past the window's watermark");
    }
    TaraEngine::PrecomputedRule p;
    p.rule = (*rules)[e.rule];
    p.rule_count = e.rule_count;
    p.antecedent_count = e.rule_count + e.antecedent_delta;
    precomputed.push_back(std::move(p));
  }
  engine->AppendPrecomputedWindow(row.total_transactions, precomputed);
  if (engine->catalog().size() != row.rule_watermark) {
    return corrupt(
        "re-interning the entries did not reproduce the manifest watermark "
        "(duplicate or out-of-order rule contents)");
  }
  return std::nullopt;
}

TaraEngine EngineFor(const Manifest& manifest, obs::MetricsRegistry* metrics,
                     uint32_t parallelism) {
  KbOptions options;
  options.min_support_floor = manifest.min_support_floor;
  options.min_confidence_floor = manifest.min_confidence_floor;
  options.max_itemset_size = static_cast<uint32_t>(manifest.max_itemset_size);
  options.build_content_index = manifest.build_content_index;
  options.metrics = metrics;
  options.parallelism = parallelism;
  return TaraEngine(options);
}

LoadError ErrnoErr(const std::string& what, const std::filesystem::path& path) {
  return Err(LoadError::Code::kIoError,
             what + " " + path.string() + ": " + std::strerror(errno));
}

/// Flushes the directory entry for `path` so a just-renamed file survives
/// a crash. Best-effort on filesystems where directories cannot be opened.
std::optional<LoadError> SyncParentDir(const std::filesystem::path& path) {
  const std::filesystem::path parent =
      path.has_parent_path() ? path.parent_path() : ".";
  const int dir_fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) return ErrnoErr("cannot open directory", parent);
  const int rc = ::fsync(dir_fd);
  ::close(dir_fd);
  if (rc != 0) return ErrnoErr("fsync failed on directory", parent);
  return std::nullopt;
}

/// Checks that manifest `rows` describe a prefix of `snapshot`'s windows.
/// Metadata-level check (transactions, watermark, entry count): cheap, and
/// sufficient because segment bytes are a deterministic function of the
/// window sequence.
std::optional<LoadError> CheckPrefix(const KnowledgeBaseSnapshot& snapshot,
                                     const std::vector<ManifestRow>& rows) {
  if (rows.size() > snapshot.window_count()) {
    std::ostringstream message;
    message << "directory holds " << rows.size()
            << " windows but the snapshot has only "
            << snapshot.window_count()
            << " — appending cannot rewind a knowledge base";
    return Err(LoadError::Code::kBadManifest, message.str());
  }
  for (size_t w = 0; w < rows.size(); ++w) {
    const WindowSegment& segment =
        snapshot.segment(static_cast<WindowId>(w));
    if (rows[w].total_transactions != segment.total_transactions ||
        rows[w].rule_watermark != segment.rule_watermark ||
        rows[w].entry_count != segment.entries.size()) {
      std::ostringstream message;
      message << "window " << w
              << " on disk does not match the snapshot (different data or "
                 "floors?) — refusing to append; save to a fresh directory";
      return Err(LoadError::Code::kBadManifest, message.str());
    }
  }
  return std::nullopt;
}

std::optional<LoadError> CheckOptionsMatch(
    const KnowledgeBaseSnapshot& snapshot, const Manifest& manifest) {
  const KbOptions& options = snapshot.options();
  if (manifest.min_support_floor != options.min_support_floor ||
      manifest.min_confidence_floor != options.min_confidence_floor ||
      manifest.max_itemset_size != options.max_itemset_size ||
      manifest.build_content_index != options.build_content_index) {
    return Err(LoadError::Code::kBadManifest,
               "directory was written with different construction options "
               "(floors/itemset cap/content index) — refusing to append");
  }
  return std::nullopt;
}

}  // namespace

namespace internal {

std::optional<LoadError> ReadFileBytes(const std::filesystem::path& path,
                                       std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Err(LoadError::Code::kIoError,
               "cannot open " + path.string() + " for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Err(LoadError::Code::kIoError, "read failed on " + path.string());
  }
  const std::string& data = buffer.str();
  out->assign(data.begin(), data.end());
  return std::nullopt;
}

std::optional<LoadError> AtomicWriteFileBytes(
    const std::filesystem::path& path, const std::vector<uint8_t>& bytes) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoErr("cannot open", tmp);
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written,
                              bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const LoadError error = ErrnoErr("write failed on", tmp);
      ::close(fd);
      return error;
    }
    written += static_cast<size_t>(n);
  }
  CrashPoint("storage.tmp_written");
  if (::fsync(fd) != 0) {
    const LoadError error = ErrnoErr("fsync failed on", tmp);
    ::close(fd);
    return error;
  }
  if (::close(fd) != 0) return ErrnoErr("close failed on", tmp);
  CrashPoint("storage.tmp_synced");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return ErrnoErr("rename failed onto", path);
  }
  CrashPoint("storage.renamed");
  if (auto error = SyncParentDir(path)) return error;
  CrashPoint("storage.dir_synced");
  return std::nullopt;
}

void WarnDeprecatedOnce(bool* warned, const char* legacy,
                        const char* replacement) {
  if (*warned) return;
  *warned = true;
  std::fprintf(stderr,
               "tara: %s is deprecated and will be removed next release; "
               "use %s\n",
               legacy, replacement);
}

std::optional<LoadError> WriteKnowledgeBaseDirManifest(
    const std::string& dir, const KbManifest& manifest) {
  return AtomicWriteFileBytes(std::filesystem::path(dir) / kManifestFile,
                              EncodeManifestBytes(manifest));
}

Expected<TaraEngine, LoadError> LoadKnowledgeBaseDirImpl(
    const std::string& dir, obs::MetricsRegistry* metrics,
    uint32_t parallelism) {
  const std::filesystem::path root(dir);
  std::vector<uint8_t> manifest_bytes;
  if (auto error = ReadFileBytes(root / kManifestFile, &manifest_bytes)) {
    return *std::move(error);
  }
  ByteReader reader(manifest_bytes.data(), manifest_bytes.size());
  Manifest manifest;
  if (auto error = DecodeManifest(&reader, &manifest)) return *std::move(error);
  if (reader.remaining() != 0) {
    return Err(LoadError::Code::kTrailingBytes,
               "trailing bytes after the manifest in " +
                   (root / kManifestFile).string());
  }

  TaraEngine engine = EngineFor(manifest, metrics, parallelism);
  std::vector<Rule> rules;
  for (size_t w = 0; w < manifest.rows.size(); ++w) {
    const ManifestRow& row = manifest.rows[w];
    const std::filesystem::path path =
        root / SegmentFileName(static_cast<WindowId>(w));
    std::vector<uint8_t> segment;
    if (auto error = ReadFileBytes(path, &segment)) return *std::move(error);
    if (segment.size() != row.segment_bytes) {
      std::ostringstream message;
      message << path.string() << " is " << segment.size()
              << " bytes but the manifest promises " << row.segment_bytes;
      return Err(LoadError::Code::kCorruptSegment, message.str());
    }
    if (auto error =
            DecodeSegmentInto(segment.data(), segment.size(), row,
                              static_cast<WindowId>(w), &rules, &engine)) {
      return *std::move(error);
    }
  }
  return engine;
}

Expected<TaraEngine, LoadError> RecoverKnowledgeBaseImpl(
    const std::string& kb_dir, const std::string& wal_dir,
    obs::MetricsRegistry* metrics, WalReplayStats* stats,
    uint32_t parallelism) {
  std::optional<TaraEngine> engine;
  if (KnowledgeBaseDirExists(kb_dir)) {
    auto loaded = LoadKnowledgeBaseDirImpl(kb_dir, metrics, parallelism);
    if (!loaded.has_value()) return loaded.error();
    engine.emplace(std::move(loaded.value()));
  } else {
    // No checkpoint yet: the crash happened before the first save. The
    // WAL header carries the construction options, so the whole engine
    // rebuilds from the log alone.
    auto contents = ReadWal(wal_dir);
    if (!contents.has_value()) return contents.error();
    KbOptions options = contents->options;
    options.metrics = metrics;
    options.parallelism = parallelism;
    engine.emplace(options);
  }
  auto replayed = engine->AttachWal(wal_dir);
  if (!replayed.has_value()) return replayed.error();
  if (stats != nullptr) *stats = replayed.value();
  return std::move(*engine);
}

}  // namespace internal

std::string EncodeKnowledgeBase(const KnowledgeBaseSnapshot& snapshot) {
  Manifest manifest = ManifestFor(snapshot);
  std::vector<std::vector<uint8_t>> segments;
  segments.reserve(snapshot.window_count());
  for (WindowId w = 0; w < snapshot.window_count(); ++w) {
    segments.push_back(EncodeSegmentBytes(snapshot, w));
    manifest.rows.push_back(RowFor(snapshot, w, segments.back()));
  }
  const std::vector<uint8_t> header = EncodeManifestBytes(manifest);
  std::string out(header.begin(), header.end());
  for (const std::vector<uint8_t>& segment : segments) {
    out.append(segment.begin(), segment.end());
  }
  return out;
}

Expected<TaraEngine, LoadError> DecodeKnowledgeBase(
    std::string_view bytes, obs::MetricsRegistry* metrics) {
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  ByteReader reader(data, bytes.size());
  Manifest manifest;
  if (auto error = DecodeManifest(&reader, &manifest)) return *std::move(error);

  TaraEngine engine = EngineFor(manifest, metrics, 1);
  std::vector<Rule> rules;
  size_t pos = reader.pos();
  for (size_t w = 0; w < manifest.rows.size(); ++w) {
    const ManifestRow& row = manifest.rows[w];
    if (bytes.size() - pos < row.segment_bytes) {
      std::ostringstream message;
      message << "stream ends inside the segment of window " << w
              << " (manifest promises " << row.segment_bytes << " bytes, "
              << bytes.size() - pos << " remain)";
      return Err(LoadError::Code::kTruncated, message.str());
    }
    if (auto error =
            DecodeSegmentInto(data + pos, row.segment_bytes, row,
                              static_cast<WindowId>(w), &rules, &engine)) {
      return *std::move(error);
    }
    pos += row.segment_bytes;
  }
  if (pos != bytes.size()) {
    std::ostringstream message;
    message << bytes.size() - pos
            << " trailing bytes after the last window segment";
    return Err(LoadError::Code::kTrailingBytes, message.str());
  }
  return engine;
}

std::optional<LoadError> SaveKnowledgeBaseDir(
    const KnowledgeBaseSnapshot& snapshot, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Err(LoadError::Code::kIoError,
               "cannot create directory " + dir + ": " + ec.message());
  }
  const std::filesystem::path root(dir);
  Manifest manifest = ManifestFor(snapshot);
  for (WindowId w = 0; w < snapshot.window_count(); ++w) {
    const std::vector<uint8_t> segment = EncodeSegmentBytes(snapshot, w);
    manifest.rows.push_back(RowFor(snapshot, w, segment));
    if (auto error = internal::AtomicWriteFileBytes(
            root / SegmentFileName(w), segment)) {
      return error;
    }
  }
  // Manifest last: it only ever names segments that are already durable.
  return internal::AtomicWriteFileBytes(root / kManifestFile,
                                        EncodeManifestBytes(manifest));
}

std::optional<LoadError> AppendKnowledgeBaseDir(
    const KnowledgeBaseSnapshot& snapshot, const std::string& dir) {
  const std::filesystem::path root(dir);
  if (!std::filesystem::exists(root / kManifestFile)) {
    return SaveKnowledgeBaseDir(snapshot, dir);
  }
  std::vector<uint8_t> manifest_bytes;
  if (auto error =
          internal::ReadFileBytes(root / kManifestFile, &manifest_bytes)) {
    return error;
  }
  ByteReader reader(manifest_bytes.data(), manifest_bytes.size());
  Manifest on_disk;
  if (auto error = DecodeManifest(&reader, &on_disk)) return error;
  if (reader.remaining() != 0) {
    return Err(LoadError::Code::kTrailingBytes,
               "trailing bytes after the manifest in " +
                   (root / kManifestFile).string());
  }
  if (auto error = CheckOptionsMatch(snapshot, on_disk)) return error;
  if (auto error = CheckPrefix(snapshot, on_disk.rows)) return error;

  // Only the new windows' segments are encoded and written; the manifest
  // keeps the on-disk rows for the untouched prefix.
  Manifest updated = ManifestFor(snapshot);
  updated.rows = on_disk.rows;
  for (WindowId w = static_cast<WindowId>(on_disk.rows.size());
       w < snapshot.window_count(); ++w) {
    const std::vector<uint8_t> segment = EncodeSegmentBytes(snapshot, w);
    updated.rows.push_back(RowFor(snapshot, w, segment));
    if (auto error = internal::AtomicWriteFileBytes(
            root / SegmentFileName(w), segment)) {
      return error;
    }
  }
  // The manifest replacement is atomic (temp + rename), so a crash here
  // leaves the previous manifest — and therefore a loadable prefix —
  // intact, never a truncated rewrite.
  return internal::AtomicWriteFileBytes(root / kManifestFile,
                                        EncodeManifestBytes(updated));
}

bool KnowledgeBaseDirExists(const std::string& dir) {
  std::error_code ec;
  return std::filesystem::exists(std::filesystem::path(dir) / kManifestFile,
                                 ec);
}

std::string KnowledgeBaseManifestFileName() { return kManifestFile; }

std::string KnowledgeBaseSegmentFileName(WindowId window) {
  return SegmentFileName(window);
}

Expected<KbManifest, LoadError> ReadKnowledgeBaseDirManifest(
    const std::string& dir) {
  const std::filesystem::path root(dir);
  std::vector<uint8_t> manifest_bytes;
  if (auto error =
          internal::ReadFileBytes(root / kManifestFile, &manifest_bytes)) {
    return *std::move(error);
  }
  ByteReader reader(manifest_bytes.data(), manifest_bytes.size());
  KbManifest manifest;
  if (auto error = DecodeManifest(&reader, &manifest)) return *std::move(error);
  if (reader.remaining() != 0) {
    return Err(LoadError::Code::kTrailingBytes,
               "trailing bytes after the manifest in " +
                   (root / kManifestFile).string());
  }
  return manifest;
}

std::vector<uint8_t> EncodeWindowSegment(const KnowledgeBaseSnapshot& snapshot,
                                         WindowId window) {
  return EncodeSegmentBytes(snapshot, window);
}

Expected<WindowId, LoadError> PeekWindowSegmentWindow(const uint8_t* data,
                                                      size_t size) {
  ByteReader r(data, size);
  uint64_t stored_window = 0;
  if (!r.Magic(kSegmentMagic, kSegmentMagicLen) || !r.U64(&stored_window) ||
      static_cast<WindowId>(stored_window) != stored_window) {
    return Err(LoadError::Code::kCorruptSegment,
               "window segment is corrupt: unreadable window id");
  }
  return static_cast<WindowId>(stored_window);
}

Expected<ParsedWindowSegment, LoadError> ParseWindowSegment(
    const uint8_t* data, size_t size) {
  const auto corrupt = [](const std::string& what) {
    return Err(LoadError::Code::kCorruptSegment,
               "window segment is corrupt: " + what);
  };
  ByteReader r(data, size);
  if (!r.Magic(kSegmentMagic, kSegmentMagicLen)) {
    return corrupt("TSEG magic missing");
  }
  uint64_t stored_window = 0, first_rule = 0, new_rule_count = 0;
  if (!r.U64(&stored_window) || !r.U64(&first_rule) ||
      !r.U64(&new_rule_count)) {
    return corrupt("truncated segment header");
  }
  ParsedWindowSegment parsed;
  parsed.window = static_cast<WindowId>(stored_window);
  parsed.first_rule = static_cast<RuleId>(first_rule);
  if (parsed.window != stored_window || parsed.first_rule != first_rule) {
    return corrupt("window or rule id overflows");
  }
  if (new_rule_count > r.remaining()) {  // each rule takes >= 2 bytes
    return corrupt("truncated rule contents");
  }
  parsed.new_rules.reserve(new_rule_count);
  for (uint64_t i = 0; i < new_rule_count; ++i) {
    Rule rule;
    if (!r.Items(&rule.antecedent) || !r.Items(&rule.consequent)) {
      return corrupt("truncated rule contents");
    }
    parsed.new_rules.push_back(std::move(rule));
  }
  uint64_t entry_count = 0;
  if (!r.U64(&entry_count)) return corrupt("truncated entry count");
  if (entry_count > r.remaining()) {  // each entry takes >= 3 bytes
    return corrupt("truncated entry list");
  }
  parsed.entries.reserve(entry_count);
  for (uint64_t i = 0; i < entry_count; ++i) {
    ParsedWindowSegment::RawEntry e;
    if (!r.U64(&e.rule) || !r.U64(&e.rule_count) ||
        !r.U64(&e.antecedent_delta)) {
      return corrupt("truncated entry list");
    }
    if (e.rule >= first_rule + parsed.new_rules.size()) {
      return corrupt("entry references a rule past the segment's range");
    }
    parsed.entries.push_back(e);
  }
  if (r.remaining() != 0) return corrupt("trailing bytes after the entries");
  return parsed;
}

Expected<std::vector<PrecomputedRule>, LoadError> ResolveParsedSegment(
    const ParsedWindowSegment& parsed, const RuleCatalog& catalog) {
  const auto corrupt = [](const std::string& what) {
    return Err(LoadError::Code::kCorruptSegment,
               "window segment is corrupt: " + what);
  };
  if (parsed.first_rule > catalog.size()) {
    return corrupt("rule ids start past the catalog");
  }
  std::vector<PrecomputedRule> entries;
  entries.reserve(parsed.entries.size());
  for (const ParsedWindowSegment::RawEntry& e : parsed.entries) {
    PrecomputedRule p;
    if (e.rule < parsed.first_rule) {
      p.rule = catalog.rule(static_cast<RuleId>(e.rule));
    } else {
      // In range by the parse-time bound check.
      p.rule = parsed.new_rules[e.rule - parsed.first_rule];
    }
    p.rule_count = e.rule_count;
    p.antecedent_count = e.rule_count + e.antecedent_delta;
    entries.push_back(std::move(p));
  }
  return entries;
}

Expected<DecodedWindowSegment, LoadError> DecodeWindowSegment(
    const uint8_t* data, size_t size, const RuleCatalog& catalog) {
  auto parsed = ParseWindowSegment(data, size);
  if (!parsed.has_value()) return parsed.error();
  auto entries = ResolveParsedSegment(parsed.value(), catalog);
  if (!entries.has_value()) return entries.error();
  DecodedWindowSegment decoded;
  decoded.window = parsed->window;
  decoded.first_rule = parsed->first_rule;
  decoded.entries = *std::move(entries);
  return decoded;
}

Expected<TaraEngine, LoadError> RecoverKnowledgeBase(
    const std::string& kb_dir, const std::string& wal_dir,
    obs::MetricsRegistry* metrics, WalReplayStats* stats) {
  static bool warned = false;
  internal::WarnDeprecatedOnce(&warned, "RecoverKnowledgeBase",
                               "OpenKnowledgeBase(OpenOptions) with wal_dir "
                               "set (core/kb_open.h)");
  OpenOptions options;
  options.kb_dir = kb_dir;
  options.wal_dir = wal_dir;
  options.metrics = metrics;
  options.replay_stats = stats;
  return OpenKnowledgeBase(options);
}

Expected<TaraEngine, LoadError> LoadKnowledgeBaseDir(
    const std::string& dir, obs::MetricsRegistry* metrics) {
  static bool warned = false;
  internal::WarnDeprecatedOnce(&warned, "LoadKnowledgeBaseDir",
                               "OpenKnowledgeBase(OpenOptions) "
                               "(core/kb_open.h)");
  OpenOptions options;
  options.kb_dir = dir;
  options.metrics = metrics;
  return OpenKnowledgeBase(options);
}

}  // namespace tara
