#ifndef TARA_CORE_RULE_CATALOG_H_
#define TARA_CORE_RULE_CATALOG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "txdb/types.h"

namespace tara {

/// Dense identifier of an interned association rule, stable across windows.
using RuleId = uint32_t;

/// An association rule X ⇒ Y (antecedent ⇒ consequent), canonical itemsets.
struct Rule {
  Itemset antecedent;
  Itemset consequent;

  bool operator==(const Rule& other) const {
    return antecedent == other.antecedent && consequent == other.consequent;
  }
};

/// Interns rules into dense RuleIds shared by the archive and all window
/// indexes. A rule that reappears in a later window keeps its id, which is
/// what makes cross-window trajectories cheap to assemble.
class RuleCatalog {
 public:
  RuleCatalog() = default;

  /// Returns the id for `rule`, interning it if new.
  RuleId Intern(const Rule& rule);

  /// Returns the id for `rule` or kNotFound if never interned.
  RuleId Find(const Rule& rule) const;

  const Rule& rule(RuleId id) const;

  size_t size() const { return rules_.size(); }

  /// Human-readable "a b -> c" form (ids; see FormatRuleNamed for names).
  std::string FormatRule(RuleId id) const;

  static constexpr RuleId kNotFound = static_cast<RuleId>(-1);

 private:
  struct RuleHash {
    size_t operator()(const Rule& r) const;
  };
  std::unordered_map<Rule, RuleId, RuleHash> ids_;
  std::vector<Rule> rules_;
};

}  // namespace tara

#endif  // TARA_CORE_RULE_CATALOG_H_
