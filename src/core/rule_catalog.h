#ifndef TARA_CORE_RULE_CATALOG_H_
#define TARA_CORE_RULE_CATALOG_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "txdb/types.h"

namespace tara {

/// Dense identifier of an interned association rule, stable across windows.
using RuleId = uint32_t;

/// An association rule X ⇒ Y (antecedent ⇒ consequent), canonical itemsets.
struct Rule {
  Itemset antecedent;
  Itemset consequent;

  bool operator==(const Rule& other) const {
    return antecedent == other.antecedent && consequent == other.consequent;
  }
};

/// Interns rules into dense RuleIds shared by the archive and all window
/// indexes. A rule that reappears in a later window keeps its id, which is
/// what makes cross-window trajectories cheap to assemble.
///
/// Thread-safety: readers (Find / rule / size / FormatRule) may run
/// concurrently with one Intern-ing writer — the parallel offline build
/// interns a window's rules on the commit thread while EPS builds of
/// earlier windows read rule content off-thread. Rules live in a deque so
/// a `const Rule&` obtained from rule() stays valid forever (rules are
/// never removed); the map and deque themselves are guarded by a
/// shared_mutex. After the build finishes the catalog is read-only and the
/// uncontended shared locks cost a few nanoseconds on the query path.
class RuleCatalog {
 public:
  RuleCatalog() = default;

  /// Movable (not thread-safe to move concurrently with any other access;
  /// moves happen only when an engine is returned by value from a loader).
  RuleCatalog(RuleCatalog&& other) noexcept;
  RuleCatalog& operator=(RuleCatalog&& other) noexcept;

  /// Returns the id for `rule`, interning it if new. Single writer at a
  /// time (the build commit stage is serialized).
  RuleId Intern(const Rule& rule);

  /// Returns the id for `rule` or kNotFound if never interned.
  RuleId Find(const Rule& rule) const;

  /// The interned rule. The reference remains valid for the catalog's
  /// lifetime even while later rules are interned.
  const Rule& rule(RuleId id) const;

  size_t size() const;

  /// Human-readable "a b -> c" form (ids; see FormatRuleNamed for names).
  std::string FormatRule(RuleId id) const;

  static constexpr RuleId kNotFound = static_cast<RuleId>(-1);

 private:
  struct RuleHash {
    size_t operator()(const Rule& r) const;
  };
  mutable std::shared_mutex mutex_;
  std::unordered_map<Rule, RuleId, RuleHash> ids_;
  /// Deque, not vector: growth never relocates existing rules, so readers
  /// holding references are safe across concurrent Intern calls.
  std::deque<Rule> rules_;
};

}  // namespace tara

#endif  // TARA_CORE_RULE_CATALOG_H_
