#include "core/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/crash_point.h"
#include "common/hash.h"
#include "common/varint.h"

namespace tara {
namespace {

constexpr char kWalMagic[] = "TARAWAL1";
constexpr size_t kWalMagicLen = sizeof(kWalMagic) - 1;
constexpr char kWalFile[] = "wal.tarawal";
/// u32 payload length + u64 payload checksum.
constexpr size_t kRecordHeaderBytes = 12;

LoadError Err(LoadError::Code code, std::string message) {
  return LoadError{code, std::move(message)};
}

LoadError ErrnoErr(const std::string& what, const std::string& path) {
  return Err(LoadError::Code::kIoError,
             what + " " + path + ": " + std::strerror(errno));
}

std::string WalPath(const std::string& dir) {
  return (std::filesystem::path(dir) / kWalFile).string();
}

void PutRaw64(uint64_t bits, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

uint64_t GetRaw64(const uint8_t* data) {
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(data[i]) << (8 * i);
  }
  return bits;
}

uint32_t GetRaw32(const uint8_t* data) {
  uint32_t bits = 0;
  for (int i = 0; i < 4; ++i) {
    bits |= static_cast<uint32_t>(data[i]) << (8 * i);
  }
  return bits;
}

/// Magic + the serialized KbOptions subset. The exact bytes a valid log
/// starts with — also used to verify an existing log on reopen.
std::vector<uint8_t> EncodeHeader(const KbOptions& options) {
  std::vector<uint8_t> out;
  out.insert(out.end(), kWalMagic, kWalMagic + kWalMagicLen);
  PutRaw64(std::bit_cast<uint64_t>(options.min_support_floor), &out);
  PutRaw64(std::bit_cast<uint64_t>(options.min_confidence_floor), &out);
  varint::EncodeU64(options.max_itemset_size, &out);
  varint::EncodeU64(options.build_content_index ? 1 : 0, &out);
  return out;
}

/// Parses the header at the start of `data`; on success sets `*options`
/// (serialized subset only) and `*header_bytes`.
std::optional<LoadError> DecodeHeader(const uint8_t* data, size_t size,
                                      KbOptions* options,
                                      size_t* header_bytes) {
  if (size < kWalMagicLen ||
      std::memcmp(data, kWalMagic, kWalMagicLen) != 0) {
    return Err(LoadError::Code::kBadMagic,
               "not a TARA write-ahead log (TARAWAL1 magic missing)");
  }
  size_t pos = kWalMagicLen;
  if (size - pos < 16) {
    return Err(LoadError::Code::kTruncated,
               "write-ahead log ends inside its header");
  }
  options->min_support_floor = std::bit_cast<double>(GetRaw64(data + pos));
  options->min_confidence_floor =
      std::bit_cast<double>(GetRaw64(data + pos + 8));
  pos += 16;
  uint64_t max_itemset = 0, content_index = 0;
  if (!varint::TryDecodeU64(data, size, &pos, &max_itemset) ||
      !varint::TryDecodeU64(data, size, &pos, &content_index)) {
    return Err(LoadError::Code::kTruncated,
               "write-ahead log ends inside its header");
  }
  if (content_index > 1) {
    return Err(LoadError::Code::kBadManifest,
               "write-ahead log content-index flag is neither 0 nor 1");
  }
  options->max_itemset_size = static_cast<uint32_t>(max_itemset);
  options->build_content_index = content_index != 0;
  if (options->max_itemset_size != max_itemset ||
      options->Validate().has_value()) {
    return Err(LoadError::Code::kBadManifest,
               "write-ahead log header options are outside the valid "
               "ranges: " +
                   options->Validate().value_or("itemset cap overflows"));
  }
  *header_bytes = pos;
  return std::nullopt;
}

std::optional<LoadError> SyncDir(const std::string& dir) {
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) return ErrnoErr("cannot open directory", dir);
  const int rc = ::fsync(dir_fd);
  ::close(dir_fd);
  if (rc != 0) return ErrnoErr("fsync failed on directory", dir);
  return std::nullopt;
}

}  // namespace

bool WalExists(const std::string& dir) {
  std::error_code ec;
  return std::filesystem::exists(WalPath(dir), ec);
}

Expected<WalContents, LoadError> ReadWal(const std::string& dir) {
  const std::string path = WalPath(dir);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Err(LoadError::Code::kIoError,
               "cannot open " + path + " for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Err(LoadError::Code::kIoError, "read failed on " + path);
  }
  const std::string& raw = buffer.str();
  const uint8_t* data = reinterpret_cast<const uint8_t*>(raw.data());
  const size_t size = raw.size();

  WalContents contents;
  size_t header_bytes = 0;
  if (auto error = DecodeHeader(data, size, &contents.options,
                                &header_bytes)) {
    return *std::move(error);
  }

  // Record scan. The first length/checksum mismatch marks the torn tail
  // of a crashed append: everything before it is intact (records are
  // fdatasync'd in order), everything from it on is discarded.
  size_t pos = header_bytes;
  contents.valid_bytes = pos;
  while (size - pos >= kRecordHeaderBytes) {
    const uint32_t payload_len = GetRaw32(data + pos);
    const uint64_t checksum = GetRaw64(data + pos + 4);
    if (size - pos - kRecordHeaderBytes < payload_len) break;
    const uint8_t* payload = data + pos + kRecordHeaderBytes;
    if (HashBytes(payload, payload_len) != checksum) break;
    WalRecord record;
    size_t payload_pos = 0;
    if (!varint::TryDecodeU64(payload, payload_len, &payload_pos,
                              &record.total_transactions)) {
      break;
    }
    record.segment_bytes.assign(payload + payload_pos,
                                payload + payload_len);
    contents.records.push_back(std::move(record));
    pos += kRecordHeaderBytes + payload_len;
    contents.valid_bytes = pos;
  }
  contents.truncated_bytes = size - contents.valid_bytes;
  return contents;
}

WalWriter::WalWriter(int fd, std::string path, uint64_t header_bytes,
                     obs::MetricsRegistry* metrics)
    : fd_(fd), path_(std::move(path)), header_bytes_(header_bytes) {
  if (metrics != nullptr) {
    records_ = metrics->GetCounter("tara.wal.records");
    bytes_ = metrics->GetCounter("tara.wal.bytes");
    fsyncs_ = metrics->GetCounter("tara.wal.fsyncs");
  }
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      header_bytes_(other.header_bytes_),
      records_(other.records_),
      bytes_(other.bytes_),
      fsyncs_(other.fsyncs_) {}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    header_bytes_ = other.header_bytes_;
    records_ = other.records_;
    bytes_ = other.bytes_;
    fsyncs_ = other.fsyncs_;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Expected<WalWriter, LoadError> WalWriter::Open(
    const std::string& dir, const KbOptions& options, uint64_t valid_bytes,
    obs::MetricsRegistry* metrics) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Err(LoadError::Code::kIoError,
               "cannot create directory " + dir + ": " + ec.message());
  }
  const std::string path = WalPath(dir);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return ErrnoErr("cannot open", path);

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const LoadError error = ErrnoErr("fstat failed on", path);
    ::close(fd);
    return error;
  }
  const std::vector<uint8_t> header = EncodeHeader(options);

  if (st.st_size == 0) {
    // Fresh log: header first, durably, so any later record lands in a
    // log a recovering process can parse.
    size_t written = 0;
    while (written < header.size()) {
      const ssize_t n =
          ::write(fd, header.data() + written, header.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        const LoadError error = ErrnoErr("write failed on", path);
        ::close(fd);
        return error;
      }
      written += static_cast<size_t>(n);
    }
    if (::fdatasync(fd) != 0) {
      const LoadError error = ErrnoErr("fdatasync failed on", path);
      ::close(fd);
      return error;
    }
    if (auto error = SyncDir(dir)) {
      ::close(fd);
      return *std::move(error);
    }
    return WalWriter(fd, path, header.size(), metrics);
  }

  // Existing log: the header must describe the same engine, and the
  // caller's scan tells us where the valid records end — drop the torn
  // tail before appending anything new.
  std::vector<uint8_t> on_disk(header.size());
  const ssize_t got = ::pread(fd, on_disk.data(), on_disk.size(), 0);
  if (got < 0 || static_cast<size_t>(got) != header.size() ||
      std::memcmp(on_disk.data(), header.data(), header.size()) != 0) {
    ::close(fd);
    return Err(LoadError::Code::kBadManifest,
               path +
                   " was written by an engine with different construction "
                   "options (floors/itemset cap/content index) — refusing "
                   "to append");
  }
  if (valid_bytes < header.size() ||
      valid_bytes > static_cast<uint64_t>(st.st_size)) {
    ::close(fd);
    return Err(LoadError::Code::kBadManifest,
               path + ": valid-bytes offset outside the log");
  }
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    const LoadError error = ErrnoErr("cannot drop the torn tail of", path);
    ::close(fd);
    return error;
  }
  return WalWriter(fd, path, header.size(), metrics);
}

std::optional<LoadError> WalWriter::Fsync() {
  if (::fdatasync(fd_) != 0) return ErrnoErr("fdatasync failed on", path_);
  if (fsyncs_ != nullptr) fsyncs_->Increment();
  return std::nullopt;
}

std::optional<LoadError> WalWriter::Append(
    uint64_t total_transactions, const std::vector<uint8_t>& segment_bytes) {
  std::vector<uint8_t> payload;
  payload.reserve(segment_bytes.size() + 10);
  varint::EncodeU64(total_transactions, &payload);
  payload.insert(payload.end(), segment_bytes.begin(), segment_bytes.end());

  std::vector<uint8_t> record;
  record.reserve(kRecordHeaderBytes + payload.size());
  const uint32_t payload_len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    record.push_back(static_cast<uint8_t>(payload_len >> (8 * i)));
  }
  PutRaw64(HashBytes(payload.data(), payload.size()), &record);
  record.insert(record.end(), payload.begin(), payload.end());

  size_t written = 0;
  while (written < record.size()) {
    const ssize_t n =
        ::write(fd_, record.data() + written, record.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoErr("write failed on", path_);
    }
    written += static_cast<size_t>(n);
  }
  CrashPoint("wal.record_written");
  // The ack-durability point: only after this fdatasync may the window
  // be acknowledged anywhere.
  if (auto error = Fsync()) return error;
  CrashPoint("wal.record_synced");
  if (records_ != nullptr) records_->Increment();
  if (bytes_ != nullptr) bytes_->Increment(record.size());
  return std::nullopt;
}

std::optional<LoadError> WalWriter::Truncate() {
  CrashPoint("wal.truncate_begin");
  if (::ftruncate(fd_, static_cast<off_t>(header_bytes_)) != 0) {
    return ErrnoErr("truncate failed on", path_);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    return ErrnoErr("seek failed on", path_);
  }
  if (auto error = Fsync()) return error;
  CrashPoint("wal.truncated");
  return std::nullopt;
}

}  // namespace tara
