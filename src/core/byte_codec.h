#ifndef TARA_CORE_BYTE_CODEC_H_
#define TARA_CORE_BYTE_CODEC_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/varint.h"
#include "txdb/evolving_database.h"
#include "txdb/types.h"

namespace tara {
namespace codec {

/// The shared byte-level codec of the TARA persistence formats (TARAKB2
/// manifests/segments, TARAKB3 block manifests, the write-ahead log):
/// integers are LEB128 varints, doubles and checksums are 8-byte
/// little-endian, itemsets are delta-encoded sorted item ids.

class ByteWriter {
 public:
  void Magic(const char* magic, size_t len) {
    for (size_t i = 0; i < len; ++i) {
      bytes_.push_back(static_cast<uint8_t>(magic[i]));
    }
  }
  void U64(uint64_t v) { varint::EncodeU64(v, &bytes_); }
  void Raw64(uint64_t bits) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<uint8_t>(bits >> (8 * i)));
    }
  }
  void F64(double v) { Raw64(std::bit_cast<uint64_t>(v)); }
  void Items(const Itemset& items) {
    U64(items.size());
    // Delta-encode the sorted item ids.
    ItemId previous = 0;
    for (ItemId item : items) {
      U64(item - previous);
      previous = item;
    }
  }
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

/// Abort-free cursor over untrusted bytes; every getter reports
/// truncation instead of CHECK-failing.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool Magic(const char* magic, size_t len) {
    if (pos_ + len > size_) return false;
    if (std::memcmp(data_ + pos_, magic, len) != 0) return false;
    pos_ += len;
    return true;
  }
  bool U64(uint64_t* out) {
    return varint::TryDecodeU64(data_, size_, &pos_, out);
  }
  bool Raw64(uint64_t* out) {
    if (pos_ + 8 > size_) return false;
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    }
    *out = bits;
    return true;
  }
  bool F64(double* out) {
    uint64_t bits = 0;
    if (!Raw64(&bits)) return false;
    *out = std::bit_cast<double>(bits);
    return true;
  }
  bool Items(Itemset* out) {
    uint64_t n = 0;
    if (!U64(&n)) return false;
    if (n > remaining()) return false;  // each item takes >= 1 byte
    out->clear();
    out->reserve(n);
    ItemId previous = 0;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t delta = 0;
      if (!U64(&delta)) return false;
      previous += static_cast<ItemId>(delta);
      out->push_back(previous);
    }
    return true;
  }
  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace codec
}  // namespace tara

#endif  // TARA_CORE_BYTE_CODEC_H_
