#ifndef TARA_CORE_KB_BLOCKS_H_
#define TARA_CORE_KB_BLOCKS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/expected.h"
#include "common/mmap_file.h"
#include "common/thread_pool.h"
#include "core/kb_storage.h"
#include "core/load_error.h"
#include "core/tara_engine.h"

namespace tara {

/// Block-partitioned knowledge-base persistence (format TARAKB3).
///
/// TARAKB2 (kb_storage.h) stores one small file per window, which makes
/// opening a many-window knowledge base O(windows) file opens and — with
/// the eager loader — O(total bytes) reads before the first query runs.
/// TARAKB3 packs the SAME per-window segment blobs (byte-identical to
/// what EncodeWindowSegment produces and the WAL carries) into a few
/// balanced **block files**, each covering a contiguous window range:
///
///   <dir>/blocks.tarakb3        the blocks manifest
///   <dir>/block-NNNNNN.blk      segment blobs at 64-byte-aligned offsets
///
/// The manifest names each block by an explicit `file_index` (the NNNNNN
/// in its name), its window span, byte size, and whole-file hash, plus
/// per-window rows mirroring the TARAKB2 manifest (transaction count,
/// rule watermark, entry count) extended with the segment's offset inside
/// the block. Explicit file indices make every rewrite (split, trim,
/// checkpoint-merge) crash-safe: new content always lands in
/// fresh-indexed files, the manifest swaps atomically, and orphans are
/// deleted only afterwards — a crash at any instant leaves a manifest
/// whose named files are all fully in place.
///
/// Because segments sit at stable offsets in a handful of files, a
/// knowledge base can be **memory-mapped** (MappedKb): open cost is
/// O(blocks) mmap calls regardless of window count, and no segment
/// payload byte is read until a query needs that window — the zero-copy
/// half of OpenKnowledgeBase's OpenMode::kMapped. The eager loader and
/// the block writer keep using the TARAKB2 codec underneath, so the two
/// formats hold bit-identical segment blobs and interconvert by byte
/// copy, without decoding a single segment (RepartitionKnowledgeBase).

/// Default target block size for the balanced partitioner.
inline constexpr uint64_t kDefaultBlockBytes = 4ull * 1024 * 1024;

/// Segments start at multiples of this within a block file (zero padding
/// in between), so decode-on-access never straddles an unaligned load.
inline constexpr uint64_t kBlockSegmentAlignment = 64;

/// Per-window row of the blocks manifest: the TARAKB2 manifest row plus
/// the segment's byte offset inside its block file.
struct KbBlockRow {
  uint64_t total_transactions = 0;
  uint64_t rule_watermark = 0;
  uint64_t entry_count = 0;
  uint64_t offset = 0;
  uint64_t segment_bytes = 0;
  uint64_t segment_hash = 0;
};

/// One block: a contiguous run of windows packed into
/// `block-<file_index>.blk`.
struct KbBlockInfo {
  uint64_t file_index = 0;
  WindowId first_window = 0;
  uint64_t file_bytes = 0;
  /// Hash of the entire block file (padding included) — the cheap
  /// whole-block integrity check `db verify` and VerifyHashes use before
  /// the per-segment hashes.
  uint64_t file_hash = 0;
  std::vector<KbBlockRow> rows;
};

/// The decoded blocks manifest: serialized construction options plus the
/// block table.
struct KbBlocksManifest {
  double min_support_floor = 0;
  double min_confidence_floor = 0;
  uint64_t max_itemset_size = 0;
  bool build_content_index = false;
  std::vector<KbBlockInfo> blocks;

  uint32_t window_count() const;
  /// The rule watermark after the last window (0 when empty).
  uint64_t rule_watermark() const;
};

/// The TARAKB3 file names ("blocks.tarakb3", "block-NNNNNN.blk").
std::string KnowledgeBaseBlocksManifestFileName();
std::string KnowledgeBaseBlockFileName(uint64_t file_index);

/// True if `dir` holds a TARAKB3 blocks manifest.
bool KnowledgeBaseBlocksDirExists(const std::string& dir);

/// Reads and validates `<dir>/blocks.tarakb3` without touching any block
/// file.
Expected<KbBlocksManifest, LoadError> ReadKnowledgeBaseBlocksManifest(
    const std::string& dir);

/// Writes the full knowledge base of `snapshot` into `dir` as TARAKB3:
/// windows are packed into balanced blocks of about `block_bytes` each
/// (always at least one window per block), block files land before the
/// manifest that names them.
std::optional<LoadError> SaveKnowledgeBaseBlocks(
    const KnowledgeBaseSnapshot& snapshot, const std::string& dir,
    uint64_t block_bytes = kDefaultBlockBytes);

/// Incremental TARAKB3 save: verifies the manifest in `dir` describes a
/// prefix of `snapshot`'s windows, then packs only the NEW windows into
/// fresh-indexed block files. Existing blocks are never rewritten, so
/// checkpoint cadence determines the tail blocks' sizes — run
/// RepartitionKnowledgeBase (`db split`) to rebalance. Falls back to
/// SaveKnowledgeBaseBlocks when `dir` has no blocks manifest yet.
std::optional<LoadError> AppendKnowledgeBaseBlocks(
    const KnowledgeBaseSnapshot& snapshot, const std::string& dir,
    uint64_t block_bytes = kDefaultBlockBytes);

/// The format-dispatching checkpoint step used by serving and the CLI:
/// appends `snapshot`'s new windows to whichever format `dir` already
/// holds — TARAKB3 when a blocks manifest exists, TARAKB2 otherwise
/// (including fresh directories, so plain checkpoints stay byte-stable
/// across checkpoint cadences; opt into blocks with `db split` or
/// SaveKnowledgeBaseBlocks).
std::optional<LoadError> CheckpointKnowledgeBaseDir(
    const KnowledgeBaseSnapshot& snapshot, const std::string& dir);

/// Repartitions `dir` into balanced TARAKB3 blocks of about
/// `block_bytes` (`db split`). Works on either format — a TARAKB2
/// directory is converted (its manifest and segment files are removed
/// once the blocks manifest is durable), a TARAKB3 directory is
/// rebalanced into fresh-indexed files. Pure byte-level copy: no segment
/// is decoded.
std::optional<LoadError> RepartitionKnowledgeBase(
    const std::string& dir, uint64_t block_bytes = kDefaultBlockBytes);

/// Truncates the knowledge base in `dir` to its first `window_count`
/// windows (`db trim`), either format. File-level: kept blocks are
/// untouched; a block straddling the cut is rewritten (byte copy) into a
/// fresh-indexed file. Trimming to more windows than exist is an error.
std::optional<LoadError> TrimKnowledgeBase(const std::string& dir,
                                           uint32_t window_count);

/// Deletes every file named by the manifest(s) in `dir`, then the
/// manifest(s) themselves (`db rm`). The directory itself is left in
/// place; files the manifests do not name (a WAL, stray .tmp files) are
/// not touched.
std::optional<LoadError> RemoveKnowledgeBase(const std::string& dir);

/// A non-owning view of one window's segment blob inside a mapped block
/// file. Valid only while the MappedKb that produced it lives.
struct SegmentView {
  WindowId window = 0;
  const uint8_t* data = nullptr;
  size_t size = 0;
  const KbBlockRow* row = nullptr;
};

/// A TARAKB3 knowledge base opened zero-copy: the manifest is decoded,
/// every block file is mmap'd and size-checked (fstat — no payload
/// read), and segments are handed out as views into the mappings.
/// Decode happens on access, never at open, which is what makes open
/// time independent of window count. Move-only; views stay valid across
/// moves (the mappings do not relocate).
class MappedKb {
 public:
  static Expected<MappedKb, LoadError> Open(const std::string& dir);

  MappedKb(MappedKb&&) noexcept = default;
  MappedKb& operator=(MappedKb&&) noexcept = default;
  MappedKb(const MappedKb&) = delete;
  MappedKb& operator=(const MappedKb&) = delete;

  const KbBlocksManifest& manifest() const { return manifest_; }
  const std::string& dir() const { return dir_; }
  uint32_t window_count() const { return manifest_.window_count(); }

  /// The mapped segment blob of window `w`. Aborts on an out-of-range id
  /// (caller bug — gate on window_count()).
  SegmentView segment(WindowId w) const;

  /// Verifies every block's whole-file hash and every segment's hash
  /// against the manifest, reading all payload bytes. Blocks are checked
  /// concurrently when `pool` is non-null. First failure wins.
  std::optional<LoadError> VerifyHashes(ThreadPool* pool = nullptr) const;

  /// The first window whose rule watermark exceeds `rule` — i.e. the
  /// window that interned it. nullopt when `rule` is past the final
  /// watermark. Drives rule-targeted lazy materialization.
  std::optional<WindowId> FirstWindowWithRule(RuleId rule) const;

 private:
  MappedKb() = default;

  struct WindowLoc {
    uint32_t block = 0;
    uint32_t row = 0;
  };

  std::string dir_;
  KbBlocksManifest manifest_;
  std::vector<MappedFile> maps_;  // index-aligned with manifest_.blocks
  std::vector<WindowLoc> locs_;   // per window
};

}  // namespace tara

#endif  // TARA_CORE_KB_BLOCKS_H_
