#ifndef TARA_CORE_ROLLUP_TREE_H_
#define TARA_CORE_ROLLUP_TREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/tar_archive.h"
#include "txdb/evolving_database.h"

namespace tara {

/// Hierarchical roll-up index: per-rule partial sums and floor-slack
/// bounds over windows, so RollUp drops from O(windows · entries) to
/// O(runs · log entries) with intervals identical to the linear archive
/// scan.
///
/// Structurally this is a segment tree over the window axis stored in
/// flattened prefix form: the aggregate of any interior node [a, b) is the
/// difference of two prefix nodes, so one array of n+1 partial sums
/// answers every range in O(1) after an O(log n) boundary search — same
/// bounds as an explicit tree, a fraction of the memory, and the partial
/// sums stay exact (u64, associative) so FinishRollUp produces bit-equal
/// doubles to TarArchive::RollUp.
///
/// Two layers of nodes:
/// - Global (over all registered windows): prefix sums of window size and
///   of UnarchivedCountSlack — the worst-case undetected count the floors
///   admit per window (see tar_archive.h for the bound derivation).
/// - Per rule (over the windows where the rule was archived): the window
///   ids ascending, plus prefix sums of rule_count, antecedent_count, and
///   of the containing window's size and slack.
///
/// A range [a, b] of requested windows then resolves as: total and
/// worst-case slack from the global prefixes; known counts from the
/// rule's prefixes between lower_bound(a) and upper_bound(b); and the
/// missing windows' slack/size as global-minus-present — every term a
/// prefix difference.
///
/// Immutable once built; KbBuilder publishes one per generation on the
/// KnowledgeBaseSnapshot. Incremental cost is one clone of a rule's
/// series per generation it is touched in (copy-on-write), mirroring the
/// snapshot cost profile of the archive itself.
class RollUpTree {
 public:
  /// Interval measures of `rule` over `windows` (ascending, no
  /// duplicates — exactly WindowSet::ids()). Bit-identical to
  /// TarArchive::RollUp over the same archive state.
  RollUpBound RollUp(RuleId rule, std::span<const WindowId> windows) const;

  /// The entry of `rule` in `window`, if archived — O(log entries), no
  /// stream decode. Equivalent to TarArchive::EntryFor.
  std::optional<ArchiveEntry> EntryFor(RuleId rule, WindowId window) const;

  uint32_t window_count() const {
    return static_cast<uint32_t>(window_size_prefix_.size() - 1);
  }
  /// Archived entries of one rule (0 for rules never added).
  uint32_t entry_count(RuleId rule) const;

 private:
  friend class RollUpTreeBuilder;

  /// One rule's flattened leaf-to-root path set: windows ascending with
  /// n+1 prefix arrays ([0] = 0).
  struct RuleSeries {
    std::vector<WindowId> windows;
    std::vector<uint64_t> rule_prefix;
    std::vector<uint64_t> ant_prefix;
    /// Sizes and slacks of the *present* windows, so missing-window terms
    /// come out as global range minus present range.
    std::vector<uint64_t> size_prefix;
    std::vector<uint64_t> slack_prefix;
  };

  RollUpTree() = default;

  std::vector<std::shared_ptr<const RuleSeries>> series_;  // by RuleId
  std::vector<uint64_t> window_size_prefix_;   // length W+1
  std::vector<uint64_t> window_slack_prefix_;  // length W+1
};

/// Incremental builder owned by KbBuilder, fed at commit time alongside
/// TarArchive::RegisterWindow/Add. Snapshot() is cheap: it shares rule
/// series with earlier snapshots and later appends copy-on-write, so
/// published trees are immutable without deep-copying the index per
/// generation.
class RollUpTreeBuilder {
 public:
  RollUpTreeBuilder() { Reset(); }

  /// Mirrors TarArchive::RegisterWindow: must be called once per window,
  /// in order, before entries of that window are added. `slack` is
  /// UnarchivedCountSlack(floor_count, confidence_floor, size).
  void BeginWindow(WindowId window, uint64_t size, uint64_t slack);

  /// Mirrors TarArchive::Add for the current (most recent) window.
  void AddEntry(RuleId rule, uint64_t rule_count, uint64_t antecedent_count);

  /// An immutable tree over everything added so far.
  std::shared_ptr<const RollUpTree> Snapshot() const;

  /// Drops all state (used when a builder is reset wholesale).
  void Reset();

 private:
  /// Series the builder may append to in place; becomes shared (and
  /// copy-on-write) once Snapshot() has published it.
  std::vector<std::shared_ptr<RollUpTree::RuleSeries>> series_;
  std::vector<uint64_t> window_size_prefix_;
  std::vector<uint64_t> window_slack_prefix_;
};

}  // namespace tara

#endif  // TARA_CORE_ROLLUP_TREE_H_
