#include "core/kb_blocks.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "core/byte_codec.h"

namespace tara {
namespace {

using codec::ByteReader;
using codec::ByteWriter;

constexpr char kBlocksMagic[] = "TARAKB3";
constexpr size_t kBlocksMagicLen = sizeof(kBlocksMagic) - 1;
constexpr char kBlocksManifestFile[] = "blocks.tarakb3";

LoadError Err(LoadError::Code code, std::string message) {
  return LoadError{code, std::move(message)};
}

uint64_t AlignUp(uint64_t offset) {
  return (offset + kBlockSegmentAlignment - 1) & ~(kBlockSegmentAlignment - 1);
}

std::vector<uint8_t> EncodeBlocksManifestBytes(
    const KbBlocksManifest& manifest) {
  ByteWriter w;
  w.Magic(kBlocksMagic, kBlocksMagicLen);
  w.F64(manifest.min_support_floor);
  w.F64(manifest.min_confidence_floor);
  w.U64(manifest.max_itemset_size);
  w.U64(manifest.build_content_index ? 1 : 0);
  w.U64(manifest.blocks.size());
  for (const KbBlockInfo& block : manifest.blocks) {
    w.U64(block.file_index);
    w.U64(block.first_window);
    w.U64(block.rows.size());
    w.U64(block.file_bytes);
    w.Raw64(block.file_hash);
    for (const KbBlockRow& row : block.rows) {
      w.U64(row.total_transactions);
      w.U64(row.rule_watermark);
      w.U64(row.entry_count);
      w.U64(row.offset);
      w.U64(row.segment_bytes);
      w.Raw64(row.segment_hash);
    }
  }
  return w.bytes();
}

std::optional<LoadError> DecodeBlocksManifest(ByteReader* reader,
                                              KbBlocksManifest* manifest) {
  if (reader->remaining() == 0) {
    return Err(LoadError::Code::kTruncated,
               "blocks manifest is zero-length (torn write from a crashed "
               "save?)");
  }
  if (!reader->Magic(kBlocksMagic, kBlocksMagicLen)) {
    ByteReader probe(*reader);
    if (probe.Magic("TARAKB", 6)) {
      return Err(LoadError::Code::kBadVersion,
                 "file is a different TARA knowledge-base format version "
                 "(expected TARAKB3); re-partition with this build");
    }
    return Err(LoadError::Code::kBadMagic,
               "not a TARA blocks manifest (TARAKB3 magic missing)");
  }
  uint64_t content_index = 0;
  uint64_t block_count = 0;
  if (!reader->F64(&manifest->min_support_floor) ||
      !reader->F64(&manifest->min_confidence_floor) ||
      !reader->U64(&manifest->max_itemset_size) ||
      !reader->U64(&content_index) || !reader->U64(&block_count)) {
    return Err(LoadError::Code::kTruncated,
               "blocks manifest ended mid-header (truncated file?)");
  }
  if (content_index > 1) {
    return Err(LoadError::Code::kBadManifest,
               "blocks manifest content-index flag is neither 0 nor 1");
  }
  manifest->build_content_index = content_index != 0;
  KbOptions options;
  options.min_support_floor = manifest->min_support_floor;
  options.min_confidence_floor = manifest->min_confidence_floor;
  options.max_itemset_size =
      static_cast<uint32_t>(manifest->max_itemset_size);
  if (options.max_itemset_size != manifest->max_itemset_size ||
      options.Validate().has_value()) {
    return Err(LoadError::Code::kBadManifest,
               "blocks manifest options are outside the valid ranges: " +
                   options.Validate().value_or("itemset cap overflows"));
  }
  manifest->blocks.reserve(block_count <= 4096 ? block_count : 0);
  uint64_t next_window = 0;
  uint64_t previous_watermark = 0;
  for (uint64_t b = 0; b < block_count; ++b) {
    KbBlockInfo block;
    uint64_t first_window = 0;
    uint64_t row_count = 0;
    if (!reader->U64(&block.file_index) || !reader->U64(&first_window) ||
        !reader->U64(&row_count) || !reader->U64(&block.file_bytes) ||
        !reader->Raw64(&block.file_hash)) {
      std::ostringstream message;
      message << "blocks manifest ended inside block " << b << " of "
              << block_count;
      return Err(LoadError::Code::kTruncated, message.str());
    }
    if (first_window != next_window) {
      std::ostringstream message;
      message << "block " << b << " starts at window " << first_window
              << " but " << next_window
              << " windows precede it — blocks must tile the window range";
      return Err(LoadError::Code::kBadManifest, message.str());
    }
    if (row_count == 0) {
      std::ostringstream message;
      message << "block " << b << " covers zero windows";
      return Err(LoadError::Code::kBadManifest, message.str());
    }
    block.first_window = static_cast<WindowId>(first_window);
    if (block.first_window != first_window ||
        next_window + row_count > UINT32_MAX) {
      return Err(LoadError::Code::kBadManifest,
                 "blocks manifest window ids overflow");
    }
    block.rows.reserve(row_count <= 4096 ? row_count : 0);
    for (uint64_t i = 0; i < row_count; ++i) {
      KbBlockRow row;
      if (!reader->U64(&row.total_transactions) ||
          !reader->U64(&row.rule_watermark) ||
          !reader->U64(&row.entry_count) || !reader->U64(&row.offset) ||
          !reader->U64(&row.segment_bytes) ||
          !reader->Raw64(&row.segment_hash)) {
        std::ostringstream message;
        message << "blocks manifest ended inside the row of window "
                << next_window + i;
        return Err(LoadError::Code::kTruncated, message.str());
      }
      if (row.rule_watermark < previous_watermark) {
        std::ostringstream message;
        message << "blocks manifest watermarks decrease at window "
                << next_window + i << " (" << previous_watermark << " -> "
                << row.rule_watermark
                << ") — watermarks count cumulative interned rules";
        return Err(LoadError::Code::kBadManifest, message.str());
      }
      if (row.entry_count < row.rule_watermark - previous_watermark) {
        std::ostringstream message;
        message << "blocks manifest window " << next_window + i << " claims "
                << row.rule_watermark - previous_watermark
                << " first-seen rules but only " << row.entry_count
                << " entries";
        return Err(LoadError::Code::kBadManifest, message.str());
      }
      if (row.offset > block.file_bytes ||
          row.segment_bytes > block.file_bytes - row.offset) {
        std::ostringstream message;
        message << "segment of window " << next_window + i
                << " extends past its block file (" << row.offset << " + "
                << row.segment_bytes << " > " << block.file_bytes << ")";
        return Err(LoadError::Code::kBadManifest, message.str());
      }
      previous_watermark = row.rule_watermark;
      block.rows.push_back(row);
    }
    next_window += row_count;
    manifest->blocks.push_back(std::move(block));
  }
  return std::nullopt;
}

std::optional<LoadError> CheckBlocksOptionsMatch(
    const KnowledgeBaseSnapshot& snapshot, const KbBlocksManifest& manifest) {
  const KbOptions& options = snapshot.options();
  if (manifest.min_support_floor != options.min_support_floor ||
      manifest.min_confidence_floor != options.min_confidence_floor ||
      manifest.max_itemset_size != options.max_itemset_size ||
      manifest.build_content_index != options.build_content_index) {
    return Err(LoadError::Code::kBadManifest,
               "directory was written with different construction options "
               "(floors/itemset cap/content index) — refusing to append");
  }
  return std::nullopt;
}

std::optional<LoadError> CheckBlocksPrefix(
    const KnowledgeBaseSnapshot& snapshot, const KbBlocksManifest& manifest) {
  if (manifest.window_count() > snapshot.window_count()) {
    std::ostringstream message;
    message << "directory holds " << manifest.window_count()
            << " windows but the snapshot has only "
            << snapshot.window_count()
            << " — appending cannot rewind a knowledge base";
    return Err(LoadError::Code::kBadManifest, message.str());
  }
  for (const KbBlockInfo& block : manifest.blocks) {
    for (size_t i = 0; i < block.rows.size(); ++i) {
      const WindowId w = block.first_window + static_cast<WindowId>(i);
      const WindowSegment& segment = snapshot.segment(w);
      const KbBlockRow& row = block.rows[i];
      if (row.total_transactions != segment.total_transactions ||
          row.rule_watermark != segment.rule_watermark ||
          row.entry_count != segment.entries.size()) {
        std::ostringstream message;
        message << "window " << w
                << " on disk does not match the snapshot (different data or "
                   "floors?) — refusing to append; save to a fresh directory";
        return Err(LoadError::Code::kBadManifest, message.str());
      }
    }
  }
  return std::nullopt;
}

/// One window's segment blob plus its manifest row (offset unset), ready
/// for the packer. `data` points at caller-owned bytes.
struct PackInput {
  KbBlockRow row;
  const uint8_t* data = nullptr;
  size_t size = 0;
};

/// Packs `inputs` into balanced blocks of about `block_bytes`, writes the
/// block files crash-safely into `dir` with file indices starting at
/// `next_index`, and appends the resulting block table entries to
/// `out_blocks`. Block files land before the caller writes the manifest
/// that names them.
std::optional<LoadError> WritePackedBlocks(const std::vector<PackInput>& inputs,
                                           WindowId first_window,
                                           uint64_t next_index,
                                           uint64_t block_bytes,
                                           const std::filesystem::path& dir,
                                           std::vector<KbBlockInfo>* out_blocks) {
  if (inputs.empty()) return std::nullopt;
  if (block_bytes == 0) block_bytes = 1;

  // Balanced greedy partition: aim every block at total/ceil(total/target)
  // bytes rather than filling to `block_bytes` and leaving a runt tail.
  uint64_t total = 0;
  for (const PackInput& in : inputs) total += AlignUp(in.size);
  const uint64_t n_blocks =
      std::max<uint64_t>(1, (total + block_bytes - 1) / block_bytes);
  const uint64_t target = (total + n_blocks - 1) / n_blocks;

  KbBlockInfo block;
  block.file_index = next_index;
  block.first_window = first_window;
  std::vector<uint8_t> bytes;
  WindowId window = first_window;

  const auto flush = [&]() -> std::optional<LoadError> {
    block.file_bytes = bytes.size();
    block.file_hash = HashBytes(bytes.data(), bytes.size());
    if (auto error = internal::AtomicWriteFileBytes(
            dir / KnowledgeBaseBlockFileName(block.file_index), bytes)) {
      return error;
    }
    out_blocks->push_back(std::move(block));
    block = KbBlockInfo();
    block.file_index = ++next_index;
    block.first_window = window;
    bytes.clear();
    return std::nullopt;
  };

  for (const PackInput& in : inputs) {
    if (!bytes.empty() && AlignUp(bytes.size()) + in.size > target) {
      if (auto error = flush()) return error;
    }
    const uint64_t offset = AlignUp(bytes.size());
    bytes.resize(offset, 0);  // zero padding up to the aligned start
    bytes.insert(bytes.end(), in.data, in.data + in.size);
    KbBlockRow row = in.row;
    row.offset = offset;
    row.segment_bytes = in.size;
    block.rows.push_back(row);
    ++window;
  }
  if (!block.rows.empty()) {
    if (auto error = flush()) return error;
  }
  return std::nullopt;
}

std::optional<LoadError> WriteBlocksManifest(const std::filesystem::path& dir,
                                             const KbBlocksManifest& manifest) {
  return internal::AtomicWriteFileBytes(dir / kBlocksManifestFile,
                                        EncodeBlocksManifestBytes(manifest));
}

KbBlocksManifest BlocksManifestFor(const KnowledgeBaseSnapshot& snapshot) {
  const KbOptions& options = snapshot.options();
  KbBlocksManifest manifest;
  manifest.min_support_floor = options.min_support_floor;
  manifest.min_confidence_floor = options.min_confidence_floor;
  manifest.max_itemset_size = options.max_itemset_size;
  manifest.build_content_index = options.build_content_index;
  return manifest;
}

/// Encodes windows [begin, end) of `snapshot` as pack inputs. The blob
/// storage lands in `storage` (one vector per window) so the PackInput
/// pointers stay valid.
std::vector<PackInput> EncodeRange(const KnowledgeBaseSnapshot& snapshot,
                                   WindowId begin, WindowId end,
                                   std::vector<std::vector<uint8_t>>* storage) {
  std::vector<PackInput> inputs;
  inputs.reserve(end - begin);
  for (WindowId w = begin; w < end; ++w) {
    storage->push_back(EncodeWindowSegment(snapshot, w));
    const std::vector<uint8_t>& blob = storage->back();
    const WindowSegment& segment = snapshot.segment(w);
    PackInput in;
    in.row.total_transactions = segment.total_transactions;
    in.row.rule_watermark = segment.rule_watermark;
    in.row.entry_count = segment.entries.size();
    in.row.segment_hash = HashBytes(blob.data(), blob.size());
    in.data = blob.data();
    in.size = blob.size();
    inputs.push_back(in);
  }
  return inputs;
}

std::optional<LoadError> RemoveFile(const std::filesystem::path& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) {
    return Err(LoadError::Code::kIoError,
               "cannot remove " + path.string() + ": " + ec.message());
  }
  return std::nullopt;
}

}  // namespace

uint32_t KbBlocksManifest::window_count() const {
  uint64_t count = 0;
  for (const KbBlockInfo& block : blocks) count += block.rows.size();
  return static_cast<uint32_t>(count);
}

uint64_t KbBlocksManifest::rule_watermark() const {
  if (blocks.empty()) return 0;
  return blocks.back().rows.back().rule_watermark;
}

std::string KnowledgeBaseBlocksManifestFileName() {
  return kBlocksManifestFile;
}

std::string KnowledgeBaseBlockFileName(uint64_t file_index) {
  char name[32];
  std::snprintf(name, sizeof(name), "block-%06llu.blk",
                static_cast<unsigned long long>(file_index));
  return name;
}

bool KnowledgeBaseBlocksDirExists(const std::string& dir) {
  std::error_code ec;
  return std::filesystem::exists(
      std::filesystem::path(dir) / kBlocksManifestFile, ec);
}

Expected<KbBlocksManifest, LoadError> ReadKnowledgeBaseBlocksManifest(
    const std::string& dir) {
  const std::filesystem::path root(dir);
  std::vector<uint8_t> bytes;
  if (auto error =
          internal::ReadFileBytes(root / kBlocksManifestFile, &bytes)) {
    return *std::move(error);
  }
  ByteReader reader(bytes.data(), bytes.size());
  KbBlocksManifest manifest;
  if (auto error = DecodeBlocksManifest(&reader, &manifest)) {
    return *std::move(error);
  }
  if (reader.remaining() != 0) {
    return Err(LoadError::Code::kTrailingBytes,
               "trailing bytes after the blocks manifest in " +
                   (root / kBlocksManifestFile).string());
  }
  return manifest;
}

std::optional<LoadError> SaveKnowledgeBaseBlocks(
    const KnowledgeBaseSnapshot& snapshot, const std::string& dir,
    uint64_t block_bytes) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Err(LoadError::Code::kIoError,
               "cannot create directory " + dir + ": " + ec.message());
  }
  const std::filesystem::path root(dir);
  KbBlocksManifest manifest = BlocksManifestFor(snapshot);
  std::vector<std::vector<uint8_t>> storage;
  const std::vector<PackInput> inputs =
      EncodeRange(snapshot, 0, snapshot.window_count(), &storage);
  if (auto error = WritePackedBlocks(inputs, 0, 0, block_bytes, root,
                                     &manifest.blocks)) {
    return error;
  }
  return WriteBlocksManifest(root, manifest);
}

std::optional<LoadError> AppendKnowledgeBaseBlocks(
    const KnowledgeBaseSnapshot& snapshot, const std::string& dir,
    uint64_t block_bytes) {
  if (!KnowledgeBaseBlocksDirExists(dir)) {
    return SaveKnowledgeBaseBlocks(snapshot, dir, block_bytes);
  }
  auto manifest = ReadKnowledgeBaseBlocksManifest(dir);
  if (!manifest.has_value()) return manifest.error();
  if (auto error = CheckBlocksOptionsMatch(snapshot, manifest.value())) {
    return error;
  }
  if (auto error = CheckBlocksPrefix(snapshot, manifest.value())) {
    return error;
  }
  const WindowId existing = manifest->window_count();
  if (existing == snapshot.window_count()) return std::nullopt;

  uint64_t next_index = 0;
  for (const KbBlockInfo& block : manifest->blocks) {
    next_index = std::max(next_index, block.file_index + 1);
  }
  const std::filesystem::path root(dir);
  std::vector<std::vector<uint8_t>> storage;
  const std::vector<PackInput> inputs =
      EncodeRange(snapshot, existing, snapshot.window_count(), &storage);
  if (auto error = WritePackedBlocks(inputs, existing, next_index, block_bytes,
                                     root, &manifest.value().blocks)) {
    return error;
  }
  return WriteBlocksManifest(root, manifest.value());
}

std::optional<LoadError> CheckpointKnowledgeBaseDir(
    const KnowledgeBaseSnapshot& snapshot, const std::string& dir) {
  if (KnowledgeBaseBlocksDirExists(dir)) {
    return AppendKnowledgeBaseBlocks(snapshot, dir);
  }
  return AppendKnowledgeBaseDir(snapshot, dir);
}

std::optional<LoadError> RepartitionKnowledgeBase(const std::string& dir,
                                                  uint64_t block_bytes) {
  const std::filesystem::path root(dir);
  std::vector<std::filesystem::path> orphans;
  std::vector<PackInput> inputs;
  KbBlocksManifest updated;
  uint64_t next_index = 0;

  // Both sources keep their bytes alive through the pack: the mapped
  // blocks via `mapped`, the KB2 segment files via `storage`.
  std::optional<MappedKb> mapped;
  std::vector<std::vector<uint8_t>> storage;

  if (KnowledgeBaseBlocksDirExists(dir)) {
    auto opened = MappedKb::Open(dir);
    if (!opened.has_value()) return opened.error();
    mapped.emplace(std::move(opened.value()));
    const KbBlocksManifest& manifest = mapped->manifest();
    updated = manifest;
    updated.blocks.clear();
    for (const KbBlockInfo& block : manifest.blocks) {
      next_index = std::max(next_index, block.file_index + 1);
      orphans.push_back(root / KnowledgeBaseBlockFileName(block.file_index));
    }
    for (WindowId w = 0; w < mapped->window_count(); ++w) {
      const SegmentView view = mapped->segment(w);
      PackInput in;
      in.row = *view.row;
      in.data = view.data;
      in.size = view.size;
      inputs.push_back(in);
    }
  } else if (KnowledgeBaseDirExists(dir)) {
    auto manifest = ReadKnowledgeBaseDirManifest(dir);
    if (!manifest.has_value()) return manifest.error();
    updated.min_support_floor = manifest->min_support_floor;
    updated.min_confidence_floor = manifest->min_confidence_floor;
    updated.max_itemset_size = manifest->max_itemset_size;
    updated.build_content_index = manifest->build_content_index;
    orphans.push_back(root / KnowledgeBaseManifestFileName());
    for (size_t w = 0; w < manifest->rows.size(); ++w) {
      const KbManifestRow& row = manifest->rows[w];
      const std::filesystem::path path =
          root / KnowledgeBaseSegmentFileName(static_cast<WindowId>(w));
      orphans.push_back(path);
      storage.emplace_back();
      if (auto error = internal::ReadFileBytes(path, &storage.back())) {
        return error;
      }
      const std::vector<uint8_t>& blob = storage.back();
      if (blob.size() != row.segment_bytes ||
          HashBytes(blob.data(), blob.size()) != row.segment_hash) {
        std::ostringstream message;
        message << path.string()
                << " does not match its manifest row (size or checksum) — "
                   "refusing to repartition a corrupt knowledge base";
        return Err(LoadError::Code::kCorruptSegment, message.str());
      }
      PackInput in;
      in.row.total_transactions = row.total_transactions;
      in.row.rule_watermark = row.rule_watermark;
      in.row.entry_count = row.entry_count;
      in.row.segment_hash = row.segment_hash;
      in.data = blob.data();
      in.size = blob.size();
      inputs.push_back(in);
    }
  } else {
    return Err(LoadError::Code::kIoError,
               "no knowledge base (TARAKB2 or TARAKB3) in " + dir);
  }

  if (auto error = WritePackedBlocks(inputs, 0, next_index, block_bytes, root,
                                     &updated.blocks)) {
    return error;
  }
  if (auto error = WriteBlocksManifest(root, updated)) return error;
  // The new manifest is durable; only now are the files it no longer
  // names expendable. A crash before this point leaves the old manifest
  // (and its files) fully intact; a crash during the sweep leaves
  // harmless unreferenced files a re-run removes.
  mapped.reset();  // unmap before deleting the old block files
  for (const std::filesystem::path& orphan : orphans) {
    if (auto error = RemoveFile(orphan)) return error;
  }
  return std::nullopt;
}

std::optional<LoadError> TrimKnowledgeBase(const std::string& dir,
                                           uint32_t window_count) {
  const std::filesystem::path root(dir);
  if (KnowledgeBaseBlocksDirExists(dir)) {
    auto manifest = ReadKnowledgeBaseBlocksManifest(dir);
    if (!manifest.has_value()) return manifest.error();
    if (window_count > manifest->window_count()) {
      std::ostringstream message;
      message << "cannot trim to " << window_count << " windows; only "
              << manifest->window_count() << " exist";
      return Err(LoadError::Code::kBadManifest, message.str());
    }
    if (window_count == manifest->window_count()) return std::nullopt;

    uint64_t next_index = 0;
    for (const KbBlockInfo& block : manifest->blocks) {
      next_index = std::max(next_index, block.file_index + 1);
    }
    KbBlocksManifest updated = manifest.value();
    updated.blocks.clear();
    std::vector<std::filesystem::path> orphans;
    for (const KbBlockInfo& block : manifest->blocks) {
      const std::filesystem::path path =
          root / KnowledgeBaseBlockFileName(block.file_index);
      if (block.first_window + block.rows.size() <= window_count) {
        updated.blocks.push_back(block);  // fully kept, file untouched
        continue;
      }
      orphans.push_back(path);
      if (block.first_window >= window_count) continue;  // fully dropped
      // The block straddles the cut: byte-copy the kept prefix into a
      // fresh-indexed file (offsets inside it are unchanged).
      const size_t keep_rows = window_count - block.first_window;
      std::vector<uint8_t> bytes;
      if (auto error = internal::ReadFileBytes(path, &bytes)) return error;
      if (bytes.size() != block.file_bytes) {
        std::ostringstream message;
        message << path.string() << " is " << bytes.size()
                << " bytes but the manifest promises " << block.file_bytes;
        return Err(LoadError::Code::kCorruptSegment, message.str());
      }
      const KbBlockRow& last = block.rows[keep_rows - 1];
      bytes.resize(last.offset + last.segment_bytes);
      KbBlockInfo partial;
      partial.file_index = next_index++;
      partial.first_window = block.first_window;
      partial.file_bytes = bytes.size();
      partial.file_hash = HashBytes(bytes.data(), bytes.size());
      partial.rows.assign(block.rows.begin(),
                          block.rows.begin() + keep_rows);
      if (auto error = internal::AtomicWriteFileBytes(
              root / KnowledgeBaseBlockFileName(partial.file_index), bytes)) {
        return error;
      }
      updated.blocks.push_back(std::move(partial));
    }
    if (auto error = WriteBlocksManifest(root, updated)) return error;
    for (const std::filesystem::path& orphan : orphans) {
      if (auto error = RemoveFile(orphan)) return error;
    }
    return std::nullopt;
  }

  if (KnowledgeBaseDirExists(dir)) {
    auto manifest = ReadKnowledgeBaseDirManifest(dir);
    if (!manifest.has_value()) return manifest.error();
    if (window_count > manifest->rows.size()) {
      std::ostringstream message;
      message << "cannot trim to " << window_count << " windows; only "
              << manifest->rows.size() << " exist";
      return Err(LoadError::Code::kBadManifest, message.str());
    }
    if (window_count == manifest->rows.size()) return std::nullopt;
    const size_t old_count = manifest->rows.size();
    KbManifest updated = manifest.value();
    updated.rows.resize(window_count);
    if (auto error = internal::WriteKnowledgeBaseDirManifest(dir, updated)) {
      return error;
    }
    for (size_t w = window_count; w < old_count; ++w) {
      if (auto error = RemoveFile(
              root /
              KnowledgeBaseSegmentFileName(static_cast<WindowId>(w)))) {
        return error;
      }
    }
    return std::nullopt;
  }

  return Err(LoadError::Code::kIoError,
             "no knowledge base (TARAKB2 or TARAKB3) in " + dir);
}

std::optional<LoadError> RemoveKnowledgeBase(const std::string& dir) {
  const std::filesystem::path root(dir);
  bool found = false;
  if (KnowledgeBaseBlocksDirExists(dir)) {
    found = true;
    auto manifest = ReadKnowledgeBaseBlocksManifest(dir);
    if (!manifest.has_value()) return manifest.error();
    for (const KbBlockInfo& block : manifest->blocks) {
      if (auto error = RemoveFile(
              root / KnowledgeBaseBlockFileName(block.file_index))) {
        return error;
      }
    }
    if (auto error = RemoveFile(root / kBlocksManifestFile)) return error;
  }
  if (KnowledgeBaseDirExists(dir)) {
    found = true;
    auto manifest = ReadKnowledgeBaseDirManifest(dir);
    if (!manifest.has_value()) return manifest.error();
    for (size_t w = 0; w < manifest->rows.size(); ++w) {
      if (auto error = RemoveFile(
              root /
              KnowledgeBaseSegmentFileName(static_cast<WindowId>(w)))) {
        return error;
      }
    }
    if (auto error = RemoveFile(root / KnowledgeBaseManifestFileName())) {
      return error;
    }
  }
  if (!found) {
    return Err(LoadError::Code::kIoError,
               "no knowledge base (TARAKB2 or TARAKB3) in " + dir);
  }
  return std::nullopt;
}

Expected<MappedKb, LoadError> MappedKb::Open(const std::string& dir) {
  auto manifest = ReadKnowledgeBaseBlocksManifest(dir);
  if (!manifest.has_value()) return manifest.error();
  MappedKb kb;
  kb.dir_ = dir;
  kb.manifest_ = *std::move(manifest);
  const std::filesystem::path root(dir);
  kb.maps_.reserve(kb.manifest_.blocks.size());
  for (size_t b = 0; b < kb.manifest_.blocks.size(); ++b) {
    const KbBlockInfo& block = kb.manifest_.blocks[b];
    const std::filesystem::path path =
        root / KnowledgeBaseBlockFileName(block.file_index);
    MappedFile map;
    std::string error;
    if (!map.Open(path.string(), &error)) {
      return Err(LoadError::Code::kIoError, error);
    }
    // Size check via fstat — still no payload byte read.
    if (map.size() != block.file_bytes) {
      std::ostringstream message;
      message << path.string() << " is " << map.size()
              << " bytes but the blocks manifest promises "
              << block.file_bytes;
      return Err(LoadError::Code::kCorruptSegment, message.str());
    }
    for (size_t i = 0; i < block.rows.size(); ++i) {
      kb.locs_.push_back(WindowLoc{static_cast<uint32_t>(b),
                                   static_cast<uint32_t>(i)});
    }
    kb.maps_.push_back(std::move(map));
  }
  return kb;
}

SegmentView MappedKb::segment(WindowId w) const {
  TARA_CHECK(w < locs_.size()) << "window " << w << " out of range ("
                               << locs_.size() << " mapped windows)";
  const WindowLoc& loc = locs_[w];
  const KbBlockInfo& block = manifest_.blocks[loc.block];
  const KbBlockRow& row = block.rows[loc.row];
  SegmentView view;
  view.window = w;
  view.data = maps_[loc.block].data() + row.offset;
  view.size = row.segment_bytes;
  view.row = &row;
  return view;
}

std::optional<LoadError> MappedKb::VerifyHashes(ThreadPool* pool) const {
  const size_t n = manifest_.blocks.size();
  std::vector<std::optional<LoadError>> errors(n);
  const auto check_block = [&](size_t b) {
    const KbBlockInfo& block = manifest_.blocks[b];
    const MappedFile& map = maps_[b];
    if (HashBytes(map.data(), map.size()) != block.file_hash) {
      std::ostringstream message;
      message << KnowledgeBaseBlockFileName(block.file_index)
              << " checksum does not match the blocks manifest";
      errors[b] = Err(LoadError::Code::kCorruptSegment, message.str());
      return;
    }
    for (size_t i = 0; i < block.rows.size(); ++i) {
      const KbBlockRow& row = block.rows[i];
      if (HashBytes(map.data() + row.offset, row.segment_bytes) !=
          row.segment_hash) {
        std::ostringstream message;
        message << "segment of window "
                << block.first_window + static_cast<WindowId>(i)
                << " is corrupt: checksum does not match the blocks manifest";
        errors[b] = Err(LoadError::Code::kCorruptSegment, message.str());
        return;
      }
    }
  };
  if (pool != nullptr && n > 1) {
    pool->ParallelFor(n, [&](size_t, size_t begin, size_t end) {
      for (size_t b = begin; b < end; ++b) check_block(b);
    });
  } else {
    for (size_t b = 0; b < n; ++b) check_block(b);
  }
  for (std::optional<LoadError>& error : errors) {
    if (error.has_value()) return std::move(error);
  }
  return std::nullopt;
}

std::optional<WindowId> MappedKb::FirstWindowWithRule(RuleId rule) const {
  if (manifest_.rule_watermark() <= rule) return std::nullopt;
  uint32_t lo = 0;
  uint32_t hi = static_cast<uint32_t>(locs_.size());
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    const WindowLoc& loc = locs_[mid];
    if (manifest_.blocks[loc.block].rows[loc.row].rule_watermark > rule) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return static_cast<WindowId>(lo);
}

}  // namespace tara
