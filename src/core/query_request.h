#ifndef TARA_CORE_QUERY_REQUEST_H_
#define TARA_CORE_QUERY_REQUEST_H_

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/expected.h"
#include "common/thread_pool.h"
#include "core/kb_snapshot.h"
#include "core/query_error.h"
#include "core/query_kind.h"

namespace tara {

/// A self-contained description of one online query — the unit of the
/// batch API and the query cache. Unlike the typed entrypoints (whose
/// WindowSet arguments are validated at construction and abort on bad
/// ids), a QueryRequest carries raw window ids and is validated entirely
/// at execution time with QueryError results, so requests may be parsed
/// from untrusted batch scripts or network payloads and replayed against
/// any engine generation.
///
/// Only the fields of the request's kind are meaningful; the factories
/// below set exactly those. Window ids and items are canonicalized
/// (sorted, deduplicated) by EncodeQueryRequest, so two requests that
/// differ only in argument order share one cache entry.
struct QueryRequest {
  QueryKind kind = QueryKind::kMineWindow;
  WindowId window = 0;          ///< single-window kinds + Q1 anchor
  ParameterSetting setting;     ///< every kind except measures/rollup_rule
  ParameterSetting second;      ///< Q2 only: the setting compared against
  std::vector<WindowId> windows;  ///< multi-window kinds (raw, unvalidated)
  MatchMode mode = MatchMode::kSingle;  ///< mine_windows / compare
  RuleId rule = 0;              ///< measures / rollup_rule
  Itemset items;                ///< Q5 content probe

  static QueryRequest MineWindow(WindowId w, const ParameterSetting& setting);
  static QueryRequest MineWindows(std::vector<WindowId> windows,
                                  const ParameterSetting& setting,
                                  MatchMode mode);
  static QueryRequest Trajectory(WindowId anchor,
                                 const ParameterSetting& setting,
                                 std::vector<WindowId> horizon);
  static QueryRequest Compare(const ParameterSetting& first,
                              const ParameterSetting& second,
                              std::vector<WindowId> windows, MatchMode mode);
  static QueryRequest Region(WindowId w, const ParameterSetting& setting);
  static QueryRequest Measures(RuleId rule, std::vector<WindowId> windows);
  static QueryRequest Content(WindowId w, Itemset items,
                              const ParameterSetting& setting);
  static QueryRequest ContentView(WindowId w, const ParameterSetting& setting);
  static QueryRequest RollUpRule(RuleId rule, std::vector<WindowId> windows);
  static QueryRequest RollUpMine(std::vector<WindowId> windows,
                                 const ParameterSetting& setting);
};

/// The merged item→rules view (the TARA-S Q5 companion result).
using ContentViewResult = std::unordered_map<ItemId, std::vector<RuleId>>;

/// Any online operation's result. The active alternative is determined by
/// the request's kind (vector<RuleId> serves mine_window, mine_windows,
/// and content).
using QueryResult =
    std::variant<std::vector<RuleId>, TrajectoryQueryResult, RulesetDiff,
                 RegionInfo, TrajectoryMeasures, ContentViewResult,
                 RollUpBound, RolledUpRules>;

/// Canonical request bytes: kind byte followed by the kind's fields, with
/// window ids and items sorted + deduplicated and doubles encoded as
/// their IEEE-754 bit patterns. Two logically identical requests encode
/// identically — this is the cache key (minus the generation) and the
/// batch dedup key.
std::string EncodeQueryRequest(const QueryRequest& request);

/// Canonical result bytes: deterministic for a given result value (maps
/// are emitted in sorted key order). What the query cache stores, and
/// what the differential tests compare byte-for-byte.
std::string EncodeQueryResult(QueryKind kind, const QueryResult& result);

/// Inverse of EncodeQueryResult. Returns nullopt on malformed bytes (a
/// cache handing back bytes it did not produce); never aborts.
std::optional<QueryResult> DecodeQueryResult(QueryKind kind,
                                             std::string_view bytes);

/// Executes `request` against one pinned snapshot. All validation errors
/// come back as QueryError values — including out-of-range window ids,
/// which the typed WindowSet-based entrypoints would refuse at set
/// construction time.
Expected<QueryResult, QueryError> ExecuteQuery(
    const KnowledgeBaseSnapshot& snapshot, const QueryRequest& request);

/// Executes a batch against one snapshot: identical requests (by
/// canonical bytes) are executed once and their result copied to every
/// occurrence, and distinct requests fan out across `pool` when one is
/// given (nullptr = sequential). Results are positionally aligned with
/// `requests`. This is the uncached core of TaraEngine::ExecuteBatch.
std::vector<Expected<QueryResult, QueryError>> ExecuteQueryBatch(
    const KnowledgeBaseSnapshot& snapshot,
    std::span<const QueryRequest> requests, ThreadPool* pool = nullptr);

}  // namespace tara

#endif  // TARA_CORE_QUERY_REQUEST_H_
