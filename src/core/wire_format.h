#ifndef TARA_CORE_WIRE_FORMAT_H_
#define TARA_CORE_WIRE_FORMAT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/expected.h"
#include "core/query_error.h"
#include "core/query_request.h"
#include "txdb/transaction_database.h"

/// \file
/// The TARA wire protocol: a length-prefixed, versioned binary framing of
/// the canonical QueryRequest/QueryResult bytes (query_request.h), plus
/// the stable numeric error-code space shared by local and remote
/// execution. This is the boundary between trusted engine code and
/// untrusted bytes: every Decode* function here treats its input as
/// hostile and returns Expected<_, ParseError> — truncation, unknown
/// versions, unknown kinds, and trailing garbage are typed errors, never
/// aborts (the same contract LoadError gives the TARAKB2 loaders).
///
/// ## Frame layout (version 1)
///
///   offset 0  u8   magic 'T' (0x54)
///   offset 1  u8   magic 'W' (0x57)
///   offset 2  u8   protocol version (kWireProtocolVersion)
///   offset 3  u8   frame type (FrameType)
///   offset 4  u32  payload length, little-endian
///   offset 8  ...  payload (length bytes)
///
/// ## Versioning rules
///
/// - The header layout itself (8 bytes, magic/version/type/length) is
///   frozen forever; only payload grammars may evolve.
/// - A payload grammar change bumps kWireProtocolVersion. Peers reject
///   versions they do not speak with kUnsupportedVersion — there is no
///   silent downgrade.
/// - FrameType values and wire error codes are append-only: new numbers
///   may be added, existing numbers are NEVER reused or renumbered.
///
/// ## Wire error-code space (append-only, never reused)
///
///   0        reserved / invalid
///   1-99     query validation errors — QueryError::Code values verbatim
///            (see query_error.h: 1 support_below_floor ... 7
///            no_content_index)
///   100-199  serving-layer errors (ServerWireError below)
///   200-299  protocol/parse errors (ParseError::Code below)

namespace tara {

inline constexpr uint8_t kWireMagic0 = 0x54;  // 'T'
inline constexpr uint8_t kWireMagic1 = 0x57;  // 'W'
inline constexpr uint8_t kWireProtocolVersion = 1;
inline constexpr size_t kWireHeaderBytes = 8;
/// Hard upper bound a peer may declare for one payload; servers may
/// configure a lower operational limit.
inline constexpr uint32_t kWireMaxPayloadBytes = 64u << 20;

/// What a frame carries. Append-only; never reuse or renumber.
enum class FrameType : uint8_t {
  /// Client -> server: execute one query.
  /// Payload: varint deadline_ms (0 = none) + canonical request bytes.
  kExecute = 1,
  /// Server -> client: a successful result.
  /// Payload: kind byte + canonical result bytes.
  kResult = 2,
  /// Server -> client: a typed failure.
  /// Payload: varint wire error code + message bytes (rest of payload).
  kError = 3,
  /// Client -> server: live-append one window of transactions.
  /// Payload: varint transaction count, then per transaction:
  /// zigzag-varint timestamp + varint item count + varint items.
  kAppendWindow = 4,
  /// Server -> client: append acknowledgement.
  /// Payload: varint window id + varint new generation.
  kAppendAck = 5,
  /// Client -> server: metrics snapshot request.
  /// Payload: one format byte (0 = text, 1 = JSON).
  kMetricsRequest = 6,
  /// Server -> client: metrics snapshot. Payload: UTF-8 text.
  kMetricsResponse = 7,
  /// Client -> server: execute a batch against one pinned snapshot.
  /// Payload: varint deadline_ms + varint request count, then per
  /// request: varint byte length + canonical request bytes.
  kBatchExecute = 8,
  /// Server -> client: positionally aligned batch results.
  /// Payload: varint count, then per item: one status byte (0 = ok,
  /// 1 = error) + varint byte length + body (ok: kind byte + result
  /// bytes; error: varint wire code + message bytes).
  kBatchResult = 9,
  /// Liveness probe; empty payloads.
  kPing = 10,
  kPong = 11,
  /// Client -> server: knowledge-base shape request. Empty payload.
  kInfoRequest = 12,
  /// Server -> client: varint window count + varint generation +
  /// varint interned rule count.
  kInfoResponse = 13,
  /// Replica -> primary: subscribe to the durably-acked window stream.
  /// Payload: varint first window wanted (the replica's window count).
  /// The connection then leaves request-response lockstep: the primary
  /// answers with one kReplicaCheckpoint and pushes kReplicaRecord /
  /// kReplicaHeartbeat frames until either side closes.
  kReplicaSubscribe = 14,
  /// Primary -> replica: the stream handshake. Payload: the primary's
  /// construction-option fingerprint (f64 support floor + f64 confidence
  /// floor + varint itemset cap + content-index byte — the same fields
  /// the TARAWAL1 header freezes) + varint durable window count + varint
  /// generation. A replica must refuse to replay a stream mined at other
  /// floors, exactly as AttachWal refuses a foreign log.
  kReplicaCheckpoint = 15,
  /// Primary -> replica: one durably-acked window. Payload: varint
  /// window id + varint total transactions + varint primary generation +
  /// the window's TARAKB2 segment blob (rest of payload) — byte-for-byte
  /// what the write-ahead log record for that window carries.
  kReplicaRecord = 16,
  /// Primary -> replica: liveness + lag probe sent when the stream is
  /// caught up. Payload: varint durable window count + varint generation.
  kReplicaHeartbeat = 17,
};

/// Serving-layer wire error codes (range 100-199). Append-only.
enum class ServerWireError : uint32_t {
  /// Admission control shed this request: the query pool and its
  /// bounded wait queue are saturated. Retry with backoff.
  kOverloaded = 100,
  /// The request's deadline expired before a worker could start it.
  kDeadlineExceeded = 101,
  /// The server is draining connections for shutdown.
  kShuttingDown = 102,
  /// Structurally valid frame whose content the server rejects (e.g. an
  /// AppendWindow with zero transactions).
  kBadRequest = 103,
  /// The server failed internally; the connection stays usable.
  kInternal = 104,
  /// This server is a hot-standby replica: it serves queries only.
  /// Appends must go to the primary it replicates from.
  kReadOnlyReplica = 105,
};

/// Why untrusted wire bytes could not be parsed. The enum values ARE the
/// wire codes (range 200-299) so a server can echo a typed parse failure
/// back to the offending client. Append-only; never reuse or renumber.
struct ParseError {
  enum class Code : uint32_t {
    /// Fewer than kWireHeaderBytes bytes where a header must start.
    kTruncatedHeader = 200,
    /// The first two bytes are not 'T','W'.
    kBadMagic = 201,
    /// A TARA frame speaking a protocol version this build does not.
    kUnsupportedVersion = 202,
    /// A frame type byte this build does not know.
    kUnknownFrameType = 203,
    /// The declared payload length exceeds the receiver's limit.
    kFrameTooLarge = 204,
    /// The payload ended mid-structure (short field, truncated varint,
    /// fewer bytes than the header promised).
    kTruncatedPayload = 205,
    /// A request payload whose kind byte names no QueryKind.
    kUnknownQueryKind = 206,
    /// A request payload that is malformed past the kind byte (bad mode
    /// byte, impossible counts, ...).
    kBadRequestBody = 207,
    /// A result payload the declared kind cannot decode.
    kBadResultBody = 208,
    /// An error payload without a valid code varint.
    kBadErrorBody = 209,
    /// A well-formed structure followed by unexpected extra bytes.
    kTrailingBytes = 210,
    /// A frame type that is valid but not legal at this point of the
    /// conversation (e.g. a kResult arriving at the server).
    kUnexpectedFrame = 211,
  };

  Code code = Code::kTruncatedHeader;
  /// Actionable description naming the offending field/offset.
  std::string message;
};

/// Stable identifier string of a parse code ("bad_magic", ...).
std::string_view ParseErrorCodeName(ParseError::Code code);

/// gtest-friendly printing.
std::ostream& operator<<(std::ostream& out, const ParseError& error);

/// Human label of any wire error code, across all three ranges
/// ("bad_window", "overloaded", "unsupported_version", ...); "unknown"
/// for numbers this build has never heard of.
std::string_view WireErrorCodeName(uint32_t code);

/// A typed failure as it travels the wire: the frozen numeric code plus
/// the peer's human-readable message. This is what remote clients see in
/// place of a local QueryError.
struct WireError {
  uint32_t code = 0;
  std::string message;
};

std::ostream& operator<<(std::ostream& out, const WireError& error);

/// Parsed frame header (the fixed 8 bytes, validated).
struct FrameHeader {
  uint8_t version = kWireProtocolVersion;
  FrameType type = FrameType::kPing;
  uint32_t payload_size = 0;
};

/// Appends the 8-byte header for a `payload_size`-byte payload of `type`.
void AppendFrameHeader(FrameType type, size_t payload_size, std::string* out);

/// One complete frame: header + payload.
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Validates the fixed header at the start of `bytes`. `max_payload`
/// lets a receiver enforce an operational limit below the protocol's
/// hard cap. Does NOT require the payload itself to be present — this is
/// the streaming entrypoint (read 8 bytes, learn how many follow).
Expected<FrameHeader, ParseError> DecodeFrameHeader(
    std::string_view bytes, uint32_t max_payload = kWireMaxPayloadBytes);

/// A whole frame held in memory, decoded: header + payload view into
/// `bytes`. Rejects trailing bytes after the payload.
struct DecodedFrame {
  FrameHeader header;
  std::string_view payload;
};
Expected<DecodedFrame, ParseError> DecodeFrame(
    std::string_view bytes, uint32_t max_payload = kWireMaxPayloadBytes);

/// --- Request framing -------------------------------------------------

/// The inverse of EncodeQueryRequest (query_request.h) over untrusted
/// bytes: returns the request, or a typed ParseError on an unknown kind
/// byte, malformed body, or trailing bytes. Round-trip guarantee: for
/// any request R, DecodeQueryRequest(EncodeQueryRequest(R)) succeeds and
/// re-encodes to the identical canonical bytes.
Expected<QueryRequest, ParseError> DecodeQueryRequest(std::string_view bytes);

/// A complete kExecute frame for `request` (deadline 0 = none).
std::string EncodeExecuteFrame(const QueryRequest& request,
                               uint32_t deadline_ms = 0);

/// Decoded kExecute payload: the request plus its deadline.
struct ExecuteCommand {
  QueryRequest request;
  uint32_t deadline_ms = 0;
};
Expected<ExecuteCommand, ParseError> DecodeExecutePayload(
    std::string_view payload);

/// --- Result framing --------------------------------------------------

/// A complete kResult frame: kind byte + canonical result bytes.
std::string EncodeResultFrame(QueryKind kind, const QueryResult& result);

/// Decoded kResult payload. The kind rides in the payload so the bytes
/// are self-describing (a batch item uses the same grammar).
Expected<std::pair<QueryKind, QueryResult>, ParseError> DecodeResultPayload(
    std::string_view payload);

/// --- Error framing ---------------------------------------------------

/// A complete kError frame carrying a wire code + message.
std::string EncodeErrorFrame(uint32_t code, std::string_view message);
std::string EncodeErrorFrame(const QueryError& error);
std::string EncodeErrorFrame(ServerWireError code, std::string_view message);
std::string EncodeErrorFrame(const ParseError& error);

Expected<WireError, ParseError> DecodeErrorPayload(std::string_view payload);

/// --- Batch framing ---------------------------------------------------

std::string EncodeBatchExecuteFrame(
    const std::vector<QueryRequest>& requests, uint32_t deadline_ms = 0);

struct BatchExecuteCommand {
  std::vector<QueryRequest> requests;
  uint32_t deadline_ms = 0;
};
Expected<BatchExecuteCommand, ParseError> DecodeBatchExecutePayload(
    std::string_view payload);

/// Encodes positionally aligned batch results. `kinds[i]` must be the
/// kind of `results[i]`'s request (the result variant alone does not
/// determine it).
std::string EncodeBatchResultFrame(
    const std::vector<QueryKind>& kinds,
    const std::vector<Expected<QueryResult, QueryError>>& results);

Expected<std::vector<Expected<QueryResult, WireError>>, ParseError>
DecodeBatchResultPayload(std::string_view payload);

/// --- Ingestion framing -----------------------------------------------

/// A complete kAppendWindow frame carrying transactions [begin, end) of
/// `db`.
std::string EncodeAppendWindowFrame(const TransactionDatabase& db,
                                    size_t begin, size_t end);

Expected<TransactionDatabase, ParseError> DecodeAppendWindowPayload(
    std::string_view payload);

std::string EncodeAppendAckFrame(WindowId window, uint64_t generation);

struct AppendAck {
  WindowId window = 0;
  uint64_t generation = 0;
};
Expected<AppendAck, ParseError> DecodeAppendAckPayload(
    std::string_view payload);

/// --- Info framing ----------------------------------------------------

struct ServerInfo {
  uint32_t window_count = 0;
  uint64_t generation = 0;
  uint64_t rule_count = 0;
};

std::string EncodeInfoResponseFrame(const ServerInfo& info);
Expected<ServerInfo, ParseError> DecodeInfoResponsePayload(
    std::string_view payload);

/// --- Replication framing ---------------------------------------------

struct ReplicaSubscribe {
  /// First window the replica wants (== its current window count).
  uint32_t from_window = 0;
};

std::string EncodeReplicaSubscribeFrame(uint32_t from_window);
Expected<ReplicaSubscribe, ParseError> DecodeReplicaSubscribePayload(
    std::string_view payload);

/// The stream handshake: the primary's construction-option fingerprint
/// plus its durable position. The option fields mirror what the
/// TARAWAL1 header freezes — a stream, like a log, must only be replayed
/// into an engine built with the same floors.
struct ReplicaCheckpoint {
  double min_support_floor = 0;
  double min_confidence_floor = 0;
  uint32_t max_itemset_size = 0;
  bool build_content_index = false;
  /// Windows whose WAL records the primary has fdatasync'd — the stream
  /// never runs past this watermark.
  uint32_t window_count = 0;
  uint64_t generation = 0;
};

std::string EncodeReplicaCheckpointFrame(const ReplicaCheckpoint& checkpoint);
Expected<ReplicaCheckpoint, ParseError> DecodeReplicaCheckpointPayload(
    std::string_view payload);

/// One streamed window: the same TARAKB2 segment blob the primary's
/// write-ahead log record carries, ready for the replica's replay path.
struct ReplicaRecord {
  WindowId window = 0;
  uint64_t total_transactions = 0;
  /// The primary's generation when the record was encoded (monotone, so
  /// the replica can expose primary-side progress without a probe).
  uint64_t generation = 0;
  /// Owned copy of the segment blob (the payload view does not outlive
  /// the frame buffer).
  std::string segment;
};

std::string EncodeReplicaRecordFrame(WindowId window,
                                     uint64_t total_transactions,
                                     uint64_t generation,
                                     std::string_view segment);
Expected<ReplicaRecord, ParseError> DecodeReplicaRecordPayload(
    std::string_view payload);

/// The caught-up probe: how far the primary's durable watermark has
/// advanced. lag = heartbeat.window_count - replica's window count.
struct ReplicaHeartbeat {
  uint32_t window_count = 0;
  uint64_t generation = 0;
};

std::string EncodeReplicaHeartbeatFrame(uint32_t window_count,
                                        uint64_t generation);
Expected<ReplicaHeartbeat, ParseError> DecodeReplicaHeartbeatPayload(
    std::string_view payload);

}  // namespace tara

#endif  // TARA_CORE_WIRE_FORMAT_H_
