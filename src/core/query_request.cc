#include "core/query_request.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/varint.h"

namespace tara {
namespace {

void AppendDouble(double value, std::string* out) {
  const uint64_t bits = std::bit_cast<uint64_t>(value);
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

void AppendVarint(uint64_t value, std::string* out) {
  std::vector<uint8_t> bytes;
  varint::EncodeU64(value, &bytes);
  out->append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

template <typename Int>
void AppendIdList(std::vector<Int> ids, std::string* out) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  AppendVarint(ids.size(), out);
  for (const Int id : ids) AppendVarint(id, out);
}

void AppendSetting(const ParameterSetting& setting, std::string* out) {
  AppendDouble(setting.min_support, out);
  AppendDouble(setting.min_confidence, out);
}

/// Cursor over untrusted bytes; every Read* returns false on truncation.
struct Reader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  explicit Reader(std::string_view bytes)
      : data(reinterpret_cast<const uint8_t*>(bytes.data())),
        size(bytes.size()) {}

  bool ReadVarint(uint64_t* out) {
    return varint::TryDecodeU64(data, size, &pos, out);
  }

  bool ReadDouble(double* out) {
    if (pos + 8 > size) return false;
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
    }
    pos += 8;
    *out = std::bit_cast<double>(bits);
    return true;
  }

  template <typename Int>
  bool ReadIdList(std::vector<Int>* out) {
    uint64_t count = 0;
    if (!ReadVarint(&count) || count > size) return false;
    out->clear();
    out->reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t id = 0;
      if (!ReadVarint(&id)) return false;
      out->push_back(static_cast<Int>(id));
    }
    return true;
  }

  bool AtEnd() const { return pos == size; }
};

void EncodeRuleIds(const std::vector<RuleId>& ids, std::string* out) {
  AppendVarint(ids.size(), out);
  for (const RuleId id : ids) AppendVarint(id, out);
}

bool DecodeRuleIds(Reader* in, std::vector<RuleId>* out) {
  return in->ReadIdList(out);
}

}  // namespace

QueryRequest QueryRequest::MineWindow(WindowId w,
                                      const ParameterSetting& setting) {
  QueryRequest request;
  request.kind = QueryKind::kMineWindow;
  request.window = w;
  request.setting = setting;
  return request;
}

QueryRequest QueryRequest::MineWindows(std::vector<WindowId> windows,
                                       const ParameterSetting& setting,
                                       MatchMode mode) {
  QueryRequest request;
  request.kind = QueryKind::kMineWindows;
  request.windows = std::move(windows);
  request.setting = setting;
  request.mode = mode;
  return request;
}

QueryRequest QueryRequest::Trajectory(WindowId anchor,
                                      const ParameterSetting& setting,
                                      std::vector<WindowId> horizon) {
  QueryRequest request;
  request.kind = QueryKind::kTrajectory;
  request.window = anchor;
  request.setting = setting;
  request.windows = std::move(horizon);
  return request;
}

QueryRequest QueryRequest::Compare(const ParameterSetting& first,
                                   const ParameterSetting& second,
                                   std::vector<WindowId> windows,
                                   MatchMode mode) {
  QueryRequest request;
  request.kind = QueryKind::kCompare;
  request.setting = first;
  request.second = second;
  request.windows = std::move(windows);
  request.mode = mode;
  return request;
}

QueryRequest QueryRequest::Region(WindowId w,
                                  const ParameterSetting& setting) {
  QueryRequest request;
  request.kind = QueryKind::kRegion;
  request.window = w;
  request.setting = setting;
  return request;
}

QueryRequest QueryRequest::Measures(RuleId rule,
                                    std::vector<WindowId> windows) {
  QueryRequest request;
  request.kind = QueryKind::kMeasures;
  request.rule = rule;
  request.windows = std::move(windows);
  return request;
}

QueryRequest QueryRequest::Content(WindowId w, Itemset items,
                                   const ParameterSetting& setting) {
  QueryRequest request;
  request.kind = QueryKind::kContent;
  request.window = w;
  request.items = std::move(items);
  request.setting = setting;
  return request;
}

QueryRequest QueryRequest::ContentView(WindowId w,
                                       const ParameterSetting& setting) {
  QueryRequest request;
  request.kind = QueryKind::kContentView;
  request.window = w;
  request.setting = setting;
  return request;
}

QueryRequest QueryRequest::RollUpRule(RuleId rule,
                                      std::vector<WindowId> windows) {
  QueryRequest request;
  request.kind = QueryKind::kRollUpRule;
  request.rule = rule;
  request.windows = std::move(windows);
  return request;
}

QueryRequest QueryRequest::RollUpMine(std::vector<WindowId> windows,
                                      const ParameterSetting& setting) {
  QueryRequest request;
  request.kind = QueryKind::kRollUpMine;
  request.windows = std::move(windows);
  request.setting = setting;
  return request;
}

std::string EncodeQueryRequest(const QueryRequest& request) {
  std::string out;
  out.push_back(static_cast<char>(request.kind));
  switch (request.kind) {
    case QueryKind::kMineWindow:
    case QueryKind::kRegion:
    case QueryKind::kContentView:
      AppendVarint(request.window, &out);
      AppendSetting(request.setting, &out);
      break;
    case QueryKind::kMineWindows:
      out.push_back(static_cast<char>(request.mode));
      AppendSetting(request.setting, &out);
      AppendIdList(request.windows, &out);
      break;
    case QueryKind::kTrajectory:
      AppendVarint(request.window, &out);
      AppendSetting(request.setting, &out);
      AppendIdList(request.windows, &out);
      break;
    case QueryKind::kCompare:
      out.push_back(static_cast<char>(request.mode));
      AppendSetting(request.setting, &out);
      AppendSetting(request.second, &out);
      AppendIdList(request.windows, &out);
      break;
    case QueryKind::kMeasures:
    case QueryKind::kRollUpRule:
      AppendVarint(request.rule, &out);
      AppendIdList(request.windows, &out);
      break;
    case QueryKind::kContent:
      AppendVarint(request.window, &out);
      AppendSetting(request.setting, &out);
      AppendIdList(request.items, &out);
      break;
    case QueryKind::kRollUpMine:
      AppendSetting(request.setting, &out);
      AppendIdList(request.windows, &out);
      break;
  }
  return out;
}

namespace {

void EncodeTrajectory(const Trajectory& trajectory, std::string* out) {
  AppendVarint(trajectory.size(), out);
  for (const TrajectoryPoint& point : trajectory) {
    AppendVarint(point.window, out);
    out->push_back(point.present ? 1 : 0);
    AppendDouble(point.support, out);
    AppendDouble(point.confidence, out);
  }
}

bool DecodeTrajectory(Reader* in, Trajectory* out) {
  uint64_t count = 0;
  if (!in->ReadVarint(&count) || count > in->size) return false;
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TrajectoryPoint point;
    uint64_t window = 0;
    if (!in->ReadVarint(&window) || in->pos >= in->size) return false;
    point.window = static_cast<WindowId>(window);
    point.present = in->data[in->pos++] != 0;
    if (!in->ReadDouble(&point.support) ||
        !in->ReadDouble(&point.confidence)) {
      return false;
    }
    out->push_back(point);
  }
  return true;
}

}  // namespace

std::string EncodeQueryResult(QueryKind kind, const QueryResult& result) {
  std::string out;
  switch (kind) {
    case QueryKind::kMineWindow:
    case QueryKind::kMineWindows:
    case QueryKind::kContent:
      EncodeRuleIds(std::get<std::vector<RuleId>>(result), &out);
      break;
    case QueryKind::kTrajectory: {
      const auto& value = std::get<TrajectoryQueryResult>(result);
      EncodeRuleIds(value.rules, &out);
      AppendVarint(value.trajectories.size(), &out);
      for (const Trajectory& t : value.trajectories) {
        EncodeTrajectory(t, &out);
      }
      break;
    }
    case QueryKind::kCompare: {
      const auto& value = std::get<RulesetDiff>(result);
      EncodeRuleIds(value.only_first, &out);
      EncodeRuleIds(value.only_second, &out);
      break;
    }
    case QueryKind::kRegion: {
      const auto& value = std::get<RegionInfo>(result);
      AppendDouble(value.support_lower, &out);
      AppendDouble(value.support_upper, &out);
      AppendDouble(value.confidence_lower, &out);
      AppendDouble(value.confidence_upper, &out);
      AppendVarint(value.result_size, &out);
      break;
    }
    case QueryKind::kMeasures: {
      const auto& value = std::get<TrajectoryMeasures>(result);
      AppendDouble(value.coverage, &out);
      AppendDouble(value.stability, &out);
      AppendDouble(value.support_stddev, &out);
      AppendDouble(value.confidence_stddev, &out);
      AppendDouble(value.mean_support, &out);
      AppendDouble(value.mean_confidence, &out);
      break;
    }
    case QueryKind::kContentView: {
      const auto& value = std::get<ContentViewResult>(result);
      std::vector<ItemId> items;
      items.reserve(value.size());
      for (const auto& [item, rules] : value) items.push_back(item);
      std::sort(items.begin(), items.end());
      AppendVarint(items.size(), &out);
      for (const ItemId item : items) {
        AppendVarint(item, &out);
        EncodeRuleIds(value.at(item), &out);
      }
      break;
    }
    case QueryKind::kRollUpRule: {
      const auto& value = std::get<RollUpBound>(result);
      AppendDouble(value.support_lo, &out);
      AppendDouble(value.support_hi, &out);
      AppendDouble(value.confidence_lo, &out);
      AppendDouble(value.confidence_hi, &out);
      AppendVarint(value.missing_windows, &out);
      break;
    }
    case QueryKind::kRollUpMine: {
      const auto& value = std::get<RolledUpRules>(result);
      EncodeRuleIds(value.certain, &out);
      EncodeRuleIds(value.possible, &out);
      break;
    }
  }
  return out;
}

std::optional<QueryResult> DecodeQueryResult(QueryKind kind,
                                             std::string_view bytes) {
  Reader in(bytes);
  std::optional<QueryResult> result;
  switch (kind) {
    case QueryKind::kMineWindow:
    case QueryKind::kMineWindows:
    case QueryKind::kContent: {
      std::vector<RuleId> rules;
      if (!DecodeRuleIds(&in, &rules)) return std::nullopt;
      result = std::move(rules);
      break;
    }
    case QueryKind::kTrajectory: {
      TrajectoryQueryResult value;
      uint64_t count = 0;
      if (!DecodeRuleIds(&in, &value.rules) || !in.ReadVarint(&count) ||
          count > in.size) {
        return std::nullopt;
      }
      value.trajectories.resize(count);
      for (uint64_t i = 0; i < count; ++i) {
        if (!DecodeTrajectory(&in, &value.trajectories[i])) {
          return std::nullopt;
        }
      }
      result = std::move(value);
      break;
    }
    case QueryKind::kCompare: {
      RulesetDiff value;
      if (!DecodeRuleIds(&in, &value.only_first) ||
          !DecodeRuleIds(&in, &value.only_second)) {
        return std::nullopt;
      }
      result = std::move(value);
      break;
    }
    case QueryKind::kRegion: {
      RegionInfo value;
      uint64_t size = 0;
      if (!in.ReadDouble(&value.support_lower) ||
          !in.ReadDouble(&value.support_upper) ||
          !in.ReadDouble(&value.confidence_lower) ||
          !in.ReadDouble(&value.confidence_upper) || !in.ReadVarint(&size)) {
        return std::nullopt;
      }
      value.result_size = size;
      result = value;
      break;
    }
    case QueryKind::kMeasures: {
      TrajectoryMeasures value;
      if (!in.ReadDouble(&value.coverage) || !in.ReadDouble(&value.stability) ||
          !in.ReadDouble(&value.support_stddev) ||
          !in.ReadDouble(&value.confidence_stddev) ||
          !in.ReadDouble(&value.mean_support) ||
          !in.ReadDouble(&value.mean_confidence)) {
        return std::nullopt;
      }
      result = value;
      break;
    }
    case QueryKind::kContentView: {
      ContentViewResult value;
      uint64_t count = 0;
      if (!in.ReadVarint(&count) || count > in.size) return std::nullopt;
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t item = 0;
        std::vector<RuleId> rules;
        if (!in.ReadVarint(&item) || !DecodeRuleIds(&in, &rules)) {
          return std::nullopt;
        }
        value[static_cast<ItemId>(item)] = std::move(rules);
      }
      result = std::move(value);
      break;
    }
    case QueryKind::kRollUpRule: {
      RollUpBound value;
      uint64_t missing = 0;
      if (!in.ReadDouble(&value.support_lo) ||
          !in.ReadDouble(&value.support_hi) ||
          !in.ReadDouble(&value.confidence_lo) ||
          !in.ReadDouble(&value.confidence_hi) || !in.ReadVarint(&missing)) {
        return std::nullopt;
      }
      value.missing_windows = static_cast<uint32_t>(missing);
      result = value;
      break;
    }
    case QueryKind::kRollUpMine: {
      RolledUpRules value;
      if (!DecodeRuleIds(&in, &value.certain) ||
          !DecodeRuleIds(&in, &value.possible)) {
        return std::nullopt;
      }
      result = std::move(value);
      break;
    }
  }
  if (!result.has_value() || !in.AtEnd()) return std::nullopt;
  return result;
}

namespace {

/// Builds the WindowSet of a request's raw ids against `snapshot`,
/// producing the same kWindowSetMismatch a stale typed WindowSet would:
/// out-of-range ids are a recoverable request error here, not the
/// construction-time caller bug the WindowSet constructor aborts on.
Expected<WindowSet, QueryError> MakeRequestWindowSet(
    const KnowledgeBaseSnapshot& snapshot,
    const std::vector<WindowId>& ids) {
  for (const WindowId w : ids) {
    if (w >= snapshot.window_count()) {
      std::ostringstream message;
      message << "request refers to window " << w
              << " but this snapshot (generation " << snapshot.generation()
              << ") has only " << snapshot.window_count() << " windows";
      return QueryError{QueryError::Code::kWindowSetMismatch, message.str()};
    }
  }
  return snapshot.MakeWindowSet(ids);
}

template <typename T>
Expected<QueryResult, QueryError> Wrap(Expected<T, QueryError> result) {
  if (!result.has_value()) return result.error();
  return QueryResult(std::move(result).value());
}

}  // namespace

Expected<QueryResult, QueryError> ExecuteQuery(
    const KnowledgeBaseSnapshot& snapshot, const QueryRequest& request) {
  switch (request.kind) {
    case QueryKind::kMineWindow:
      return Wrap(snapshot.MineWindow(request.window, request.setting));
    case QueryKind::kMineWindows: {
      auto windows = MakeRequestWindowSet(snapshot, request.windows);
      if (!windows.has_value()) return windows.error();
      return Wrap(
          snapshot.MineWindows(*windows, request.setting, request.mode));
    }
    case QueryKind::kTrajectory: {
      auto horizon = MakeRequestWindowSet(snapshot, request.windows);
      if (!horizon.has_value()) return horizon.error();
      return Wrap(
          snapshot.TrajectoryQuery(request.window, request.setting, *horizon));
    }
    case QueryKind::kCompare: {
      auto windows = MakeRequestWindowSet(snapshot, request.windows);
      if (!windows.has_value()) return windows.error();
      return Wrap(snapshot.CompareSettings(request.setting, request.second,
                                           *windows, request.mode));
    }
    case QueryKind::kRegion:
      return Wrap(snapshot.RecommendRegion(request.window, request.setting));
    case QueryKind::kMeasures: {
      auto windows = MakeRequestWindowSet(snapshot, request.windows);
      if (!windows.has_value()) return windows.error();
      return Wrap(snapshot.RuleMeasures(request.rule, *windows));
    }
    case QueryKind::kContent:
      return Wrap(
          snapshot.ContentQuery(request.window, request.items,
                                request.setting));
    case QueryKind::kContentView:
      return Wrap(snapshot.ContentView(request.window, request.setting));
    case QueryKind::kRollUpRule: {
      auto windows = MakeRequestWindowSet(snapshot, request.windows);
      if (!windows.has_value()) return windows.error();
      return Wrap(snapshot.RollUpRule(request.rule, *windows));
    }
    case QueryKind::kRollUpMine: {
      auto windows = MakeRequestWindowSet(snapshot, request.windows);
      if (!windows.has_value()) return windows.error();
      return Wrap(snapshot.MineRolledUp(*windows, request.setting));
    }
  }
  return QueryError{QueryError::Code::kBadWindow, "unknown query kind"};
}

std::vector<Expected<QueryResult, QueryError>> ExecuteQueryBatch(
    const KnowledgeBaseSnapshot& snapshot,
    std::span<const QueryRequest> requests, ThreadPool* pool) {
  // Dedup by canonical bytes: each unique request executes exactly once.
  std::unordered_map<std::string, size_t> unique_index;
  std::vector<const QueryRequest*> unique_requests;
  std::vector<size_t> request_to_unique(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto [it, inserted] = unique_index.try_emplace(
        EncodeQueryRequest(requests[i]), unique_requests.size());
    if (inserted) unique_requests.push_back(&requests[i]);
    request_to_unique[i] = it->second;
  }

  std::vector<std::optional<Expected<QueryResult, QueryError>>> unique_results(
      unique_requests.size());
  if (pool != nullptr && unique_requests.size() > 1) {
    pool->ParallelFor(unique_requests.size(),
                      [&](size_t, size_t begin, size_t end) {
                        for (size_t u = begin; u < end; ++u) {
                          unique_results[u] =
                              ExecuteQuery(snapshot, *unique_requests[u]);
                        }
                      });
  } else {
    for (size_t u = 0; u < unique_requests.size(); ++u) {
      unique_results[u] = ExecuteQuery(snapshot, *unique_requests[u]);
    }
  }

  std::vector<Expected<QueryResult, QueryError>> results;
  results.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    results.push_back(*unique_results[request_to_unique[i]]);
  }
  return results;
}

}  // namespace tara
